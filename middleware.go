package rebeca

import (
	"sync"
	"time"

	"rebeca/internal/broker"
	"rebeca/internal/overlay"
	"rebeca/internal/proto"
)

// Middleware chain types, re-exported from the broker so downstream code
// can implement stages without reaching into internal packages. See
// Middleware's documentation for the chain's execution order and
// short-circuit semantics.
type (
	// Middleware is one stage in a broker's ordered extension chain.
	Middleware = broker.Middleware
	// PassMiddleware is a no-op stage to embed for partial implementations.
	PassMiddleware = broker.PassMiddleware
	// MessageInterceptor is the optional raw-message hook.
	MessageInterceptor = broker.MessageInterceptor
	// FlushObserver is the optional flush-completion hook.
	FlushObserver = broker.FlushObserver
	// LinkObserver is the optional overlay link-transition hook.
	LinkObserver = broker.LinkObserver
	// LinkEvent is one overlay link state transition.
	LinkEvent = overlay.Event
	// LinkState is an overlay link's lifecycle state.
	LinkState = overlay.State
	// LinkInfo is an overlay link's full introspection snapshot: state,
	// pending backlog, store-backed spill depth/bytes, and drop counters.
	LinkInfo = overlay.LinkInfo
	// Broker is the broker a middleware stage is attached to.
	Broker = broker.Broker
	// SubscriptionInfo pairs a filter with its end-to-end identity (the
	// OnSubscribe hook's payload). The client-facing *Subscription handle
	// returned by Port.Subscribe is a different type — see subscription.go.
	SubscriptionInfo = proto.Subscription
)

// Overlay link states (see the overlay subsystem in CHANGES.md): a
// broker↔broker link is connecting until its first establishment,
// handshaking while the routing re-sync runs, established while carrying
// traffic, and degraded after a failure until the backoff redial heals it.
const (
	LinkClosed      = overlay.StateClosed
	LinkConnecting  = overlay.StateConnecting
	LinkHandshaking = overlay.StateHandshaking
	LinkEstablished = overlay.StateEstablished
	LinkDegraded    = overlay.StateDegraded
)

// --- Metrics -------------------------------------------------------------

// BrokerMetrics aggregates one broker's middleware-observed activity.
type BrokerMetrics struct {
	// Publishes counts notifications routed through the broker (every
	// overlay hop counts at the broker it transits).
	Publishes int
	// Deliveries counts local client deliveries.
	Deliveries int
	// Subscribes counts subscription installations.
	Subscribes int
	// DeliveryLatency sums publish-to-delivery latency over Deliveries
	// (virtual time under System, wall time under Live).
	DeliveryLatency time.Duration
	// MaxDeliveryLatency is the worst single delivery.
	MaxDeliveryLatency time.Duration
	// LinkEstablishments counts overlay links reaching established
	// (initial handshakes and re-establishments after failures).
	LinkEstablishments int
	// LinkFailures counts established overlay links lost (read/send
	// errors, missed heartbeats).
	LinkFailures int
}

// AvgDeliveryLatency returns the mean publish-to-delivery latency.
func (m BrokerMetrics) AvgDeliveryLatency() time.Duration {
	if m.Deliveries == 0 {
		return 0
	}
	return m.DeliveryLatency / time.Duration(m.Deliveries)
}

func (m *BrokerMetrics) add(o BrokerMetrics) {
	m.Publishes += o.Publishes
	m.Deliveries += o.Deliveries
	m.Subscribes += o.Subscribes
	m.DeliveryLatency += o.DeliveryLatency
	if o.MaxDeliveryLatency > m.MaxDeliveryLatency {
		m.MaxDeliveryLatency = o.MaxDeliveryLatency
	}
	m.LinkEstablishments += o.LinkEstablishments
	m.LinkFailures += o.LinkFailures
}

// Metrics is a built-in middleware collecting per-broker publish, delivery
// and subscription counters plus delivery-latency statistics. One instance
// is shared by every broker of a deployment and is safe for concurrent use,
// so the same instance works under both System and Live.
//
// Counts reflect the stage's chain position: installed via WithMiddleware
// it runs inside the session layers and therefore observes exactly the
// events they pass through (virtual-client buffering and ghost interception
// are not counted as deliveries).
type Metrics struct {
	PassMiddleware
	mu        sync.Mutex
	perBroker map[NodeID]*BrokerMetrics
	links     map[NodeID]map[NodeID]LinkState
}

// NewMetrics returns an empty metrics stage.
func NewMetrics() *Metrics {
	return &Metrics{
		perBroker: make(map[NodeID]*BrokerMetrics),
		links:     make(map[NodeID]map[NodeID]LinkState),
	}
}

func (m *Metrics) at(b NodeID) *BrokerMetrics {
	bm, ok := m.perBroker[b]
	if !ok {
		bm = &BrokerMetrics{}
		m.perBroker[b] = bm
	}
	return bm
}

// OnPublish implements Middleware.
func (m *Metrics) OnPublish(b *Broker, _ NodeID, _ *Notification, next func()) {
	m.mu.Lock()
	m.at(b.ID()).Publishes++
	m.mu.Unlock()
	next()
}

// OnDeliver implements Middleware.
func (m *Metrics) OnDeliver(b *Broker, _ NodeID, n *Notification, _ []SubID, next func()) {
	m.mu.Lock()
	bm := m.at(b.ID())
	bm.Deliveries++
	if !n.Published.IsZero() {
		lat := b.Now().Sub(n.Published)
		if lat > 0 {
			bm.DeliveryLatency += lat
			if lat > bm.MaxDeliveryLatency {
				bm.MaxDeliveryLatency = lat
			}
		}
	}
	m.mu.Unlock()
	next()
}

// OnSubscribe implements Middleware.
func (m *Metrics) OnSubscribe(b *Broker, _ NodeID, _ *SubscriptionInfo, next func()) {
	m.mu.Lock()
	m.at(b.ID()).Subscribes++
	m.mu.Unlock()
	next()
}

// OnLinkChange implements the LinkObserver extension: overlay health
// rolls up into the per-broker counters and the LinkStates snapshot.
func (m *Metrics) OnLinkChange(b *Broker, ev LinkEvent) {
	m.mu.Lock()
	bm := m.at(b.ID())
	switch {
	case ev.To == LinkEstablished:
		bm.LinkEstablishments++
	case ev.From == LinkEstablished:
		bm.LinkFailures++
	}
	ls, ok := m.links[b.ID()]
	if !ok {
		ls = make(map[NodeID]LinkState)
		m.links[b.ID()] = ls
	}
	ls[ev.Peer] = ev.To
	m.mu.Unlock()
}

// LinkStates snapshots the last observed overlay link state per broker
// and peer — the overlay-health view behind rebeca-broker's -stats.
func (m *Metrics) LinkStates() map[NodeID]map[NodeID]LinkState {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[NodeID]map[NodeID]LinkState, len(m.links))
	for b, ls := range m.links {
		cp := make(map[NodeID]LinkState, len(ls))
		for p, s := range ls {
			cp[p] = s
		}
		out[b] = cp
	}
	return out
}

// Snapshot returns a copy of the per-broker counters.
func (m *Metrics) Snapshot() map[NodeID]BrokerMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[NodeID]BrokerMetrics, len(m.perBroker))
	for id, bm := range m.perBroker {
		out[id] = *bm
	}
	return out
}

// Totals aggregates the counters across brokers.
func (m *Metrics) Totals() BrokerMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	var t BrokerMetrics
	for _, bm := range m.perBroker {
		t.add(*bm)
	}
	return t
}

// --- Tracer --------------------------------------------------------------

// TraceEvent is one observed hook-point crossing.
type TraceEvent struct {
	// At is the broker's (virtual or wall) time.
	At time.Time
	// Broker is where the event was observed.
	Broker NodeID
	// Hook names the hook point: "publish", "deliver", "subscribe" or
	// "link".
	Hook string
	// Node is the immediate sender (publish, subscribe), the local
	// destination port (deliver), or the link's peer broker (link).
	Node NodeID
	// Note identifies the notification (publish, deliver).
	Note NotificationID
	// Sub identifies the subscription (subscribe).
	Sub SubID
	// Info carries the transition summary of a link event
	// ("established <- handshaking: …").
	Info string
}

// tracerCap bounds the retained event log; the log is a ring, so once it
// fills the oldest events are evicted (and counted) — a long-running
// deployment always traces its most recent activity.
const tracerCap = 16384

// Tracer is a built-in middleware recording every publish, delivery and
// subscription crossing the chain. Events are appended to an internal
// bounded ring — the newest tracerCap events are retained, older ones are
// evicted and counted by Dropped — and, when a callback is configured,
// forwarded to it synchronously. Safe for concurrent use; observe-only
// (always passes through). SetEnabled pauses and resumes recording at
// runtime (the ops /config trace knob).
type Tracer struct {
	PassMiddleware
	fn       func(TraceEvent)
	mu       sync.Mutex
	disabled bool
	events   []TraceEvent // ring once len == tracerCap
	head     int          // index of the oldest event while the ring is full
	dropped  int
}

// NewTracer returns a tracing stage, enabled. fn, when non-nil, observes
// every event as it happens (it runs inside the broker's event loop — keep
// it cheap).
func NewTracer(fn func(TraceEvent)) *Tracer { return &Tracer{fn: fn} }

func (t *Tracer) record(e TraceEvent) {
	t.mu.Lock()
	if t.disabled {
		t.mu.Unlock()
		return
	}
	if len(t.events) < tracerCap {
		t.events = append(t.events, e)
	} else {
		// Ring is full: overwrite the oldest event so the log keeps the
		// newest activity.
		t.events[t.head] = e
		t.head = (t.head + 1) % tracerCap
		t.dropped++
	}
	fn := t.fn
	t.mu.Unlock()
	if fn != nil {
		fn(e)
	}
}

// SetEnabled pauses (false) or resumes (true) event recording and the
// callback. The retained log is kept either way.
func (t *Tracer) SetEnabled(on bool) {
	t.mu.Lock()
	t.disabled = !on
	t.mu.Unlock()
}

// Enabled reports whether the tracer is recording.
func (t *Tracer) Enabled() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return !t.disabled
}

// OnPublish implements Middleware.
func (t *Tracer) OnPublish(b *Broker, from NodeID, n *Notification, next func()) {
	t.record(TraceEvent{At: b.Now(), Broker: b.ID(), Hook: "publish", Node: from, Note: n.ID})
	next()
}

// OnDeliver implements Middleware. A delivery matching several
// subscriptions records one event per subscription identity, so per-sub
// delivery audits see every match.
func (t *Tracer) OnDeliver(b *Broker, port NodeID, n *Notification, subs []SubID, next func()) {
	e := TraceEvent{At: b.Now(), Broker: b.ID(), Hook: "deliver", Node: port, Note: n.ID}
	if len(subs) == 0 {
		t.record(e)
	}
	for _, sub := range subs {
		e.Sub = sub
		t.record(e)
	}
	next()
}

// OnSubscribe implements Middleware.
func (t *Tracer) OnSubscribe(b *Broker, from NodeID, sub *SubscriptionInfo, next func()) {
	t.record(TraceEvent{At: b.Now(), Broker: b.ID(), Hook: "subscribe", Node: from, Sub: sub.ID})
	next()
}

// OnLinkChange implements the LinkObserver extension: overlay link
// transitions join the trace as "link" events.
func (t *Tracer) OnLinkChange(b *Broker, ev LinkEvent) {
	t.record(TraceEvent{
		At: ev.At, Broker: b.ID(), Hook: "link", Node: ev.Peer,
		Info: ev.To.String() + " <- " + ev.From.String() + ": " + ev.Reason,
	})
}

// Events returns a copy of the retained event log, in observation order
// (oldest retained event first).
func (t *Tracer) Events() []TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, 0, len(t.events))
	out = append(out, t.events[t.head:]...)
	return append(out, t.events[:t.head]...)
}

// Dropped reports old events evicted to keep the log within its bound
// (the ring retains the newest tracerCap events).
func (t *Tracer) Dropped() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// --- RateLimiter ---------------------------------------------------------

// RateLimiter is a built-in middleware enforcing a per-broker token-bucket
// limit on client publish ingress. Publishes arriving from a broker's local
// ports beyond the configured rate are dropped (short-circuited) at that
// broker; transit traffic from peer brokers is never limited, so one
// broker's hot publisher cannot starve routed notifications. Time comes
// from the broker (virtual under System, wall under Live). Safe for
// concurrent use.
type RateLimiter struct {
	PassMiddleware

	mu        sync.Mutex
	rate      float64 // tokens per second
	burst     float64
	buckets   map[NodeID]*tokenBucket
	dropped   int
	droppedBy map[NodeID]int
	dropHook  func(broker NodeID, id NotificationID)
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// NewRateLimiter returns a limiter admitting perSecond publishes per broker
// with bursts up to burst. burst is raised to at least 1; a perSecond of
// zero or less disables the limiter (everything is admitted) rather than
// silently dropping all traffic once the burst is spent.
func NewRateLimiter(perSecond float64, burst int) *RateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &RateLimiter{
		rate:      perSecond,
		burst:     float64(burst),
		buckets:   make(map[NodeID]*tokenBucket),
		droppedBy: make(map[NodeID]int),
	}
}

// OnPublish implements Middleware: take a token or drop the publish.
func (r *RateLimiter) OnPublish(b *Broker, from NodeID, n *Notification, next func()) {
	if !b.HasPort(from) {
		next() // transit traffic was already admitted at its ingress broker
		return
	}
	now := b.Now()
	r.mu.Lock()
	if r.rate <= 0 {
		r.mu.Unlock()
		next() // disabled
		return
	}
	tb, ok := r.buckets[b.ID()]
	if !ok {
		tb = &tokenBucket{tokens: r.burst, last: now}
		r.buckets[b.ID()] = tb
	}
	if dt := now.Sub(tb.last); dt > 0 {
		tb.tokens += r.rate * dt.Seconds()
		if tb.tokens > r.burst {
			tb.tokens = r.burst
		}
		tb.last = now
	}
	admit := tb.tokens >= 1
	if admit {
		tb.tokens--
	} else {
		r.dropped++
		r.droppedBy[b.ID()]++
	}
	hook := r.dropHook
	r.mu.Unlock()
	if admit {
		next()
	} else if hook != nil && n != nil {
		hook(b.ID(), n.ID)
	}
}

// SetDropHook registers a callback invoked (outside the limiter's lock,
// on the broker's event loop) for every rejected publish — the telemetry
// sampler uses it to retro-capture rate-limited notifications' traces.
func (r *RateLimiter) SetDropHook(fn func(broker NodeID, id NotificationID)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dropHook = fn
}

// SetLimit retunes the limiter at runtime (the ops /config knobs): the
// next publish at every broker sees the new rate and burst. The same
// conventions as NewRateLimiter apply — burst is raised to at least 1,
// perSecond <= 0 disables the limiter.
func (r *RateLimiter) SetLimit(perSecond float64, burst int) {
	if burst < 1 {
		burst = 1
	}
	r.mu.Lock()
	r.rate = perSecond
	r.burst = float64(burst)
	for _, tb := range r.buckets {
		if tb.tokens > r.burst {
			tb.tokens = r.burst
		}
	}
	r.mu.Unlock()
}

// Limit returns the current rate and burst.
func (r *RateLimiter) Limit() (perSecond float64, burst int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rate, int(r.burst)
}

// Dropped reports publishes rejected across all brokers.
func (r *RateLimiter) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// DroppedPerBroker snapshots the rejected-publish counts by broker (the
// telemetry registry's rate-limited collector reads it).
func (r *RateLimiter) DroppedPerBroker() map[NodeID]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[NodeID]int, len(r.droppedBy))
	for id, n := range r.droppedBy {
		out[id] = n
	}
	return out
}

// compile-time interface checks
var (
	_ Middleware   = (*Metrics)(nil)
	_ Middleware   = (*Tracer)(nil)
	_ Middleware   = (*RateLimiter)(nil)
	_ LinkObserver = (*Metrics)(nil)
	_ LinkObserver = (*Tracer)(nil)
)
