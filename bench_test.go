// Benchmarks regenerating every experiment in DESIGN.md's per-experiment
// index (E1–E9) plus micro-benchmarks of the hot paths (filter matching,
// covering, routing-table lookup, end-to-end publish, handover).
//
// Experiment benchmarks report domain metrics via b.ReportMetric —
// coverage (cov%), message counts (msgs/op) — alongside the usual ns/op;
// EXPERIMENTS.md records the shapes. cmd/rebeca-bench prints the full
// paper-style tables.
package rebeca_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"rebeca"
	"rebeca/internal/bench"
	"rebeca/internal/buffer"
	"rebeca/internal/filter"
	"rebeca/internal/message"
	"rebeca/internal/movement"
	"rebeca/internal/proto"
	"rebeca/internal/routing"
	"rebeca/internal/sim"
)

// runOutcome executes a scenario once per iteration and reports coverage.
func runOutcome(b *testing.B, s sim.Scenario) {
	b.Helper()
	var last sim.Outcome
	for i := 0; i < b.N; i++ {
		s.Seed = int64(i) + bench.Seed
		out, err := s.Run()
		if err != nil {
			b.Fatal(err)
		}
		last = out
	}
	if last.PreArrivalExpected > 0 {
		b.ReportMetric(100*last.PreArrivalCoverage(), "prearrival-cov%")
	}
	if last.LiveExpected > 0 {
		b.ReportMetric(100*last.LiveCoverage(), "live-cov%")
	}
	if last.StaticExpected > 0 {
		b.ReportMetric(float64(last.StaticLoss()), "lost")
	}
	b.ReportMetric(float64(last.ControlMsgs+last.DataMsgs), "msgs")
}

// --- E1: physical handover integrity (Fig. 1 left) ---------------------

func benchE1(b *testing.B, mode sim.MobilityMode) {
	runOutcome(b, sim.Scenario{
		Graph:        movement.Line(5),
		StaticOnly:   true,
		StaticStream: true,
		Mobility:     mode,
		Duration:     time.Second,
		NumMobiles:   2,
	})
}

func BenchmarkE1PhysicalHandoverTransparent(b *testing.B) { benchE1(b, sim.MobilityTransparent) }
func BenchmarkE1PhysicalHandoverJEDI(b *testing.B)        { benchE1(b, sim.MobilityJEDI) }
func BenchmarkE1PhysicalHandoverNaive(b *testing.B)       { benchE1(b, sim.MobilityNaive) }

// --- E2: logical adaptation (Fig. 1 right) -------------------------------

func BenchmarkE2LogicalAdaptation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := bench.E2LogicalAdaptation(bench.Seed + int64(i))
		if len(tb.Rows) != 2 {
			b.Fatal("bad table")
		}
	}
}

// --- E3: routing scalability (Fig. 2) ------------------------------------

func benchE3(b *testing.B, brokers int, strat routing.Strategy) {
	g := movement.RandomTree(brokers, 1)
	runOutcome(b, sim.Scenario{
		Graph:       g,
		Strategy:    strat,
		Replication: sim.ReplicationPreSubscribe,
		Duration:    500 * time.Millisecond,
		NumMobiles:  2,
	})
}

func BenchmarkE3RoutingSimple15(b *testing.B)   { benchE3(b, 15, routing.StrategySimple) }
func BenchmarkE3RoutingCovering15(b *testing.B) { benchE3(b, 15, routing.StrategyCovering) }
func BenchmarkE3RoutingSimple31(b *testing.B)   { benchE3(b, 31, routing.StrategySimple) }
func BenchmarkE3RoutingCovering31(b *testing.B) { benchE3(b, 31, routing.StrategyCovering) }

// --- E4: virtual-client indirection (Fig. 3) ------------------------------

func BenchmarkE4VirtualClientOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := bench.E4VirtualClientOverhead(bench.Seed + int64(i))
		if len(tb.Rows) != 2 {
			b.Fatal("bad table")
		}
	}
}

// --- E5: pre-subscription coverage (Fig. 4, headline) ---------------------

func benchE5(b *testing.B, graph *movement.Graph, repl sim.ReplicationMode) {
	walkOn := movement.Line(6)
	runOutcome(b, sim.Scenario{
		Graph:       graph,
		Replication: repl,
		Model: movement.RandomWalk{Graph: walkOn, Spec: movement.DwellSpec{
			Dwell: 50 * time.Millisecond, Jitter: 10 * time.Millisecond,
			Gap: 5 * time.Millisecond,
		}},
		Duration:   time.Second,
		NumMobiles: 3,
	})
}

func BenchmarkE5PreSubscriptionReplicated(b *testing.B) {
	benchE5(b, movement.Line(6), sim.ReplicationPreSubscribe)
}

func BenchmarkE5PreSubscriptionReactive(b *testing.B) {
	benchE5(b, movement.Line(6), sim.ReplicationReactive)
}

func BenchmarkE5PreSubscriptionFlooding(b *testing.B) {
	benchE5(b, movement.Complete(6), sim.ReplicationPreSubscribe)
}

// --- E6: nlb degree sweep --------------------------------------------------

func benchE6(b *testing.B, nlbGraph *movement.Graph) {
	moveOn := movement.Grid(3, 3)
	runOutcome(b, sim.Scenario{
		Graph:       nlbGraph,
		Replication: sim.ReplicationPreSubscribe,
		Model: movement.RandomWalk{Graph: moveOn, Spec: movement.DwellSpec{
			Dwell: 50 * time.Millisecond, Jitter: 10 * time.Millisecond,
			Gap: 5 * time.Millisecond,
		}},
		Duration:   time.Second,
		NumMobiles: 3,
	})
}

func BenchmarkE6NlbLine(b *testing.B)     { benchE6(b, movement.Line(9)) }
func BenchmarkE6NlbGrid4(b *testing.B)    { benchE6(b, movement.Grid(3, 3)) }
func BenchmarkE6NlbGrid8(b *testing.B)    { benchE6(b, movement.Grid8(3, 3)) }
func BenchmarkE6NlbComplete(b *testing.B) { benchE6(b, movement.Complete(9)) }

// --- E7: buffering policies -------------------------------------------------

func benchE7(b *testing.B, ttl time.Duration, cap int) {
	runOutcome(b, sim.Scenario{
		Graph:       movement.Line(6),
		Replication: sim.ReplicationPreSubscribe,
		BufferTTL:   ttl,
		BufferCap:   cap,
		Duration:    time.Second,
		NumMobiles:  3,
	})
}

func BenchmarkE7BufferUnbounded(b *testing.B) { benchE7(b, 0, 0) }
func BenchmarkE7BufferTime100ms(b *testing.B) { benchE7(b, 100*time.Millisecond, 0) }
func BenchmarkE7BufferLast5(b *testing.B)     { benchE7(b, 0, 5) }
func BenchmarkE7BufferCombined(b *testing.B)  { benchE7(b, 100*time.Millisecond, 5) }

// --- E8: shared buffers ------------------------------------------------------

func BenchmarkE8SharedBuffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := bench.E8SharedBuffer(bench.Seed + int64(i))
		if len(tb.Rows) == 0 {
			b.Fatal("bad table")
		}
	}
}

// --- E9: exception mode -------------------------------------------------------

func benchE9(b *testing.B, teleport float64) {
	g := movement.Grid(3, 3)
	spec := movement.DwellSpec{
		Dwell: 50 * time.Millisecond, Jitter: 10 * time.Millisecond, Gap: 5 * time.Millisecond,
	}
	var model movement.Model = movement.RandomWalk{Graph: g, Spec: spec}
	if teleport > 0 {
		model = movement.Mixed{Base: model, Graph: g, Teleport: teleport, Spec: spec}
	}
	runOutcome(b, sim.Scenario{
		Graph:       g,
		Replication: sim.ReplicationPreSubscribe,
		Model:       model,
		Duration:    time.Second,
		NumMobiles:  3,
	})
}

func BenchmarkE9ExceptionModeNoTeleport(b *testing.B) { benchE9(b, 0) }
func BenchmarkE9ExceptionModeTeleport20(b *testing.B) { benchE9(b, 0.2) }
func BenchmarkE9ExceptionModeTeleport50(b *testing.B) { benchE9(b, 0.5) }

// --- micro-benchmarks: hot paths -----------------------------------------

func randomNote(r *rand.Rand) message.Notification {
	return message.NewNotification(map[string]message.Value{
		"service":  message.String("temperature"),
		"location": message.String(fmt.Sprintf("room-%d", r.Intn(50))),
		"value":    message.Float(r.Float64() * 40),
		"floor":    message.Int(int64(r.Intn(5))),
	})
}

func BenchmarkFilterMatch(b *testing.B) {
	f := filter.New(
		filter.Eq("service", message.String("temperature")),
		filter.Le("value", message.Float(25)),
		filter.In("location", message.String("room-1"), message.String("room-2")),
	)
	r := rand.New(rand.NewSource(1))
	notes := make([]message.Notification, 256)
	for i := range notes {
		notes[i] = randomNote(r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Matches(notes[i%len(notes)])
	}
}

func BenchmarkFilterCovers(b *testing.B) {
	f := filter.New(filter.Le("value", message.Float(100)), filter.Exists("service"))
	g := filter.New(filter.Le("value", message.Float(10)),
		filter.Eq("service", message.String("temperature")))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !f.Covers(g) {
			b.Fatal("covering broken")
		}
	}
}

func BenchmarkFilterMerge(b *testing.B) {
	f := filter.New(filter.Eq("svc", message.String("a")), filter.Eq("loc", message.String("x")))
	g := filter.New(filter.Eq("svc", message.String("a")), filter.Eq("loc", message.String("y")))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := filter.Merge(f, g); !ok {
			b.Fatal("merge broken")
		}
	}
}

func benchTableMatch(b *testing.B, entries int) {
	tbl := routing.NewTable()
	r := rand.New(rand.NewSource(7))
	for i := 0; i < entries; i++ {
		f := filter.New(
			filter.Eq("service", message.String("temperature")),
			filter.Eq("location", message.String(fmt.Sprintf("room-%d", r.Intn(50)))),
		)
		tbl.Add(proto.Subscription{ID: message.SubID(fmt.Sprintf("s%d", i)), Filter: f},
			message.NodeID(fmt.Sprintf("L%d", i%8)))
	}
	notes := make([]message.Notification, 256)
	for i := range notes {
		notes[i] = randomNote(r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tbl.Match(notes[i%len(notes)], "none")
	}
}

func BenchmarkTableMatch100(b *testing.B)  { benchTableMatch(b, 100) }
func BenchmarkTableMatch1000(b *testing.B) { benchTableMatch(b, 1000) }

func BenchmarkBufferTimeBasedAdd(b *testing.B) {
	p := buffer.NewTimeBased(100 * time.Millisecond)
	n := message.NewNotification(map[string]message.Value{"k": message.Int(1)})
	t0 := time.Date(2003, 6, 16, 12, 0, 0, 0, time.UTC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.ID = message.NotificationID{Publisher: "p", Seq: uint64(i)}
		p.Add(n, t0.Add(time.Duration(i)*time.Millisecond))
	}
}

func BenchmarkEndToEndPublish(b *testing.B) {
	// One publish through a 5-broker line with a remote subscriber:
	// exercises matching, forwarding and DES scheduling per op.
	g := movement.Line(5)
	cl, err := sim.NewCluster(sim.ClusterConfig{Movement: g})
	if err != nil {
		b.Fatal(err)
	}
	sub := cl.AddClient("sub")
	sub.ConnectTo("B4")
	sub.Subscribe(filter.New(filter.Exists("k")))
	pub := cl.AddClient("pub")
	pub.ConnectTo("B0")
	cl.Net.Run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pub.Publish(map[string]message.Value{"k": message.Int(int64(i))})
		cl.Net.Run()
	}
	if len(sub.Received()) != b.N {
		b.Fatalf("delivered %d of %d", len(sub.Received()), b.N)
	}
}

func BenchmarkHandoverTransparent(b *testing.B) {
	// Full handover round trip per iteration: disconnect, reconnect at
	// the neighbor, relocation protocol to completion.
	g := movement.Line(3)
	cl, err := sim.NewCluster(sim.ClusterConfig{
		Movement: g, Mobility: sim.MobilityTransparent,
	})
	if err != nil {
		b.Fatal(err)
	}
	mob := cl.AddClient("mob")
	mob.ConnectTo("B0")
	mob.Subscribe(filter.New(filter.Exists("k")))
	cl.Net.Run()
	targets := []message.NodeID{"B1", "B0"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mob.Disconnect()
		mob.ConnectTo(targets[i%2])
		cl.Net.Run()
	}
}

func benchTableMatchIndexed(b *testing.B, entries int) {
	tbl := routing.NewIndexedTable()
	r := rand.New(rand.NewSource(7))
	for i := 0; i < entries; i++ {
		f := filter.New(
			filter.Eq("service", message.String("temperature")),
			filter.Eq("location", message.String(fmt.Sprintf("room-%d", r.Intn(50)))),
		)
		tbl.Add(proto.Subscription{ID: message.SubID(fmt.Sprintf("s%d", i)), Filter: f},
			message.NodeID(fmt.Sprintf("L%d", i%8)))
	}
	notes := make([]message.Notification, 256)
	for i := range notes {
		notes[i] = randomNote(r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tbl.Match(notes[i%len(notes)], "none")
	}
}

func BenchmarkTableMatchIndexed100(b *testing.B)  { benchTableMatchIndexed(b, 100) }
func BenchmarkTableMatchIndexed1000(b *testing.B) { benchTableMatchIndexed(b, 1000) }

// --- facade delivery paths: channel stream vs callback adapter ----------

// facadePair builds a 2-broker system with a subscriber on B0 and a
// publisher on B1 through the public facade.
func facadePair(b *testing.B, opts ...rebeca.Option) (*rebeca.System, rebeca.Port, rebeca.Port) {
	b.Helper()
	sys, err := rebeca.New(append([]rebeca.Option{rebeca.WithMovement(movement.Line(2))}, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	sub := sys.NewClient("sub")
	if err := sub.Connect("B0"); err != nil {
		b.Fatal(err)
	}
	pub := sys.NewClient("pub")
	if err := pub.Connect("B1"); err != nil {
		b.Fatal(err)
	}
	return sys, sub, pub
}

// BenchmarkDeliveryCallback measures one publish consumed through the
// OnNotify callback adapter (publish + settle + synchronous callback).
func BenchmarkDeliveryCallback(b *testing.B) {
	sys, sub, pub := facadePair(b)
	count := 0
	sub.OnNotify(func(rebeca.Notification) { count++ })
	sub.Subscribe(rebeca.NewFilter(rebeca.Exists("k")))
	sys.Settle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pub.Publish(map[string]rebeca.Value{"k": rebeca.Int(int64(i))}); err != nil {
			b.Fatal(err)
		}
		sys.Settle()
	}
	if count != b.N {
		b.Fatalf("callback saw %d of %d", count, b.N)
	}
}

// BenchmarkDeliveryChannel measures the same flow consumed through the
// subscription handle's bounded event stream.
func BenchmarkDeliveryChannel(b *testing.B) {
	sys, sub, pub := facadePair(b)
	s := sub.Subscribe(rebeca.NewFilter(rebeca.Exists("k")), rebeca.WithStreamBuffer(4))
	sys.Settle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pub.Publish(map[string]rebeca.Value{"k": rebeca.Int(int64(i))}); err != nil {
			b.Fatal(err)
		}
		sys.Settle()
		<-s.Events()
	}
	if got := s.Stats().Delivered; got != uint64(b.N) {
		b.Fatalf("stream delivered %d of %d", got, b.N)
	}
}

// --- publish framing: N singles vs one batch frame ----------------------

const benchBatchSize = 100

// BenchmarkPublishSingle routes benchBatchSize notifications as individual
// ingress frames per iteration.
func BenchmarkPublishSingle(b *testing.B) {
	sys, sub, pub := facadePair(b)
	s := sub.Subscribe(rebeca.NewFilter(rebeca.Exists("k")),
		rebeca.WithStreamBuffer(benchBatchSize))
	sys.Settle()
	before := sys.MessagesCarried()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < benchBatchSize; j++ {
			if _, err := pub.Publish(map[string]rebeca.Value{"k": rebeca.Int(int64(j))}); err != nil {
				b.Fatal(err)
			}
		}
		sys.Settle()
		for j := 0; j < benchBatchSize; j++ {
			<-s.Events()
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(sys.MessagesCarried()-before)/float64(b.N), "msgs/op")
}

// BenchmarkPublishBatch routes the same notifications as one batch frame
// per iteration.
func BenchmarkPublishBatch(b *testing.B) {
	sys, sub, pub := facadePair(b)
	s := sub.Subscribe(rebeca.NewFilter(rebeca.Exists("k")),
		rebeca.WithStreamBuffer(benchBatchSize))
	sys.Settle()
	batch := make([]map[string]rebeca.Value, benchBatchSize)
	for j := range batch {
		batch[j] = map[string]rebeca.Value{"k": rebeca.Int(int64(j))}
	}
	before := sys.MessagesCarried()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pub.PublishBatch(context.Background(), batch); err != nil {
			b.Fatal(err)
		}
		sys.Settle()
		for j := 0; j < benchBatchSize; j++ {
			<-s.Events()
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(sys.MessagesCarried()-before)/float64(b.N), "msgs/op")
}

// BenchmarkLivePublishThroughput measures the end-to-end publish hot path
// over real loopback TCP: binary wire codec, coalesced flushes, indexed
// matching — one publisher on B1 streaming to one subscriber on B0
// through a 2-broker overlay, consumed concurrently under Block flow
// control. ns/op is the steady-state per-notification pipeline cost
// (publisher → border → overlay link → border → subscriber stream).
func BenchmarkLivePublishThroughput(b *testing.B) {
	benchLivePublish(b)
}

// BenchmarkLivePublishThroughputSampled is the same pipeline with the full
// observability stack on and hop tracing sampled 1-in-64: the unsampled
// 63/64 majority must stay on the cheap path, so this tracks within a few
// percent of the plain benchmark.
func BenchmarkLivePublishThroughputSampled(b *testing.B) {
	benchLivePublish(b,
		rebeca.WithOps("127.0.0.1:0"),
		rebeca.WithTraceSampling(64, 50*time.Millisecond),
	)
}

func benchLivePublish(b *testing.B, opts ...rebeca.Option) {
	live, err := rebeca.NewLive(append([]rebeca.Option{
		rebeca.WithMovement(movement.Line(2)),
		rebeca.WithSettleWindow(100*time.Millisecond, 10*time.Second),
	}, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	defer live.Close()
	sub := live.NewClient("sub")
	if err := sub.Connect("B0"); err != nil {
		b.Fatal(err)
	}
	s := sub.Subscribe(rebeca.NewFilter(rebeca.Exists("k")),
		rebeca.WithStreamBuffer(1024), rebeca.WithOverflow(rebeca.Block))
	pub := live.NewClient("pub")
	if err := pub.Connect("B1"); err != nil {
		b.Fatal(err)
	}
	live.Settle()

	attrs := map[string]rebeca.Value{
		"k":       rebeca.Int(0),
		"service": rebeca.String("temperature"),
		"value":   rebeca.Float(21.5),
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			<-s.Events()
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		attrs["k"] = rebeca.Int(int64(i))
		if _, err := pub.Publish(attrs); err != nil {
			b.Fatal(err)
		}
	}
	<-done
	b.StopTimer()
	if got := s.Stats().Delivered; got != uint64(b.N) {
		b.Fatalf("delivered %d of %d", got, b.N)
	}
}

// BenchmarkOverlayReconverge measures one cut → detect → heal →
// re-establish → flush cycle of the overlay subsystem on a 3-broker line
// (virtual clock): the smoke artifact's reconnect-convergence signal.
func BenchmarkOverlayReconverge(b *testing.B) {
	g := rebeca.NewGraph().AddEdge("A", "B").AddEdge("B", "C")
	sys, err := rebeca.New(
		rebeca.WithMovement(g),
		rebeca.WithHeartbeat(50*time.Millisecond, 150*time.Millisecond),
		rebeca.WithDeliveryLog(16),
	)
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	sub := sys.NewClient("sub")
	if err := sub.Connect("C"); err != nil {
		b.Fatal(err)
	}
	sub.Subscribe(rebeca.NewFilter(rebeca.Exists("k")))
	pub := sys.NewClient("pub")
	if err := pub.Connect("A"); err != nil {
		b.Fatal(err)
	}
	sys.Settle()

	delivered := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.CutLink("A", "B"); err != nil {
			b.Fatal(err)
		}
		sys.Step(300 * time.Millisecond) // heartbeat detection
		if _, err := pub.Publish(map[string]rebeca.Value{"k": rebeca.Int(int64(i))}); err != nil {
			b.Fatal(err)
		}
		if err := sys.HealLink("A", "B"); err != nil {
			b.Fatal(err)
		}
		sys.Step(2 * time.Second) // backoff redial + handshake + flush
		sys.Settle()
		delivered++
		want := delivered
		if want > 16 {
			want = 16 // WithDeliveryLog cap
		}
		if got := len(sub.Received()); got < want {
			b.Fatalf("iteration %d: %d deliveries retained, want %d (queued publish lost)", i, got, want)
		}
	}
}
