package rebeca_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"rebeca"
)

// crashHarness abstracts the two deployment flavors for the crash-recovery
// scenario: build constructs a deployment on the harness's persistent
// store (the same store generation to generation), crash kills the running
// deployment the way that flavor dies (memory-store Crash on the virtual
// clock, abrupt node shutdown without store close over TCP), and
// injectFault — when non-nil — arms the store's fsync faults before the
// buffering phase.
type crashHarness struct {
	build       func(t *testing.T) rebeca.Deployment
	crash       func(d rebeca.Deployment)
	injectFault func()
}

// drainInts collects the "i" attribute of every delivery buffered in the
// stream, waiting up to idle for stragglers (live deliveries arrive
// concurrently).
func drainInts(sub *rebeca.Subscription, idle time.Duration) map[int64]int {
	got := make(map[int64]int)
	for {
		select {
		case d, ok := <-sub.Events():
			if !ok {
				return got
			}
			if v, present := d.Note.Get("i"); present {
				got[v.IntVal()]++
			}
		case <-time.After(idle):
			return got
		}
	}
}

func orderAttrs(i int) map[string]rebeca.Value {
	return map[string]rebeca.Value{
		"topic": rebeca.String("orders"),
		"i":     rebeca.Int(int64(i)),
	}
}

// runCrashRecovery is the headline durable-subscription scenario, shared
// verbatim by the sim and live deployments:
//
//  1. alice durable-subscribes at B0 and disconnects;
//  2. a publisher at B1 streams notifications 1..10, which B0's ghost
//     session appends to its durable queue;
//  3. the broker is killed and a new deployment is built on the same
//     store — recovery resurrects the ghost and re-installs its
//     subscription into the (empty) routing tables;
//  4. a second publisher streams 11..15, which must route to the
//     recovered ghost;
//  5. alice reattaches with the same durable name and must receive
//     exactly 1..15 — no gaps across the crash, no duplicates from the
//     replay.
func runCrashRecovery(t *testing.T, h crashHarness) {
	t.Helper()
	orders := rebeca.NewFilter(rebeca.Eq("topic", rebeca.String("orders")))

	d1 := h.build(t)
	alice := d1.NewClient("alice")
	sub := alice.Subscribe(orders, rebeca.Durable("orders"), rebeca.WithStreamBuffer(64))
	connect(t, alice, "B0")
	d1.Settle()
	if err := alice.Disconnect(); err != nil {
		t.Fatal(err)
	}
	d1.Settle()
	_ = sub // the pre-crash handle dies with d1

	if h.injectFault != nil {
		h.injectFault()
	}
	pubA := d1.NewClient("pub-a")
	connect(t, pubA, "B1")
	d1.Settle()
	for i := 1; i <= 10; i++ {
		if _, err := pubA.Publish(orderAttrs(i)); err != nil {
			t.Fatal(err)
		}
	}
	d1.Settle()
	h.crash(d1)

	d2 := h.build(t)
	defer func() { _ = d2.Close() }()
	d2.Settle() // recovered subscription installs propagate
	pubB := d2.NewClient("pub-b")
	connect(t, pubB, "B1")
	d2.Settle()
	for i := 11; i <= 15; i++ {
		if _, err := pubB.Publish(orderAttrs(i)); err != nil {
			t.Fatal(err)
		}
	}
	d2.Settle()

	alice2 := d2.NewClient("alice")
	sub2 := alice2.Subscribe(orders, rebeca.Durable("orders"), rebeca.WithStreamBuffer(64))
	connect(t, alice2, "B0")
	d2.Settle()

	got := drainInts(sub2, 500*time.Millisecond)
	for i := int64(1); i <= 15; i++ {
		switch got[i] {
		case 1:
		case 0:
			t.Errorf("gap: notification %d lost across the crash", i)
		default:
			t.Errorf("duplicate: notification %d delivered %d times", i, got[i])
		}
	}
	if len(got) != 15 {
		t.Errorf("delivered %d distinct notifications, want 15 (%v)", len(got), got)
	}
	if d := alice2.Duplicates(); d != 0 {
		t.Errorf("client suppressed %d duplicates; replay should be exact here", d)
	}
	if v := alice2.FIFOViolations(); v != 0 {
		t.Errorf("%d FIFO violations across recovery", v)
	}
}

// TestCrashRecoverySim runs the scenario on the virtual clock with an
// in-memory store whose fsyncs transiently fail during the buffering
// phase: the staged-until-synced WAL model must still surface every
// notification after the crash.
func TestCrashRecoverySim(t *testing.T) {
	st := rebeca.NewMemoryStore()
	runCrashRecovery(t, crashHarness{
		build: func(t *testing.T) rebeca.Deployment {
			sys, err := rebeca.New(rebeca.WithMovement(rebeca.Line(2)), rebeca.WithDurable(st))
			if err != nil {
				t.Fatal(err)
			}
			return sys
		},
		crash: func(d rebeca.Deployment) {
			st.Crash() // everything not covered by a successful sync is gone
			_ = d.Close()
		},
		injectFault: func() {
			// The first three fsyncs of the buffering phase fail; later
			// appends' syncs must cover the staged prefix.
			st.FailSyncs(3, errors.New("injected fsync fault"))
		},
	})
}

// TestCrashRecoveryLive runs the identical scenario over real TCP: the
// deployment is killed without closing its WAL (the handles just die, as
// in a crash) and the restarted deployment reopens the same directory.
func TestCrashRecoveryLive(t *testing.T) {
	dir := t.TempDir()
	runCrashRecovery(t, crashHarness{
		build: func(t *testing.T) rebeca.Deployment {
			wal, err := rebeca.OpenWAL(dir)
			if err != nil {
				t.Fatal(err)
			}
			d, err := rebeca.NewLive(rebeca.WithMovement(rebeca.Line(2)), rebeca.WithDurable(wal))
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
		crash: func(d rebeca.Deployment) {
			// Abrupt: tear the TCP nodes down but never Close the WAL —
			// its per-append fsyncs are all the durability a kill leaves.
			_ = d.Close()
		},
	})
}

// TestDurableCancelReleasesQueue asserts that cancelling a durable
// subscription releases its broker-side queue: everything pending is acked
// and the store compacts, so cancelled durable subscribers stop pinning
// WAL state.
func TestDurableCancelReleasesQueue(t *testing.T) {
	st := rebeca.NewMemoryStore()
	sys, err := rebeca.New(rebeca.WithMovement(rebeca.Line(2)), rebeca.WithDurable(st))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	orders := rebeca.NewFilter(rebeca.Eq("topic", rebeca.String("orders")))

	alice := sys.NewClient("alice")
	sub := alice.Subscribe(orders, rebeca.Durable("orders"))
	connect(t, alice, "B0")
	sys.Settle()
	if err := alice.Disconnect(); err != nil {
		t.Fatal(err)
	}
	sys.Settle()

	pub := sys.NewClient("pub")
	connect(t, pub, "B1")
	sys.Settle()
	for i := 1; i <= 5; i++ {
		if _, err := pub.Publish(orderAttrs(i)); err != nil {
			t.Fatal(err)
		}
	}
	sys.Settle()
	queue := "mob/B0/alice"
	if st.State(queue).Pending != 5 {
		t.Fatalf("ghost queue pending = %d, want 5", st.State(queue).Pending)
	}

	// Reconnect (replaying acks the queue), then cancel the durable sub:
	// the session must ack-all and compact.
	connect(t, alice, "B0")
	sys.Settle()
	sub.Cancel()
	sys.Settle()
	if p := st.State(queue).Pending; p != 0 {
		t.Errorf("cancelled durable queue still pins %d records", p)
	}
}

// TestDurableResubscribeOrphansOldHandle: re-subscribing under the same
// durable name supersedes the previous handle — its stream closes (a
// ranging goroutine terminates instead of blocking forever) and the new
// handle owns the deliveries; the old handle's Cancel must not tear the
// new registration down.
func TestDurableResubscribeOrphansOldHandle(t *testing.T) {
	sys := newSystem(t, rebeca.WithMovement(rebeca.Line(2)))
	topic := rebeca.NewFilter(rebeca.Eq("topic", rebeca.String("t")))
	alice := sys.NewClient("alice")
	connect(t, alice, "B0")
	first := alice.Subscribe(topic, rebeca.Durable("orders"))
	second := alice.Subscribe(topic, rebeca.Durable("orders"))
	if first.ID() != second.ID() {
		t.Fatalf("durable IDs diverged: %s vs %s", first.ID(), second.ID())
	}
	if _, ok := <-first.Events(); ok {
		t.Fatal("superseded handle's stream not closed")
	}
	first.Cancel() // must be a no-op, not an unsubscribe of the successor

	pub := sys.NewClient("pub")
	connect(t, pub, "B1")
	sys.Settle()
	if _, err := pub.Publish(map[string]rebeca.Value{
		"topic": rebeca.String("t"), "i": rebeca.Int(1),
	}); err != nil {
		t.Fatal(err)
	}
	sys.Settle()
	select {
	case d := <-second.Events():
		if v, _ := d.Note.Get("i"); v.IntVal() != 1 {
			t.Fatalf("unexpected delivery %v", d.Note)
		}
	default:
		t.Fatal("successor handle received nothing (old Cancel tore it down?)")
	}
}

// TestDurableSubIDStable pins the derived identity durable subscriptions
// rely on across restarts.
func TestDurableSubIDStable(t *testing.T) {
	sys := newSystem(t, rebeca.WithMovement(rebeca.Line(2)))
	f := rebeca.AllFilter()
	c := sys.NewClient("alice")
	s1 := c.Subscribe(f, rebeca.Durable("orders"))
	if want := rebeca.SubID("alice/d:orders"); s1.ID() != want {
		t.Fatalf("durable SubID = %q, want %q", s1.ID(), want)
	}
	// A plain subscription still gets counter identity.
	s2 := c.Subscribe(f)
	if s2.ID() == s1.ID() {
		t.Fatal("counter subscription collided with durable ID")
	}
	if s2.ID() != rebeca.SubID(fmt.Sprintf("alice/s%d", 2)) {
		t.Logf("note: counter ID is %q", s2.ID()) // informative, not pinned
	}
}
