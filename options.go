package rebeca

import (
	"errors"
	"fmt"
	"io"
	"time"

	"rebeca/internal/broker"
	"rebeca/internal/buffer"
	"rebeca/internal/location"
	"rebeca/internal/movement"
	"rebeca/internal/overlay"
	"rebeca/internal/routing"
	"rebeca/internal/store"
	"rebeca/internal/telemetry"
)

// RoutingStrategy selects the subscription-forwarding algorithm.
type RoutingStrategy = routing.Strategy

// Routing strategies.
const (
	// StrategySimple forwards every subscription on every other link.
	StrategySimple = routing.StrategySimple
	// StrategyCovering suppresses subscriptions covered by broader ones.
	StrategyCovering = routing.StrategyCovering
	// StrategyFlooding forwards no subscriptions; notifications flood.
	StrategyFlooding = routing.StrategyFlooding
)

// config is the resolved deployment description both New (virtual clock)
// and NewLive (TCP) build from.
type config struct {
	movement       *movement.Graph
	locations      *location.Model
	reactive       bool
	shared         bool
	context        func(b NodeID) ContextResolverFunc
	bufferTTL      time.Duration
	bufferCap      int
	linkLatency    time.Duration
	latencyJitter  time.Duration
	jitterSeed     int64
	strategy       routing.Strategy
	advertisements bool
	linear         bool
	middleware     []broker.Middleware
	settleQuiet    time.Duration
	settleMax      time.Duration
	deliveryLog    int
	window         int
	store          store.Store
	overlay        bool
	hbInterval     time.Duration
	hbTimeout      time.Duration
	linkPendingCap int
	spillStore     store.Store
	spillMax       int64
	linkObserver   overlay.Observer
	opsAddr        string
	mesh           bool
	registry       string
	pushURL        string
	pushInterval   time.Duration
	pushFormat     string
	sampleN        int64
	slowThresh     time.Duration
	pendingCap     int
	logWriter      io.Writer
	logLevel       string
	logging        bool

	errs []error
}

// overlaySettings resolves the heartbeat and queue options into the
// overlay manager's settings (zero fields take the overlay package
// defaults).
func (c *config) overlaySettings() overlay.Settings {
	return overlay.Settings{
		HeartbeatInterval: c.hbInterval,
		HeartbeatTimeout:  c.hbTimeout,
		PendingCap:        c.linkPendingCap,
	}
}

// logCap translates the WithDeliveryLog option to the client library's
// convention: the log is opt-in, so "not configured" disables it.
func (c *config) logCap() int {
	if c.deliveryLog > 0 {
		return c.deliveryLog
	}
	return -1
}

// Option configures a deployment built by New or NewLive.
type Option func(*config)

// newConfig applies the options over the defaults and validates what can be
// validated locally. Deployment-specific validation (e.g. NewLive's
// tree-topology requirement) happens in the constructors.
func newConfig(opts []Option) (*config, error) {
	c := &config{
		strategy:    routing.StrategySimple,
		settleQuiet: 50 * time.Millisecond,
		settleMax:   10 * time.Second,
	}
	for _, opt := range opts {
		opt(c)
	}
	if c.movement == nil {
		c.errs = append(c.errs, errors.New("rebeca: a movement graph is required (WithMovement)"))
	}
	if len(c.errs) > 0 {
		return nil, errors.Join(c.errs...)
	}
	if c.locations == nil {
		c.locations = location.Regions(c.movement.Nodes())
	}
	return c, nil
}

// bufferFactory resolves the TTL/cap bounds into a buffer policy factory
// (nil = deployment default, an unbounded buffer).
func (c *config) bufferFactory() buffer.Factory {
	switch {
	case c.bufferTTL > 0 && c.bufferCap > 0:
		return func() buffer.Policy { return buffer.NewCombined(c.bufferTTL, c.bufferCap) }
	case c.bufferTTL > 0:
		return func() buffer.Policy { return buffer.NewTimeBased(c.bufferTTL) }
	case c.bufferCap > 0:
		return func() buffer.Policy { return buffer.NewLastN(c.bufferCap) }
	}
	return nil
}

// WithMovement sets the movement graph. The broker overlay is its spanning
// tree and the replicator neighborhood (nlb) derives from its edges.
// Required.
func WithMovement(g *Graph) Option {
	return func(c *config) {
		if g == nil {
			c.errs = append(c.errs, errors.New("rebeca: WithMovement(nil)"))
			return
		}
		c.movement = g
	}
}

// WithLocations maps brokers to logical location scopes. Defaults to one
// same-named region per broker.
func WithLocations(m *LocationModel) Option {
	return func(c *config) { c.locations = m }
}

// WithReactiveBaseline disables the replicator's pre-subscriptions:
// location-dependent subscriptions resolve only at the client's current
// broker (the paper's reactive baseline).
func WithReactiveBaseline() Option {
	return func(c *config) { c.reactive = true }
}

// WithSharedBuffers switches replicators to one refcounted notification
// store per broker instead of one buffer per virtual client.
func WithSharedBuffers() Option {
	return func(c *config) { c.shared = true }
}

// WithContextResolver resolves generalized context markers (§4) per broker.
func WithContextResolver(fn func(b NodeID) ContextResolverFunc) Option {
	return func(c *config) { c.context = fn }
}

// WithBufferTTL bounds virtual-client and ghost buffers by age
// (0 = unbounded).
func WithBufferTTL(d time.Duration) Option {
	return func(c *config) {
		if d < 0 {
			c.errs = append(c.errs, fmt.Errorf("rebeca: WithBufferTTL(%s): negative", d))
			return
		}
		c.bufferTTL = d
	}
}

// WithBufferCap bounds virtual-client and ghost buffers by count
// (0 = unbounded).
func WithBufferCap(n int) Option {
	return func(c *config) {
		if n < 0 {
			c.errs = append(c.errs, fmt.Errorf("rebeca: WithBufferCap(%d): negative", n))
			return
		}
		c.bufferCap = n
	}
}

// WithLinkLatency sets the simulated per-hop overlay delay (default 1ms).
// NewLive ignores it: real TCP links have real latency.
func WithLinkLatency(d time.Duration) Option {
	return func(c *config) {
		if d < 0 {
			c.errs = append(c.errs, fmt.Errorf("rebeca: WithLinkLatency(%s): negative", d))
			return
		}
		c.linkLatency = d
	}
}

// WithLatencyJitter adds a deterministic uniform random delay in [0, d) to
// every simulated transmission. NewLive ignores it.
func WithLatencyJitter(d time.Duration, seed int64) Option {
	return func(c *config) {
		if d < 0 {
			c.errs = append(c.errs, fmt.Errorf("rebeca: WithLatencyJitter(%s): negative", d))
			return
		}
		c.latencyJitter = d
		c.jitterSeed = seed
	}
}

// WithRoutingStrategy selects the subscription-forwarding algorithm
// (default StrategySimple).
func WithRoutingStrategy(s RoutingStrategy) Option {
	return func(c *config) {
		switch s {
		case routing.StrategySimple, routing.StrategyCovering, routing.StrategyFlooding:
			c.strategy = s
		default:
			c.errs = append(c.errs, fmt.Errorf("rebeca: WithRoutingStrategy(%d): unknown strategy", s))
		}
	}
}

// WithAdvertisements gates subscription forwarding on publisher
// advertisements (advertisement-based routing).
func WithAdvertisements() Option {
	return func(c *config) { c.advertisements = true }
}

// WithIndexedMatching backs routing tables with the counting matching
// index.
//
// Deprecated: indexed matching is the default since PR 5; this option is a
// true no-op kept for compatibility (in particular it does not override a
// WithLinearMatching elsewhere in the option list). Use WithLinearMatching
// to revert to linear scans (the E3 ablation baseline).
func WithIndexedMatching() Option {
	return func(*config) {}
}

// WithLinearMatching reverts every broker's routing table to linear scans
// instead of the counting matching index — same semantics, O(table) per
// publish. Only useful as the ablation baseline for the E3 matching
// experiments.
func WithLinearMatching() Option {
	return func(c *config) { c.linear = true }
}

// WithMiddleware appends stages to every broker's extension chain, in the
// given order, after the built-in session layers (mobility manager,
// replicator) — stages observe the traffic the session layers pass
// through. The same instances are installed on every broker; under NewLive
// each broker runs its own event loop, so shared stages must be safe for
// concurrent use (the built-ins are).
func WithMiddleware(ms ...Middleware) Option {
	return func(c *config) {
		for _, m := range ms {
			if m == nil {
				c.errs = append(c.errs, errors.New("rebeca: WithMiddleware(nil)"))
				return
			}
		}
		c.middleware = append(c.middleware, ms...)
	}
}

// WithDeliveryLog makes every Port retain its last n deliveries for
// inspection via Received. The log is opt-in: without this option ports
// record no history (mobile consumers cannot absorb unbounded delivery
// state), and the per-subscription streams plus their Stats are the
// delivery surface.
func WithDeliveryLog(n int) Option {
	return func(c *config) {
		if n <= 0 {
			c.errs = append(c.errs, fmt.Errorf("rebeca: WithDeliveryLog(%d): want n > 0", n))
			return
		}
		c.deliveryLog = n
	}
}

// WithDeliveryWindow sets the per-client credit window a Live deployment's
// ports announce to their border broker: the broker keeps at most n
// deliveries in flight ahead of the application's consumption, so a
// Block-policy stream exerts backpressure after at most n notifications.
// Default wire.DefaultWindow (64). The virtual-clock System ignores it
// (its network has no transport to flow control).
func WithDeliveryWindow(n int) Option {
	return func(c *config) {
		if n <= 0 {
			c.errs = append(c.errs, fmt.Errorf("rebeca: WithDeliveryWindow(%d): want n > 0", n))
			return
		}
		c.window = n
	}
}

// WithDurable backs the deployment's buffering layers with a persistence
// store: mobility-session (ghost/handover) buffers and replicator
// virtual-client buffers append every notification before it counts as
// buffered and ack only on confirmed delivery or handover, and session
// profiles are snapshotted so a deployment rebuilt on the same store — a
// restarted broker — recovers its disconnected subscribers, re-installs
// their subscriptions and replays the pending backlog exactly once (the
// client library's dedup set suppresses any at-least-once overlap).
//
// Use NewMemoryStore for the virtual-clock System (its Crash and
// fsync-fault hooks drive recovery tests) and OpenWAL for live
// deployments. The same store instance is shared by every broker in the
// deployment; per-broker namespacing is internal.
func WithDurable(s Store) Option {
	return func(c *config) {
		if s == nil {
			c.errs = append(c.errs, errors.New("rebeca: WithDurable(nil)"))
			return
		}
		c.store = s
	}
}

// WithHeartbeat tunes the overlay's link supervision: established
// broker↔broker links exchange KPing/KPong probes every interval, and a
// link silent for longer than timeout is declared failed — it goes
// degraded, outbound messages queue in its bounded pending buffer, and
// the dialing side reconnects with jittered exponential backoff; the sync
// handshake on re-establishment replays routing installs before the
// backlog flushes. timeout 0 defaults to 3×interval.
//
// Under NewLive the overlay manager always supervises broker links (this
// option only tunes it; defaults 1s/3s). Under New the overlay is
// deployed only when this option is given — it adds handshake and
// heartbeat traffic to the virtual network, which the traffic-accounting
// experiments must opt into — and runs on the virtual clock: use
// System.Step to advance through detection and reconnect windows, and
// System.CutLink/HealLink to script link failures.
func WithHeartbeat(interval, timeout time.Duration) Option {
	return func(c *config) {
		if interval <= 0 {
			c.errs = append(c.errs, fmt.Errorf("rebeca: WithHeartbeat(%s, %s): want interval > 0", interval, timeout))
			return
		}
		if timeout != 0 && timeout < interval {
			c.errs = append(c.errs, fmt.Errorf("rebeca: WithHeartbeat(%s, %s): want timeout >= interval (or 0 for the default)", interval, timeout))
			return
		}
		c.overlay = true
		c.hbInterval = interval
		c.hbTimeout = timeout
	}
}

// WithLinkSpill makes arbitrarily long partitions survivable: when a
// degraded broker↔broker link's in-memory pending queue reaches its cap,
// overflow spills to the store as a per-link queue ("ovl/<broker>/<peer>")
// instead of being dropped — append-before-evict, replayed in order after
// the re-establishment sync handshake and before fresh traffic, acked on
// confirmed flush and compacted on drain. maxBytes bounds each link's
// spilled bytes (0 = the overlay package default, 256 MiB); past the
// budget the spill drops its own oldest records, counted in
// rebeca_link_spill_dropped_total and rebeca_link_dropped_total. A link
// still replaying its backlog reports "established, flushing" on /readyz.
//
// The store may be the same instance as WithDurable's — queue namespaces
// never collide. Spill IO runs only on paths a healthy link never takes,
// so deployments without this option (or whose links stay up) pay
// nothing. Under New the overlay must be deployed (WithHeartbeat); under
// NewLive it always is.
func WithLinkSpill(s Store, maxBytes int64) Option {
	return func(c *config) {
		if s == nil {
			c.errs = append(c.errs, errors.New("rebeca: WithLinkSpill(nil)"))
			return
		}
		if maxBytes < 0 {
			c.errs = append(c.errs, fmt.Errorf("rebeca: WithLinkSpill(%d): negative budget", maxBytes))
			return
		}
		c.spillStore = s
		c.spillMax = maxBytes
	}
}

// WithLinkPendingCap bounds each overlay link's in-memory pending queue
// (default overlay.DefaultSettings' 4096). Messages beyond the cap spill
// to the WithLinkSpill store when one is configured and are dropped
// oldest-first otherwise. Chaos tests use small caps to exercise the
// overflow paths without pumping thousands of messages.
func WithLinkPendingCap(n int) Option {
	return func(c *config) {
		if n <= 0 {
			c.errs = append(c.errs, fmt.Errorf("rebeca: WithLinkPendingCap(%d): want n > 0", n))
			return
		}
		c.linkPendingCap = n
	}
}

// WithMeshRouting lifts the tree requirement on the movement graph: the
// broker overlay becomes the graph itself — every movement edge a broker
// link, cycles legal — instead of its spanning tree. Brokers run a
// replicated spanning-tree election over the declared edges (root =
// lowest broker ID, re-elected on any membership or link change) and
// forward on the elected tree, so the paper's acyclicity invariant holds
// per election epoch while redundant links become failover paths: cut a
// tree link and the next election routes around it. Works under both New
// (combine with WithHeartbeat so CutLink feeds the election) and NewLive.
func WithMeshRouting() Option {
	return func(c *config) { c.mesh = true }
}

// WithRegistry switches a live deployment to registry-driven membership:
// instead of dialing a static neighbor list, every broker registers with
// the named registry (same URIs as rebeca-broker's -registry flag —
// file:<path>, dns:<name>, seed:<listen>[,<seed>…]) and a membership
// supervisor per node watches it, dialing discovered peers under the
// deterministic smaller-ID-dials rule and closing links to departed
// ones. Each broker restricts its adjacency to its movement-graph
// neighbors, so the registered mesh mirrors the movement graph. Implies
// WithMeshRouting. NewLive only — the virtual-clock System has no
// transport for a registry to point at.
func WithRegistry(uri string) Option {
	return func(c *config) {
		if uri == "" {
			c.errs = append(c.errs, errors.New("rebeca: WithRegistry(\"\"): want a registry URI (file:, dns: or seed:)"))
			return
		}
		c.registry = uri
		c.mesh = true
	}
}

// WithOps hosts the telemetry subsystem's HTTP operations endpoint on addr
// (e.g. ":9090", or "127.0.0.1:0" to bind an ephemeral port — read it back
// with Ops().Addr()). The endpoint serves Prometheus-exposition /metrics,
// /healthz, /readyz (gated on overlay convergence: every broker link
// established and its initial routing sync applied), /trace?note=<id>
// (multi-hop path reconstruction from hop-propagated trace spans),
// GET/POST /config (runtime knobs: heartbeat, rate limits, trace
// verbosity) and net/http/pprof under /debug/pprof/.
//
// The option installs the telemetry middleware stage on every broker and
// wires the deployment's collectors (overlay link state, WAL segments,
// stream buffer depths, codec frame sizes) into one registry. Without it a
// deployment carries no telemetry instrumentation and pays no cost.
func WithOps(addr string) Option {
	return func(c *config) {
		if addr == "" {
			c.errs = append(c.errs, errors.New("rebeca: WithOps(\"\"): want a listen address"))
			return
		}
		c.opsAddr = addr
	}
}

// WithOpsPush adds a push-model metric export path: a pusher goroutine
// snapshots the telemetry registry every interval and POSTs it to url —
// Prometheus text exposition by default (see WithOpsPushFormat) — with
// retry/backoff and a bounded in-memory spool across receiver outages.
// This is how a broker behind NAT reports without being scraped; it
// builds the same telemetry stack as WithOps and composes with it, but
// does not require it — push-only deployments never open a listen port.
// interval 0 defaults to 15s.
func WithOpsPush(url string, interval time.Duration) Option {
	return func(c *config) {
		if url == "" {
			c.errs = append(c.errs, errors.New("rebeca: WithOpsPush(\"\"): want a receiver URL"))
			return
		}
		if interval < 0 {
			c.errs = append(c.errs, fmt.Errorf("rebeca: WithOpsPush(%q, %s): negative interval", url, interval))
			return
		}
		c.pushURL = url
		c.pushInterval = interval
	}
}

// WithOpsPushFormat selects the push body format: "prom" (Prometheus
// text exposition, the default), "json" (compact delta JSON — counters
// ship movement since the last snapshot, gauges ship absolute) or
// "remote-write" (Prometheus remote-write 1.0 protobuf, uncompressed —
// for pushing straight into a Prometheus/Mimir/Thanos receiver; span
// export is disabled in this format, since only a rebeca collector
// understands span bodies).
func WithOpsPushFormat(format string) Option {
	return func(c *config) {
		switch format {
		case "prom", "json", "remote-write":
			c.pushFormat = format
		default:
			c.errs = append(c.errs, fmt.Errorf("rebeca: WithOpsPushFormat(%q): want prom, json or remote-write", format))
		}
	}
}

// WithTraceSampling bounds hop tracing to 1-in-n notifications, decided
// by a deterministic hash of the notification ID so every broker on a
// path agrees with no extra wire bits (n <= 1 restores stamp-everything).
// Paths that matter escape the dice: a delivery slower than slow (0
// disables the threshold) and anything hitting a drop/rate-limit/
// flood-fallback branch is retro-captured from a small pending-decision
// ring, tagged with its reason. Both n and slow are runtime-tunable via
// the ops endpoint's "sample" and "slow" knobs.
func WithTraceSampling(n int64, slow time.Duration) Option {
	return func(c *config) {
		if n < 0 {
			c.errs = append(c.errs, fmt.Errorf("rebeca: WithTraceSampling(%d, %s): negative rate", n, slow))
			return
		}
		if slow < 0 {
			c.errs = append(c.errs, fmt.Errorf("rebeca: WithTraceSampling(%d, %s): negative threshold", n, slow))
			return
		}
		if n == 0 {
			n = 1
		}
		c.sampleN = n
		c.slowThresh = slow
	}
}

// WithTracePendingCap bounds the trace sampler's pending-decision ring:
// how many unsampled notifications keep their hop paths parked awaiting
// a possible slow/drop retro-capture verdict (default 1024, drop-oldest;
// evictions count in rebeca_trace_pending_evicted_total). Raise it on
// high-fan-in brokers where verdicts lag arrivals; lower it to shrink
// the tracing footprint. Runtime-tunable via the ops endpoint's
// "trace.pending" knob. Implies trace sampling state exists even without
// WithTraceSampling (at the stamp-everything default rate).
func WithTracePendingCap(n int) Option {
	return func(c *config) {
		if n <= 0 {
			c.errs = append(c.errs, fmt.Errorf("rebeca: WithTracePendingCap(%d): want n > 0", n))
			return
		}
		c.pendingCap = n
	}
}

// WithLogging attaches the deployment's structured log stream: slog text
// lines to w (nil = os.Stderr) from every subsystem — overlay link
// transitions, discovery membership events, spanning-tree recomputations,
// WAL rotation/compaction, wire handshake refusals — each behind its own
// verbosity gate starting at level ("debug", "info", "warn" or "error";
// "" = info). With an ops endpoint, the gates surface as /config
// log.<subsystem> knobs, so verbosity tunes per subsystem at runtime.
func WithLogging(w io.Writer, level string) Option {
	return func(c *config) {
		if level != "" {
			if _, err := telemetry.ParseLevel(level); err != nil {
				c.errs = append(c.errs, fmt.Errorf("rebeca: WithLogging: %v", err))
				return
			}
		}
		c.logging = true
		c.logWriter = w
		c.logLevel = level
	}
}

// WithLinkObserver registers an observer for overlay link transitions
// (connecting → handshaking → established → degraded), in addition to any
// LinkObserver middleware stages on the broker chains. The callback runs
// on whatever goroutine drove the transition and must not block.
func WithLinkObserver(fn func(LinkEvent)) Option {
	return func(c *config) {
		if fn == nil {
			c.errs = append(c.errs, errors.New("rebeca: WithLinkObserver(nil)"))
			return
		}
		c.linkObserver = overlay.Observer(fn)
	}
}

// WithSettleWindow tunes Live.Settle's quiescence detection: the deployment
// counts as settled after `quiet` with no observable broker or client
// activity; `max` caps the wait. The virtual-clock System ignores it
// (Settle there is exact). Defaults: 50ms quiet, 10s max.
func WithSettleWindow(quiet, max time.Duration) Option {
	return func(c *config) {
		if quiet <= 0 || max <= 0 || max < quiet {
			c.errs = append(c.errs, fmt.Errorf("rebeca: WithSettleWindow(%s, %s): want 0 < quiet <= max", quiet, max))
			return
		}
		c.settleQuiet = quiet
		c.settleMax = max
	}
}

// The deprecated Options struct and NewSystem shim were removed once all
// in-repo callers migrated to functional options; CHANGES.md keeps the
// field-by-field migration table.
