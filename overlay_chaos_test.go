package rebeca_test

import (
	"fmt"
	"testing"
	"time"

	"rebeca"
)

// linkChaos is the overlay-failure surface both deployment flavors
// expose: System cuts the simulated fabric, Live kills TCP conns and
// blocks re-establishment until heal.
type linkChaos interface {
	CutLink(a, b rebeca.NodeID) error
	HealLink(a, b rebeca.NodeID) error
	LinkStates(b rebeca.NodeID) map[rebeca.NodeID]rebeca.LinkState
}

// chaosHarness runs the same scenario code against both flavors:
// advance moves time (virtual Step vs. wall-clock sleep) and waitLinks
// polls for a link-state condition.
type chaosHarness struct {
	d       rebeca.Deployment
	chaos   linkChaos
	advance func(time.Duration)
}

func simChaosHarness(t *testing.T, opts ...rebeca.Option) *chaosHarness {
	t.Helper()
	sys, err := rebeca.New(append(opts,
		rebeca.WithHeartbeat(50*time.Millisecond, 200*time.Millisecond))...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sys.Close() })
	return &chaosHarness{
		d:     sys,
		chaos: sys,
		advance: func(d time.Duration) {
			sys.Step(d)
			sys.Settle()
		},
	}
}

func liveChaosHarness(t *testing.T, opts ...rebeca.Option) *chaosHarness {
	t.Helper()
	d, err := rebeca.NewLive(append(opts,
		rebeca.WithHeartbeat(40*time.Millisecond, 160*time.Millisecond),
		rebeca.WithSettleWindow(60*time.Millisecond, 10*time.Second))...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d.Close() })
	return &chaosHarness{
		d:     d,
		chaos: d,
		advance: func(dur time.Duration) {
			time.Sleep(dur)
			d.Settle()
		},
	}
}

// waitEstablished polls (advancing time) until every given link is
// established again.
func (h *chaosHarness) waitEstablished(t *testing.T, edges [][2]rebeca.NodeID) {
	t.Helper()
	for i := 0; i < 100; i++ {
		ok := true
		for _, e := range edges {
			if h.chaos.LinkStates(e[0])[e[1]] != rebeca.LinkEstablished ||
				h.chaos.LinkStates(e[1])[e[0]] != rebeca.LinkEstablished {
				ok = false
			}
		}
		if ok {
			return
		}
		h.advance(50 * time.Millisecond)
	}
	t.Fatalf("links never re-established: %v / %v",
		h.chaos.LinkStates("A"), h.chaos.LinkStates("B"))
}

// runLinkFlapScenario is the ISSUE's chaos scenario, shared verbatim by
// the sim and live deployments: a 3-broker line A-B-C, a durable and a
// volatile subscriber at C, a publisher at A. Links are cut and healed
// mid-publish — including killing both of the middle broker's links at
// once (the partition analog of restarting it). Durable subscribers must
// see every notification exactly once and in order (gap-free); volatile
// subscribers must converge (receive post-heal traffic).
func runLinkFlapScenario(t *testing.T, h *chaosHarness) {
	t.Helper()

	durable := h.d.NewClient("durable")
	if err := durable.Connect("C"); err != nil {
		t.Fatal(err)
	}
	f := rebeca.NewFilter(rebeca.Eq("topic", rebeca.String("chaos")))
	dsub := durable.Subscribe(f, rebeca.Durable("chaos"), rebeca.WithStreamBuffer(256))
	_ = dsub

	volatileSub := h.d.NewClient("volatile")
	if err := volatileSub.Connect("C"); err != nil {
		t.Fatal(err)
	}
	volatileSub.Subscribe(f, rebeca.WithStreamBuffer(256))

	pub := h.d.NewClient("pub")
	if err := pub.Connect("A"); err != nil {
		t.Fatal(err)
	}
	h.d.Settle()

	seq := 0
	wave := func(n int) {
		for i := 0; i < n; i++ {
			seq++
			if _, err := pub.Publish(map[string]rebeca.Value{
				"topic": rebeca.String("chaos"), "n": rebeca.Int(int64(seq)),
			}); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Wave 1: healthy line.
	wave(5)
	h.advance(100 * time.Millisecond)

	// Cut A-B mid-stream; publishes queue at A's link manager.
	if err := h.chaos.CutLink("A", "B"); err != nil {
		t.Fatal(err)
	}
	h.advance(300 * time.Millisecond) // past detection
	wave(5)
	h.advance(100 * time.Millisecond)
	if err := h.chaos.HealLink("A", "B"); err != nil {
		t.Fatal(err)
	}
	h.waitEstablished(t, [][2]rebeca.NodeID{{"A", "B"}})
	wave(5)
	h.advance(100 * time.Millisecond)

	// Partition the middle broker entirely (both links), then heal —
	// the cut/heal analog of killing and restarting it.
	if err := h.chaos.CutLink("A", "B"); err != nil {
		t.Fatal(err)
	}
	if err := h.chaos.CutLink("B", "C"); err != nil {
		t.Fatal(err)
	}
	h.advance(300 * time.Millisecond)
	wave(5)
	h.advance(100 * time.Millisecond)
	if err := h.chaos.HealLink("A", "B"); err != nil {
		t.Fatal(err)
	}
	if err := h.chaos.HealLink("B", "C"); err != nil {
		t.Fatal(err)
	}
	h.waitEstablished(t, [][2]rebeca.NodeID{{"A", "B"}, {"B", "C"}})
	wave(5)

	// Drain: everything queued must flush.
	for i := 0; i < 50; i++ {
		h.advance(100 * time.Millisecond)
		if durable.Duplicates() >= 0 && len(received(durable)) == seq {
			break
		}
	}

	// Durable: gap-free, duplicate-free, in order.
	got := received(durable)
	if len(got) != seq {
		t.Fatalf("durable subscriber: %d deliveries, want %d (gap-free): %v", len(got), seq, gaps(got, seq))
	}
	if d := durable.Duplicates(); d != 0 {
		t.Errorf("durable subscriber saw %d duplicates", d)
	}
	if v := durable.FIFOViolations(); v != 0 {
		t.Errorf("durable subscriber saw %d FIFO violations", v)
	}

	// Volatile: must have converged — the final post-heal wave arrives.
	vGot := received(volatileSub)
	final := false
	for _, d := range vGot {
		if n, ok := d.Note.Attrs["n"]; ok && n.IntVal() == int64(seq) {
			final = true
		}
	}
	if !final {
		t.Errorf("volatile subscriber never converged: last wave missing (have %d deliveries)", len(vGot))
	}
	if v := volatileSub.Duplicates(); v != 0 {
		t.Errorf("volatile subscriber saw %d duplicates", v)
	}
}

func received(p rebeca.Port) []rebeca.Delivery { return p.Received() }

// gaps summarizes which sequence numbers are missing (test diagnostics).
func gaps(ds []rebeca.Delivery, want int) string {
	seen := make(map[int64]bool, len(ds))
	for _, d := range ds {
		if n, ok := d.Note.Attrs["n"]; ok {
			seen[n.IntVal()] = true
		}
	}
	missing := ""
	for i := int64(1); i <= int64(want); i++ {
		if !seen[i] {
			missing += fmt.Sprintf(" %d", i)
		}
	}
	if missing == "" {
		return "none"
	}
	return "missing:" + missing
}

func TestLinkFlapChaosSim(t *testing.T) {
	g := rebeca.NewGraph().AddEdge("A", "B").AddEdge("B", "C")
	h := simChaosHarness(t,
		rebeca.WithMovement(g),
		rebeca.WithDurable(rebeca.NewMemoryStore()),
		rebeca.WithDeliveryLog(256),
	)
	runLinkFlapScenario(t, h)
}

func TestLinkFlapChaosLive(t *testing.T) {
	if testing.Short() {
		// The live flavor sleeps through real detection/backoff windows;
		// the CI link-flap job runs it in its own lane.
		t.Skip("live link-flap scenario skipped in -short mode")
	}
	g := rebeca.NewGraph().AddEdge("A", "B").AddEdge("B", "C")
	h := liveChaosHarness(t,
		rebeca.WithMovement(g),
		rebeca.WithDurable(rebeca.NewMemoryStore()),
		rebeca.WithDeliveryLog(256),
	)
	runLinkFlapScenario(t, h)
}

// TestCutLinkRequiresOverlay: the chaos surface is only meaningful on an
// overlay-managed System.
func TestCutLinkRequiresOverlay(t *testing.T) {
	g := rebeca.NewGraph().AddEdge("A", "B")
	sys, err := rebeca.New(rebeca.WithMovement(g))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.CutLink("A", "B"); err == nil {
		t.Fatal("CutLink without WithHeartbeat must fail")
	}
	if got := sys.LinkStates("A"); got != nil {
		t.Fatalf("LinkStates without overlay = %v, want nil", got)
	}
}

// TestLiveCutLinkUnknownBroker: chaos on brokers outside the deployment
// reports the standard unknown-broker error.
func TestLiveCutLinkUnknownBroker(t *testing.T) {
	g := rebeca.NewGraph().AddEdge("A", "B")
	d, err := rebeca.NewLive(rebeca.WithMovement(g))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.CutLink("A", "Z"); err == nil {
		t.Fatal("CutLink to an unknown broker must fail")
	}
}
