package rebeca_test

import (
	"testing"
	"time"

	"rebeca"
)

// pubSubSystem builds a 3-broker line with a subscriber on B0 and a
// publisher on B2, with the given middleware installed.
func pubSubSystem(t *testing.T, mws ...rebeca.Middleware) (*rebeca.System, rebeca.Port, rebeca.Port) {
	t.Helper()
	sys := newSystem(t,
		rebeca.WithMovement(rebeca.Line(3)),
		rebeca.WithMiddleware(mws...),
		rebeca.WithDeliveryLog(64),
	)
	sub := sys.NewClient("sub")
	connect(t, sub, "B0")
	sub.Subscribe(rebeca.NewFilter(rebeca.Exists("n")))
	sys.Settle()
	pub := sys.NewClient("pub")
	connect(t, pub, "B2")
	return sys, sub, pub
}

func TestMetricsMiddleware(t *testing.T) {
	metrics := rebeca.NewMetrics()
	sys, sub, pub := pubSubSystem(t, metrics)
	for i := 0; i < 4; i++ {
		if _, err := pub.Publish(map[string]rebeca.Value{"n": rebeca.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	sys.Settle()

	if got := len(sub.Received()); got != 4 {
		t.Fatalf("received %d, want 4", got)
	}
	totals := metrics.Totals()
	if totals.Deliveries != 4 {
		t.Errorf("deliveries = %d, want 4", totals.Deliveries)
	}
	// Each publish transits B2, B1, B0: three routing events per publish.
	if totals.Publishes != 12 {
		t.Errorf("publishes = %d, want 12", totals.Publishes)
	}
	// The subscription installs at every broker along the line.
	if totals.Subscribes != 3 {
		t.Errorf("subscribes = %d, want 3", totals.Subscribes)
	}
	// Three 1ms hops upstream of the delivering broker: client to B2,
	// B2 to B1, B1 to B0.
	snap := metrics.Snapshot()
	if got := snap["B0"].AvgDeliveryLatency(); got != 3*time.Millisecond {
		t.Errorf("avg latency at B0 = %s, want 3ms", got)
	}
	if snap["B2"].Deliveries != 0 {
		t.Errorf("B2 deliveries = %d, want 0 (no local subscriber)", snap["B2"].Deliveries)
	}
}

func TestTracerMiddleware(t *testing.T) {
	var live int
	tracer := rebeca.NewTracer(func(rebeca.TraceEvent) { live++ })
	sys, sub, pub := pubSubSystem(t, tracer)
	if _, err := pub.Publish(map[string]rebeca.Value{"n": rebeca.Int(1)}); err != nil {
		t.Fatal(err)
	}
	sys.Settle()
	if got := len(sub.Received()); got != 1 {
		t.Fatalf("received %d, want 1", got)
	}

	events := tracer.Events()
	if live != len(events) {
		t.Errorf("callback saw %d events, log has %d", live, len(events))
	}
	byHook := map[string]int{}
	for _, e := range events {
		byHook[e.Hook]++
	}
	if byHook["subscribe"] != 3 || byHook["publish"] != 3 || byHook["deliver"] != 1 {
		t.Errorf("events by hook = %v, want subscribe:3 publish:3 deliver:1", byHook)
	}
	last := events[len(events)-1]
	if last.Hook != "deliver" || last.Broker != "B0" || last.Node != "sub" {
		t.Errorf("last event = %+v, want delivery of sub at B0", last)
	}
	if tracer.Dropped() != 0 {
		t.Errorf("dropped = %d, want 0", tracer.Dropped())
	}
}

func TestRateLimiterMiddleware(t *testing.T) {
	limiter := rebeca.NewRateLimiter(1000, 2)
	sys, sub, pub := pubSubSystem(t, limiter)
	// Five publishes in the same virtual instant: the bucket admits the
	// burst of 2 and drops the rest at the ingress broker.
	for i := 0; i < 5; i++ {
		if _, err := pub.Publish(map[string]rebeca.Value{"n": rebeca.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	sys.Settle()
	if got := len(sub.Received()); got != 2 {
		t.Errorf("received %d, want 2 (burst)", got)
	}
	if got := limiter.Dropped(); got != 3 {
		t.Errorf("dropped = %d, want 3", got)
	}

	// After virtual time passes, the bucket refills and transit is never
	// double-counted: one more publish goes through end to end.
	sys.Step(100 * time.Millisecond)
	if _, err := pub.Publish(map[string]rebeca.Value{"n": rebeca.Int(99)}); err != nil {
		t.Fatal(err)
	}
	sys.Settle()
	if got := len(sub.Received()); got != 3 {
		t.Errorf("received %d after refill, want 3", got)
	}
}

// stampStage demonstrates a custom mutating stage through the facade.
type stampStage struct {
	rebeca.PassMiddleware
}

func (stampStage) OnPublish(b *rebeca.Broker, _ rebeca.NodeID, n *rebeca.Notification, next func()) {
	if _, ok := n.Get("ingress"); !ok {
		n.Attrs["ingress"] = rebeca.String(string(b.ID()))
	}
	next()
}

func TestCustomMiddlewareThroughFacade(t *testing.T) {
	sys, sub, pub := pubSubSystem(t, stampStage{})
	if _, err := pub.Publish(map[string]rebeca.Value{"n": rebeca.Int(1)}); err != nil {
		t.Fatal(err)
	}
	sys.Settle()
	recv := sub.Received()
	if len(recv) != 1 {
		t.Fatalf("received %d, want 1", len(recv))
	}
	if v, ok := recv[0].Note.Get("ingress"); !ok || v.Str() != "B2" {
		t.Errorf("ingress stamp = %v, want B2", v)
	}
}
