package rebeca_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"rebeca/internal/broker"
	"rebeca/internal/filter"
	"rebeca/internal/message"
	"rebeca/internal/proto"
	"rebeca/internal/routing"
	"rebeca/internal/telemetry"
	"rebeca/internal/telemetry/collector"
	"rebeca/internal/wire"
)

// fleetBroker is one live TCP broker process with its own telemetry
// stack — registry, span store, hop-tracing middleware, and a pusher
// aimed at the shared collector — exactly what rebeca-broker assembles
// from flags.
type fleetBroker struct {
	node   *wire.Node
	reg    *telemetry.Registry
	spans  *telemetry.SpanStore
	pusher *telemetry.Pusher
}

func newFleetBroker(t *testing.T, id message.NodeID, peers map[message.NodeID]string, next map[message.NodeID]message.NodeID, collectorURL string) *fleetBroker {
	t.Helper()
	reg := telemetry.NewRegistry()
	spans := telemetry.NewSpanStore(0)
	mw := telemetry.NewMiddleware(reg, spans)
	mw.EnableHopTrace(true)
	telemetry.RegisterSpanMetrics(reg, spans)
	node := wire.NewNode(wire.NodeConfig{
		ID:         id,
		Listen:     "127.0.0.1:0",
		Peers:      peers,
		Strategy:   routing.StrategySimple,
		NextHop:    next,
		Middleware: []broker.Middleware{mw},
		Telemetry:  reg,
	})
	if err := node.Start(); err != nil {
		t.Fatalf("start %s: %v", id, err)
	}
	p, err := telemetry.NewPusher(reg, telemetry.PusherConfig{
		URL:      collectorURL,
		Interval: time.Hour, // flushed by hand — the test controls push timing
		Instance: string(id),
		Spans:    spans,
	})
	if err != nil {
		node.Close()
		t.Fatalf("pusher %s: %v", id, err)
	}
	fb := &fleetBroker{node: node, reg: reg, spans: spans, pusher: p}
	t.Cleanup(func() {
		fb.pusher.Close()
		_ = fb.node.Close()
	})
	return fb
}

func collectorGet(t *testing.T, base, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// TestFleetCollectorEndToEnd is the acceptance scenario: two broker
// processes on a live TCP overlay each ship their partial spans for the
// same notification to one collector, and the collector's /trace view
// returns the merged multi-hop path with monotone hop timestamps.
func TestFleetCollectorEndToEnd(t *testing.T) {
	c := collector.New(collector.Config{})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	// A <-> B over real TCP; B dials A.
	a := newFleetBroker(t, "A", map[message.NodeID]string{"B": ""},
		map[message.NodeID]message.NodeID{"B": "B"}, srv.URL)
	b := newFleetBroker(t, "B", map[message.NodeID]string{"A": a.node.Addr()},
		map[message.NodeID]message.NodeID{"A": "A"}, srv.URL)

	// Subscriber at B; wait for the subscription to propagate to A.
	delivered := make(chan message.Notification, 1)
	sub := wire.NewRemoteClient("sub", func(n message.Notification, _ []message.SubID) {
		select {
		case delivered <- n:
		default:
		}
	})
	if err := sub.Connect(b.node.Addr(), "", nil, 1); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sub.Disconnect() }()
	f := filter.New(filter.Eq("kind", message.String("fleet")))
	if err := sub.Send(proto.Message{Kind: proto.KSubscribe, Client: "sub",
		Sub: &proto.Subscription{ID: "sub/s1", Filter: f}}); err != nil {
		t.Fatal(err)
	}
	waitForCond(t, func() bool {
		n := 0
		a.node.Inspect(func(br *broker.Broker) { n = br.Router().Table().Len() })
		return n >= 1
	}, "subscription propagation to A")

	// Publish at A: the notification transits A then B, stamping a hop at
	// each — so A's span store holds the one-hop prefix and B's the full
	// two-hop path. That split is what the collector must reassemble.
	pub := wire.NewRemoteClient("pub", nil)
	if err := pub.Connect(a.node.Addr(), "", nil, 1); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pub.Disconnect() }()
	note := message.NewNotification(map[string]message.Value{"kind": message.String("fleet")})
	note.ID = message.NotificationID{Publisher: "pub", Seq: 1}
	if err := pub.Send(proto.Message{Kind: proto.KPublish, Client: "pub", Note: &note}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-delivered:
	case <-time.After(5 * time.Second):
		t.Fatal("delivery never arrived at B")
	}
	waitForCond(t, func() bool {
		return len(a.spans.Get(note.ID)) >= 1 && len(b.spans.Get(note.ID)) >= 2
	}, "hop spans recorded on both brokers")

	// Each broker ships its snapshot + spans — B first, so the collector
	// sees the full path before the prefix (order must not matter).
	b.pusher.Flush()
	a.pusher.Flush()
	waitForCond(t, func() bool {
		return a.pusher.SpansShipped() >= 1 && b.pusher.SpansShipped() >= 1
	}, "span batches shipped")

	// The merged trace: two hops, A then B, monotone timestamps, complete.
	code, body := collectorGet(t, srv.URL, "/trace?note="+url.QueryEscape(note.ID.String()))
	if code != http.StatusOK {
		t.Fatalf("/trace = %d: %s", code, body)
	}
	var tr struct {
		Note      string   `json:"note"`
		Partial   bool     `json:"partial"`
		Reporters []string `json:"reporters"`
		Hops      []struct {
			Hop    int       `json:"hop"`
			Broker string    `json:"broker"`
			At     time.Time `json:"at"`
		} `json:"hops"`
	}
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatalf("trace json: %v (%s)", err, body)
	}
	if len(tr.Hops) != 2 {
		t.Fatalf("merged trace = %+v, want the 2-hop A->B path", tr)
	}
	for i, want := range []string{"A", "B"} {
		if tr.Hops[i].Broker != want || tr.Hops[i].Hop != i {
			t.Fatalf("hop %d = %+v, want broker %s", i, tr.Hops[i], want)
		}
	}
	if tr.Hops[1].At.Before(tr.Hops[0].At) {
		t.Fatalf("hop timestamps not monotone: %+v", tr.Hops)
	}
	if tr.Partial {
		t.Fatalf("both reporters pushed; trace still partial: %+v", tr)
	}
	if len(tr.Reporters) != 2 {
		t.Fatalf("reporters = %v, want [A B]", tr.Reporters)
	}

	// The aggregated scrape re-exports each broker's families under its
	// instance label and folds fleet counter totals across both.
	code, metrics := collectorGet(t, srv.URL, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("collector /metrics = %d", code)
	}
	for _, want := range []string{
		`rebeca_publishes_total{broker="A",instance="A"} 1`,
		`rebeca_publishes_total{broker="B",instance="B"} 1`,
		"rebeca_fleet_publishes_total 2",
		"rebeca_fleet_deliveries_total 1",
		"rebeca_collector_pushes_total",
		"rebeca_go_goroutines",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("collector scrape missing %q:\n%s", want, grepLines(metrics, "rebeca_fleet"))
		}
	}

	// /fleet sees both brokers, fresh.
	code, fleetBody := collectorGet(t, srv.URL, "/fleet")
	if code != http.StatusOK {
		t.Fatalf("/fleet = %d", code)
	}
	var fleet struct {
		Stale   int `json:"stale"`
		Brokers []struct {
			Instance string `json:"instance"`
			Status   string `json:"status"`
		} `json:"brokers"`
	}
	if err := json.Unmarshal([]byte(fleetBody), &fleet); err != nil {
		t.Fatalf("fleet json: %v (%s)", err, fleetBody)
	}
	if len(fleet.Brokers) != 2 || fleet.Stale != 0 {
		t.Fatalf("fleet = %+v, want brokers A and B fresh", fleet)
	}
	for _, br := range fleet.Brokers {
		if br.Status != "ok" {
			t.Fatalf("broker %s status = %s", br.Instance, br.Status)
		}
	}
}

func waitForCond(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
