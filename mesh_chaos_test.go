package rebeca_test

import (
	"path/filepath"
	"testing"
	"time"

	"rebeca"
)

// meshGraph is the chaos fixture: a diamond b1-b2-b4-b3 with the chord
// b2-b3 and a tail broker b5 hanging off b4. Two redundant cycles; the
// spanning tree elected from it (root b1, neighbors in ID order) is
// b1-b2, b1-b3, b2-b4, b4-b5 — so b2-b4 is the primary link toward the
// b4/b5 subtree and b3-b4 is its standby.
func meshGraph() *rebeca.Graph {
	return rebeca.NewGraph().
		AddEdge("b1", "b2").AddEdge("b1", "b3").
		AddEdge("b2", "b3"). // chord
		AddEdge("b2", "b4").AddEdge("b3", "b4").
		AddEdge("b4", "b5")
}

func meshEdges() [][2]rebeca.NodeID {
	return [][2]rebeca.NodeID{
		{"b1", "b2"}, {"b1", "b3"}, {"b2", "b3"},
		{"b2", "b4"}, {"b3", "b4"}, {"b4", "b5"},
	}
}

// runMeshChaosScenario is the ISSUE's mesh failover scenario, shared by
// the sim and live deployments: a publisher at b1, subscribers at the
// far end of the diamond, and the primary spanning-tree link b2-b4 cut
// mid-publish. Re-election must reroute through the redundant b3-b4
// edge with no duplicate deliveries; healing the link must revert the
// tree just as cleanly; and a durable ghost buffered through the whole
// run must replay gap-free at the end.
func runMeshChaosScenario(t *testing.T, h *chaosHarness) {
	t.Helper()
	f := rebeca.NewFilter(rebeca.Eq("topic", rebeca.String("mesh")))

	// The ghost: durable-subscribes at b5, disconnects before any
	// traffic. Its queue buffers the full run — across the cut, the
	// re-election, and the heal — and must replay exactly at the end.
	ghost := h.d.NewClient("ghost")
	ghost.Subscribe(f, rebeca.Durable("mesh-ghost"), rebeca.WithStreamBuffer(64))
	connect(t, ghost, "b5")
	h.d.Settle()
	if err := ghost.Disconnect(); err != nil {
		t.Fatal(err)
	}
	h.d.Settle()

	// The witness: a durable subscriber attached at b5 for the whole
	// run. Every notification must reach it exactly once, in order,
	// whichever tree carries it.
	witness := h.d.NewClient("witness")
	connect(t, witness, "b5")
	witness.Subscribe(f, rebeca.Durable("mesh-witness"), rebeca.WithStreamBuffer(256))

	// A volatile subscriber at b4 — the junction both redundant paths
	// share — must converge and never see a flood duplicate.
	volatileSub := h.d.NewClient("volatile")
	connect(t, volatileSub, "b4")
	volatileSub.Subscribe(f, rebeca.WithStreamBuffer(256))

	pub := h.d.NewClient("pub")
	connect(t, pub, "b1")
	h.d.Settle()

	seq := 0
	wave := func(n int) {
		for i := 0; i < n; i++ {
			seq++
			if _, err := pub.Publish(map[string]rebeca.Value{
				"topic": rebeca.String("mesh"), "n": rebeca.Int(int64(seq)),
			}); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Wave 1: healthy mesh, traffic rides the elected tree.
	wave(5)
	h.advance(100 * time.Millisecond)

	// Wave 2 is published and the primary tree link cut before the
	// deployment settles: in-flight notes queue at the dead link and
	// must be re-flooded onto the standby path once the link-state
	// record propagates and every replica re-elects.
	wave(5)
	if err := h.chaos.CutLink("b2", "b4"); err != nil {
		t.Fatal(err)
	}
	h.advance(300 * time.Millisecond) // past detection + re-election

	// Wave 3: the b3-b4 edge is now a tree edge; delivery continues
	// with the cut still in place.
	wave(5)
	h.advance(100 * time.Millisecond)

	// Heal. The up record floods, the tree reverts to b2-b4, and the
	// handover must not duplicate or drop anything either.
	if err := h.chaos.HealLink("b2", "b4"); err != nil {
		t.Fatal(err)
	}
	h.waitEstablished(t, [][2]rebeca.NodeID{{"b2", "b4"}})
	wave(5)

	// Drain until the witness has the full sequence.
	for i := 0; i < 50; i++ {
		h.advance(100 * time.Millisecond)
		if len(received(witness)) == seq {
			break
		}
	}

	got := received(witness)
	if len(got) != seq {
		t.Fatalf("witness: %d deliveries, want %d (%s)", len(got), seq, gaps(got, seq))
	}
	if d := witness.Duplicates(); d != 0 {
		t.Errorf("witness saw %d duplicates across re-election", d)
	}
	if v := witness.FIFOViolations(); v != 0 {
		t.Errorf("witness saw %d FIFO violations", v)
	}

	vGot := received(volatileSub)
	final := false
	for _, d := range vGot {
		if n, ok := d.Note.Attrs["n"]; ok && n.IntVal() == int64(seq) {
			final = true
		}
	}
	if !final {
		t.Errorf("volatile subscriber never converged (have %d deliveries)", len(vGot))
	}
	if d := volatileSub.Duplicates(); d != 0 {
		t.Errorf("volatile subscriber saw %d flood duplicates", d)
	}

	// The ghost reattaches: its durable queue must replay the entire
	// run gap-free — nothing lost while the tree was in flux.
	ghost2 := h.d.NewClient("ghost")
	sub2 := ghost2.Subscribe(f, rebeca.Durable("mesh-ghost"), rebeca.WithStreamBuffer(64))
	connect(t, ghost2, "b5")
	h.advance(200 * time.Millisecond)
	replay := make(map[int64]int)
	for {
		var done bool
		select {
		case d, ok := <-sub2.Events():
			if !ok {
				done = true
				break
			}
			if n, present := d.Note.Get("n"); present {
				replay[n.IntVal()]++
			}
		case <-time.After(750 * time.Millisecond):
			done = true
		}
		if done {
			break
		}
	}
	for i := int64(1); i <= int64(seq); i++ {
		switch replay[i] {
		case 1:
		case 0:
			t.Errorf("ghost replay gap: notification %d lost", i)
		default:
			t.Errorf("ghost replay duplicate: notification %d delivered %d times", i, replay[i])
		}
	}
	if d := ghost2.Duplicates(); d != 0 {
		t.Errorf("ghost reattach suppressed %d duplicates; replay should be exact", d)
	}
}

// TestMeshChaosSim runs the failover scenario on the virtual clock:
// WithMeshRouting lifts the tree requirement, the movement graph IS the
// broker mesh, and cut/heal detection rides the simulated heartbeats.
func TestMeshChaosSim(t *testing.T) {
	h := simChaosHarness(t,
		rebeca.WithMovement(meshGraph()),
		rebeca.WithMeshRouting(),
		rebeca.WithDurable(rebeca.NewMemoryStore()),
		rebeca.WithDeliveryLog(256),
	)
	runMeshChaosScenario(t, h)
}

// TestMeshChaosLive boots the same mesh over real TCP with zero static
// peer wiring: every broker publishes itself into a shared file
// registry, membership discovers and dials the neighbors the movement
// graph allows, and only then does the scenario start. The CI
// mesh-discovery job runs the cmd-level analog of this bring-up.
func TestMeshChaosLive(t *testing.T) {
	if testing.Short() {
		// Real sockets, registry polling, and heartbeat windows; the CI
		// mesh-discovery job covers the live flavor in its own lane.
		t.Skip("live mesh chaos scenario skipped in -short mode")
	}
	reg := "file:" + filepath.Join(t.TempDir(), "peers.json")
	h := liveChaosHarness(t,
		rebeca.WithMovement(meshGraph()),
		rebeca.WithRegistry(reg),
		rebeca.WithDurable(rebeca.NewMemoryStore()),
		rebeca.WithDeliveryLog(256),
	)
	// Registry-driven bring-up: no peer is dialed until discovered, so
	// wait for the whole mesh to link up before publishing.
	h.waitEstablished(t, meshEdges())
	runMeshChaosScenario(t, h)
}
