package rebeca

import "rebeca/internal/store"

// Store is the pluggable persistence interface behind WithDurable: named
// append-only queues with ack watermarks (Append / ReplayFrom / Ack), a
// keyed snapshot namespace for session metadata, and ack-driven Compact.
// The middleware appends a notification before attempting delivery and
// acks after delivery or handover is confirmed, so a crash between the two
// redelivers rather than loses; the client library's dedup set turns that
// at-least-once replay into exactly-once delivery.
type Store = store.Store

// StoreRecord is one persisted notification in a store queue.
type StoreRecord = store.Record

// MemoryStore is the in-process Store implementation: the zero-cost
// default, with injectable fsync faults (FailSyncs, SetSyncFault) and a
// simulated Crash for recovery tests on the virtual clock.
type MemoryStore = store.Memory

// NewMemoryStore returns an empty in-memory store.
var NewMemoryStore = store.NewMemory

// WALStore is the file-backed Store: CRC-framed records in rotating
// segment files, fsynced per append, with ack-driven compaction. A live
// deployment (or cmd/rebeca-broker) restarted on the same directory
// recovers its durable subscriptions from it.
type WALStore = store.WAL

// WALOption configures OpenWAL.
type WALOption = store.WALOption

// OpenWAL opens (creating if needed) a write-ahead log directory and
// recovers its state.
var OpenWAL = store.OpenWAL

// WALSegmentSize sets the WAL's segment rotation threshold in bytes.
var WALSegmentSize = store.WALSegmentSize

// WALNoSync disables the per-append fsync (benchmarks only).
var WALNoSync = store.WALNoSync
