package rebeca

import (
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"time"

	"rebeca/internal/overlay"
	"rebeca/internal/store"
	"rebeca/internal/telemetry"
)

// opsStack bundles one deployment's telemetry objects: the metric
// registry, the hop-trace span store, the broker-chain middleware stage
// feeding both, the HTTP endpoint serving them, and — when configured —
// the trace sampler, the push exporter and the structured log root.
// Built by New/NewLive when WithOps or WithOpsPush is configured; without
// either none of it exists and the hot paths carry no instrumentation.
type opsStack struct {
	reg     *telemetry.Registry
	spans   *telemetry.SpanStore
	mw      *telemetry.Middleware
	ops     *telemetry.Ops
	sampler *telemetry.Sampler
	push    *telemetry.Pusher
	logger  *telemetry.Logger
}

// newOpsStack builds the registry/span-store/middleware triple and
// appends the telemetry stage to the config's broker chain. Must run
// before broker construction so every broker installs the stage.
func newOpsStack(cfg *config) *opsStack {
	reg := telemetry.NewRegistry()
	spans := telemetry.NewSpanStore(0)
	mw := telemetry.NewMiddleware(reg, spans)
	mw.EnableHopTrace(true)
	cfg.middleware = append(cfg.middleware, mw)
	telemetry.RegisterSpanMetrics(reg, spans)
	st := &opsStack{reg: reg, spans: spans, mw: mw, ops: telemetry.NewOps(reg, spans)}
	if cfg.sampleN > 0 || cfg.slowThresh > 0 || cfg.pendingCap > 0 {
		st.sampler = telemetry.NewSampler(spans, cfg.sampleN, cfg.slowThresh)
		if cfg.pendingCap > 0 {
			st.sampler.SetPendingCap(cfg.pendingCap)
		}
		mw.SetSampler(st.sampler)
		telemetry.RegisterSamplerMetrics(reg, st.sampler)
	}
	telemetry.RegisterGoRuntime(reg)
	if cfg.logging {
		level := telemetry.ParseLevelDefault(cfg.logLevel)
		w := cfg.logWriter
		if w == nil {
			w = os.Stderr
		}
		st.logger = telemetry.NewLogger(w, level)
	}
	return st
}

// startPush launches the push exporter when WithOpsPush is configured.
// instance tags JSON payloads with the deployment's identity.
func (st *opsStack) startPush(cfg *config, instance string) error {
	if cfg.pushURL == "" {
		return nil
	}
	var plog *slog.Logger
	if st.logger != nil {
		plog = st.logger.For("wire")
	}
	pcfg := telemetry.PusherConfig{
		URL:      cfg.pushURL,
		Interval: cfg.pushInterval,
		Format:   cfg.pushFormat,
		Instance: instance,
		Logger:   plog,
	}
	// Completed and retro-captured spans ship outbound alongside the
	// metric snapshots — except to remote-write receivers, where a real
	// Prometheus backend would reject (and wedge the spool behind) the
	// span bodies only a rebeca collector understands.
	if cfg.pushFormat != telemetry.PushFormatRemoteWrite {
		pcfg.Spans = st.spans
	}
	p, err := telemetry.NewPusher(st.reg, pcfg)
	if err != nil {
		return err
	}
	st.push = p
	telemetry.RegisterPusherMetrics(st.reg, p)
	p.Start()
	return nil
}

// close tears the stack's background pieces down (endpoint + pusher).
func (st *opsStack) close() {
	if st.ops != nil {
		_ = st.ops.Close()
	}
	if st.push != nil {
		st.push.Close()
	}
}

// logFor returns the subsystem logger when logging is configured (nil
// otherwise — internal packages treat nil as silent).
func (st *opsStack) logFor(subsystem string) *slog.Logger {
	if st == nil || st.logger == nil {
		return nil
	}
	return st.logger.For(subsystem)
}

// registerCommon wires the knobs and collectors both deployment flavors
// share: the hop-trace toggle, rate-limiter retuning and drop counts,
// Tracer toggling and eviction counts, and the WAL's on-disk footprint.
func (st *opsStack) registerCommon(cfg *config) {
	st.ops.AddKnob("trace", telemetry.Knob{
		Help: "hop-trace stamping and span recording: on/off",
		Get:  func() string { return onOff(st.mw.HopTraceEnabled()) },
		Set: func(v string) error {
			on, err := parseOnOff(v)
			if err != nil {
				return err
			}
			st.mw.EnableHopTrace(on)
			return nil
		},
	})
	if s := st.sampler; s != nil {
		st.ops.AddKnob("sample", telemetry.Knob{
			Help: "hop-trace sampling rate as 1-in-N (1 traces everything)",
			Get:  func() string { return strconv.FormatInt(s.Rate(), 10) },
			Set: func(v string) error {
				n, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
				if err != nil {
					return fmt.Errorf("bad rate %q: %v", v, err)
				}
				if n < 1 {
					return fmt.Errorf("bad rate %d: want >= 1", n)
				}
				s.SetRate(n)
				return nil
			},
		})
		st.ops.AddKnob("slow", telemetry.Knob{
			Help: "retro-capture threshold: deliveries slower than this are always traced (0 disables)",
			Get:  func() string { return s.SlowThreshold().String() },
			Set: func(v string) error {
				d, err := time.ParseDuration(strings.TrimSpace(v))
				if err != nil {
					return fmt.Errorf("bad threshold %q: %v", v, err)
				}
				if d < 0 {
					return fmt.Errorf("bad threshold %s: want >= 0", d)
				}
				s.SetSlowThreshold(d)
				return nil
			},
		})
		st.ops.AddKnob("trace.pending", telemetry.Knob{
			Help: "pending-decision ring capacity: hop paths parked awaiting a retro-capture verdict (shrinking evicts oldest)",
			Get:  func() string { return strconv.Itoa(s.PendingCap()) },
			Set: func(v string) error {
				n, err := strconv.Atoi(strings.TrimSpace(v))
				if err != nil {
					return fmt.Errorf("bad capacity %q: %v", v, err)
				}
				if n < 1 {
					return fmt.Errorf("bad capacity %d: want >= 1", n)
				}
				s.SetPendingCap(n)
				return nil
			},
		})
	}
	if st.logger != nil {
		st.logger.RegisterKnobs(st.ops)
	}
	for _, m := range cfg.middleware {
		switch m := m.(type) {
		case *RateLimiter:
			rl := m
			// Rate-limited publishes are paths that always matter:
			// retro-capture their parked trace with the reason.
			rl.SetDropHook(func(_ NodeID, id NotificationID) {
				if !st.mw.HopTraceEnabled() {
					return
				}
				if st.sampler != nil {
					st.sampler.MarkDropped(id, "rate-limited")
				} else {
					st.spans.RecordReason(id, nil, 0, "rate-limited")
				}
			})
			st.ops.AddKnob("rate_limit", telemetry.Knob{
				Help: "client publish admission as perSecond[,burst]; perSecond <= 0 disables",
				Get: func() string {
					r, b := rl.Limit()
					return fmt.Sprintf("%g,%d", r, b)
				},
				Set: func(v string) error {
					parts := strings.SplitN(v, ",", 2)
					r, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
					if err != nil {
						return fmt.Errorf("bad rate %q: %v", parts[0], err)
					}
					_, burst := rl.Limit()
					if len(parts) == 2 {
						burst, err = strconv.Atoi(strings.TrimSpace(parts[1]))
						if err != nil {
							return fmt.Errorf("bad burst %q: %v", parts[1], err)
						}
					}
					rl.SetLimit(r, burst)
					return nil
				},
			})
			st.reg.CounterFunc(telemetry.MetricRateLimited,
				"Client publishes rejected by the rate-limiter middleware.",
				func(emit func(telemetry.Labels, float64)) {
					for id, n := range rl.DroppedPerBroker() {
						emit(telemetry.Labels{"broker": string(id)}, float64(n))
					}
				})
		case *Tracer:
			tr := m
			st.ops.AddKnob("tracer", telemetry.Knob{
				Help: "event-log Tracer recording: on/off",
				Get:  func() string { return onOff(tr.Enabled()) },
				Set: func(v string) error {
					on, err := parseOnOff(v)
					if err != nil {
						return err
					}
					tr.SetEnabled(on)
					return nil
				},
			})
			st.reg.CounterFunc(telemetry.MetricTracerDropped,
				"Trace events evicted by the Tracer's newest-retaining ring bound.",
				func(emit func(telemetry.Labels, float64)) {
					emit(nil, float64(tr.Dropped()))
				})
		}
	}
	if w, ok := cfg.store.(*store.WAL); ok {
		if l := st.logFor("store"); l != nil {
			w.SetLogger(l)
		}
		st.reg.GaugeFunc(telemetry.MetricWALSegments,
			"Write-ahead-log segment files on disk.",
			func(emit func(telemetry.Labels, float64)) {
				if s, err := w.Stats(); err == nil {
					emit(nil, float64(s.Segments))
				}
			})
		st.reg.GaugeFunc(telemetry.MetricWALBytes,
			"Total write-ahead-log bytes on disk (compaction shrinks it).",
			func(emit func(telemetry.Labels, float64)) {
				if s, err := w.Stats(); err == nil {
					emit(nil, float64(s.Bytes))
				}
			})
	}
}

// registerStreams exposes client-side stream depths: snap walks every
// port's subscription streams at scrape time.
func (st *opsStack) registerStreams(snap func(emit func(client NodeID, s streamStat))) {
	st.reg.GaugeFunc(telemetry.MetricStreamBuffered,
		"Deliveries waiting in client subscription streams.",
		func(emit func(telemetry.Labels, float64)) {
			snap(func(client NodeID, s streamStat) {
				emit(telemetry.Labels{"client": string(client), "sub": subLabel(s.id)},
					float64(s.stats.Buffered))
			})
		})
	st.reg.CounterFunc(telemetry.MetricStreamDropped,
		"Deliveries discarded by stream overflow policies.",
		func(emit func(telemetry.Labels, float64)) {
			snap(func(client NodeID, s streamStat) {
				emit(telemetry.Labels{"client": string(client), "sub": subLabel(s.id)},
					float64(s.stats.Dropped))
			})
		})
}

// subLabel renders a stream's metric label ("" is the port's catch-all).
func subLabel(id SubID) string {
	if id == "" {
		return "catch-all"
	}
	return string(id)
}

func onOff(on bool) string {
	if on {
		return "on"
	}
	return "off"
}

func parseOnOff(v string) (bool, error) {
	switch strings.ToLower(strings.TrimSpace(v)) {
	case "on", "true", "1":
		return true, nil
	case "off", "false", "0":
		return false, nil
	}
	return false, fmt.Errorf("bad toggle %q (want on/off)", v)
}

// parseHeartbeat parses the heartbeat knob's "interval[,timeout]" value
// under WithHeartbeat's conventions (timeout 0 → 3×interval).
func parseHeartbeat(v string) (interval, timeout time.Duration, err error) {
	parts := strings.SplitN(v, ",", 2)
	interval, err = time.ParseDuration(strings.TrimSpace(parts[0]))
	if err != nil {
		return 0, 0, fmt.Errorf("bad interval %q: %v", parts[0], err)
	}
	if interval <= 0 {
		return 0, 0, fmt.Errorf("bad interval %s: want > 0", interval)
	}
	if len(parts) == 2 {
		timeout, err = time.ParseDuration(strings.TrimSpace(parts[1]))
		if err != nil {
			return 0, 0, fmt.Errorf("bad timeout %q: %v", parts[1], err)
		}
		if timeout != 0 && timeout < interval {
			return 0, 0, fmt.Errorf("bad timeout %s: want >= interval (or 0 for the default)", timeout)
		}
	}
	return interval, timeout, nil
}

// renderHeartbeat is the heartbeat knob's Get rendering.
func renderHeartbeat(interval, timeout time.Duration) string {
	return fmt.Sprintf("%s,%s", interval, timeout)
}

// waitingLinks summarizes a manager's non-established links for a
// readiness detail line ("" when all links are up). An established link
// still replaying its store-backed spill backlog counts as waiting —
// "established, flushing" — since fresh traffic is ordered behind the
// backlog.
func waitingLinks(self NodeID, mgr *overlay.Manager) []string {
	var out []string
	for _, li := range mgr.Info() {
		switch {
		case li.State != overlay.StateEstablished:
			out = append(out, fmt.Sprintf("%s-%s:%s", self, li.Peer, li.State))
		case li.SpillDepth > 0:
			out = append(out, fmt.Sprintf("%s-%s:established,flushing(%d)", self, li.Peer, li.SpillDepth))
		}
	}
	return out
}
