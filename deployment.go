package rebeca

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"rebeca/internal/broker"
	"rebeca/internal/client"
	"rebeca/internal/sim"
	"rebeca/internal/telemetry"
)

// MaxBatchFrame is the largest number of notifications PublishBatch packs
// into one wire message; larger batches are split, with the submission
// context checked between frames.
const MaxBatchFrame = 256

// ErrNotConnected is returned by Port operations that need a live link to a
// border broker.
var ErrNotConnected = errors.New("rebeca: client not connected")

// ErrUnknownBroker is returned by Port.Connect for a broker ID outside the
// deployment.
var ErrUnknownBroker = errors.New("rebeca: unknown broker")

// Deployment is the common surface over the two ways to run the
// middleware: the virtual-clock System (New) and the TCP-backed Live
// (NewLive). The same client code, middleware and tests drive both.
type Deployment interface {
	// NewClient creates a client endpoint, not yet connected.
	NewClient(id NodeID) Port
	// Brokers lists the deployment's broker IDs.
	Brokers() []NodeID
	// Settle waits until in-flight traffic has drained: exactly (to
	// quiescence of the event queue) under System, heuristically (a quiet
	// window on broker and client activity, see WithSettleWindow) under
	// Live.
	Settle()
	// Close tears the deployment down. System's Close is a no-op.
	Close() error
}

// Port is the deployment-independent client surface: the pub/sub triple,
// roaming, and delivery inspection. Commands (Connect, Subscribe, Publish,
// …) are driven from one goroutine; delivery streams — the Events channels
// of Subscription handles and of the port itself — are consumed from any
// goroutine. Deliveries arrive between calls (System) or concurrently
// (Live).
type Port interface {
	// ID returns the client's node ID.
	ID() NodeID
	// Connect attaches to a border broker (roaming to it if already
	// connected elsewhere).
	Connect(broker NodeID) error
	// Disconnect drops the wireless link.
	Disconnect() error
	// Border returns the current border broker ("" while disconnected).
	Border() NodeID
	// Subscribe registers interest and returns the subscription's handle:
	// its bounded event stream, overflow policy and lifecycle. The
	// subscription joins the roaming profile until its Cancel.
	Subscribe(f Filter, opts ...SubOption) *Subscription
	// SubscribeAt registers a location-dependent subscription (myloc)
	// with default stream options; use Subscribe(AtLocation(cs...), …)
	// to configure the stream.
	SubscribeAt(cs ...Constraint) *Subscription
	// Publish emits a notification (requires a connection).
	Publish(attrs map[string]Value) (NotificationID, error)
	// PublishBatch emits several notifications framed as batch wire
	// messages to the border broker (up to MaxBatchFrame notifications
	// per frame), which unpacks and routes each like an individual
	// Publish. ctx is checked between frames — a Live publisher blocked
	// by downstream flow control stops at the next frame boundary (a
	// send already stalled on the link is not interrupted mid-frame) —
	// and the IDs of everything already framed are returned with the
	// ctx error.
	PublishBatch(ctx context.Context, batch []map[string]Value) ([]NotificationID, error)
	// Events returns the port's catch-all stream: every fresh delivery,
	// whichever subscription it matched, under a DropOldest bound.
	Events() <-chan Delivery
	// OnNotify registers an observer that synchronously consumes the
	// catch-all stream — the callback adapter over Events. Registration
	// discards any backlog already buffered in the stream: the callback
	// observes deliveries from registration on. Register either an
	// observer or a consumer of Events, not both.
	OnNotify(fn func(n Notification))
	// Received returns the retained deliveries in arrival order. The log
	// is opt-in: without WithDeliveryLog it stays empty (per-subscription
	// streams and stats are the primary surface).
	Received() []Delivery
	// Duplicates counts suppressed duplicate deliveries.
	Duplicates() int
	// FIFOViolations counts per-publisher sequence inversions.
	FIFOViolations() int
}

// System is an in-process middleware deployment on a virtual clock, backed
// by the discrete-event simulator: deterministic, instant, and ideal for
// experiments and tests. It implements Deployment.
type System struct {
	cluster *sim.Cluster
	logCap  int
	ops     *opsStack

	mu    sync.Mutex
	ports []*simPort
}

var _ Deployment = (*System)(nil)

// New builds a full in-process deployment from the options: brokers on the
// movement graph's spanning tree, a transparent physical-mobility manager
// and a replicator on every broker, and the configured middleware chain.
func New(opts ...Option) (*System, error) {
	cfg, err := newConfig(opts)
	if err != nil {
		return nil, err
	}
	if cfg.registry != "" {
		return nil, errors.New("rebeca: WithRegistry needs a live deployment (NewLive); under New use WithMeshRouting and declare the mesh as the movement graph")
	}
	repl := sim.ReplicationPreSubscribe
	if cfg.reactive {
		repl = sim.ReplicationReactive
	}
	var ops *opsStack
	if cfg.opsAddr != "" || cfg.pushURL != "" || cfg.logging {
		// Before cluster construction: the telemetry stage joins the chain
		// every broker installs. Push-only and logging-only deployments
		// build the stack too, but never open the HTTP listener.
		ops = newOpsStack(cfg)
	}
	scfg := sim.ClusterConfig{
		Movement:       cfg.movement,
		Locations:      cfg.locations,
		Context:        cfg.context,
		Strategy:       cfg.strategy,
		Advertisements: cfg.advertisements,
		LinearMatching: cfg.linear,
		Mobility:       sim.MobilityTransparent,
		Replication:    repl,
		SharedBuffers:  cfg.shared,
		BufferFactory:  cfg.bufferFactory(),
		Middleware:     cfg.middleware,
		LinkLatency:    cfg.linkLatency,
		LatencyJitter:  cfg.latencyJitter,
		JitterSeed:     cfg.jitterSeed,
		Store:          cfg.store,
		LinkObserver:   cfg.linkObserver,
		OverlayLogger:  ops.logFor("overlay"),
		BrokerLogger:   ops.logFor("broker"),
	}
	if cfg.overlay {
		set := cfg.overlaySettings()
		scfg.Overlay = &set
	}
	if cfg.spillStore != nil {
		if !cfg.overlay {
			return nil, errors.New("rebeca: WithLinkSpill under New needs the overlay deployed (WithHeartbeat)")
		}
		scfg.LinkSpill = cfg.spillStore
		scfg.LinkSpillBudget = cfg.spillMax
	}
	if cfg.mesh {
		// Mesh routing: the overlay is the movement graph itself (cycles
		// and all) rather than its spanning tree; the brokers' replicated
		// election picks the forwarding tree at runtime.
		scfg.Mesh = true
		scfg.Topology = broker.Topology{Edges: cfg.movement.Edges()}
	}
	cl, err := sim.NewCluster(scfg)
	if err != nil {
		return nil, err
	}
	s := &System{cluster: cl, logCap: cfg.logCap(), ops: ops}
	if ops != nil {
		if err := s.startOps(cfg); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// startOps wires the System-specific probes, knobs and collectors into
// the ops stack and starts its HTTP listener. The virtual-clock flavor
// hosts the same endpoint the live deployment does — useful for watching
// a long-running experiment — with readiness derived from the simulated
// overlay managers (a System built without WithHeartbeat deploys no
// overlay and is trivially ready).
func (s *System) startOps(cfg *config) error {
	st := s.ops
	st.ops.AddReadyCheck("overlay", func() (bool, string) {
		if s.cluster.Overlays == nil {
			return true, "overlay not deployed"
		}
		var waiting []string
		for _, id := range s.Brokers() {
			if mgr := s.cluster.Overlays[id]; mgr != nil {
				waiting = append(waiting, waitingLinks(id, mgr)...)
			}
		}
		if len(waiting) > 0 {
			return false, "links not established: " + strings.Join(waiting, ", ")
		}
		return true, "all links established"
	})
	if s.cluster.Overlays != nil {
		st.ops.AddKnob("heartbeat", telemetry.Knob{
			Help: "overlay heartbeat as interval[,timeout] (virtual clock), applied to every broker; timeout 0 defaults to 3x interval",
			Get: func() string {
				for _, id := range s.Brokers() {
					if mgr := s.cluster.Overlays[id]; mgr != nil {
						return renderHeartbeat(mgr.Heartbeat())
					}
				}
				return ""
			},
			Set: func(v string) error {
				interval, timeout, err := parseHeartbeat(v)
				if err != nil {
					return err
				}
				for _, mgr := range s.cluster.Overlays {
					mgr.SetHeartbeat(interval, timeout)
				}
				return nil
			},
		})
	}
	st.registerStreams(func(emit func(NodeID, streamStat)) {
		s.mu.Lock()
		ports := append([]*simPort(nil), s.ports...)
		s.mu.Unlock()
		for _, p := range ports {
			for _, stat := range p.streams.stats() {
				emit(p.ID(), stat)
			}
		}
	})
	st.registerCommon(cfg)
	if cfg.opsAddr != "" {
		if err := st.ops.Start(cfg.opsAddr); err != nil {
			return err
		}
	}
	ids := s.Brokers()
	return st.startPush(cfg, strings.Join(nodeIDStrings(ids), ","))
}

// OpsAddr returns the bound address of the telemetry subsystem's HTTP
// endpoint ("" without WithOps).
func (s *System) OpsAddr() string {
	if s.ops == nil {
		return ""
	}
	return s.ops.ops.Addr()
}

// NewClient creates a client endpoint.
func (s *System) NewClient(id NodeID) Port {
	p := &simPort{sys: s, c: s.cluster.AddClient(id), streams: newStreamSet()}
	p.c.SetDeliveryLog(s.logCap)
	p.c.OnDeliver = func(d client.Delivery) { p.streams.dispatch(d, nil) }
	s.mu.Lock()
	s.ports = append(s.ports, p)
	s.mu.Unlock()
	return p
}

// Brokers lists the deployment's broker IDs.
func (s *System) Brokers() []NodeID { return s.cluster.Topology.Nodes() }

// Settle runs the virtual clock until no messages remain in flight.
func (s *System) Settle() { s.cluster.Net.Run() }

// Close implements Deployment: the virtual deployment has no transport to
// tear down, but every port's streams are cancelled so range loops over
// their Events channels terminate.
func (s *System) Close() error {
	s.mu.Lock()
	ports := append([]*simPort(nil), s.ports...)
	s.mu.Unlock()
	for _, p := range ports {
		p.streams.closeAll()
	}
	if s.ops != nil {
		s.ops.close()
	}
	return nil
}

// Step advances the virtual clock by d, delivering due messages.
func (s *System) Step(d time.Duration) { s.cluster.Net.RunFor(d) }

// After schedules fn on the virtual clock.
func (s *System) After(d time.Duration, fn func()) { s.cluster.Net.After(d, fn) }

// Now returns the current virtual time.
func (s *System) Now() time.Time { return s.cluster.Net.Now() }

// MessagesCarried returns the total number of messages the network moved.
func (s *System) MessagesCarried() int { return s.cluster.Net.Stats().Total() }

// ErrNoOverlay is returned by the link-chaos methods of a System built
// without WithHeartbeat: only overlay-managed deployments supervise (and
// therefore heal) their links.
var ErrNoOverlay = errors.New("rebeca: overlay not deployed (WithHeartbeat required)")

// CutLink severs the overlay link between two brokers (both directions).
// The link managers notice — instantly on the next send, or via heartbeat
// timeout when idle (advance the virtual clock with Step) — go degraded
// and queue outbound traffic. Requires WithHeartbeat.
func (s *System) CutLink(a, b NodeID) error {
	if s.cluster.Overlays == nil {
		return ErrNoOverlay
	}
	s.cluster.CutLink(a, b)
	return nil
}

// HealLink restores a severed link; the dialer side's backoff probe
// re-establishes it, the sync handshake replays routing installs, and the
// queued backlog flushes. Advance the virtual clock (Step) to let the
// probe fire.
func (s *System) HealLink(a, b NodeID) error {
	if s.cluster.Overlays == nil {
		return ErrNoOverlay
	}
	s.cluster.HealLink(a, b)
	return nil
}

// LinkStates snapshots a broker's overlay link states per peer (nil when
// the overlay is not deployed or the broker is unknown).
func (s *System) LinkStates(b NodeID) map[NodeID]LinkState {
	mgr, ok := s.cluster.Overlays[b]
	if !ok {
		return nil
	}
	return mgr.States()
}

// LinkInfos snapshots a broker's overlay links in full — state, pending
// backlog, spill depth/bytes, drop counters (nil when the overlay is not
// deployed or the broker is unknown).
func (s *System) LinkInfos(b NodeID) []LinkInfo {
	mgr, ok := s.cluster.Overlays[b]
	if !ok {
		return nil
	}
	return mgr.Info()
}

func (s *System) hasBroker(id NodeID) bool {
	_, ok := s.cluster.Brokers[id]
	return ok
}

// simPort adapts the simulator's client library to the Port interface.
type simPort struct {
	sys     *System
	c       *client.Client
	streams *streamSet
}

var _ Port = (*simPort)(nil)

func (p *simPort) ID() NodeID { return p.c.ID() }

func (p *simPort) Connect(b NodeID) error {
	if !p.sys.hasBroker(b) {
		return fmt.Errorf("%w: %s", ErrUnknownBroker, b)
	}
	p.c.ConnectTo(b)
	return nil
}

func (p *simPort) Disconnect() error {
	p.c.Disconnect()
	return nil
}

func (p *simPort) Border() NodeID { return p.c.Border() }

func (p *simPort) Subscribe(f Filter, opts ...SubOption) *Subscription {
	var cfg subConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	var id SubID
	if cfg.durable != "" {
		// Durable subscriptions carry a stable, name-derived ID so a
		// client recreated after a restart reattaches to the same
		// broker-side queue.
		id = p.c.SubscribeAs(durableSubID(p.ID(), cfg.durable), f)
	} else {
		id = p.c.Subscribe(f)
	}
	s := newSubscription(id, f, cfg, func(s *Subscription) {
		p.streams.remove(s.ID())
		p.c.Unsubscribe(s.ID())
	})
	p.streams.add(s)
	return s
}

func (p *simPort) SubscribeAt(cs ...Constraint) *Subscription {
	return p.Subscribe(AtLocation(cs...))
}

func (p *simPort) Publish(attrs map[string]Value) (NotificationID, error) {
	id, ok := p.c.Publish(attrs)
	if !ok {
		return NotificationID{}, ErrNotConnected
	}
	return id, nil
}

func (p *simPort) PublishBatch(ctx context.Context, batch []map[string]Value) ([]NotificationID, error) {
	return publishFrames(ctx, batch, func(frame []map[string]Value) ([]NotificationID, error) {
		ids, ok := p.c.PublishBatch(frame)
		if !ok {
			return nil, ErrNotConnected
		}
		return ids, nil
	})
}

// publishFrames is the shared batch-framing loop behind both Port
// implementations: it splits the batch into MaxBatchFrame-sized frames,
// checks ctx between frames (a publisher stalled by downstream flow
// control aborts at the next frame boundary), and accumulates the
// assigned IDs — returning the IDs of everything already framed alongside
// any error.
func publishFrames(ctx context.Context, batch []map[string]Value,
	send func(frame []map[string]Value) ([]NotificationID, error)) ([]NotificationID, error) {
	var ids []NotificationID
	for len(batch) > 0 {
		if err := ctx.Err(); err != nil {
			return ids, err
		}
		frame := batch
		if len(frame) > MaxBatchFrame {
			frame = frame[:MaxBatchFrame]
		}
		batch = batch[len(frame):]
		frameIDs, err := send(frame)
		ids = append(ids, frameIDs...)
		if err != nil {
			return ids, err
		}
	}
	return ids, nil
}

func (p *simPort) Events() <-chan Delivery { return p.streams.catchAll.Events() }

func (p *simPort) OnNotify(fn func(n Notification)) { p.streams.setNotify(fn) }

func (p *simPort) Received() []Delivery { return p.c.Received() }

func (p *simPort) Duplicates() int { return p.c.Duplicates() }

func (p *simPort) FIFOViolations() int { return p.c.FIFOViolations() }
