package rebeca

import (
	"errors"
	"fmt"
	"time"

	"rebeca/internal/client"
	"rebeca/internal/sim"
)

// ErrNotConnected is returned by Port operations that need a live link to a
// border broker.
var ErrNotConnected = errors.New("rebeca: client not connected")

// ErrUnknownBroker is returned by Port.Connect for a broker ID outside the
// deployment.
var ErrUnknownBroker = errors.New("rebeca: unknown broker")

// Deployment is the common surface over the two ways to run the
// middleware: the virtual-clock System (New) and the TCP-backed Live
// (NewLive). The same client code, middleware and tests drive both.
type Deployment interface {
	// NewClient creates a client endpoint, not yet connected.
	NewClient(id NodeID) Port
	// Brokers lists the deployment's broker IDs.
	Brokers() []NodeID
	// Settle waits until in-flight traffic has drained: exactly (to
	// quiescence of the event queue) under System, heuristically (a quiet
	// window on broker and client activity, see WithSettleWindow) under
	// Live.
	Settle()
	// Close tears the deployment down. System's Close is a no-op.
	Close() error
}

// Port is the deployment-independent client surface: the pub/sub triple,
// roaming, and delivery inspection. A Port is driven from one goroutine;
// deliveries recorded by the middleware arrive between calls (System) or
// concurrently (Live — accessors are safe to call while connected).
type Port interface {
	// ID returns the client's node ID.
	ID() NodeID
	// Connect attaches to a border broker (roaming to it if already
	// connected elsewhere).
	Connect(broker NodeID) error
	// Disconnect drops the wireless link.
	Disconnect() error
	// Border returns the current border broker ("" while disconnected).
	Border() NodeID
	// Subscribe registers interest; the subscription joins the roaming
	// profile.
	Subscribe(f Filter) SubID
	// SubscribeAt registers a location-dependent subscription (myloc).
	SubscribeAt(cs ...Constraint) SubID
	// Unsubscribe withdraws a subscription.
	Unsubscribe(id SubID)
	// Publish emits a notification (requires a connection).
	Publish(attrs map[string]Value) (NotificationID, error)
	// OnNotify registers an observer for every fresh delivery.
	OnNotify(fn func(n Notification))
	// Received returns all recorded deliveries in arrival order.
	Received() []Delivery
	// Duplicates counts suppressed duplicate deliveries.
	Duplicates() int
	// FIFOViolations counts per-publisher sequence inversions.
	FIFOViolations() int
}

// System is an in-process middleware deployment on a virtual clock, backed
// by the discrete-event simulator: deterministic, instant, and ideal for
// experiments and tests. It implements Deployment.
type System struct {
	cluster *sim.Cluster
}

var _ Deployment = (*System)(nil)

// New builds a full in-process deployment from the options: brokers on the
// movement graph's spanning tree, a transparent physical-mobility manager
// and a replicator on every broker, and the configured middleware chain.
func New(opts ...Option) (*System, error) {
	cfg, err := newConfig(opts)
	if err != nil {
		return nil, err
	}
	repl := sim.ReplicationPreSubscribe
	if cfg.reactive {
		repl = sim.ReplicationReactive
	}
	cl, err := sim.NewCluster(sim.ClusterConfig{
		Movement:        cfg.movement,
		Locations:       cfg.locations,
		Context:         cfg.context,
		Strategy:        cfg.strategy,
		Advertisements:  cfg.advertisements,
		IndexedMatching: cfg.indexed,
		Mobility:        sim.MobilityTransparent,
		Replication:     repl,
		SharedBuffers:   cfg.shared,
		BufferFactory:   cfg.bufferFactory(),
		Middleware:      cfg.middleware,
		LinkLatency:     cfg.linkLatency,
		LatencyJitter:   cfg.latencyJitter,
		JitterSeed:      cfg.jitterSeed,
	})
	if err != nil {
		return nil, err
	}
	return &System{cluster: cl}, nil
}

// NewClient creates a client endpoint.
func (s *System) NewClient(id NodeID) Port {
	return &simPort{sys: s, c: s.cluster.AddClient(id)}
}

// Brokers lists the deployment's broker IDs.
func (s *System) Brokers() []NodeID { return s.cluster.Topology.Nodes() }

// Settle runs the virtual clock until no messages remain in flight.
func (s *System) Settle() { s.cluster.Net.Run() }

// Close implements Deployment; the virtual deployment has nothing to tear
// down.
func (s *System) Close() error { return nil }

// Step advances the virtual clock by d, delivering due messages.
func (s *System) Step(d time.Duration) { s.cluster.Net.RunFor(d) }

// After schedules fn on the virtual clock.
func (s *System) After(d time.Duration, fn func()) { s.cluster.Net.After(d, fn) }

// Now returns the current virtual time.
func (s *System) Now() time.Time { return s.cluster.Net.Now() }

// MessagesCarried returns the total number of messages the network moved.
func (s *System) MessagesCarried() int { return s.cluster.Net.Stats().Total() }

func (s *System) hasBroker(id NodeID) bool {
	_, ok := s.cluster.Brokers[id]
	return ok
}

// simPort adapts the simulator's client library to the Port interface.
type simPort struct {
	sys *System
	c   *client.Client
}

var _ Port = (*simPort)(nil)

func (p *simPort) ID() NodeID { return p.c.ID() }

func (p *simPort) Connect(b NodeID) error {
	if !p.sys.hasBroker(b) {
		return fmt.Errorf("%w: %s", ErrUnknownBroker, b)
	}
	p.c.ConnectTo(b)
	return nil
}

func (p *simPort) Disconnect() error {
	p.c.Disconnect()
	return nil
}

func (p *simPort) Border() NodeID { return p.c.Border() }

func (p *simPort) Subscribe(f Filter) SubID { return p.c.Subscribe(f) }

func (p *simPort) SubscribeAt(cs ...Constraint) SubID { return p.c.SubscribeAt(cs...) }

func (p *simPort) Unsubscribe(id SubID) { p.c.Unsubscribe(id) }

func (p *simPort) Publish(attrs map[string]Value) (NotificationID, error) {
	id, ok := p.c.Publish(attrs)
	if !ok {
		return NotificationID{}, ErrNotConnected
	}
	return id, nil
}

func (p *simPort) OnNotify(fn func(n Notification)) { p.c.OnNotify = fn }

func (p *simPort) Received() []Delivery { return p.c.Received() }

func (p *simPort) Duplicates() int { return p.c.Duplicates() }

func (p *simPort) FIFOViolations() int { return p.c.FIFOViolations() }
