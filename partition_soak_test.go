package rebeca_test

import (
	"testing"
	"time"

	"rebeca"
)

// The partition-soak proof behind PR 10's outage-proofing: cut a mesh
// link, pump TEN TIMES the link's pending cap through it, heal, and
// require zero volatile gaps plus exactly-once durable replay — the
// store-backed spill must have parked everything the in-memory queue
// could not hold, then replayed it in order ahead of fresh traffic.
// The same scenario runs against both deployment flavors (virtual-clock
// sim, real-TCP live) and, spill-disabled, degrades to bounded,
// truthfully counted drops.

// linkIntrospector is the full-snapshot view both deployment flavors
// grew for PR 10 (System and Live both implement it).
type linkIntrospector interface {
	LinkInfos(b rebeca.NodeID) []rebeca.LinkInfo
}

// linkTo fetches one link's snapshot from a broker's overlay.
func linkTo(t *testing.T, d rebeca.Deployment, b, peer rebeca.NodeID) rebeca.LinkInfo {
	t.Helper()
	intro, ok := d.(linkIntrospector)
	if !ok {
		t.Fatalf("deployment %T does not expose LinkInfos", d)
	}
	for _, li := range intro.LinkInfos(b) {
		if li.Peer == peer {
			return li
		}
	}
	t.Fatalf("broker %s has no link to %s", b, peer)
	return rebeca.LinkInfo{}
}

// runPartitionSoakScenario: a 3-broker line A-B-C, a durable and a
// volatile subscriber at C, a publisher at A. The A-B link is cut and
// 10x the pending cap is published into the partition; exact asserts
// the deterministic sim bookkeeping (the live flavor's enqueue timing
// is not lockstep with Publish returns).
func runPartitionSoakScenario(t *testing.T, h *chaosHarness, cap int, exact bool) {
	t.Helper()

	durable := h.d.NewClient("durable")
	if err := durable.Connect("C"); err != nil {
		t.Fatal(err)
	}
	f := rebeca.NewFilter(rebeca.Eq("topic", rebeca.String("soak")))
	durable.Subscribe(f, rebeca.Durable("soak"), rebeca.WithStreamBuffer(4096))

	vol := h.d.NewClient("volatile")
	if err := vol.Connect("C"); err != nil {
		t.Fatal(err)
	}
	vol.Subscribe(f, rebeca.WithStreamBuffer(4096))

	pub := h.d.NewClient("pub")
	if err := pub.Connect("A"); err != nil {
		t.Fatal(err)
	}
	h.d.Settle()

	seq := 0
	wave := func(n int) {
		for i := 0; i < n; i++ {
			seq++
			if _, err := pub.Publish(map[string]rebeca.Value{
				"topic": rebeca.String("soak"), "n": rebeca.Int(int64(seq)),
			}); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Healthy warm-up, then cut and let detection fire.
	wave(10)
	h.advance(100 * time.Millisecond)
	if err := h.chaos.CutLink("A", "B"); err != nil {
		t.Fatal(err)
	}
	h.advance(300 * time.Millisecond)

	// The soak: 10x the pending cap into the partition.
	wave(10 * cap)
	h.advance(100 * time.Millisecond)

	// Mid-partition: the overflow is parked in the spill, not dropped.
	li := linkTo(t, h.d, "A", "B")
	if li.Dropped != 0 || li.SpillDropped != 0 {
		t.Fatalf("partition backlog dropped with spill on: %+v", li)
	}
	if li.SpillDepth == 0 {
		t.Fatalf("backlog never spilled (pending=%d): %+v", li.Pending, li)
	}
	if exact && li.SpillDepth != 10*cap-cap {
		t.Fatalf("spill depth = %d, want %d (pending holds the cap, spill the rest)",
			li.SpillDepth, 10*cap-cap)
	}

	// Heal; the spill replays ahead of fresh traffic.
	if err := h.chaos.HealLink("A", "B"); err != nil {
		t.Fatal(err)
	}
	h.waitEstablished(t, [][2]rebeca.NodeID{{"A", "B"}})
	wave(10)
	for i := 0; i < 200; i++ {
		h.advance(100 * time.Millisecond)
		if len(received(durable)) == seq && len(received(vol)) == seq {
			break
		}
	}

	// Zero volatile gaps: the spill preserved what the queue could not.
	if got := received(vol); len(got) != seq {
		t.Fatalf("volatile subscriber: %d deliveries, want %d: %s", len(got), seq, gaps(got, seq))
	}
	if d := vol.Duplicates(); d != 0 {
		t.Errorf("volatile subscriber saw %d duplicates", d)
	}
	if v := vol.FIFOViolations(); v != 0 {
		t.Errorf("volatile subscriber saw %d FIFO violations", v)
	}

	// Exactly-once durable replay.
	if got := received(durable); len(got) != seq {
		t.Fatalf("durable subscriber: %d deliveries, want %d: %s", len(got), seq, gaps(got, seq))
	}
	if d := durable.Duplicates(); d != 0 {
		t.Errorf("durable subscriber saw %d duplicates", d)
	}
	if v := durable.FIFOViolations(); v != 0 {
		t.Errorf("durable subscriber saw %d FIFO violations", v)
	}

	// The spill drained and compacted; nothing was ever discarded.
	li = linkTo(t, h.d, "A", "B")
	if li.SpillDepth != 0 || li.SpillBytes != 0 {
		t.Errorf("spill not drained after heal: %+v", li)
	}
	if li.Dropped != 0 || li.SpillDropped != 0 {
		t.Errorf("losses under spill: %+v", li)
	}
}

func TestPartitionSoakSim(t *testing.T) {
	const cap = 32
	g := rebeca.NewGraph().AddEdge("A", "B").AddEdge("B", "C")
	h := simChaosHarness(t,
		rebeca.WithMovement(g),
		rebeca.WithDurable(rebeca.NewMemoryStore()),
		rebeca.WithDeliveryLog(4096),
		rebeca.WithLinkSpill(rebeca.NewMemoryStore(), 0),
		rebeca.WithLinkPendingCap(cap),
	)
	runPartitionSoakScenario(t, h, cap, true)
}

func TestPartitionSoakLive(t *testing.T) {
	if testing.Short() {
		// Real TCP, real detection windows; the CI partition-soak job
		// runs this in its own lane.
		t.Skip("live partition soak skipped in -short mode")
	}
	const cap = 16
	g := rebeca.NewGraph().AddEdge("A", "B").AddEdge("B", "C")
	h := liveChaosHarness(t,
		rebeca.WithMovement(g),
		rebeca.WithDurable(rebeca.NewMemoryStore()),
		rebeca.WithDeliveryLog(4096),
		rebeca.WithLinkSpill(rebeca.NewMemoryStore(), 0),
		rebeca.WithLinkPendingCap(cap),
	)
	runPartitionSoakScenario(t, h, cap, false)
}

// Spill disabled, same soak: the link degrades gracefully — it keeps the
// newest cap-sized window, and every discarded message is counted
// exactly once on the link's Dropped counter (the "truthful counter"
// requirement: published - dropped == delivered).
func TestPartitionSoakSpillDisabledSim(t *testing.T) {
	const cap = 32
	g := rebeca.NewGraph().AddEdge("A", "B").AddEdge("B", "C")
	h := simChaosHarness(t,
		rebeca.WithMovement(g),
		rebeca.WithDeliveryLog(4096),
		rebeca.WithLinkPendingCap(cap),
	)

	vol := h.d.NewClient("volatile")
	if err := vol.Connect("C"); err != nil {
		t.Fatal(err)
	}
	f := rebeca.NewFilter(rebeca.Eq("topic", rebeca.String("soak")))
	vol.Subscribe(f, rebeca.WithStreamBuffer(4096))
	pub := h.d.NewClient("pub")
	if err := pub.Connect("A"); err != nil {
		t.Fatal(err)
	}
	h.d.Settle()

	seq := 0
	wave := func(n int) {
		for i := 0; i < n; i++ {
			seq++
			if _, err := pub.Publish(map[string]rebeca.Value{
				"topic": rebeca.String("soak"), "n": rebeca.Int(int64(seq)),
			}); err != nil {
				t.Fatal(err)
			}
		}
	}

	wave(10)
	h.advance(100 * time.Millisecond)
	if err := h.chaos.CutLink("A", "B"); err != nil {
		t.Fatal(err)
	}
	h.advance(300 * time.Millisecond)
	wave(10 * cap)
	h.advance(100 * time.Millisecond)

	// Bounded loss: exactly the overflow beyond the cap, counted.
	li := linkTo(t, h.d, "A", "B")
	wantDropped := 10*cap - cap
	if li.Dropped != wantDropped {
		t.Fatalf("dropped = %d, want %d (cap-sized window retained)", li.Dropped, wantDropped)
	}
	if li.SpillDepth != 0 || li.SpillDropped != 0 {
		t.Fatalf("spill engaged while disabled: %+v", li)
	}

	if err := h.chaos.HealLink("A", "B"); err != nil {
		t.Fatal(err)
	}
	h.waitEstablished(t, [][2]rebeca.NodeID{{"A", "B"}})
	wave(10)

	want := seq - wantDropped
	for i := 0; i < 100; i++ {
		h.advance(100 * time.Millisecond)
		if len(received(vol)) == want {
			break
		}
	}
	// Truthful accounting: published - dropped == delivered, no dupes.
	if got := received(vol); len(got) != want {
		t.Fatalf("volatile subscriber: %d deliveries, want %d (= %d published - %d dropped)",
			len(got), want, seq, wantDropped)
	}
	if d := vol.Duplicates(); d != 0 {
		t.Errorf("volatile subscriber saw %d duplicates", d)
	}
}
