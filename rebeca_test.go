package rebeca_test

import (
	"context"
	"testing"
	"time"

	"rebeca"
)

func newSystem(t *testing.T, opts ...rebeca.Option) *rebeca.System {
	t.Helper()
	sys, err := rebeca.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func connect(t *testing.T, p rebeca.Port, b rebeca.NodeID) {
	t.Helper()
	if err := p.Connect(b); err != nil {
		t.Fatalf("connect %s to %s: %v", p.ID(), b, err)
	}
}

func TestSystemBasicPubSub(t *testing.T) {
	g := rebeca.NewGraph()
	g.AddEdge("home", "office")
	sys := newSystem(t, rebeca.WithMovement(g))

	sub := sys.NewClient("sub")
	connect(t, sub, "office")
	s := sub.Subscribe(rebeca.NewFilter(rebeca.Eq("k", rebeca.Int(1))))
	sys.Settle()

	pub := sys.NewClient("pub")
	connect(t, pub, "home")
	if _, err := pub.Publish(map[string]rebeca.Value{"k": rebeca.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Publish(map[string]rebeca.Value{"k": rebeca.Int(2)}); err != nil {
		t.Fatal(err)
	}
	sys.Settle()

	if got := s.Stats().Delivered; got != 1 {
		t.Errorf("stream delivered %d, want 1", got)
	}
	s.Cancel()
	var notes []rebeca.Notification
	for d := range s.Events() {
		notes = append(notes, d.Note)
	}
	if len(notes) != 1 {
		t.Fatalf("drained %d events, want 1", len(notes))
	}
	if v, _ := notes[0].Get("k"); v.IntVal() != 1 {
		t.Errorf("delivered k = %v, want 1", v)
	}
	if sys.MessagesCarried() == 0 {
		t.Error("traffic accounting broken")
	}
}

func TestSystemPublishBatch(t *testing.T) {
	sys := newSystem(t, rebeca.WithMovement(rebeca.Line(3)))
	sub := sys.NewClient("sub")
	connect(t, sub, "B0")
	s := sub.Subscribe(rebeca.NewFilter(rebeca.Exists("n")))
	sys.Settle()

	pub := sys.NewClient("pub")
	connect(t, pub, "B2")
	baseline := sys.MessagesCarried()

	batch := make([]map[string]rebeca.Value, 10)
	for i := range batch {
		batch[i] = map[string]rebeca.Value{"n": rebeca.Int(int64(i))}
	}
	ids, err := pub.PublishBatch(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 10 {
		t.Fatalf("got %d ids, want 10", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i].Seq != ids[i-1].Seq+1 {
			t.Errorf("ids not sequential: %v", ids)
		}
	}
	sys.Settle()

	if got := s.Stats().Delivered; got != 10 {
		t.Errorf("stream delivered %d, want 10", got)
	}
	// One batch frame client->border, then per-note overlay forwarding
	// (2 hops) and one delivery each: 1 + 10*2 + 10 messages. The same
	// traffic published singly costs 10 ingress frames.
	if got := sys.MessagesCarried() - baseline; got != 31 {
		t.Errorf("batch carried %d messages, want 31 (1 frame + 20 hops + 10 delivers)", got)
	}

	// Batch while disconnected fails; empty batch is a no-op.
	if err := pub.Disconnect(); err != nil {
		t.Fatal(err)
	}
	if _, err := pub.PublishBatch(context.Background(), batch); err == nil {
		t.Error("batch while disconnected should fail")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pub.PublishBatch(ctx, batch); err == nil {
		t.Error("batch with cancelled context should fail")
	}
}

func TestSystemRoamingLossless(t *testing.T) {
	sys := newSystem(t, rebeca.WithMovement(rebeca.Line(3)))
	mob := sys.NewClient("mob")
	connect(t, mob, "B0")
	s := mob.Subscribe(rebeca.NewFilter(rebeca.Exists("n")),
		rebeca.WithStreamBuffer(128))
	sys.Settle()

	pub := sys.NewClient("pub")
	connect(t, pub, "B2")
	for i := 1; i <= 100; i++ {
		i := i
		sys.After(time.Duration(i)*time.Millisecond, func() {
			_, _ = pub.Publish(map[string]rebeca.Value{"n": rebeca.Int(int64(i))})
		})
	}
	sys.After(30*time.Millisecond, func() { _ = mob.Disconnect() })
	sys.After(40*time.Millisecond, func() { _ = mob.Connect("B1") })
	sys.Settle()

	s.Cancel()
	got := 0
	for range s.Events() {
		got++
	}
	if got != 100 {
		t.Errorf("stream carried %d of 100", got)
	}
	if st := s.Stats(); st.Delivered != 100 || st.Dropped != 0 {
		t.Errorf("stats = %+v, want 100 delivered, 0 dropped", st)
	}
	if mob.Duplicates() != 0 || mob.FIFOViolations() != 0 {
		t.Errorf("dups=%d fifo=%d", mob.Duplicates(), mob.FIFOViolations())
	}
}

func TestSystemLocationDependentSubscription(t *testing.T) {
	g := rebeca.Line(3)
	sys := newSystem(t, rebeca.WithMovement(g), rebeca.WithDeliveryLog(16))

	mob := sys.NewClient("mob")
	connect(t, mob, "B0")
	mob.SubscribeAt(rebeca.Eq("service", rebeca.String("menu")))
	sys.Settle()

	pub := sys.NewClient("pub")
	connect(t, pub, "B1")
	n := rebeca.Notification{Attrs: map[string]rebeca.Value{
		"service": rebeca.String("menu"),
		"dish":    rebeca.String("pasta"),
	}}
	n = rebeca.StampLocation(n, "region-B1")
	_, _ = pub.Publish(n.Attrs)
	sys.Settle()

	// Not delivered while at B0, but replayed on arrival at B1.
	if got := len(mob.Received()); got != 0 {
		t.Fatalf("received %d before arrival", got)
	}
	_ = mob.Disconnect()
	sys.Step(5 * time.Millisecond)
	connect(t, mob, "B1")
	sys.Settle()
	if got := len(mob.Received()); got != 1 {
		t.Errorf("pre-subscription replay got %d, want 1", got)
	}
}

func TestSystemReactiveOption(t *testing.T) {
	sys := newSystem(t,
		rebeca.WithMovement(rebeca.Line(3)),
		rebeca.WithReactiveBaseline(),
		rebeca.WithDeliveryLog(16),
	)
	mob := sys.NewClient("mob")
	connect(t, mob, "B0")
	mob.SubscribeAt(rebeca.Eq("service", rebeca.String("menu")))
	sys.Settle()

	pub := sys.NewClient("pub")
	connect(t, pub, "B1")
	n := rebeca.Notification{Attrs: map[string]rebeca.Value{"service": rebeca.String("menu")}}
	n = rebeca.StampLocation(n, "region-B1")
	_, _ = pub.Publish(n.Attrs)
	sys.Settle()
	_ = mob.Disconnect()
	sys.Step(5 * time.Millisecond)
	connect(t, mob, "B1")
	sys.Settle()
	if got := len(mob.Received()); got != 0 {
		t.Errorf("reactive mode replayed %d, want 0", got)
	}
}

func TestSystemBufferCapOption(t *testing.T) {
	sys := newSystem(t,
		rebeca.WithMovement(rebeca.Line(3)),
		rebeca.WithBufferCap(2),
		rebeca.WithDeliveryLog(16),
	)
	mob := sys.NewClient("mob")
	connect(t, mob, "B0")
	mob.SubscribeAt(rebeca.Eq("service", rebeca.String("menu")))
	sys.Settle()
	pub := sys.NewClient("pub")
	connect(t, pub, "B1")
	for i := 0; i < 5; i++ {
		n := rebeca.Notification{Attrs: map[string]rebeca.Value{
			"service": rebeca.String("menu"),
			"i":       rebeca.Int(int64(i)),
		}}
		n = rebeca.StampLocation(n, "region-B1")
		_, _ = pub.Publish(n.Attrs)
	}
	sys.Settle()
	_ = mob.Disconnect()
	sys.Step(2 * time.Millisecond)
	connect(t, mob, "B1")
	sys.Settle()
	if got := len(mob.Received()); got != 2 {
		t.Errorf("capped buffer replayed %d, want 2", got)
	}
}

func TestSystemClockAndScheduling(t *testing.T) {
	sys := newSystem(t, rebeca.WithMovement(rebeca.Line(2)))
	t0 := sys.Now()
	fired := false
	sys.After(time.Second, func() { fired = true })
	sys.Step(999 * time.Millisecond)
	if fired {
		t.Error("event fired early")
	}
	sys.Step(time.Millisecond)
	if !fired {
		t.Error("event did not fire")
	}
	if got := sys.Now().Sub(t0); got != time.Second {
		t.Errorf("clock advanced %s, want 1s", got)
	}
}

func TestSystemBrokersList(t *testing.T) {
	sys := newSystem(t, rebeca.WithMovement(rebeca.Grid(2, 2)))
	if got := len(sys.Brokers()); got != 4 {
		t.Errorf("brokers = %d, want 4", got)
	}
}

func TestNewRequiresMovement(t *testing.T) {
	if _, err := rebeca.New(); err == nil {
		t.Error("New without movement graph should fail")
	}
}

func TestPortErrors(t *testing.T) {
	sys := newSystem(t, rebeca.WithMovement(rebeca.Line(2)))
	c := sys.NewClient("c")
	if err := c.Connect("nowhere"); err == nil {
		t.Error("connect to unknown broker should fail")
	}
	if _, err := c.Publish(map[string]rebeca.Value{"k": rebeca.Int(1)}); err == nil {
		t.Error("publish while disconnected should fail")
	}
	connect(t, c, "B0")
	if got := c.Border(); got != "B0" {
		t.Errorf("border = %s, want B0", got)
	}
}

func TestSubscriptionHandleLifecycle(t *testing.T) {
	sys := newSystem(t, rebeca.WithMovement(rebeca.Line(2)))
	c := sys.NewClient("c")
	connect(t, c, "B0")
	s := c.Subscribe(rebeca.NewFilter(rebeca.Exists("k")))
	if s.ID() == "" {
		t.Error("subscription should carry its end-to-end ID")
	}
	if !s.Filter().Matches(rebeca.Notification{Attrs: map[string]rebeca.Value{"k": rebeca.Int(1)}}) {
		t.Error("handle should expose the subscribed filter")
	}
	sys.Settle()

	pub := sys.NewClient("pub")
	connect(t, pub, "B1")
	_, _ = pub.Publish(map[string]rebeca.Value{"k": rebeca.Int(1)})
	sys.Settle()

	if s.Cancelled() {
		t.Error("not cancelled yet")
	}
	s.Cancel()
	s.Cancel() // idempotent
	if !s.Cancelled() {
		t.Error("cancelled")
	}
	// The stream drains its buffered delivery, then terminates.
	n := 0
	for range s.Events() {
		n++
	}
	if n != 1 {
		t.Errorf("drained %d, want 1", n)
	}

	// Post-cancel traffic no longer reaches the stream.
	_, _ = pub.Publish(map[string]rebeca.Value{"k": rebeca.Int(2)})
	sys.Settle()
	if st := s.Stats(); st.Delivered != 1 || st.Buffered != 0 {
		t.Errorf("post-cancel stats = %+v, want 1 delivered, 0 buffered", st)
	}
}

func TestFilterFacade(t *testing.T) {
	f := rebeca.NewFilter(
		rebeca.Ge("v", rebeca.Float(1)),
		rebeca.Le("v", rebeca.Float(5)),
		rebeca.Prefix("name", "ro"),
		rebeca.In("kind", rebeca.String("a"), rebeca.String("b")),
	)
	n := rebeca.Notification{Attrs: map[string]rebeca.Value{
		"v":    rebeca.Float(3),
		"name": rebeca.String("room"),
		"kind": rebeca.String("a"),
	}}
	if !f.Matches(n) {
		t.Error("facade filter should match")
	}
	if !rebeca.AllFilter().Matches(n) {
		t.Error("AllFilter should match anything")
	}
	if !rebeca.AtLocation().LocationDependent() {
		t.Error("AtLocation should be location dependent")
	}
	// Remaining constraint constructors exist and behave.
	for _, c := range []rebeca.Constraint{
		rebeca.Eq("x", rebeca.Int(1)), rebeca.Ne("x", rebeca.Int(1)),
		rebeca.Lt("x", rebeca.Int(1)), rebeca.Gt("x", rebeca.Int(1)),
		rebeca.Exists("x"), rebeca.Suffix("s", "x"), rebeca.Contains("s", "x"),
	} {
		_ = rebeca.NewFilter(c)
	}
	_ = rebeca.Bool(true)
}
