package rebeca_test

import (
	"testing"
	"time"

	"rebeca"
)

func newSystem(t *testing.T, opts rebeca.Options) *rebeca.System {
	t.Helper()
	sys, err := rebeca.NewSystem(opts)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestSystemBasicPubSub(t *testing.T) {
	g := rebeca.NewGraph()
	g.AddEdge("home", "office")
	sys := newSystem(t, rebeca.Options{Movement: g})

	sub := sys.NewClient("sub")
	sub.ConnectTo("office")
	sub.Subscribe(rebeca.NewFilter(rebeca.Eq("k", rebeca.Int(1))))
	sys.Settle()

	pub := sys.NewClient("pub")
	pub.ConnectTo("home")
	pub.Publish(map[string]rebeca.Value{"k": rebeca.Int(1)})
	pub.Publish(map[string]rebeca.Value{"k": rebeca.Int(2)})
	sys.Settle()

	if got := len(sub.Received()); got != 1 {
		t.Errorf("received %d, want 1", got)
	}
	if sys.MessagesCarried() == 0 {
		t.Error("traffic accounting broken")
	}
}

func TestSystemRoamingLossless(t *testing.T) {
	sys := newSystem(t, rebeca.Options{Movement: rebeca.Line(3)})
	mob := sys.NewClient("mob")
	mob.ConnectTo("B0")
	mob.Subscribe(rebeca.NewFilter(rebeca.Exists("n")))
	sys.Settle()

	pub := sys.NewClient("pub")
	pub.ConnectTo("B2")
	for i := 1; i <= 100; i++ {
		i := i
		sys.After(time.Duration(i)*time.Millisecond, func() {
			pub.Publish(map[string]rebeca.Value{"n": rebeca.Int(int64(i))})
		})
	}
	sys.After(30*time.Millisecond, func() { mob.Disconnect() })
	sys.After(40*time.Millisecond, func() { mob.ConnectTo("B1") })
	sys.Settle()

	if got := len(sub(mob)); got != 100 {
		t.Errorf("received %d of 100", got)
	}
	if mob.Duplicates() != 0 || mob.FIFOViolations() != 0 {
		t.Errorf("dups=%d fifo=%d", mob.Duplicates(), mob.FIFOViolations())
	}
}

func sub(c *rebeca.Client) []rebeca.Delivery { return c.Received() }

func TestSystemLocationDependentSubscription(t *testing.T) {
	g := rebeca.Line(3)
	sys := newSystem(t, rebeca.Options{Movement: g})

	mob := sys.NewClient("mob")
	mob.ConnectTo("B0")
	mob.SubscribeAt(rebeca.Eq("service", rebeca.String("menu")))
	sys.Settle()

	pub := sys.NewClient("pub")
	pub.ConnectTo("B1")
	n := rebeca.Notification{Attrs: map[string]rebeca.Value{
		"service": rebeca.String("menu"),
		"dish":    rebeca.String("pasta"),
	}}
	n = rebeca.StampLocation(n, "region-B1")
	pub.Publish(n.Attrs)
	sys.Settle()

	// Not delivered while at B0, but replayed on arrival at B1.
	if got := len(mob.Received()); got != 0 {
		t.Fatalf("received %d before arrival", got)
	}
	mob.Disconnect()
	sys.Step(5 * time.Millisecond)
	mob.ConnectTo("B1")
	sys.Settle()
	if got := len(mob.Received()); got != 1 {
		t.Errorf("pre-subscription replay got %d, want 1", got)
	}
}

func TestSystemReactiveOption(t *testing.T) {
	sys := newSystem(t, rebeca.Options{
		Movement:            rebeca.Line(3),
		DisablePreSubscribe: true,
	})
	mob := sys.NewClient("mob")
	mob.ConnectTo("B0")
	mob.SubscribeAt(rebeca.Eq("service", rebeca.String("menu")))
	sys.Settle()

	pub := sys.NewClient("pub")
	pub.ConnectTo("B1")
	n := rebeca.Notification{Attrs: map[string]rebeca.Value{"service": rebeca.String("menu")}}
	n = rebeca.StampLocation(n, "region-B1")
	pub.Publish(n.Attrs)
	sys.Settle()
	mob.Disconnect()
	sys.Step(5 * time.Millisecond)
	mob.ConnectTo("B1")
	sys.Settle()
	if got := len(mob.Received()); got != 0 {
		t.Errorf("reactive mode replayed %d, want 0", got)
	}
}

func TestSystemBufferCapOption(t *testing.T) {
	sys := newSystem(t, rebeca.Options{
		Movement:  rebeca.Line(3),
		BufferCap: 2,
	})
	mob := sys.NewClient("mob")
	mob.ConnectTo("B0")
	mob.SubscribeAt(rebeca.Eq("service", rebeca.String("menu")))
	sys.Settle()
	pub := sys.NewClient("pub")
	pub.ConnectTo("B1")
	for i := 0; i < 5; i++ {
		n := rebeca.Notification{Attrs: map[string]rebeca.Value{
			"service": rebeca.String("menu"),
			"i":       rebeca.Int(int64(i)),
		}}
		n = rebeca.StampLocation(n, "region-B1")
		pub.Publish(n.Attrs)
	}
	sys.Settle()
	mob.Disconnect()
	sys.Step(2 * time.Millisecond)
	mob.ConnectTo("B1")
	sys.Settle()
	if got := len(mob.Received()); got != 2 {
		t.Errorf("capped buffer replayed %d, want 2", got)
	}
}

func TestSystemClockAndScheduling(t *testing.T) {
	sys := newSystem(t, rebeca.Options{Movement: rebeca.Line(2)})
	t0 := sys.Now()
	fired := false
	sys.After(time.Second, func() { fired = true })
	sys.Step(999 * time.Millisecond)
	if fired {
		t.Error("event fired early")
	}
	sys.Step(time.Millisecond)
	if !fired {
		t.Error("event did not fire")
	}
	if got := sys.Now().Sub(t0); got != time.Second {
		t.Errorf("clock advanced %s, want 1s", got)
	}
}

func TestSystemBrokersList(t *testing.T) {
	sys := newSystem(t, rebeca.Options{Movement: rebeca.Grid(2, 2)})
	if got := len(sys.Brokers()); got != 4 {
		t.Errorf("brokers = %d, want 4", got)
	}
}

func TestSystemRequiresMovement(t *testing.T) {
	if _, err := rebeca.NewSystem(rebeca.Options{}); err == nil {
		t.Error("NewSystem without movement graph should fail")
	}
}

func TestFilterFacade(t *testing.T) {
	f := rebeca.NewFilter(
		rebeca.Ge("v", rebeca.Float(1)),
		rebeca.Le("v", rebeca.Float(5)),
		rebeca.Prefix("name", "ro"),
		rebeca.In("kind", rebeca.String("a"), rebeca.String("b")),
	)
	n := rebeca.Notification{Attrs: map[string]rebeca.Value{
		"v":    rebeca.Float(3),
		"name": rebeca.String("room"),
		"kind": rebeca.String("a"),
	}}
	if !f.Matches(n) {
		t.Error("facade filter should match")
	}
	if !rebeca.AllFilter().Matches(n) {
		t.Error("AllFilter should match anything")
	}
	if !rebeca.AtLocation().LocationDependent() {
		t.Error("AtLocation should be location dependent")
	}
	// Remaining constraint constructors exist and behave.
	for _, c := range []rebeca.Constraint{
		rebeca.Eq("x", rebeca.Int(1)), rebeca.Ne("x", rebeca.Int(1)),
		rebeca.Lt("x", rebeca.Int(1)), rebeca.Gt("x", rebeca.Int(1)),
		rebeca.Exists("x"), rebeca.Suffix("s", "x"), rebeca.Contains("s", "x"),
	} {
		_ = rebeca.NewFilter(c)
	}
	_ = rebeca.Bool(true)
}
