package rebeca_test

import (
	"testing"
	"time"

	"rebeca"
)

func newSystem(t *testing.T, opts ...rebeca.Option) *rebeca.System {
	t.Helper()
	sys, err := rebeca.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func connect(t *testing.T, p rebeca.Port, b rebeca.NodeID) {
	t.Helper()
	if err := p.Connect(b); err != nil {
		t.Fatalf("connect %s to %s: %v", p.ID(), b, err)
	}
}

func TestSystemBasicPubSub(t *testing.T) {
	g := rebeca.NewGraph()
	g.AddEdge("home", "office")
	sys := newSystem(t, rebeca.WithMovement(g))

	sub := sys.NewClient("sub")
	connect(t, sub, "office")
	sub.Subscribe(rebeca.NewFilter(rebeca.Eq("k", rebeca.Int(1))))
	sys.Settle()

	pub := sys.NewClient("pub")
	connect(t, pub, "home")
	if _, err := pub.Publish(map[string]rebeca.Value{"k": rebeca.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Publish(map[string]rebeca.Value{"k": rebeca.Int(2)}); err != nil {
		t.Fatal(err)
	}
	sys.Settle()

	if got := len(sub.Received()); got != 1 {
		t.Errorf("received %d, want 1", got)
	}
	if sys.MessagesCarried() == 0 {
		t.Error("traffic accounting broken")
	}
}

func TestSystemRoamingLossless(t *testing.T) {
	sys := newSystem(t, rebeca.WithMovement(rebeca.Line(3)))
	mob := sys.NewClient("mob")
	connect(t, mob, "B0")
	mob.Subscribe(rebeca.NewFilter(rebeca.Exists("n")))
	sys.Settle()

	pub := sys.NewClient("pub")
	connect(t, pub, "B2")
	for i := 1; i <= 100; i++ {
		i := i
		sys.After(time.Duration(i)*time.Millisecond, func() {
			_, _ = pub.Publish(map[string]rebeca.Value{"n": rebeca.Int(int64(i))})
		})
	}
	sys.After(30*time.Millisecond, func() { _ = mob.Disconnect() })
	sys.After(40*time.Millisecond, func() { _ = mob.Connect("B1") })
	sys.Settle()

	if got := len(mob.Received()); got != 100 {
		t.Errorf("received %d of 100", got)
	}
	if mob.Duplicates() != 0 || mob.FIFOViolations() != 0 {
		t.Errorf("dups=%d fifo=%d", mob.Duplicates(), mob.FIFOViolations())
	}
}

func TestSystemLocationDependentSubscription(t *testing.T) {
	g := rebeca.Line(3)
	sys := newSystem(t, rebeca.WithMovement(g))

	mob := sys.NewClient("mob")
	connect(t, mob, "B0")
	mob.SubscribeAt(rebeca.Eq("service", rebeca.String("menu")))
	sys.Settle()

	pub := sys.NewClient("pub")
	connect(t, pub, "B1")
	n := rebeca.Notification{Attrs: map[string]rebeca.Value{
		"service": rebeca.String("menu"),
		"dish":    rebeca.String("pasta"),
	}}
	n = rebeca.StampLocation(n, "region-B1")
	_, _ = pub.Publish(n.Attrs)
	sys.Settle()

	// Not delivered while at B0, but replayed on arrival at B1.
	if got := len(mob.Received()); got != 0 {
		t.Fatalf("received %d before arrival", got)
	}
	_ = mob.Disconnect()
	sys.Step(5 * time.Millisecond)
	connect(t, mob, "B1")
	sys.Settle()
	if got := len(mob.Received()); got != 1 {
		t.Errorf("pre-subscription replay got %d, want 1", got)
	}
}

func TestSystemReactiveOption(t *testing.T) {
	sys := newSystem(t,
		rebeca.WithMovement(rebeca.Line(3)),
		rebeca.WithReactiveBaseline(),
	)
	mob := sys.NewClient("mob")
	connect(t, mob, "B0")
	mob.SubscribeAt(rebeca.Eq("service", rebeca.String("menu")))
	sys.Settle()

	pub := sys.NewClient("pub")
	connect(t, pub, "B1")
	n := rebeca.Notification{Attrs: map[string]rebeca.Value{"service": rebeca.String("menu")}}
	n = rebeca.StampLocation(n, "region-B1")
	_, _ = pub.Publish(n.Attrs)
	sys.Settle()
	_ = mob.Disconnect()
	sys.Step(5 * time.Millisecond)
	connect(t, mob, "B1")
	sys.Settle()
	if got := len(mob.Received()); got != 0 {
		t.Errorf("reactive mode replayed %d, want 0", got)
	}
}

func TestSystemBufferCapOption(t *testing.T) {
	sys := newSystem(t,
		rebeca.WithMovement(rebeca.Line(3)),
		rebeca.WithBufferCap(2),
	)
	mob := sys.NewClient("mob")
	connect(t, mob, "B0")
	mob.SubscribeAt(rebeca.Eq("service", rebeca.String("menu")))
	sys.Settle()
	pub := sys.NewClient("pub")
	connect(t, pub, "B1")
	for i := 0; i < 5; i++ {
		n := rebeca.Notification{Attrs: map[string]rebeca.Value{
			"service": rebeca.String("menu"),
			"i":       rebeca.Int(int64(i)),
		}}
		n = rebeca.StampLocation(n, "region-B1")
		_, _ = pub.Publish(n.Attrs)
	}
	sys.Settle()
	_ = mob.Disconnect()
	sys.Step(2 * time.Millisecond)
	connect(t, mob, "B1")
	sys.Settle()
	if got := len(mob.Received()); got != 2 {
		t.Errorf("capped buffer replayed %d, want 2", got)
	}
}

func TestSystemClockAndScheduling(t *testing.T) {
	sys := newSystem(t, rebeca.WithMovement(rebeca.Line(2)))
	t0 := sys.Now()
	fired := false
	sys.After(time.Second, func() { fired = true })
	sys.Step(999 * time.Millisecond)
	if fired {
		t.Error("event fired early")
	}
	sys.Step(time.Millisecond)
	if !fired {
		t.Error("event did not fire")
	}
	if got := sys.Now().Sub(t0); got != time.Second {
		t.Errorf("clock advanced %s, want 1s", got)
	}
}

func TestSystemBrokersList(t *testing.T) {
	sys := newSystem(t, rebeca.WithMovement(rebeca.Grid(2, 2)))
	if got := len(sys.Brokers()); got != 4 {
		t.Errorf("brokers = %d, want 4", got)
	}
}

func TestNewRequiresMovement(t *testing.T) {
	if _, err := rebeca.New(); err == nil {
		t.Error("New without movement graph should fail")
	}
}

func TestPortErrors(t *testing.T) {
	sys := newSystem(t, rebeca.WithMovement(rebeca.Line(2)))
	c := sys.NewClient("c")
	if err := c.Connect("nowhere"); err == nil {
		t.Error("connect to unknown broker should fail")
	}
	if _, err := c.Publish(map[string]rebeca.Value{"k": rebeca.Int(1)}); err == nil {
		t.Error("publish while disconnected should fail")
	}
	connect(t, c, "B0")
	if got := c.Border(); got != "B0" {
		t.Errorf("border = %s, want B0", got)
	}
}

func TestDeprecatedOptionsShim(t *testing.T) {
	sys, err := rebeca.NewSystem(rebeca.Options{
		Movement:  rebeca.Line(3),
		BufferCap: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sys.Brokers()); got != 3 {
		t.Errorf("brokers = %d, want 3", got)
	}
	if _, err := rebeca.NewSystem(rebeca.Options{}); err == nil {
		t.Error("NewSystem without movement graph should fail")
	}
}

func TestFilterFacade(t *testing.T) {
	f := rebeca.NewFilter(
		rebeca.Ge("v", rebeca.Float(1)),
		rebeca.Le("v", rebeca.Float(5)),
		rebeca.Prefix("name", "ro"),
		rebeca.In("kind", rebeca.String("a"), rebeca.String("b")),
	)
	n := rebeca.Notification{Attrs: map[string]rebeca.Value{
		"v":    rebeca.Float(3),
		"name": rebeca.String("room"),
		"kind": rebeca.String("a"),
	}}
	if !f.Matches(n) {
		t.Error("facade filter should match")
	}
	if !rebeca.AllFilter().Matches(n) {
		t.Error("AllFilter should match anything")
	}
	if !rebeca.AtLocation().LocationDependent() {
		t.Error("AtLocation should be location dependent")
	}
	// Remaining constraint constructors exist and behave.
	for _, c := range []rebeca.Constraint{
		rebeca.Eq("x", rebeca.Int(1)), rebeca.Ne("x", rebeca.Int(1)),
		rebeca.Lt("x", rebeca.Int(1)), rebeca.Gt("x", rebeca.Int(1)),
		rebeca.Exists("x"), rebeca.Suffix("s", "x"), rebeca.Contains("s", "x"),
	} {
		_ = rebeca.NewFilter(c)
	}
	_ = rebeca.Bool(true)
}
