// Officefloor: Fig. 1 (right) of the paper — logical mobility. An office
// floor is covered by corridor-segment brokers, each responsible for a few
// rooms. A worker subscribes to temperature readings "at my current
// location" (the myloc marker); the subscription adapts automatically as
// they roam, and — thanks to pre-subscriptions — readings published in the
// next segment just before they walk in are replayed on arrival.
//
// Run with: go run ./examples/officefloor
package main

import (
	"fmt"
	"time"

	"rebeca"
)

func main() {
	// Four corridor segments; each broker covers its corridor plus 3 rooms.
	g := rebeca.Line(4) // B0 - B1 - B2 - B3
	locs := rebeca.OfficeFloor(g.Nodes(), 3)
	sys, err := rebeca.New(
		rebeca.WithMovement(g),
		rebeca.WithLocations(locs),
	)
	if err != nil {
		panic(err)
	}

	// One thermometer per segment, reporting per-room temperatures.
	for i, b := range g.Nodes() {
		sensor := sys.NewClient(rebeca.NodeID(fmt.Sprintf("sensor%d", i)))
		if err := sensor.Connect(b); err != nil {
			panic(err)
		}
		b, i := b, i
		var sample func()
		nth := 0
		sample = func() {
			nth++
			for _, room := range locs.Scope(b) {
				n := rebeca.Notification{Attrs: map[string]rebeca.Value{
					"service": rebeca.String("temperature"),
					"celsius": rebeca.Float(19 + float64((i+nth)%5)),
				}}
				n = rebeca.StampLocation(n, room)
				_, _ = sensor.Publish(n.Attrs)
			}
			if nth < 40 {
				sys.After(10*time.Millisecond, sample)
			}
		}
		sys.After(time.Duration(i+1)*time.Millisecond, sample)
	}

	// The worker wants readings for wherever they currently are.
	worker := sys.NewClient("worker")
	readingsBySegment := make(map[string]int)
	worker.OnNotify(func(n rebeca.Notification) {
		loc, _ := n.Get(rebeca.AttrLocation)
		readingsBySegment[loc.Str()]++
	})
	if err := worker.Connect("B0"); err != nil {
		panic(err)
	}
	worker.SubscribeAt(rebeca.Eq("service", rebeca.String("temperature")))

	// Walk the corridor: B0 -> B1 -> B2, dwelling 100ms per segment. The
	// schedule is laid out up front; Settle then runs the whole virtual
	// timeline (sensors keep sampling throughout).
	sys.After(100*time.Millisecond, func() { _ = worker.Disconnect() })
	sys.After(105*time.Millisecond, func() { _ = worker.Connect("B1") })
	sys.After(200*time.Millisecond, func() { _ = worker.Disconnect() })
	sys.After(205*time.Millisecond, func() { _ = worker.Connect("B2") })
	sys.Settle()

	fmt.Println("temperature readings received, by location:")
	total := 0
	for _, b := range g.Nodes() {
		for _, room := range locs.Scope(b) {
			if c := readingsBySegment[string(room)]; c > 0 {
				fmt.Printf("  %-12s %3d\n", room, c)
				total += c
			}
		}
	}
	fmt.Printf("total: %d\n", total)
	fmt.Println()
	fmt.Println("B3 rooms are silent (the worker never went there, and its")
	fmt.Println("broker was never in the movement-graph neighborhood).")
	fmt.Println("B1/B2 include readings from just before arrival — replayed")
	fmt.Println("from the pre-subscribed virtual client's buffer.")
}
