// Quickstart: a two-broker deployment, one subscriber, one publisher.
// Demonstrates the basic pub/sub triple (publish, subscribe, notify) over
// the content-based router network.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"rebeca"
)

func main() {
	// A movement graph with one edge: home <-> office. The broker overlay
	// is its spanning tree.
	g := rebeca.NewGraph()
	g.AddEdge("home", "office")

	sys, err := rebeca.NewSystem(rebeca.Options{Movement: g})
	if err != nil {
		panic(err)
	}

	// A subscriber at the office listens for build results.
	alice := sys.NewClient("alice")
	alice.OnNotify = func(n rebeca.Notification) {
		status, _ := n.Get("status")
		commit, _ := n.Get("commit")
		fmt.Printf("alice: build %s for commit %s\n", status, commit)
	}
	alice.ConnectTo("office")
	alice.Subscribe(rebeca.NewFilter(
		rebeca.Eq("service", rebeca.String("ci")),
		rebeca.Eq("status", rebeca.String("failed")),
	))
	sys.Settle() // let the subscription propagate

	// A publisher at home emits CI results; only failures match.
	ci := sys.NewClient("ci-bot")
	ci.ConnectTo("home")
	for i, status := range []string{"passed", "failed", "passed", "failed"} {
		ci.Publish(map[string]rebeca.Value{
			"service": rebeca.String("ci"),
			"status":  rebeca.String(status),
			"commit":  rebeca.String(fmt.Sprintf("c%04d", i)),
		})
	}
	sys.Settle()

	fmt.Printf("alice received %d notifications (2 expected)\n", len(alice.Received()))
	fmt.Printf("network carried %d messages\n", sys.MessagesCarried())
}
