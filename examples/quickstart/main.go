// Quickstart: a two-broker deployment, one subscriber, one publisher.
// Demonstrates the basic pub/sub triple (publish, subscribe, notify) over
// the content-based router network, assembled with functional options and
// observed through the Metrics middleware.
//
// The same code drives both deployment flavors behind the Deployment
// interface: the virtual-clock simulator (default) and real TCP nodes on
// loopback (-live).
//
// Run with: go run ./examples/quickstart [-live]
package main

import (
	"flag"
	"fmt"

	"rebeca"
)

func main() {
	live := flag.Bool("live", false, "run over real TCP on loopback instead of the virtual clock")
	flag.Parse()

	// A movement graph with one edge: home <-> office. The broker overlay
	// is its spanning tree.
	g := rebeca.NewGraph()
	g.AddEdge("home", "office")

	metrics := rebeca.NewMetrics()
	opts := []rebeca.Option{
		rebeca.WithMovement(g),
		rebeca.WithMiddleware(metrics),
	}
	var (
		d   rebeca.Deployment
		err error
	)
	if *live {
		d, err = rebeca.NewLive(opts...)
	} else {
		d, err = rebeca.New(opts...)
	}
	if err != nil {
		panic(err)
	}
	defer d.Close()

	// A subscriber at the office listens for build results.
	alice := d.NewClient("alice")
	alice.OnNotify(func(n rebeca.Notification) {
		status, _ := n.Get("status")
		commit, _ := n.Get("commit")
		fmt.Printf("alice: build %s for commit %s\n", status, commit)
	})
	if err := alice.Connect("office"); err != nil {
		panic(err)
	}
	alice.Subscribe(rebeca.NewFilter(
		rebeca.Eq("service", rebeca.String("ci")),
		rebeca.Eq("status", rebeca.String("failed")),
	))
	d.Settle() // let the subscription propagate

	// A publisher at home emits CI results; only failures match.
	ci := d.NewClient("ci-bot")
	if err := ci.Connect("home"); err != nil {
		panic(err)
	}
	for i, status := range []string{"passed", "failed", "passed", "failed"} {
		_, _ = ci.Publish(map[string]rebeca.Value{
			"service": rebeca.String("ci"),
			"status":  rebeca.String(status),
			"commit":  rebeca.String(fmt.Sprintf("c%04d", i)),
		})
	}
	d.Settle()

	totals := metrics.Totals()
	fmt.Printf("alice received %d notifications (2 expected)\n", len(alice.Received()))
	fmt.Printf("brokers routed %d publishes, delivered %d (avg latency %s)\n",
		totals.Publishes, totals.Deliveries, totals.AvgDeliveryLatency())
}
