// Quickstart: a two-broker deployment, one subscriber, one publisher.
// Demonstrates the streaming subscription surface: Subscribe returns a
// *Subscription handle whose Events channel carries the deliveries, the
// publisher frames its notifications as one batch, and the Metrics
// middleware observes the brokers.
//
// The same code drives both deployment flavors behind the Deployment
// interface: the virtual-clock simulator (default) and real TCP nodes on
// loopback (-live).
//
// It also shows the overlay subsystem's surface: WithHeartbeat tunes the
// broker-link supervision (KPing/KPong probe interval and failure
// timeout), and WithLinkObserver — like any middleware implementing the
// LinkObserver extension — watches links walk connecting → handshaking →
// established (and degraded → established again after a failure; the
// built-in Metrics tracks the same transitions per broker). Under -live
// the links are real TCP connections that redial with backoff and replay
// routing installs on every (re-)establishment, so broker start order
// never matters.
//
// Since PR 5 live links speak a length-prefixed binary wire protocol and
// every broker matches through the counting index by default — nothing to
// configure here. (The transitional gob fallback is gone; a legacy peer
// dialing in is refused with a clear error.)
//
// Topologies need not be trees anymore: WithMeshRouting() accepts a
// cyclic movement graph — the brokers elect a spanning tree over it,
// redundant edges become failover paths, and dedup keeps delivery
// exactly-once while floods repair around a cut link. And instead of
// wiring a fleet by hand, WithRegistry("file:peers.json") (or dns:/seed:)
// has every broker register itself and discover its peers; mesh routing
// comes along automatically since a registry may describe any graph. The
// distributed equivalent replaces all the static -edges/-dial flags:
//
//	rebeca-broker -name b1 -listen :7471 -registry file:peers.json
//	rebeca-broker -name b2 -listen :7472 -registry file:peers.json
//	rebeca-broker -name b3 -listen :7473 -registry file:peers.json
//
// Each node registers under -name, links whoever the registry announces
// (the lexicographically smaller ID dials), and departures re-elect the
// tree; /readyz (with -ops) gates on membership + overlay convergence.
//
// Fleet observability (PR 8) rounds out the ops story. A broker behind
// NAT that nothing can scrape reports outbound instead:
//
//	rebeca-broker -name b1 ... -push http://gateway:9091/ingest -push-interval 15s
//
// (-push-format json ships compact counter deltas instead of Prometheus
// text; facades use WithOpsPush(url, interval).) Hop tracing scales to
// production rates via sampling — `-trace-sample 64` stamps 1-in-64
// notifications, deterministically by ID so every broker agrees, while
// `-trace-slow 250ms` retro-captures any delivery that crosses the
// threshold (and rate-limited/flood-fallback drops) with its full hop
// path and a reason tag; facades use WithTraceSampling(n, slow). Both are
// live knobs: POST /config sample=1 or slow=100ms. Structured slog
// output replaces ad-hoc prints — `-log-level debug` (or
// WithLogging(w, "info")) tags every line with its subsystem, and POST
// /config log.overlay=debug raises one subsystem's verbosity at runtime
// without a restart. To chase a latency spike: scrape
// /metrics?exemplars=1, read the worst notification ID off the slow
// bucket's `# {note="pub#seq"}` trailer, and GET /trace?note=pub#seq for
// its hop-by-hop path (bare /trace lists every retained span,
// newest-first).
//
// Watching a fleet (PR 9): per-broker scrapes stop scaling once the
// fleet does, so the push path now ships the whole story — each broker
// POSTs its metric snapshot AND its completed trace spans to one
// rebeca-collector, which reassembles the cross-process view:
//
//	rebeca-collector -listen :9290
//	rebeca-broker -name b1 ... -push http://collector:9290/ingest -push-interval 15s -trace-sample 64
//	rebeca-broker -name b2 ... -push http://collector:9290/ingest -push-interval 15s -trace-sample 64
//
// The collector's /metrics re-exports every broker's families tagged
// instance="b1" etc. plus rebeca_fleet_* counter totals folded across
// the fleet, so one Prometheus scrape covers N brokers. Its
// /trace?note=pub#seq merges the partial spans different brokers
// shipped for the same notification into one hop-ordered path (a trace
// is flagged partial until every broker on the path has reported), and
// /fleet lists each broker with its observed push cadence, flagging any
// that miss 2x their interval as stale — a SIGKILLed broker shows up
// there within two push intervals, no scrape target churn involved.
// `-push-format remote-write` instead speaks Prometheus remote-write
// 1.0 straight to a real TSDB (spans stay local: a TSDB would reject
// them); `-trace-pending 4096` (WithTracePendingCap) bounds the
// sampler's in-flight window, and the "trace.pending" /config knob
// resizes it live. Registry gauges for the Go runtime (goroutines, GC
// pause, heap) ride along on every broker and on the collector itself.
//
// Run with: go run ./examples/quickstart [-live]
package main

import (
	"context"
	"flag"
	"fmt"
	"time"

	"rebeca"
)

func main() {
	live := flag.Bool("live", false, "run over real TCP on loopback instead of the virtual clock")
	flag.Parse()

	// A movement graph with one edge: home <-> office. The broker overlay
	// is its spanning tree.
	g := rebeca.NewGraph()
	g.AddEdge("home", "office")

	metrics := rebeca.NewMetrics()
	opts := []rebeca.Option{
		rebeca.WithMovement(g),
		rebeca.WithMiddleware(metrics),
		// Overlay link supervision: probe established broker links every
		// 200ms, declare them failed after 600ms of silence. (Under the
		// virtual clock this also deploys the overlay managers; Live
		// always runs them.)
		rebeca.WithHeartbeat(200*time.Millisecond, 600*time.Millisecond),
		rebeca.WithLinkObserver(func(ev rebeca.LinkEvent) {
			fmt.Printf("overlay: link to %s %s -> %s (%s)\n", ev.Peer, ev.From, ev.To, ev.Reason)
		}),
	}
	var (
		d   rebeca.Deployment
		err error
	)
	if *live {
		d, err = rebeca.NewLive(opts...)
	} else {
		d, err = rebeca.New(opts...)
	}
	if err != nil {
		panic(err)
	}
	defer d.Close()

	// A subscriber at the office listens for failed builds. The handle
	// owns a bounded event stream (default: 256 events, DropOldest).
	alice := d.NewClient("alice")
	if err := alice.Connect("office"); err != nil {
		panic(err)
	}
	failures := alice.Subscribe(rebeca.NewFilter(
		rebeca.Eq("service", rebeca.String("ci")),
		rebeca.Eq("status", rebeca.String("failed")),
	))
	d.Settle() // let the subscription propagate

	// A publisher at home emits CI results as one batch frame; only the
	// failures match.
	ci := d.NewClient("ci-bot")
	if err := ci.Connect("home"); err != nil {
		panic(err)
	}
	var batch []map[string]rebeca.Value
	for i, status := range []string{"passed", "failed", "passed", "failed"} {
		batch = append(batch, map[string]rebeca.Value{
			"service": rebeca.String("ci"),
			"status":  rebeca.String(status),
			"commit":  rebeca.String(fmt.Sprintf("c%04d", i)),
		})
	}
	if _, err := ci.PublishBatch(context.Background(), batch); err != nil {
		panic(err)
	}
	d.Settle()

	// Cancel closes the stream, so the range loop drains the buffered
	// deliveries and terminates.
	failures.Cancel()
	got := 0
	for del := range failures.Events() {
		status, _ := del.Note.Get("status")
		commit, _ := del.Note.Get("commit")
		fmt.Printf("alice: build %s for commit %s\n", status.Str(), commit.Str())
		got++
	}

	totals := metrics.Totals()
	fmt.Printf("alice received %d notifications (2 expected)\n", got)
	fmt.Printf("brokers routed %d publishes, delivered %d (avg latency %s)\n",
		totals.Publishes, totals.Deliveries, totals.AvgDeliveryLatency())
}
