// Stockmonitor: Fig. 1 (left) of the paper — physical mobility. A stock
// ticker publishes continuously while a subscriber roams between the home
// and office brokers. The transparent relocation protocol keeps the stream
// uninterrupted: no losses, no duplicates, per-publisher FIFO, even while
// quotes are in flight during handovers.
//
// Run with: go run ./examples/stockmonitor
package main

import (
	"fmt"
	"time"

	"rebeca"
)

func main() {
	// home - downtown - office: the commuter's world.
	g := rebeca.NewGraph()
	g.AddEdge("home", "downtown")
	g.AddEdge("downtown", "office")

	sys, err := rebeca.New(rebeca.WithMovement(g))
	if err != nil {
		panic(err)
	}

	commuter := sys.NewClient("commuter")
	if err := commuter.Connect("home"); err != nil {
		panic(err)
	}
	// The subscription handle owns a bounded stream; 256 quotes of
	// headroom is plenty for a 200-quote session.
	quotesSub := commuter.Subscribe(rebeca.NewFilter(
		rebeca.Eq("service", rebeca.String("stock")),
		rebeca.Eq("symbol", rebeca.String("TUD")),
	), rebeca.WithStreamBuffer(256))
	sys.Settle()

	// The ticker publishes a quote every millisecond of virtual time.
	ticker := sys.NewClient("ticker")
	if err := ticker.Connect("downtown"); err != nil {
		panic(err)
	}
	quotes := 200
	for i := 1; i <= quotes; i++ {
		i := i
		sys.After(time.Duration(i)*time.Millisecond, func() {
			_, _ = ticker.Publish(map[string]rebeca.Value{
				"service": rebeca.String("stock"),
				"symbol":  rebeca.String("TUD"),
				"price":   rebeca.Float(100 + float64(i)*0.25),
			})
		})
	}

	// The morning commute: home -> downtown -> office, with short radio
	// gaps while moving. Publishing never pauses.
	sys.After(40*time.Millisecond, func() { _ = commuter.Disconnect() })
	sys.After(55*time.Millisecond, func() { _ = commuter.Connect("downtown") })
	sys.After(110*time.Millisecond, func() { _ = commuter.Disconnect() })
	sys.After(125*time.Millisecond, func() { _ = commuter.Connect("office") })
	sys.Settle()

	// Cancel closes the stream; the range loop drains every buffered
	// quote and terminates.
	quotesSub.Cancel()
	seen := make(map[uint64]bool)
	for d := range quotesSub.Events() {
		seen[d.Note.ID.Seq] = true
	}
	fmt.Printf("quotes published: %d\n", quotes)
	fmt.Printf("quotes received:  %d\n", len(seen))
	fmt.Printf("duplicates:       %d\n", commuter.Duplicates())
	fmt.Printf("fifo violations:  %d\n", commuter.FIFOViolations())

	// Verify the stream is gap-free.
	missing := 0
	for s := uint64(1); s <= uint64(quotes); s++ {
		if !seen[s] {
			missing++
		}
	}
	fmt.Printf("missing quotes:   %d\n", missing)
	if missing == 0 && commuter.Duplicates() == 0 {
		fmt.Println("handover was transparent: uninterrupted stream across two moves")
	}
}
