// Touristguide: the paper's §1 motivating workload — "the menus of
// restaurants along the route of a car". A car drives along a highway of
// broker cells; restaurants publish their daily menus sporadically. With
// pre-subscriptions, the menu published in the next cell minutes before the
// car arrives is waiting on arrival ("a subscription in the past"); the
// reactive baseline misses it.
//
// Run with: go run ./examples/touristguide
package main

import (
	"fmt"
	"time"

	"rebeca"
)

type runResult struct {
	menusSeen   int
	firstMenuAt []time.Duration
}

func drive(preSubscribe bool) runResult {
	highway := rebeca.Line(6) // B0 .. B5, one broker per highway cell
	opts := []rebeca.Option{rebeca.WithMovement(highway)}
	if !preSubscribe {
		opts = append(opts, rebeca.WithReactiveBaseline())
	}
	sys, err := rebeca.New(opts...)
	if err != nil {
		panic(err)
	}

	// Each cell has one restaurant that publishes its menu of the hour —
	// sporadically (every 25ms), so a menu is usually published while the
	// car is still one cell away.
	for i, b := range highway.Nodes() {
		r := sys.NewClient(rebeca.NodeID(fmt.Sprintf("restaurant%d", i)))
		if err := r.Connect(b); err != nil {
			panic(err)
		}
		b, i := b, i
		edition := 0
		var publish func()
		publish = func() {
			edition++
			n := rebeca.Notification{Attrs: map[string]rebeca.Value{
				"service": rebeca.String("menu"),
				"today":   rebeca.String(fmt.Sprintf("cell %d special, edition %d", i, edition)),
			}}
			n = rebeca.StampLocation(n, rebeca.Location("region-"+b))
			_, _ = r.Publish(n.Attrs)
			if edition < 20 {
				sys.After(25*time.Millisecond, publish)
			}
		}
		sys.After(time.Duration(5+i*3)*time.Millisecond, publish)
	}

	car := sys.NewClient("car")
	res := runResult{}
	var arrivedAt time.Time
	var gotFirstAtCell bool
	car.OnNotify(func(n rebeca.Notification) {
		if v, ok := n.Get("service"); !ok || v.Str() != "menu" {
			return
		}
		res.menusSeen++
		if !gotFirstAtCell {
			gotFirstAtCell = true
			res.firstMenuAt = append(res.firstMenuAt, sys.Now().Sub(arrivedAt))
		}
	})
	_ = car.Connect("B0")
	arrivedAt = sys.Now()
	car.SubscribeAt(rebeca.Eq("service", rebeca.String("menu")))

	// Drive: 60ms per cell, 5ms between cells.
	at := 60 * time.Millisecond
	for _, next := range []rebeca.NodeID{"B1", "B2", "B3", "B4", "B5"} {
		next := next
		sys.After(at, func() { _ = car.Disconnect() })
		at += 5 * time.Millisecond
		sys.After(at, func() {
			_ = car.Connect(next)
			arrivedAt = sys.Now()
			gotFirstAtCell = false
		})
		at += 60 * time.Millisecond
	}
	sys.Settle()
	return res
}

func main() {
	pre := drive(true)
	rea := drive(false)

	fmt.Println("driving past 6 highway cells; each cell's restaurant publishes")
	fmt.Println("its menu of the hour sporadically (every 25ms)")
	fmt.Println()
	fmt.Printf("%-22s %-12s %s\n", "deployment", "menus seen", "avg time-to-first-menu per cell")
	report := func(name string, r runResult) {
		var avg time.Duration
		for _, d := range r.firstMenuAt {
			avg += d
		}
		if len(r.firstMenuAt) > 0 {
			avg /= time.Duration(len(r.firstMenuAt))
		} else {
			avg = -1
		}
		avgs := avg.String()
		if avg < 0 {
			avgs = "never"
		}
		fmt.Printf("%-22s %-12d %s\n", name, r.menusSeen, avgs)
	}
	report("pre-subscriptions", pre)
	report("reactive (baseline)", rea)
	fmt.Println()
	fmt.Println("pre-subscriptions replay the menus published while the car was")
	fmt.Println("still one cell away — delivered the moment it connects; the")
	fmt.Println("reactive car waits for the next edition at every cell.")
}
