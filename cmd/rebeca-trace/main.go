// rebeca-trace replays one stress seed with full protocol tracing — a
// development aid for the relocation protocol, mirroring
// internal/sim/stress_test.go's chaos generator. Select with SEED and WHO
// environment variables.
//
// Run with: SEED=8 WHO=mob1 go run ./cmd/rebeca-trace
package main

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"time"

	"rebeca/internal/filter"
	"rebeca/internal/message"
	"rebeca/internal/movement"
	"rebeca/internal/proto"
	"rebeca/internal/sim"
)

func main() {
	seed := int64(8)
	if s := os.Getenv("SEED"); s != "" {
		v, _ := strconv.Atoi(s)
		seed = int64(v)
	}
	who := os.Getenv("WHO")
	if who == "" {
		who = "mob1"
	}
	var jitter time.Duration
	if j := os.Getenv("JITTER"); j != "" {
		jitter, _ = time.ParseDuration(j)
	}
	rng := rand.New(rand.NewSource(seed))
	g := movement.Grid(3, 3)
	cl, _ := sim.NewCluster(sim.ClusterConfig{
		Movement:      g,
		Mobility:      sim.MobilityTransparent,
		Replication:   sim.ReplicationPreSubscribe,
		LinkLatency:   time.Millisecond,
		LatencyJitter: jitter,
		JitterSeed:    seed * 31,
	})
	net := cl.Net
	start := net.Now()
	net.Trace = func(at time.Time, from, to message.NodeID, m proto.Message) {
		switch m.Kind {
		case proto.KConnect, proto.KDisconnect, proto.KRelocReq, proto.KRelocProfile,
			proto.KRelocActivate, proto.KRelocTail:
			if m.Dest != "" && to != m.Dest {
				return // transit hop
			}
			concerned := m.Client == message.NodeID(who) || from == message.NodeID(who)
			if concerned {
				fmt.Printf("%6.1fms  %-14s %s->%s epoch=%d stale=%v\n",
					float64(at.Sub(start).Microseconds())/1000, m.Kind, from, to, m.Epoch, m.Stale)
			}
		}
	}

	brokers := g.Nodes()
	type mob struct {
		id  message.NodeID
		cur message.NodeID
	}
	mobiles := make([]*mob, 2)
	for mi := range mobiles {
		id := message.NodeID(fmt.Sprintf("mob%d", mi))
		startB := brokers[rng.Intn(len(brokers))]
		mobiles[mi] = &mob{id: id, cur: startB}
		m := cl.AddClient(id)
		m.ConnectTo(startB)
		m.Subscribe(filter.New(filter.Eq("stream", message.String("s"))))
	}
	net.Run()

	published := 0
	for p := 0; p < 3; p++ {
		pub := cl.AddClient(message.NodeID(fmt.Sprintf("pub%d", p)))
		pub.ConnectTo(brokers[rng.Intn(len(brokers))])
		interval := time.Duration(1+rng.Intn(3)) * time.Millisecond
		count := 150 + rng.Intn(100)
		for i := 1; i <= count; i++ {
			i := i
			net.After(time.Duration(i)*interval, func() {
				pub.Publish(map[string]message.Value{
					"stream": message.String("s"), "n": message.Int(int64(i)),
				})
			})
		}
		published += count
	}
	for mi := range mobiles {
		m := cl.Clients[mobiles[mi].id]
		at := time.Duration(10+rng.Intn(10)) * time.Millisecond
		cur := mobiles[mi].cur
		for hop := 0; hop < 25; hop++ {
			ns := g.Neighbors(cur)
			next := ns[rng.Intn(len(ns))]
			if rng.Intn(5) == 0 {
				next = cur
			}
			gap := time.Duration(rng.Intn(6)) * time.Millisecond
			leave, arrive := at, at+gap
			net.At(net.Now().Add(leave), func() { m.Disconnect() })
			net.At(net.Now().Add(arrive), func() { m.ConnectTo(next) })
			cur = next
			at = arrive + time.Duration(5+rng.Intn(25))*time.Millisecond
		}
	}
	net.Run()

	m := cl.Clients[message.NodeID(who)]
	got := map[message.NotificationID]bool{}
	for _, n := range m.ReceivedNotes() {
		got[n.ID] = true
	}
	fmt.Printf("%s: got %d / %d, border=%s dups=%d fifo=%d\n",
		who, len(got), published, m.Border(), m.Duplicates(), m.FIFOViolations())
	for id, mgr := range cl.Managers {
		if st := mgr.SessionState(message.NodeID(who)); st != "" {
			fmt.Printf("  session at %s: %s\n", id, st)
		}
	}
}
