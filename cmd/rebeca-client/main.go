// rebeca-client is an interactive client for live rebeca-broker nodes: it
// connects to a border broker over TCP, lets you subscribe and publish from
// stdin, and prints deliveries as they arrive. Roaming between brokers is a
// `connect` away — the middleware relocates the session transparently.
//
// Usage:
//
//	rebeca-client -id alice -broker localhost:7471
//
// Commands:
//
//	sub <attr> <value>          subscribe to attr == value (string match)
//	subloc <attr> <value>       same, location-dependent (myloc marker)
//	pub <attr>=<val> ...        publish a notification (k=v pairs)
//	pubn <count> <attr>=<val> ...  publish count copies as ONE batch frame
//	                            (an `i` attribute carries the index)
//	connect <host:port>         roam to another border broker
//	disconnect                  drop the link
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rebeca/internal/filter"
	"rebeca/internal/message"
	"rebeca/internal/proto"
	"rebeca/internal/wire"
)

type session struct {
	id      message.NodeID
	client  *wire.RemoteClient
	epoch   uint64
	prev    message.NodeID
	profile []proto.Subscription
	nextSub int
	pubSeq  uint64
}

func main() {
	id := flag.String("id", "client", "client node ID")
	addr := flag.String("broker", "localhost:7471", "border broker address")
	flag.Parse()

	s := &session{id: message.NodeID(*id)}
	s.client = wire.NewRemoteClient(s.id, func(n message.Notification, subs []message.SubID) {
		if len(subs) > 0 {
			fmt.Printf("<- %s (sub %s)\n", n, subs[0])
		} else {
			fmt.Printf("<- %s\n", n)
		}
	})
	if err := s.connect(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "connect:", err)
		os.Exit(1)
	}
	fmt.Printf("connected to %s as %s\n", *addr, s.id)

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if err := s.run(fields); err != nil {
			if err == errQuit {
				break
			}
			fmt.Fprintln(os.Stderr, "error:", err)
		}
	}
	_ = s.client.Disconnect()
}

var errQuit = fmt.Errorf("quit")

func (s *session) connect(addr string) error {
	s.epoch++
	if err := s.client.Connect(addr, s.prev, s.profile, s.epoch); err != nil {
		return err
	}
	return nil
}

func (s *session) run(fields []string) error {
	switch fields[0] {
	case "quit", "exit":
		return errQuit
	case "disconnect":
		return s.client.Disconnect()
	case "connect":
		if len(fields) != 2 {
			return fmt.Errorf("usage: connect <host:port>")
		}
		_ = s.client.Disconnect()
		return s.connect(fields[1])
	case "sub", "subloc":
		if len(fields) != 3 {
			return fmt.Errorf("usage: %s <attr> <value>", fields[0])
		}
		cs := []filter.Constraint{filter.Eq(fields[1], parseValue(fields[2]))}
		var f filter.Filter
		if fields[0] == "subloc" {
			f = filter.AtLocation(cs...)
		} else {
			f = filter.New(cs...)
		}
		s.nextSub++
		sub := proto.Subscription{
			ID:     message.SubID(fmt.Sprintf("%s/s%d", s.id, s.nextSub)),
			Filter: f,
		}
		s.profile = append(s.profile, sub)
		fmt.Printf("subscribed %s: %s\n", sub.ID, f)
		return s.client.Send(proto.Message{Kind: proto.KSubscribe, Client: s.id, Sub: &sub})
	case "pub":
		if len(fields) < 2 {
			return fmt.Errorf("usage: pub k=v [k=v ...]")
		}
		attrs := make(map[string]message.Value, len(fields)-1)
		for _, kv := range fields[1:] {
			parts := strings.SplitN(kv, "=", 2)
			if len(parts) != 2 {
				return fmt.Errorf("bad attribute %q (want k=v)", kv)
			}
			attrs[parts[0]] = parseValue(parts[1])
		}
		s.pubSeq++
		n := message.NewNotification(attrs)
		n.ID = message.NotificationID{Publisher: s.id, Seq: s.pubSeq}
		return s.client.Send(proto.Message{Kind: proto.KPublish, Client: s.id, Note: &n})
	case "pubn":
		if len(fields) < 3 {
			return fmt.Errorf("usage: pubn <count> k=v [k=v ...]")
		}
		count, err := strconv.Atoi(fields[1])
		if err != nil || count < 1 {
			return fmt.Errorf("bad count %q", fields[1])
		}
		base := make(map[string]message.Value, len(fields)-1)
		for _, kv := range fields[2:] {
			parts := strings.SplitN(kv, "=", 2)
			if len(parts) != 2 {
				return fmt.Errorf("bad attribute %q (want k=v)", kv)
			}
			base[parts[0]] = parseValue(parts[1])
		}
		notes := make([]message.Notification, count)
		for i := range notes {
			attrs := make(map[string]message.Value, len(base)+1)
			for k, v := range base {
				attrs[k] = v
			}
			attrs["i"] = message.Int(int64(i))
			s.pubSeq++
			n := message.NewNotification(attrs)
			n.ID = message.NotificationID{Publisher: s.id, Seq: s.pubSeq}
			notes[i] = n
		}
		fmt.Printf("publishing %d notifications in one batch frame\n", count)
		return s.client.Send(proto.Message{Kind: proto.KPublishBatch, Client: s.id, Notes: notes})
	default:
		return fmt.Errorf("unknown command %q (sub, subloc, pub, pubn, connect, disconnect, quit)", fields[0])
	}
}

// parseValue guesses the value type: int, float, bool, else string.
func parseValue(s string) message.Value {
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return message.Int(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return message.Float(f)
	}
	if b, err := strconv.ParseBool(s); err == nil {
		return message.Bool(b)
	}
	return message.String(s)
}
