// rebeca-pushsink is a tiny metric-push receiver for testing and CI: it
// accepts the POST bodies a `rebeca-broker -push` (or rebeca.WithOpsPush
// deployment) emits, appends them to a file, and reports how many pushes
// arrived. It stands in for a real push gateway when validating that a
// NAT'd broker — one nothing can scrape — still delivers its metrics.
//
//	rebeca-pushsink -listen 127.0.0.1:9091 -out pushes.txt
//	rebeca-broker -id A -listen :7471 -edges A-B -push http://127.0.0.1:9091/ingest
//
// Endpoints:
//
//	POST /...    accept a push body (any path), append it to -out
//	GET  /count  number of pushes accepted so far, as text
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "TCP listen address")
	out := flag.String("out", "", "append received push bodies to this file (empty = discard)")
	quiet := flag.Bool("quiet", false, "suppress the per-push log line")
	flag.Parse()

	var (
		mu    sync.Mutex
		sink  io.Writer = io.Discard
		count atomic.Int64
	)
	if *out != "" {
		f, err := os.OpenFile(*out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rebeca-pushsink:", err)
			os.Exit(1)
		}
		defer f.Close()
		sink = f
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/count", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "%d\n", count.Load())
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "push bodies arrive by POST", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		n := count.Add(1)
		mu.Lock()
		fmt.Fprintf(sink, "--- push %d %s %s\n", n, r.URL.Path, r.Header.Get("Content-Type"))
		sink.Write(body)
		if len(body) == 0 || body[len(body)-1] != '\n' {
			fmt.Fprintln(sink)
		}
		mu.Unlock()
		if !*quiet {
			fmt.Printf("push %d: %d bytes (%s)\n", n, len(body), r.Header.Get("Content-Type"))
		}
		w.WriteHeader(http.StatusNoContent)
	})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rebeca-pushsink:", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	fmt.Printf("rebeca-pushsink listening on http://%s (POST pushes; GET /count)\n", ln.Addr())
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "rebeca-pushsink:", err)
			os.Exit(1)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	_ = srv.Close()
}
