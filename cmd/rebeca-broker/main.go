// rebeca-broker runs one live broker over TCP — the deployment mode of §2:
// one process per broker, point-to-point links to overlay neighbors,
// physical-mobility manager and replicator attached at the border.
//
// The full overlay is described with -edges so every node can derive its
// peers and unicast next-hop table; -dial lists the neighbors this node
// actively connects to (exactly one side of each edge should dial).
//
// Example 3-broker line on one machine:
//
//	rebeca-broker -id A -listen :7471 -edges A-B,B-C
//	rebeca-broker -id B -listen :7472 -edges A-B,B-C -dial A=localhost:7471
//	rebeca-broker -id C -listen :7473 -edges A-B,B-C -dial B=localhost:7472
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rebeca"
	"rebeca/internal/broker"
	"rebeca/internal/core"
	"rebeca/internal/location"
	"rebeca/internal/message"
	"rebeca/internal/mobility"
	"rebeca/internal/movement"
	"rebeca/internal/routing"
	"rebeca/internal/wire"
)

func main() {
	var (
		id        = flag.String("id", "", "this broker's ID (required)")
		listen    = flag.String("listen", ":7471", "TCP listen address")
		edges     = flag.String("edges", "", "full overlay edge list, e.g. A-B,B-C (required)")
		dial      = flag.String("dial", "", "neighbors to dial, e.g. A=host:port,B=host:port")
		strategy  = flag.String("strategy", "simple", "routing strategy: simple, covering, flooding")
		replicate = flag.Bool("replicate", true, "attach the replicator layer (movement graph = overlay)")
		mobilityM = flag.String("mobility", "transparent", "physical mobility: transparent, jedi, naive, none")
		stats     = flag.Duration("stats", 0, "print middleware metrics at this interval (0 = off)")
		trace     = flag.Bool("trace", false, "log every publish, delivery and subscription")
		rate      = flag.Float64("publish-rate", 0, "token-bucket limit on client publish ingress per second (0 = unlimited)")
		burst     = flag.Int("publish-burst", 10, "token-bucket burst for -publish-rate")
	)
	flag.Parse()
	if *id == "" || *edges == "" {
		flag.Usage()
		os.Exit(2)
	}

	topo, err := parseEdges(*edges)
	if err != nil {
		fatal(err)
	}
	if err := topo.Validate(); err != nil {
		fatal(err)
	}
	self := message.NodeID(*id)
	hops, ok := topo.NextHops()[self]
	if !ok {
		fatal(fmt.Errorf("broker %s does not appear in -edges", self))
	}

	dials, err := parseDials(*dial)
	if err != nil {
		fatal(err)
	}
	peers := make(map[message.NodeID]string)
	for _, n := range topo.Adjacency()[self] {
		peers[n] = dials[n] // empty = passive side
	}

	var strat routing.Strategy
	switch *strategy {
	case "simple":
		strat = routing.StrategySimple
	case "covering":
		strat = routing.StrategyCovering
	case "flooding":
		strat = routing.StrategyFlooding
	default:
		fatal(fmt.Errorf("unknown -strategy %q", *strategy))
	}

	// Middleware (the same exported chain the simulator installs): metrics,
	// tracing and rate limiting are appended at Start, after the
	// session-layer plugins attached below.
	var (
		mws     []rebeca.Middleware
		metrics *rebeca.Metrics
	)
	if *stats > 0 {
		metrics = rebeca.NewMetrics()
		mws = append(mws, metrics)
	}
	if *trace {
		mws = append(mws, rebeca.NewTracer(func(e rebeca.TraceEvent) {
			fmt.Printf("%s %-9s broker=%s node=%s note=%v sub=%s\n",
				e.At.Format("15:04:05.000"), e.Hook, e.Broker, e.Node, e.Note, e.Sub)
		}))
	}
	var limiter *rebeca.RateLimiter
	if *rate > 0 {
		limiter = rebeca.NewRateLimiter(*rate, *burst)
		mws = append(mws, limiter)
	}

	node := wire.NewNode(wire.NodeConfig{
		ID:         self,
		Listen:     *listen,
		Peers:      peers,
		Strategy:   strat,
		NextHop:    hops,
		Middleware: mws,
	})

	// Plugin order matters: replicator first, then the mobility manager.
	if *replicate {
		g := movement.NewGraph()
		for _, e := range topo.Edges {
			g.AddEdge(e[0], e[1])
		}
		core.New(core.Config{
			Broker:       node.Broker(),
			NLB:          g.NLB(),
			Locations:    location.Regions(topo.Nodes()),
			PreSubscribe: true,
		})
	}
	switch *mobilityM {
	case "transparent":
		mobility.New(node.Broker(), mobility.ModeTransparent)
	case "jedi":
		mobility.New(node.Broker(), mobility.ModeJEDI)
	case "naive":
		mobility.New(node.Broker(), mobility.ModeNaive)
	case "none":
	default:
		fatal(fmt.Errorf("unknown -mobility %q", *mobilityM))
	}

	if err := node.Start(); err != nil {
		fatal(err)
	}
	fmt.Printf("rebeca-broker %s listening on %s (%d neighbors, strategy %s, %d middleware)\n",
		self, node.Addr(), len(peers), strat, len(mws))

	if metrics != nil {
		go func() {
			for range time.Tick(*stats) {
				m := metrics.Totals()
				line := fmt.Sprintf("stats: publishes=%d deliveries=%d subscribes=%d avg-latency=%s",
					m.Publishes, m.Deliveries, m.Subscribes, m.AvgDeliveryLatency())
				if limiter != nil {
					line += fmt.Sprintf(" rate-limited=%d", limiter.Dropped())
				}
				fmt.Println(line)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	_ = node.Close()
}

func parseEdges(s string) (broker.Topology, error) {
	var topo broker.Topology
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ab := strings.SplitN(part, "-", 2)
		if len(ab) != 2 || ab[0] == "" || ab[1] == "" {
			return topo, fmt.Errorf("bad edge %q (want A-B)", part)
		}
		topo.Edges = append(topo.Edges,
			[2]message.NodeID{message.NodeID(ab[0]), message.NodeID(ab[1])})
	}
	return topo, nil
}

func parseDials(s string) (map[message.NodeID]string, error) {
	out := make(map[message.NodeID]string)
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[0] == "" || kv[1] == "" {
			return nil, fmt.Errorf("bad -dial entry %q (want NAME=host:port)", part)
		}
		out[message.NodeID(kv[0])] = kv[1]
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rebeca-broker:", err)
	os.Exit(1)
}
