// rebeca-broker runs one live broker over TCP — the deployment mode of §2:
// one process per broker, point-to-point links to overlay neighbors,
// physical-mobility manager and replicator attached at the border.
//
// Two ways to describe the overlay:
//
//   - Static (-edges/-dial): the full edge list is passed to every node,
//     which derives its peers and unicast next-hop table; -dial lists the
//     neighbors this node actively connects to (exactly one side of each
//     edge should dial). The graph must be a tree.
//
//   - Discovery (-registry/-name): the node registers itself with a
//     membership registry (file:, dns: or seed: — see internal/discovery)
//     and links to whichever brokers the registry names, no -edges or
//     -dial flags. Dial direction is derived (the smaller ID dials),
//     departed brokers are unlinked, and mesh routing is enabled: the
//     overlay may be an arbitrary connected graph — brokers elect a
//     spanning tree (re-elected on membership or link changes), and
//     redundant edges serve as failover paths.
//
// Start order does not matter either way: a dial to a neighbor that is
// not up yet retries with jittered backoff, and every link
// (re-)establishment runs a sync handshake that replays routing installs
// before the link carries traffic — so brokers can boot, restart and
// rejoin in any order. Established links exchange heartbeats
// (-heartbeat/-heartbeat-timeout); failed links go degraded, queue
// outbound traffic, and self-heal.
//
// Links speak the length-prefixed binary wire protocol (internal/codec).
// The gob fallback of pre-binary releases has been removed; a legacy
// peer's connection is refused with a clear error.
//
// Example 3-broker line on one machine, statically:
//
//	rebeca-broker -id A -listen :7471 -edges A-B,B-C
//	rebeca-broker -id B -listen :7472 -edges A-B,B-C -dial A=localhost:7471
//	rebeca-broker -id C -listen :7473 -edges A-B,B-C -dial B=localhost:7472
//
// The same fleet from a registry file (which may also describe cyclic
// meshes), no per-node wiring flags:
//
//	rebeca-broker -name A -listen :7471 -registry file:peers.json
//	rebeca-broker -name B -listen :7472 -registry file:peers.json
//	rebeca-broker -name C -listen :7473 -registry file:peers.json
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rebeca"
	"rebeca/internal/broker"
	"rebeca/internal/core"
	"rebeca/internal/discovery"
	"rebeca/internal/location"
	"rebeca/internal/message"
	"rebeca/internal/mobility"
	"rebeca/internal/movement"
	"rebeca/internal/overlay"
	"rebeca/internal/routing"
	"rebeca/internal/store"
	"rebeca/internal/telemetry"
	"rebeca/internal/wire"
)

func main() {
	var (
		id        = flag.String("id", "", "this broker's ID (required; -name is an alias)")
		name      = flag.String("name", "", "alias for -id (the discovery-mode spelling)")
		listen    = flag.String("listen", ":7471", "TCP listen address")
		edges     = flag.String("edges", "", "full overlay edge list, e.g. A-B,B-C (static mode)")
		dial      = flag.String("dial", "", "neighbors to dial, e.g. A=host:port,B=host:port (static mode)")
		registry  = flag.String("registry", "", "membership registry URI (file:<path>, dns:<srv-name>, seed:<listen>[,<seed>...]); replaces -edges/-dial and enables mesh routing")
		advertise = flag.String("advertise", "", "overlay address to register for peers to dial (default: the bound listen address with unspecified hosts rewritten to 127.0.0.1)")
		strategy  = flag.String("strategy", "simple", "routing strategy: simple, covering, flooding")
		linearM   = flag.Bool("linear-match", false, "revert routing tables to linear scans (matching-index ablation)")
		replicate = flag.Bool("replicate", true, "attach the replicator layer (movement graph = overlay)")
		mobilityM = flag.String("mobility", "transparent", "physical mobility: transparent, jedi, naive, none")
		stats     = flag.Duration("stats", 0, "print telemetry-registry metrics at this interval (0 = off)")
		opsAddr   = flag.String("ops", "", "HTTP operations endpoint address, e.g. :9090 (/metrics, /healthz, /readyz, /trace, /config, /debug/pprof)")
		trace     = flag.Bool("trace", false, "log every publish, delivery and subscription")
		rate      = flag.Float64("publish-rate", 0, "token-bucket limit on client publish ingress per second (0 = unlimited)")
		burst     = flag.Int("publish-burst", 10, "token-bucket burst for -publish-rate")
		storeDir  = flag.String("store", "", "WAL directory for durable subscriptions (empty = in-memory only)")
		drain     = flag.Duration("drain", 3*time.Second, "max time to drain in-flight deliveries on shutdown")
		hbEvery   = flag.Duration("heartbeat", time.Second, "overlay link heartbeat interval")
		hbTimeout = flag.Duration("heartbeat-timeout", 0, "declare an overlay link failed after this much silence (0 = 3x interval)")
		linkSpill = flag.String("link-spill", "", "WAL directory for store-backed link spill: pending-queue overflow on a partitioned overlay link spills here and replays on re-establishment instead of being dropped (use the -store directory to share its WAL)")
		spillMax  = flag.Int64("link-spill-max", 0, "per-link spill byte budget for -link-spill (0 = default 256 MiB); past it the spill drops its own oldest records")
		linkPend  = flag.Int("link-pending", 0, "in-memory pending-queue cap per overlay link (0 = default 4096)")
		regTTL    = flag.Duration("registry-ttl", 0, "file-registry lease: stamp our entry with this TTL and refresh it, so a killed broker's registration ages out (file: registries only; 0 = entries never expire)")
		linkLog   = flag.Bool("link-log", true, "log overlay link state transitions")
		push      = flag.String("push", "", "push metrics to this URL instead of (or besides) being scraped, e.g. http://gateway:9091/ingest")
		pushEvery = flag.Duration("push-interval", 15*time.Second, "metric push interval for -push")
		pushForm  = flag.String("push-format", "prom", "push body format: prom (Prometheus text), json (compact deltas) or remote-write (Prometheus remote-write 1.0 protobuf; disables span export)")
		logLevel  = flag.String("log-level", "info", "structured log verbosity for every subsystem: debug|info|warn|error (retune per subsystem via /config log.<subsystem>)")
		sampleN   = flag.Int64("trace-sample", 0, "hop-trace sampling as 1-in-N notifications (0 or 1 = trace everything)")
		slowThr   = flag.Duration("trace-slow", 0, "always trace deliveries slower than this, even unsampled (0 = off)")
		pendCap   = flag.Int("trace-pending", 0, "pending-decision ring capacity: hop paths parked awaiting a retro-capture verdict (0 = default 1024)")
	)
	flag.Parse()
	if *id == "" {
		*id = *name
	}
	discovered := *registry != ""
	if *id == "" || (*edges == "" && !discovered) {
		flag.Usage()
		os.Exit(2)
	}
	if discovered && (*edges != "" || *dial != "") {
		fatal(fmt.Errorf("-registry replaces -edges/-dial; drop the static wiring flags"))
	}
	self := message.NodeID(*id)

	// Structured logging: one slog root on stderr, every subsystem gated
	// at -log-level, retunable at runtime via the /config log.* knobs.
	logger := telemetry.NewLogger(os.Stderr, telemetry.ParseLevelDefault(*logLevel))
	if !*linkLog {
		// -link-log=false demotes routine overlay chatter; link loss still
		// warns.
		_ = logger.SetLevel("overlay", slog.LevelWarn)
	}

	// Static mode derives peers and next hops from the edge list up
	// front; discovery mode starts empty and lets the membership
	// supervisor drive links (and the mesh election drive next hops).
	var (
		topo  broker.Topology
		hops  map[message.NodeID]message.NodeID
		peers map[message.NodeID]string
		err   error
	)
	if !discovered {
		topo, err = parseEdges(*edges)
		if err != nil {
			fatal(err)
		}
		if err := topo.Validate(); err != nil {
			fatal(err)
		}
		var ok bool
		hops, ok = topo.NextHops()[self]
		if !ok {
			fatal(fmt.Errorf("broker %s does not appear in -edges", self))
		}
		dials, err := parseDials(*dial)
		if err != nil {
			fatal(err)
		}
		peers = make(map[message.NodeID]string)
		for _, n := range topo.Adjacency()[self] {
			peers[n] = dials[n] // empty = passive side
		}
	}

	var strat routing.Strategy
	switch *strategy {
	case "simple":
		strat = routing.StrategySimple
	case "covering":
		strat = routing.StrategyCovering
	case "flooding":
		strat = routing.StrategyFlooding
	default:
		fatal(fmt.Errorf("unknown -strategy %q", *strategy))
	}

	// Middleware (the same exported chain the simulator installs):
	// telemetry, tracing and rate limiting are appended at Start, after
	// the session-layer plugins attached below. -stats, -ops and -push are
	// all fed by one telemetry registry; -ops and -push additionally turn
	// on hop-trace stamping so /trace can reconstruct multi-hop paths,
	// with -trace-sample/-trace-slow bounding the stamping cost.
	var (
		mws     []rebeca.Middleware
		reg     *telemetry.Registry
		spans   *telemetry.SpanStore
		tmw     *telemetry.Middleware
		sampler *telemetry.Sampler
	)
	if *stats > 0 || *opsAddr != "" || *push != "" {
		reg = telemetry.NewRegistry()
		spans = telemetry.NewSpanStore(0)
		tmw = telemetry.NewMiddleware(reg, spans)
		tmw.EnableHopTrace(*opsAddr != "" || *push != "")
		telemetry.RegisterSpanMetrics(reg, spans)
		telemetry.RegisterGoRuntime(reg)
		if *sampleN > 0 || *slowThr > 0 || *pendCap > 0 {
			sampler = telemetry.NewSampler(spans, *sampleN, *slowThr)
			if *pendCap > 0 {
				sampler.SetPendingCap(*pendCap)
			}
			tmw.SetSampler(sampler)
			telemetry.RegisterSamplerMetrics(reg, sampler)
		}
		mws = append(mws, tmw)
	}
	var tracer *rebeca.Tracer
	if *trace {
		tracer = rebeca.NewTracer(func(e rebeca.TraceEvent) {
			fmt.Printf("%s %-9s broker=%s node=%s note=%v sub=%s\n",
				e.At.Format("15:04:05.000"), e.Hook, e.Broker, e.Node, e.Note, e.Sub)
		})
		mws = append(mws, tracer)
	}
	var limiter *rebeca.RateLimiter
	if *rate > 0 {
		limiter = rebeca.NewRateLimiter(*rate, *burst)
		mws = append(mws, limiter)
	}
	if reg != nil {
		if limiter != nil {
			// Rate-limited publishes always matter: retro-capture their
			// parked trace with the reason.
			limiter.SetDropHook(func(_ rebeca.NodeID, nid rebeca.NotificationID) {
				if tmw == nil || !tmw.HopTraceEnabled() {
					return
				}
				if sampler != nil {
					sampler.MarkDropped(nid, "rate-limited")
				} else {
					spans.RecordReason(nid, nil, 0, "rate-limited")
				}
			})
			reg.CounterFunc(telemetry.MetricRateLimited,
				"Client publishes rejected by the rate-limiter middleware.",
				func(emit func(telemetry.Labels, float64)) {
					for b, n := range limiter.DroppedPerBroker() {
						emit(telemetry.Labels{"broker": string(b)}, float64(n))
					}
				})
		}
		if tracer != nil {
			reg.CounterFunc(telemetry.MetricTracerDropped,
				"Trace events evicted by the Tracer's newest-retaining ring bound.",
				func(emit func(telemetry.Labels, float64)) {
					emit(nil, float64(tracer.Dropped()))
				})
		}
	}

	if *hbEvery <= 0 {
		fatal(fmt.Errorf("-heartbeat %s: want a positive interval", *hbEvery))
	}
	if *hbTimeout != 0 && *hbTimeout < *hbEvery {
		fatal(fmt.Errorf("-heartbeat-timeout %s: want >= -heartbeat %s (or 0 for 3x interval)", *hbTimeout, *hbEvery))
	}

	// Durable subscriptions: a WAL on -store survives restarts — reopening
	// the same directory recovers ghost sessions and their pending
	// notifications below. Opened before the node so -link-spill can share
	// the same WAL instance (queue namespaces never collide).
	var st store.Store
	var wal *store.WAL
	if *storeDir != "" {
		wal, err = store.OpenWAL(*storeDir)
		if err != nil {
			fatal(err)
		}
		wal.SetLogger(logger.For("store"))
		st = wal
	}
	// Link spill: overlay pending-queue overflow spills to this store and
	// replays on re-establishment, so partitions longer than the in-memory
	// cap's worth of traffic lose nothing (up to the byte budget).
	var spillStore store.Store
	var spillWAL *store.WAL
	if *linkSpill != "" {
		if *linkSpill == *storeDir && wal != nil {
			spillStore = wal
		} else {
			spillWAL, err = store.OpenWAL(*linkSpill)
			if err != nil {
				fatal(err)
			}
			spillWAL.SetLogger(logger.For("store"))
			spillStore = spillWAL
		}
	}

	node := wire.NewNode(wire.NodeConfig{
		ID:             self,
		Listen:         *listen,
		Peers:          peers,
		Strategy:       strat,
		LinearMatching: *linearM,
		NextHop:        hops,
		Middleware:     mws,
		Overlay: overlay.Settings{
			HeartbeatInterval: *hbEvery,
			HeartbeatTimeout:  *hbTimeout,
			PendingCap:        *linkPend,
		},
		Spill:         spillStore,
		SpillBudget:   *spillMax,
		Telemetry:     reg,
		Logger:        logger.For("wire"),
		OverlayLogger: logger.For("overlay"),
		BrokerLogger:  logger.For("broker"),
	})

	// Discovery mode: enable mesh routing (the registry may describe a
	// cyclic graph) and open the membership registry; the supervisor
	// starts after the node serves, so link commands land on a live
	// overlay manager.
	var (
		memReg discovery.Registry
		member *discovery.Membership
	)
	if discovered {
		node.EnableMesh()
		memReg, err = discovery.Open(*registry)
		if err != nil {
			fatal(err)
		}
		if *regTTL > 0 {
			fr, ok := memReg.(*discovery.FileRegistry)
			if !ok {
				fatal(fmt.Errorf("-registry-ttl needs a file: registry (the gossip backend detects failures on its own)"))
			}
			fr.SetTTL(*regTTL)
		}
	}

	if reg != nil && wal != nil {
		reg.GaugeFunc(telemetry.MetricWALSegments,
			"Write-ahead-log segment files on disk.",
			func(emit func(telemetry.Labels, float64)) {
				if s, err := wal.Stats(); err == nil {
					emit(nil, float64(s.Segments))
				}
			})
		reg.GaugeFunc(telemetry.MetricWALBytes,
			"Total write-ahead-log bytes on disk (compaction shrinks it).",
			func(emit func(telemetry.Labels, float64)) {
				if s, err := wal.Stats(); err == nil {
					emit(nil, float64(s.Bytes))
				}
			})
	}

	// Plugin order matters: replicator first, then the mobility manager.
	// The replicator's movement graph mirrors the static overlay; under a
	// discovery registry the graph is dynamic, so the layer stays off.
	if *replicate && discovered {
		fmt.Println("note: replicator layer disabled under -registry (needs a static -edges movement graph)")
	}
	if *replicate && !discovered {
		g := movement.NewGraph()
		for _, e := range topo.Edges {
			g.AddEdge(e[0], e[1])
		}
		core.New(core.Config{
			Broker:       node.Broker(),
			NLB:          g.NLB(),
			Locations:    location.Regions(topo.Nodes()),
			PreSubscribe: true,
			Store:        st,
		})
	}
	var mgr *mobility.Manager
	mobOpts := []mobility.Option{}
	if st != nil {
		mobOpts = append(mobOpts, mobility.WithStore(st))
	}
	switch *mobilityM {
	case "transparent":
		mgr = mobility.New(node.Broker(), mobility.ModeTransparent, mobOpts...)
	case "jedi":
		mgr = mobility.New(node.Broker(), mobility.ModeJEDI, mobOpts...)
	case "naive":
		mgr = mobility.New(node.Broker(), mobility.ModeNaive, mobOpts...)
	case "none":
	default:
		fatal(fmt.Errorf("unknown -mobility %q", *mobilityM))
	}

	if err := node.Start(); err != nil {
		fatal(err)
	}
	if discovered {
		addr := *advertise
		if addr == "" {
			addr = advertiseAddr(node.Addr())
		}
		member = discovery.NewMembership(discovery.MembershipConfig{
			Self:     self,
			Addr:     addr,
			Registry: memReg,
			Host:     wire.NodeHost{Node: node},
			Logger:   logger.For("discovery"),
		})
		if err := member.Start(); err != nil {
			fatal(err)
		}
		logger.For("discovery").Info("registered with registry",
			"self", string(self), "addr", addr, "registry", *registry)
	}
	if reg != nil {
		// The discovery families register unconditionally so every broker's
		// scrape exposes the same golden set; in static (-edges/-dial) mode
		// they render as empty families.
		reg.GaugeFunc(telemetry.MetricDiscoveryPeers,
			"Overlay peers currently linked by the discovery membership supervisor.",
			func(emit func(telemetry.Labels, float64)) {
				if member != nil {
					emit(telemetry.Labels{"broker": string(self)}, float64(member.Peers()))
				}
			})
		reg.CounterFunc(telemetry.MetricDiscoveryEvents,
			"Membership events applied, by type (join, leave, update).",
			func(emit func(telemetry.Labels, float64)) {
				if member != nil {
					for typ, n := range member.Events() {
						emit(telemetry.Labels{"broker": string(self), "type": typ}, float64(n))
					}
				}
			})
		reg.CounterFunc(telemetry.MetricTreeRecomputations,
			"Spanning-tree elections run by the mesh routing layer.",
			func(emit func(telemetry.Labels, float64)) {
				if m := node.Broker().Mesh(); m != nil {
					emit(telemetry.Labels{"broker": string(self)}, float64(m.Recomputations()))
				}
			})
	}
	if st != nil && mgr != nil {
		// Resume the sessions a previous process persisted on this store.
		// Start order no longer matters: re-installed subscriptions reach
		// neighbors whose links are already up immediately, and every
		// link that establishes later replays them in its sync handshake.
		// The node is already serving, so the recovery mutation runs on
		// its event loop like any other.
		recovered := 0
		node.Inspect(func(*broker.Broker) { recovered = mgr.Recover() })
		if recovered > 0 {
			logger.For("store").Info("recovered durable sessions",
				"sessions", recovered, "dir", *storeDir)
		}
	}
	if discovered {
		fmt.Printf("rebeca-broker %s listening on %s (registry-driven mesh, strategy %s, %d middleware)\n",
			self, node.Addr(), strat, len(mws))
	} else {
		fmt.Printf("rebeca-broker %s listening on %s (%d neighbors, strategy %s, %d middleware)\n",
			self, node.Addr(), len(peers), strat, len(mws))
	}

	// The ops endpoint: Prometheus /metrics over the registry, readiness
	// gated on this node's overlay links, hop-trace reconstruction, and
	// the runtime knobs.
	var ops *telemetry.Ops
	if *opsAddr != "" {
		ops = telemetry.NewOps(reg, spans)
		ops.AddReadyCheck("links:"+string(self), node.Ready)
		if member != nil {
			ops.AddReadyCheck("membership", member.Ready)
		}
		ops.AddKnob("heartbeat", telemetry.Knob{
			Help: "overlay heartbeat as interval[,timeout]; timeout 0 defaults to 3x interval",
			Get: func() string {
				interval, timeout := node.Heartbeat()
				return fmt.Sprintf("%s,%s", interval, timeout)
			},
			Set: func(v string) error {
				interval, timeout, err := parseHeartbeatKnob(v)
				if err != nil {
					return err
				}
				node.SetHeartbeat(interval, timeout)
				return nil
			},
		})
		ops.AddKnob("trace", telemetry.Knob{
			Help: "hop-trace stamping and span recording: on/off",
			Get:  func() string { return onOff(tmw.HopTraceEnabled()) },
			Set: func(v string) error {
				on, err := parseOnOff(v)
				if err != nil {
					return err
				}
				tmw.EnableHopTrace(on)
				return nil
			},
		})
		if sampler != nil {
			ops.AddKnob("sample", telemetry.Knob{
				Help: "hop-trace sampling rate as 1-in-N (1 traces everything)",
				Get:  func() string { return strconv.FormatInt(sampler.Rate(), 10) },
				Set: func(v string) error {
					n, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
					if err != nil {
						return fmt.Errorf("bad rate %q: %v", v, err)
					}
					if n < 1 {
						return fmt.Errorf("bad rate %d: want >= 1", n)
					}
					sampler.SetRate(n)
					return nil
				},
			})
			ops.AddKnob("slow", telemetry.Knob{
				Help: "retro-capture threshold: deliveries slower than this are always traced (0 disables)",
				Get:  func() string { return sampler.SlowThreshold().String() },
				Set: func(v string) error {
					d, err := time.ParseDuration(strings.TrimSpace(v))
					if err != nil {
						return fmt.Errorf("bad threshold %q: %v", v, err)
					}
					if d < 0 {
						return fmt.Errorf("bad threshold %s: want >= 0", d)
					}
					sampler.SetSlowThreshold(d)
					return nil
				},
			})
			ops.AddKnob("trace.pending", telemetry.Knob{
				Help: "pending-decision ring capacity: hop paths parked awaiting a retro-capture verdict (shrinking evicts oldest)",
				Get:  func() string { return strconv.Itoa(sampler.PendingCap()) },
				Set: func(v string) error {
					n, err := strconv.Atoi(strings.TrimSpace(v))
					if err != nil {
						return fmt.Errorf("bad capacity %q: %v", v, err)
					}
					if n < 1 {
						return fmt.Errorf("bad capacity %d: want >= 1", n)
					}
					sampler.SetPendingCap(n)
					return nil
				},
			})
		}
		logger.RegisterKnobs(ops)
		if tracer != nil {
			ops.AddKnob("tracer", telemetry.Knob{
				Help: "event-log Tracer recording: on/off",
				Get:  func() string { return onOff(tracer.Enabled()) },
				Set: func(v string) error {
					on, err := parseOnOff(v)
					if err != nil {
						return err
					}
					tracer.SetEnabled(on)
					return nil
				},
			})
		}
		if limiter != nil {
			ops.AddKnob("rate_limit", telemetry.Knob{
				Help: "client publish admission as perSecond[,burst]; perSecond <= 0 disables",
				Get: func() string {
					r, b := limiter.Limit()
					return fmt.Sprintf("%g,%d", r, b)
				},
				Set: func(v string) error {
					return setRateLimit(limiter, v)
				},
			})
		}
		if err := ops.Start(*opsAddr); err != nil {
			fatal(err)
		}
		fmt.Printf("ops endpoint on http://%s (/metrics /healthz /readyz /trace /config /debug/pprof)\n", ops.Addr())
	}

	// -push: report metrics outbound on an interval — the NAT'd-broker
	// mode, where nothing can scrape us. Coexists with -ops (push and
	// scrape share the registry).
	var pusher *telemetry.Pusher
	if *push != "" {
		pcfg := telemetry.PusherConfig{
			URL:      *push,
			Interval: *pushEvery,
			Format:   *pushForm,
			Instance: string(self),
			Logger:   logger.For("wire"),
		}
		// Spans ship outbound with the metric snapshots — except in
		// remote-write format, where the receiver is a real Prometheus
		// backend that would reject span bodies and wedge the spool.
		if *pushForm != telemetry.PushFormatRemoteWrite {
			pcfg.Spans = spans
		}
		pusher, err = telemetry.NewPusher(reg, pcfg)
		if err != nil {
			fatal(err)
		}
		telemetry.RegisterPusherMetrics(reg, pusher)
		pusher.Start()
		fmt.Printf("pushing metrics to %s every %s (%s)\n", *push, *pushEvery, *pushForm)
	}

	// -stats: a periodic one-line digest of the same registry /metrics
	// serves, with per-link detail. NewTicker (not time.Tick) so shutdown
	// releases the ticker instead of leaking it for the process lifetime.
	statsDone := make(chan struct{})
	if *stats > 0 {
		ticker := time.NewTicker(*stats)
		go func() {
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					fmt.Println(statsLine(reg, node))
				case <-statsDone:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	// Graceful shutdown: let in-flight deliveries and buffer appends run
	// to completion, make the store durable, then drop the links. A
	// second signal skips the drain.
	fmt.Println("shutting down: draining in-flight deliveries")
	close(statsDone)
	// Deregister first: the fleet converges on our departure without
	// waiting for heartbeat failure detection.
	if member != nil {
		member.Stop(true)
	}
	if memReg != nil {
		_ = memReg.Close()
	}
	if ops != nil {
		_ = ops.Close()
	}
	if pusher != nil {
		// Final flush rides Close, so the receiver sees the shutdown state.
		pusher.Close()
	}
	drained := make(chan bool, 1)
	go func() { drained <- node.Drain(*drain) }()
	select {
	case ok := <-drained:
		if !ok {
			fmt.Fprintln(os.Stderr, "rebeca-broker: drain timed out; closing anyway")
		}
	case <-sig:
		fmt.Fprintln(os.Stderr, "rebeca-broker: second signal; skipping drain")
	}
	// Stop the node before the store: once the links and event loop are
	// down nothing can append anymore, so the final sync-close captures
	// every delivery the broker ever accepted.
	_ = node.Close()
	if st != nil {
		if err := st.Sync(); err != nil {
			fmt.Fprintln(os.Stderr, "rebeca-broker: store sync:", err)
		}
		if err := st.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "rebeca-broker: store close:", err)
		}
	}
	if spillWAL != nil {
		// Only when -link-spill has its own WAL; a shared -store WAL was
		// closed above. The unflushed backlog stays on disk for the next
		// incarnation to replay.
		if err := spillWAL.Sync(); err != nil {
			fmt.Fprintln(os.Stderr, "rebeca-broker: spill sync:", err)
		}
		if err := spillWAL.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "rebeca-broker: spill close:", err)
		}
	}
}

// statsLine renders the -stats digest from the telemetry registry.
func statsLine(reg *telemetry.Registry, node *wire.Node) string {
	sum, count := reg.HistogramStats(telemetry.MetricE2ESeconds)
	avg := time.Duration(0)
	if count > 0 {
		avg = time.Duration(sum / float64(count) * float64(time.Second))
	}
	line := fmt.Sprintf("stats: publishes=%d deliveries=%d subscribes=%d avg-latency=%s rate-limited=%d link-establishments=%d link-failures=%d",
		int(reg.Total(telemetry.MetricPublishes)),
		int(reg.Total(telemetry.MetricDeliveries)),
		int(reg.Total(telemetry.MetricSubscribes)),
		avg,
		int(reg.Total(telemetry.MetricRateLimited)),
		int(reg.Total(telemetry.MetricLinkUps)),
		int(reg.Total(telemetry.MetricLinkDowns)))
	for _, li := range node.LinkInfo() {
		line += fmt.Sprintf(" link[%s]=%s", li.Peer, li.State)
		if li.Pending > 0 {
			line += fmt.Sprintf("(+%d queued)", li.Pending)
		}
		if li.SpillDepth > 0 {
			line += fmt.Sprintf("(spill=%d/%dB)", li.SpillDepth, li.SpillBytes)
		}
	}
	return line
}

// advertiseAddr turns the node's bound listen address into one peers can
// dial: an unspecified host (":7471", "[::]:7471", "0.0.0.0:7471")
// becomes 127.0.0.1 — right for single-machine fleets; multi-host
// deployments pass -advertise explicitly.
func advertiseAddr(bound string) string {
	host, port, err := net.SplitHostPort(bound)
	if err != nil {
		return bound
	}
	if host == "" || host == "::" || host == "0.0.0.0" {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}

func onOff(on bool) string {
	if on {
		return "on"
	}
	return "off"
}

func parseOnOff(v string) (bool, error) {
	switch strings.ToLower(strings.TrimSpace(v)) {
	case "on", "true", "1":
		return true, nil
	case "off", "false", "0":
		return false, nil
	}
	return false, fmt.Errorf("bad toggle %q (want on/off)", v)
}

// parseHeartbeatKnob parses the heartbeat knob's "interval[,timeout]".
func parseHeartbeatKnob(v string) (interval, timeout time.Duration, err error) {
	parts := strings.SplitN(v, ",", 2)
	interval, err = time.ParseDuration(strings.TrimSpace(parts[0]))
	if err != nil {
		return 0, 0, fmt.Errorf("bad interval %q: %v", parts[0], err)
	}
	if interval <= 0 {
		return 0, 0, fmt.Errorf("bad interval %s: want > 0", interval)
	}
	if len(parts) == 2 {
		timeout, err = time.ParseDuration(strings.TrimSpace(parts[1]))
		if err != nil {
			return 0, 0, fmt.Errorf("bad timeout %q: %v", parts[1], err)
		}
		if timeout != 0 && timeout < interval {
			return 0, 0, fmt.Errorf("bad timeout %s: want >= interval (or 0 for the default)", timeout)
		}
	}
	return interval, timeout, nil
}

// setRateLimit parses the rate_limit knob's "perSecond[,burst]".
func setRateLimit(limiter *rebeca.RateLimiter, v string) error {
	parts := strings.SplitN(v, ",", 2)
	r, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil {
		return fmt.Errorf("bad rate %q: %v", parts[0], err)
	}
	_, burst := limiter.Limit()
	if len(parts) == 2 {
		burst, err = strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return fmt.Errorf("bad burst %q: %v", parts[1], err)
		}
	}
	limiter.SetLimit(r, burst)
	return nil
}

func parseEdges(s string) (broker.Topology, error) {
	var topo broker.Topology
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ab := strings.SplitN(part, "-", 2)
		if len(ab) != 2 || ab[0] == "" || ab[1] == "" {
			return topo, fmt.Errorf("bad edge %q (want A-B)", part)
		}
		topo.Edges = append(topo.Edges,
			[2]message.NodeID{message.NodeID(ab[0]), message.NodeID(ab[1])})
	}
	return topo, nil
}

func parseDials(s string) (map[message.NodeID]string, error) {
	out := make(map[message.NodeID]string)
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[0] == "" || kv[1] == "" {
			return nil, fmt.Errorf("bad -dial entry %q (want NAME=host:port)", part)
		}
		out[message.NodeID(kv[0])] = kv[1]
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rebeca-broker:", err)
	os.Exit(1)
}
