// rebeca-sim runs one mobility scenario on the discrete-event simulator and
// prints its outcome — a workbench for exploring deployments beyond the
// canned experiments.
//
// Usage examples:
//
//	rebeca-sim -graph grid -size 4 -mode replicated -mobiles 5 -duration 5s
//	rebeca-sim -graph line -size 8 -mode reactive -seed 99
//	rebeca-sim -graph line -size 5 -static -mobility naive
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rebeca/internal/movement"
	"rebeca/internal/sim"
)

func main() {
	var (
		graph    = flag.String("graph", "line", "movement graph: line, ring, grid, grid8, star, complete, tree, geometric")
		size     = flag.Int("size", 6, "graph size (side length for grids)")
		mode     = flag.String("mode", "replicated", "logical mobility: replicated, reactive, none")
		mobility = flag.String("mobility", "transparent", "physical mobility: transparent, jedi, naive")
		mobiles  = flag.Int("mobiles", 2, "number of roaming subscribers")
		duration = flag.Duration("duration", 2*time.Second, "virtual experiment duration")
		interval = flag.Duration("publish", 5*time.Millisecond, "per-broker publish interval")
		seed     = flag.Int64("seed", 2003, "deterministic seed")
		shared   = flag.Bool("shared", false, "use shared per-broker buffers")
		ttl      = flag.Duration("ttl", 0, "buffer TTL (0 = unbounded)")
		cap      = flag.Int("cap", 0, "buffer count bound (0 = unbounded)")
		static   = flag.Bool("static", false, "run the static stock stream instead of the location stream")
	)
	flag.Parse()

	g, err := buildGraph(*graph, *size, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var repl sim.ReplicationMode
	switch *mode {
	case "replicated":
		repl = sim.ReplicationPreSubscribe
	case "reactive":
		repl = sim.ReplicationReactive
	case "none":
		repl = sim.ReplicationNone
	default:
		fmt.Fprintf(os.Stderr, "unknown -mode %q\n", *mode)
		os.Exit(2)
	}
	var mob sim.MobilityMode
	switch *mobility {
	case "transparent":
		mob = sim.MobilityTransparent
	case "jedi":
		mob = sim.MobilityJEDI
	case "naive":
		mob = sim.MobilityNaive
	default:
		fmt.Fprintf(os.Stderr, "unknown -mobility %q\n", *mobility)
		os.Exit(2)
	}

	out, err := sim.Scenario{
		Name:            fmt.Sprintf("%s-%d/%s", *graph, *size, *mode),
		Graph:           g,
		Replication:     repl,
		Mobility:        mob,
		Shared:          *shared,
		BufferTTL:       *ttl,
		BufferCap:       *cap,
		PublishInterval: *interval,
		Duration:        *duration,
		NumMobiles:      *mobiles,
		Seed:            *seed,
		StaticOnly:      *static,
		StaticStream:    *static,
	}.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("scenario          %s\n", out.Name)
	fmt.Printf("handovers         %d\n", out.Handovers)
	if *static {
		fmt.Printf("static expected   %d\n", out.StaticExpected)
		fmt.Printf("static delivered  %d\n", out.StaticGot)
		fmt.Printf("static lost       %d\n", out.StaticLoss())
	} else {
		fmt.Printf("pre-arrival       %d/%d (%.1f%%)\n",
			out.PreArrivalGot, out.PreArrivalExpected, 100*out.PreArrivalCoverage())
		fmt.Printf("live              %d/%d (%.1f%%)\n",
			out.LiveGot, out.LiveExpected, 100*out.LiveCoverage())
		fmt.Printf("setup latency     %s (over %d handovers)\n",
			out.FirstDeliveryLatency, out.FirstDeliverySamples)
	}
	fmt.Printf("duplicates        %d\n", out.Duplicates)
	fmt.Printf("fifo violations   %d\n", out.FIFOViolations)
	fmt.Printf("data msgs         %d\n", out.DataMsgs)
	fmt.Printf("control msgs      %d\n", out.ControlMsgs)
	fmt.Printf("direct msgs       %d\n", out.DirectMsgs)
	fmt.Printf("bytes             %d\n", out.TotalBytes)
	fmt.Printf("buffered/replayed %d/%d (unconsumed %d)\n",
		out.Buffered, out.Replayed, out.Unconsumed())
	fmt.Printf("peak virtual cls  %d\n", out.PeakResidentVC)
}

func buildGraph(kind string, size int, seed int64) (*movement.Graph, error) {
	switch kind {
	case "line":
		return movement.Line(size), nil
	case "ring":
		return movement.Ring(size), nil
	case "grid":
		return movement.Grid(size, size), nil
	case "grid8":
		return movement.Grid8(size, size), nil
	case "star":
		return movement.Star(size), nil
	case "complete":
		return movement.Complete(size), nil
	case "tree":
		return movement.RandomTree(size, seed), nil
	case "geometric":
		return movement.RandomGeometric(size, 0.3, seed), nil
	default:
		return nil, fmt.Errorf("unknown -graph %q", kind)
	}
}
