// rebeca-bench regenerates the evaluation tables (experiments E1–E9 of
// DESIGN.md) and prints them in the style of a paper's results section.
//
// Usage:
//
//	rebeca-bench                 # run every experiment
//	rebeca-bench -run E5 -seed 7 # one experiment, custom seed
//
//	go test -bench . -benchtime 1x ./... | rebeca-bench -smoke
//	                             # render bench output as the CI smoke
//	                             # artifact (BENCH_<pr>.json) on stdout
//
//	go test -bench MatchIndexed -benchmem ./internal/routing |
//	    rebeca-bench -check-allocs 'BenchmarkMatchIndexed'
//	                             # exit nonzero if a matching benchmark
//	                             # reports >0 allocs/op (CI perf gate)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rebeca/internal/bench"
)

func main() {
	run := flag.String("run", "all", "experiment to run: all, E1, E2, E3, E3b, E3c, E4, E5, E6, E7, E8, E9, E10")
	seed := flag.Int64("seed", bench.Seed, "deterministic experiment seed")
	smoke := flag.Bool("smoke", false, "read `go test -bench` output on stdin and emit the JSON smoke artifact on stdout")
	benchtime := flag.String("benchtime", "1x", "benchtime label recorded in the -smoke artifact")
	checkAllocs := flag.String("check-allocs", "", "read `go test -bench -benchmem` output on stdin and fail if a benchmark matching this regexp reports >0 allocs/op")
	flag.Parse()

	if *checkAllocs != "" {
		if err := bench.CheckZeroAllocs(os.Stdin, *checkAllocs); err != nil {
			fmt.Fprintln(os.Stderr, "rebeca-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("rebeca-bench: all benchmarks matching %q report 0 allocs/op\n", *checkAllocs)
		return
	}

	if *smoke {
		if err := bench.WriteSmokeReport(os.Stdin, os.Stdout, *benchtime); err != nil {
			fmt.Fprintln(os.Stderr, "rebeca-bench:", err)
			os.Exit(1)
		}
		return
	}

	generators := map[string]func(int64) bench.Table{
		"E1":  bench.E1PhysicalHandover,
		"E2":  bench.E2LogicalAdaptation,
		"E3":  bench.E3Routing,
		"E3b": bench.E3Merging,
		"E3c": bench.E3Advertisements,
		"E4":  bench.E4VirtualClientOverhead,
		"E5":  bench.E5PreSubscription,
		"E6":  bench.E6NlbDegree,
		"E7":  bench.E7BufferPolicies,
		"E8":  bench.E8SharedBuffer,
		"E9":  bench.E9ExceptionMode,
		"E10": bench.E10OverlayReconvergence,
	}
	order := []string{"E1", "E2", "E3", "E3b", "E3c", "E4", "E5", "E6", "E7", "E8", "E9", "E10"}

	switch key := strings.ToUpper(*run); key {
	case "ALL":
		for _, k := range order {
			fmt.Println(generators[k](*seed))
		}
	default:
		switch key {
		case "E3B":
			key = "E3b"
		case "E3C":
			key = "E3c"
		}
		gen, ok := generators[key]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (want one of %s)\n",
				*run, strings.Join(order, ", "))
			os.Exit(2)
		}
		fmt.Println(gen(*seed))
	}
}
