// rebeca-collector is the fleet-side receiver for push-model telemetry:
// point N brokers' -push flags at it and it becomes the one place to
// watch the whole deployment. It ingests metric snapshots (Prometheus
// text, JSON deltas, or remote-write protobuf) and span batches,
// assembles the per-process hop traces into cross-broker end-to-end
// traces, folds counter movement into rebeca_fleet_* totals, and
// re-exports everything as a single Prometheus /metrics endpoint with
// per-broker instance labels preserved.
//
//	rebeca-collector -listen 127.0.0.1:9095
//	rebeca-broker -id A -listen :7471 -edges A-B -push http://127.0.0.1:9095/ingest
//
// Endpoints:
//
//	POST /...    accept a push body (any path)
//	GET  /metrics merged fleet exposition (scrape this one endpoint)
//	GET  /fleet   broker freshness (JSON; silent brokers marked stale)
//	GET  /trace   assembled cross-broker traces (?note=publisher#seq)
//	GET  /count   pushes accepted so far, as text
//	GET  /healthz liveness
//
// It supersedes rebeca-pushsink and keeps its -listen/-out/-quiet flags
// and /count endpoint, so existing harnesses keep working.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rebeca/internal/telemetry/collector"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "TCP listen address")
	out := flag.String("out", "", "append received push bodies to this file (empty = discard)")
	quiet := flag.Bool("quiet", false, "suppress per-push log lines")
	staleAfter := flag.Duration("stale-after", 0,
		"fixed deadline after which a silent broker is stale on /fleet (0 = 2x its observed push cadence)")
	traceCap := flag.Int("trace-cap", collector.DefaultTraceCap, "assembled cross-broker traces retained")
	instance := flag.String("instance", "collector", "instance label on the collector's own metrics")
	flag.Parse()

	cfg := collector.Config{
		Instance:   *instance,
		StaleAfter: *staleAfter,
		TraceCap:   *traceCap,
	}
	if !*quiet {
		cfg.Logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelDebug}))
	}
	if *out != "" {
		f, err := os.OpenFile(*out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rebeca-collector:", err)
			os.Exit(1)
		}
		defer f.Close()
		cfg.Raw = f
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rebeca-collector:", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: collector.New(cfg).Handler(), ReadHeaderTimeout: 5 * time.Second}
	fmt.Printf("rebeca-collector listening on http://%s (POST pushes; GET /metrics /fleet /trace /count)\n", ln.Addr())
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "rebeca-collector:", err)
			os.Exit(1)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	_ = srv.Close()
}
