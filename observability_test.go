package rebeca_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rebeca"
)

// syncWriter is a goroutine-safe log sink for WithLogging in tests.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestTraceSamplingSimLine drives the sampling tentpole on a 3-broker
// virtual-clock line: a prohibitive 1-in-N rate retains nothing, a slow
// threshold retro-captures the full parked hop path anyway, and retuning
// the rate to 1 via /config restores complete traces.
func TestTraceSamplingSimLine(t *testing.T) {
	g := rebeca.NewGraph().AddEdge("A", "B").AddEdge("B", "C")
	sys, err := rebeca.New(
		rebeca.WithMovement(g),
		rebeca.WithOps("127.0.0.1:0"),
		rebeca.WithTraceSampling(1<<30, 0),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	addr := sys.OpsAddr()

	sub := sys.NewClient("carol")
	if err := sub.Connect("C"); err != nil {
		t.Fatal(err)
	}
	s := sub.Subscribe(rebeca.NewFilter())
	defer s.Cancel()
	pub := sys.NewClient("alice")
	if err := pub.Connect("A"); err != nil {
		t.Fatal(err)
	}
	sys.Settle()

	for i := 0; i < 20; i++ {
		if _, err := pub.Publish(map[string]rebeca.Value{"n": rebeca.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	sys.Settle()

	// 1-in-2^30: none of the 20 notes won the roll, so nothing is retained.
	var listing struct {
		Retained int `json:"retained"`
	}
	code, body := opsGet(t, addr, "/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace = %d: %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatal(err)
	}
	if listing.Retained != 0 {
		t.Fatalf("retained = %d under a prohibitive sampling rate, want 0", listing.Retained)
	}

	// The sample knob renders and retunes live.
	code, body = opsGet(t, addr, "/config")
	if code != http.StatusOK || !strings.Contains(body, `"sample"`) || !strings.Contains(body, `"slow"`) {
		t.Fatalf("/config missing sampling knobs: %s", body)
	}
	resp, err := http.PostForm("http://"+addr+"/config", url.Values{"sample": {"1"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("config POST = %d", resp.StatusCode)
	}

	noteID, err := pub.Publish(map[string]rebeca.Value{"kind": rebeca.String("sampled")})
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle()

	// Rate 1 restores the full A→B→C trail.
	var tr struct {
		Hops []struct {
			Broker string `json:"broker"`
		} `json:"hops"`
	}
	code, body = opsGet(t, addr, "/trace?note="+url.QueryEscape(noteID.String()))
	if code != http.StatusOK {
		t.Fatalf("/trace?note = %d: %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Hops) != 3 || tr.Hops[0].Broker != "A" || tr.Hops[2].Broker != "C" {
		t.Fatalf("sampled trace = %+v, want the A,B,C path", tr.Hops)
	}

	// The sampled counter moved.
	_, metrics := opsGet(t, addr, "/metrics")
	if !strings.Contains(metrics, "rebeca_trace_sampled_total") {
		t.Fatalf("metrics missing rebeca_trace_sampled_total:\n%s", grepLines(metrics, "rebeca_trace"))
	}
}

// TestTraceSlowRetroCapture: unsampled notifications whose delivery
// crosses the slow threshold are retro-captured with their complete
// parked hop path and the "slow" reason.
func TestTraceSlowRetroCapture(t *testing.T) {
	g := rebeca.NewGraph().AddEdge("A", "B").AddEdge("B", "C")
	sys, err := rebeca.New(
		rebeca.WithMovement(g),
		rebeca.WithOps("127.0.0.1:0"),
		rebeca.WithLinkLatency(10*time.Millisecond),
		rebeca.WithTraceSampling(1<<30, time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	addr := sys.OpsAddr()

	sub := sys.NewClient("carol")
	if err := sub.Connect("C"); err != nil {
		t.Fatal(err)
	}
	s := sub.Subscribe(rebeca.NewFilter())
	defer s.Cancel()
	pub := sys.NewClient("alice")
	if err := pub.Connect("A"); err != nil {
		t.Fatal(err)
	}
	sys.Settle()

	noteID, err := pub.Publish(map[string]rebeca.Value{"kind": rebeca.String("slowpoke")})
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle()

	// 2×10ms of simulated link latency crosses the 1ms threshold: the
	// unsampled note is promoted with its full trail and tagged slow.
	var tr struct {
		Hops []struct {
			Broker string `json:"broker"`
		} `json:"hops"`
		LatencyMS float64 `json:"latency_ms"`
		Reason    string  `json:"reason"`
	}
	code, body := opsGet(t, addr, "/trace?note="+url.QueryEscape(noteID.String()))
	if code != http.StatusOK {
		t.Fatalf("/trace?note = %d: %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Reason != "slow" {
		t.Fatalf("reason = %q, want slow (%s)", tr.Reason, body)
	}
	if len(tr.Hops) != 3 {
		t.Fatalf("retro-captured path = %+v, want all 3 hops", tr.Hops)
	}
	if tr.LatencyMS < 15 {
		t.Fatalf("latency_ms = %v, want >= 15 (two 10ms hops)", tr.LatencyMS)
	}

	// The retro counter carries the reason.
	_, metrics := opsGet(t, addr, "/metrics")
	if !strings.Contains(metrics, `rebeca_trace_retro_total{reason="slow"} 1`) {
		t.Fatalf("retro counter missing:\n%s", grepLines(metrics, "rebeca_trace_retro"))
	}
}

// TestRateLimitedDropRetroCapture: rejected publishes always earn a
// reason-tagged span, sampled or not.
func TestRateLimitedDropRetroCapture(t *testing.T) {
	g := rebeca.NewGraph().AddEdge("A", "B")
	limiter := rebeca.NewRateLimiter(0.0001, 1)
	sys, err := rebeca.New(
		rebeca.WithMovement(g),
		rebeca.WithOps("127.0.0.1:0"),
		rebeca.WithMiddleware(limiter),
		rebeca.WithTraceSampling(1<<30, 0),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	addr := sys.OpsAddr()

	pub := sys.NewClient("alice")
	if err := pub.Connect("A"); err != nil {
		t.Fatal(err)
	}
	sys.Settle()
	// Burst 1: the second publish is rejected at admission.
	for i := 0; i < 2; i++ {
		if _, err := pub.Publish(map[string]rebeca.Value{"n": rebeca.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	sys.Settle()

	var listing struct {
		Spans []struct {
			Note   string `json:"note"`
			Reason string `json:"reason"`
		} `json:"spans"`
	}
	code, body := opsGet(t, addr, "/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace = %d: %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, sp := range listing.Spans {
		if sp.Reason == "rate-limited" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no rate-limited span in listing: %s", body)
	}
}

// TestLoggingKnobsLive: WithLogging emits subsystem-tagged slog lines and
// the /config log.* knobs retune verbosity at runtime.
func TestLoggingKnobsLive(t *testing.T) {
	var sink syncWriter
	g := rebeca.NewGraph().AddEdge("A", "B")
	sys, err := rebeca.New(
		rebeca.WithMovement(g),
		rebeca.WithOps("127.0.0.1:0"),
		rebeca.WithHeartbeat(50*time.Millisecond, 200*time.Millisecond),
		rebeca.WithLogging(&sink, "info"),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	addr := sys.OpsAddr()
	sys.Settle()

	// Overlay establishment logged at info, tagged with its subsystem.
	out := sink.String()
	if !strings.Contains(out, "link established") || !strings.Contains(out, "subsystem=overlay") {
		t.Fatalf("overlay establishment not logged:\n%s", out)
	}

	// One knob per subsystem on /config.
	code, body := opsGet(t, addr, "/config")
	if code != http.StatusOK {
		t.Fatalf("/config = %d", code)
	}
	for _, sub := range []string{"log.broker", "log.discovery", "log.overlay", "log.store", "log.wire"} {
		if !strings.Contains(body, sub) {
			t.Fatalf("/config missing %s: %s", sub, body)
		}
	}

	// Retune one gate and observe it render back.
	resp, err := http.PostForm("http://"+addr+"/config", url.Values{"log.overlay": {"error"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("config POST = %d", resp.StatusCode)
	}
	code, body = opsGet(t, addr, "/config")
	if code != http.StatusOK || !strings.Contains(body, `"error"`) {
		t.Fatalf("log.overlay knob did not apply: %s", body)
	}

	// Bad levels are rejected.
	resp, err = http.PostForm("http://"+addr+"/config", url.Values{"log.overlay": {"loud"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad level = %d, want 400", resp.StatusCode)
	}
}

// TestOpsPushDeployment: a deployment with WithOpsPush and no scrape
// listener still delivers its metric families to the receiver.
func TestOpsPushDeployment(t *testing.T) {
	// The pusher ships two body kinds: metric snapshots and (since PR 9)
	// span batches, distinguished by Content-Type. Track the latest of
	// each.
	var pushes, spanPushes atomic.Int64
	var last, lastSpans atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b := new(bytes.Buffer)
		if _, err := b.ReadFrom(r.Body); err == nil && b.Len() > 0 {
			if strings.Contains(r.Header.Get("Content-Type"), "x-rebeca-spans") {
				lastSpans.Store(b.String())
				spanPushes.Add(1)
			} else {
				last.Store(b.String())
				pushes.Add(1)
			}
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()

	g := rebeca.NewGraph().AddEdge("A", "B")
	sys, err := rebeca.New(
		rebeca.WithMovement(g),
		rebeca.WithOpsPush(srv.URL, 20*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if sys.OpsAddr() != "" {
		t.Fatalf("OpsAddr = %q for a push-only deployment, want empty", sys.OpsAddr())
	}

	sub := sys.NewClient("bob")
	if err := sub.Connect("B"); err != nil {
		t.Fatal(err)
	}
	s := sub.Subscribe(rebeca.NewFilter())
	defer s.Cancel()
	pub := sys.NewClient("alice")
	if err := pub.Connect("A"); err != nil {
		t.Fatal(err)
	}
	sys.Settle()
	if _, err := pub.Publish(map[string]rebeca.Value{"kind": rebeca.String("pushed")}); err != nil {
		t.Fatal(err)
	}
	sys.Settle()

	deadline := time.Now().Add(5 * time.Second)
	for pushes.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if pushes.Load() == 0 {
		t.Fatal("no push arrived within 5s")
	}
	body, _ := last.Load().(string)
	for _, want := range []string{
		"# TYPE rebeca_publishes_total counter",
		"# TYPE rebeca_push_attempts_total counter",
		"rebeca_publishes_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("push body missing %q:\n%s", want, body)
		}
	}
	// The traced publish above also ships outbound as a span batch.
	for spanPushes.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if spanPushes.Load() == 0 {
		t.Fatal("no span batch arrived within 5s")
	}
	spanBody, _ := lastSpans.Load().(string)
	if !strings.Contains(spanBody, `"hops"`) || !strings.Contains(spanBody, `"broker":"A"`) {
		t.Fatalf("span batch missing the traced hop path:\n%s", spanBody)
	}
}
