package rebeca_test

import (
	"sort"
	"sync"
	"testing"
	"time"

	"rebeca"
)

// The PR 2 stream matrix covered the overflow policies against live
// traffic; these tests cross them with the broker-side buffer bounds
// (WithBufferCap / WithBufferTTL): a ghost session's buffer evicts under
// its TTL/cap policy while disconnected, and the surviving replay then
// lands in a bounded stream under each overflow policy. Two independent
// drop points, one observable outcome.

// ghostReplayInts runs the shared scenario: subscribe with the given
// stream options, disconnect, publish i=1..10 from another border (with an
// optional mid-stream virtual-clock step), reconnect, and return the
// i-values that reached the stream in order. For Block a concurrent
// consumer drains the stream — without one the replay would deadlock the
// virtual clock, which is exactly the semantics documented on Block.
func ghostReplayInts(t *testing.T, sysOpts []rebeca.Option, subOpts []rebeca.SubOption,
	block bool, midStep time.Duration) ([]int64, rebeca.SubscriptionStats) {
	t.Helper()
	opts := append([]rebeca.Option{rebeca.WithMovement(rebeca.Line(2))}, sysOpts...)
	sys := newSystem(t, opts...)
	defer func() { _ = sys.Close() }()
	topic := rebeca.NewFilter(rebeca.Eq("topic", rebeca.String("t")))

	alice := sys.NewClient("alice")
	sub := alice.Subscribe(topic, subOpts...)
	connect(t, alice, "B0")
	sys.Settle()
	if err := alice.Disconnect(); err != nil {
		t.Fatal(err)
	}
	sys.Settle()

	pub := sys.NewClient("pub")
	connect(t, pub, "B1")
	sys.Settle()
	for i := 1; i <= 10; i++ {
		if i == 6 && midStep > 0 {
			sys.Step(midStep) // age the first five past the TTL
		}
		if _, err := pub.Publish(map[string]rebeca.Value{
			"topic": rebeca.String("t"), "i": rebeca.Int(int64(i)),
		}); err != nil {
			t.Fatal(err)
		}
		sys.Settle()
	}

	var (
		mu  sync.Mutex
		got []int64
	)
	done := make(chan struct{})
	if block {
		// Block needs a concurrent consumer while Settle replays.
		go func() {
			defer close(done)
			for d := range sub.Events() {
				if v, ok := d.Note.Get("i"); ok {
					mu.Lock()
					got = append(got, v.IntVal())
					mu.Unlock()
				}
			}
		}()
	}
	connect(t, alice, "B0")
	sys.Settle()
	if block {
		// The stream stays open; wait for the consumer to drain what the
		// replay pushed, then detach it.
		deadline := time.Now().Add(2 * time.Second)
		for {
			mu.Lock()
			n := len(got)
			mu.Unlock()
			stats := sub.Stats()
			if uint64(n) >= stats.Delivered && stats.Buffered == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("consumer drained %d of %d", n, stats.Delivered)
			}
			time.Sleep(5 * time.Millisecond)
		}
		sub.Cancel()
		<-done
	} else {
		for {
			select {
			case d := <-sub.Events():
				if v, ok := d.Note.Get("i"); ok {
					got = append(got, v.IntVal())
				}
				continue
			default:
			}
			break
		}
	}
	mu.Lock()
	defer mu.Unlock()
	return append([]int64(nil), got...), sub.Stats()
}

func wantInts(t *testing.T, got []int64, want ...int64) {
	t.Helper()
	g := append([]int64(nil), got...)
	sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
	if len(g) != len(want) {
		t.Fatalf("stream delivered %v, want %v", got, want)
	}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("stream delivered %v, want %v", got, want)
		}
	}
}

func TestGhostCapEvictionAcrossOverflowPolicies(t *testing.T) {
	// Ghost buffer keeps the last 4 of 10 (7..10); the cap-2 stream then
	// applies its own policy to the 4-note replay.
	capOpts := []rebeca.Option{rebeca.WithBufferCap(4)}

	t.Run("drop-oldest", func(t *testing.T) {
		got, stats := ghostReplayInts(t, capOpts,
			[]rebeca.SubOption{rebeca.WithStreamBuffer(2), rebeca.WithOverflow(rebeca.DropOldest)},
			false, 0)
		wantInts(t, got, 9, 10) // freshest survive both bounds
		if stats.Dropped != 2 {
			t.Errorf("Dropped = %d, want 2", stats.Dropped)
		}
	})
	t.Run("drop-newest", func(t *testing.T) {
		got, stats := ghostReplayInts(t, capOpts,
			[]rebeca.SubOption{rebeca.WithStreamBuffer(2), rebeca.WithOverflow(rebeca.DropNewest)},
			false, 0)
		wantInts(t, got, 7, 8) // oldest survivors of the ghost eviction
		if stats.Dropped != 2 {
			t.Errorf("Dropped = %d, want 2", stats.Dropped)
		}
	})
	t.Run("block", func(t *testing.T) {
		got, stats := ghostReplayInts(t, capOpts,
			[]rebeca.SubOption{rebeca.WithStreamBuffer(2), rebeca.WithOverflow(rebeca.Block)},
			true, 0)
		wantInts(t, got, 7, 8, 9, 10) // backpressure loses nothing the ghost kept
		if stats.Dropped != 0 {
			t.Errorf("Dropped = %d, want 0", stats.Dropped)
		}
	})
}

func TestGhostTTLEvictionAcrossOverflowPolicies(t *testing.T) {
	// Notifications 1..5 age past the 10s TTL before 6..10 are published:
	// only 6..10 survive the ghost's GC; the cap-3 stream then applies its
	// policy.
	ttlOpts := []rebeca.Option{rebeca.WithBufferTTL(10 * time.Second)}
	const step = 15 * time.Second

	t.Run("drop-oldest", func(t *testing.T) {
		got, _ := ghostReplayInts(t, ttlOpts,
			[]rebeca.SubOption{rebeca.WithStreamBuffer(3), rebeca.WithOverflow(rebeca.DropOldest)},
			false, step)
		wantInts(t, got, 8, 9, 10)
	})
	t.Run("drop-newest", func(t *testing.T) {
		got, _ := ghostReplayInts(t, ttlOpts,
			[]rebeca.SubOption{rebeca.WithStreamBuffer(3), rebeca.WithOverflow(rebeca.DropNewest)},
			false, step)
		wantInts(t, got, 6, 7, 8)
	})
	t.Run("block", func(t *testing.T) {
		got, stats := ghostReplayInts(t, ttlOpts,
			[]rebeca.SubOption{rebeca.WithStreamBuffer(3), rebeca.WithOverflow(rebeca.Block)},
			true, step)
		wantInts(t, got, 6, 7, 8, 9, 10)
		if stats.Dropped != 0 {
			t.Errorf("Dropped = %d, want 0", stats.Dropped)
		}
	})
}

// TestGhostCombinedBoundsWithDurableStore crosses all three drop points:
// TTL+cap eviction in the ghost buffer, a bounded stream, and a durable
// store underneath — eviction must bound memory without un-acking the
// store, and replay must still ack everything appended.
func TestGhostCombinedBoundsWithDurableStore(t *testing.T) {
	st := rebeca.NewMemoryStore()
	got, _ := ghostReplayInts(t,
		[]rebeca.Option{
			rebeca.WithBufferTTL(10 * time.Second),
			rebeca.WithBufferCap(3),
			rebeca.WithDurable(st),
		},
		[]rebeca.SubOption{rebeca.WithStreamBuffer(2), rebeca.WithOverflow(rebeca.DropOldest)},
		false, 15*time.Second)
	// TTL kills 1..5, cap keeps 8..10, stream keeps 9..10.
	wantInts(t, got, 9, 10)
	// The replay acked the durable queue — including the evicted records,
	// which were a memory bound, not an un-delivery.
	if p := st.State("mob/B0/alice").Pending; p != 0 {
		t.Errorf("durable queue still pending %d after replay", p)
	}
}
