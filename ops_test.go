package rebeca_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"rebeca"
)

// opsGet fetches one ops-endpoint path and returns status and body.
func opsGet(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// waitReady polls /readyz until it reports the wanted status.
func waitReady(t *testing.T, addr string, wantReady bool, within time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(within)
	var last string
	for time.Now().Before(deadline) {
		code, body := opsGet(t, addr, "/readyz?verbose")
		last = fmt.Sprintf("%d %s", code, body)
		if (code == http.StatusOK) == wantReady {
			return last
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("readyz never reached ready=%v; last: %s", wantReady, last)
	return last
}

// TestLiveOpsEndpoint drives the acceptance scenario end to end on a
// 3-broker TCP line: valid Prometheus /metrics whose counters move under
// traffic, /readyz gated on overlay convergence (flipping across a link
// cut and heal), and /trace reconstructing a publish's multi-hop path.
func TestLiveOpsEndpoint(t *testing.T) {
	g := rebeca.NewGraph().AddEdge("A", "B").AddEdge("B", "C")
	d, err := rebeca.NewLive(
		rebeca.WithMovement(g),
		rebeca.WithOps("127.0.0.1:0"),
		rebeca.WithHeartbeat(40*time.Millisecond, 160*time.Millisecond),
		rebeca.WithSettleWindow(60*time.Millisecond, 10*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	addr := d.OpsAddr()
	if addr == "" {
		t.Fatal("OpsAddr empty with WithOps configured")
	}

	// Readiness: both links must establish (including the initial routing
	// sync each establishment applies).
	waitReady(t, addr, true, 5*time.Second)

	// Traffic across the full line: subscriber at C, publisher at A.
	sub := d.NewClient("carol")
	if err := sub.Connect("C"); err != nil {
		t.Fatal(err)
	}
	s := sub.Subscribe(rebeca.NewFilter(rebeca.Eq("kind", rebeca.String("ops-test"))))
	defer s.Cancel()
	pub := d.NewClient("alice")
	if err := pub.Connect("A"); err != nil {
		t.Fatal(err)
	}
	d.Settle()

	noteID, err := pub.Publish(map[string]rebeca.Value{"kind": rebeca.String("ops-test")})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-s.Events():
	case <-time.After(5 * time.Second):
		t.Fatal("delivery never arrived at C")
	}

	// /metrics: Prometheus exposition with the expected families, counters
	// moved by the traffic above.
	code, metrics := opsGet(t, addr, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, name := range []string{
		"rebeca_publishes_total",
		"rebeca_deliveries_total",
		"rebeca_subscribes_total",
		"rebeca_match_seconds_bucket",
		"rebeca_e2e_latency_seconds_count",
		"rebeca_link_state",
		"rebeca_codec_frame_bytes_bucket",
		"rebeca_trace_spans_retained",
	} {
		if !strings.Contains(metrics, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
	if !strings.Contains(metrics, `rebeca_deliveries_total{broker="C"} 1`) {
		t.Errorf("delivery counter did not move:\n%s", grepLines(metrics, "rebeca_deliveries_total"))
	}
	// The publish transited A, B and C: every broker's publish counter moved.
	for _, b := range []string{"A", "B", "C"} {
		if !strings.Contains(metrics, fmt.Sprintf(`rebeca_publishes_total{broker=%q} 1`, b)) {
			t.Errorf("publish counter for %s did not move:\n%s", b, grepLines(metrics, "rebeca_publishes_total"))
		}
	}

	// /trace: the hop-propagated span reconstructs the A→B→C path.
	code, body := opsGet(t, addr, "/trace?note="+url.QueryEscape(noteID.String()))
	if code != http.StatusOK {
		t.Fatalf("/trace = %d: %s", code, body)
	}
	var tr struct {
		Note string `json:"note"`
		Hops []struct {
			Broker string    `json:"broker"`
			At     time.Time `json:"at"`
		} `json:"hops"`
	}
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatalf("trace json: %v (%s)", err, body)
	}
	if len(tr.Hops) != 3 {
		t.Fatalf("trace path = %+v, want 3 hops", tr.Hops)
	}
	for i, want := range []string{"A", "B", "C"} {
		if tr.Hops[i].Broker != want {
			t.Fatalf("hop %d = %s, want %s (path %+v)", i, tr.Hops[i].Broker, want, tr.Hops)
		}
	}
	for i := 1; i < len(tr.Hops); i++ {
		if tr.Hops[i].At.Before(tr.Hops[i-1].At) {
			t.Fatalf("hop timestamps not monotonic: %+v", tr.Hops)
		}
	}

	// Readiness flips exactly with overlay convergence: cut a link, the
	// endpoint goes not-ready; heal it, ready returns.
	if err := d.CutLink("A", "B"); err != nil {
		t.Fatal(err)
	}
	waitReady(t, addr, false, 5*time.Second)
	if err := d.HealLink("A", "B"); err != nil {
		t.Fatal(err)
	}
	waitReady(t, addr, true, 10*time.Second)

	// /config: knobs render and apply at runtime.
	code, body = opsGet(t, addr, "/config")
	if code != http.StatusOK || !strings.Contains(body, `"heartbeat"`) || !strings.Contains(body, `"trace"`) {
		t.Fatalf("/config = %d: %s", code, body)
	}
	resp, err := http.PostForm("http://"+addr+"/config", url.Values{"heartbeat": {"80ms,320ms"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("config POST = %d", resp.StatusCode)
	}
	code, body = opsGet(t, addr, "/config")
	if code != http.StatusOK || !strings.Contains(body, "80ms") {
		t.Fatalf("heartbeat knob did not apply: %s", body)
	}
}

// grepLines filters an exposition dump to lines containing substr, for
// readable failure messages.
func grepLines(s, substr string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

// TestSystemOpsEndpoint: the virtual-clock flavor hosts the same
// endpoint, with readiness from the simulated overlay managers.
func TestSystemOpsEndpoint(t *testing.T) {
	g := rebeca.NewGraph().AddEdge("A", "B").AddEdge("B", "C")
	sys, err := rebeca.New(
		rebeca.WithMovement(g),
		rebeca.WithOps("127.0.0.1:0"),
		rebeca.WithHeartbeat(50*time.Millisecond, 200*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	addr := sys.OpsAddr()

	// Drive the virtual clock through overlay convergence.
	sys.Settle()
	waitReady(t, addr, true, 2*time.Second)

	sub := sys.NewClient("carol")
	_ = sub.Connect("C")
	s := sub.Subscribe(rebeca.NewFilter(rebeca.Eq("kind", rebeca.String("ops-test"))))
	defer s.Cancel()
	pub := sys.NewClient("alice")
	_ = pub.Connect("A")
	sys.Settle()
	noteID, err := pub.Publish(map[string]rebeca.Value{"kind": rebeca.String("ops-test")})
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle()

	code, metrics := opsGet(t, addr, "/metrics")
	if code != http.StatusOK || !strings.Contains(metrics, `rebeca_deliveries_total{broker="C"} 1`) {
		t.Fatalf("/metrics = %d:\n%s", code, grepLines(metrics, "rebeca_deliveries_total"))
	}

	code, body := opsGet(t, addr, "/trace?note="+url.QueryEscape(noteID.String()))
	if code != http.StatusOK || !strings.Contains(body, `"broker": "B"`) {
		t.Fatalf("/trace = %d: %s", code, body)
	}
}

// TestOpsWithoutOptionAbsent: without WithOps nothing listens and the
// accessors report empty.
func TestOpsWithoutOptionAbsent(t *testing.T) {
	g := rebeca.NewGraph().AddEdge("A", "B")
	d, err := rebeca.NewLive(rebeca.WithMovement(g))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.OpsAddr() != "" {
		t.Fatalf("OpsAddr = %q without WithOps", d.OpsAddr())
	}
}

// TestTelemetryRace hammers the metric surfaces — Metrics middleware
// snapshots, the telemetry registry scrape, and overlay link states —
// while publish/deliver traffic and link flaps run, on both deployment
// flavors. Run with -race (the CI tier does).
func TestTelemetryRace(t *testing.T) {
	flavors := []struct {
		name  string
		build func(t *testing.T, opts ...rebeca.Option) *chaosHarness
	}{
		{"system", simChaosHarness},
		{"live", liveChaosHarness},
	}
	for _, fl := range flavors {
		fl := fl
		t.Run(fl.name, func(t *testing.T) {
			metrics := rebeca.NewMetrics()
			h := fl.build(t,
				rebeca.WithMovement(rebeca.NewGraph().AddEdge("A", "B").AddEdge("B", "C")),
				rebeca.WithMiddleware(metrics),
				rebeca.WithOps("127.0.0.1:0"),
			)
			type opsAddressed interface{ OpsAddr() string }
			addr := h.d.(opsAddressed).OpsAddr()

			sub := h.d.NewClient("carol")
			if err := sub.Connect("C"); err != nil {
				t.Fatal(err)
			}
			s := sub.Subscribe(rebeca.NewFilter())
			defer s.Cancel()
			pub := h.d.NewClient("alice")
			if err := pub.Connect("A"); err != nil {
				t.Fatal(err)
			}
			h.advance(100 * time.Millisecond)

			var wg sync.WaitGroup
			stop := make(chan struct{})
			// Readers: middleware snapshots, registry scrapes, link states.
			for i := 0; i < 3; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
							_ = metrics.Snapshot()
							_ = metrics.Totals()
							_ = h.chaos.LinkStates("B")
							code, _ := opsGet(t, addr, "/metrics")
							if code != http.StatusOK {
								return
							}
						}
					}
				}()
			}
			// Traffic + link flaps from the main goroutine (Port commands
			// are single-goroutine by contract).
			for i := 0; i < 30; i++ {
				if _, err := pub.Publish(map[string]rebeca.Value{
					"n": rebeca.Int(int64(i)),
				}); err != nil {
					t.Fatal(err)
				}
				if i%10 == 9 {
					_ = h.chaos.CutLink("A", "B")
					h.advance(20 * time.Millisecond)
					_ = h.chaos.HealLink("A", "B")
					h.advance(50 * time.Millisecond)
				}
			}
			h.advance(200 * time.Millisecond)
			close(stop)
			wg.Wait()
		})
	}
}
