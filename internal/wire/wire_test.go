package wire

import (
	"net"
	"sync"
	"testing"
	"time"

	"rebeca/internal/broker"
	"rebeca/internal/codec"
	"rebeca/internal/filter"
	"rebeca/internal/message"
	"rebeca/internal/proto"
	"rebeca/internal/routing"
)

// startLine brings up a live 2-broker overlay on loopback and returns the
// nodes. The caller must Close them.
func startLine(t *testing.T) (*Node, *Node) {
	t.Helper()
	a := NewNode(NodeConfig{
		ID:       "A",
		Listen:   "127.0.0.1:0",
		Peers:    map[message.NodeID]string{"B": ""}, // B dials us
		Strategy: routing.StrategySimple,
		NextHop:  map[message.NodeID]message.NodeID{"B": "B"},
	})
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	b := NewNode(NodeConfig{
		ID:       "B",
		Listen:   "127.0.0.1:0",
		Peers:    map[message.NodeID]string{"A": a.Addr()},
		Strategy: routing.StrategySimple,
		NextHop:  map[message.NodeID]message.NodeID{"A": "A"},
	})
	if err := b.Start(); err != nil {
		_ = a.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = b.Close()
		_ = a.Close()
	})
	return a, b
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestLiveEndToEndPubSub(t *testing.T) {
	a, b := startLine(t)

	var mu sync.Mutex
	var got []message.Notification
	sub := NewRemoteClient("sub", func(n message.Notification, _ []message.SubID) {
		mu.Lock()
		got = append(got, n)
		mu.Unlock()
	})
	if err := sub.Connect(b.Addr(), "", nil, 1); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sub.Disconnect() }()
	f := filter.New(filter.Eq("k", message.Int(7)))
	subscription := proto.Subscription{ID: "sub/s1", Filter: f}
	if err := sub.Send(proto.Message{Kind: proto.KSubscribe, Client: "sub", Sub: &subscription}); err != nil {
		t.Fatal(err)
	}
	// Wait for the subscription to reach A.
	waitFor(t, func() bool {
		n := 0
		a.Inspect(func(b *broker.Broker) { n = b.Router().Table().Len() })
		return n >= 1
	}, "subscription propagation")

	pub := NewRemoteClient("pub", nil)
	if err := pub.Connect(a.Addr(), "", nil, 1); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pub.Disconnect() }()
	n := message.NewNotification(map[string]message.Value{"k": message.Int(7)})
	n.ID = message.NotificationID{Publisher: "pub", Seq: 1}
	if err := pub.Send(proto.Message{Kind: proto.KPublish, Client: "pub", Note: &n}); err != nil {
		t.Fatal(err)
	}
	miss := message.NewNotification(map[string]message.Value{"k": message.Int(8)})
	miss.ID = message.NotificationID{Publisher: "pub", Seq: 2}
	if err := pub.Send(proto.Message{Kind: proto.KPublish, Client: "pub", Note: &miss}); err != nil {
		t.Fatal(err)
	}

	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) >= 1
	}, "delivery across TCP")
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0].ID.Seq != 1 {
		t.Errorf("got %v", got)
	}
}

func TestLiveHandshakeIdentity(t *testing.T) {
	a, _ := startLine(t)
	c, err := DialLink("tester", a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if c.Peer() != "A" {
		t.Errorf("peer = %s, want A", c.Peer())
	}
}

func TestLiveRoundTripAllPayloads(t *testing.T) {
	// Exercise the codec with every payload field populated.
	a, b := startLine(t)
	_ = a

	done := make(chan proto.Message, 1)
	cl := NewRemoteClient("probe", nil)
	if err := cl.Connect(b.Addr(), "prevB", nil, 1); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl.Disconnect() }()

	n := message.NewNotification(map[string]message.Value{
		"s": message.String("x"), "i": message.Int(1),
		"f": message.Float(2.5), "b": message.Bool(true),
	})
	n.ID = message.NotificationID{Publisher: "probe", Seq: 9}
	f := filter.AtLocation(filter.Eq("service", message.String("menu")))
	m := proto.Message{
		Kind:   proto.KRelocProfile,
		Client: "probe",
		Origin: "B",
		Notes:  []message.Notification{n},
		Subs:   []proto.Subscription{{ID: "probe/s1", Filter: f}},
		Watermarks: map[message.NodeID]uint64{
			"pub": 9,
		},
		FlushID: 3,
		Hops:    2,
	}
	// Round-trip through a raw link pair rather than the broker.
	ln, err := DialLink("sender", b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ln.Close() }()
	_ = done
	// Encode/decode through the binary codec to verify fidelity.
	back := roundTrip(t, m)
	if back.Kind != m.Kind || back.Client != m.Client || len(back.Notes) != 1 ||
		len(back.Subs) != 1 || back.Watermarks["pub"] != 9 {
		t.Errorf("round trip mangled message: %+v", back)
	}
	if !back.Notes[0].Equal(n) || back.Notes[0].ID != n.ID {
		t.Errorf("notification mangled: %v", back.Notes[0])
	}
	if !back.Subs[0].Filter.LocationDependent() {
		t.Error("filter lost its myloc marker over the wire")
	}
}

// pipePair runs the full identification handshake over an in-memory pipe.
func pipePair(t *testing.T) (sender, receiver *Conn) {
	t.Helper()
	p1, p2 := net.Pipe()
	type res struct {
		c   *Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := handshakeLink("a", p1)
		ch <- res{c, err}
	}()
	receiver, err := acceptLink("b", p2)
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	sender = r.c
	t.Cleanup(func() { _ = sender.Close(); _ = receiver.Close() })
	if sender.Peer() != "b" || receiver.Peer() != "a" {
		t.Fatalf("handshake identities wrong: %s / %s", sender.Peer(), receiver.Peer())
	}
	if sender.ProtocolVersion() != codec.Version || receiver.ProtocolVersion() != codec.Version {
		t.Fatalf("negotiated version = %d/%d, want %d",
			sender.ProtocolVersion(), receiver.ProtocolVersion(), codec.Version)
	}
	return sender, receiver
}

func roundTrip(t *testing.T, m proto.Message) proto.Message {
	t.Helper()
	sender, receiver := pipePair(t)
	if err := sender.Send(m); err != nil {
		t.Fatal(err)
	}
	var out proto.Message
	if err := receiver.dec.Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestCoalescedWrites verifies the flush coalescing path end to end: a
// burst of sends issued while the flusher cannot run must arrive intact
// and in order on the peer.
func TestCoalescedWrites(t *testing.T) {
	sender, receiver := pipePair(t)
	const burst = 64
	go func() {
		for i := 0; i < burst; i++ {
			n := message.NewNotification(map[string]message.Value{"i": message.Int(int64(i))})
			n.ID = message.NotificationID{Publisher: "a", Seq: uint64(i + 1)}
			if err := sender.Send(proto.Message{Kind: proto.KPublish, Note: &n}); err != nil {
				return
			}
		}
	}()
	for i := 0; i < burst; i++ {
		var m proto.Message
		if err := receiver.dec.Decode(&m); err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if m.Note == nil || m.Note.ID.Seq != uint64(i+1) {
			t.Fatalf("message %d out of order: %+v", i, m)
		}
	}
}
