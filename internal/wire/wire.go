// Package wire runs the middleware over real TCP links: the same broker
// state machines the simulator drives, fed from length-prefixed binary
// frames (internal/codec). It provides the live deployment mode used by
// cmd/rebeca-broker — one process per broker, point-to-point TCP
// connections between neighbors (§2), and a Dialer for remote clients.
//
// TCP gives the FIFO per-link guarantee the algorithms assume; a per-node
// inbox goroutine serializes HandleMessage calls, preserving the atomic
// routing-decision requirement of §2.
//
// Every link buffers its writes through a bufio.Writer that is flushed by
// a per-conn flusher goroutine when the writer goes idle — never inline
// per message — so back-to-back publishes coalesce into one syscall. The
// identification handshake opens with codec.Magic and a protocol version
// byte; both sides speak the version minimum. The gob fallback of the
// pre-binary releases is gone: a legacy peer's dial is refused with an
// error naming the mismatch instead of silently hanging.
//
// Peer links can be declared statically (NodeConfig.Peers) or managed at
// runtime (AddPeer/RemovePeer) — the discovery subsystem's membership
// supervisor drives the latter, and EnableMesh lets the hosted broker
// route over arbitrary (cyclic) overlay graphs.
//
// Broker↔broker links are owned by the node's overlay manager
// (internal/overlay): dials retry with backoff instead of failing Start,
// every (re-)established link runs the sync handshake that replays routing
// installs before carrying traffic, established links exchange heartbeats,
// and messages bound for a down link queue in a bounded buffer until it
// heals — so broker start order does not matter and the topology self-heals
// after restarts and link flaps.
package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"strings"
	"sync"
	"time"

	"rebeca/internal/broker"
	"rebeca/internal/codec"
	"rebeca/internal/discovery"
	"rebeca/internal/message"
	"rebeca/internal/overlay"
	"rebeca/internal/proto"
	"rebeca/internal/routing"
	"rebeca/internal/store"
	"rebeca/internal/telemetry"
)

// inboxMsg pairs a received message with its link. gen is the overlay
// link generation for peer-broker links (0 on client links).
type inboxMsg struct {
	from message.NodeID
	m    proto.Message
	gen  uint64
}

// flowState is the broker-side half of the credit-based delivery flow
// control on a client link: the client's KConnect announces a delivery
// window, every KDeliver consumes one credit, and the client grants
// credits back (KCredit) as its application consumes the deliveries. At
// zero credits the sender blocks — on a live node that is the broker's
// event loop, so a stalled consumer exerts backpressure through the
// overlay's TCP links all the way to the publisher.
type flowState struct {
	mu      sync.Mutex
	cond    *sync.Cond
	enabled bool
	credits int
	closed  bool
}

func newFlowState() *flowState {
	f := &flowState{}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// enable arms the window. Called from the link's read pump when a KConnect
// announces a credit window.
func (f *flowState) enable(window int) {
	f.mu.Lock()
	f.enabled = true
	f.credits = window
	f.mu.Unlock()
	f.cond.Broadcast()
}

// grant adds credits (KCredit from the client).
func (f *flowState) grant(n int) {
	f.mu.Lock()
	f.credits += n
	f.mu.Unlock()
	f.cond.Broadcast()
}

// acquire takes one delivery credit, blocking while the window is empty.
// It returns false when the link closed instead.
func (f *flowState) acquire() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for f.enabled && f.credits <= 0 && !f.closed {
		f.cond.Wait()
	}
	if f.closed {
		return false
	}
	if f.enabled {
		f.credits--
	}
	return true
}

// close releases all waiters (link teardown).
func (f *flowState) close() {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	f.cond.Broadcast()
}

// Conn is one established, identified link. All writes go through bw; a
// dedicated flusher goroutine flushes it when the writer goes idle (see
// Send), so bursts of messages coalesce into few syscalls. dec is the
// connection's single decoder: it buffers reads, so the hello handshake
// and the message pump must share one — a second decoder would start
// mid-stream on whatever the first one read ahead.
type Conn struct {
	peer message.NodeID
	c    net.Conn
	ver  byte
	bw   *bufio.Writer
	enc  *codec.Encoder
	dec  *codec.Decoder
	mu   sync.Mutex
	fc   *flowState

	flushReq  chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// newConn assembles a post-handshake link and starts its flusher. ver is
// the negotiated binary protocol version.
func newConn(peer message.NodeID, c net.Conn, ver byte, bw *bufio.Writer, enc *codec.Encoder, dec *codec.Decoder) *Conn {
	conn := &Conn{
		peer: peer, c: c, ver: ver, bw: bw, enc: enc, dec: dec,
		fc:       newFlowState(),
		flushReq: make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	go conn.flushLoop()
	return conn
}

// observeFrames attaches a frame-size observer to the link's encoder.
// Attach before the conn carries traffic — the registration paths do,
// ahead of LinkUp and the read pump.
func (c *Conn) observeFrames(fn func(bytes int)) {
	c.enc.OnFrame(fn)
}

// Peer returns the remote node's announced ID.
func (c *Conn) Peer() message.NodeID { return c.peer }

// ProtocolVersion returns the negotiated binary protocol version,
// min(ours, peer's) — the version a future multi-version encoder must
// emit on this link.
func (c *Conn) ProtocolVersion() byte { return c.ver }

// Send encodes one message into the link's write buffer and wakes the
// flusher. Safe for concurrent use. The flusher only runs when it can
// take the send lock — while senders keep arriving their frames pile into
// the buffer, and one Flush (one syscall) carries the whole burst.
//
// An encode failure tears the link down. Callers largely ignore Send
// errors (a lost volatile message is a down link's normal cost), but a
// message the codec refuses — an over-MaxFrame frame, say a gigantic
// KSyncInstall replay — must not leave the link looking healthy while
// its peer waits forever for the dropped frame: closing the conn makes
// the read pump report LinkDown, so the failure is observed and
// supervised instead of becoming a silent routing blackhole.
func (c *Conn) Send(m proto.Message) error {
	c.mu.Lock()
	err := c.enc.Encode(m)
	c.mu.Unlock()
	if err != nil {
		_ = c.Close()
		return err
	}
	select {
	case c.flushReq <- struct{}{}:
	default: // a flush is already pending; it will cover this frame too
	}
	return nil
}

// flushLoop drains flush requests. The signal is sent after the frame is
// in the buffer, so by the time the loop takes the lock every signalled
// frame is flushed — there is no lost-wakeup window.
func (c *Conn) flushLoop() {
	for {
		select {
		case <-c.flushReq:
			c.mu.Lock()
			err := c.bw.Flush()
			c.mu.Unlock()
			if err != nil {
				return // socket broken; the read pump reports the failure
			}
		case <-c.done:
			return
		}
	}
}

// Close tears the link down: it releases any sender blocked on credits,
// flushes buffered frames (bounded by a write deadline, so a wedged peer
// cannot hang teardown) and closes the socket.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		close(c.done)
		c.fc.close()
		_ = c.c.SetWriteDeadline(time.Now().Add(time.Second))
		c.mu.Lock()
		_ = c.bw.Flush()
		c.mu.Unlock()
	})
	return c.c.Close()
}

// NodeConfig assembles a live broker node.
type NodeConfig struct {
	// ID names this broker.
	ID message.NodeID
	// Listen is the TCP address to accept links on (e.g. ":7471").
	Listen string
	// Peers maps neighbor broker IDs to their dial addresses. Only one
	// side of each overlay edge needs to dial; the other accepts. Static
	// configuration — nodes driven by a discovery registry leave it empty
	// and manage peers at runtime via AddPeer/RemovePeer.
	Peers map[message.NodeID]string
	// Strategy selects the routing algorithm.
	Strategy routing.Strategy
	// LinearMatching reverts the broker's routing table to linear scans
	// (the matching index is the default; this is the E3 ablation knob).
	LinearMatching bool
	// NextHop is the unicast routing table (destination -> neighbor).
	NextHop map[message.NodeID]message.NodeID
	// Middleware is appended to the broker's extension chain at Start,
	// after any session-layer plugins attached via Broker() — the same
	// chain position the simulator gives it. Stages shared between several
	// live nodes must be safe for concurrent use (one event loop each).
	Middleware []broker.Middleware
	// Overlay tunes the broker-link supervision (heartbeat interval and
	// timeout, redial backoff, pending-queue bound); zero fields take the
	// overlay package's defaults.
	Overlay overlay.Settings
	// Spill, when non-nil, backs every overlay link's pending queue with
	// persistent storage: overflow beyond the pending cap spills to a
	// per-link store queue and replays in order on re-establishment
	// instead of being dropped. See overlay.Config.Spill.
	Spill store.Store
	// SpillBudget bounds each link's spilled bytes (default
	// overlay.DefaultSpillBudget). Only meaningful with Spill.
	SpillBudget int64
	// LinkObserver, when non-nil, observes every overlay link transition
	// (in addition to the broker chain's LinkObserver stages). Called from
	// whatever goroutine drove the transition; must not block.
	LinkObserver overlay.Observer
	// Telemetry, when non-nil, receives the node's transport metrics:
	// per-link overlay state, pending-queue depth and drop counts as
	// pull-model collectors, and encoded frame sizes as a per-broker
	// histogram every binary link's encoder observes.
	Telemetry *telemetry.Registry
	// Logger, when non-nil, receives structured wire-layer events —
	// today, inbound links refused at the handshake (a legacy peer or
	// junk on the listen port).
	Logger *slog.Logger
	// OverlayLogger, when non-nil, is handed to the overlay manager for
	// structured link-transition logs (a separate gate from Logger so
	// each subsystem's verbosity tunes independently).
	OverlayLogger *slog.Logger
	// BrokerLogger, when non-nil, is attached to the hosted broker core
	// (spanning-tree recomputations, flood fallbacks).
	BrokerLogger *slog.Logger
}

// Node is a live broker process host.
type Node struct {
	cfg NodeConfig
	b   *broker.Broker
	ln  net.Listener
	ov  *overlay.Manager

	mu      sync.Mutex
	conns   map[message.NodeID]*Conn
	blocked map[message.NodeID]bool // link-chaos hook: refuse these peers
	// peers maps current overlay neighbors to their dial addresses (""
	// for purely passive links). Seeded from cfg.Peers, mutated at
	// runtime by AddPeer/RemovePeer; guarded by mu.
	peers map[message.NodeID]string

	inbox      chan inboxMsg
	tasks      chan func()
	linkEvents chan overlay.Event
	done       chan struct{}
	wg         sync.WaitGroup

	frameObs func(bytes int) // telemetry frame-size observer (nil = off)
}

// NewNode creates a node and its broker (not yet serving).
func NewNode(cfg NodeConfig) *Node {
	n := &Node{
		cfg:        cfg,
		conns:      make(map[message.NodeID]*Conn),
		blocked:    make(map[message.NodeID]bool),
		peers:      make(map[message.NodeID]string, len(cfg.Peers)),
		inbox:      make(chan inboxMsg, 1024),
		tasks:      make(chan func()),
		linkEvents: make(chan overlay.Event, 256),
		done:       make(chan struct{}),
	}
	peers := make([]message.NodeID, 0, len(cfg.Peers))
	for p, addr := range cfg.Peers {
		peers = append(peers, p)
		n.peers[p] = addr
	}
	n.b = broker.New(broker.Config{
		ID:             cfg.ID,
		Peers:          peers,
		Strategy:       cfg.Strategy,
		LinearMatching: cfg.LinearMatching,
		Send:           n.send,
		NextHop:        cfg.NextHop,
	})
	n.ov = overlay.New(overlay.Config{
		Self:        cfg.ID,
		Settings:    cfg.Overlay,
		Spill:       cfg.Spill,
		SpillBudget: cfg.SpillBudget,
		Transmit:    n.transmitPeer,
		Dial:        n.dialPeer,
		CloseLink: func(peer message.NodeID) {
			n.mu.Lock()
			conn := n.conns[peer]
			n.mu.Unlock()
			if conn != nil {
				_ = conn.Close()
			}
		},
		Schedule: func(d time.Duration, fn func()) func() {
			t := time.AfterFunc(d, fn)
			return func() { t.Stop() }
		},
		// SyncState/ApplySync run inside HandleControl, which the node
		// only invokes from its event loop — direct broker access is safe.
		SyncState: n.b.SyncInstalls,
		ApplySync: n.b.ApplySyncInstalls,
		Observer:  n.observeLink,
		Logger:    cfg.OverlayLogger,
	})
	if cfg.BrokerLogger != nil {
		n.b.SetLogger(cfg.BrokerLogger)
	}
	if reg := cfg.Telemetry; reg != nil {
		bid := string(cfg.ID)
		hist := reg.Histogram(telemetry.MetricFrameBytes,
			"Encoded wire frame sizes in bytes (length prefix included), per sending broker.",
			telemetry.SizeBuckets, telemetry.Labels{"broker": bid})
		n.frameObs = func(bytes int) { hist.Observe(float64(bytes)) }
		reg.GaugeFunc(telemetry.MetricLinkState,
			"Overlay link state (1 = the link is in the state named by the state label).",
			func(emit func(telemetry.Labels, float64)) {
				for _, li := range n.ov.Info() {
					emit(telemetry.Labels{"broker": bid, "peer": string(li.Peer), "state": li.State.String()}, 1)
				}
			})
		reg.GaugeFunc(telemetry.MetricLinkPending,
			"Messages queued for a down overlay link.",
			func(emit func(telemetry.Labels, float64)) {
				for _, li := range n.ov.Info() {
					emit(telemetry.Labels{"broker": bid, "peer": string(li.Peer)}, float64(li.Pending))
				}
			})
		reg.CounterFunc(telemetry.MetricLinkDropped,
			"Messages discarded by an overlay link's bounded pending queue.",
			func(emit func(telemetry.Labels, float64)) {
				for _, li := range n.ov.Info() {
					emit(telemetry.Labels{"broker": bid, "peer": string(li.Peer)}, float64(li.Dropped))
				}
			})
		if cfg.Spill != nil {
			reg.GaugeFunc(telemetry.MetricLinkSpillDepth,
				"Messages parked in a link's store-backed spill queue.",
				func(emit func(telemetry.Labels, float64)) {
					for _, li := range n.ov.Info() {
						emit(telemetry.Labels{"broker": bid, "peer": string(li.Peer)}, float64(li.SpillDepth))
					}
				})
			reg.GaugeFunc(telemetry.MetricLinkSpillBytes,
				"Bytes held by a link's store-backed spill queue.",
				func(emit func(telemetry.Labels, float64)) {
					for _, li := range n.ov.Info() {
						emit(telemetry.Labels{"broker": bid, "peer": string(li.Peer)}, float64(li.SpillBytes))
					}
				})
			reg.CounterFunc(telemetry.MetricLinkSpillDropped,
				"Messages the spill discarded (append failures and byte-budget evictions).",
				func(emit func(telemetry.Labels, float64)) {
					for _, li := range n.ov.Info() {
						emit(telemetry.Labels{"broker": bid, "peer": string(li.Peer)}, float64(li.SpillDropped))
					}
				})
		}
	}
	return n
}

// observeLink fans a link transition out to the configured observer and,
// asynchronously, to the broker chain's LinkObserver stages (the event
// loop dequeues linkEvents; transitions can originate on that very loop,
// so the hand-off must not block — overflow drops the chain notification
// rather than deadlocking).
func (n *Node) observeLink(ev overlay.Event) {
	if n.cfg.LinkObserver != nil {
		n.cfg.LinkObserver(ev)
	}
	select {
	case n.linkEvents <- ev:
	default:
	}
}

// Broker exposes the hosted broker so callers can attach plugins (mobility
// manager, replicator) before Start.
func (n *Node) Broker() *broker.Broker { return n.b }

// isPeer reports whether id is a current overlay neighbor.
func (n *Node) isPeer(id message.NodeID) bool {
	n.mu.Lock()
	_, ok := n.peers[id]
	n.mu.Unlock()
	return ok
}

// AddPeer adds an overlay neighbor at runtime: the link is handed to the
// overlay manager, which dials (dial true; addr is the peer's listen
// address) or awaits the peer's dial. Safe from any goroutine — the
// discovery membership supervisor calls this from its watch path.
func (n *Node) AddPeer(peer message.NodeID, addr string, dial bool) {
	if peer == "" || peer == n.cfg.ID {
		return
	}
	n.mu.Lock()
	n.peers[peer] = addr
	n.mu.Unlock()
	n.ov.AddPeer(peer, dial && addr != "")
}

// RemovePeer drops an overlay neighbor at runtime: supervision stops, the
// link closes, pending traffic for it is discarded (a departed broker's
// backlog has nowhere to go — mesh re-election re-routes what matters).
func (n *Node) RemovePeer(peer message.NodeID) {
	n.ov.RemovePeer(peer)
	n.mu.Lock()
	delete(n.peers, peer)
	conn := n.conns[peer]
	delete(n.conns, peer)
	n.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
}

// EnableMesh switches the hosted broker to mesh routing (cycle-safe
// forwarding over arbitrary graphs, see internal/broker mesh mode) and
// wires the tree-transition hook: links entering the spanning tree get a
// routing resync, links leaving it get their pending backlog re-flooded
// on the new tree. Call before Start.
func (n *Node) EnableMesh() {
	n.b.EnableMesh()
	n.b.OnTreeChange(func(added, removed []message.NodeID) {
		for _, p := range added {
			n.ov.Resync(p)
		}
		for _, p := range removed {
			if msgs := n.ov.TakePending(p); len(msgs) > 0 {
				n.b.ReforwardPending(p, msgs)
			}
		}
	})
}

// SetMeshTopology feeds a discovery membership snapshot (brokers and
// declared edges) to the hosted broker's mesh, serialized on the event
// loop. No-op until EnableMesh.
func (n *Node) SetMeshTopology(members []message.NodeID, edges [][2]message.NodeID) {
	n.Inspect(func(b *broker.Broker) { b.SetMeshTopology(members, edges) })
}

// NodeHost adapts a Node to the discovery membership supervisor's Host
// interface: registry-driven link commands become AddPeer/RemovePeer and
// every membership snapshot feeds the mesh's spanning-tree election.
type NodeHost struct{ Node *Node }

// AddLink implements discovery.Host.
func (h NodeHost) AddLink(peer message.NodeID, addr string, dial bool) {
	h.Node.AddPeer(peer, addr, dial)
}

// RemoveLink implements discovery.Host.
func (h NodeHost) RemoveLink(peer message.NodeID) { h.Node.RemovePeer(peer) }

// MembersChanged implements discovery.Host.
func (h NodeHost) MembersChanged(entries []discovery.Entry) {
	members, edges := discovery.Graph(entries)
	h.Node.SetMeshTopology(members, edges)
}

// Start listens, runs the event loop, and hands every overlay link to the
// node's overlay manager: active sides begin dialing (failed dials retry
// with jittered backoff — a peer that is not up yet is not an error),
// passive sides await the peer's dial. Start only fails if the listen
// address is unavailable.
func (n *Node) Start() error {
	n.b.UseMiddleware(n.cfg.Middleware...)
	ln, err := net.Listen("tcp", n.cfg.Listen)
	if err != nil {
		return fmt.Errorf("wire: listen %s: %w", n.cfg.Listen, err)
	}
	n.ln = ln
	n.wg.Add(2)
	go n.acceptLoop()
	go n.eventLoop()
	for peer, addr := range n.cfg.Peers {
		n.ov.AddPeer(peer, addr != "")
	}
	return nil
}

// Addr returns the bound listen address.
func (n *Node) Addr() string {
	if n.ln == nil {
		return ""
	}
	return n.ln.Addr().String()
}

// Close stops the node and all links.
func (n *Node) Close() error {
	select {
	case <-n.done:
		return nil
	default:
	}
	close(n.done)
	n.ov.Close() // stop redial/heartbeat timers before dropping links
	if n.ln != nil {
		_ = n.ln.Close()
	}
	n.mu.Lock()
	for _, c := range n.conns {
		_ = c.Close()
	}
	n.mu.Unlock()
	n.wg.Wait()
	return nil
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			return
		}
		go func() {
			conn, err := acceptLink(n.cfg.ID, c)
			if err != nil {
				if n.cfg.Logger != nil {
					n.cfg.Logger.Warn("inbound link refused at handshake",
						"self", n.cfg.ID, "remote", c.RemoteAddr().String(), "err", err)
				}
				_ = c.Close()
				return
			}
			if n.isPeer(conn.peer) {
				n.registerPeer(conn)
				return
			}
			n.register(conn)
		}()
	}
}

// register adds a client link and starts its read pump. A replaced conn
// (client reconnecting under the same ID) is closed, not just dropped:
// every Conn owns a flusher goroutine that only Close releases.
func (n *Node) register(conn *Conn) {
	if n.frameObs != nil {
		conn.observeFrames(n.frameObs)
	}
	n.mu.Lock()
	if old := n.conns[conn.peer]; old != nil && old != conn {
		_ = old.Close()
	}
	n.conns[conn.peer] = conn
	n.mu.Unlock()
	n.wg.Add(1)
	go n.readLoop(conn)
}

// registerPeer installs a broker-peer link (dialed or accepted): it
// replaces any previous conn to that peer, reports the link up to the
// overlay manager — which starts the sync handshake — and starts the
// gen-tagged read pump. Blocked peers (link-chaos hook) are refused.
func (n *Node) registerPeer(conn *Conn) {
	if n.frameObs != nil {
		conn.observeFrames(n.frameObs)
	}
	n.mu.Lock()
	if n.blocked[conn.peer] || n.isClosed() {
		n.mu.Unlock()
		_ = conn.Close()
		// A refused *dialed* conn must still report its attempt as
		// failed, or the manager — whose retry timer was consumed to
		// fire this dial — never schedules another and the link stays
		// degraded past HealLink. No-op for accepted conns (passive
		// links) and closed managers.
		n.ov.DialFailed(conn.peer)
		return
	}
	if old := n.conns[conn.peer]; old != nil && old != conn {
		_ = old.Close()
	}
	n.conns[conn.peer] = conn
	n.mu.Unlock()
	gen, ok := n.ov.LinkUp(conn.peer)
	if !ok {
		_ = conn.Close()
		return
	}
	n.wg.Add(1)
	go n.readPeerLoop(conn, gen)
}

// dialPeer is the overlay manager's Dial callback: one asynchronous
// attempt, reported back as LinkUp (via registerPeer) or DialFailed.
func (n *Node) dialPeer(peer message.NodeID) {
	go func() {
		n.mu.Lock()
		addr := n.peers[peer]
		refused := n.blocked[peer]
		n.mu.Unlock()
		if refused || n.isClosed() || addr == "" {
			n.ov.DialFailed(peer)
			return
		}
		c, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			n.ov.DialFailed(peer)
			return
		}
		conn, err := handshakeLink(n.cfg.ID, c)
		if err != nil {
			n.ov.DialFailed(peer) // handshakeLink closed the socket
			return
		}
		if conn.peer != peer {
			_ = conn.Close() // full Close: the conn's flusher is running
			n.ov.DialFailed(peer)
			return
		}
		n.registerPeer(conn)
	}()
}

// transmitPeer is the overlay manager's Transmit: encode on the peer's
// current conn.
func (n *Node) transmitPeer(peer message.NodeID, m proto.Message) error {
	n.mu.Lock()
	conn := n.conns[peer]
	n.mu.Unlock()
	if conn == nil {
		return errors.New("wire: no link")
	}
	return conn.Send(m)
}

func (n *Node) isClosed() bool {
	select {
	case <-n.done:
		return true
	default:
		return false
	}
}

// BlockPeer severs the link to a peer and refuses re-establishment —
// dials fail fast and inbound accepts are rejected — until UnblockPeer.
// This is the deterministic link-cut hook behind chaos tests: the overlay
// manager sees the loss immediately (closed conn), queues outbound
// traffic, and its redial loop heals the link as soon as the peer is
// unblocked.
func (n *Node) BlockPeer(peer message.NodeID) {
	n.mu.Lock()
	n.blocked[peer] = true
	conn := n.conns[peer]
	n.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
}

// UnblockPeer lifts a BlockPeer; the dialer side's backoff loop
// re-establishes the link.
func (n *Node) UnblockPeer(peer message.NodeID) {
	n.mu.Lock()
	delete(n.blocked, peer)
	n.mu.Unlock()
}

// LinkStates snapshots the overlay link state per peer.
func (n *Node) LinkStates() map[message.NodeID]overlay.State { return n.ov.States() }

// LinkInfo snapshots the overlay links (state, pending backlog, drops).
func (n *Node) LinkInfo() []overlay.LinkInfo { return n.ov.Info() }

// Ready reports overlay convergence — the node's /readyz gate: every
// configured overlay link is established (each establishment completes the
// sync handshake, so routing installs are applied before the link counts).
// A node with no peers is trivially ready. detail names the links still
// converging.
func (n *Node) Ready() (ok bool, detail string) {
	var waiting []string
	for _, li := range n.ov.Info() {
		switch {
		case li.State != overlay.StateEstablished:
			waiting = append(waiting, fmt.Sprintf("%s:%s", li.Peer, li.State))
		case li.SpillDepth > 0:
			// The handshake completed but the link is still replaying its
			// store-backed partition backlog: fresh traffic is ordered
			// behind it, so the node is not yet serving at full fidelity.
			waiting = append(waiting, fmt.Sprintf("%s:established,flushing(%d)", li.Peer, li.SpillDepth))
		}
	}
	if len(waiting) > 0 {
		return false, "links not established: " + strings.Join(waiting, ", ")
	}
	return true, fmt.Sprintf("%d link(s) established", len(n.ov.Info()))
}

// SetHeartbeat retunes the overlay supervision's heartbeat at runtime
// (the ops /config knob); see overlay.Manager.SetHeartbeat for the
// interval/timeout resolution rules.
func (n *Node) SetHeartbeat(interval, timeout time.Duration) {
	n.ov.SetHeartbeat(interval, timeout)
}

// Heartbeat returns the overlay supervision's current heartbeat interval
// and timeout.
func (n *Node) Heartbeat() (interval, timeout time.Duration) { return n.ov.Heartbeat() }

// readPeerLoop pumps a broker-peer link. Heartbeats (KPing/KPong) are
// handled here at the transport level — a busy event loop must not turn
// into a false link failure — while handshake messages (KHello,
// KSyncInstall) travel through the inbox so their routing-table work runs
// serialized on the event loop. Everything else is normal broker traffic.
func (n *Node) readPeerLoop(conn *Conn, gen uint64) {
	defer n.wg.Done()
	defer func() { _ = conn.Close() }() // release the conn's flusher goroutine
	dec := conn.dec
	for {
		var m proto.Message
		if err := dec.Decode(&m); err != nil {
			reason := "link closed"
			if !errors.Is(err, io.EOF) {
				reason = err.Error()
			}
			n.ov.LinkDown(conn.peer, gen, reason)
			return
		}
		switch m.Kind {
		case proto.KPing, proto.KPong:
			n.ov.HandleControl(conn.peer, gen, m)
			continue
		default:
			n.ov.Touch(conn.peer, gen)
		}
		select {
		case n.inbox <- inboxMsg{from: conn.peer, m: m, gen: gen}:
		case <-n.done:
			return
		}
	}
}

func (n *Node) readLoop(conn *Conn) {
	defer n.wg.Done()
	// Full Close, not just fc.close(): the pump exiting (client hung up)
	// must also release the conn's flusher goroutine.
	defer func() { _ = conn.Close() }()
	dec := conn.dec
	for {
		var m proto.Message
		if err := dec.Decode(&m); err != nil {
			if !errors.Is(err, io.EOF) {
				// Connection torn down; the broker's session layer deals
				// with absence via KDisconnect from clients.
			}
			return
		}
		// Flow control is transport-level: credits are consumed here, on
		// the link's own read pump, never via the inbox — a KCredit must
		// be able to unblock an event loop that is itself waiting on this
		// very link's window.
		switch {
		case m.Kind == proto.KCredit:
			conn.fc.grant(m.Credits)
			continue
		case m.Kind == proto.KConnect && m.Credits > 0:
			// Only clients send KConnect, so this link is a client link;
			// arm its delivery window before the broker sees the connect.
			conn.fc.enable(m.Credits)
		}
		select {
		case n.inbox <- inboxMsg{from: conn.peer, m: m}:
		case <-n.done:
			return
		}
	}
}

// eventLoop serializes all broker processing, including the overlay's
// sync-handshake work and the chain's link-transition notifications.
func (n *Node) eventLoop() {
	defer n.wg.Done()
	for {
		select {
		case im := <-n.inbox:
			m := im.m
			m.From = im.from
			if n.isPeer(im.from) && n.ov.HandleControl(im.from, im.gen, m) {
				continue
			}
			n.b.HandleMessage(im.from, m)
		case ev := <-n.linkEvents:
			n.b.NotifyLinkChange(ev)
		case fn := <-n.tasks:
			fn()
		case <-n.done:
			return
		}
	}
}

// Drain waits until the node's inbox is empty and the event loop has
// processed everything it already dequeued — the graceful-shutdown step
// between "stop taking new work" and "close the store": in-flight
// deliveries and buffer appends complete, so an fsync after Drain captures
// them. Returns true on quiescence, false when the timeout expired or the
// node closed first. New messages can still arrive while draining; Drain
// only guarantees a moment of observed emptiness.
func (n *Node) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if len(n.inbox) == 0 {
			// Round-trip through the event loop: everything dequeued
			// before this task has been fully processed.
			idle := false
			n.Inspect(func(*broker.Broker) { idle = len(n.inbox) == 0 })
			if idle {
				return true
			}
			select {
			case <-n.done:
				return false
			default:
			}
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Inspect runs fn on the node's event loop — the only safe way to read or
// mutate broker state while the node is serving. Blocks until fn returns
// (or the node is closed, in which case fn never runs).
func (n *Node) Inspect(fn func(b *broker.Broker)) {
	doneCh := make(chan struct{})
	select {
	case n.tasks <- func() { fn(n.b); close(doneCh) }:
		<-doneCh
	case <-n.done:
	}
}

// send implements the broker's Send. Broker-peer links go through the
// overlay manager: messages for a link that is down or mid-handshake queue
// in its bounded pending buffer and flush after the sync handshake, so a
// flapped or slow-starting neighbor loses nothing the queue can hold.
// Deliveries on a flow-controlled client link first take a credit, which
// blocks the event loop while the client's window is exhausted — the
// backpressure path of the Block overflow policy.
func (n *Node) send(to message.NodeID, m proto.Message) {
	if n.isPeer(to) {
		n.ov.Send(to, m)
		return
	}
	n.mu.Lock()
	conn, ok := n.conns[to]
	n.mu.Unlock()
	if !ok {
		return // client not (yet) linked; drop like a down link
	}
	if m.Kind == proto.KDeliver && !conn.fc.acquire() {
		return // link closed while waiting for credits
	}
	_ = conn.Send(m)
}

// DialLink connects to a remote node and performs the binary handshake,
// announcing `self` as the local ID.
func DialLink(self message.NodeID, addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return handshakeLink(self, c)
}

// writeBinaryHello emits the binary identification frame:
// magic, version byte, uvarint-length-prefixed node ID.
func writeBinaryHello(bw *bufio.Writer, self message.NodeID) error {
	if _, err := bw.Write(codec.Magic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(codec.Version); err != nil {
		return err
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(self)))
	if _, err := bw.Write(lenBuf[:n]); err != nil {
		return err
	}
	if _, err := bw.WriteString(string(self)); err != nil {
		return err
	}
	return bw.Flush()
}

// readBinaryHello parses the version byte and node ID of a binary hello
// whose magic has already been consumed, and returns the negotiated
// protocol version (min of both sides).
func readBinaryHello(br *bufio.Reader) (message.NodeID, byte, error) {
	ver, err := br.ReadByte()
	if err != nil {
		return "", 0, err
	}
	if ver == 0 {
		return "", 0, errors.New("wire: peer announced protocol version 0")
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", 0, err
	}
	if n > 1024 {
		return "", 0, fmt.Errorf("wire: absurd hello ID length %d", n)
	}
	id := make([]byte, n)
	if _, err := io.ReadFull(br, id); err != nil {
		return "", 0, err
	}
	if ver > codec.Version {
		ver = codec.Version
	}
	return message.NodeID(id), ver, nil
}

// errLegacyPeer names the one interop failure worth a precise message:
// a peer still speaking the gob encoding of the pre-binary releases. The
// fallback was removed after its one-release grace period — upgrade the
// peer; mixed gob/binary deployments are no longer supported.
var errLegacyPeer = errors.New("wire: peer does not speak the binary protocol " +
	"(a legacy gob-encoding node? the gob fallback was removed — upgrade the peer to the binary wire codec)")

// handshakeLink runs the active side of the identification handshake on
// an established TCP connection: send our hello, expect the peer's
// binary hello back.
func handshakeLink(self message.NodeID, c net.Conn) (*Conn, error) {
	bw := bufio.NewWriter(c)
	br := bufio.NewReader(c)
	if err := writeBinaryHello(bw, self); err != nil {
		_ = c.Close()
		return nil, fmt.Errorf("wire: handshake send: %w", err)
	}
	magic := make([]byte, len(codec.Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		_ = c.Close()
		return nil, fmt.Errorf("wire: handshake recv: %w", err)
	}
	if !bytes.Equal(magic, codec.Magic[:]) {
		_ = c.Close()
		return nil, errLegacyPeer
	}
	peer, ver, err := readBinaryHello(br)
	if err != nil {
		_ = c.Close()
		return nil, fmt.Errorf("wire: handshake recv: %w", err)
	}
	// The encoder emits what the negotiated version can decode: fields
	// gated on newer flag bits (the traced hop trail) are stripped for
	// older peers.
	return newConn(peer, c, ver, bw, codec.NewEncoderVersion(bw, ver), codec.NewDecoder(br)), nil
}

// acceptLink performs the passive side of the handshake. The stream must
// open with codec.Magic; anything else — in particular a legacy gob
// hello — is refused with a diagnosis rather than left to time out.
func acceptLink(self message.NodeID, c net.Conn) (*Conn, error) {
	br := bufio.NewReader(c)
	bw := bufio.NewWriter(c)
	magic := make([]byte, len(codec.Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("wire: handshake recv: %w", err)
	}
	if !bytes.Equal(magic, codec.Magic[:]) {
		return nil, errLegacyPeer
	}
	peer, ver, err := readBinaryHello(br)
	if err != nil {
		return nil, fmt.Errorf("wire: handshake recv: %w", err)
	}
	if err := writeBinaryHello(bw, self); err != nil {
		return nil, fmt.Errorf("wire: handshake send: %w", err)
	}
	return newConn(peer, c, ver, bw, codec.NewEncoderVersion(bw, ver), codec.NewDecoder(br)), nil
}

// DefaultWindow is the delivery window a RemoteClient announces when none
// is configured: the border broker keeps at most this many deliveries in
// flight ahead of the application's consumption.
const DefaultWindow = 64

// RemoteClient runs a client library over a TCP link to a border broker —
// the "local broker … loaded into the clients" of §2, wire edition.
// Deliveries are credit flow controlled: the Connect announces a window,
// and the pump grants one credit back per delivery the onDeliver callback
// has fully consumed — a callback that blocks (a full Block-policy stream)
// therefore stalls the broker's deliveries to this client after at most
// Window in-flight notifications.
type RemoteClient struct {
	ID message.NodeID
	// Window is the delivery credit window announced on Connect
	// (0 = DefaultWindow, negative = disable flow control).
	Window int

	mu        sync.Mutex
	conn      *Conn
	onDeliver func(n message.Notification, subs []message.SubID)
	wg        sync.WaitGroup
}

// NewRemoteClient creates a client host. onDeliver observes deliveries
// together with the subscription identities matched at the border (may be
// nil). Credit flow control grants the next delivery only after onDeliver
// returns.
func NewRemoteClient(id message.NodeID, onDeliver func(n message.Notification, subs []message.SubID)) *RemoteClient {
	return &RemoteClient{ID: id, onDeliver: onDeliver}
}

func (r *RemoteClient) window() int {
	switch {
	case r.Window < 0:
		return 0
	case r.Window == 0:
		return DefaultWindow
	default:
		return r.Window
	}
}

// Connect dials a border broker and starts the delivery pump. epoch is the
// client's monotonic connect counter (see proto.Message.Epoch); pass an
// incremented value on every connect.
func (r *RemoteClient) Connect(addr string, prev message.NodeID, profile []proto.Subscription, epoch uint64) error {
	conn, err := DialLink(r.ID, addr)
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.conn = conn
	r.mu.Unlock()
	r.wg.Add(1)
	go r.pump(conn)
	return conn.Send(proto.Message{
		Kind: proto.KConnect, Client: r.ID, Origin: prev, Subs: profile, Epoch: epoch,
		Credits: r.window(),
	})
}

func (r *RemoteClient) pump(conn *Conn) {
	defer r.wg.Done()
	defer func() { _ = conn.Close() }() // broker hung up: release the flusher
	window := r.window()
	// Credits are granted in chunks of half the window rather than one
	// per delivery: the broker never fully drains its window before the
	// first grant arrives, and the credit traffic is window/2-fold
	// cheaper than per-delivery acks.
	grantAt := window / 2
	if grantAt < 1 {
		grantAt = 1
	}
	consumed := 0
	dec := conn.dec
	for {
		var m proto.Message
		if err := dec.Decode(&m); err != nil {
			return
		}
		if m.Kind != proto.KDeliver || m.Note == nil {
			continue
		}
		if r.onDeliver != nil {
			r.onDeliver(*m.Note, m.SubIDs)
		}
		if window > 0 {
			// The delivery has been consumed (or buffered) end to end;
			// hand the broker its credits back.
			if consumed++; consumed >= grantAt {
				_ = conn.Send(proto.Message{Kind: proto.KCredit, Client: r.ID, Credits: consumed})
				consumed = 0
			}
		}
	}
}

// Send transmits an arbitrary client message (publish, subscribe, …).
func (r *RemoteClient) Send(m proto.Message) error {
	r.mu.Lock()
	conn := r.conn
	r.mu.Unlock()
	if conn == nil {
		return errors.New("wire: client not connected")
	}
	return conn.Send(m)
}

// Disconnect announces departure and closes the link.
func (r *RemoteClient) Disconnect() error {
	r.mu.Lock()
	conn := r.conn
	r.conn = nil
	r.mu.Unlock()
	if conn == nil {
		return nil
	}
	err := conn.Send(proto.Message{Kind: proto.KDisconnect, Client: r.ID})
	_ = conn.Close()
	r.wg.Wait()
	return err
}
