// Package wire runs the middleware over real TCP links: the same broker
// state machines the simulator drives, fed from gob-encoded streams. It
// provides the live deployment mode used by cmd/rebeca-broker — one process
// per broker, point-to-point TCP connections between neighbors (§2), and a
// Dialer for remote clients.
//
// TCP gives the FIFO per-link guarantee the algorithms assume; a per-node
// inbox goroutine serializes HandleMessage calls, preserving the atomic
// routing-decision requirement of §2.
package wire

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"rebeca/internal/broker"
	"rebeca/internal/message"
	"rebeca/internal/proto"
	"rebeca/internal/routing"
)

// hello is the link handshake: each side announces its node ID.
type hello struct {
	ID message.NodeID
}

// envelope frames a message on the wire.
type envelope struct {
	M proto.Message
}

// inboxMsg pairs a received message with its link.
type inboxMsg struct {
	from message.NodeID
	m    proto.Message
}

// Conn is one established, identified link.
type Conn struct {
	peer message.NodeID
	c    net.Conn
	enc  *gob.Encoder
	mu   sync.Mutex
}

// Peer returns the remote node's announced ID.
func (c *Conn) Peer() message.NodeID { return c.peer }

// Send encodes one message onto the link. Safe for concurrent use.
func (c *Conn) Send(m proto.Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.enc.Encode(envelope{M: m})
}

// Close tears the link down.
func (c *Conn) Close() error { return c.c.Close() }

// NodeConfig assembles a live broker node.
type NodeConfig struct {
	// ID names this broker.
	ID message.NodeID
	// Listen is the TCP address to accept links on (e.g. ":7471").
	Listen string
	// Peers maps neighbor broker IDs to their dial addresses. Only one
	// side of each overlay edge needs to dial; the other accepts.
	Peers map[message.NodeID]string
	// Strategy selects the routing algorithm.
	Strategy routing.Strategy
	// NextHop is the unicast routing table (destination -> neighbor).
	NextHop map[message.NodeID]message.NodeID
	// Middleware is appended to the broker's extension chain at Start,
	// after any session-layer plugins attached via Broker() — the same
	// chain position the simulator gives it. Stages shared between several
	// live nodes must be safe for concurrent use (one event loop each).
	Middleware []broker.Middleware
}

// Node is a live broker process host.
type Node struct {
	cfg NodeConfig
	b   *broker.Broker
	ln  net.Listener

	mu    sync.Mutex
	conns map[message.NodeID]*Conn

	inbox chan inboxMsg
	tasks chan func()
	done  chan struct{}
	wg    sync.WaitGroup
}

// NewNode creates a node and its broker (not yet serving).
func NewNode(cfg NodeConfig) *Node {
	n := &Node{
		cfg:   cfg,
		conns: make(map[message.NodeID]*Conn),
		inbox: make(chan inboxMsg, 1024),
		tasks: make(chan func()),
		done:  make(chan struct{}),
	}
	peers := make([]message.NodeID, 0, len(cfg.Peers))
	for p := range cfg.Peers {
		peers = append(peers, p)
	}
	n.b = broker.New(broker.Config{
		ID:       cfg.ID,
		Peers:    peers,
		Strategy: cfg.Strategy,
		Send:     n.send,
		NextHop:  cfg.NextHop,
	})
	return n
}

// Broker exposes the hosted broker so callers can attach plugins (mobility
// manager, replicator) before Start.
func (n *Node) Broker() *broker.Broker { return n.b }

// Start listens, dials peers, and runs the event loop.
func (n *Node) Start() error {
	n.b.UseMiddleware(n.cfg.Middleware...)
	ln, err := net.Listen("tcp", n.cfg.Listen)
	if err != nil {
		return fmt.Errorf("wire: listen %s: %w", n.cfg.Listen, err)
	}
	n.ln = ln
	n.wg.Add(2)
	go n.acceptLoop()
	go n.eventLoop()
	for peer, addr := range n.cfg.Peers {
		if addr == "" {
			continue // passive side: the peer dials us
		}
		conn, err := DialLink(n.cfg.ID, addr)
		if err != nil {
			_ = n.Close()
			return fmt.Errorf("wire: dial peer %s at %s: %w", peer, addr, err)
		}
		n.register(conn)
	}
	return nil
}

// Addr returns the bound listen address.
func (n *Node) Addr() string {
	if n.ln == nil {
		return ""
	}
	return n.ln.Addr().String()
}

// Close stops the node and all links.
func (n *Node) Close() error {
	select {
	case <-n.done:
		return nil
	default:
	}
	close(n.done)
	if n.ln != nil {
		_ = n.ln.Close()
	}
	n.mu.Lock()
	for _, c := range n.conns {
		_ = c.Close()
	}
	n.mu.Unlock()
	n.wg.Wait()
	return nil
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			return
		}
		go func() {
			conn, err := acceptLink(n.cfg.ID, c)
			if err != nil {
				_ = c.Close()
				return
			}
			n.register(conn)
		}()
	}
}

// register adds a link and starts its read pump.
func (n *Node) register(conn *Conn) {
	n.mu.Lock()
	n.conns[conn.peer] = conn
	n.mu.Unlock()
	n.wg.Add(1)
	go n.readLoop(conn)
}

func (n *Node) readLoop(conn *Conn) {
	defer n.wg.Done()
	dec := gob.NewDecoder(conn.c)
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			if !errors.Is(err, io.EOF) {
				// Connection torn down; the broker's session layer deals
				// with absence via KDisconnect from clients.
			}
			return
		}
		select {
		case n.inbox <- inboxMsg{from: conn.peer, m: env.M}:
		case <-n.done:
			return
		}
	}
}

// eventLoop serializes all broker processing.
func (n *Node) eventLoop() {
	defer n.wg.Done()
	for {
		select {
		case im := <-n.inbox:
			m := im.m
			m.From = im.from
			n.b.HandleMessage(im.from, m)
		case fn := <-n.tasks:
			fn()
		case <-n.done:
			return
		}
	}
}

// Inspect runs fn on the node's event loop — the only safe way to read or
// mutate broker state while the node is serving. Blocks until fn returns
// (or the node is closed, in which case fn never runs).
func (n *Node) Inspect(fn func(b *broker.Broker)) {
	doneCh := make(chan struct{})
	select {
	case n.tasks <- func() { fn(n.b); close(doneCh) }:
		<-doneCh
	case <-n.done:
	}
}

// send implements the broker's Send: look up the link and encode.
func (n *Node) send(to message.NodeID, m proto.Message) {
	n.mu.Lock()
	conn, ok := n.conns[to]
	n.mu.Unlock()
	if !ok {
		return // neighbor not (yet) linked; drop like a down link
	}
	_ = conn.Send(m)
}

// DialLink connects to a remote node and performs the handshake, announcing
// `self` as the local ID.
func DialLink(self message.NodeID, addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	enc := gob.NewEncoder(c)
	if err := enc.Encode(hello{ID: self}); err != nil {
		_ = c.Close()
		return nil, fmt.Errorf("wire: handshake send: %w", err)
	}
	var h hello
	if err := gob.NewDecoder(c).Decode(&h); err != nil {
		_ = c.Close()
		return nil, fmt.Errorf("wire: handshake recv: %w", err)
	}
	return &Conn{peer: h.ID, c: c, enc: enc}, nil
}

// acceptLink performs the passive side of the handshake.
func acceptLink(self message.NodeID, c net.Conn) (*Conn, error) {
	var h hello
	if err := gob.NewDecoder(c).Decode(&h); err != nil {
		return nil, fmt.Errorf("wire: handshake recv: %w", err)
	}
	enc := gob.NewEncoder(c)
	if err := enc.Encode(hello{ID: self}); err != nil {
		return nil, fmt.Errorf("wire: handshake send: %w", err)
	}
	return &Conn{peer: h.ID, c: c, enc: enc}, nil
}

// RemoteClient runs a client library over a TCP link to a border broker —
// the "local broker … loaded into the clients" of §2, wire edition.
type RemoteClient struct {
	ID message.NodeID

	mu     sync.Mutex
	conn   *Conn
	notify func(n message.Notification)
	wg     sync.WaitGroup
}

// NewRemoteClient creates a client host. onNotify observes deliveries (may
// be nil).
func NewRemoteClient(id message.NodeID, onNotify func(message.Notification)) *RemoteClient {
	return &RemoteClient{ID: id, notify: onNotify}
}

// Connect dials a border broker and starts the delivery pump. epoch is the
// client's monotonic connect counter (see proto.Message.Epoch); pass an
// incremented value on every connect.
func (r *RemoteClient) Connect(addr string, prev message.NodeID, profile []proto.Subscription, epoch uint64) error {
	conn, err := DialLink(r.ID, addr)
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.conn = conn
	r.mu.Unlock()
	r.wg.Add(1)
	go r.pump(conn)
	return conn.Send(proto.Message{
		Kind: proto.KConnect, Client: r.ID, Origin: prev, Subs: profile, Epoch: epoch,
	})
}

func (r *RemoteClient) pump(conn *Conn) {
	defer r.wg.Done()
	dec := gob.NewDecoder(conn.c)
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			return
		}
		if env.M.Kind == proto.KDeliver && env.M.Note != nil && r.notify != nil {
			r.notify(*env.M.Note)
		}
	}
}

// Send transmits an arbitrary client message (publish, subscribe, …).
func (r *RemoteClient) Send(m proto.Message) error {
	r.mu.Lock()
	conn := r.conn
	r.mu.Unlock()
	if conn == nil {
		return errors.New("wire: client not connected")
	}
	return conn.Send(m)
}

// Disconnect announces departure and closes the link.
func (r *RemoteClient) Disconnect() error {
	r.mu.Lock()
	conn := r.conn
	r.conn = nil
	r.mu.Unlock()
	if conn == nil {
		return nil
	}
	err := conn.Send(proto.Message{Kind: proto.KDisconnect, Client: r.ID})
	_ = conn.Close()
	r.wg.Wait()
	return err
}
