// Package wire runs the middleware over real TCP links: the same broker
// state machines the simulator drives, fed from gob-encoded streams. It
// provides the live deployment mode used by cmd/rebeca-broker — one process
// per broker, point-to-point TCP connections between neighbors (§2), and a
// Dialer for remote clients.
//
// TCP gives the FIFO per-link guarantee the algorithms assume; a per-node
// inbox goroutine serializes HandleMessage calls, preserving the atomic
// routing-decision requirement of §2.
package wire

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"rebeca/internal/broker"
	"rebeca/internal/message"
	"rebeca/internal/proto"
	"rebeca/internal/routing"
)

// hello is the link handshake: each side announces its node ID.
type hello struct {
	ID message.NodeID
}

// envelope frames a message on the wire.
type envelope struct {
	M proto.Message
}

// inboxMsg pairs a received message with its link.
type inboxMsg struct {
	from message.NodeID
	m    proto.Message
}

// flowState is the broker-side half of the credit-based delivery flow
// control on a client link: the client's KConnect announces a delivery
// window, every KDeliver consumes one credit, and the client grants
// credits back (KCredit) as its application consumes the deliveries. At
// zero credits the sender blocks — on a live node that is the broker's
// event loop, so a stalled consumer exerts backpressure through the
// overlay's TCP links all the way to the publisher.
type flowState struct {
	mu      sync.Mutex
	cond    *sync.Cond
	enabled bool
	credits int
	closed  bool
}

func newFlowState() *flowState {
	f := &flowState{}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// enable arms the window. Called from the link's read pump when a KConnect
// announces a credit window.
func (f *flowState) enable(window int) {
	f.mu.Lock()
	f.enabled = true
	f.credits = window
	f.mu.Unlock()
	f.cond.Broadcast()
}

// grant adds credits (KCredit from the client).
func (f *flowState) grant(n int) {
	f.mu.Lock()
	f.credits += n
	f.mu.Unlock()
	f.cond.Broadcast()
}

// acquire takes one delivery credit, blocking while the window is empty.
// It returns false when the link closed instead.
func (f *flowState) acquire() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for f.enabled && f.credits <= 0 && !f.closed {
		f.cond.Wait()
	}
	if f.closed {
		return false
	}
	if f.enabled {
		f.credits--
	}
	return true
}

// close releases all waiters (link teardown).
func (f *flowState) close() {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	f.cond.Broadcast()
}

// Conn is one established, identified link.
type Conn struct {
	peer message.NodeID
	c    net.Conn
	enc  *gob.Encoder
	mu   sync.Mutex
	fc   *flowState
}

// Peer returns the remote node's announced ID.
func (c *Conn) Peer() message.NodeID { return c.peer }

// Send encodes one message onto the link. Safe for concurrent use.
func (c *Conn) Send(m proto.Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.enc.Encode(envelope{M: m})
}

// Close tears the link down, releasing any sender blocked on credits.
func (c *Conn) Close() error {
	c.fc.close()
	return c.c.Close()
}

// NodeConfig assembles a live broker node.
type NodeConfig struct {
	// ID names this broker.
	ID message.NodeID
	// Listen is the TCP address to accept links on (e.g. ":7471").
	Listen string
	// Peers maps neighbor broker IDs to their dial addresses. Only one
	// side of each overlay edge needs to dial; the other accepts.
	Peers map[message.NodeID]string
	// Strategy selects the routing algorithm.
	Strategy routing.Strategy
	// NextHop is the unicast routing table (destination -> neighbor).
	NextHop map[message.NodeID]message.NodeID
	// Middleware is appended to the broker's extension chain at Start,
	// after any session-layer plugins attached via Broker() — the same
	// chain position the simulator gives it. Stages shared between several
	// live nodes must be safe for concurrent use (one event loop each).
	Middleware []broker.Middleware
}

// Node is a live broker process host.
type Node struct {
	cfg NodeConfig
	b   *broker.Broker
	ln  net.Listener

	mu    sync.Mutex
	conns map[message.NodeID]*Conn

	inbox chan inboxMsg
	tasks chan func()
	done  chan struct{}
	wg    sync.WaitGroup
}

// NewNode creates a node and its broker (not yet serving).
func NewNode(cfg NodeConfig) *Node {
	n := &Node{
		cfg:   cfg,
		conns: make(map[message.NodeID]*Conn),
		inbox: make(chan inboxMsg, 1024),
		tasks: make(chan func()),
		done:  make(chan struct{}),
	}
	peers := make([]message.NodeID, 0, len(cfg.Peers))
	for p := range cfg.Peers {
		peers = append(peers, p)
	}
	n.b = broker.New(broker.Config{
		ID:       cfg.ID,
		Peers:    peers,
		Strategy: cfg.Strategy,
		Send:     n.send,
		NextHop:  cfg.NextHop,
	})
	return n
}

// Broker exposes the hosted broker so callers can attach plugins (mobility
// manager, replicator) before Start.
func (n *Node) Broker() *broker.Broker { return n.b }

// Start listens, dials peers, and runs the event loop.
func (n *Node) Start() error {
	n.b.UseMiddleware(n.cfg.Middleware...)
	ln, err := net.Listen("tcp", n.cfg.Listen)
	if err != nil {
		return fmt.Errorf("wire: listen %s: %w", n.cfg.Listen, err)
	}
	n.ln = ln
	n.wg.Add(2)
	go n.acceptLoop()
	go n.eventLoop()
	for peer, addr := range n.cfg.Peers {
		if addr == "" {
			continue // passive side: the peer dials us
		}
		conn, err := DialLink(n.cfg.ID, addr)
		if err != nil {
			_ = n.Close()
			return fmt.Errorf("wire: dial peer %s at %s: %w", peer, addr, err)
		}
		n.register(conn)
	}
	return nil
}

// Addr returns the bound listen address.
func (n *Node) Addr() string {
	if n.ln == nil {
		return ""
	}
	return n.ln.Addr().String()
}

// Close stops the node and all links.
func (n *Node) Close() error {
	select {
	case <-n.done:
		return nil
	default:
	}
	close(n.done)
	if n.ln != nil {
		_ = n.ln.Close()
	}
	n.mu.Lock()
	for _, c := range n.conns {
		_ = c.Close()
	}
	n.mu.Unlock()
	n.wg.Wait()
	return nil
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			return
		}
		go func() {
			conn, err := acceptLink(n.cfg.ID, c)
			if err != nil {
				_ = c.Close()
				return
			}
			n.register(conn)
		}()
	}
}

// register adds a link and starts its read pump.
func (n *Node) register(conn *Conn) {
	n.mu.Lock()
	n.conns[conn.peer] = conn
	n.mu.Unlock()
	n.wg.Add(1)
	go n.readLoop(conn)
}

func (n *Node) readLoop(conn *Conn) {
	defer n.wg.Done()
	defer conn.fc.close()
	dec := gob.NewDecoder(conn.c)
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			if !errors.Is(err, io.EOF) {
				// Connection torn down; the broker's session layer deals
				// with absence via KDisconnect from clients.
			}
			return
		}
		// Flow control is transport-level: credits are consumed here, on
		// the link's own read pump, never via the inbox — a KCredit must
		// be able to unblock an event loop that is itself waiting on this
		// very link's window.
		switch {
		case env.M.Kind == proto.KCredit:
			conn.fc.grant(env.M.Credits)
			continue
		case env.M.Kind == proto.KConnect && env.M.Credits > 0:
			// Only clients send KConnect, so this link is a client link;
			// arm its delivery window before the broker sees the connect.
			conn.fc.enable(env.M.Credits)
		}
		select {
		case n.inbox <- inboxMsg{from: conn.peer, m: env.M}:
		case <-n.done:
			return
		}
	}
}

// eventLoop serializes all broker processing.
func (n *Node) eventLoop() {
	defer n.wg.Done()
	for {
		select {
		case im := <-n.inbox:
			m := im.m
			m.From = im.from
			n.b.HandleMessage(im.from, m)
		case fn := <-n.tasks:
			fn()
		case <-n.done:
			return
		}
	}
}

// Drain waits until the node's inbox is empty and the event loop has
// processed everything it already dequeued — the graceful-shutdown step
// between "stop taking new work" and "close the store": in-flight
// deliveries and buffer appends complete, so an fsync after Drain captures
// them. Returns true on quiescence, false when the timeout expired or the
// node closed first. New messages can still arrive while draining; Drain
// only guarantees a moment of observed emptiness.
func (n *Node) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if len(n.inbox) == 0 {
			// Round-trip through the event loop: everything dequeued
			// before this task has been fully processed.
			idle := false
			n.Inspect(func(*broker.Broker) { idle = len(n.inbox) == 0 })
			if idle {
				return true
			}
			select {
			case <-n.done:
				return false
			default:
			}
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Inspect runs fn on the node's event loop — the only safe way to read or
// mutate broker state while the node is serving. Blocks until fn returns
// (or the node is closed, in which case fn never runs).
func (n *Node) Inspect(fn func(b *broker.Broker)) {
	doneCh := make(chan struct{})
	select {
	case n.tasks <- func() { fn(n.b); close(doneCh) }:
		<-doneCh
	case <-n.done:
	}
}

// send implements the broker's Send: look up the link and encode.
// Deliveries on a flow-controlled client link first take a credit, which
// blocks the event loop while the client's window is exhausted — the
// backpressure path of the Block overflow policy.
func (n *Node) send(to message.NodeID, m proto.Message) {
	n.mu.Lock()
	conn, ok := n.conns[to]
	n.mu.Unlock()
	if !ok {
		return // neighbor not (yet) linked; drop like a down link
	}
	if m.Kind == proto.KDeliver && !conn.fc.acquire() {
		return // link closed while waiting for credits
	}
	_ = conn.Send(m)
}

// DialLink connects to a remote node and performs the handshake, announcing
// `self` as the local ID.
func DialLink(self message.NodeID, addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	enc := gob.NewEncoder(c)
	if err := enc.Encode(hello{ID: self}); err != nil {
		_ = c.Close()
		return nil, fmt.Errorf("wire: handshake send: %w", err)
	}
	var h hello
	if err := gob.NewDecoder(c).Decode(&h); err != nil {
		_ = c.Close()
		return nil, fmt.Errorf("wire: handshake recv: %w", err)
	}
	return &Conn{peer: h.ID, c: c, enc: enc, fc: newFlowState()}, nil
}

// acceptLink performs the passive side of the handshake.
func acceptLink(self message.NodeID, c net.Conn) (*Conn, error) {
	var h hello
	if err := gob.NewDecoder(c).Decode(&h); err != nil {
		return nil, fmt.Errorf("wire: handshake recv: %w", err)
	}
	enc := gob.NewEncoder(c)
	if err := enc.Encode(hello{ID: self}); err != nil {
		return nil, fmt.Errorf("wire: handshake send: %w", err)
	}
	return &Conn{peer: h.ID, c: c, enc: enc, fc: newFlowState()}, nil
}

// DefaultWindow is the delivery window a RemoteClient announces when none
// is configured: the border broker keeps at most this many deliveries in
// flight ahead of the application's consumption.
const DefaultWindow = 64

// RemoteClient runs a client library over a TCP link to a border broker —
// the "local broker … loaded into the clients" of §2, wire edition.
// Deliveries are credit flow controlled: the Connect announces a window,
// and the pump grants one credit back per delivery the onDeliver callback
// has fully consumed — a callback that blocks (a full Block-policy stream)
// therefore stalls the broker's deliveries to this client after at most
// Window in-flight notifications.
type RemoteClient struct {
	ID message.NodeID
	// Window is the delivery credit window announced on Connect
	// (0 = DefaultWindow, negative = disable flow control).
	Window int

	mu        sync.Mutex
	conn      *Conn
	onDeliver func(n message.Notification, subs []message.SubID)
	wg        sync.WaitGroup
}

// NewRemoteClient creates a client host. onDeliver observes deliveries
// together with the subscription identities matched at the border (may be
// nil). Credit flow control grants the next delivery only after onDeliver
// returns.
func NewRemoteClient(id message.NodeID, onDeliver func(n message.Notification, subs []message.SubID)) *RemoteClient {
	return &RemoteClient{ID: id, onDeliver: onDeliver}
}

func (r *RemoteClient) window() int {
	switch {
	case r.Window < 0:
		return 0
	case r.Window == 0:
		return DefaultWindow
	default:
		return r.Window
	}
}

// Connect dials a border broker and starts the delivery pump. epoch is the
// client's monotonic connect counter (see proto.Message.Epoch); pass an
// incremented value on every connect.
func (r *RemoteClient) Connect(addr string, prev message.NodeID, profile []proto.Subscription, epoch uint64) error {
	conn, err := DialLink(r.ID, addr)
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.conn = conn
	r.mu.Unlock()
	r.wg.Add(1)
	go r.pump(conn)
	return conn.Send(proto.Message{
		Kind: proto.KConnect, Client: r.ID, Origin: prev, Subs: profile, Epoch: epoch,
		Credits: r.window(),
	})
}

func (r *RemoteClient) pump(conn *Conn) {
	defer r.wg.Done()
	window := r.window()
	// Credits are granted in chunks of half the window rather than one
	// per delivery: the broker never fully drains its window before the
	// first grant arrives, and the credit traffic is window/2-fold
	// cheaper than per-delivery acks.
	grantAt := window / 2
	if grantAt < 1 {
		grantAt = 1
	}
	consumed := 0
	dec := gob.NewDecoder(conn.c)
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			return
		}
		if env.M.Kind != proto.KDeliver || env.M.Note == nil {
			continue
		}
		if r.onDeliver != nil {
			r.onDeliver(*env.M.Note, env.M.SubIDs)
		}
		if window > 0 {
			// The delivery has been consumed (or buffered) end to end;
			// hand the broker its credits back.
			if consumed++; consumed >= grantAt {
				_ = conn.Send(proto.Message{Kind: proto.KCredit, Client: r.ID, Credits: consumed})
				consumed = 0
			}
		}
	}
}

// Send transmits an arbitrary client message (publish, subscribe, …).
func (r *RemoteClient) Send(m proto.Message) error {
	r.mu.Lock()
	conn := r.conn
	r.mu.Unlock()
	if conn == nil {
		return errors.New("wire: client not connected")
	}
	return conn.Send(m)
}

// Disconnect announces departure and closes the link.
func (r *RemoteClient) Disconnect() error {
	r.mu.Lock()
	conn := r.conn
	r.conn = nil
	r.mu.Unlock()
	if conn == nil {
		return nil
	}
	err := conn.Send(proto.Message{Kind: proto.KDisconnect, Client: r.ID})
	_ = conn.Close()
	r.wg.Wait()
	return err
}
