package wire

import (
	"net"
	"sync"
	"testing"
	"time"

	"rebeca/internal/broker"
	"rebeca/internal/filter"
	"rebeca/internal/message"
	"rebeca/internal/mobility"
	"rebeca/internal/overlay"
	"rebeca/internal/proto"
	"rebeca/internal/routing"
	"rebeca/internal/store"
)

// fastOverlay keeps live-test reconnects snappy.
func fastOverlay() overlay.Settings {
	return overlay.Settings{
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  200 * time.Millisecond,
		BackoffBase:       20 * time.Millisecond,
		BackoffMax:        150 * time.Millisecond,
	}
}

// reserveAddr grabs a loopback port and releases it for a node to bind.
// The tiny window between Close and the node's Listen is the standard
// test-only race; SO_REUSEADDR makes rebinding reliable in practice.
func reserveAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr
}

// TestStartOrderActiveSideFirst is the -dial regression: the dialing
// (active) side boots first, its initial dial fails — which must NOT be
// fatal — and the backoff loop connects once the passive side appears.
func TestStartOrderActiveSideFirst(t *testing.T) {
	addrA := reserveAddr(t)

	// B dials A, but A is not up yet.
	b := NewNode(NodeConfig{
		ID:       "B",
		Listen:   "127.0.0.1:0",
		Peers:    map[message.NodeID]string{"A": addrA},
		Strategy: routing.StrategySimple,
		NextHop:  map[message.NodeID]message.NodeID{"A": "A"},
		Overlay:  fastOverlay(),
	})
	if err := b.Start(); err != nil {
		t.Fatalf("active-side-first Start must not fail on a dead peer: %v", err)
	}
	t.Cleanup(func() { _ = b.Close() })

	// Give the first dial time to fail, then boot the passive side.
	time.Sleep(50 * time.Millisecond)
	a := NewNode(NodeConfig{
		ID:       "A",
		Listen:   addrA,
		Peers:    map[message.NodeID]string{"B": ""},
		Strategy: routing.StrategySimple,
		NextHop:  map[message.NodeID]message.NodeID{"B": "B"},
		Overlay:  fastOverlay(),
	})
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })

	waitFor(t, func() bool {
		return b.LinkStates()["A"] == overlay.StateEstablished &&
			a.LinkStates()["B"] == overlay.StateEstablished
	}, "link establishment after late passive boot")

	// Traffic flows end to end: subscribe at B, publish at A.
	var mu sync.Mutex
	got := 0
	sub := NewRemoteClient("sub", func(message.Notification, []message.SubID) {
		mu.Lock()
		got++
		mu.Unlock()
	})
	if err := sub.Connect(b.Addr(), "", nil, 1); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sub.Disconnect() }()
	f := filter.New(filter.Eq("k", message.Int(1)))
	s := proto.Subscription{ID: "sub/s1", Filter: f}
	_ = sub.Send(proto.Message{Kind: proto.KSubscribe, Client: "sub", Sub: &s})
	waitFor(t, func() bool {
		n := 0
		a.Inspect(func(br *broker.Broker) { n = br.Router().Table().Len() })
		return n >= 1
	}, "subscription at the late-started broker")

	pub := NewRemoteClient("pub", nil)
	if err := pub.Connect(a.Addr(), "", nil, 1); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pub.Disconnect() }()
	n := message.NewNotification(map[string]message.Value{"k": message.Int(1)})
	n.ID = message.NotificationID{Publisher: "pub", Seq: 1}
	_ = pub.Send(proto.Message{Kind: proto.KPublish, Client: "pub", Note: &n})
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return got == 1 }, "delivery across the healed link")
}

// TestSubscribeBeforeLinkEstablishedReplays: a subscription installed
// while the overlay link is still down must reach the peer through the
// sync handshake's install replay.
func TestSubscribeBeforeLinkEstablishedReplays(t *testing.T) {
	addrA := reserveAddr(t)
	b := NewNode(NodeConfig{
		ID:       "B",
		Listen:   "127.0.0.1:0",
		Peers:    map[message.NodeID]string{"A": addrA},
		Strategy: routing.StrategySimple,
		NextHop:  map[message.NodeID]message.NodeID{"A": "A"},
		Overlay:  fastOverlay(),
	})
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() })

	// Subscribe at B while A is down: the forward to A queues.
	sub := NewRemoteClient("sub", nil)
	if err := sub.Connect(b.Addr(), "", nil, 1); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sub.Disconnect() }()
	f := filter.New(filter.Eq("k", message.Int(2)))
	s := proto.Subscription{ID: "sub/s1", Filter: f}
	_ = sub.Send(proto.Message{Kind: proto.KSubscribe, Client: "sub", Sub: &s})
	waitFor(t, func() bool {
		n := 0
		b.Inspect(func(br *broker.Broker) { n = br.Router().Table().Len() })
		return n >= 1
	}, "local install at B")

	a := NewNode(NodeConfig{
		ID:       "A",
		Listen:   addrA,
		Peers:    map[message.NodeID]string{"B": ""},
		Strategy: routing.StrategySimple,
		NextHop:  map[message.NodeID]message.NodeID{"B": "B"},
		Overlay:  fastOverlay(),
	})
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })

	waitFor(t, func() bool {
		n := 0
		a.Inspect(func(br *broker.Broker) { n = br.Router().Table().Len() })
		return n >= 1
	}, "install replay to the late broker")
}

// middleNode boots the middle broker of the A-B-C line (both edges
// passive: A and C dial B, so a restarted B is redialed by its
// neighbors). A WAL on dir makes it the ISSUE's restarted-on-the-same-
// WAL-dir broker; its mobility manager recovers durable sessions.
func middleNode(t *testing.T, addrB, dir string) *Node {
	t.Helper()
	st, err := store.OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	node := NewNode(NodeConfig{
		ID:       "B",
		Listen:   addrB,
		Peers:    map[message.NodeID]string{"A": "", "C": ""},
		Strategy: routing.StrategySimple,
		NextHop:  map[message.NodeID]message.NodeID{"A": "A", "C": "C"},
		Overlay:  fastOverlay(),
	})
	mgr := mobility.New(node.Broker(), mobility.ModeTransparent, mobility.WithStore(st))
	if err := node.Start(); err != nil {
		t.Fatal(err)
	}
	node.Inspect(func(*broker.Broker) { mgr.Recover() })
	t.Cleanup(func() {
		_ = node.Close()
		_ = st.Close()
	})
	return node
}

// TestMiddleBrokerRestartReconverges is the acceptance scenario's live
// half: kill the middle broker of a 3-broker line and restart it on the
// same WAL dir and address — without touching its neighbors. Their
// overlay managers redial, the sync handshake replays both sides'
// installs into the fresh broker, and delivery across the line resumes.
func TestMiddleBrokerRestartReconverges(t *testing.T) {
	addrB := reserveAddr(t)
	dir := t.TempDir()

	b1 := middleNode(t, addrB, dir)

	edge := func(id, far message.NodeID) *Node {
		node := NewNode(NodeConfig{
			ID:       id,
			Listen:   "127.0.0.1:0",
			Peers:    map[message.NodeID]string{"B": addrB},
			Strategy: routing.StrategySimple,
			NextHop:  map[message.NodeID]message.NodeID{"B": "B", far: "B"},
			Overlay:  fastOverlay(),
		})
		mobility.New(node.Broker(), mobility.ModeTransparent)
		if err := node.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = node.Close() })
		return node
	}
	a := edge("A", "C")
	c := edge("C", "A")

	waitFor(t, func() bool {
		return a.LinkStates()["B"] == overlay.StateEstablished &&
			c.LinkStates()["B"] == overlay.StateEstablished
	}, "initial line establishment")

	// Subscriber at A, publisher at C.
	var mu sync.Mutex
	seen := map[uint64]bool{}
	sub := NewRemoteClient("sub", func(n message.Notification, _ []message.SubID) {
		mu.Lock()
		seen[n.ID.Seq] = true
		mu.Unlock()
	})
	if err := sub.Connect(a.Addr(), "", nil, 1); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sub.Disconnect() }()
	f := filter.New(filter.Eq("k", message.Int(3)))
	s := proto.Subscription{ID: "sub/s1", Filter: f}
	_ = sub.Send(proto.Message{Kind: proto.KSubscribe, Client: "sub", Sub: &s})
	waitFor(t, func() bool {
		n := 0
		c.Inspect(func(br *broker.Broker) { n = br.Router().Table().Len() })
		return n >= 1
	}, "subscription across the line")

	pub := NewRemoteClient("pub", nil)
	if err := pub.Connect(c.Addr(), "", nil, 1); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pub.Disconnect() }()
	publish := func(seq uint64) {
		n := message.NewNotification(map[string]message.Value{"k": message.Int(3)})
		n.ID = message.NotificationID{Publisher: "pub", Seq: seq}
		_ = pub.Send(proto.Message{Kind: proto.KPublish, Client: "pub", Note: &n})
	}
	publish(1)
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return seen[1] }, "pre-restart delivery")

	// Kill the middle broker. Its neighbors stay up; their links degrade.
	if err := b1.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		return a.LinkStates()["B"] != overlay.StateEstablished &&
			c.LinkStates()["B"] != overlay.StateEstablished
	}, "neighbor links to degrade")

	// Publishes while B is down queue at C's link manager.
	publish(2)
	publish(3)

	// Restart B on the same WAL dir and address; neighbors redial it and
	// replay installs — no neighbor restarts, no client re-subscription.
	b2 := middleNode(t, addrB, dir)
	waitFor(t, func() bool {
		return a.LinkStates()["B"] == overlay.StateEstablished &&
			c.LinkStates()["B"] == overlay.StateEstablished
	}, "line re-establishment after restart")
	waitFor(t, func() bool {
		n := 0
		b2.Inspect(func(br *broker.Broker) { n = br.Router().Table().Len() })
		return n >= 1
	}, "routing reconvergence at the restarted broker")

	publish(4)
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return seen[2] && seen[3] && seen[4]
	}, "queued and post-restart deliveries")
	mu.Lock()
	if len(seen) != 4 {
		t.Errorf("seen %d distinct notifications, want 4: %v", len(seen), seen)
	}
	mu.Unlock()
}
