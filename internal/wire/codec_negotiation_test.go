package wire

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"runtime"
	"testing"

	"rebeca/internal/message"
	"rebeca/internal/routing"
)

// legacyHello mirrors the gob handshake frame of the pre-binary releases
// — reconstructed here solely to prove it is now refused.
type legacyHello struct {
	ID message.NodeID
}

// TestLegacyGobPeerRefused pins the post-removal behavior: a peer opening
// with the old gob hello (no codec.Magic) is rejected with the diagnosis
// instead of negotiated down or left to time out, on both handshake
// sides.
func TestLegacyGobPeerRefused(t *testing.T) {
	// Accept side: a legacy node dials our listener with a gob hello.
	b := NewNode(NodeConfig{
		ID:       "B",
		Listen:   "127.0.0.1:0",
		Peers:    map[message.NodeID]string{},
		Strategy: routing.StrategySimple,
	})
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() })

	c, err := net.Dial("tcp", b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	bw := bufio.NewWriter(c)
	if err := gob.NewEncoder(bw).Encode(legacyHello{ID: "legacy"}); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	// The node must hang up rather than answer; a legacy peer would block
	// decoding our reply forever.
	var one [1]byte
	if _, err := c.Read(one[:]); err == nil {
		t.Fatal("accept side answered a gob hello; want the connection refused")
	}

	// Dial side: our handshake reaching a gob-speaking listener must fail
	// with the named diagnosis.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ln.Close() }()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer func() { _ = conn.Close() }()
		w := bufio.NewWriter(conn)
		_ = gob.NewEncoder(w).Encode(legacyHello{ID: "legacy"})
		_ = w.Flush()
	}()
	if _, err := DialLink("probe", ln.Addr().String()); !errors.Is(err, errLegacyPeer) {
		t.Fatalf("dialing a legacy gob listener: err = %v, want errLegacyPeer", err)
	}
}

// TestClientChurnReleasesFlushers guards the conn-lifecycle fix: every
// Conn owns a flusher goroutine, so a client that disconnects (read pump
// exit) or reconnects under the same ID (conn replacement in register)
// must release the old conn — otherwise a churning broker leaks one
// goroutine, one fd and two bufio buffers per connect.
func TestClientChurnReleasesFlushers(t *testing.T) {
	b := NewNode(NodeConfig{
		ID:       "B",
		Listen:   "127.0.0.1:0",
		Peers:    map[message.NodeID]string{},
		Strategy: routing.StrategySimple,
	})
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() })

	churn := func(id message.NodeID) {
		cl := NewRemoteClient(id, nil)
		if err := cl.Connect(b.Addr(), "", nil, 1); err != nil {
			t.Fatal(err)
		}
		if err := cl.Disconnect(); err != nil {
			t.Fatal(err)
		}
	}
	churn("warmup") // warm up structures
	runtime.GC()
	base := runtime.NumGoroutine()
	const cycles = 50
	for i := 0; i < cycles; i++ {
		// Distinct IDs: exercises the pump-exit release; repeated IDs
		// would also be saved by register()'s replace-and-close.
		churn(message.NodeID(fmt.Sprintf("churner-%d", i)))
	}
	waitFor(t, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= base+5
	}, "flusher goroutines to drain after client churn")
}
