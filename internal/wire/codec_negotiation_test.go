package wire

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"rebeca/internal/broker"
	"rebeca/internal/filter"
	"rebeca/internal/message"
	"rebeca/internal/proto"
	"rebeca/internal/routing"
)

// TestCrossCodecHandshake is the rolling-upgrade scenario: a binary
// (current) broker and a gob-pinned (previous release) broker share one
// overlay link, a gob client subscribes at the legacy node and a binary
// client publishes at the new one. The accepting sides auto-detect each
// peer's encoding from the hello, so every combination interoperates and
// the notification crosses the version boundary.
func TestCrossCodecHandshake(t *testing.T) {
	a := NewNode(NodeConfig{
		ID:       "A",
		Listen:   "127.0.0.1:0",
		Peers:    map[message.NodeID]string{"B": ""}, // B dials us
		Strategy: routing.StrategySimple,
		NextHop:  map[message.NodeID]message.NodeID{"B": "B"},
		// A speaks binary (the default) on every link it initiates.
	})
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	b := NewNode(NodeConfig{
		ID:       "B",
		Listen:   "127.0.0.1:0",
		Peers:    map[message.NodeID]string{"A": a.Addr()},
		Strategy: routing.StrategySimple,
		NextHop:  map[message.NodeID]message.NodeID{"A": "A"},
		Wire:     CodecGob, // B still dials in the previous release's encoding
	})
	if err := b.Start(); err != nil {
		_ = a.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = b.Close()
		_ = a.Close()
	})

	var mu sync.Mutex
	var got []message.Notification
	sub := NewRemoteClient("sub", func(n message.Notification, _ []message.SubID) {
		mu.Lock()
		got = append(got, n)
		mu.Unlock()
	})
	sub.Wire = CodecGob // legacy client library against the legacy node
	if err := sub.Connect(b.Addr(), "", nil, 1); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sub.Disconnect() }()
	f := filter.New(filter.Eq("k", message.Int(7)))
	s := proto.Subscription{ID: "sub/s1", Filter: f}
	if err := sub.Send(proto.Message{Kind: proto.KSubscribe, Client: "sub", Sub: &s}); err != nil {
		t.Fatal(err)
	}
	// The subscription must cross the mixed-codec overlay link to A.
	waitFor(t, func() bool {
		n := 0
		a.Inspect(func(b *broker.Broker) { n = b.Router().Table().Len() })
		return n >= 1
	}, "subscription across the gob<->binary link")

	pub := NewRemoteClient("pub", nil) // current client library, binary
	if err := pub.Connect(a.Addr(), "", nil, 1); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pub.Disconnect() }()
	n := message.NewNotification(map[string]message.Value{"k": message.Int(7)})
	n.ID = message.NotificationID{Publisher: "pub", Seq: 1}
	if err := pub.Send(proto.Message{Kind: proto.KPublish, Client: "pub", Note: &n}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) >= 1
	}, "delivery across the version boundary")
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0].ID.Seq != 1 {
		t.Errorf("got %v", got)
	}
	if v, ok := got[0].Get("k"); !ok || v.IntVal() != 7 {
		t.Errorf("attribute mangled across codecs: %v", got[0])
	}
}

// TestBinaryDialerRejectsNothing ensures the auto-detecting accept side
// answers a binary dialer in kind even when the node itself is pinned to
// gob for its own dials.
func TestAcceptAutoDetectsOnGobPinnedNode(t *testing.T) {
	b := NewNode(NodeConfig{
		ID:       "B",
		Listen:   "127.0.0.1:0",
		Peers:    map[message.NodeID]string{},
		Strategy: routing.StrategySimple,
		Wire:     CodecGob,
	})
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() })
	conn, err := DialLink("probe", b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if conn.Wire() != CodecBinary {
		t.Fatalf("negotiated %s, want binary", conn.Wire())
	}
	if conn.Peer() != "B" {
		t.Fatalf("peer = %s", conn.Peer())
	}
}

// TestClientChurnReleasesFlushers guards the conn-lifecycle fix: every
// Conn owns a flusher goroutine, so a client that disconnects (read pump
// exit) or reconnects under the same ID (conn replacement in register)
// must release the old conn — otherwise a churning broker leaks one
// goroutine, one fd and two bufio buffers per connect.
func TestClientChurnReleasesFlushers(t *testing.T) {
	b := NewNode(NodeConfig{
		ID:       "B",
		Listen:   "127.0.0.1:0",
		Peers:    map[message.NodeID]string{},
		Strategy: routing.StrategySimple,
	})
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() })

	churn := func(id message.NodeID) {
		cl := NewRemoteClient(id, nil)
		if err := cl.Connect(b.Addr(), "", nil, 1); err != nil {
			t.Fatal(err)
		}
		if err := cl.Disconnect(); err != nil {
			t.Fatal(err)
		}
	}
	churn("warmup") // warm up structures
	runtime.GC()
	base := runtime.NumGoroutine()
	const cycles = 50
	for i := 0; i < cycles; i++ {
		// Distinct IDs: exercises the pump-exit release; repeated IDs
		// would also be saved by register()'s replace-and-close.
		churn(message.NodeID(fmt.Sprintf("churner-%d", i)))
	}
	waitFor(t, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= base+5
	}, "flusher goroutines to drain after client churn")
}
