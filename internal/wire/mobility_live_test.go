package wire

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"rebeca/internal/broker"
	"rebeca/internal/core"
	"rebeca/internal/filter"
	"rebeca/internal/location"
	"rebeca/internal/message"
	"rebeca/internal/mobility"
	"rebeca/internal/movement"
	"rebeca/internal/proto"
	"rebeca/internal/routing"
)

// startMobilityLine brings up a live 3-broker line A-B-C with transparent
// mobility managers and replicators attached — the full stack over TCP.
func startMobilityLine(t *testing.T) map[message.NodeID]*Node {
	t.Helper()
	ids := []message.NodeID{"A", "B", "C"}
	topo := broker.LineTopology(ids)
	hops := topo.NextHops()
	adj := topo.Adjacency()
	g := movement.NewGraph()
	for _, e := range topo.Edges {
		g.AddEdge(e[0], e[1])
	}
	locs := location.Regions(ids)

	nodes := make(map[message.NodeID]*Node, len(ids))
	addrs := make(map[message.NodeID]string, len(ids))
	for _, id := range ids {
		peers := make(map[message.NodeID]string)
		for _, n := range adj[id] {
			if a, ok := addrs[n]; ok {
				peers[n] = a // dial already-started neighbors
			} else {
				peers[n] = "" // they will dial us
			}
		}
		node := NewNode(NodeConfig{
			ID:       id,
			Listen:   "127.0.0.1:0",
			Peers:    peers,
			Strategy: routing.StrategySimple,
			NextHop:  hops[id],
		})
		core.New(core.Config{
			Broker:       node.Broker(),
			NLB:          g.NLB(),
			Locations:    locs,
			PreSubscribe: true,
		})
		mobility.New(node.Broker(), mobility.ModeTransparent)
		if err := node.Start(); err != nil {
			t.Fatal(err)
		}
		nodes[id] = node
		addrs[id] = node.Addr()
		t.Cleanup(func() { _ = node.Close() })
	}
	return nodes
}

// liveClient wraps RemoteClient with the client-side bookkeeping the sim
// client does (epochs, profile, dedup).
type liveClient struct {
	id      message.NodeID
	epoch   uint64
	prev    message.NodeID
	profile []proto.Subscription
	rc      *RemoteClient

	mu   sync.Mutex
	got  map[message.NotificationID]bool
	seqs []uint64
}

func newLiveClient(id message.NodeID) *liveClient {
	lc := &liveClient{id: id, got: make(map[message.NotificationID]bool)}
	lc.rc = NewRemoteClient(id, func(n message.Notification, _ []message.SubID) {
		lc.mu.Lock()
		defer lc.mu.Unlock()
		if lc.got[n.ID] {
			return
		}
		lc.got[n.ID] = true
		lc.seqs = append(lc.seqs, n.ID.Seq)
	})
	return lc
}

func (lc *liveClient) connect(t *testing.T, border message.NodeID, addr string) {
	t.Helper()
	lc.epoch++
	if err := lc.rc.Connect(addr, lc.prev, lc.profile, lc.epoch); err != nil {
		t.Fatal(err)
	}
	lc.prev = border
}

func (lc *liveClient) count() int {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return len(lc.got)
}

func TestLiveTransparentRelocation(t *testing.T) {
	nodes := startMobilityLine(t)

	mob := newLiveClient("mob")
	f := filter.New(filter.Eq("stream", message.String("s")))
	mob.profile = []proto.Subscription{{ID: "mob/s1", Filter: f}}
	mob.connect(t, "C", nodes["C"].Addr())
	sub := mob.profile[0]
	_ = mob.rc.Send(proto.Message{Kind: proto.KSubscribe, Client: "mob", Sub: &sub})

	waitFor(t, func() bool {
		n := 0
		nodes["A"].Inspect(func(b *broker.Broker) { n = b.Router().Table().Len() })
		return n >= 1
	}, "subscription at A")

	pub := NewRemoteClient("pub", nil)
	if err := pub.Connect(nodes["A"].Addr(), "", nil, 1); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pub.Disconnect() }()

	// Stream continuously from a goroutine while the client moves.
	const total = 200
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 1; i <= total; i++ {
			n := message.NewNotification(map[string]message.Value{
				"stream": message.String("s"), "n": message.Int(int64(i)),
			})
			n.ID = message.NotificationID{Publisher: "pub", Seq: uint64(i)}
			_ = pub.Send(proto.Message{Kind: proto.KPublish, Client: "pub", Note: &n})
			time.Sleep(time.Millisecond)
		}
	}()

	// Move C -> B mid-stream.
	time.Sleep(50 * time.Millisecond)
	_ = mob.rc.Disconnect()
	time.Sleep(10 * time.Millisecond)
	mob.connect(t, "B", nodes["B"].Addr())

	<-done
	waitFor(t, func() bool { return mob.count() == total }, fmt.Sprintf("all %d deliveries (have %d)", total, mob.count()))

	// Per-publisher FIFO at the client.
	mob.mu.Lock()
	defer mob.mu.Unlock()
	last := uint64(0)
	for _, s := range mob.seqs {
		if s < last {
			t.Fatalf("FIFO violation: %d after %d", s, last)
		}
		last = s
	}
	_ = mob.rc.Disconnect()
}
