package message

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	tests := []struct {
		name string
		v    Value
		kind Kind
		str  string
	}{
		{"string", String("hi"), KindString, `"hi"`},
		{"int", Int(-7), KindInt, "-7"},
		{"float", Float(2.5), KindFloat, "2.5"},
		{"bool", Bool(true), KindBool, "true"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.Kind(); got != tt.kind {
				t.Errorf("Kind() = %v, want %v", got, tt.kind)
			}
			if !tt.v.IsValid() {
				t.Error("IsValid() = false, want true")
			}
			if got := tt.v.String(); got != tt.str {
				t.Errorf("String() = %q, want %q", got, tt.str)
			}
		})
	}
}

func TestZeroValueInvalid(t *testing.T) {
	var v Value
	if v.IsValid() {
		t.Error("zero Value should be invalid")
	}
	if v.Kind() != KindInvalid {
		t.Errorf("zero Value kind = %v, want KindInvalid", v.Kind())
	}
	if v.Equal(Int(0)) {
		t.Error("zero Value must not equal Int(0)")
	}
}

func TestValueEqualCrossNumeric(t *testing.T) {
	if !Int(3).Equal(Float(3.0)) {
		t.Error("Int(3) should equal Float(3.0)")
	}
	if Int(3).Equal(Float(3.5)) {
		t.Error("Int(3) should not equal Float(3.5)")
	}
	if Int(1).Equal(Bool(true)) {
		t.Error("Int must not equal Bool")
	}
	if String("1").Equal(Int(1)) {
		t.Error("String must not equal Int")
	}
}

func TestValueCompare(t *testing.T) {
	tests := []struct {
		a, b Value
		cmp  int
		ok   bool
	}{
		{Int(1), Int(2), -1, true},
		{Int(2), Int(2), 0, true},
		{Int(3), Int(2), 1, true},
		{Int(1), Float(1.5), -1, true},
		{Float(2.5), Int(2), 1, true},
		{String("a"), String("b"), -1, true},
		{String("b"), String("b"), 0, true},
		{Bool(true), Bool(false), 0, false},
		{String("a"), Int(1), 0, false},
	}
	for _, tt := range tests {
		cmp, ok := tt.a.Compare(tt.b)
		if cmp != tt.cmp || ok != tt.ok {
			t.Errorf("Compare(%v,%v) = (%d,%v), want (%d,%v)", tt.a, tt.b, cmp, ok, tt.cmp, tt.ok)
		}
	}
}

func TestValueCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		x, okx := Int(a).Compare(Int(b))
		y, oky := Int(b).Compare(Int(a))
		return okx && oky && x == -y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func randomValue(r *rand.Rand) Value {
	switch r.Intn(4) {
	case 0:
		return Int(r.Int63n(1000) - 500)
	case 1:
		return Float(r.Float64()*100 - 50)
	case 2:
		return Bool(r.Intn(2) == 0)
	default:
		letters := []byte("abcdefg")
		n := r.Intn(6)
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[r.Intn(len(letters))]
		}
		return String(string(b))
	}
}

func TestValueGobRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		v := randomValue(r)
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(v); err != nil {
			t.Fatalf("encode %v: %v", v, err)
		}
		var got Value
		if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if !reflect.DeepEqual(v, got) {
			t.Fatalf("round trip: got %#v, want %#v", got, v)
		}
	}
}

func TestValueGobZero(t *testing.T) {
	var v Value
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatalf("encode zero: %v", err)
	}
	var got Value
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatalf("decode zero: %v", err)
	}
	if got.IsValid() {
		t.Error("zero value should decode as invalid")
	}
}

func TestValueGobDecodeErrors(t *testing.T) {
	var v Value
	if err := v.GobDecode(nil); err == nil {
		t.Error("GobDecode(nil) should fail")
	}
	if err := v.GobDecode([]byte("inotanumber")); err == nil {
		t.Error("GobDecode bad int should fail")
	}
	if err := v.GobDecode([]byte("x?")); err == nil {
		t.Error("GobDecode unknown tag should fail")
	}
}
