package message

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// NodeID identifies a node in the system: a broker, a client, or a
// replicator endpoint. IDs are plain strings so that topologies read well in
// scenario files and logs ("B1", "office-3", "alice").
type NodeID string

// SubID identifies a subscription end to end. It is minted by the
// subscribing client library and travels with the subscription through the
// routing layer so that unsubscriptions and relocations can name it exactly.
type SubID string

// NotificationID identifies a published notification uniquely across the
// whole system: the publishing client plus a per-publisher sequence number.
// Links are FIFO (§2), so per-publisher sequence numbers are monotone along
// every path, which the mobility layers exploit for exactly-once replay.
type NotificationID struct {
	Publisher NodeID
	Seq       uint64
}

// String renders the ID as "publisher#seq".
func (id NotificationID) String() string {
	return fmt.Sprintf("%s#%d", id.Publisher, id.Seq)
}

// IsZero reports whether the ID is unset (e.g. a locally crafted test
// notification that never passed through a client library).
func (id NotificationID) IsZero() bool { return id.Publisher == "" && id.Seq == 0 }

// HopStamp records one broker hop of a traced notification: which broker
// routed it and when (that broker's virtual or wall clock).
type HopStamp struct {
	// Broker is the broker the notification transited.
	Broker NodeID
	// At is the broker-local time of the hop.
	At time.Time
}

// Notification is a message that reifies and describes an occurred event
// (§2). It carries a set of named, typed attributes; content-based filters
// are predicates over this attribute set.
type Notification struct {
	// ID uniquely identifies the notification (publisher + sequence).
	ID NotificationID
	// Published is the (virtual) time of publication, stamped by the
	// publishing client's local broker.
	Published time.Time
	// Attrs holds the notification content.
	Attrs map[string]Value
	// Path is the notification's broker hop trail, appended by the
	// telemetry middleware at every transit broker and propagated across
	// links by the binary codec's traced flags bit (protocol version 2;
	// gob carries the field natively). Empty unless hop tracing is on.
	Path []HopStamp
}

// NewNotification builds a notification from alternating name/value pairs.
func NewNotification(attrs map[string]Value) Notification {
	cp := make(map[string]Value, len(attrs))
	for k, v := range attrs {
		cp[k] = v
	}
	return Notification{Attrs: cp}
}

// Get returns the named attribute and whether it is present.
func (n Notification) Get(name string) (Value, bool) {
	v, ok := n.Attrs[name]
	return v, ok
}

// Has reports whether the named attribute is present.
func (n Notification) Has(name string) bool {
	_, ok := n.Attrs[name]
	return ok
}

// Set returns a copy of the notification with the attribute set. The
// receiver is not modified; notifications are treated as immutable once
// published (they are shared across broker queues).
func (n Notification) Set(name string, v Value) Notification {
	cp := n.Clone()
	cp.Attrs[name] = v
	return cp
}

// Clone deep-copies the notification, including its attribute map and hop
// trail.
func (n Notification) Clone() Notification {
	cp := n
	cp.Attrs = make(map[string]Value, len(n.Attrs))
	for k, v := range n.Attrs {
		cp.Attrs[k] = v
	}
	if n.Path != nil {
		cp.Path = append([]HopStamp(nil), n.Path...)
	}
	return cp
}

// Equal reports attribute-wise equality (ID and timestamp excluded).
func (n Notification) Equal(o Notification) bool {
	if len(n.Attrs) != len(o.Attrs) {
		return false
	}
	for k, v := range n.Attrs {
		ov, ok := o.Attrs[k]
		if !ok || !v.Equal(ov) {
			return false
		}
	}
	return true
}

// WireSize approximates the notification's size in bytes on the wire. The
// transport layer uses it for bandwidth accounting in experiments E5/E6.
func (n Notification) WireSize() int {
	size := len(n.ID.Publisher) + 8 + 8 // id + seq + timestamp
	for k, v := range n.Attrs {
		size += len(k) + 2
		switch v.Kind() {
		case KindString:
			size += len(v.Str())
		case KindBool:
			size++
		default:
			size += 8
		}
	}
	return size
}

// String renders the notification with attributes in sorted order, which
// keeps log output and test goldens stable.
func (n Notification) String() string {
	names := make([]string, 0, len(n.Attrs))
	for k := range n.Attrs {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range names {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%s", k, n.Attrs[k])
	}
	b.WriteByte('}')
	if !n.ID.IsZero() {
		fmt.Fprintf(&b, "@%s", n.ID)
	}
	return b.String()
}

// ByID sorts notifications by (publisher, seq), the canonical replay order
// used when merging buffers during handover.
func ByID(ns []Notification) {
	sort.Slice(ns, func(i, j int) bool {
		a, b := ns[i].ID, ns[j].ID
		if a.Publisher != b.Publisher {
			return a.Publisher < b.Publisher
		}
		return a.Seq < b.Seq
	})
}
