// Package message defines the data model shared by every layer of the
// middleware: typed attribute values, notifications (messages that reify
// events, §2 of the paper), and the identifier types used across the broker
// overlay.
//
// The package sits at the bottom of the dependency graph: it must not import
// any other rebeca package.
package message

import (
	"fmt"
	"strconv"
)

// Kind enumerates the attribute value types supported by the content-based
// filter language. The zero Kind is invalid so that a zero Value is
// distinguishable from a deliberately constructed one.
type Kind int

// Supported value kinds.
const (
	KindInvalid Kind = iota
	KindString
	KindInt
	KindFloat
	KindBool
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	default:
		return "invalid"
	}
}

// Value is a typed attribute value. It is a small immutable sum type; use
// the String, Int, Float and Bool constructors. The zero Value is invalid
// and matches nothing.
type Value struct {
	kind Kind
	str  string
	num  int64
	flt  float64
	b    bool
}

// String constructs a string-valued attribute.
func String(s string) Value { return Value{kind: KindString, str: s} }

// Int constructs an integer-valued attribute.
func Int(i int64) Value { return Value{kind: KindInt, num: i} }

// Float constructs a float-valued attribute.
func Float(f float64) Value { return Value{kind: KindFloat, flt: f} }

// Bool constructs a boolean-valued attribute.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsValid reports whether the value was constructed by one of the typed
// constructors.
func (v Value) IsValid() bool { return v.kind != KindInvalid }

// Str returns the string payload. It is only meaningful for KindString.
func (v Value) Str() string { return v.str }

// IntVal returns the integer payload. It is only meaningful for KindInt.
func (v Value) IntVal() int64 { return v.num }

// FloatVal returns the float payload. It is only meaningful for KindFloat.
func (v Value) FloatVal() float64 { return v.flt }

// BoolVal returns the boolean payload. It is only meaningful for KindBool.
func (v Value) BoolVal() bool { return v.b }

// asFloat converts numeric kinds to float64 for cross-kind comparison.
func (v Value) asFloat() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.num), true
	case KindFloat:
		return v.flt, true
	default:
		return 0, false
	}
}

// Numeric reports whether the value is of a numeric kind.
func (v Value) Numeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Equal reports whether two values are equal. Integers and floats compare
// across kinds by numeric value, mirroring the filter language semantics.
func (v Value) Equal(o Value) bool {
	if v.Numeric() && o.Numeric() {
		a, _ := v.asFloat()
		b, _ := o.asFloat()
		return a == b
	}
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindString:
		return v.str == o.str
	case KindBool:
		return v.b == o.b
	default:
		return false
	}
}

// Compare orders two values. It returns (-1, 0, +1) and ok=true when the
// values are comparable: both numeric, or both strings. Booleans and
// mixed-kind pairs are not ordered.
func (v Value) Compare(o Value) (cmp int, ok bool) {
	if v.Numeric() && o.Numeric() {
		a, _ := v.asFloat()
		b, _ := o.asFloat()
		switch {
		case a < b:
			return -1, true
		case a > b:
			return 1, true
		default:
			return 0, true
		}
	}
	if v.kind == KindString && o.kind == KindString {
		switch {
		case v.str < o.str:
			return -1, true
		case v.str > o.str:
			return 1, true
		default:
			return 0, true
		}
	}
	return 0, false
}

// String renders the value for logs and canonical filter keys.
func (v Value) String() string {
	switch v.kind {
	case KindString:
		return strconv.Quote(v.str)
	case KindInt:
		return strconv.FormatInt(v.num, 10)
	case KindFloat:
		return strconv.FormatFloat(v.flt, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.b)
	default:
		return "<invalid>"
	}
}

// GobEncode implements gob.GobEncoder so values survive the wire transport
// despite having unexported fields.
func (v Value) GobEncode() ([]byte, error) {
	switch v.kind {
	case KindString:
		return append([]byte{'s'}, v.str...), nil
	case KindInt:
		return []byte("i" + strconv.FormatInt(v.num, 10)), nil
	case KindFloat:
		return []byte("f" + strconv.FormatFloat(v.flt, 'g', -1, 64)), nil
	case KindBool:
		return []byte("b" + strconv.FormatBool(v.b)), nil
	default:
		return []byte{'0'}, nil
	}
}

// GobDecode implements gob.GobDecoder.
func (v *Value) GobDecode(data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("message: empty value encoding")
	}
	body := string(data[1:])
	switch data[0] {
	case 's':
		*v = String(body)
	case 'i':
		n, err := strconv.ParseInt(body, 10, 64)
		if err != nil {
			return fmt.Errorf("message: bad int value %q: %w", body, err)
		}
		*v = Int(n)
	case 'f':
		f, err := strconv.ParseFloat(body, 64)
		if err != nil {
			return fmt.Errorf("message: bad float value %q: %w", body, err)
		}
		*v = Float(f)
	case 'b':
		b, err := strconv.ParseBool(body)
		if err != nil {
			return fmt.Errorf("message: bad bool value %q: %w", body, err)
		}
		*v = Bool(b)
	case '0':
		*v = Value{}
	default:
		return fmt.Errorf("message: unknown value tag %q", data[0])
	}
	return nil
}
