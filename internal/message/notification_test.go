package message

import (
	"sort"
	"testing"
)

func sample() Notification {
	return NewNotification(map[string]Value{
		"service":  String("temperature"),
		"location": String("room-4"),
		"value":    Float(21.5),
	})
}

func TestNotificationGetHas(t *testing.T) {
	n := sample()
	if v, ok := n.Get("service"); !ok || v.Str() != "temperature" {
		t.Errorf("Get(service) = %v,%v", v, ok)
	}
	if _, ok := n.Get("missing"); ok {
		t.Error("Get(missing) should report absent")
	}
	if !n.Has("location") || n.Has("nope") {
		t.Error("Has misreports presence")
	}
}

func TestNotificationSetImmutable(t *testing.T) {
	n := sample()
	m := n.Set("value", Float(30))
	if v, _ := n.Get("value"); v.FloatVal() != 21.5 {
		t.Error("Set mutated the receiver")
	}
	if v, _ := m.Get("value"); v.FloatVal() != 30 {
		t.Error("Set did not apply to the copy")
	}
}

func TestNotificationCloneIndependent(t *testing.T) {
	n := sample()
	c := n.Clone()
	c.Attrs["extra"] = Int(1)
	if n.Has("extra") {
		t.Error("Clone shares attribute map with original")
	}
	if !n.Equal(sample()) {
		t.Error("original changed by clone mutation")
	}
}

func TestNotificationEqual(t *testing.T) {
	a := sample()
	b := sample()
	if !a.Equal(b) {
		t.Error("identical notifications should be equal")
	}
	c := b.Set("value", Float(0))
	if a.Equal(c) {
		t.Error("different values should not be equal")
	}
	d := NewNotification(map[string]Value{"service": String("temperature")})
	if a.Equal(d) {
		t.Error("different attribute sets should not be equal")
	}
	// Cross-kind numeric equality carries over.
	e := NewNotification(map[string]Value{"x": Int(3)})
	f := NewNotification(map[string]Value{"x": Float(3)})
	if !e.Equal(f) {
		t.Error("numeric equality should hold across kinds")
	}
}

func TestNotificationStringStable(t *testing.T) {
	n := sample()
	if got, want := n.String(), n.String(); got != want {
		t.Errorf("String not deterministic: %q vs %q", got, want)
	}
	n.ID = NotificationID{Publisher: "alice", Seq: 3}
	if got := n.String(); got == "" || got[len(got)-1] != '3' {
		t.Errorf("String should end with id, got %q", got)
	}
}

func TestNotificationIDString(t *testing.T) {
	id := NotificationID{Publisher: "p", Seq: 9}
	if got := id.String(); got != "p#9" {
		t.Errorf("ID String = %q", got)
	}
	if id.IsZero() {
		t.Error("non-zero ID reported zero")
	}
	if !(NotificationID{}).IsZero() {
		t.Error("zero ID not reported zero")
	}
}

func TestByIDOrdering(t *testing.T) {
	mk := func(p NodeID, s uint64) Notification {
		n := sample()
		n.ID = NotificationID{Publisher: p, Seq: s}
		return n
	}
	ns := []Notification{mk("b", 2), mk("a", 5), mk("b", 1), mk("a", 1)}
	ByID(ns)
	got := make([]string, len(ns))
	for i, n := range ns {
		got[i] = n.ID.String()
	}
	want := []string{"a#1", "a#5", "b#1", "b#2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if !sort.SliceIsSorted(ns, func(i, j int) bool {
		a, b := ns[i].ID, ns[j].ID
		if a.Publisher != b.Publisher {
			return a.Publisher < b.Publisher
		}
		return a.Seq < b.Seq
	}) {
		t.Error("ByID result not sorted")
	}
}

func TestWireSizePositive(t *testing.T) {
	n := sample()
	if n.WireSize() <= 0 {
		t.Error("WireSize should be positive")
	}
	bigger := n.Set("note", String("a longer string attribute"))
	if bigger.WireSize() <= n.WireSize() {
		t.Error("adding attributes should grow WireSize")
	}
}
