package telemetry

import (
	"sort"
	"sync"
	"time"

	"rebeca/internal/message"
)

// DefaultSpanCap is the number of distinct notification IDs a SpanStore
// retains when built with NewSpanStore(0).
const DefaultSpanCap = 4096

// Span is one retained trace: the hop path a notification took, the
// worst end-to-end latency observed for it, and — when the span was
// retro-captured rather than sampled — the reason it was kept ("slow",
// "rate-limited", "flood-fallback", ...).
type Span struct {
	Path    []message.HopStamp
	Latency time.Duration
	Reason  string

	// ver orders span mutations for the outbound exporter: every change
	// (new span, longer path, worse latency, first reason) stamps the
	// store's monotone clock, so ExportSince ships exactly the spans that
	// moved since the last push cycle.
	ver uint64
}

// SpanInfo is the listing row for one retained span — what
// GET /trace (no note) returns per entry.
type SpanInfo struct {
	ID      message.NotificationID
	Hops    int
	Latency time.Duration
	Reason  string
}

// SpanStore retains the hop paths of recently seen notifications, keyed by
// notification ID — the data behind the ops server's /trace endpoint. It
// is a bounded ring over IDs: once full, recording a new ID evicts the
// oldest retained one, so a long-running broker always traces recent
// traffic. Safe for concurrent use.
type SpanStore struct {
	mu      sync.Mutex
	cap     int
	spans   map[message.NotificationID]*Span
	ring    []message.NotificationID
	head    int
	evicted uint64
	clock   uint64 // monotone mutation counter feeding Span.ver
}

// NewSpanStore returns a store retaining up to capacity notification
// paths (0 = DefaultSpanCap).
func NewSpanStore(capacity int) *SpanStore {
	if capacity <= 0 {
		capacity = DefaultSpanCap
	}
	return &SpanStore{
		cap:   capacity,
		spans: make(map[message.NotificationID]*Span, capacity),
	}
}

// Record stores a notification's hop path (copied). A notification seen
// again — the same ID observed at a later hop — keeps the longer path: a
// delivering broker has the full trail, an early transit broker a prefix.
func (s *SpanStore) Record(id message.NotificationID, path []message.HopStamp) {
	if id.IsZero() || len(path) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recordLocked(id, path, 0, "")
}

// RecordReason stores a retro-captured span: a path (possibly empty —
// the pending ring may have already dropped the stamps), the latency that
// triggered capture, and why it was kept. Re-observations merge: longer
// path wins, latency is max'd, and the first non-empty reason sticks.
func (s *SpanStore) RecordReason(id message.NotificationID, path []message.HopStamp, latency time.Duration, reason string) {
	if id.IsZero() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recordLocked(id, path, latency, reason)
}

func (s *SpanStore) recordLocked(id message.NotificationID, path []message.HopStamp, latency time.Duration, reason string) {
	if sp, ok := s.spans[id]; ok {
		changed := false
		if len(path) > len(sp.Path) {
			sp.Path = append(sp.Path[:0], path...)
			changed = true
		}
		if latency > sp.Latency {
			sp.Latency = latency
			changed = true
		}
		if sp.Reason == "" && reason != "" {
			sp.Reason = reason
			changed = true
		}
		if changed {
			s.clock++
			sp.ver = s.clock
		}
		return
	}
	if len(s.ring) < s.cap {
		s.ring = append(s.ring, id)
	} else {
		delete(s.spans, s.ring[s.head])
		s.evicted++
		s.ring[s.head] = id
		s.head = (s.head + 1) % s.cap
	}
	s.clock++
	s.spans[id] = &Span{
		Path:    append([]message.HopStamp(nil), path...),
		Latency: latency,
		Reason:  reason,
		ver:     s.clock,
	}
}

// Observe records an end-to-end latency for an already retained span
// (max wins); unknown IDs are ignored — latency alone doesn't earn a
// span, sampling or a retro-capture reason does.
func (s *SpanStore) Observe(id message.NotificationID, latency time.Duration) {
	if id.IsZero() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if sp, ok := s.spans[id]; ok && latency > sp.Latency {
		sp.Latency = latency
		s.clock++
		sp.ver = s.clock
	}
}

// Get returns the recorded hop path for id (nil when unknown or evicted).
func (s *SpanStore) Get(id message.NotificationID) []message.HopStamp {
	s.mu.Lock()
	defer s.mu.Unlock()
	sp, ok := s.spans[id]
	if !ok {
		return nil
	}
	return append([]message.HopStamp(nil), sp.Path...)
}

// GetSpan returns the full retained span for id.
func (s *SpanStore) GetSpan(id message.NotificationID) (Span, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sp, ok := s.spans[id]
	if !ok {
		return Span{}, false
	}
	return Span{
		Path:    append([]message.HopStamp(nil), sp.Path...),
		Latency: sp.Latency,
		Reason:  sp.Reason,
	}, true
}

// List returns up to limit retained spans, newest first (0 = all). This
// is the browsable index behind GET /trace with no note parameter.
func (s *SpanStore) List(limit int) []SpanInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.ring)
	if limit <= 0 || limit > n {
		limit = n
	}
	out := make([]SpanInfo, 0, limit)
	// Newest entry: before the ring is full, the last append; once full,
	// the slot just behind the next-eviction cursor.
	newest := n - 1
	if n == s.cap {
		newest = (s.head - 1 + s.cap) % s.cap
	}
	for i := 0; i < limit; i++ {
		id := s.ring[(newest-i+n)%n]
		sp, ok := s.spans[id]
		if !ok {
			continue
		}
		out = append(out, SpanInfo{
			ID:      id,
			Hops:    len(sp.Path),
			Latency: sp.Latency,
			Reason:  sp.Reason,
		})
	}
	return out
}

// Len returns the number of retained notification paths.
func (s *SpanStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.spans)
}

// Evicted counts paths discarded by the capacity bound.
func (s *SpanStore) Evicted() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted
}

// SpanChange is one span the store mutated since an export cursor: the
// full current span (not a delta — re-shipping a grown span is how the
// exporter stays idempotent) plus the ID it is retained under.
type SpanChange struct {
	ID   message.NotificationID
	Span Span
}

// ExportSince returns up to max spans mutated after cursor, oldest
// mutation first, and the cursor to resume from (pass 0 to start from the
// beginning of the store's history; max <= 0 means no bound). A span that
// changed again after the returned cursor will be returned again by the
// next call — exports are at-least-once and consumers must merge
// idempotently.
func (s *SpanStore) ExportSince(cursor uint64, max int) ([]SpanChange, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []SpanChange
	for id, sp := range s.spans {
		if sp.ver <= cursor {
			continue
		}
		out = append(out, SpanChange{
			ID: id,
			Span: Span{
				Path:    append([]message.HopStamp(nil), sp.Path...),
				Latency: sp.Latency,
				Reason:  sp.Reason,
				ver:     sp.ver,
			},
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Span.ver < out[j].Span.ver })
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	next := cursor
	if n := len(out); n > 0 {
		next = out[n-1].Span.ver
	}
	return out, next
}
