package telemetry

import (
	"sync"

	"rebeca/internal/message"
)

// DefaultSpanCap is the number of distinct notification IDs a SpanStore
// retains when built with NewSpanStore(0).
const DefaultSpanCap = 4096

// SpanStore retains the hop paths of recently seen notifications, keyed by
// notification ID — the data behind the ops server's /trace endpoint. It
// is a bounded ring over IDs: once full, recording a new ID evicts the
// oldest retained one, so a long-running broker always traces recent
// traffic. Safe for concurrent use.
type SpanStore struct {
	mu      sync.Mutex
	cap     int
	paths   map[message.NotificationID][]message.HopStamp
	ring    []message.NotificationID
	head    int
	evicted uint64
}

// NewSpanStore returns a store retaining up to capacity notification
// paths (0 = DefaultSpanCap).
func NewSpanStore(capacity int) *SpanStore {
	if capacity <= 0 {
		capacity = DefaultSpanCap
	}
	return &SpanStore{
		cap:   capacity,
		paths: make(map[message.NotificationID][]message.HopStamp, capacity),
	}
}

// Record stores a notification's hop path (copied). A notification seen
// again — the same ID observed at a later hop — keeps the longer path: a
// delivering broker has the full trail, an early transit broker a prefix.
func (s *SpanStore) Record(id message.NotificationID, path []message.HopStamp) {
	if id.IsZero() || len(path) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.paths[id]; ok {
		if len(path) > len(old) {
			s.paths[id] = append(old[:0], path...)
		}
		return
	}
	if len(s.ring) < s.cap {
		s.ring = append(s.ring, id)
	} else {
		delete(s.paths, s.ring[s.head])
		s.evicted++
		s.ring[s.head] = id
		s.head = (s.head + 1) % s.cap
	}
	s.paths[id] = append([]message.HopStamp(nil), path...)
}

// Get returns the recorded hop path for id (nil when unknown or evicted).
func (s *SpanStore) Get(id message.NotificationID) []message.HopStamp {
	s.mu.Lock()
	defer s.mu.Unlock()
	path, ok := s.paths[id]
	if !ok {
		return nil
	}
	return append([]message.HopStamp(nil), path...)
}

// Len returns the number of retained notification paths.
func (s *SpanStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.paths)
}

// Evicted counts paths discarded by the capacity bound.
func (s *SpanStore) Evicted() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted
}
