package telemetry

import (
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"rebeca/internal/message"
)

// DefaultPendingCap bounds the sampler's pending-decision ring: hop paths
// held for not-yet-interesting notifications so a late slow/drop verdict
// can still retro-capture the full trail.
const DefaultPendingCap = 1024

// Sampler decides which notifications earn a retained hop trace. Two
// paths into the span store:
//
//   - Sampled up front: 1-in-N by a deterministic hash of the
//     notification ID, so every broker on a multi-hop path reaches the
//     same verdict with no extra wire bits — a sampled note is stamped at
//     every hop and the delivering broker retains the complete trail.
//   - Retro-captured: unsampled notifications still have their hop
//     stamps parked in a small bounded ring; when a delivery turns out
//     slower than the threshold, or the note hits a drop/rate-limit/
//     flood-fallback branch, the parked path is promoted into the span
//     store tagged with the reason. The paths that matter are never lost
//     to the dice roll.
//
// N and the slow threshold are runtime-tunable (the ops endpoint's
// "sample" and "slow" knobs). N <= 1 samples everything — the pre-sampler
// trace behavior. Safe for concurrent use.
type Sampler struct {
	spans *SpanStore

	n    atomic.Int64 // sample 1-in-n; <= 1 means every notification
	slow atomic.Int64 // nanoseconds; 0 disables slow-path capture

	mu      sync.Mutex
	pending map[message.NotificationID]pendingPath
	ring    []message.NotificationID
	head    int
	cap     int
	retro   map[string]uint64 // retro-captures by reason

	sampled     atomic.Uint64
	ringDropped atomic.Uint64
}

// pendingInline is how many parked hop stamps fit without allocating —
// sized past typical overlay diameters so the steady-state park is
// alloc-free.
const pendingInline = 4

// pendingPath holds a parked hop trail: the first pendingInline stamps
// inline (the common case — parking must not allocate per notification on
// the publish hot path), the rest spilling to a slice.
type pendingPath struct {
	n    int
	hops [pendingInline]message.HopStamp
	over []message.HopStamp
}

func (p *pendingPath) push(stamp message.HopStamp) {
	if p.n < pendingInline {
		p.hops[p.n] = stamp
	} else {
		p.over = append(p.over, stamp)
	}
	p.n++
}

// path materializes the trail as a slice (promotion only — the rare path).
func (p *pendingPath) path() []message.HopStamp {
	if p.n == 0 {
		return nil
	}
	inline := p.n
	if inline > pendingInline {
		inline = pendingInline
	}
	return append(p.hops[:inline:inline], p.over...)
}

// NewSampler builds a sampler feeding spans. n is the sampling rate
// (1-in-n; <= 1 traces everything), slow the retro-capture latency
// threshold (0 disables it).
func NewSampler(spans *SpanStore, n int64, slow time.Duration) *Sampler {
	s := &Sampler{
		spans:   spans,
		pending: make(map[message.NotificationID]pendingPath, DefaultPendingCap),
		cap:     DefaultPendingCap,
		retro:   make(map[string]uint64),
	}
	s.n.Store(n)
	s.slow.Store(int64(slow))
	return s
}

// Sampled reports whether id is in the 1-in-N sample. Pure and
// deterministic on the ID alone: every broker agrees, call it as often
// as needed.
func (s *Sampler) Sampled(id message.NotificationID) bool {
	n := s.n.Load()
	if n <= 1 {
		return true
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(id.Publisher))
	var seq [8]byte
	v := id.Seq
	for i := 0; i < 8; i++ {
		seq[i] = byte(v >> (8 * i))
	}
	_, _ = h.Write(seq[:])
	return h.Sum64()%uint64(n) == 0
}

// Observe parks a hop stamp for an unsampled notification in the pending
// ring, available for retro-capture until evicted (drop-oldest).
func (s *Sampler) Observe(id message.NotificationID, stamp message.HopStamp) {
	if id.IsZero() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if path, ok := s.pending[id]; ok {
		path.push(stamp)
		s.pending[id] = path
		return
	}
	if len(s.ring) < s.cap {
		s.ring = append(s.ring, id)
	} else {
		delete(s.pending, s.ring[s.head])
		s.ringDropped.Add(1)
		s.ring[s.head] = id
		s.head = (s.head + 1) % s.cap
	}
	var path pendingPath
	path.push(stamp)
	s.pending[id] = path
}

// MarkSlow retro-captures id's parked path because its delivery latency
// crossed the slow threshold. Call only after SlowerThan said so.
func (s *Sampler) MarkSlow(id message.NotificationID, latency time.Duration) {
	s.promote(id, latency, "slow")
}

// MarkDropped retro-captures id's parked path because it hit a drop
// branch (reason: "rate-limited", "flood-fallback", ...).
func (s *Sampler) MarkDropped(id message.NotificationID, reason string) {
	s.promote(id, 0, reason)
}

// promote moves a pending path into the span store under reason. Works
// for already-sampled IDs too: the empty pending path merges the reason
// and latency into the existing span.
func (s *Sampler) promote(id message.NotificationID, latency time.Duration, reason string) {
	if id.IsZero() || s.spans == nil {
		return
	}
	s.mu.Lock()
	parked := s.pending[id]
	s.retro[reason]++
	s.mu.Unlock()
	s.spans.RecordReason(id, parked.path(), latency, reason)
}

// SlowerThan reports whether latency crosses the retro-capture threshold
// (false when the threshold is disabled).
func (s *Sampler) SlowerThan(latency time.Duration) bool {
	t := s.slow.Load()
	return t > 0 && latency > time.Duration(t)
}

// SetPendingCap resizes the pending-decision ring at runtime (n <= 0
// restores DefaultPendingCap). Shrinking evicts the oldest parked paths
// (counted in PendingDropped); growing keeps everything parked.
func (s *Sampler) SetPendingCap(n int) {
	if n <= 0 {
		n = DefaultPendingCap
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if n == s.cap {
		return
	}
	// Flatten the circular ring oldest-first, then keep the newest n.
	ordered := make([]message.NotificationID, 0, len(s.ring))
	if len(s.ring) < s.cap {
		ordered = append(ordered, s.ring...)
	} else {
		ordered = append(ordered, s.ring[s.head:]...)
		ordered = append(ordered, s.ring[:s.head]...)
	}
	if drop := len(ordered) - n; drop > 0 {
		for _, id := range ordered[:drop] {
			delete(s.pending, id)
			s.ringDropped.Add(1)
		}
		ordered = ordered[drop:]
	}
	s.cap = n
	s.ring = ordered
	s.head = 0
}

// PendingCap returns the pending-decision ring's current capacity.
func (s *Sampler) PendingCap() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cap
}

// SetRate tunes the 1-in-N rate at runtime (<= 1 traces everything).
func (s *Sampler) SetRate(n int64) { s.n.Store(n) }

// Rate returns the current 1-in-N sampling rate.
func (s *Sampler) Rate() int64 { return s.n.Load() }

// SetSlowThreshold tunes the retro-capture latency threshold (0 = off).
func (s *Sampler) SetSlowThreshold(d time.Duration) { s.slow.Store(int64(d)) }

// SlowThreshold returns the current retro-capture latency threshold.
func (s *Sampler) SlowThreshold() time.Duration { return time.Duration(s.slow.Load()) }

// SampledCount counts notifications that won the 1-in-N roll here.
func (s *Sampler) SampledCount() uint64 { return s.sampled.Load() }

// RetroCounts returns retro-captures by reason.
func (s *Sampler) RetroCounts() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]uint64, len(s.retro))
	for k, v := range s.retro {
		out[k] = v
	}
	return out
}

// PendingLen returns the number of paths parked for retro-capture.
func (s *Sampler) PendingLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// PendingDropped counts parked paths evicted by the ring bound.
func (s *Sampler) PendingDropped() uint64 { return s.ringDropped.Load() }
