package telemetry

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// Go runtime self-telemetry family names. Process health for the fleet
// view: a collector aggregating broker pushes sees scheduler and GC
// pressure next to the message-plane counters.
const (
	MetricGoGoroutines   = "rebeca_go_goroutines"
	MetricGoHeapBytes    = "rebeca_go_heap_bytes"
	MetricGoGCCycles     = "rebeca_go_gc_cycles_total"
	MetricGoGCPause      = "rebeca_go_gc_pause_seconds"
	MetricGoSchedLatency = "rebeca_go_sched_latency_seconds"
)

// runtime/metrics sample names the collector reads.
const (
	sampleGoroutines = "/sched/goroutines:goroutines"
	sampleHeapBytes  = "/memory/classes/heap/objects:bytes"
	sampleGCCycles   = "/gc/cycles/total:gc-cycles"
	sampleGCPauses   = "/gc/pauses:seconds"
	sampleSchedLat   = "/sched/latencies:seconds"
)

// runtimeRefresh bounds how often the runtime is re-sampled: one scrape
// touches several families, and each family's collector shares the same
// snapshot instead of re-reading the runtime per family.
const runtimeRefresh = 100 * time.Millisecond

// GoRuntimeCollector samples the Go runtime (runtime/metrics) for the
// registry's pull path: goroutine count, live heap bytes, GC cycles, and
// the GC-pause and scheduler-latency distributions as quantile gauges.
// One Read snapshot is shared across the families of a scrape. Safe for
// concurrent use.
type GoRuntimeCollector struct {
	mu      sync.Mutex
	samples []metrics.Sample
	last    time.Time
}

// NewGoRuntimeCollector builds a collector; RegisterGoRuntime is the
// usual entry point.
func NewGoRuntimeCollector() *GoRuntimeCollector {
	names := []string{sampleGoroutines, sampleHeapBytes, sampleGCCycles, sampleGCPauses, sampleSchedLat}
	c := &GoRuntimeCollector{samples: make([]metrics.Sample, len(names))}
	for i, n := range names {
		c.samples[i].Name = n
	}
	metrics.Read(c.samples)
	return c
}

// refresh re-reads the runtime if the cached snapshot is older than
// runtimeRefresh, then hands the samples to fn under the lock.
func (c *GoRuntimeCollector) refresh(fn func(samples []metrics.Sample)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if now := time.Now(); now.Sub(c.last) >= runtimeRefresh {
		metrics.Read(c.samples)
		c.last = now
	}
	fn(c.samples)
}

// value extracts a numeric sample by name (0 when absent or non-numeric).
func runtimeValue(samples []metrics.Sample, name string) float64 {
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		switch s.Value.Kind() {
		case metrics.KindUint64:
			return float64(s.Value.Uint64())
		case metrics.KindFloat64:
			return s.Value.Float64()
		}
	}
	return 0
}

// runtimeQuantile reads quantile q off a runtime histogram sample: the
// upper edge of the first bucket whose cumulative count crosses q of the
// total (0 for an empty or absent histogram).
func runtimeQuantile(samples []metrics.Sample, name string, q float64) float64 {
	for _, s := range samples {
		if s.Name != name || s.Value.Kind() != metrics.KindFloat64Histogram {
			continue
		}
		h := s.Value.Float64Histogram()
		if h == nil {
			return 0
		}
		var total uint64
		for _, n := range h.Counts {
			total += n
		}
		if total == 0 {
			return 0
		}
		want := uint64(math.Ceil(q * float64(total)))
		if want < 1 {
			want = 1
		}
		var cum uint64
		for i, n := range h.Counts {
			cum += n
			if cum >= want {
				// Bucket i spans Buckets[i]..Buckets[i+1]; report the upper
				// edge, falling back to the lower one when it is +Inf.
				edge := h.Buckets[i+1]
				if math.IsInf(edge, 1) {
					edge = h.Buckets[i]
				}
				if math.IsInf(edge, -1) {
					edge = 0
				}
				return edge
			}
		}
		return 0
	}
	return 0
}

// RegisterGoRuntime wires a process's runtime self-telemetry into reg:
//
//	rebeca_go_goroutines                 live goroutines
//	rebeca_go_heap_bytes                 live heap object bytes
//	rebeca_go_gc_cycles_total            completed GC cycles
//	rebeca_go_gc_pause_seconds{quantile} GC stop-the-world pause quantiles
//	rebeca_go_sched_latency_seconds{quantile} goroutine scheduling latency
//
// Registered under WithOps/WithOpsPush so every pushed snapshot carries
// process health, not just message-plane counters.
func RegisterGoRuntime(reg *Registry) *GoRuntimeCollector {
	c := NewGoRuntimeCollector()
	reg.GaugeFunc(MetricGoGoroutines, "Live goroutines in this process.",
		func(emit func(Labels, float64)) {
			c.refresh(func(s []metrics.Sample) { emit(nil, runtimeValue(s, sampleGoroutines)) })
		})
	reg.GaugeFunc(MetricGoHeapBytes, "Bytes of live heap objects.",
		func(emit func(Labels, float64)) {
			c.refresh(func(s []metrics.Sample) { emit(nil, runtimeValue(s, sampleHeapBytes)) })
		})
	reg.CounterFunc(MetricGoGCCycles, "Completed garbage-collection cycles.",
		func(emit func(Labels, float64)) {
			c.refresh(func(s []metrics.Sample) { emit(nil, runtimeValue(s, sampleGCCycles)) })
		})
	reg.GaugeFunc(MetricGoGCPause, "Garbage-collection pause quantiles, in seconds.",
		func(emit func(Labels, float64)) {
			c.refresh(func(s []metrics.Sample) {
				emit(Labels{"quantile": "0.5"}, runtimeQuantile(s, sampleGCPauses, 0.5))
				emit(Labels{"quantile": "0.99"}, runtimeQuantile(s, sampleGCPauses, 0.99))
			})
		})
	reg.GaugeFunc(MetricGoSchedLatency, "Goroutine scheduling latency quantiles, in seconds.",
		func(emit func(Labels, float64)) {
			c.refresh(func(s []metrics.Sample) {
				emit(Labels{"quantile": "0.5"}, runtimeQuantile(s, sampleSchedLat, 0.5))
				emit(Labels{"quantile": "0.99"}, runtimeQuantile(s, sampleSchedLat, 0.99))
			})
		})
	return c
}
