package telemetry

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"rebeca/internal/message"
)

// ReadyFunc is one readiness probe: ok=false holds /readyz at 503; detail
// explains why (shown on verbose probes and failures).
type ReadyFunc func() (ok bool, detail string)

// Knob is one runtime-adjustable setting exposed on /config. Get renders
// the current value; Set parses and applies a new one without a restart.
type Knob struct {
	// Help describes the knob in /config output.
	Help string
	// Get renders the current value.
	Get func() string
	// Set parses and applies a new value; an error rejects the request
	// with 400 and leaves the setting unchanged.
	Set func(value string) error
}

// Ops is the HTTP operations endpoint a deployment hosts next to its
// brokers: Prometheus /metrics, /healthz, /readyz (gated on registered
// readiness probes — overlay convergence), /trace?note=<id> (hop-path
// reconstruction from the span store), GET/POST /config (runtime knobs)
// and net/http/pprof under /debug/pprof/.
type Ops struct {
	reg   *Registry
	spans *SpanStore

	mu     sync.Mutex
	ready  []readyCheck
	knobs  map[string]Knob
	order  []string
	srv    *http.Server
	ln     net.Listener
	closed bool
}

type readyCheck struct {
	name string
	fn   ReadyFunc
}

// NewOps builds an ops endpoint over a registry and an optional span
// store (nil disables /trace). Serve nothing until Start.
func NewOps(reg *Registry, spans *SpanStore) *Ops {
	return &Ops{reg: reg, spans: spans, knobs: make(map[string]Knob)}
}

// Registry returns the registry /metrics renders.
func (o *Ops) Registry() *Registry { return o.reg }

// AddReadyCheck registers a named readiness probe; /readyz reports ready
// only while every registered probe passes.
func (o *Ops) AddReadyCheck(name string, fn ReadyFunc) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.ready = append(o.ready, readyCheck{name: name, fn: fn})
}

// AddKnob registers a runtime-adjustable setting under name.
func (o *Ops) AddKnob(name string, k Knob) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, ok := o.knobs[name]; !ok {
		o.order = append(o.order, name)
	}
	o.knobs[name] = k
}

// Handler returns the ops mux (also what Start serves) — the test and
// embedding surface.
func (o *Ops) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", o.handleMetrics)
	mux.HandleFunc("/healthz", o.handleHealthz)
	mux.HandleFunc("/readyz", o.handleReadyz)
	mux.HandleFunc("/trace", o.handleTrace)
	mux.HandleFunc("/config", o.handleConfig)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start listens on addr (e.g. ":9090", "127.0.0.1:0") and serves the ops
// endpoint until Close.
func (o *Ops) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("telemetry: ops listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: o.Handler(), ReadHeaderTimeout: 5 * time.Second}
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		_ = ln.Close()
		return errors.New("telemetry: ops endpoint closed")
	}
	o.ln = ln
	o.srv = srv
	o.mu.Unlock()
	go func() { _ = srv.Serve(ln) }()
	return nil
}

// Addr returns the bound listen address ("" before Start).
func (o *Ops) Addr() string {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.ln == nil {
		return ""
	}
	return o.ln.Addr().String()
}

// Close stops serving.
func (o *Ops) Close() error {
	o.mu.Lock()
	srv := o.srv
	o.srv = nil
	o.ln = nil
	o.closed = true
	o.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

func (o *Ops) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// ?exemplars=1 appends `# {note=...}` trailers to histogram bucket
	// lines — the cross-link into /trace. Off the plain scrape path, so
	// strict 0.0.4 parsers never see the non-standard trailer.
	if r.URL.Query().Get("exemplars") == "1" {
		_ = o.reg.WritePrometheusExemplars(w)
		return
	}
	_ = o.reg.WritePrometheus(w)
}

func (o *Ops) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (o *Ops) handleReadyz(w http.ResponseWriter, r *http.Request) {
	o.mu.Lock()
	checks := append([]readyCheck(nil), o.ready...)
	o.mu.Unlock()
	verbose := r.URL.Query().Has("verbose")
	var failed []string
	var lines []string
	for _, c := range checks {
		ok, detail := c.fn()
		status := "ok"
		if !ok {
			status = "not ready"
			failed = append(failed, c.name)
		}
		line := fmt.Sprintf("%s: %s", c.name, status)
		if detail != "" && (!ok || verbose) {
			line += " (" + detail + ")"
		}
		lines = append(lines, line)
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if len(failed) > 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "not ready")
		for _, l := range lines {
			fmt.Fprintln(w, l)
		}
		return
	}
	fmt.Fprintln(w, "ready")
	if verbose {
		for _, l := range lines {
			fmt.Fprintln(w, l)
		}
	}
}

// traceHop is one hop of a /trace response.
type traceHop struct {
	Hop    int       `json:"hop"`
	Broker string    `json:"broker"`
	At     time.Time `json:"at"`
}

// traceResponse is the /trace?note=<id> JSON body.
type traceResponse struct {
	Note      string     `json:"note"`
	LatencyMS float64    `json:"latency_ms,omitempty"`
	Reason    string     `json:"reason,omitempty"`
	Hops      []traceHop `json:"hops"`
}

// traceListEntry is one row of the bare /trace listing.
type traceListEntry struct {
	Note      string  `json:"note"`
	Hops      int     `json:"hops"`
	LatencyMS float64 `json:"latency_ms,omitempty"`
	Reason    string  `json:"reason,omitempty"`
}

// traceListResponse is the /trace (no note) JSON body: retained spans,
// newest first.
type traceListResponse struct {
	Retained int              `json:"retained"`
	Spans    []traceListEntry `json:"spans"`
}

// parseNoteID parses the "publisher#seq" rendering of a NotificationID.
func parseNoteID(s string) (message.NotificationID, error) {
	i := strings.LastIndexByte(s, '#')
	if i <= 0 || i == len(s)-1 {
		return message.NotificationID{}, fmt.Errorf("bad note id %q (want publisher#seq)", s)
	}
	seq, err := strconv.ParseUint(s[i+1:], 10, 64)
	if err != nil {
		return message.NotificationID{}, fmt.Errorf("bad note id %q: %v", s, err)
	}
	return message.NotificationID{Publisher: message.NodeID(s[:i]), Seq: seq}, nil
}

func (o *Ops) handleTrace(w http.ResponseWriter, r *http.Request) {
	if o.spans == nil {
		http.Error(w, "tracing not enabled", http.StatusNotFound)
		return
	}
	note := r.URL.Query().Get("note")
	if note == "" {
		// No note: list retained spans newest-first, so operators (and
		// exemplar links) can browse without knowing an ID up front.
		limit := 0
		if s := r.URL.Query().Get("limit"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				http.Error(w, fmt.Sprintf("bad limit %q", s), http.StatusBadRequest)
				return
			}
			limit = n
		}
		list := traceListResponse{Retained: o.spans.Len(), Spans: []traceListEntry{}}
		for _, info := range o.spans.List(limit) {
			list.Spans = append(list.Spans, traceListEntry{
				Note:      info.ID.String(),
				Hops:      info.Hops,
				LatencyMS: float64(info.Latency) / float64(time.Millisecond),
				Reason:    info.Reason,
			})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(list)
		return
	}
	id, err := parseNoteID(note)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	span, ok := o.spans.GetSpan(id)
	if !ok || (len(span.Path) == 0 && span.Reason == "") {
		http.Error(w, "unknown notification (not traced, or evicted)", http.StatusNotFound)
		return
	}
	resp := traceResponse{
		Note:      id.String(),
		LatencyMS: float64(span.Latency) / float64(time.Millisecond),
		Reason:    span.Reason,
	}
	for i, h := range span.Path {
		resp.Hops = append(resp.Hops, traceHop{Hop: i, Broker: string(h.Broker), At: h.At})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

func (o *Ops) handleConfig(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
	case http.MethodPost:
		if err := r.ParseForm(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		o.mu.Lock()
		knobs := make(map[string]Knob, len(o.knobs))
		for name, k := range o.knobs {
			knobs[name] = k
		}
		o.mu.Unlock()
		// Validate every name first so a typo applies nothing.
		for name := range r.Form {
			if _, ok := knobs[name]; !ok {
				http.Error(w, fmt.Sprintf("unknown knob %q", name), http.StatusBadRequest)
				return
			}
		}
		for name, vals := range r.Form {
			if len(vals) == 0 {
				continue
			}
			if err := knobs[name].Set(vals[len(vals)-1]); err != nil {
				http.Error(w, fmt.Sprintf("%s: %v", name, err), http.StatusBadRequest)
				return
			}
		}
	default:
		http.Error(w, "use GET or POST", http.StatusMethodNotAllowed)
		return
	}
	o.mu.Lock()
	names := append([]string(nil), o.order...)
	knobs := make(map[string]Knob, len(o.knobs))
	for name, k := range o.knobs {
		knobs[name] = k
	}
	o.mu.Unlock()
	sort.Strings(names)
	type knobView struct {
		Value string `json:"value"`
		Help  string `json:"help"`
	}
	out := make(map[string]knobView, len(names))
	for _, name := range names {
		out[name] = knobView{Value: knobs[name].Get(), Help: knobs[name].Help}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}
