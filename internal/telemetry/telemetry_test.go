package telemetry_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"rebeca/internal/message"
	"rebeca/internal/telemetry"
)

func scrape(t *testing.T, reg *telemetry.Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return sb.String()
}

func TestRegistryPrometheusExposition(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("test_pubs_total", "Publishes.", telemetry.Labels{"broker": "A"})
	c.Add(3)
	reg.Counter("test_pubs_total", "Publishes.", telemetry.Labels{"broker": "B"}).Inc()
	h := reg.Histogram("test_lat_seconds", "Latency.", []float64{0.1, 1}, nil)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	reg.GaugeFunc("test_depth", "Depth.", func(emit func(telemetry.Labels, float64)) {
		emit(telemetry.Labels{"q": "x"}, 7)
	})

	out := scrape(t, reg)
	for _, want := range []string{
		"# HELP test_pubs_total Publishes.",
		"# TYPE test_pubs_total counter",
		`test_pubs_total{broker="A"} 3`,
		`test_pubs_total{broker="B"} 1`,
		"# TYPE test_lat_seconds histogram",
		`test_lat_seconds_bucket{le="0.1"} 1`,
		`test_lat_seconds_bucket{le="1"} 2`,
		`test_lat_seconds_bucket{le="+Inf"} 3`,
		"test_lat_seconds_count 3",
		"# TYPE test_depth gauge",
		`test_depth{q="x"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestRegistryTotalAndHistogramStats(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("t_total", "x", telemetry.Labels{"broker": "A"}).Add(2)
	reg.Counter("t_total", "x", telemetry.Labels{"broker": "B"}).Add(5)
	if got := reg.Total("t_total"); got != 7 {
		t.Fatalf("Total = %v, want 7", got)
	}
	h := reg.Histogram("t_lat", "x", telemetry.LatencyBuckets, nil)
	h.Observe(2)
	h.Observe(4)
	sum, count := reg.HistogramStats("t_lat")
	if sum != 6 || count != 2 {
		t.Fatalf("HistogramStats = (%v, %v), want (6, 2)", sum, count)
	}
}

func TestRegistryConcurrentScrape(t *testing.T) {
	reg := telemetry.NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := reg.Counter("cc_total", "x", telemetry.Labels{"w": string(rune('a' + i))})
			h := reg.Histogram("cc_lat", "x", nil, nil)
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(0.001)
				}
			}
		}(i)
	}
	for i := 0; i < 50; i++ {
		_ = scrape(t, reg)
		_ = reg.Total("cc_total")
	}
	close(stop)
	wg.Wait()
}

func TestSpanStoreBoundAndRetention(t *testing.T) {
	s := telemetry.NewSpanStore(2)
	id := func(seq uint64) message.NotificationID {
		return message.NotificationID{Publisher: "p", Seq: seq}
	}
	hop := func(b string) message.HopStamp {
		return message.HopStamp{Broker: message.NodeID(b), At: time.Unix(0, 1)}
	}
	s.Record(id(1), []message.HopStamp{hop("A")})
	s.Record(id(2), []message.HopStamp{hop("A")})
	// Re-record with a longer path wins; shorter does not regress it.
	s.Record(id(1), []message.HopStamp{hop("A"), hop("B")})
	s.Record(id(1), []message.HopStamp{hop("C")})
	if got := s.Get(id(1)); len(got) != 2 {
		t.Fatalf("path for id 1 = %+v, want 2 hops", got)
	}
	// A third ID evicts the oldest slot.
	s.Record(id(3), []message.HopStamp{hop("A")})
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if s.Evicted() != 1 {
		t.Fatalf("Evicted = %d, want 1", s.Evicted())
	}
	if s.Get(id(3)) == nil {
		t.Fatal("newest span missing")
	}
}

func TestOpsReadyzFlips(t *testing.T) {
	reg := telemetry.NewRegistry()
	ops := telemetry.NewOps(reg, nil)
	var mu sync.Mutex
	ready := false
	ops.AddReadyCheck("links", func() (bool, string) {
		mu.Lock()
		defer mu.Unlock()
		if !ready {
			return false, "links not established: A-B:connecting"
		}
		return true, "1 link(s) established"
	})
	srv := httptest.NewServer(ops.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz = %d before convergence, want 503 (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "links not established") {
		t.Fatalf("readyz body missing detail: %s", body)
	}

	mu.Lock()
	ready = true
	mu.Unlock()
	resp, err = http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(string(body), "ready") {
		t.Fatalf("readyz = %d %q after convergence, want 200 ready", resp.StatusCode, body)
	}
}

func TestOpsTraceEndpoint(t *testing.T) {
	reg := telemetry.NewRegistry()
	spans := telemetry.NewSpanStore(0)
	id := message.NotificationID{Publisher: "alice", Seq: 9}
	spans.Record(id, []message.HopStamp{
		{Broker: "A", At: time.Unix(0, 1)},
		{Broker: "B", At: time.Unix(0, 2)},
		{Broker: "C", At: time.Unix(0, 3)},
	})
	ops := telemetry.NewOps(reg, spans)
	srv := httptest.NewServer(ops.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/trace?note=" + url.QueryEscape(id.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace = %d, want 200", resp.StatusCode)
	}
	var got struct {
		Note string `json:"note"`
		Hops []struct {
			Hop    int    `json:"hop"`
			Broker string `json:"broker"`
		} `json:"hops"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatalf("trace json: %v", err)
	}
	if got.Note != id.String() || len(got.Hops) != 3 {
		t.Fatalf("trace = %+v, want 3 hops for %s", got, id)
	}
	if got.Hops[0].Broker != "A" || got.Hops[2].Broker != "C" {
		t.Fatalf("hop order wrong: %+v", got.Hops)
	}

	for path, want := range map[string]int{
		"/trace":               http.StatusOK,         // no note: retained-span listing
		"/trace?note=garbage":  http.StatusBadRequest, // unparseable id
		"/trace?note=bob%2312": http.StatusNotFound,   // never traced
		"/trace?limit=x":       http.StatusBadRequest, // unparseable limit
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s = %d, want %d", path, resp.StatusCode, want)
		}
	}
}

func TestOpsTraceListing(t *testing.T) {
	reg := telemetry.NewRegistry()
	spans := telemetry.NewSpanStore(0)
	for seq := uint64(1); seq <= 3; seq++ {
		spans.Record(message.NotificationID{Publisher: "alice", Seq: seq},
			[]message.HopStamp{{Broker: "A", At: time.Unix(0, 1)}, {Broker: "B", At: time.Unix(0, 2)}})
	}
	spans.Observe(message.NotificationID{Publisher: "alice", Seq: 2}, 5*time.Millisecond)
	spans.RecordReason(message.NotificationID{Publisher: "bob", Seq: 7}, nil, 0, "rate-limited")
	ops := telemetry.NewOps(reg, spans)
	srv := httptest.NewServer(ops.Handler())
	defer srv.Close()

	var got struct {
		Retained int `json:"retained"`
		Spans    []struct {
			Note      string  `json:"note"`
			Hops      int     `json:"hops"`
			LatencyMS float64 `json:"latency_ms"`
			Reason    string  `json:"reason"`
		} `json:"spans"`
	}
	resp, err := http.Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatalf("trace listing json: %v", err)
	}
	if got.Retained != 4 || len(got.Spans) != 4 {
		t.Fatalf("retained=%d spans=%d, want 4/4", got.Retained, len(got.Spans))
	}
	// Newest-first: bob#7 recorded last.
	if got.Spans[0].Note != "bob#7" || got.Spans[0].Reason != "rate-limited" {
		t.Fatalf("listing head = %+v, want bob#7 rate-limited", got.Spans[0])
	}
	if got.Spans[3].Note != "alice#1" || got.Spans[3].Hops != 2 {
		t.Fatalf("listing tail = %+v, want alice#1 with 2 hops", got.Spans[3])
	}
	for _, s := range got.Spans {
		if s.Note == "alice#2" && s.LatencyMS != 5 {
			t.Fatalf("alice#2 latency_ms = %v, want 5", s.LatencyMS)
		}
	}

	// limit clips from the newest end.
	resp2, err := http.Get(srv.URL + "/trace?limit=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&got); err != nil {
		t.Fatalf("limited listing json: %v", err)
	}
	if got.Retained != 4 || len(got.Spans) != 2 || got.Spans[0].Note != "bob#7" {
		t.Fatalf("limited listing = %+v, want newest 2 of 4", got)
	}
}

func TestOpsConfigKnobs(t *testing.T) {
	reg := telemetry.NewRegistry()
	ops := telemetry.NewOps(reg, nil)
	val := "1s"
	ops.AddKnob("heartbeat", telemetry.Knob{
		Help: "interval",
		Get:  func() string { return val },
		Set: func(v string) error {
			if _, err := time.ParseDuration(v); err != nil {
				return err
			}
			val = v
			return nil
		},
	})
	srv := httptest.NewServer(ops.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/config")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"heartbeat"`) || !strings.Contains(string(body), `"1s"`) {
		t.Fatalf("config GET missing knob: %s", body)
	}

	resp, err = http.PostForm(srv.URL+"/config", url.Values{"heartbeat": {"250ms"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || val != "250ms" {
		t.Fatalf("config POST = %d, val = %q, want applied 250ms", resp.StatusCode, val)
	}

	// Unknown knob names reject the whole request before applying anything.
	resp, err = http.PostForm(srv.URL+"/config", url.Values{"heartbeat": {"1h"}, "bogus": {"1"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || val != "250ms" {
		t.Fatalf("config POST with unknown knob = %d, val = %q; want 400 and unchanged", resp.StatusCode, val)
	}

	// A failing Set reports 400.
	resp, err = http.PostForm(srv.URL+"/config", url.Values{"heartbeat": {"not-a-duration"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || val != "250ms" {
		t.Fatalf("config POST with bad value = %d, val = %q; want 400 and unchanged", resp.StatusCode, val)
	}
}

func TestOpsMetricsAndHealthz(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("m_total", "x", nil).Inc()
	ops := telemetry.NewOps(reg, nil)
	srv := httptest.NewServer(ops.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("metrics content-type = %q", ct)
	}
	if !strings.Contains(string(body), "m_total 1") {
		t.Fatalf("metrics missing counter: %s", body)
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof = %d", resp.StatusCode)
	}
}

func TestOpsStartAndClose(t *testing.T) {
	reg := telemetry.NewRegistry()
	ops := telemetry.NewOps(reg, nil)
	if err := ops.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := ops.Addr()
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("get after Start: %v", err)
	}
	resp.Body.Close()
	if err := ops.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("endpoint still serving after Close")
	}
}
