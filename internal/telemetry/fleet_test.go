package telemetry

import (
	"bytes"
	"encoding/hex"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"rebeca/internal/message"
)

func noteID(pub string, seq uint64) message.NotificationID {
	return message.NotificationID{Publisher: message.NodeID(pub), Seq: seq}
}

func hop(broker string, at time.Time) message.HopStamp {
	return message.HopStamp{Broker: message.NodeID(broker), At: at}
}

func TestSpanStoreExportSince(t *testing.T) {
	s := NewSpanStore(8)
	t0 := time.Unix(1700000000, 0)
	s.Record(noteID("p", 1), []message.HopStamp{hop("A", t0)})
	s.Record(noteID("p", 2), []message.HopStamp{hop("A", t0)})

	changes, cur := s.ExportSince(0, 0)
	if len(changes) != 2 {
		t.Fatalf("ExportSince(0) = %d changes, want 2", len(changes))
	}
	if changes[0].ID != noteID("p", 1) || changes[1].ID != noteID("p", 2) {
		t.Fatalf("changes out of mutation order: %v, %v", changes[0].ID, changes[1].ID)
	}

	// Nothing moved: the cursor holds and nothing re-exports.
	changes, cur2 := s.ExportSince(cur, 0)
	if len(changes) != 0 || cur2 != cur {
		t.Fatalf("idle ExportSince = %d changes, cursor %d -> %d", len(changes), cur, cur2)
	}

	// A grown path re-exports the full span (at-least-once, not a delta).
	s.Record(noteID("p", 1), []message.HopStamp{hop("A", t0), hop("B", t0.Add(time.Millisecond))})
	changes, cur = s.ExportSince(cur, 0)
	if len(changes) != 1 || changes[0].ID != noteID("p", 1) || len(changes[0].Span.Path) != 2 {
		t.Fatalf("after growth: changes = %+v", changes)
	}

	// An unchanged re-record is not a mutation.
	s.Record(noteID("p", 1), []message.HopStamp{hop("A", t0)})
	if changes, _ := s.ExportSince(cur, 0); len(changes) != 0 {
		t.Fatalf("shorter re-record exported %d changes, want 0", len(changes))
	}

	// Latency and reason mutations export too; max bounds the batch and
	// the cursor only advances past what was included.
	s.Observe(noteID("p", 1), 50*time.Millisecond)
	s.RecordReason(noteID("p", 2), nil, 0, "slow")
	batch, mid := s.ExportSince(cur, 1)
	if len(batch) != 1 {
		t.Fatalf("capped export = %d changes, want 1", len(batch))
	}
	rest, _ := s.ExportSince(mid, 0)
	if len(rest) != 1 {
		t.Fatalf("resumed export = %d changes, want 1", len(rest))
	}
	if batch[0].ID == rest[0].ID {
		t.Fatalf("capped export repeated %v", batch[0].ID)
	}
}

func TestSpanBatchRoundTrip(t *testing.T) {
	t0 := time.Unix(1700000000, 123456789).UTC()
	recs := []SpanExport{
		{Instance: "A", Note: "pub#7", Hops: []SpanExportHop{{Broker: "A", At: t0}, {Broker: "B", At: t0.Add(time.Millisecond)}}, LatencyMS: 1.5},
		{Instance: "B", Note: "pub#9", Reason: "rate-limited"},
	}
	body, err := EncodeSpanBatch(recs)
	if err != nil {
		t.Fatalf("EncodeSpanBatch: %v", err)
	}
	got, err := DecodeSpanBatch(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("DecodeSpanBatch: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d records, want 2", len(got))
	}
	if got[0].Instance != "A" || got[0].Note != "pub#7" || len(got[0].Hops) != 2 ||
		got[0].Hops[1].Broker != "B" || !got[0].Hops[0].At.Equal(t0) || got[0].LatencyMS != 1.5 {
		t.Fatalf("record 0 mangled: %+v", got[0])
	}
	if got[1].Reason != "rate-limited" || len(got[1].Hops) != 0 {
		t.Fatalf("record 1 mangled: %+v", got[1])
	}

	// A hostile frame length stops decoding with an error, keeping the
	// records decoded before it.
	bad := append(append([]byte{}, body...), 0xFF, 0xFF, 0xFF, 0xFF)
	got, err = DecodeSpanBatch(bytes.NewReader(bad))
	if err == nil || len(got) != 2 {
		t.Fatalf("oversized frame: got %d records, err %v", len(got), err)
	}
}

// TestRemoteWriteGoldenBody pins the encoder's exact wire bytes: two
// points, one labeled counter and one bare gauge, instance merged, fixed
// timestamp. Any byte of drift fails, and the independent hand-rolled
// decoder must read the same body back — so encoder and decoder cannot
// drift together unnoticed either.
func TestRemoteWriteGoldenBody(t *testing.T) {
	points := []MetricPoint{
		{Name: "rebeca_publishes_total", Labels: `{broker="A"}`, Type: "counter", Value: 3},
		{Name: "rebeca_link_state", Labels: "", Type: "gauge", Value: 1},
	}
	body, err := EncodeRemoteWrite(points, "A", time.UnixMilli(1700000000000).UTC())
	if err != nil {
		t.Fatalf("EncodeRemoteWrite: %v", err)
	}
	const golden = "0a520a220a085f5f6e616d655f5f12167265626563615f7075626c69736865735f746f74616c" +
		"0a0b0a0662726f6b65721201410a0d0a08696e7374616e636512014112100900000000000008401080d095ffbc31" +
		"0a400a1d0a085f5f6e616d655f5f12117265626563615f6c696e6b5f73746174650a0d0a08696e7374616e6365120141" +
		"121009000000000000f03f1080d095ffbc31"
	if got := hex.EncodeToString(body); got != golden {
		t.Fatalf("remote-write body drifted:\n got %s\nwant %s", got, golden)
	}

	series, err := DecodeRemoteWrite(body)
	if err != nil {
		t.Fatalf("DecodeRemoteWrite: %v", err)
	}
	if len(series) != 2 {
		t.Fatalf("decoded %d series, want 2", len(series))
	}
	if series[0].Name() != "rebeca_publishes_total" || series[0].Value != 3 || series[0].Timestamp != 1700000000000 {
		t.Fatalf("series 0 mangled: %+v", series[0])
	}
	wantLabels := []RemoteWriteLabel{
		{Name: "__name__", Value: "rebeca_publishes_total"},
		{Name: "broker", Value: "A"},
		{Name: "instance", Value: "A"},
	}
	if len(series[0].Labels) != len(wantLabels) {
		t.Fatalf("series 0 labels: %+v", series[0].Labels)
	}
	for i, l := range wantLabels {
		if series[0].Labels[i] != l {
			t.Fatalf("series 0 label %d = %+v, want %+v", i, series[0].Labels[i], l)
		}
	}
	if series[1].Name() != "rebeca_link_state" || series[1].Value != 1 || len(series[1].Labels) != 2 {
		t.Fatalf("series 1 mangled: %+v", series[1])
	}

	// An in-band instance label wins over the config instance.
	body2, err := EncodeRemoteWrite([]MetricPoint{
		{Name: "x_total", Labels: `{instance="other"}`, Type: "counter", Value: 1},
	}, "A", time.UnixMilli(1))
	if err != nil {
		t.Fatalf("EncodeRemoteWrite: %v", err)
	}
	s2, err := DecodeRemoteWrite(body2)
	if err != nil || len(s2) != 1 {
		t.Fatalf("decode: %v (%d series)", err, len(s2))
	}
	for _, l := range s2[0].Labels {
		if l.Name == "instance" && l.Value != "other" {
			t.Fatalf("config instance overrode the in-band label: %+v", s2[0].Labels)
		}
	}
}

func TestPusherShipsSpansAndCloseDrains(t *testing.T) {
	type push struct {
		ctype    string
		instance string
		body     []byte
	}
	var reject atomic.Bool
	got := make(chan push, 16)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if reject.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		body := new(bytes.Buffer)
		_, _ = body.ReadFrom(r.Body)
		got <- push{ctype: r.Header.Get("Content-Type"), instance: r.Header.Get(InstanceHeader), body: body.Bytes()}
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()

	reg := NewRegistry()
	reg.Counter("rebeca_publishes_total", "publishes", nil).Inc()
	spans := NewSpanStore(8)
	t0 := time.Unix(1700000000, 0)
	spans.Record(noteID("pub", 1), []message.HopStamp{hop("A", t0), hop("B", t0.Add(time.Millisecond))})

	p, err := NewPusher(reg, PusherConfig{
		URL: srv.URL, Interval: time.Hour, Instance: "A", Spans: spans, SpanBatch: 8,
	})
	if err != nil {
		t.Fatalf("NewPusher: %v", err)
	}
	p.Flush()

	var metricSeen, spanSeen bool
	for i := 0; i < 2; i++ {
		select {
		case g := <-got:
			if g.instance != "A" {
				t.Fatalf("push without instance header: %q", g.instance)
			}
			if g.ctype == ContentTypeSpans {
				recs, err := DecodeSpanBatch(bytes.NewReader(g.body))
				if err != nil || len(recs) != 1 {
					t.Fatalf("span body: %v (%d records)", err, len(recs))
				}
				if recs[0].Note != "pub#1" || len(recs[0].Hops) != 2 || recs[0].Instance != "A" {
					t.Fatalf("span record mangled: %+v", recs[0])
				}
				spanSeen = true
			} else {
				if !bytes.Contains(g.body, []byte("rebeca_publishes_total")) {
					t.Fatalf("metric body missing counter: %s", g.body)
				}
				metricSeen = true
			}
		case <-time.After(5 * time.Second):
			t.Fatal("pushes never arrived")
		}
	}
	if !metricSeen || !spanSeen {
		t.Fatalf("metricSeen=%v spanSeen=%v, want both", metricSeen, spanSeen)
	}
	if p.SpansShipped() != 1 {
		t.Fatalf("SpansShipped = %d, want 1", p.SpansShipped())
	}

	// An already-shipped span does not re-export on an idle cycle.
	p.Flush()
	select {
	case g := <-got:
		if g.ctype == ContentTypeSpans {
			t.Fatalf("idle cycle re-shipped spans: %s", g.body)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("idle flush pushed nothing")
	}

	p.Close()
	drainChannel(got)

	// Receiver outage: the span batch spools, its failure counts on the
	// span pair, and the backoff window arms. Close must drain it anyway
	// once the receiver returns — shutdown is the last chance to ship.
	// An empty registry isolates the span path: no metric body spools
	// ahead of the batch.
	spans2 := NewSpanStore(8)
	spans2.Record(noteID("pub", 2), []message.HopStamp{hop("A", t0)})
	p2, err := NewPusher(NewRegistry(), PusherConfig{
		URL: srv.URL, Interval: time.Hour, Instance: "A", Spans: spans2,
	})
	if err != nil {
		t.Fatalf("NewPusher: %v", err)
	}
	reject.Store(true)
	p2.Flush()
	if p2.SpanFailures() == 0 {
		t.Fatalf("SpanFailures = 0 after rejected flush")
	}
	if p2.SpoolLen() == 0 {
		t.Fatal("rejected span batch was not spooled")
	}
	reject.Store(false)
	p2.Close()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case g := <-got:
			if g.ctype != ContentTypeSpans {
				continue
			}
			recs, err := DecodeSpanBatch(bytes.NewReader(g.body))
			if err != nil || len(recs) != 1 || recs[0].Note != "pub#2" {
				t.Fatalf("drained span body: %v %+v", err, recs)
			}
			if p2.SpansShipped() != 1 {
				t.Fatalf("SpansShipped = %d, want 1", p2.SpansShipped())
			}
			return
		case <-deadline:
			t.Fatal("Close did not drain the spooled span batch")
		}
	}
}

// drainChannel empties a push channel without blocking.
func drainChannel[T any](ch chan T) {
	for {
		select {
		case <-ch:
		default:
			return
		}
	}
}

func TestSamplerSetPendingCap(t *testing.T) {
	s := NewSampler(NewSpanStore(8), 1000, 0)
	t0 := time.Unix(1700000000, 0)
	for i := 0; i < 6; i++ {
		s.Observe(noteID("p", uint64(i)), hop("A", t0))
	}
	if s.PendingCap() != DefaultPendingCap || s.PendingLen() != 6 {
		t.Fatalf("cap=%d pending=%d, want %d/6", s.PendingCap(), s.PendingLen(), DefaultPendingCap)
	}

	// Shrinking keeps the newest entries and counts the evictions.
	s.SetPendingCap(4)
	if s.PendingCap() != 4 || s.PendingLen() != 4 {
		t.Fatalf("after shrink: cap=%d pending=%d, want 4/4", s.PendingCap(), s.PendingLen())
	}
	if s.PendingDropped() != 2 {
		t.Fatalf("PendingDropped = %d, want 2", s.PendingDropped())
	}
	// The survivors are the newest: promoting an evicted ID yields an
	// empty path, a surviving one its parked path.
	st := NewSpanStore(8)
	s2 := NewSampler(st, 1000, 0)
	for i := 0; i < 6; i++ {
		s2.Observe(noteID("p", uint64(i)), hop("A", t0))
	}
	s2.SetPendingCap(4)
	s2.MarkDropped(noteID("p", 0), "evicted-check") // oldest, evicted
	if sp, _ := st.GetSpan(noteID("p", 0)); len(sp.Path) != 0 {
		t.Fatalf("evicted pending path survived: %+v", sp.Path)
	}
	s2.MarkDropped(noteID("p", 5), "kept-check") // newest, kept
	if sp, _ := st.GetSpan(noteID("p", 5)); len(sp.Path) != 1 {
		t.Fatalf("kept pending path lost: %+v", sp.Path)
	}

	// The ring keeps filling correctly at the new capacity.
	for i := 10; i < 20; i++ {
		s.Observe(noteID("p", uint64(i)), hop("A", t0))
	}
	if s.PendingLen() != 4 {
		t.Fatalf("pending after refill = %d, want 4", s.PendingLen())
	}
	// Growing never evicts.
	before := s.PendingDropped()
	s.SetPendingCap(64)
	if s.PendingDropped() != before || s.PendingLen() != 4 {
		t.Fatalf("grow evicted: dropped %d->%d pending=%d", before, s.PendingDropped(), s.PendingLen())
	}
}
