package telemetry_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rebeca/internal/message"
	"rebeca/internal/telemetry"
)

func TestSamplerDeterministic(t *testing.T) {
	spans := telemetry.NewSpanStore(0)
	s := telemetry.NewSampler(spans, 8, 0)

	// Pure in the ID: repeated calls and fresh samplers agree.
	other := telemetry.NewSampler(telemetry.NewSpanStore(0), 8, 0)
	hits := 0
	for seq := uint64(0); seq < 1000; seq++ {
		id := message.NotificationID{Publisher: "alice", Seq: seq}
		v := s.Sampled(id)
		if v != s.Sampled(id) || v != other.Sampled(id) {
			t.Fatalf("Sampled(%s) not deterministic", id)
		}
		if v {
			hits++
		}
	}
	// 1-in-8 over 1000 draws: expect ~125, allow a wide band.
	if hits < 60 || hits > 250 {
		t.Fatalf("1-in-8 sampling hit %d of 1000, want roughly 125", hits)
	}

	// n <= 1 traces everything; SetRate applies live.
	s.SetRate(1)
	for seq := uint64(0); seq < 50; seq++ {
		if !s.Sampled(message.NotificationID{Publisher: "bob", Seq: seq}) {
			t.Fatal("rate 1 must sample everything")
		}
	}
	if s.Rate() != 1 {
		t.Fatalf("Rate = %d, want 1", s.Rate())
	}
}

func TestSamplerRetroCapture(t *testing.T) {
	spans := telemetry.NewSpanStore(0)
	s := telemetry.NewSampler(spans, 1<<30, 20*time.Millisecond)

	slow := message.NotificationID{Publisher: "alice", Seq: 1}
	s.Observe(slow, message.HopStamp{Broker: "A", At: time.Unix(0, 1)})
	s.Observe(slow, message.HopStamp{Broker: "B", At: time.Unix(0, 2)})

	if s.SlowerThan(5 * time.Millisecond) {
		t.Fatal("5ms is under the 20ms threshold")
	}
	if !s.SlowerThan(50 * time.Millisecond) {
		t.Fatal("50ms crosses the 20ms threshold")
	}

	// Before the verdict, nothing is retained.
	if _, ok := spans.GetSpan(slow); ok {
		t.Fatal("unsampled span retained before promotion")
	}
	s.MarkSlow(slow, 50*time.Millisecond)
	span, ok := spans.GetSpan(slow)
	if !ok || len(span.Path) != 2 || span.Reason != "slow" || span.Latency != 50*time.Millisecond {
		t.Fatalf("promoted span = %+v ok=%v, want 2 parked hops, reason slow, 50ms", span, ok)
	}

	dropped := message.NotificationID{Publisher: "alice", Seq: 2}
	s.Observe(dropped, message.HopStamp{Broker: "A", At: time.Unix(0, 3)})
	s.MarkDropped(dropped, "rate-limited")
	if span, ok := spans.GetSpan(dropped); !ok || span.Reason != "rate-limited" || len(span.Path) != 1 {
		t.Fatalf("dropped span = %+v ok=%v, want 1 hop with reason", span, ok)
	}

	retro := s.RetroCounts()
	if retro["slow"] != 1 || retro["rate-limited"] != 1 {
		t.Fatalf("RetroCounts = %v, want slow:1 rate-limited:1", retro)
	}
}

func TestSamplerPendingRingBound(t *testing.T) {
	s := telemetry.NewSampler(telemetry.NewSpanStore(0), 1<<30, time.Millisecond)
	for seq := uint64(0); seq < uint64(telemetry.DefaultPendingCap)+10; seq++ {
		s.Observe(message.NotificationID{Publisher: "p", Seq: seq},
			message.HopStamp{Broker: "A", At: time.Unix(0, 1)})
	}
	if s.PendingLen() != telemetry.DefaultPendingCap {
		t.Fatalf("pending = %d, want bounded at %d", s.PendingLen(), telemetry.DefaultPendingCap)
	}
	if s.PendingDropped() != 10 {
		t.Fatalf("dropped = %d, want 10", s.PendingDropped())
	}
}

func TestPusherPromBodyAndRetrySpool(t *testing.T) {
	var (
		fail   atomic.Int64
		bodies atomic.Int64
		last   atomic.Value
	)
	fail.Store(2)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fail.Add(-1) >= 0 {
			http.Error(w, "unavailable", http.StatusServiceUnavailable)
			return
		}
		b, _ := io.ReadAll(r.Body)
		last.Store(string(b))
		bodies.Add(1)
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()

	reg := telemetry.NewRegistry()
	reg.Counter("rebeca_publishes_total", "Publishes.", telemetry.Labels{"broker": "A"}).Add(7)
	p, err := telemetry.NewPusher(reg, telemetry.PusherConfig{
		URL:      srv.URL,
		Interval: 5 * time.Millisecond,
		SpoolCap: 3,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Two failed cycles spool their bodies and arm the backoff window.
	p.Flush()
	if p.Failures() != 1 || p.SpoolLen() != 1 {
		t.Fatalf("after flush 1: failures=%d spool=%d, want 1/1", p.Failures(), p.SpoolLen())
	}
	time.Sleep(10 * time.Millisecond) // clear the 5ms backoff window
	p.Flush()
	if p.Failures() != 2 || p.SpoolLen() != 2 {
		t.Fatalf("after flush 2: failures=%d spool=%d, want 2/2", p.Failures(), p.SpoolLen())
	}

	// Receiver recovers: the next cycle drains the spool in order.
	time.Sleep(25 * time.Millisecond) // clear the doubled backoff window
	p.Flush()
	if got := bodies.Load(); got != 3 {
		t.Fatalf("receiver accepted %d bodies, want 3 (2 spooled + 1 fresh)", got)
	}
	if p.SpoolLen() != 0 {
		t.Fatalf("spool = %d after drain, want 0", p.SpoolLen())
	}
	body, _ := last.Load().(string)
	for _, want := range []string{
		"# TYPE rebeca_publishes_total counter",
		`rebeca_publishes_total{broker="A"} 7`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("push body missing %q:\n%s", want, body)
		}
	}
}

func TestPusherSpoolBound(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusBadGateway)
	}))
	defer srv.Close()
	reg := telemetry.NewRegistry()
	reg.Counter("x_total", "X.", nil).Inc()
	p, err := telemetry.NewPusher(reg, telemetry.PusherConfig{
		URL: srv.URL, Interval: time.Millisecond, SpoolCap: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		p.Flush()
		time.Sleep(3 * time.Millisecond)
	}
	if p.SpoolLen() > 2 {
		t.Fatalf("spool = %d, want bounded at 2", p.SpoolLen())
	}
	if p.SpoolDropped() == 0 {
		t.Fatal("expected drop-oldest evictions under a dead receiver")
	}
}

func TestPusherJSONDeltas(t *testing.T) {
	type payload struct {
		Instance string `json:"instance"`
		Points   []struct {
			Name  string  `json:"name"`
			Type  string  `json:"type"`
			Value float64 `json:"value"`
		} `json:"points"`
	}
	var got atomic.Value
	var pushes atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ct := r.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("content type = %q, want application/json", ct)
		}
		var pl payload
		if err := json.NewDecoder(r.Body).Decode(&pl); err != nil {
			t.Errorf("bad push body: %v", err)
		}
		got.Store(pl)
		pushes.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	reg := telemetry.NewRegistry()
	c := reg.Counter("rebeca_publishes_total", "Publishes.", nil)
	c.Add(3)
	p, err := telemetry.NewPusher(reg, telemetry.PusherConfig{
		URL: srv.URL, Interval: time.Millisecond,
		Format: telemetry.PushFormatJSON, Instance: "A",
	})
	if err != nil {
		t.Fatal(err)
	}

	find := func(pl payload, name string) (float64, bool) {
		for _, pt := range pl.Points {
			if pt.Name == name {
				return pt.Value, true
			}
		}
		return 0, false
	}

	// First cycle ships the absolute value.
	p.Flush()
	pl, _ := got.Load().(payload)
	if pl.Instance != "A" {
		t.Fatalf("instance = %q, want A", pl.Instance)
	}
	if v, ok := find(pl, "rebeca_publishes_total"); !ok || v != 3 {
		t.Fatalf("first push publishes = %v/%v, want absolute 3", v, ok)
	}

	// Movement ships as a delta.
	c.Add(2)
	p.Flush()
	pl, _ = got.Load().(payload)
	if v, ok := find(pl, "rebeca_publishes_total"); !ok || v != 2 {
		t.Fatalf("second push publishes = %v/%v, want delta 2", v, ok)
	}

	// No movement: the cycle pushes nothing at all.
	before := pushes.Load()
	p.Flush()
	if pushes.Load() != before {
		t.Fatal("unchanged registry still pushed a body")
	}
}

func TestLoggerSubsystemGates(t *testing.T) {
	var buf bytes.Buffer
	l := telemetry.NewLogger(&buf, telemetry.ParseLevelDefault("info"))

	ov := l.For("overlay")
	ov.Debug("hidden")
	ov.Info("link established", "peer", "B")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Fatalf("debug leaked through an info gate:\n%s", out)
	}
	if !strings.Contains(out, "link established") || !strings.Contains(out, "subsystem=overlay") {
		t.Fatalf("info line missing or untagged:\n%s", out)
	}

	// Raising one subsystem's gate is live on already-handed-out loggers
	// and leaves the others untouched.
	if err := l.SetLevel("overlay", telemetry.ParseLevelDefault("debug")); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	ov.Debug("now visible")
	l.For("store").Debug("still hidden")
	out = buf.String()
	if !strings.Contains(out, "now visible") || strings.Contains(out, "still hidden") {
		t.Fatalf("per-subsystem gating wrong:\n%s", out)
	}

	if err := l.SetLevel("nonesuch", telemetry.ParseLevelDefault("debug")); err == nil {
		t.Fatal("unknown subsystem must be rejected")
	}
}

func TestLogKnobsLiveViaConfig(t *testing.T) {
	var buf bytes.Buffer
	l := telemetry.NewLogger(&buf, telemetry.ParseLevelDefault("info"))
	reg := telemetry.NewRegistry()
	ops := telemetry.NewOps(reg, nil)
	l.RegisterKnobs(ops)
	srv := httptest.NewServer(ops.Handler())
	defer srv.Close()

	// GET /config lists one knob per subsystem.
	resp, err := http.Get(srv.URL + "/config")
	if err != nil {
		t.Fatal(err)
	}
	listing, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, sub := range telemetry.LogSubsystems {
		if !strings.Contains(string(listing), "log."+sub) {
			t.Fatalf("/config missing log.%s:\n%s", sub, listing)
		}
	}

	// POST retunes the gate on the live logger.
	resp, err = http.PostForm(srv.URL+"/config", url.Values{"log.discovery": {"debug"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /config = %d, want 200", resp.StatusCode)
	}
	l.For("discovery").Debug("membership detail")
	if !strings.Contains(buf.String(), "membership detail") {
		t.Fatal("knob did not open the discovery debug gate")
	}

	// Bad level values are rejected, applying nothing.
	resp, err = http.PostForm(srv.URL+"/config", url.Values{"log.discovery": {"loud"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad level = %d, want 400", resp.StatusCode)
	}
}

func TestExemplarRendering(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("rebeca_e2e_latency_seconds", "Latency.", telemetry.LatencyBuckets, nil)
	h.ObserveExemplar(0.0003, "alice#1")
	h.ObserveExemplar(0.0004, "alice#2") // same le=0.0005 bucket, worse: replaces alice#1

	// The plain scrape stays strict 0.0.4 — no trailers.
	var plain strings.Builder
	if err := reg.WritePrometheus(&plain); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "# {") {
		t.Fatalf("plain scrape leaked exemplar trailers:\n%s", plain.String())
	}

	// The exemplars view carries the worst note per bucket.
	var ex strings.Builder
	if err := reg.WritePrometheusExemplars(&ex); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex.String(), `# {note="alice#2"} 0.0004`) {
		t.Fatalf("exemplars view missing worst-note trailer:\n%s", ex.String())
	}
	if strings.Contains(ex.String(), "alice#1") {
		t.Fatalf("superseded exemplar survived:\n%s", ex.String())
	}

	// Rendering consumed the window.
	var again strings.Builder
	if err := reg.WritePrometheusExemplars(&again); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(again.String(), "alice#2") {
		t.Fatalf("exemplar window not reset by render:\n%s", again.String())
	}
}

func TestOpsMetricsExemplarsQuery(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("rebeca_e2e_latency_seconds", "Latency.", telemetry.LatencyBuckets, nil)
	h.ObserveExemplar(0.0002, "alice#1")
	ops := telemetry.NewOps(reg, telemetry.NewSpanStore(0))
	srv := httptest.NewServer(ops.Handler())
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	if body := get("/metrics"); strings.Contains(body, "# {") {
		t.Fatalf("plain /metrics leaked exemplars:\n%s", body)
	}
	if body := get("/metrics?exemplars=1"); !strings.Contains(body, `note="alice#1"`) {
		t.Fatalf("/metrics?exemplars=1 missing exemplar:\n%s", body)
	}
}

func BenchmarkWritePrometheus1k(b *testing.B) {
	reg := telemetry.NewRegistry()
	for i := 0; i < 1000; i++ {
		reg.Counter(fmt.Sprintf("rebeca_bench_family_%04d_total", i), "Bench family.",
			telemetry.Labels{"broker": "A"}).Add(uint64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := reg.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
