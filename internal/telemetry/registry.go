// Package telemetry is the middleware's operations subsystem: a
// lock-cheap metrics registry with a Prometheus text exposition renderer,
// a bounded span store reconstructing notification hop paths, a broker
// middleware stage feeding both, and an HTTP ops server (Ops) exposing
// /metrics, /healthz, /readyz, /trace, /config and pprof. Every live
// broker (and optionally the virtual-clock sim) hosts one via the facade's
// WithOps option or rebeca-broker's -ops flag.
//
// The registry splits metrics into two classes. Hot-path instruments —
// counters and histograms the publish/deliver path touches per event — are
// resolved once into handles backed by atomics, so recording costs a few
// uncontended atomic adds and no locks. Snapshot metrics — overlay link
// state, pending queues, WAL sizes, stream buffer depths — are pull-model
// collector funcs that run only when /metrics is scraped.
package telemetry

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels is one metric sample's label set (name → value). Label values are
// escaped on render; label names must be valid Prometheus label names.
type Labels map[string]string

// metric family types, by Prometheus exposition TYPE line.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// Counter is a monotonically increasing metric handle. Safe for concurrent
// use; reads and writes are single atomics.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// atomicFloat accumulates a float64 with compare-and-swap.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram is a fixed-bucket histogram handle. Observations are a bucket
// scan plus three atomics — no locks. Safe for concurrent use.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf bucket is implicit
	counts []atomic.Uint64
	sum    atomicFloat
	count  atomic.Uint64
	ex     []exemplarSlot // one per bucket incl. +Inf; nil until first exemplar
	exMu   sync.Mutex     // guards ex allocation and slot contents
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.sum.add(v)
	h.count.Add(1)
}

// exemplarSlot remembers the worst observation that landed in one bucket
// since the window last reset (an exemplars render resets it).
type exemplarSlot struct {
	set   bool
	value float64
	note  string
}

// ObserveExemplar records one value and, when note is non-empty, keeps it
// as the bucket's exemplar if it is the worst observation this window.
// Exemplar upkeep takes a mutex, so call this only on already-traced
// paths (sampled or retro-captured notifications), never unconditionally
// on a hot path — plain Observe stays lock-free.
func (h *Histogram) ObserveExemplar(v float64, note string) {
	h.Observe(v)
	if note == "" {
		return
	}
	i := len(h.bounds) // +Inf slot
	for j, b := range h.bounds {
		if v <= b {
			i = j
			break
		}
	}
	h.exMu.Lock()
	if h.ex == nil {
		h.ex = make([]exemplarSlot, len(h.bounds)+1)
	}
	s := &h.ex[i]
	if !s.set || v > s.value {
		*s = exemplarSlot{set: true, value: v, note: note}
	}
	h.exMu.Unlock()
}

// takeExemplar returns bucket i's exemplar and resets its window.
func (h *Histogram) takeExemplar(i int) (note string, value float64, ok bool) {
	h.exMu.Lock()
	defer h.exMu.Unlock()
	if h.ex == nil || i >= len(h.ex) || !h.ex[i].set {
		return "", 0, false
	}
	s := h.ex[i]
	h.ex[i] = exemplarSlot{}
	return s.note, s.value, true
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// LatencyBuckets is the default bucket layout for latency histograms, in
// seconds: 100µs to ~100s, roughly ×3 per step.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 100,
}

// SizeBuckets is the default bucket layout for byte-size histograms:
// 64 B to 16 MiB, ×4 per step.
var SizeBuckets = []float64{
	64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216,
}

// CollectFunc emits a collector's current samples. It runs under the
// registry's read path on every scrape and must not block.
type CollectFunc func(emit func(labels Labels, value float64))

// sample is one registered hot-path instrument.
type sample struct {
	labelKey string // pre-rendered {k="v",...} or ""
	counter  *Counter
	hist     *Histogram
}

// family groups every sample and collector sharing a metric name.
type family struct {
	name    string
	help    string
	typ     string
	bounds  []float64 // histogram families only
	order   []string  // label keys in registration order
	samples map[string]*sample
	collect []CollectFunc
}

// Registry holds a deployment's metric families. Handle resolution
// (Counter, Histogram, …) locks; recording through a resolved handle does
// not. One Registry is shared by every broker of a deployment.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help, typ string) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, samples: make(map[string]*sample)}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %s registered as %s and %s", name, f.typ, typ))
	}
	return f
}

func (f *family) sample(labels Labels) *sample {
	key := renderLabels(labels)
	s, ok := f.samples[key]
	if !ok {
		s = &sample{labelKey: key}
		f.samples[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// Counter resolves (registering on first use) the counter sample with the
// given name and labels. The same name+labels always returns the same
// handle.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.family(name, help, typeCounter).sample(labels)
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Histogram resolves (registering on first use) the histogram sample with
// the given name and labels. bounds are ascending upper bucket bounds;
// they must match across samples of one family (the first registration
// wins). A nil bounds takes LatencyBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labels Labels) *Histogram {
	if bounds == nil {
		bounds = LatencyBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, typeHistogram)
	if f.bounds == nil {
		f.bounds = bounds
	}
	s := f.sample(labels)
	if s.hist == nil {
		s.hist = &Histogram{bounds: f.bounds, counts: make([]atomic.Uint64, len(f.bounds))}
	}
	return s.hist
}

// GaugeFunc registers a pull-model gauge collector: fn runs on every
// scrape and emits the family's current samples. Several collectors may
// share one family (e.g. one per broker node).
func (r *Registry) GaugeFunc(name, help string, fn CollectFunc) {
	r.registerFunc(name, help, typeGauge, fn)
}

// CounterFunc registers a pull-model counter collector, for monotone
// values owned elsewhere (drop counts, WAL segment totals).
func (r *Registry) CounterFunc(name, help string, fn CollectFunc) {
	r.registerFunc(name, help, typeCounter, fn)
}

func (r *Registry) registerFunc(name, help, typ string, fn CollectFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, typ)
	f.collect = append(f.collect, fn)
}

// Total sums a family's current values across all label sets: counter and
// gauge samples plus everything its collectors emit; for a histogram
// family it returns the total observation count. Zero for unknown names.
func (r *Registry) Total(name string) float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.families[name]
	if !ok {
		return 0
	}
	var total float64
	for _, s := range f.samples {
		switch {
		case s.counter != nil:
			total += float64(s.counter.Value())
		case s.hist != nil:
			total += float64(s.hist.Count())
		}
	}
	for _, fn := range f.collect {
		fn(func(_ Labels, v float64) { total += v })
	}
	return total
}

// HistogramStats returns a histogram family's aggregate sum and count
// across all label sets (zeroes for unknown or non-histogram names).
func (r *Registry) HistogramStats(name string) (sum float64, count uint64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.families[name]
	if !ok || f.typ != typeHistogram {
		return 0, 0
	}
	for _, s := range f.samples {
		if s.hist != nil {
			sum += s.hist.Sum()
			count += s.hist.Count()
		}
	}
	return sum, count
}

// exposPool recycles exposition buffers across scrapes: a 1k-family
// render is tens of KiB, and re-growing a fresh buffer per scrape is the
// dominant scrape cost (see BenchmarkWritePrometheus1k). bytes.Buffer —
// not strings.Builder, whose Reset discards its array because String()
// aliases it.
var exposPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4), families in registration order and samples in
// first-seen order, so scrapes are stable across calls.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.writeExposition(w, false)
}

// WritePrometheusExemplars renders the exposition with exemplar trailers
// (`# {note="pub#seq"} value`) after histogram bucket lines — the
// /metrics?exemplars=1 view. Rendering consumes the exemplar window:
// each bucket's worst-observation slot resets. Non-standard in 0.0.4, so
// it never appears on a plain scrape.
func (r *Registry) WritePrometheusExemplars(w io.Writer) error {
	return r.writeExposition(w, true)
}

func (r *Registry) writeExposition(w io.Writer, exemplars bool) error {
	b := exposPool.Get().(*bytes.Buffer)
	b.Reset()
	defer exposPool.Put(b)
	r.mu.RLock()
	for _, name := range r.order {
		f := r.families[name]
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
		for _, key := range f.order {
			s := f.samples[key]
			switch {
			case s.counter != nil:
				writeSample(b, f.name, s.labelKey, float64(s.counter.Value()))
			case s.hist != nil:
				writeHistogram(b, f, s, exemplars)
			}
		}
		for _, fn := range f.collect {
			fn(func(labels Labels, v float64) {
				writeSample(b, f.name, renderLabels(labels), v)
			})
		}
	}
	r.mu.RUnlock()
	_, err := w.Write(b.Bytes())
	return err
}

func writeSample(b *bytes.Buffer, name, labelKey string, v float64) {
	b.WriteString(name)
	b.WriteString(labelKey)
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	b.WriteByte('\n')
}

// writeHistogram renders one histogram sample's cumulative buckets, sum
// and count. Snapshot order — buckets before count — keeps the invariant
// +Inf bucket == count even while writers race the scrape.
func writeHistogram(b *bytes.Buffer, f *family, s *sample, exemplars bool) {
	var cum uint64
	for i, bound := range f.bounds {
		cum += s.hist.counts[i].Load()
		writeBucket(b, f, s, mergeLabelKey(s.labelKey, "le", formatValue(bound)), float64(cum), i, exemplars)
	}
	count := s.hist.Count()
	if count < cum {
		count = cum
	}
	writeBucket(b, f, s, mergeLabelKey(s.labelKey, "le", "+Inf"), float64(count), len(f.bounds), exemplars)
	writeSample(b, f.name+"_sum", s.labelKey, s.hist.Sum())
	writeSample(b, f.name+"_count", s.labelKey, float64(count))
}

// writeBucket renders one cumulative bucket line, with its exemplar
// trailer when requested and one is set.
func writeBucket(b *bytes.Buffer, f *family, s *sample, labelKey string, v float64, bucket int, exemplars bool) {
	b.WriteString(f.name)
	b.WriteString("_bucket")
	b.WriteString(labelKey)
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	if exemplars {
		if note, value, ok := s.hist.takeExemplar(bucket); ok {
			fmt.Fprintf(b, " # {note=%q} %s", note, formatValue(value))
		}
	}
	b.WriteByte('\n')
}

// MetricPoint is one flattened sample in a Gather snapshot: histograms
// expand into their cumulative bucket/sum/count series, so a snapshot is
// a flat list the push exporter can diff and ship as compact JSON.
type MetricPoint struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"` // pre-rendered {k="v",...}
	Type   string  `json:"type"`
	Value  float64 `json:"value"`
}

// Gather snapshots every family — hot-path samples and pull collectors —
// into a flat, deterministically ordered point list. This is the push
// exporter's source: same data as WritePrometheus, structured instead of
// rendered.
func (r *Registry) Gather() []MetricPoint {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []MetricPoint
	for _, name := range r.order {
		f := r.families[name]
		for _, key := range f.order {
			s := f.samples[key]
			switch {
			case s.counter != nil:
				out = append(out, MetricPoint{Name: f.name, Labels: s.labelKey, Type: f.typ, Value: float64(s.counter.Value())})
			case s.hist != nil:
				var cum uint64
				for i, bound := range f.bounds {
					cum += s.hist.counts[i].Load()
					out = append(out, MetricPoint{
						Name: f.name + "_bucket", Labels: mergeLabelKey(s.labelKey, "le", formatValue(bound)),
						Type: typeCounter, Value: float64(cum),
					})
				}
				count := s.hist.Count()
				if count < cum {
					count = cum
				}
				out = append(out, MetricPoint{
					Name: f.name + "_bucket", Labels: mergeLabelKey(s.labelKey, "le", "+Inf"),
					Type: typeCounter, Value: float64(count),
				})
				out = append(out, MetricPoint{Name: f.name + "_sum", Labels: s.labelKey, Type: typeCounter, Value: s.hist.Sum()})
				out = append(out, MetricPoint{Name: f.name + "_count", Labels: s.labelKey, Type: typeCounter, Value: float64(count)})
			}
		}
		for _, fn := range f.collect {
			fn(func(labels Labels, v float64) {
				out = append(out, MetricPoint{Name: f.name, Labels: renderLabels(labels), Type: f.typ, Value: v})
			})
		}
	}
	return out
}

// renderLabels renders a label set as a stable `{k="v",…}` key (empty
// string for no labels); keys sort lexically so equal sets always collide.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q quoting matches the exposition format's label escaping
		// (backslash, quote, newline).
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLabelKey splices one extra label into a pre-rendered label key
// (used for histogram le labels).
func mergeLabelKey(key, name, value string) string {
	extra := fmt.Sprintf("%s=%q", name, value)
	if key == "" {
		return "{" + extra + "}"
	}
	return key[:len(key)-1] + "," + extra + "}"
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", v)
}

func escapeHelp(s string) string {
	return strings.NewReplacer("\\", `\\`, "\n", `\n`).Replace(s)
}
