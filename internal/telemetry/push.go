package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Push body formats.
const (
	PushFormatProm = "prom" // Prometheus text exposition 0.0.4
	PushFormatJSON = "json" // compact delta JSON (pushPayload)
)

// DefaultPushSpool bounds the in-memory spool of undelivered push bodies.
const DefaultPushSpool = 64

// PusherConfig configures a metrics push exporter.
type PusherConfig struct {
	// URL receives POSTed metric snapshots.
	URL string
	// Interval between snapshots (default 15s).
	Interval time.Duration
	// Format is PushFormatProm (default) or PushFormatJSON.
	Format string
	// SpoolCap bounds bodies retained across receiver outages
	// (drop-oldest; default DefaultPushSpool).
	SpoolCap int
	// Instance tags JSON payloads with the reporting broker's identity.
	Instance string
	// Client overrides the HTTP client (default: 5s-timeout client).
	Client *http.Client
	// MaxBackoff caps the retry backoff (default 2m).
	MaxBackoff time.Duration
	// Logger receives delivery-failure warnings (nil = silent).
	Logger *slog.Logger
}

// Pusher periodically snapshots a Registry and POSTs it to a collector —
// the push-model complement to the /metrics scrape endpoint, for brokers
// behind NAT that nothing can scrape. Undeliverable snapshots spool in a
// bounded drop-oldest ring and drain in order once the receiver returns,
// with exponential backoff between failed attempts.
type Pusher struct {
	reg *Registry
	cfg PusherConfig

	mu           sync.Mutex
	spool        [][]byte
	prev         map[string]float64 // last-pushed counter values, JSON deltas
	backoff      time.Duration
	blockedUntil time.Time

	attempts     atomic.Uint64
	failures     atomic.Uint64
	spoolDropped atomic.Uint64

	stop     chan struct{}
	done     chan struct{}
	startErr error
	started  bool
}

// NewPusher builds a pusher over reg. Start launches it.
func NewPusher(reg *Registry, cfg PusherConfig) (*Pusher, error) {
	if cfg.URL == "" {
		return nil, fmt.Errorf("telemetry: push URL required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 15 * time.Second
	}
	switch cfg.Format {
	case "":
		cfg.Format = PushFormatProm
	case PushFormatProm, PushFormatJSON:
	default:
		return nil, fmt.Errorf("telemetry: bad push format %q (want %s|%s)", cfg.Format, PushFormatProm, PushFormatJSON)
	}
	if cfg.SpoolCap <= 0 {
		cfg.SpoolCap = DefaultPushSpool
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Second}
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Minute
	}
	return &Pusher{
		reg:  reg,
		cfg:  cfg,
		prev: make(map[string]float64),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}, nil
}

// Start launches the snapshot/push loop.
func (p *Pusher) Start() {
	p.mu.Lock()
	if p.started {
		p.mu.Unlock()
		return
	}
	p.started = true
	p.mu.Unlock()
	go p.run()
}

func (p *Pusher) run() {
	defer close(p.done)
	t := time.NewTicker(p.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			p.Flush()
		case <-p.stop:
			return
		}
	}
}

// Close stops the loop after one final snapshot and best-effort drain.
func (p *Pusher) Close() {
	p.mu.Lock()
	started := p.started
	p.mu.Unlock()
	if started {
		select {
		case <-p.stop:
		default:
			close(p.stop)
		}
		<-p.done
	}
	p.Flush()
}

// Flush snapshots the registry into the spool and attempts to drain it —
// one synchronous push cycle. Exported so tests and Close can drive the
// cycle without waiting out the interval.
func (p *Pusher) Flush() {
	body, ctype := p.snapshot()
	p.mu.Lock()
	if body != nil {
		if len(p.spool) >= p.cfg.SpoolCap {
			p.spool = p.spool[1:]
			p.spoolDropped.Add(1)
		}
		p.spool = append(p.spool, body)
	}
	if time.Now().Before(p.blockedUntil) {
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	p.drain(ctype)
}

// snapshot renders the current registry state as one push body (nil when
// there is nothing to report, e.g. a JSON delta cycle with no movement).
func (p *Pusher) snapshot() (body []byte, contentType string) {
	if p.cfg.Format == PushFormatJSON {
		return p.snapshotJSON(), "application/json"
	}
	var b bytes.Buffer
	if err := p.reg.WritePrometheus(&b); err != nil || b.Len() == 0 {
		return nil, "text/plain; version=0.0.4"
	}
	return b.Bytes(), "text/plain; version=0.0.4"
}

// pushPayload is the JSON push body: counter movement since the last
// successful snapshot plus absolute gauge readings.
type pushPayload struct {
	Instance string        `json:"instance,omitempty"`
	Points   []MetricPoint `json:"points"`
}

func (p *Pusher) snapshotJSON() []byte {
	points := p.reg.Gather()
	p.mu.Lock()
	out := make([]MetricPoint, 0, len(points))
	for _, pt := range points {
		if pt.Type == typeCounter {
			key := pt.Name + pt.Labels
			prev, seen := p.prev[key]
			p.prev[key] = pt.Value
			delta := pt.Value - prev
			if seen && delta == 0 {
				continue // compact: unchanged counters stay home
			}
			if seen && delta > 0 {
				pt.Value = delta
			}
			// First sighting (or a reset going backwards) ships absolute.
		}
		out = append(out, pt)
	}
	p.mu.Unlock()
	if len(out) == 0 {
		return nil
	}
	body, err := json.Marshal(pushPayload{Instance: p.cfg.Instance, Points: out})
	if err != nil {
		return nil
	}
	return body
}

// drain POSTs spooled bodies in order until empty or a delivery fails
// (which arms the backoff window).
func (p *Pusher) drain(contentType string) {
	for {
		p.mu.Lock()
		if len(p.spool) == 0 {
			p.mu.Unlock()
			return
		}
		body := p.spool[0]
		p.mu.Unlock()

		p.attempts.Add(1)
		err := p.post(body, contentType)
		p.mu.Lock()
		if err != nil {
			p.failures.Add(1)
			if p.backoff <= 0 {
				p.backoff = p.cfg.Interval
			} else {
				p.backoff *= 2
			}
			if p.backoff > p.cfg.MaxBackoff {
				p.backoff = p.cfg.MaxBackoff
			}
			p.blockedUntil = time.Now().Add(p.backoff)
			p.mu.Unlock()
			if p.cfg.Logger != nil {
				p.cfg.Logger.Warn("metrics push failed",
					"url", p.cfg.URL, "err", err, "spooled", p.SpoolLen(), "backoff", p.backoff)
			}
			return
		}
		p.backoff = 0
		p.blockedUntil = time.Time{}
		if len(p.spool) > 0 {
			p.spool = p.spool[1:]
		}
		p.mu.Unlock()
	}
}

func (p *Pusher) post(body []byte, contentType string) error {
	resp, err := p.cfg.Client.Post(p.cfg.URL, contentType, bytes.NewReader(body))
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("receiver returned %s", resp.Status)
	}
	return nil
}

// Attempts counts push POSTs tried.
func (p *Pusher) Attempts() uint64 { return p.attempts.Load() }

// Failures counts push POSTs that failed.
func (p *Pusher) Failures() uint64 { return p.failures.Load() }

// SpoolLen returns the number of bodies awaiting delivery.
func (p *Pusher) SpoolLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.spool)
}

// SpoolDropped counts bodies evicted by the spool bound.
func (p *Pusher) SpoolDropped() uint64 { return p.spoolDropped.Load() }
