package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Push body formats.
const (
	PushFormatProm        = "prom"         // Prometheus text exposition 0.0.4
	PushFormatJSON        = "json"         // compact delta JSON (pushPayload)
	PushFormatRemoteWrite = "remote-write" // Prometheus remote-write 1.0 protobuf
)

// DefaultPushSpool bounds the in-memory spool of undelivered push bodies.
const DefaultPushSpool = 64

// DefaultSpanBatch bounds the span records of one exported batch body.
const DefaultSpanBatch = 256

// InstanceHeader carries the reporting process's identity on every push
// POST, so a collector can attribute bodies that have no in-band instance
// (Prometheus text, span batches).
const InstanceHeader = "X-Rebeca-Instance"

// PusherConfig configures a metrics push exporter.
type PusherConfig struct {
	// URL receives POSTed metric snapshots.
	URL string
	// Interval between snapshots (default 15s).
	Interval time.Duration
	// Format is PushFormatProm (default), PushFormatJSON or
	// PushFormatRemoteWrite.
	Format string
	// SpoolCap bounds bodies retained across receiver outages
	// (drop-oldest; default DefaultPushSpool).
	SpoolCap int
	// Instance tags payloads (and the InstanceHeader) with the reporting
	// broker's identity.
	Instance string
	// Spans, when non-nil, ships completed and retro-captured spans
	// outbound alongside metric snapshots as length-framed JSON batches
	// (ContentTypeSpans), through the same spool/retry machinery. Skip it
	// for remote-write pushes aimed at a real Prometheus backend — only a
	// rebeca collector understands span bodies.
	Spans *SpanStore
	// SpanBatch bounds spans per exported batch (default DefaultSpanBatch).
	SpanBatch int
	// Client overrides the HTTP client (default: 5s-timeout client).
	Client *http.Client
	// MaxBackoff caps the retry backoff (default 2m).
	MaxBackoff time.Duration
	// Logger receives delivery-failure warnings (nil = silent).
	Logger *slog.Logger
}

// pushBody is one spooled POST body with its wire metadata. spans counts
// the span records inside a span batch (0 = a metrics snapshot).
type pushBody struct {
	data  []byte
	ctype string
	spans int
}

// Pusher periodically snapshots a Registry — and, when configured, the
// SpanStore's recent mutations — and POSTs them to a collector: the
// push-model complement to the /metrics scrape endpoint, for brokers
// behind NAT that nothing can scrape. Undeliverable bodies spool in a
// bounded drop-oldest ring and drain in order once the receiver returns,
// with exponential backoff between failed attempts.
type Pusher struct {
	reg *Registry
	cfg PusherConfig

	mu           sync.Mutex
	spool        []pushBody
	prev         map[string]float64 // last-pushed counter values, JSON deltas
	spanCursor   uint64             // SpanStore export cursor
	backoff      time.Duration
	blockedUntil time.Time

	attempts     atomic.Uint64
	failures     atomic.Uint64
	spansShipped atomic.Uint64
	spanFailures atomic.Uint64
	spoolDropped atomic.Uint64

	stop    chan struct{}
	done    chan struct{}
	started bool
}

// NewPusher builds a pusher over reg. Start launches it.
func NewPusher(reg *Registry, cfg PusherConfig) (*Pusher, error) {
	if cfg.URL == "" {
		return nil, fmt.Errorf("telemetry: push URL required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 15 * time.Second
	}
	switch cfg.Format {
	case "":
		cfg.Format = PushFormatProm
	case PushFormatProm, PushFormatJSON, PushFormatRemoteWrite:
	default:
		return nil, fmt.Errorf("telemetry: bad push format %q (want %s|%s|%s)",
			cfg.Format, PushFormatProm, PushFormatJSON, PushFormatRemoteWrite)
	}
	if cfg.SpoolCap <= 0 {
		cfg.SpoolCap = DefaultPushSpool
	}
	if cfg.SpanBatch <= 0 {
		cfg.SpanBatch = DefaultSpanBatch
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Second}
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Minute
	}
	return &Pusher{
		reg:  reg,
		cfg:  cfg,
		prev: make(map[string]float64),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}, nil
}

// Start launches the snapshot/push loop.
func (p *Pusher) Start() {
	p.mu.Lock()
	if p.started {
		p.mu.Unlock()
		return
	}
	p.started = true
	p.mu.Unlock()
	go p.run()
}

func (p *Pusher) run() {
	defer close(p.done)
	t := time.NewTicker(p.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			p.Flush()
		case <-p.stop:
			return
		}
	}
}

// Close stops the loop after one final snapshot and a best-effort drain of
// everything spooled — metric snapshots and span batches alike — even if a
// failed attempt had armed the backoff window.
func (p *Pusher) Close() {
	p.mu.Lock()
	started := p.started
	p.mu.Unlock()
	if started {
		select {
		case <-p.stop:
		default:
			close(p.stop)
		}
		<-p.done
	}
	p.flush(true)
}

// Flush snapshots the registry (and span store) into the spool and
// attempts to drain it — one synchronous push cycle. Exported so tests and
// Close can drive the cycle without waiting out the interval.
func (p *Pusher) Flush() { p.flush(false) }

func (p *Pusher) flush(force bool) {
	metric := p.snapshot()
	spans := p.snapshotSpans()
	p.mu.Lock()
	if metric.data != nil {
		p.spoolLocked(metric)
	}
	if spans.data != nil {
		p.spoolLocked(spans)
	}
	if !force && time.Now().Before(p.blockedUntil) {
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	p.drain()
}

// spoolLocked appends one body under the drop-oldest bound.
func (p *Pusher) spoolLocked(b pushBody) {
	if len(p.spool) >= p.cfg.SpoolCap {
		p.spool = p.spool[1:]
		p.spoolDropped.Add(1)
	}
	p.spool = append(p.spool, b)
}

// snapshot renders the current registry state as one push body (zero body
// when there is nothing to report, e.g. a JSON delta cycle with no
// movement).
func (p *Pusher) snapshot() pushBody {
	switch p.cfg.Format {
	case PushFormatJSON:
		return pushBody{data: p.snapshotJSON(), ctype: "application/json"}
	case PushFormatRemoteWrite:
		body, err := EncodeRemoteWrite(p.reg.Gather(), p.cfg.Instance, time.Now())
		if err != nil || len(body) == 0 {
			return pushBody{}
		}
		return pushBody{data: body, ctype: ContentTypeRemoteWrite}
	}
	var b bytes.Buffer
	if err := p.reg.WritePrometheus(&b); err != nil || b.Len() == 0 {
		return pushBody{}
	}
	return pushBody{data: b.Bytes(), ctype: "text/plain; version=0.0.4"}
}

// snapshotSpans drains the span store's mutations since the last cycle
// into one length-framed batch body. The cursor only advances for spans
// that made it into a body, so nothing is skipped; re-shipping after a
// failed POST is fine — collectors merge idempotently.
func (p *Pusher) snapshotSpans() pushBody {
	if p.cfg.Spans == nil {
		return pushBody{}
	}
	p.mu.Lock()
	cursor := p.spanCursor
	p.mu.Unlock()
	changes, next := p.cfg.Spans.ExportSince(cursor, p.cfg.SpanBatch)
	if len(changes) == 0 {
		return pushBody{}
	}
	recs := make([]SpanExport, 0, len(changes))
	for _, ch := range changes {
		recs = append(recs, spanExportRecord(p.cfg.Instance, ch))
	}
	body, err := EncodeSpanBatch(recs)
	if err != nil {
		return pushBody{}
	}
	p.mu.Lock()
	p.spanCursor = next
	p.mu.Unlock()
	return pushBody{data: body, ctype: ContentTypeSpans, spans: len(recs)}
}

// pushPayload is the JSON push body: counter movement since the last
// successful snapshot plus absolute gauge readings.
type pushPayload struct {
	Instance string        `json:"instance,omitempty"`
	Points   []MetricPoint `json:"points"`
}

func (p *Pusher) snapshotJSON() []byte {
	points := p.reg.Gather()
	p.mu.Lock()
	out := make([]MetricPoint, 0, len(points))
	for _, pt := range points {
		if pt.Type == typeCounter {
			key := pt.Name + pt.Labels
			prev, seen := p.prev[key]
			p.prev[key] = pt.Value
			delta := pt.Value - prev
			if seen && delta == 0 {
				continue // compact: unchanged counters stay home
			}
			if seen && delta > 0 {
				pt.Value = delta
			}
			// First sighting (or a reset going backwards) ships absolute.
		}
		out = append(out, pt)
	}
	p.mu.Unlock()
	if len(out) == 0 {
		return nil
	}
	body, err := json.Marshal(pushPayload{Instance: p.cfg.Instance, Points: out})
	if err != nil {
		return nil
	}
	return body
}

// drain POSTs spooled bodies in order until empty or a delivery fails
// (which arms the backoff window).
func (p *Pusher) drain() {
	for {
		p.mu.Lock()
		if len(p.spool) == 0 {
			p.mu.Unlock()
			return
		}
		body := p.spool[0]
		p.mu.Unlock()

		// Span batches mirror the metric-push health counters on their own
		// pair, so operators can see span loss independently.
		if body.spans == 0 {
			p.attempts.Add(1)
		}
		err := p.post(body)
		p.mu.Lock()
		if err != nil {
			if body.spans > 0 {
				p.spanFailures.Add(1)
			} else {
				p.failures.Add(1)
			}
			if p.backoff <= 0 {
				p.backoff = p.cfg.Interval
			} else {
				p.backoff *= 2
			}
			if p.backoff > p.cfg.MaxBackoff {
				p.backoff = p.cfg.MaxBackoff
			}
			p.blockedUntil = time.Now().Add(p.backoff)
			p.mu.Unlock()
			if p.cfg.Logger != nil {
				p.cfg.Logger.Warn("metrics push failed",
					"url", p.cfg.URL, "err", err, "spooled", p.SpoolLen(), "backoff", p.backoff)
			}
			return
		}
		if body.spans > 0 {
			p.spansShipped.Add(uint64(body.spans))
		}
		p.backoff = 0
		p.blockedUntil = time.Time{}
		if len(p.spool) > 0 {
			p.spool = p.spool[1:]
		}
		p.mu.Unlock()
	}
}

func (p *Pusher) post(body pushBody) error {
	req, err := http.NewRequest(http.MethodPost, p.cfg.URL, bytes.NewReader(body.data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", body.ctype)
	if p.cfg.Instance != "" {
		req.Header.Set(InstanceHeader, p.cfg.Instance)
	}
	if body.ctype == ContentTypeRemoteWrite {
		req.Header.Set("Content-Encoding", "identity")
		req.Header.Set("X-Prometheus-Remote-Write-Version", RemoteWriteVersion)
	}
	resp, err := p.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("receiver returned %s", resp.Status)
	}
	return nil
}

// Attempts counts metric push POSTs tried.
func (p *Pusher) Attempts() uint64 { return p.attempts.Load() }

// Failures counts metric push POSTs that failed.
func (p *Pusher) Failures() uint64 { return p.failures.Load() }

// SpansShipped counts span records delivered to the receiver.
func (p *Pusher) SpansShipped() uint64 { return p.spansShipped.Load() }

// SpanFailures counts span batch POSTs that failed.
func (p *Pusher) SpanFailures() uint64 { return p.spanFailures.Load() }

// SpoolLen returns the number of bodies awaiting delivery.
func (p *Pusher) SpoolLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.spool)
}

// SpoolDropped counts bodies evicted by the spool bound.
func (p *Pusher) SpoolDropped() uint64 { return p.spoolDropped.Load() }
