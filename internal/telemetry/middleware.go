package telemetry

import (
	"sync"
	"sync/atomic"
	"time"

	"rebeca/internal/broker"
	"rebeca/internal/message"
	"rebeca/internal/overlay"
	"rebeca/internal/proto"
)

// Metric names the middleware stage feeds. Exported as constants so the
// ops tooling (rebeca-broker's -stats line, tests, the CI golden-name
// check) can reference them without string drift.
const (
	MetricPublishes      = "rebeca_publishes_total"
	MetricDeliveries     = "rebeca_deliveries_total"
	MetricSubscribes     = "rebeca_subscribes_total"
	MetricLinkUps        = "rebeca_link_establishments_total"
	MetricLinkDowns      = "rebeca_link_failures_total"
	MetricMatchSeconds   = "rebeca_match_seconds"
	MetricE2ESeconds     = "rebeca_e2e_latency_seconds"
	MetricSpansRetained  = "rebeca_trace_spans_retained"
	MetricSpansEvicted   = "rebeca_trace_spans_evicted_total"
	MetricLinkState      = "rebeca_link_state"
	MetricLinkPending    = "rebeca_link_pending"
	MetricLinkDropped    = "rebeca_link_dropped_total"
	MetricFrameBytes     = "rebeca_codec_frame_bytes"
	MetricWALSegments    = "rebeca_wal_segments"
	MetricWALBytes       = "rebeca_wal_bytes"
	MetricStreamBuffered = "rebeca_stream_buffered"
	MetricStreamDropped  = "rebeca_stream_dropped_total"
	MetricRateLimited    = "rebeca_rate_limited_total"
	MetricTracerDropped  = "rebeca_tracer_dropped_total"

	// Discovery subsystem (registry-driven membership + mesh routing).
	MetricDiscoveryPeers     = "rebeca_discovery_peers"
	MetricDiscoveryEvents    = "rebeca_discovery_events_total"
	MetricTreeRecomputations = "rebeca_spanning_tree_recomputations_total"
)

// instruments is one broker's resolved hot-path handles.
type instruments struct {
	publishes    *Counter
	deliveries   *Counter
	subscribes   *Counter
	linkUps      *Counter
	linkDowns    *Counter
	matchSeconds *Histogram
	e2eSeconds   *Histogram
}

// Middleware is the broker-chain stage feeding the registry (and, when
// hop tracing is on, the span store): publish/deliver/subscribe counters,
// match- and end-to-end-latency histograms, link transition counters, and
// the per-broker hop stamp every transit broker appends to a traced
// notification's Path. One instance is shared by every broker of a
// deployment; handles resolve once per broker, after which the hooks cost
// a few atomic adds. Safe for concurrent use.
type Middleware struct {
	broker.PassMiddleware
	reg   *Registry
	spans *SpanStore
	trace atomic.Bool

	mu  sync.Mutex
	ins sync.Map // message.NodeID -> *instruments
}

// NewMiddleware returns a telemetry stage recording into reg. spans may be
// nil; with a span store attached, EnableHopTrace(true) turns on hop
// stamping and span recording.
func NewMiddleware(reg *Registry, spans *SpanStore) *Middleware {
	return &Middleware{reg: reg, spans: spans}
}

// Registry returns the registry this stage records into.
func (t *Middleware) Registry() *Registry { return t.reg }

// Spans returns the attached span store (nil when none).
func (t *Middleware) Spans() *SpanStore { return t.spans }

// EnableHopTrace toggles hop stamping at runtime (the /config trace knob).
// While on, every broker appends its HopStamp to publishes crossing the
// chain and records the accumulated path into the span store.
func (t *Middleware) EnableHopTrace(on bool) { t.trace.Store(on && t.spans != nil) }

// HopTraceEnabled reports whether hop stamping is on.
func (t *Middleware) HopTraceEnabled() bool { return t.trace.Load() }

// at resolves a broker's instruments, registering them on first use.
func (t *Middleware) at(b message.NodeID) *instruments {
	if v, ok := t.ins.Load(b); ok {
		return v.(*instruments)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if v, ok := t.ins.Load(b); ok {
		return v.(*instruments)
	}
	labels := Labels{"broker": string(b)}
	ins := &instruments{
		publishes:  t.reg.Counter(MetricPublishes, "Notifications routed through the broker (every overlay hop counts).", labels),
		deliveries: t.reg.Counter(MetricDeliveries, "Local client deliveries.", labels),
		subscribes: t.reg.Counter(MetricSubscribes, "Subscription installations.", labels),
		linkUps:    t.reg.Counter(MetricLinkUps, "Overlay links reaching established.", labels),
		linkDowns:  t.reg.Counter(MetricLinkDowns, "Established overlay links lost.", labels),
		matchSeconds: t.reg.Histogram(MetricMatchSeconds,
			"Wall time one publish spends in matching and routing at this broker.", LatencyBuckets, labels),
		e2eSeconds: t.reg.Histogram(MetricE2ESeconds,
			"Publish-to-delivery latency observed at delivery (virtual time under the sim).", LatencyBuckets, labels),
	}
	t.ins.Store(b, ins)
	return ins
}

// OnPublish implements broker.Middleware: count, time the rest of the
// chain (matching + routing), and — with hop tracing on — stamp this
// broker onto the notification's path. The stamp mutates the broker-local
// copy, which the broker forwards to its peers, so the path accumulates
// across hops; the codec propagates it on version-2 binary links and gob
// links, and strips it for version-1 peers.
func (t *Middleware) OnPublish(b *broker.Broker, _ message.NodeID, n *message.Notification, next func()) {
	ins := t.at(b.ID())
	ins.publishes.Inc()
	if t.trace.Load() && n != nil {
		self := b.ID()
		if len(n.Path) == 0 || n.Path[len(n.Path)-1].Broker != self {
			n.Path = append(n.Path, message.HopStamp{Broker: self, At: b.Now()})
		}
		t.spans.Record(n.ID, n.Path)
	}
	start := time.Now()
	next()
	ins.matchSeconds.Observe(time.Since(start).Seconds())
}

// OnDeliver implements broker.Middleware: count and observe end-to-end
// latency on the broker's clock.
func (t *Middleware) OnDeliver(b *broker.Broker, _ message.NodeID, n *message.Notification, _ []message.SubID, next func()) {
	ins := t.at(b.ID())
	ins.deliveries.Inc()
	if n != nil && !n.Published.IsZero() {
		if lat := b.Now().Sub(n.Published); lat > 0 {
			ins.e2eSeconds.Observe(lat.Seconds())
		}
	}
	next()
}

// OnSubscribe implements broker.Middleware.
func (t *Middleware) OnSubscribe(b *broker.Broker, _ message.NodeID, _ *proto.Subscription, next func()) {
	t.at(b.ID()).subscribes.Inc()
	next()
}

// OnLinkChange implements the broker.LinkObserver extension: link
// transitions roll into per-broker counters.
func (t *Middleware) OnLinkChange(b *broker.Broker, ev overlay.Event) {
	ins := t.at(b.ID())
	switch {
	case ev.To == overlay.StateEstablished:
		ins.linkUps.Inc()
	case ev.From == overlay.StateEstablished:
		ins.linkDowns.Inc()
	}
}

// RegisterSpanMetrics exposes the span store's occupancy on the registry.
func RegisterSpanMetrics(reg *Registry, spans *SpanStore) {
	reg.GaugeFunc(MetricSpansRetained, "Notification hop paths currently retained by the span store.",
		func(emit func(Labels, float64)) { emit(nil, float64(spans.Len())) })
	reg.CounterFunc(MetricSpansEvicted, "Notification hop paths evicted by the span store's capacity bound.",
		func(emit func(Labels, float64)) { emit(nil, float64(spans.Evicted())) })
}

// compile-time interface checks
var (
	_ broker.Middleware   = (*Middleware)(nil)
	_ broker.LinkObserver = (*Middleware)(nil)
)
