package telemetry

import (
	"sync"
	"sync/atomic"
	"time"

	"rebeca/internal/broker"
	"rebeca/internal/message"
	"rebeca/internal/overlay"
	"rebeca/internal/proto"
)

// Metric names the middleware stage feeds. Exported as constants so the
// ops tooling (rebeca-broker's -stats line, tests, the CI golden-name
// check) can reference them without string drift.
const (
	MetricPublishes      = "rebeca_publishes_total"
	MetricDeliveries     = "rebeca_deliveries_total"
	MetricSubscribes     = "rebeca_subscribes_total"
	MetricLinkUps        = "rebeca_link_establishments_total"
	MetricLinkDowns      = "rebeca_link_failures_total"
	MetricMatchSeconds   = "rebeca_match_seconds"
	MetricE2ESeconds     = "rebeca_e2e_latency_seconds"
	MetricSpansRetained  = "rebeca_trace_spans_retained"
	MetricSpansEvicted   = "rebeca_trace_spans_evicted_total"
	MetricLinkState      = "rebeca_link_state"
	MetricLinkPending    = "rebeca_link_pending"
	MetricLinkDropped    = "rebeca_link_dropped_total"
	MetricFrameBytes     = "rebeca_codec_frame_bytes"
	MetricWALSegments    = "rebeca_wal_segments"
	MetricWALBytes       = "rebeca_wal_bytes"
	MetricStreamBuffered = "rebeca_stream_buffered"
	MetricStreamDropped  = "rebeca_stream_dropped_total"
	MetricRateLimited    = "rebeca_rate_limited_total"
	MetricTracerDropped  = "rebeca_tracer_dropped_total"

	// Discovery subsystem (registry-driven membership + mesh routing).
	MetricDiscoveryPeers     = "rebeca_discovery_peers"
	MetricDiscoveryEvents    = "rebeca_discovery_events_total"
	MetricTreeRecomputations = "rebeca_spanning_tree_recomputations_total"

	// Fleet observability (trace sampling + push export).
	MetricTraceSampled        = "rebeca_trace_sampled_total"
	MetricTraceRetro          = "rebeca_trace_retro_total"
	MetricTracePending        = "rebeca_trace_pending"
	MetricTracePendingEvicted = "rebeca_trace_pending_evicted_total"
	MetricPushAttempts        = "rebeca_push_attempts_total"
	MetricPushFailures        = "rebeca_push_failures_total"
	MetricPushSpooled         = "rebeca_push_spooled"
	MetricPushSpans           = "rebeca_push_spans_total"
	MetricPushSpanFailures    = "rebeca_push_span_failures_total"

	// Outage-proof links (store-backed spill for partition survival).
	MetricLinkSpillDepth   = "rebeca_link_spill_depth"
	MetricLinkSpillBytes   = "rebeca_link_spill_bytes"
	MetricLinkSpillDropped = "rebeca_link_spill_dropped_total"
)

// instruments is one broker's resolved hot-path handles.
type instruments struct {
	publishes    *Counter
	deliveries   *Counter
	subscribes   *Counter
	linkUps      *Counter
	linkDowns    *Counter
	matchSeconds *Histogram
	e2eSeconds   *Histogram
}

// Middleware is the broker-chain stage feeding the registry (and, when
// hop tracing is on, the span store): publish/deliver/subscribe counters,
// match- and end-to-end-latency histograms, link transition counters, and
// the per-broker hop stamp every transit broker appends to a traced
// notification's Path. One instance is shared by every broker of a
// deployment; handles resolve once per broker, after which the hooks cost
// a few atomic adds. Safe for concurrent use.
type Middleware struct {
	broker.PassMiddleware
	reg   *Registry
	spans *SpanStore
	trace atomic.Bool
	smp   atomic.Pointer[Sampler]

	mu  sync.Mutex
	ins sync.Map // message.NodeID -> *instruments
}

// NewMiddleware returns a telemetry stage recording into reg. spans may be
// nil; with a span store attached, EnableHopTrace(true) turns on hop
// stamping and span recording.
func NewMiddleware(reg *Registry, spans *SpanStore) *Middleware {
	return &Middleware{reg: reg, spans: spans}
}

// Registry returns the registry this stage records into.
func (t *Middleware) Registry() *Registry { return t.reg }

// Spans returns the attached span store (nil when none).
func (t *Middleware) Spans() *SpanStore { return t.spans }

// EnableHopTrace toggles hop stamping at runtime (the /config trace knob).
// While on, every broker appends its HopStamp to publishes crossing the
// chain and records the accumulated path into the span store.
func (t *Middleware) EnableHopTrace(on bool) { t.trace.Store(on && t.spans != nil) }

// HopTraceEnabled reports whether hop stamping is on.
func (t *Middleware) HopTraceEnabled() bool { return t.trace.Load() }

// SetSampler attaches (or, with nil, detaches) a trace sampler. Without
// one, hop tracing keeps its original stamp-everything behavior; with
// one, only the 1-in-N sample is stamped and recorded up front, while
// unsampled paths park in the sampler's pending ring for retro-capture
// on slow or dropped verdicts.
func (t *Middleware) SetSampler(s *Sampler) { t.smp.Store(s) }

// Sampler returns the attached trace sampler (nil when none).
func (t *Middleware) Sampler() *Sampler { return t.smp.Load() }

// at resolves a broker's instruments, registering them on first use.
func (t *Middleware) at(b message.NodeID) *instruments {
	if v, ok := t.ins.Load(b); ok {
		return v.(*instruments)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if v, ok := t.ins.Load(b); ok {
		return v.(*instruments)
	}
	labels := Labels{"broker": string(b)}
	ins := &instruments{
		publishes:  t.reg.Counter(MetricPublishes, "Notifications routed through the broker (every overlay hop counts).", labels),
		deliveries: t.reg.Counter(MetricDeliveries, "Local client deliveries.", labels),
		subscribes: t.reg.Counter(MetricSubscribes, "Subscription installations.", labels),
		linkUps:    t.reg.Counter(MetricLinkUps, "Overlay links reaching established.", labels),
		linkDowns:  t.reg.Counter(MetricLinkDowns, "Established overlay links lost.", labels),
		matchSeconds: t.reg.Histogram(MetricMatchSeconds,
			"Wall time one publish spends in matching and routing at this broker.", LatencyBuckets, labels),
		e2eSeconds: t.reg.Histogram(MetricE2ESeconds,
			"Publish-to-delivery latency observed at delivery (virtual time under the sim).", LatencyBuckets, labels),
	}
	t.ins.Store(b, ins)
	return ins
}

// OnPublish implements broker.Middleware: count, time the rest of the
// chain (matching + routing), and — with hop tracing on — stamp this
// broker onto the notification's path. The stamp mutates the broker-local
// copy, which the broker forwards to its peers, so the path accumulates
// across hops; the codec propagates it on version-2 binary links and gob
// links, and strips it for version-1 peers.
func (t *Middleware) OnPublish(b *broker.Broker, _ message.NodeID, n *message.Notification, next func()) {
	ins := t.at(b.ID())
	ins.publishes.Inc()
	if t.trace.Load() && n != nil {
		self := b.ID()
		first := len(n.Path) == 0 || n.Path[len(n.Path)-1].Broker != self
		s := t.smp.Load()
		switch {
		case s == nil || s.Sampled(n.ID):
			// In the sample (or no sampler): stamp and retain up front.
			// Every broker on the path reaches the same verdict from the
			// ID alone, so the trail accumulates with no wire bits.
			if first {
				n.Path = append(n.Path, message.HopStamp{Broker: self, At: b.Now()})
				if s != nil {
					s.sampled.Add(1)
				}
			}
			t.spans.Record(n.ID, n.Path)
		case first:
			// Not sampled: leave the wire untouched, park the stamp so a
			// late slow/drop verdict can still retro-capture the path.
			s.Observe(n.ID, message.HopStamp{Broker: self, At: b.Now()})
		}
	}
	start := time.Now()
	next()
	ins.matchSeconds.Observe(time.Since(start).Seconds())
}

// OnDeliver implements broker.Middleware: count and observe end-to-end
// latency on the broker's clock. Traced deliveries leave the notification
// ID as the latency histogram's exemplar (the /metrics?exemplars=1 →
// /trace cross-link), and with a sampler attached a delivery over the
// slow threshold retro-captures its parked path regardless of the dice.
func (t *Middleware) OnDeliver(b *broker.Broker, _ message.NodeID, n *message.Notification, _ []message.SubID, next func()) {
	ins := t.at(b.ID())
	ins.deliveries.Inc()
	if n != nil && !n.Published.IsZero() {
		if lat := b.Now().Sub(n.Published); lat > 0 {
			sec := lat.Seconds()
			if !t.trace.Load() {
				ins.e2eSeconds.Observe(sec)
			} else if s := t.smp.Load(); s == nil || s.Sampled(n.ID) {
				ins.e2eSeconds.ObserveExemplar(sec, n.ID.String())
				t.spans.Observe(n.ID, lat)
				if s != nil && s.SlowerThan(lat) {
					s.MarkSlow(n.ID, lat)
				}
			} else if s.SlowerThan(lat) {
				s.MarkSlow(n.ID, lat)
				ins.e2eSeconds.ObserveExemplar(sec, n.ID.String())
			} else {
				ins.e2eSeconds.Observe(sec)
			}
		}
	}
	next()
}

// OnDrop implements the broker.DropObserver extension: a notification
// hitting a drop branch (flood fallback, overflow) is a path that always
// matters — retro-capture it with its reason.
func (t *Middleware) OnDrop(b *broker.Broker, id message.NotificationID, reason string) {
	if !t.trace.Load() {
		return
	}
	if s := t.smp.Load(); s != nil {
		s.MarkDropped(id, reason)
	} else if t.spans != nil {
		t.spans.RecordReason(id, nil, 0, reason)
	}
}

// OnSubscribe implements broker.Middleware.
func (t *Middleware) OnSubscribe(b *broker.Broker, _ message.NodeID, _ *proto.Subscription, next func()) {
	t.at(b.ID()).subscribes.Inc()
	next()
}

// OnLinkChange implements the broker.LinkObserver extension: link
// transitions roll into per-broker counters.
func (t *Middleware) OnLinkChange(b *broker.Broker, ev overlay.Event) {
	ins := t.at(b.ID())
	switch {
	case ev.To == overlay.StateEstablished:
		ins.linkUps.Inc()
	case ev.From == overlay.StateEstablished:
		ins.linkDowns.Inc()
	}
}

// RegisterSpanMetrics exposes the span store's occupancy on the registry.
func RegisterSpanMetrics(reg *Registry, spans *SpanStore) {
	reg.GaugeFunc(MetricSpansRetained, "Notification hop paths currently retained by the span store.",
		func(emit func(Labels, float64)) { emit(nil, float64(spans.Len())) })
	reg.CounterFunc(MetricSpansEvicted, "Notification hop paths evicted by the span store's capacity bound.",
		func(emit func(Labels, float64)) { emit(nil, float64(spans.Evicted())) })
}

// RegisterSamplerMetrics exposes a sampler's decisions on the registry:
// how many notifications won the 1-in-N roll here, retro-captures by
// reason, and the pending-ring occupancy.
func RegisterSamplerMetrics(reg *Registry, s *Sampler) {
	reg.CounterFunc(MetricTraceSampled, "Notifications stamped by the 1-in-N trace sample at this broker.",
		func(emit func(Labels, float64)) { emit(nil, float64(s.SampledCount())) })
	reg.CounterFunc(MetricTraceRetro, "Trace spans retro-captured outside the sample, by reason.",
		func(emit func(Labels, float64)) {
			for reason, n := range s.RetroCounts() {
				emit(Labels{"reason": reason}, float64(n))
			}
		})
	reg.GaugeFunc(MetricTracePending, "Hop paths parked in the sampler's pending-decision ring.",
		func(emit func(Labels, float64)) { emit(nil, float64(s.PendingLen())) })
	reg.CounterFunc(MetricTracePendingEvicted, "Parked hop paths evicted by the pending-ring bound before a verdict (retro-capture lost them).",
		func(emit func(Labels, float64)) { emit(nil, float64(s.PendingDropped())) })
}

// RegisterPusherMetrics exposes a push exporter's delivery health on the
// registry, so the pushed bodies themselves report spool pressure and
// receiver outages.
func RegisterPusherMetrics(reg *Registry, p *Pusher) {
	reg.CounterFunc(MetricPushAttempts, "Metric push POSTs attempted.",
		func(emit func(Labels, float64)) { emit(nil, float64(p.Attempts())) })
	reg.CounterFunc(MetricPushFailures, "Metric push POSTs that failed.",
		func(emit func(Labels, float64)) { emit(nil, float64(p.Failures())) })
	reg.GaugeFunc(MetricPushSpooled, "Metric push bodies spooled awaiting delivery.",
		func(emit func(Labels, float64)) { emit(nil, float64(p.SpoolLen())) })
	reg.CounterFunc(MetricPushSpans, "Trace span records shipped to the push receiver.",
		func(emit func(Labels, float64)) { emit(nil, float64(p.SpansShipped())) })
	reg.CounterFunc(MetricPushSpanFailures, "Span batch POSTs that failed.",
		func(emit func(Labels, float64)) { emit(nil, float64(p.SpanFailures())) })
}

// compile-time interface checks
var (
	_ broker.Middleware   = (*Middleware)(nil)
	_ broker.LinkObserver = (*Middleware)(nil)
	_ broker.DropObserver = (*Middleware)(nil)
)
