package telemetry

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"strings"
	"sync"
)

// LogSubsystems names the per-subsystem verbosity gates a Logger manages.
// Each subsystem is an independently tunable slog level: the overlay's
// link transitions, discovery membership events, the store's WAL
// rotation/compaction, the broker core's spanning-tree recomputations,
// and the wire layer's handshake refusals all emit under their own gate,
// so an operator can raise one subsystem to debug without drowning in
// the rest.
var LogSubsystems = []string{"broker", "discovery", "overlay", "store", "wire"}

// Logger is the deployment's structured log root: one slog output sink
// shared by every subsystem, with a runtime-adjustable level gate per
// subsystem (the /config log.<subsystem> knobs and rebeca-broker's
// -log-level flag). For hands internal packages a plain *slog.Logger, so
// they depend only on the standard library. Safe for concurrent use.
type Logger struct {
	sink slog.Handler

	mu     sync.Mutex
	levels map[string]*slog.LevelVar
}

// NewLogger builds a logger writing slog text lines to w (nil discards),
// with every subsystem initially gated at level.
func NewLogger(w io.Writer, level slog.Level) *Logger {
	if w == nil {
		w = io.Discard
	}
	// The sink itself passes everything; filtering is the per-subsystem
	// gate's job, so a knob raising one subsystem to debug takes effect
	// without rebuilding handlers.
	sink := slog.NewTextHandler(w, &slog.HandlerOptions{Level: slog.LevelDebug})
	l := &Logger{sink: sink, levels: make(map[string]*slog.LevelVar, len(LogSubsystems))}
	for _, sub := range LogSubsystems {
		lv := &slog.LevelVar{}
		lv.Set(level)
		l.levels[sub] = lv
	}
	return l
}

// levelVar resolves a subsystem's gate (registering unknown subsystems at
// info, so For never fails).
func (l *Logger) levelVar(subsystem string) *slog.LevelVar {
	l.mu.Lock()
	defer l.mu.Unlock()
	lv, ok := l.levels[subsystem]
	if !ok {
		lv = &slog.LevelVar{}
		lv.Set(slog.LevelInfo)
		l.levels[subsystem] = lv
	}
	return lv
}

// For returns the subsystem's logger: records carry a subsystem attribute
// and pass only while at or above the subsystem's current level gate. The
// returned logger is plain *slog.Logger — hand it to internal packages.
func (l *Logger) For(subsystem string) *slog.Logger {
	return slog.New(&gateHandler{
		inner: l.sink.WithAttrs([]slog.Attr{slog.String("subsystem", subsystem)}),
		level: l.levelVar(subsystem),
	})
}

// SetLevel retunes one subsystem's gate at runtime.
func (l *Logger) SetLevel(subsystem string, level slog.Level) error {
	l.mu.Lock()
	lv, ok := l.levels[subsystem]
	l.mu.Unlock()
	if !ok {
		return fmt.Errorf("unknown log subsystem %q (want one of %s)",
			subsystem, strings.Join(LogSubsystems, ", "))
	}
	lv.Set(level)
	return nil
}

// Level reads one subsystem's current gate (info for unknown names).
func (l *Logger) Level(subsystem string) slog.Level {
	return l.levelVar(subsystem).Level()
}

// SetAllLevels retunes every subsystem's gate at once (the -log-level
// flag's semantics).
func (l *Logger) SetAllLevels(level slog.Level) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, lv := range l.levels {
		lv.Set(level)
	}
}

// RegisterKnobs exposes one log.<subsystem> knob per subsystem on the ops
// endpoint, so POST /config log.overlay=debug raises verbosity without a
// restart.
func (l *Logger) RegisterKnobs(ops *Ops) {
	l.mu.Lock()
	subs := make([]string, 0, len(l.levels))
	for sub := range l.levels {
		subs = append(subs, sub)
	}
	l.mu.Unlock()
	sort.Strings(subs)
	for _, sub := range subs {
		sub := sub
		ops.AddKnob("log."+sub, Knob{
			Help: fmt.Sprintf("%s subsystem log verbosity: debug|info|warn|error", sub),
			Get:  func() string { return FormatLevel(l.Level(sub)) },
			Set: func(v string) error {
				lvl, err := ParseLevel(v)
				if err != nil {
					return err
				}
				return l.SetLevel(sub, lvl)
			},
		})
	}
}

// ParseLevel parses a knob/flag verbosity name into a slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("bad log level %q (want debug|info|warn|error)", s)
}

// ParseLevelDefault parses a verbosity name, falling back to info for ""
// or unparseable input — the forgiving path for already-validated config.
func ParseLevelDefault(s string) slog.Level {
	l, err := ParseLevel(s)
	if err != nil {
		return slog.LevelInfo
	}
	return l
}

// FormatLevel renders a level in the knob vocabulary.
func FormatLevel(l slog.Level) string {
	switch {
	case l <= slog.LevelDebug:
		return "debug"
	case l <= slog.LevelInfo:
		return "info"
	case l <= slog.LevelWarn:
		return "warn"
	}
	return "error"
}

// gateHandler filters records against a shared LevelVar before forwarding
// to the sink — the mechanism behind runtime per-subsystem verbosity.
type gateHandler struct {
	inner slog.Handler
	level *slog.LevelVar
}

func (h *gateHandler) Enabled(_ context.Context, level slog.Level) bool {
	return level >= h.level.Level()
}

func (h *gateHandler) Handle(ctx context.Context, r slog.Record) error {
	return h.inner.Handle(ctx, r)
}

func (h *gateHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &gateHandler{inner: h.inner.WithAttrs(attrs), level: h.level}
}

func (h *gateHandler) WithGroup(name string) slog.Handler {
	return &gateHandler{inner: h.inner.WithGroup(name), level: h.level}
}
