package telemetry

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"rebeca/internal/message"
)

// ContentTypeSpans is the Content-Type of an outbound span batch: a
// sequence of length-framed JSON SpanExport records (4-byte big-endian
// frame length, then that many bytes of JSON).
const ContentTypeSpans = "application/x-rebeca-spans"

// maxSpanFrame bounds one decoded span frame. A record is a hop path plus
// an ID — kilobytes at most; a larger length prefix means a corrupt or
// hostile body and decoding stops with an error instead of allocating.
const maxSpanFrame = 1 << 20

// SpanExport is one span record as shipped to a collector: the reporting
// process, the notification it traces, and the hop trail that process
// knew at export time (an early transit broker ships a prefix, the
// delivering broker the full trail — the collector merges).
type SpanExport struct {
	// Instance identifies the reporting process (a broker ID, or the
	// comma-joined broker IDs of an in-process deployment).
	Instance string `json:"instance,omitempty"`
	// Note is the traced notification ID as "publisher#seq".
	Note string `json:"note"`
	// Hops is the hop trail in stamping order.
	Hops []SpanExportHop `json:"hops,omitempty"`
	// LatencyMS is the worst end-to-end latency observed (0 = none yet).
	LatencyMS float64 `json:"latency_ms,omitempty"`
	// Reason tags retro-captured spans ("slow", "rate-limited", ...).
	Reason string `json:"reason,omitempty"`
}

// SpanExportHop is one hop of a shipped span.
type SpanExportHop struct {
	Broker string    `json:"broker"`
	At     time.Time `json:"at"`
}

// spanExportRecord renders one store change as an export record.
func spanExportRecord(instance string, ch SpanChange) SpanExport {
	rec := SpanExport{
		Instance:  instance,
		Note:      ch.ID.String(),
		LatencyMS: float64(ch.Span.Latency) / float64(time.Millisecond),
		Reason:    ch.Span.Reason,
	}
	for _, h := range ch.Span.Path {
		rec.Hops = append(rec.Hops, SpanExportHop{Broker: string(h.Broker), At: h.At})
	}
	return rec
}

// EncodeSpanBatch renders span records as one length-framed JSON batch
// body (the ContentTypeSpans wire format).
func EncodeSpanBatch(recs []SpanExport) ([]byte, error) {
	var b bytes.Buffer
	var frame [4]byte
	for _, rec := range recs {
		body, err := json.Marshal(rec)
		if err != nil {
			return nil, fmt.Errorf("telemetry: encode span %s: %w", rec.Note, err)
		}
		binary.BigEndian.PutUint32(frame[:], uint32(len(body)))
		b.Write(frame[:])
		b.Write(body)
	}
	return b.Bytes(), nil
}

// DecodeSpanBatch parses a length-framed span batch body. Records decoded
// before a framing error are returned alongside it.
func DecodeSpanBatch(r io.Reader) ([]SpanExport, error) {
	var out []SpanExport
	var frame [4]byte
	for {
		if _, err := io.ReadFull(r, frame[:]); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, fmt.Errorf("telemetry: span batch frame header: %w", err)
		}
		n := binary.BigEndian.Uint32(frame[:])
		if n > maxSpanFrame {
			return out, fmt.Errorf("telemetry: span frame of %d bytes exceeds the %d limit", n, maxSpanFrame)
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(r, body); err != nil {
			return out, fmt.Errorf("telemetry: span batch frame body: %w", err)
		}
		var rec SpanExport
		if err := json.Unmarshal(body, &rec); err != nil {
			return out, fmt.Errorf("telemetry: span batch record: %w", err)
		}
		out = append(out, rec)
	}
}

// ParseNoteID parses the "publisher#seq" rendering of a NotificationID —
// the /trace?note= and span-export ID format.
func ParseNoteID(s string) (message.NotificationID, error) {
	return parseNoteID(s)
}
