package telemetry

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// ContentTypeRemoteWrite is the Content-Type of a Prometheus remote-write
// push body. The protocol also wants an X-Prometheus-Remote-Write-Version
// header; the Pusher sets it alongside Content-Encoding: identity (this
// implementation ships uncompressed — stdlib has no snappy, and identity
// bodies are accepted by Prometheus, Mimir and Thanos receivers).
const ContentTypeRemoteWrite = "application/x-protobuf"

// RemoteWriteVersion is the protocol version header value.
const RemoteWriteVersion = "0.1.0"

// Remote-write 1.0 message schema (prometheus/prompb), hand-rolled:
//
//	message WriteRequest { repeated TimeSeries timeseries = 1; }
//	message TimeSeries   { repeated Label labels = 1; repeated Sample samples = 2; }
//	message Label        { string name = 1; string value = 2; }
//	message Sample       { double value = 1; int64 timestamp = 2; }
//
// Only the encode direction ships in the product; a minimal decoder lives
// in the tests so the golden bodies cannot drift silently.

// RemoteWriteLabel is one label pair of an encoded series.
type RemoteWriteLabel struct {
	Name  string
	Value string
}

// EncodeRemoteWrite renders a Gather snapshot as one remote-write 1.0
// WriteRequest: every point becomes a single-sample TimeSeries named by
// the __name__ label, with the point's labels expanded, instance (when
// non-empty) merged in, and ts as the sample timestamp. Series order is
// the snapshot's (registration) order, so equal snapshots encode to
// byte-equal bodies.
func EncodeRemoteWrite(points []MetricPoint, instance string, ts time.Time) ([]byte, error) {
	tsMillis := ts.UnixMilli()
	var out []byte
	for _, pt := range points {
		labels, err := remoteWriteLabels(pt, instance)
		if err != nil {
			return nil, err
		}
		series := encodeTimeSeries(labels, pt.Value, tsMillis)
		// WriteRequest field 1: embedded TimeSeries message.
		out = appendTag(out, 1, wireBytes)
		out = appendUvarint(out, uint64(len(series)))
		out = append(out, series...)
	}
	return out, nil
}

// remoteWriteLabels expands one point's label set, sorted by name as the
// protocol requires ("__name__" sorts first on its own).
func remoteWriteLabels(pt MetricPoint, instance string) ([]RemoteWriteLabel, error) {
	pairs, err := ParseLabelKey(pt.Labels)
	if err != nil {
		return nil, fmt.Errorf("telemetry: remote-write %s: %w", pt.Name, err)
	}
	labels := make([]RemoteWriteLabel, 0, len(pairs)+2)
	labels = append(labels, RemoteWriteLabel{Name: "__name__", Value: pt.Name})
	seenInstance := false
	for _, p := range pairs {
		if p.Name == "instance" {
			seenInstance = true
		}
		labels = append(labels, p)
	}
	if instance != "" && !seenInstance {
		labels = append(labels, RemoteWriteLabel{Name: "instance", Value: instance})
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].Name < labels[j].Name })
	return labels, nil
}

// protobuf wire types.
const (
	wireVarint  = 0
	wireFixed64 = 1
	wireBytes   = 2
)

func appendTag(b []byte, field int, wire int) []byte {
	return appendUvarint(b, uint64(field)<<3|uint64(wire))
}

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendLenString(b []byte, field int, s string) []byte {
	b = appendTag(b, field, wireBytes)
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func encodeLabel(l RemoteWriteLabel) []byte {
	var b []byte
	b = appendLenString(b, 1, l.Name)
	b = appendLenString(b, 2, l.Value)
	return b
}

func encodeSample(value float64, tsMillis int64) []byte {
	var b []byte
	b = appendTag(b, 1, wireFixed64)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(value))
	// Sample timestamps are int64 varints; push timestamps are always
	// positive, but encode negatives correctly anyway (two's complement,
	// ten bytes) rather than silently corrupting pre-epoch clocks.
	b = appendTag(b, 2, wireVarint)
	b = appendUvarint(b, uint64(tsMillis))
	return b
}

func encodeTimeSeries(labels []RemoteWriteLabel, value float64, tsMillis int64) []byte {
	var b []byte
	for _, l := range labels {
		enc := encodeLabel(l)
		b = appendTag(b, 1, wireBytes)
		b = appendUvarint(b, uint64(len(enc)))
		b = append(b, enc...)
	}
	sample := encodeSample(value, tsMillis)
	b = appendTag(b, 2, wireBytes)
	b = appendUvarint(b, uint64(len(sample)))
	return append(b, sample...)
}

// RemoteWriteSeries is one decoded TimeSeries: its label pairs and single
// sample (the encoder ships one sample per series).
type RemoteWriteSeries struct {
	Labels    []RemoteWriteLabel
	Value     float64
	Timestamp int64 // milliseconds
}

// Name returns the series' __name__ label ("" when absent).
func (s RemoteWriteSeries) Name() string {
	for _, l := range s.Labels {
		if l.Name == "__name__" {
			return l.Value
		}
	}
	return ""
}

// DecodeRemoteWrite parses a WriteRequest body back into series — the
// collector's ingest path for remote-write pushes, and the golden tests'
// proof that the encoder emits what it claims. Unknown fields are
// skipped per protobuf rules.
func DecodeRemoteWrite(body []byte) ([]RemoteWriteSeries, error) {
	var out []RemoteWriteSeries
	for len(body) > 0 {
		field, wire, rest, err := readTag(body)
		if err != nil {
			return nil, err
		}
		body = rest
		if field == 1 && wire == wireBytes {
			msg, rest, err := readBytes(body)
			if err != nil {
				return nil, err
			}
			body = rest
			series, err := decodeTimeSeries(msg)
			if err != nil {
				return nil, err
			}
			out = append(out, series)
			continue
		}
		if body, err = skipField(body, wire); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func decodeTimeSeries(b []byte) (RemoteWriteSeries, error) {
	var s RemoteWriteSeries
	for len(b) > 0 {
		field, wire, rest, err := readTag(b)
		if err != nil {
			return s, err
		}
		b = rest
		switch {
		case field == 1 && wire == wireBytes: // Label
			msg, rest, err := readBytes(b)
			if err != nil {
				return s, err
			}
			b = rest
			l, err := decodeLabel(msg)
			if err != nil {
				return s, err
			}
			s.Labels = append(s.Labels, l)
		case field == 2 && wire == wireBytes: // Sample
			msg, rest, err := readBytes(b)
			if err != nil {
				return s, err
			}
			b = rest
			if err := decodeSample(msg, &s); err != nil {
				return s, err
			}
		default:
			if b, err = skipField(b, wire); err != nil {
				return s, err
			}
		}
	}
	return s, nil
}

func decodeLabel(b []byte) (RemoteWriteLabel, error) {
	var l RemoteWriteLabel
	for len(b) > 0 {
		field, wire, rest, err := readTag(b)
		if err != nil {
			return l, err
		}
		b = rest
		if wire == wireBytes {
			str, rest, err := readBytes(b)
			if err != nil {
				return l, err
			}
			b = rest
			switch field {
			case 1:
				l.Name = string(str)
			case 2:
				l.Value = string(str)
			}
			continue
		}
		if b, err = skipField(b, wire); err != nil {
			return l, err
		}
	}
	return l, nil
}

func decodeSample(b []byte, s *RemoteWriteSeries) error {
	for len(b) > 0 {
		field, wire, rest, err := readTag(b)
		if err != nil {
			return err
		}
		b = rest
		switch {
		case field == 1 && wire == wireFixed64:
			if len(b) < 8 {
				return fmt.Errorf("telemetry: remote-write sample truncated")
			}
			s.Value = math.Float64frombits(binary.LittleEndian.Uint64(b))
			b = b[8:]
		case field == 2 && wire == wireVarint:
			v, n := binary.Uvarint(b)
			if n <= 0 {
				return fmt.Errorf("telemetry: remote-write timestamp truncated")
			}
			s.Timestamp = int64(v)
			b = b[n:]
		default:
			if b, err = skipField(b, wire); err != nil {
				return err
			}
		}
	}
	return nil
}

func readTag(b []byte) (field int, wire int, rest []byte, err error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, 0, nil, fmt.Errorf("telemetry: remote-write tag truncated")
	}
	return int(v >> 3), int(v & 7), b[n:], nil
}

func readBytes(b []byte) (msg, rest []byte, err error) {
	v, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b)-n) < v {
		return nil, nil, fmt.Errorf("telemetry: remote-write length truncated")
	}
	return b[n : n+int(v)], b[n+int(v):], nil
}

func skipField(b []byte, wire int) ([]byte, error) {
	switch wire {
	case wireVarint:
		_, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, fmt.Errorf("telemetry: remote-write varint truncated")
		}
		return b[n:], nil
	case wireFixed64:
		if len(b) < 8 {
			return nil, fmt.Errorf("telemetry: remote-write fixed64 truncated")
		}
		return b[8:], nil
	case wireBytes:
		_, rest, err := readBytes(b)
		return rest, err
	default:
		return nil, fmt.Errorf("telemetry: remote-write wire type %d unsupported", wire)
	}
}

// ParseLabelKey parses a pre-rendered `{k="v",...}` label key (the
// MetricPoint.Labels / sample labelKey format) back into pairs. The
// rendering escapes values with %q, so values round-trip through
// strconv.Unquote. "" parses to no pairs.
func ParseLabelKey(key string) ([]RemoteWriteLabel, error) {
	if key == "" {
		return nil, nil
	}
	if len(key) < 2 || key[0] != '{' || key[len(key)-1] != '}' {
		return nil, fmt.Errorf("bad label key %q", key)
	}
	s := key[1 : len(key)-1]
	var out []RemoteWriteLabel
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 || eq+1 >= len(s) || s[eq+1] != '"' {
			return nil, fmt.Errorf("bad label key %q", key)
		}
		name := s[:eq]
		rest := s[eq+1:]
		end := quotedEnd(rest)
		if end < 0 {
			return nil, fmt.Errorf("bad label key %q: unterminated value", key)
		}
		value, err := strconv.Unquote(rest[:end+1])
		if err != nil {
			return nil, fmt.Errorf("bad label key %q: %v", key, err)
		}
		out = append(out, RemoteWriteLabel{Name: name, Value: value})
		s = rest[end+1:]
		if len(s) > 0 {
			if s[0] != ',' {
				return nil, fmt.Errorf("bad label key %q", key)
			}
			s = s[1:]
		}
	}
	return out, nil
}

// quotedEnd returns the index of the closing quote of a leading %q-quoted
// string (respecting backslash escapes), -1 if unterminated.
func quotedEnd(s string) int {
	if len(s) == 0 || s[0] != '"' {
		return -1
	}
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return i
		}
	}
	return -1
}
