package collector

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"rebeca/internal/telemetry"
)

// postBody pushes one body through the collector's HTTP surface.
func postBody(t *testing.T, c *Collector, ctype, instance string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", "/ingest", bytes.NewReader(body))
	req.Header.Set("Content-Type", ctype)
	if instance != "" {
		req.Header.Set(telemetry.InstanceHeader, instance)
	}
	w := httptest.NewRecorder()
	c.Handler().ServeHTTP(w, req)
	return w
}

func postSpans(t *testing.T, c *Collector, instance string, recs []telemetry.SpanExport) {
	t.Helper()
	body, err := telemetry.EncodeSpanBatch(recs)
	if err != nil {
		t.Fatalf("EncodeSpanBatch: %v", err)
	}
	if w := postBody(t, c, telemetry.ContentTypeSpans, instance, body); w.Code != 204 {
		t.Fatalf("span push: %d %s", w.Code, w.Body)
	}
}

func getJSON(t *testing.T, c *Collector, path string, into any) int {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	w := httptest.NewRecorder()
	c.Handler().ServeHTTP(w, req)
	if w.Code == 200 {
		if err := json.Unmarshal(w.Body.Bytes(), into); err != nil {
			t.Fatalf("GET %s: decode: %v\n%s", path, err, w.Body)
		}
	}
	return w.Code
}

// TestTraceAssemblyAdversity drives the assembly through the failure
// modes a real fleet produces — duplicated shipments, out-of-order
// arrival, partial paths — and requires an idempotent, hop-timestamp-
// ordered result.
func TestTraceAssemblyAdversity(t *testing.T) {
	c := New(Config{})
	t0 := time.Unix(1700000000, 0).UTC()
	// The delivering broker B ships the full trail; transit broker A ships
	// only its prefix — and its batch arrives FIRST? No: out of order, B's
	// full trail lands before A's prefix.
	full := telemetry.SpanExport{
		Instance: "B", Note: "pub#1", LatencyMS: 2.5,
		Hops: []telemetry.SpanExportHop{
			{Broker: "A", At: t0},
			{Broker: "B", At: t0.Add(2 * time.Millisecond)},
		},
	}
	prefix := telemetry.SpanExport{
		Instance: "A", Note: "pub#1",
		Hops: []telemetry.SpanExportHop{{Broker: "A", At: t0}},
	}
	postSpans(t, c, "B", []telemetry.SpanExport{full})
	postSpans(t, c, "A", []telemetry.SpanExport{prefix})
	// Duplicated shipments (the pusher is at-least-once): same records again.
	postSpans(t, c, "B", []telemetry.SpanExport{full})
	postSpans(t, c, "A", []telemetry.SpanExport{prefix, prefix})

	var tr AssembledTrace
	if code := getJSON(t, c, "/trace?note=pub%231", &tr); code != 200 {
		t.Fatalf("/trace = %d", code)
	}
	if len(tr.Hops) != 2 {
		t.Fatalf("assembled %d hops, want 2 (duplicates must merge): %+v", len(tr.Hops), tr.Hops)
	}
	if tr.Hops[0].Broker != "A" || tr.Hops[1].Broker != "B" {
		t.Fatalf("hops out of stamp order: %+v", tr.Hops)
	}
	for i, h := range tr.Hops {
		if h.Hop != i {
			t.Fatalf("hop index %d = %d", i, h.Hop)
		}
		if i > 0 && h.At.Before(tr.Hops[i-1].At) {
			t.Fatalf("hop timestamps not monotone: %+v", tr.Hops)
		}
	}
	if tr.Partial {
		t.Fatalf("both hop brokers reported; trace marked partial: %+v", tr)
	}
	if tr.LatencyMS != 2.5 {
		t.Fatalf("latency = %v, want 2.5", tr.LatencyMS)
	}
	if len(tr.Reporters) != 2 {
		t.Fatalf("reporters = %v, want [A B]", tr.Reporters)
	}
	if c.TraceCount() != 1 {
		t.Fatalf("TraceCount = %d, want 1", c.TraceCount())
	}

	// Partial path: a hop names broker C, but C never pushed to this
	// collector — the assembled view cannot be assumed complete.
	postSpans(t, c, "A", []telemetry.SpanExport{{
		Instance: "A", Note: "pub#2",
		Hops: []telemetry.SpanExportHop{
			{Broker: "A", At: t0},
			{Broker: "C", At: t0.Add(time.Millisecond)},
		},
	}})
	var tr2 AssembledTrace
	if code := getJSON(t, c, "/trace?note=pub%232", &tr2); code != 200 {
		t.Fatalf("/trace = %d", code)
	}
	if !tr2.Partial {
		t.Fatalf("hop broker C never reported; trace not marked partial: %+v", tr2)
	}
	// ...until C's shipment arrives, which completes it.
	postSpans(t, c, "C", []telemetry.SpanExport{{
		Instance: "C", Note: "pub#2",
		Hops: []telemetry.SpanExportHop{{Broker: "C", At: t0.Add(time.Millisecond)}},
	}})
	if getJSON(t, c, "/trace?note=pub%232", &tr2); tr2.Partial {
		t.Fatalf("all brokers reported; still partial: %+v", tr2)
	}

	// A deployment instance ("A,B" — in-process brokers pushing through
	// one pusher) covers every broker it joins.
	postSpans(t, c, "A,B", []telemetry.SpanExport{{
		Instance: "A,B", Note: "pub#3",
		Hops: []telemetry.SpanExportHop{
			{Broker: "A", At: t0},
			{Broker: "B", At: t0.Add(time.Millisecond)},
		},
	}})
	var tr3 AssembledTrace
	getJSON(t, c, "/trace?note=pub%233", &tr3)
	if tr3.Partial || len(tr3.Hops) != 2 {
		t.Fatalf("deployment-instance trace: %+v", tr3)
	}

	// Reason-only retro-capture records (no hops yet) assemble too and
	// read as partial.
	postSpans(t, c, "A", []telemetry.SpanExport{{Instance: "A", Note: "pub#4", Reason: "rate-limited"}})
	var tr4 AssembledTrace
	getJSON(t, c, "/trace?note=pub%234", &tr4)
	if tr4.Reason != "rate-limited" || !tr4.Partial {
		t.Fatalf("reason-only trace: %+v", tr4)
	}

	// The listing returns newest-first.
	var list struct {
		Retained int              `json:"retained"`
		Traces   []AssembledTrace `json:"traces"`
	}
	getJSON(t, c, "/trace", &list)
	if list.Retained != 4 || len(list.Traces) != 4 || list.Traces[0].Note != "pub#4" {
		t.Fatalf("trace listing: retained=%d first=%+v", list.Retained, list.Traces)
	}
}

func TestTraceRetentionBound(t *testing.T) {
	c := New(Config{TraceCap: 2})
	t0 := time.Unix(1700000000, 0).UTC()
	for i := 1; i <= 3; i++ {
		postSpans(t, c, "A", []telemetry.SpanExport{{
			Instance: "A", Note: fmt.Sprintf("pub#%d", i),
			Hops: []telemetry.SpanExportHop{{Broker: "A", At: t0.Add(time.Duration(i) * time.Millisecond)}},
		}})
	}
	if c.TraceCount() != 2 {
		t.Fatalf("TraceCount = %d, want 2", c.TraceCount())
	}
	var tr AssembledTrace
	if code := getJSON(t, c, "/trace?note=pub%231", &tr); code != 404 {
		t.Fatalf("evicted trace returned %d, want 404", code)
	}
	got := c.Traces(0)
	if len(got) != 2 || got[0].Note != "pub#3" || got[1].Note != "pub#2" {
		t.Fatalf("retained traces: %+v", got)
	}
}

// TestMetricFoldingProm pushes Prometheus text snapshots from two
// brokers and checks per-instance re-export plus fleet delta folding
// with counter-reset handling.
func TestMetricFoldingProm(t *testing.T) {
	c := New(Config{})
	prom := func(v int) []byte {
		return []byte(fmt.Sprintf(
			"# HELP rebeca_publishes_total Client publishes accepted.\n"+
				"# TYPE rebeca_publishes_total counter\n"+
				"rebeca_publishes_total{broker=\"A\"} %d\n"+
				"# TYPE rebeca_link_state gauge\n"+
				"rebeca_link_state{link=\"A-B\"} 1\n", v))
	}
	if w := postBody(t, c, "text/plain; version=0.0.4", "A", prom(5)); w.Code != 204 {
		t.Fatalf("prom push: %d %s", w.Code, w.Body)
	}
	postBody(t, c, "text/plain; version=0.0.4", "B", []byte(
		"# TYPE rebeca_publishes_total counter\nrebeca_publishes_total{broker=\"B\"} 2\n"))

	out := string(c.renderMetrics())
	for _, want := range []string{
		`rebeca_publishes_total{broker="A",instance="A"} 5`,
		`rebeca_publishes_total{broker="B",instance="B"} 2`,
		`rebeca_link_state{link="A-B",instance="A"} 1`,
		`rebeca_fleet_publishes_total 7`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("merged render missing %q:\n%s", want, out)
		}
	}

	// Second push folds only the movement.
	postBody(t, c, "text/plain; version=0.0.4", "A", prom(9))
	out = string(c.renderMetrics())
	if !strings.Contains(out, "rebeca_fleet_publishes_total 11") {
		t.Fatalf("delta fold wrong (want 2+9=11):\n%s", out)
	}
	// A counter going backwards is a broker restart: the new reading is
	// all new movement, not a negative delta.
	postBody(t, c, "text/plain; version=0.0.4", "A", prom(3))
	out = string(c.renderMetrics())
	if !strings.Contains(out, "rebeca_fleet_publishes_total 14") {
		t.Fatalf("reset fold wrong (want 11+3=14):\n%s", out)
	}
	// Gauges never fold into fleet totals.
	if strings.Contains(out, "rebeca_fleet_link_state") {
		t.Fatalf("gauge folded into a fleet total:\n%s", out)
	}
}

func TestMetricFoldingJSONAndRemoteWrite(t *testing.T) {
	c := New(Config{})
	// JSON bodies carry deltas for counters; the in-band instance wins.
	body, _ := json.Marshal(map[string]any{
		"instance": "J",
		"points": []telemetry.MetricPoint{
			{Name: "rebeca_deliveries_total", Labels: `{broker="J"}`, Type: "counter", Value: 4},
			{Name: "rebeca_trace_pending", Type: "gauge", Value: 7},
		},
	})
	if w := postBody(t, c, "application/json", "", body); w.Code != 204 {
		t.Fatalf("json push: %d %s", w.Code, w.Body)
	}
	body2, _ := json.Marshal(map[string]any{
		"instance": "J",
		"points": []telemetry.MetricPoint{
			{Name: "rebeca_deliveries_total", Labels: `{broker="J"}`, Type: "counter", Value: 3},
		},
	})
	postBody(t, c, "application/json", "", body2)

	out := string(c.renderMetrics())
	for _, want := range []string{
		`rebeca_deliveries_total{broker="J",instance="J"} 7`, // deltas accumulate
		`rebeca_trace_pending{instance="J"} 7`,
		`rebeca_fleet_deliveries_total 7`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("merged render missing %q:\n%s", want, out)
		}
	}

	// Remote-write bodies: absolute samples, _total names fold.
	rw, err := telemetry.EncodeRemoteWrite([]telemetry.MetricPoint{
		{Name: "rebeca_publishes_total", Labels: `{broker="R"}`, Type: "counter", Value: 10},
	}, "R", time.UnixMilli(1700000000000))
	if err != nil {
		t.Fatalf("EncodeRemoteWrite: %v", err)
	}
	if w := postBody(t, c, telemetry.ContentTypeRemoteWrite, "", rw); w.Code != 204 {
		t.Fatalf("remote-write push: %d %s", w.Code, w.Body)
	}
	out = string(c.renderMetrics())
	for _, want := range []string{
		`rebeca_publishes_total{broker="R",instance="R"} 10`,
		`rebeca_fleet_publishes_total 10`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("merged render missing %q:\n%s", want, out)
		}
	}

	var fleet FleetStatus
	getJSON(t, c, "/fleet", &fleet)
	if len(fleet.Brokers) != 2 {
		t.Fatalf("fleet brokers = %+v, want J and R", fleet.Brokers)
	}
}

// TestStaleness drives the push-interval-derived deadline with a fake
// clock: a broker pushing every second goes stale once silent past 2x
// its cadence.
func TestStaleness(t *testing.T) {
	now := time.Unix(1700000000, 0).UTC()
	c := New(Config{Now: func() time.Time { return now }})
	push := func() {
		postBody(t, c, "text/plain; version=0.0.4", "A",
			[]byte("# TYPE rebeca_publishes_total counter\nrebeca_publishes_total 1\n"))
	}
	push()
	now = now.Add(time.Second)
	push()

	var fleet FleetStatus
	getJSON(t, c, "/fleet", &fleet)
	if fleet.Brokers[0].Status != "ok" || fleet.Brokers[0].StaleAfterMS != 2000 {
		t.Fatalf("fresh broker: %+v", fleet.Brokers[0])
	}

	// 1.5s silent: inside the 2x deadline.
	now = now.Add(1500 * time.Millisecond)
	getJSON(t, c, "/fleet", &fleet)
	if fleet.Brokers[0].Status != "ok" {
		t.Fatalf("broker stale inside deadline: %+v", fleet.Brokers[0])
	}

	// Past 2x the observed interval: stale.
	now = now.Add(time.Second)
	getJSON(t, c, "/fleet", &fleet)
	if fleet.Brokers[0].Status != "stale" || fleet.Stale != 1 {
		t.Fatalf("silent broker not stale: %+v", fleet)
	}

	// A fresh push recovers it.
	push()
	getJSON(t, c, "/fleet", &fleet)
	if fleet.Brokers[0].Status != "ok" {
		t.Fatalf("recovered broker still stale: %+v", fleet.Brokers[0])
	}

	// A fixed -stale-after overrides the derived deadline.
	c2 := New(Config{StaleAfter: 10 * time.Second, Now: func() time.Time { return now }})
	postBody(t, c2, "text/plain; version=0.0.4", "A",
		[]byte("# TYPE x_total counter\nx_total 1\n"))
	now = now.Add(5 * time.Second)
	getJSON(t, c2, "/fleet", &fleet)
	if fleet.Brokers[0].Status != "ok" || fleet.Brokers[0].StaleAfterMS != 10000 {
		t.Fatalf("fixed deadline: %+v", fleet.Brokers[0])
	}
	now = now.Add(6 * time.Second)
	getJSON(t, c2, "/fleet", &fleet)
	if fleet.Brokers[0].Status != "stale" {
		t.Fatalf("fixed deadline never fired: %+v", fleet.Brokers[0])
	}
}

// expositionLine is the 0.0.4 shape CI validates scrapes against.
var expositionLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?([0-9.eE+-]+|\+Inf|NaN)$`)

// TestMergedExpositionStrict renders the merged fleet scrape — self
// telemetry, two brokers (one with a histogram), fleet totals — and
// requires strict 0.0.4: every sample line parseable, exactly one TYPE
// line per family.
func TestMergedExpositionStrict(t *testing.T) {
	c := New(Config{})
	// A broker snapshot with a histogram family, straight from a real
	// registry render.
	reg := telemetry.NewRegistry()
	reg.Counter("rebeca_publishes_total", "publishes", telemetry.Labels{"broker": "A"}).Add(3)
	reg.Histogram("rebeca_e2e_latency_seconds", "latency", nil, telemetry.Labels{"broker": "A"}).Observe(0.004)
	var promBody bytes.Buffer
	if err := reg.WritePrometheus(&promBody); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	postBody(t, c, "text/plain; version=0.0.4", "A", promBody.Bytes())
	postBody(t, c, "text/plain; version=0.0.4", "B",
		[]byte("# TYPE rebeca_publishes_total counter\nrebeca_publishes_total{broker=\"B\"} 1\n"))

	out := string(c.renderMetrics())
	types := make(map[string]int)
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("bad TYPE line: %q", line)
			}
			types[fields[2]]++
			continue
		}
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Fatalf("bad exposition line: %q", line)
		}
	}
	for name, n := range types {
		if n != 1 {
			t.Fatalf("family %s has %d TYPE lines", name, n)
		}
	}
	// One histogram family block, not three counter families.
	if types["rebeca_e2e_latency_seconds"] != 1 || types["rebeca_e2e_latency_seconds_bucket"] != 0 {
		t.Fatalf("histogram family split: %v", types)
	}
	// Self-telemetry and fleet totals are present.
	for _, want := range []string{
		"# TYPE " + MetricPushes + " counter",
		"# TYPE " + telemetry.MetricGoGoroutines + " gauge",
		`instance="collector"`,
		"rebeca_fleet_publishes_total 4",
		`rebeca_e2e_latency_seconds_bucket{broker="A",le="+Inf",instance="A"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("merged render missing %q:\n%s", want, out)
		}
	}
}

// TestIngestRejectsGarbage covers the error paths: undecodable bodies
// 400 and count on the error counter, not the accept counter.
func TestIngestRejectsGarbage(t *testing.T) {
	c := New(Config{})
	if w := postBody(t, c, "application/json", "A", []byte("{nope")); w.Code != 400 {
		t.Fatalf("bad json: %d", w.Code)
	}
	if w := postBody(t, c, telemetry.ContentTypeSpans, "A", []byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2}); w.Code != 400 {
		t.Fatalf("bad span frame: %d", w.Code)
	}
	if w := postBody(t, c, telemetry.ContentTypeRemoteWrite, "A", []byte{0x99, 0x01}); w.Code != 400 {
		t.Fatalf("bad protobuf: %d", w.Code)
	}
	if c.Accepted() != 0 {
		t.Fatalf("Accepted = %d after rejects, want 0", c.Accepted())
	}
	if got := c.self.Total(MetricPushErrors); got != 3 {
		t.Fatalf("push errors = %v, want 3", got)
	}
	// GET on the ingest path is a 405, like the pushsink before it.
	req := httptest.NewRequest("GET", "/somewhere", nil)
	w := httptest.NewRecorder()
	c.Handler().ServeHTTP(w, req)
	if w.Code != 405 {
		t.Fatalf("GET /somewhere = %d, want 405", w.Code)
	}
}

// TestFleetSpillDepth: per-broker spill gauges roll up onto /fleet so
// an operator watches a partition backlog drain fleet-wide.
func TestFleetSpillDepth(t *testing.T) {
	c := New(Config{})
	postBody(t, c, "text/plain; version=0.0.4", "A", []byte(
		"# TYPE rebeca_link_spill_depth gauge\n"+
			`rebeca_link_spill_depth{broker="A",peer="B"} 7`+"\n"+
			`rebeca_link_spill_depth{broker="A",peer="C"} 5`+"\n"))
	postBody(t, c, "text/plain; version=0.0.4", "B", []byte(
		"# TYPE rebeca_publishes_total counter\nrebeca_publishes_total 1\n"))

	var fleet FleetStatus
	getJSON(t, c, "/fleet", &fleet)
	if len(fleet.Brokers) != 2 {
		t.Fatalf("brokers = %d, want 2", len(fleet.Brokers))
	}
	byName := map[string]FleetBroker{}
	for _, b := range fleet.Brokers {
		byName[b.Instance] = b
	}
	if byName["A"].SpillDepth != 12 {
		t.Fatalf("A spill depth = %v, want 12 (7+5 across links)", byName["A"].SpillDepth)
	}
	if byName["B"].SpillDepth != 0 {
		t.Fatalf("B spill depth = %v, want 0", byName["B"].SpillDepth)
	}
}
