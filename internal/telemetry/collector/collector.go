// Package collector implements the fleet-side receiver for rebeca's
// push-model telemetry: the component a broker's -push flag points at.
// It ingests metric snapshots (Prometheus text, compact JSON deltas, or
// remote-write protobuf) and span batches from N brokers, assembles the
// partial per-process hop traces into cross-broker end-to-end traces,
// folds counter movement into fleet-wide totals, and re-exports the
// whole fleet as one Prometheus /metrics endpoint with per-broker
// instance labels preserved.
//
// The collector is deliberately stateless across restarts: brokers keep
// pushing, and within one push interval the fleet view rebuilds itself.
package collector

import (
	"fmt"
	"io"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"time"

	"rebeca/internal/message"
	"rebeca/internal/telemetry"
)

// Collector self-telemetry family names (exported on its own /metrics
// next to the ingested fleet families).
const (
	MetricPushes        = "rebeca_collector_pushes_total"
	MetricPushErrors    = "rebeca_collector_push_errors_total"
	MetricSpanRecords   = "rebeca_collector_span_records_total"
	MetricTraces        = "rebeca_collector_traces"
	MetricTracesEvicted = "rebeca_collector_traces_evicted_total"
	MetricBrokers       = "rebeca_collector_brokers"
)

// FleetPrefix heads every folded fleet-total family name.
const FleetPrefix = "rebeca_fleet_"

// DefaultTraceCap bounds assembled traces retained (drop-oldest).
const DefaultTraceCap = 4096

// DefaultStaleAfter is the staleness deadline used for a broker whose
// push cadence is not yet known (fewer than two pushes seen) when no
// explicit Config.StaleAfter overrides it.
const DefaultStaleAfter = 30 * time.Second

// burstFloor is the smallest inter-push gap accepted as a cadence
// reading. A broker's flush posts its metric snapshot and span batch
// back to back; treating that burst as the push interval would derive
// a near-zero staleness deadline and flag every broker stale.
const burstFloor = 250 * time.Millisecond

// Config configures a Collector.
type Config struct {
	// Instance labels the collector's own self-telemetry samples on the
	// merged /metrics render (default "collector").
	Instance string
	// StaleAfter, when positive, is a fixed deadline after which a silent
	// broker is reported stale on /fleet. Zero derives the deadline from
	// each broker's observed push cadence: 2x the last inter-push gap
	// (DefaultStaleAfter until a gap has been observed).
	StaleAfter time.Duration
	// TraceCap bounds assembled traces retained (default DefaultTraceCap).
	TraceCap int
	// Logger receives per-push debug lines (nil = silent).
	Logger *slog.Logger
	// Raw, when non-nil, receives every accepted push body verbatim
	// (framed with a one-line header) — the rebeca-pushsink audit-trail
	// behavior, kept for CI and debugging.
	Raw io.Writer
	// Now overrides the clock (tests). Nil means time.Now.
	Now func() time.Time
}

// rowState is one re-exported sample: a series of some broker, with the
// instance label already merged into labelKey. For counter rows value
// tracks the last absolute reading (the fold baseline).
type rowState struct {
	fullName string
	labelKey string
	value    float64
}

// familyState groups the re-exported rows sharing a metric family.
type familyState struct {
	name  string
	typ   string
	rows  []*rowState
	index map[string]int
}

// instanceState is everything known about one reporting process.
type instanceState struct {
	name        string
	lastPush    time.Time
	gap         time.Duration // last inter-push gap; cadence estimate
	pushes      uint64
	spanRecords uint64
}

// traceState is one cross-broker trace under assembly: the union of hop
// stamps shipped by every reporting process, keyed by broker so
// duplicated shipments merge idempotently (earliest stamp wins).
type traceState struct {
	id        message.NotificationID
	hops      map[string]time.Time
	reporters map[string]struct{}
	latencyMS float64
	reason    string
	updated   time.Time
}

// counter-fold semantics of an ingested sample.
const (
	foldGauge      = iota // absolute, never folded
	foldCounterAbs        // absolute cumulative (prom text, remote-write)
	foldCounterDel        // pre-computed delta (JSON push bodies)
)

// Collector ingests broker pushes and serves the assembled fleet view.
// Safe for concurrent use.
type Collector struct {
	cfg  Config
	self *telemetry.Registry

	pushMetrics *telemetry.Counter
	pushSpans   *telemetry.Counter
	pushErrors  *telemetry.Counter
	spanRecords *telemetry.Counter

	rawMu sync.Mutex // serializes Config.Raw appends

	mu        sync.Mutex
	instances map[string]*instanceState
	instOrder []string
	fams      map[string]*familyState
	famOrder  []string
	fleet     map[string]float64
	fleetOrd  []string
	traces    map[message.NotificationID]*traceState
	ring      []message.NotificationID
	head      int
	evicted   uint64
	accepted  uint64
}

// New builds a collector. Handler serves it.
func New(cfg Config) *Collector {
	if cfg.Instance == "" {
		cfg.Instance = "collector"
	}
	if cfg.TraceCap <= 0 {
		cfg.TraceCap = DefaultTraceCap
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	c := &Collector{
		cfg:       cfg,
		self:      telemetry.NewRegistry(),
		instances: make(map[string]*instanceState),
		fams:      make(map[string]*familyState),
		fleet:     make(map[string]float64),
		traces:    make(map[message.NotificationID]*traceState),
	}
	c.pushMetrics = c.self.Counter(MetricPushes, "Push bodies accepted, by kind.", telemetry.Labels{"kind": "metrics"})
	c.pushSpans = c.self.Counter(MetricPushes, "Push bodies accepted, by kind.", telemetry.Labels{"kind": "spans"})
	c.pushErrors = c.self.Counter(MetricPushErrors, "Push bodies rejected as undecodable.", nil)
	c.spanRecords = c.self.Counter(MetricSpanRecords, "Span records ingested (before merge).", nil)
	c.self.GaugeFunc(MetricTraces, "Cross-broker traces currently retained.",
		func(emit func(telemetry.Labels, float64)) {
			c.mu.Lock()
			n := len(c.traces)
			c.mu.Unlock()
			emit(nil, float64(n))
		})
	c.self.CounterFunc(MetricTracesEvicted, "Assembled traces evicted by the retention bound.",
		func(emit func(telemetry.Labels, float64)) {
			c.mu.Lock()
			n := c.evicted
			c.mu.Unlock()
			emit(nil, float64(n))
		})
	c.self.GaugeFunc(MetricBrokers, "Known reporting brokers, by freshness.",
		func(emit func(telemetry.Labels, float64)) {
			ok, stale := c.brokerCounts()
			emit(telemetry.Labels{"status": "ok"}, float64(ok))
			emit(telemetry.Labels{"status": "stale"}, float64(stale))
		})
	telemetry.RegisterGoRuntime(c.self)
	return c
}

// Registry returns the collector's self-telemetry registry (its samples
// appear on the merged /metrics render tagged with Config.Instance).
func (c *Collector) Registry() *telemetry.Registry { return c.self }

// Accepted counts push bodies accepted so far (the /count value).
func (c *Collector) Accepted() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.accepted
}

// touchInstance records a push arrival from instance and returns its
// state, deriving the cadence estimate from inter-push gaps.
func (c *Collector) touchInstanceLocked(instance string) *instanceState {
	inst, ok := c.instances[instance]
	if !ok {
		inst = &instanceState{name: instance}
		c.instances[instance] = inst
		c.instOrder = append(c.instOrder, instance)
	}
	now := c.cfg.Now()
	if !inst.lastPush.IsZero() {
		// A pusher flush drains its whole spool in one burst — the metric
		// snapshot and the span batch land milliseconds apart. Those
		// intra-burst gaps are not the push cadence; only gaps past the
		// burst floor update the estimate.
		if gap := now.Sub(inst.lastPush); gap >= burstFloor {
			inst.gap = gap
		}
	}
	inst.lastPush = now
	inst.pushes++
	return inst
}

// staleAfter is instance's current staleness deadline: the configured
// override, else 2x its observed push cadence, else DefaultStaleAfter.
func (c *Collector) staleAfter(inst *instanceState) time.Duration {
	if c.cfg.StaleAfter > 0 {
		return c.cfg.StaleAfter
	}
	if inst.gap > 0 {
		return 2 * inst.gap
	}
	return DefaultStaleAfter
}

func (c *Collector) brokerCounts() (ok, stale int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	for _, name := range c.instOrder {
		inst := c.instances[name]
		if now.Sub(inst.lastPush) > c.staleAfter(inst) {
			stale++
		} else {
			ok++
		}
	}
	return ok, stale
}

// ingestSample is one normalized metric sample headed for the fleet
// state, whatever wire format it arrived in.
type ingestSample struct {
	family   string
	typ      string
	fullName string
	labelKey string // without instance; merged on apply
	value    float64
	fold     int
}

// applySamples merges one push body's samples into the per-instance
// re-export state and folds counter movement into the fleet totals.
func (c *Collector) applySamples(instance string, samples []ingestSample) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchInstanceLocked(instance)
	for _, s := range samples {
		fam, ok := c.fams[s.family]
		if !ok {
			fam = &familyState{name: s.family, typ: s.typ, index: make(map[string]int)}
			c.fams[s.family] = fam
			c.famOrder = append(c.famOrder, s.family)
		}
		labelKey := mergeInstanceKey(s.labelKey, instance)
		rowKey := s.fullName + "\x00" + labelKey
		var row *rowState
		if i, ok := fam.index[rowKey]; ok {
			row = fam.rows[i]
		}
		var delta float64
		switch s.fold {
		case foldCounterAbs:
			// Absolute cumulative reading: fold the movement since the
			// last push; a value going backwards means the broker
			// restarted, so the whole reading is new movement.
			delta = s.value
			if row != nil && s.value >= row.value {
				delta = s.value - row.value
			}
		case foldCounterDel:
			// Pre-computed delta (JSON bodies): the absolute re-export
			// value accumulates. A pusher restart re-ships its absolute
			// count as a first-sighting "delta"; the fold over-counts
			// that one body and the re-export drifts high — the price of
			// a stateless delta wire format, and bounded by one restart.
			delta = s.value
			if row != nil {
				s.value += row.value
			}
		}
		if row == nil {
			row = &rowState{fullName: s.fullName, labelKey: labelKey}
			fam.index[rowKey] = len(fam.rows)
			fam.rows = append(fam.rows, row)
		}
		row.value = s.value
		if s.fold != foldGauge && delta != 0 && strings.HasSuffix(s.fullName, "_total") {
			c.fleetAddLocked(s.fullName, delta)
		}
	}
}

// fleetAddLocked folds counter movement into the fleet-wide total for
// one family (only _total families fold — histogram series stay
// per-instance).
func (c *Collector) fleetAddLocked(fullName string, delta float64) {
	name := FleetPrefix + strings.TrimPrefix(fullName, "rebeca_")
	if _, ok := c.fleet[name]; !ok {
		c.fleetOrd = append(c.fleetOrd, name)
	}
	c.fleet[name] += delta
}

// ingestSpans merges one span batch into the assembled traces. The merge
// is idempotent: duplicated shipments and out-of-order arrival converge
// to the same trace (hop stamps keyed by broker, earliest stamp wins,
// worst latency wins, first reason sticks).
func (c *Collector) ingestSpans(header string, recs []telemetry.SpanExport) (applied int, firstErr error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	touched := make(map[string]bool)
	for _, rec := range recs {
		instance := rec.Instance
		if instance == "" {
			instance = header
		}
		if instance == "" {
			instance = "unknown"
		}
		id, err := telemetry.ParseNoteID(rec.Note)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("span record: %w", err)
			}
			continue
		}
		if !touched[instance] {
			touched[instance] = true
			c.touchInstanceLocked(instance)
		}
		c.instances[instance].spanRecords++
		tr := c.traceLocked(id)
		for _, h := range rec.Hops {
			if old, ok := tr.hops[h.Broker]; !ok || h.At.Before(old) {
				tr.hops[h.Broker] = h.At
			}
		}
		// A deployment instance is the comma-joined IDs of its in-process
		// brokers; every one of them counts as having reported.
		for _, b := range strings.Split(instance, ",") {
			if b = strings.TrimSpace(b); b != "" {
				tr.reporters[b] = struct{}{}
			}
		}
		if rec.LatencyMS > tr.latencyMS {
			tr.latencyMS = rec.LatencyMS
		}
		if tr.reason == "" {
			tr.reason = rec.Reason
		}
		tr.updated = c.cfg.Now()
		applied++
	}
	return applied, firstErr
}

// traceLocked returns (creating under the drop-oldest retention bound)
// the assembly state for id.
func (c *Collector) traceLocked(id message.NotificationID) *traceState {
	if tr, ok := c.traces[id]; ok {
		return tr
	}
	tr := &traceState{
		id:        id,
		hops:      make(map[string]time.Time),
		reporters: make(map[string]struct{}),
	}
	if len(c.ring) < c.cfg.TraceCap {
		c.ring = append(c.ring, id)
	} else {
		delete(c.traces, c.ring[c.head])
		c.evicted++
		c.ring[c.head] = id
		c.head = (c.head + 1) % c.cfg.TraceCap
	}
	c.traces[id] = tr
	return tr
}

// AssembledHop is one hop of a cross-broker trace, in stamp order.
type AssembledHop struct {
	Hop    int       `json:"hop"`
	Broker string    `json:"broker"`
	At     time.Time `json:"at"`
}

// AssembledTrace is the fleet view of one notification's journey: hops
// merged across every reporting process, ordered by stamp time. Partial
// flags a trace touching a broker that never reported to this collector
// — the path seen cannot be assumed complete.
type AssembledTrace struct {
	Note      string         `json:"note"`
	LatencyMS float64        `json:"latency_ms,omitempty"`
	Reason    string         `json:"reason,omitempty"`
	Partial   bool           `json:"partial"`
	Reporters []string       `json:"reporters"`
	Hops      []AssembledHop `json:"hops"`
}

// assemble renders one trace state (call with c.mu held).
func (c *Collector) assembleLocked(tr *traceState) AssembledTrace {
	out := AssembledTrace{
		Note:      tr.id.String(),
		LatencyMS: tr.latencyMS,
		Reason:    tr.reason,
		Reporters: make([]string, 0, len(tr.reporters)),
		Hops:      make([]AssembledHop, 0, len(tr.hops)),
	}
	for b := range tr.reporters {
		out.Reporters = append(out.Reporters, b)
	}
	sort.Strings(out.Reporters)
	for b, at := range tr.hops {
		out.Hops = append(out.Hops, AssembledHop{Broker: b, At: at})
	}
	sort.Slice(out.Hops, func(i, j int) bool {
		if !out.Hops[i].At.Equal(out.Hops[j].At) {
			return out.Hops[i].At.Before(out.Hops[j].At)
		}
		return out.Hops[i].Broker < out.Hops[j].Broker
	})
	for i := range out.Hops {
		out.Hops[i].Hop = i
	}
	if len(out.Hops) == 0 {
		out.Partial = true
	}
	for _, h := range out.Hops {
		if _, ok := tr.reporters[h.Broker]; !ok {
			out.Partial = true
			break
		}
	}
	return out
}

// Trace returns the assembled trace for id.
func (c *Collector) Trace(id message.NotificationID) (AssembledTrace, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	tr, ok := c.traces[id]
	if !ok {
		return AssembledTrace{}, false
	}
	return c.assembleLocked(tr), true
}

// TraceCount returns the number of traces retained.
func (c *Collector) TraceCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.traces)
}

// Traces lists assembled traces newest-first (limit <= 0 lists all).
func (c *Collector) Traces(limit int) []AssembledTrace {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.ring)
	if limit <= 0 || limit > n {
		limit = n
	}
	out := make([]AssembledTrace, 0, limit)
	for i := 0; i < limit; i++ {
		var id message.NotificationID
		if len(c.ring) < c.cfg.TraceCap {
			id = c.ring[n-1-i]
		} else {
			id = c.ring[((c.head-1-i)%n+n)%n]
		}
		if tr, ok := c.traces[id]; ok {
			out = append(out, c.assembleLocked(tr))
		}
	}
	return out
}

// FleetBroker is one broker row of the /fleet status view.
type FleetBroker struct {
	Instance      string  `json:"instance"`
	Status        string  `json:"status"` // "ok" | "stale"
	LastPushAgoMS float64 `json:"last_push_ago_ms"`
	IntervalMS    float64 `json:"interval_ms,omitempty"` // observed cadence
	StaleAfterMS  float64 `json:"stale_after_ms"`
	Pushes        uint64  `json:"pushes"`
	SpanRecords   uint64  `json:"span_records"`
	// SpillDepth sums the broker's per-link store-backed spill queues
	// (rebeca_link_spill_depth) as of its last push — an operator watches
	// a partition backlog drain fleet-wide from here.
	SpillDepth float64 `json:"spill_depth,omitempty"`
}

// FleetStatus is the /fleet JSON body.
type FleetStatus struct {
	Brokers []FleetBroker `json:"brokers"`
	Stale   int           `json:"stale"`
	Traces  int           `json:"traces"`
}

// Fleet reports every known broker's push freshness: a broker silent
// past its deadline (StaleAfter, or 2x its observed push cadence) is
// marked stale — the NAT'd-broker equivalent of a failed scrape.
func (c *Collector) Fleet() FleetStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	out := FleetStatus{Brokers: make([]FleetBroker, 0, len(c.instOrder)), Traces: len(c.traces)}
	spill := make(map[string]float64)
	if fam, ok := c.fams[telemetry.MetricLinkSpillDepth]; ok {
		for _, row := range fam.rows {
			spill[labelValue(row.labelKey, "instance")] += row.value
		}
	}
	names := append([]string(nil), c.instOrder...)
	sort.Strings(names)
	for _, name := range names {
		inst := c.instances[name]
		deadline := c.staleAfter(inst)
		b := FleetBroker{
			Instance:      name,
			Status:        "ok",
			LastPushAgoMS: float64(now.Sub(inst.lastPush)) / float64(time.Millisecond),
			IntervalMS:    float64(inst.gap) / float64(time.Millisecond),
			StaleAfterMS:  float64(deadline) / float64(time.Millisecond),
			Pushes:        inst.pushes,
			SpanRecords:   inst.spanRecords,
			SpillDepth:    spill[name],
		}
		if now.Sub(inst.lastPush) > deadline {
			b.Status = "stale"
			out.Stale++
		}
		out.Brokers = append(out.Brokers, b)
	}
	return out
}

// labelValue extracts one label's value from a pre-rendered label key
// like {broker="A",peer="B",instance="c1"} ("" when absent).
func labelValue(key, label string) string {
	marker := label + `="`
	i := strings.Index(key, marker)
	if i < 0 {
		return ""
	}
	rest := key[i+len(marker):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return ""
	}
	return rest[:j]
}

// mergeInstanceKey splices instance="..." into a pre-rendered label key,
// leaving keys that already carry an instance label untouched.
func mergeInstanceKey(key, instance string) string {
	if instance == "" {
		return key
	}
	if strings.Contains(key, `instance="`) {
		return key
	}
	extra := fmt.Sprintf("instance=%q", instance)
	if key == "" {
		return "{" + extra + "}"
	}
	return key[:len(key)-1] + "," + extra + "}"
}
