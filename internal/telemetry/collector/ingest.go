package collector

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"rebeca/internal/telemetry"
)

// ingestProm parses a Prometheus text exposition 0.0.4 push body into
// normalized samples. TYPE comments type the families; sample lines of a
// histogram family (_bucket/_sum/_count) attach to the base family so
// the re-export keeps one TYPE block per histogram.
func ingestProm(body []byte) ([]ingestSample, error) {
	typeOf := make(map[string]string)
	var out []ingestSample
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				typeOf[fields[2]] = fields[3]
			}
			continue
		}
		s, err := parsePromSample(line)
		if err != nil {
			return out, err
		}
		s.family, s.typ = promFamily(s.fullName, typeOf)
		if s.typ == "counter" || strings.HasSuffix(s.fullName, "_bucket") ||
			strings.HasSuffix(s.fullName, "_sum") || strings.HasSuffix(s.fullName, "_count") {
			s.fold = foldCounterAbs
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("scan exposition: %w", err)
	}
	return out, nil
}

// promFamily resolves a sample name to its family and type: the name
// itself when TYPEd, else the base name of a histogram series, else
// untyped.
func promFamily(name string, typeOf map[string]string) (family, typ string) {
	if t, ok := typeOf[name]; ok {
		return name, t
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base := strings.TrimSuffix(name, suffix); base != name && typeOf[base] == "histogram" {
			return base, "histogram"
		}
	}
	return name, "untyped"
}

// parsePromSample splits one exposition sample line into name, rendered
// label key and value. Label values may contain spaces and escaped
// quotes, so the label block is scanned with quote awareness rather than
// split on whitespace.
func parsePromSample(line string) (ingestSample, error) {
	var s ingestSample
	brace := strings.IndexByte(line, '{')
	space := strings.IndexByte(line, ' ')
	if brace >= 0 && (space < 0 || brace < space) {
		s.fullName = line[:brace]
		rest := line[brace:]
		end := labelBlockEnd(rest)
		if end < 0 {
			return s, fmt.Errorf("unterminated label block: %s", line)
		}
		s.labelKey = rest[:end+1]
		rest = strings.TrimSpace(rest[end+1:])
		v, err := parsePromValue(rest)
		if err != nil {
			return s, fmt.Errorf("bad sample %q: %w", line, err)
		}
		s.value = v
		return s, nil
	}
	if space < 0 {
		return s, fmt.Errorf("bad sample line %q", line)
	}
	s.fullName = line[:space]
	v, err := parsePromValue(strings.TrimSpace(line[space+1:]))
	if err != nil {
		return s, fmt.Errorf("bad sample %q: %w", line, err)
	}
	s.value = v
	return s, nil
}

// labelBlockEnd returns the index of the '}' closing a leading '{...}'
// label block, respecting quoted values, -1 if unterminated.
func labelBlockEnd(s string) int {
	inQuote := false
	for i := 1; i < len(s); i++ {
		switch {
		case inQuote && s[i] == '\\':
			i++
		case s[i] == '"':
			inQuote = !inQuote
		case !inQuote && s[i] == '}':
			return i
		}
	}
	return -1
}

// parsePromValue parses an exposition sample value (a float, +Inf or
// NaN; a trailing timestamp field is ignored).
func parsePromValue(s string) (float64, error) {
	if i := strings.IndexByte(s, ' '); i >= 0 {
		s = s[:i]
	}
	switch s {
	case "+Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	}
	return strconv.ParseFloat(s, 64)
}

// pushPayload mirrors the JSON push body (telemetry.Pusher's
// PushFormatJSON): counter points carry movement since the previous
// snapshot, gauges absolute readings.
type pushPayload struct {
	Instance string                  `json:"instance,omitempty"`
	Points   []telemetry.MetricPoint `json:"points"`
}

// ingestJSON parses a JSON delta push body. The in-band instance (when
// present) overrides the header attribution.
func ingestJSON(body []byte) (instance string, samples []ingestSample, err error) {
	var p pushPayload
	if err := json.Unmarshal(body, &p); err != nil {
		return "", nil, fmt.Errorf("decode json push: %w", err)
	}
	samples = make([]ingestSample, 0, len(p.Points))
	for _, pt := range p.Points {
		s := ingestSample{
			family:   pt.Name,
			typ:      pt.Type,
			fullName: pt.Name,
			labelKey: pt.Labels,
			value:    pt.Value,
		}
		if pt.Type == "counter" {
			s.fold = foldCounterDel
		}
		if s.typ == "" {
			s.typ = "untyped"
		}
		samples = append(samples, s)
	}
	return p.Instance, samples, nil
}

// ingestRemoteWrite parses a remote-write WriteRequest body. The wire
// format carries no metric types, so monotone semantics are inferred
// from the _total naming convention; everything else re-exports as a
// gauge.
func ingestRemoteWrite(body []byte) (instance string, samples []ingestSample, err error) {
	series, err := telemetry.DecodeRemoteWrite(body)
	if err != nil {
		return "", nil, err
	}
	samples = make([]ingestSample, 0, len(series))
	for _, ts := range series {
		name := ts.Name()
		if name == "" {
			continue
		}
		var pairs []telemetry.RemoteWriteLabel
		for _, l := range ts.Labels {
			switch l.Name {
			case "__name__":
			case "instance":
				if instance == "" {
					instance = l.Value
				}
			default:
				pairs = append(pairs, l)
			}
		}
		s := ingestSample{
			family:   name,
			typ:      "gauge",
			fullName: name,
			labelKey: renderLabelPairs(pairs),
			value:    ts.Value,
		}
		if strings.HasSuffix(name, "_total") {
			s.typ = "counter"
			s.fold = foldCounterAbs
		}
		samples = append(samples, s)
	}
	return instance, samples, nil
}

// renderLabelPairs renders label pairs as the registry's stable
// `{k="v",...}` key format (sorted, %q-escaped; "" for none).
func renderLabelPairs(pairs []telemetry.RemoteWriteLabel) string {
	if len(pairs) == 0 {
		return ""
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Name < pairs[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.Name, p.Value)
	}
	b.WriteByte('}')
	return b.String()
}
