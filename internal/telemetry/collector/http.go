package collector

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"

	"rebeca/internal/telemetry"
)

// maxPushBody bounds one ingested push body. The largest legitimate
// bodies are full prom-text snapshots of big deployments — hundreds of
// KiB; anything larger is hostile or corrupt.
const maxPushBody = 8 << 20

// Handler returns the collector's HTTP surface:
//
//	POST /...     ingest a push body (any path — brokers point -push here)
//	GET  /metrics merged fleet exposition (per-broker labels + fleet totals)
//	GET  /fleet   broker freshness status (JSON)
//	GET  /trace   assembled cross-broker traces (?note=publisher#seq)
//	GET  /count   push bodies accepted, as text (pushsink compatibility)
//	GET  /healthz liveness
func (c *Collector) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", c.handleMetrics)
	mux.HandleFunc("/fleet", c.handleFleet)
	mux.HandleFunc("/trace", c.handleTrace)
	mux.HandleFunc("/count", c.handleCount)
	mux.HandleFunc("/healthz", c.handleHealthz)
	mux.HandleFunc("/", c.handleIngest)
	return mux
}

// handleIngest accepts one push body, dispatching on Content-Type:
// span batches, JSON deltas, remote-write protobuf, or (the default)
// Prometheus text exposition.
func (c *Collector) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "push bodies arrive by POST", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxPushBody+1))
	if err != nil {
		c.pushErrors.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(body) > maxPushBody {
		c.pushErrors.Inc()
		http.Error(w, "push body too large", http.StatusRequestEntityTooLarge)
		return
	}
	instance := r.Header.Get(telemetry.InstanceHeader)
	ctype := r.Header.Get("Content-Type")
	var (
		kind    *telemetry.Counter
		details string
	)
	switch {
	case strings.Contains(ctype, "x-rebeca-spans"):
		recs, derr := telemetry.DecodeSpanBatch(bytes.NewReader(body))
		applied, aerr := c.ingestSpans(instance, recs)
		c.spanRecords.Add(uint64(applied))
		if derr == nil {
			derr = aerr
		}
		if derr != nil && applied == 0 {
			c.pushErrors.Inc()
			http.Error(w, derr.Error(), http.StatusBadRequest)
			return
		}
		kind = c.pushSpans
		details = fmt.Sprintf("%d span records", applied)
	case strings.Contains(ctype, "json"):
		inBand, samples, err := ingestJSON(body)
		if err != nil {
			c.pushErrors.Inc()
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if inBand != "" {
			instance = inBand
		}
		c.applySamples(orUnknown(instance), samples)
		kind = c.pushMetrics
		details = fmt.Sprintf("%d points", len(samples))
	case strings.Contains(ctype, "x-protobuf"):
		inBand, samples, err := ingestRemoteWrite(body)
		if err != nil {
			c.pushErrors.Inc()
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if instance == "" {
			instance = inBand
		}
		c.applySamples(orUnknown(instance), samples)
		kind = c.pushMetrics
		details = fmt.Sprintf("%d series", len(samples))
	default:
		samples, err := ingestProm(body)
		if err != nil {
			c.pushErrors.Inc()
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		c.applySamples(orUnknown(instance), samples)
		kind = c.pushMetrics
		details = fmt.Sprintf("%d samples", len(samples))
	}
	kind.Inc()
	n := c.bumpAccepted()
	c.writeRaw(n, r.URL.Path, ctype, body)
	if c.cfg.Logger != nil {
		c.cfg.Logger.Debug("push accepted",
			"n", n, "instance", orUnknown(instance), "content_type", ctype, "details", details)
	}
	w.WriteHeader(http.StatusNoContent)
}

func orUnknown(instance string) string {
	if instance == "" {
		return "unknown"
	}
	return instance
}

func (c *Collector) bumpAccepted() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.accepted++
	return c.accepted
}

// writeRaw appends one accepted body to the audit sink, framed the way
// rebeca-pushsink framed it (CI greps rely on the body staying verbatim).
func (c *Collector) writeRaw(n uint64, path, ctype string, body []byte) {
	if c.cfg.Raw == nil {
		return
	}
	c.rawMu.Lock()
	defer c.rawMu.Unlock()
	fmt.Fprintf(c.cfg.Raw, "--- push %d %s %s\n", n, path, ctype)
	_, _ = c.cfg.Raw.Write(body)
	if len(body) == 0 || body[len(body)-1] != '\n' {
		fmt.Fprintln(c.cfg.Raw)
	}
}

// handleMetrics renders the merged fleet exposition: the collector's own
// self-telemetry (tagged with its instance), every broker's re-exported
// samples (instance labels preserved), and the folded fleet totals — one
// strict 0.0.4 document with one TYPE block per family.
func (c *Collector) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(c.renderMetrics())
}

// renderBlock is one metric family's render state.
type renderBlock struct {
	typ   string
	lines []string
}

func (c *Collector) renderMetrics() []byte {
	// Self-telemetry gathers before c.mu: the gauge collectors registered
	// in New lock c.mu themselves.
	selfPoints := c.self.Gather()

	blocks := make(map[string]*renderBlock)
	var order []string
	add := func(family, typ, line string) {
		blk, ok := blocks[family]
		if !ok {
			blk = &renderBlock{typ: typ}
			blocks[family] = blk
			order = append(order, family)
		}
		blk.lines = append(blk.lines, line)
	}
	for _, pt := range selfPoints {
		add(pt.Name, pt.Type, sampleLine(pt.Name, mergeInstanceKey(pt.Labels, c.cfg.Instance), pt.Value))
	}

	c.mu.Lock()
	for _, name := range c.famOrder {
		fam := c.fams[name]
		for _, row := range fam.rows {
			add(fam.name, fam.typ, sampleLine(row.fullName, row.labelKey, row.value))
		}
	}
	for _, name := range c.fleetOrd {
		add(name, "counter", sampleLine(name, "", c.fleet[name]))
	}
	c.mu.Unlock()

	var b bytes.Buffer
	for _, name := range order {
		blk := blocks[name]
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, blk.typ)
		for _, line := range blk.lines {
			b.WriteString(line)
		}
	}
	return b.Bytes()
}

func sampleLine(name, labelKey string, v float64) string {
	return name + labelKey + " " + formatValue(v) + "\n"
}

// formatValue matches the registry's exposition value rendering.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func (c *Collector) handleFleet(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(c.Fleet())
}

// traceList is the /trace (no note) JSON body: assembled traces,
// newest first.
type traceList struct {
	Retained int              `json:"retained"`
	Traces   []AssembledTrace `json:"traces"`
}

func (c *Collector) handleTrace(w http.ResponseWriter, r *http.Request) {
	note := r.URL.Query().Get("note")
	if note == "" {
		limit := 0
		if s := r.URL.Query().Get("limit"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				http.Error(w, fmt.Sprintf("bad limit %q", s), http.StatusBadRequest)
				return
			}
			limit = n
		}
		list := traceList{Retained: c.TraceCount(), Traces: c.Traces(limit)}
		if list.Traces == nil {
			list.Traces = []AssembledTrace{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(list)
		return
	}
	id, err := telemetry.ParseNoteID(note)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	tr, ok := c.Trace(id)
	if !ok {
		http.Error(w, "unknown notification (no span shipped, or evicted)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(tr)
}

func (c *Collector) handleCount(w http.ResponseWriter, _ *http.Request) {
	fmt.Fprintf(w, "%d\n", c.Accepted())
}

func (c *Collector) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
