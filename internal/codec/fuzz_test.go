package codec_test

import (
	"bytes"
	"reflect"
	"testing"

	"rebeca/internal/codec"
	"rebeca/internal/message"
	"rebeca/internal/proto"
)

// FuzzCodecRoundTrip feeds arbitrary bytes to the decoder: it must reject
// or accept without ever panicking, and anything it accepts must re-encode
// and re-decode to the same message (the decoder's output is canonical).
// The seed corpus contains one valid payload per proto kind — covering
// every message shape, all value kinds and filter constraints — so the
// fuzzer starts from the interesting region of the input space and
// mutation produces realistic torn/corrupt frames.
func FuzzCodecRoundTrip(f *testing.F) {
	for _, m := range sampleMessages() {
		f.Add(codec.AppendMessage(nil, &m))
		// Truncated variant: a torn frame straight in the corpus.
		if data := codec.AppendMessage(nil, &m); len(data) > 3 {
			f.Add(data[:len(data)/2])
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := codec.DecodeMessage(data)
		if err != nil {
			return // rejected cleanly; that is the contract
		}
		re := codec.AppendMessage(nil, &m)
		back, err := codec.DecodeMessage(re)
		if err != nil {
			t.Fatalf("re-decode of accepted message failed: %v\nmessage: %+v", err, m)
		}
		if !hasNaN(&m) && !reflect.DeepEqual(back, normalize(m)) {
			// NaN-carrying messages round-trip bit-exactly but defeat
			// DeepEqual (NaN != NaN), so they are only checked for
			// decodability above.
			t.Fatalf("round trip not stable:\n got %+v\nwant %+v", back, m)
		}
	})
}

// hasNaN reports whether any float value in the message is NaN.
func hasNaN(m *proto.Message) bool {
	valNaN := func(v message.Value) bool {
		return v.Kind() == message.KindFloat && v.FloatVal() != v.FloatVal()
	}
	noteNaN := func(n *message.Notification) bool {
		for _, v := range n.Attrs {
			if valNaN(v) {
				return true
			}
		}
		return false
	}
	subNaN := func(s *proto.Subscription) bool {
		for _, c := range s.Filter.Constraints() {
			if valNaN(c.Val) {
				return true
			}
			for _, v := range c.Set {
				if valNaN(v) {
					return true
				}
			}
		}
		return false
	}
	if m.Note != nil && noteNaN(m.Note) {
		return true
	}
	for i := range m.Notes {
		if noteNaN(&m.Notes[i]) {
			return true
		}
	}
	if m.Sub != nil && subNaN(m.Sub) {
		return true
	}
	for i := range m.Subs {
		if subNaN(&m.Subs[i]) {
			return true
		}
	}
	for i := range m.Advs {
		if subNaN(&m.Advs[i]) {
			return true
		}
	}
	return false
}

// FuzzDecodeNeverPanics drives Decode through the streaming layer too:
// header parsing, frame length validation and payload reads must all
// degrade to errors on malformed input.
func FuzzDecodeNeverPanics(f *testing.F) {
	var m = proto.Message{Kind: proto.KPing, From: "A"}
	payload := codec.AppendMessage(nil, &m)
	frame := append([]byte{byte(len(payload)), 0, 0, 0}, payload...)
	f.Add(frame)
	f.Add(frame[:3])
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := codec.NewDecoder(bytes.NewReader(data))
		for {
			var m proto.Message
			if err := dec.Decode(&m); err != nil {
				return
			}
		}
	})
}
