package codec_test

import (
	"bytes"
	"encoding/gob"
	"io"
	"testing"

	"rebeca/internal/codec"
	"rebeca/internal/proto"
)

// envelope mirrors the wire transport's gob framing so the gob numbers
// measure exactly what the pre-binary hot path paid per message.
type envelope struct {
	M proto.Message
}

// benchMessage is a representative KPublish: a 5-attribute notification,
// the shape the publish hot path carries on every broker hop.
func benchMessage() proto.Message {
	n := sampleNote(42)
	return proto.Message{Kind: proto.KPublish, Client: "pub", Note: &n}
}

// BenchmarkWireCodec is the headline tentpole benchmark: per-message
// encode and decode throughput of the binary codec against the gob
// envelope it replaces (both on reused streams, so gob's one-time type
// descriptors are amortized — the comparison is steady-state cost).
func BenchmarkWireCodec(b *testing.B) {
	m := benchMessage()

	b.Run("encode/binary", func(b *testing.B) {
		enc := codec.NewEncoder(io.Discard)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := enc.Encode(m); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encode/gob", func(b *testing.B) {
		enc := gob.NewEncoder(io.Discard)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := enc.Encode(envelope{M: m}); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Decode benchmarks replay a pre-encoded stream of frames,
	// re-arming the reader when it drains (the stream holds enough
	// frames that re-arm cost vanishes).
	const streamLen = 4096
	b.Run("decode/binary", func(b *testing.B) {
		var buf bytes.Buffer
		enc := codec.NewEncoder(&buf)
		for i := 0; i < streamLen; i++ {
			if err := enc.Encode(m); err != nil {
				b.Fatal(err)
			}
		}
		stream := buf.Bytes()
		r := bytes.NewReader(stream)
		dec := codec.NewDecoder(r)
		b.ReportAllocs()
		b.ResetTimer()
		var out proto.Message
		for i := 0; i < b.N; i++ {
			if err := dec.Decode(&out); err != nil {
				b.Fatal(err)
			}
			if i%streamLen == streamLen-1 {
				r.Reset(stream)
			}
		}
	})
	b.Run("decode/gob", func(b *testing.B) {
		var buf bytes.Buffer
		enc := gob.NewEncoder(&buf)
		for i := 0; i < streamLen; i++ {
			if err := enc.Encode(envelope{M: m}); err != nil {
				b.Fatal(err)
			}
		}
		stream := buf.Bytes()
		dec := gob.NewDecoder(bytes.NewReader(stream))
		b.ReportAllocs()
		b.ResetTimer()
		var out envelope
		for i := 0; i < b.N; i++ {
			if err := dec.Decode(&out); err != nil {
				b.Fatal(err)
			}
			if i%streamLen == streamLen-1 {
				dec = gob.NewDecoder(bytes.NewReader(stream))
			}
		}
	})
}

// BenchmarkWireCodecSubscribe measures the control-plane shape: a
// subscription with a 5-constraint filter (canonicalization on decode
// included).
func BenchmarkWireCodecSubscribe(b *testing.B) {
	sub := proto.Subscription{ID: "alice/s1", Filter: sampleFilter()}
	m := proto.Message{Kind: proto.KSubscribe, Client: "alice", Sub: &sub}
	b.Run("encode/binary", func(b *testing.B) {
		enc := codec.NewEncoder(io.Discard)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := enc.Encode(m); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encode/gob", func(b *testing.B) {
		enc := gob.NewEncoder(io.Discard)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := enc.Encode(envelope{M: m}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
