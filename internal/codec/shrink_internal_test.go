package codec

import (
	"bytes"
	"strings"
	"testing"

	"rebeca/internal/message"
	"rebeca/internal/proto"
)

// TestDecoderShrinksOversizedBuffer: one big frame must not pin a
// near-MaxFrame payload buffer for the connection's lifetime once the
// stream is back to small steady-state frames.
func TestDecoderShrinksOversizedBuffer(t *testing.T) {
	big := proto.Message{Kind: proto.KPublishBatch}
	for i := 0; i < 3000; i++ {
		n := message.NewNotification(map[string]message.Value{
			"pad": message.String(strings.Repeat("x", 64)),
		})
		n.ID = message.NotificationID{Publisher: "p", Seq: uint64(i + 1)}
		big.Notes = append(big.Notes, n)
	}
	small := proto.Message{Kind: proto.KPing, From: "A"}

	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.Encode(big); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < shrinkAfter+8; i++ {
		if err := enc.Encode(small); err != nil {
			t.Fatal(err)
		}
	}
	dec := NewDecoder(bytes.NewReader(buf.Bytes()))
	var m proto.Message
	if err := dec.Decode(&m); err != nil {
		t.Fatal(err)
	}
	if len(m.Notes) != 3000 {
		t.Fatalf("big frame mangled: %d notes", len(m.Notes))
	}
	if cap(dec.buf) <= shrinkCap {
		t.Fatalf("test premise broken: big frame only grew buffer to %d", cap(dec.buf))
	}
	for i := 0; i < shrinkAfter+8; i++ {
		if err := dec.Decode(&m); err != nil {
			t.Fatalf("small frame %d: %v", i, err)
		}
		if m.Kind != proto.KPing {
			t.Fatalf("small frame %d mangled", i)
		}
	}
	if c := cap(dec.buf); c > shrinkCap {
		t.Fatalf("decode buffer still pinned at %d bytes after %d small frames", c, shrinkAfter+8)
	}
}
