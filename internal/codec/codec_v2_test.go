package codec_test

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"rebeca/internal/codec"
	"rebeca/internal/message"
	"rebeca/internal/proto"
)

// tracedNote is a notification carrying a multi-hop telemetry trail.
func tracedNote() message.Notification {
	n := sampleNote(7)
	n.Path = []message.HopStamp{
		{Broker: "A", At: time.Unix(0, 1055764800000000001)},
		{Broker: "B", At: time.Unix(0, 1055764800000000002)},
		{Broker: "C", At: time.Unix(0, 1055764800000000003)},
	}
	return n
}

func TestCodecRoundTripHopPath(t *testing.T) {
	note := tracedNote()
	m := proto.Message{Kind: proto.KPublish, From: "B1", Client: "alice", Note: &note}

	var buf bytes.Buffer
	if err := codec.NewEncoder(&buf).Encode(m); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var got proto.Message
	if err := codec.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Note == nil {
		t.Fatal("note lost")
	}
	if !reflect.DeepEqual(got.Note.Path, note.Path) {
		t.Fatalf("path mismatch:\n got %+v\nwant %+v", got.Note.Path, note.Path)
	}
}

func TestCodecV1EncoderStripsHopPath(t *testing.T) {
	note := tracedNote()
	m := proto.Message{Kind: proto.KPublish, From: "B1", Client: "alice", Note: &note}

	var buf bytes.Buffer
	if err := codec.NewEncoderVersion(&buf, 1).Encode(m); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var got proto.Message
	if err := codec.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Note == nil {
		t.Fatal("note lost")
	}
	if got.Note.Path != nil {
		t.Fatalf("version-1 frame carried a hop path: %+v", got.Note.Path)
	}
	// The caller's notification must not be mutated by the strip.
	if len(note.Path) != 3 {
		t.Fatalf("encoder mutated the caller's note: %+v", note.Path)
	}
}

func TestCodecRejectsTracedFlagWithoutNote(t *testing.T) {
	m := proto.Message{Kind: proto.KCredit, From: "B1", Client: "alice", Credits: 8}
	payload := codec.AppendMessage(nil, &m)
	// Payload layout: kind:uvarint (1 byte for small kinds), then flags.
	payload[1] |= 16 // the traced bit, with no note present
	if _, err := codec.DecodeMessage(payload); err == nil {
		t.Fatal("decode accepted traced flag without a note")
	}
}

func TestCodecV1DecoderWouldRejectTracedBit(t *testing.T) {
	// The interop contract: version-1 decoders treat the traced bit as an
	// unknown flag. Encoding a traced note at version 2 and flipping the
	// version-2-only path off again is not possible from outside, so this
	// asserts the guard DecodeMessage applies to genuinely unknown bits.
	m := proto.Message{Kind: proto.KCredit, From: "B1", Credits: 1}
	payload := codec.AppendMessage(nil, &m)
	payload[1] |= 32 // a bit no version defines
	if _, err := codec.DecodeMessage(payload); err == nil {
		t.Fatal("decode accepted an unknown flag bit")
	}
}

func TestEncoderOnFrameObserver(t *testing.T) {
	var frames []int
	var buf bytes.Buffer
	enc := codec.NewEncoder(&buf)
	enc.OnFrame(func(n int) { frames = append(frames, n) })

	for i := 0; i < 3; i++ {
		if err := enc.Encode(proto.Message{Kind: proto.KCredit, Credits: i}); err != nil {
			t.Fatalf("encode: %v", err)
		}
	}
	if len(frames) != 3 {
		t.Fatalf("observer saw %d frames, want 3", len(frames))
	}
	total := 0
	for _, n := range frames {
		total += n
	}
	if total != buf.Len() {
		t.Fatalf("observed %d bytes, wrote %d", total, buf.Len())
	}
}
