// Package codec implements the binary wire protocol of the live transport:
// a hand-rolled, length-prefixed encoding of proto.Message with explicit
// encode/decode for every message kind, attribute value and filter
// constraint. It replaces the reflective per-envelope gob encoding on the
// publish hot path — the paper's broker network pays serialization on every
// hop, so the frame format is designed for cheap, allocation-light encoding
// (pooled scratch buffers, varint integers, no type descriptors on the
// wire).
//
// # Frame format (version 1)
//
//	frame   := length:uint32le payload
//	payload := kind:uvarint flags:byte
//	           from origin dest client:string
//	           [note:notification]          (flags&1)
//	           notes:list<notification>
//	           subIDs:list<string>
//	           credits:varint
//	           [sub:subscription]           (flags&2)
//	           subs:list<subscription>
//	           advs:list<subscription>
//	           watermarks:list<string uvarint>
//	           flushID:uvarint epoch:uvarint hops:varint
//	           [path:list<string uint64le>] (flags&16, version 2)
//
// flags: 1 = Note present, 2 = Sub present, 4 = Stale, 8 = Fresh,
// 16 = the note carries a telemetry hop trail (version 2). Version 1
// decoders reject unknown flag bits, so a version-2 encoder only sets the
// traced bit on links whose handshake negotiated version ≥ 2 — the trail
// is stripped for older peers.
// Strings are uvarint-length prefixed; lists are uvarint-count prefixed;
// varint is the zig-zag signed encoding. A notification is
// publisher+seq+timestamp+attribute list; a value is a one-byte kind tag
// plus its payload; a filter travels as its canonical constraint list.
//
// Decoding is defensive end to end: every read is bounds-checked, list
// counts are validated against the remaining payload before any
// allocation, and a torn or truncated frame yields an error — never a
// panic — so a malformed peer cannot take a broker down.
//
// The codec is versioned by the link handshake (see internal/wire): the
// hello frame carries Magic and Version, and peers agree on the minimum.
// This codec is the only wire encoding — the gob fallback of early
// releases is gone, and a peer that does not open with Magic is refused
// with a diagnosis instead of negotiated down.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"rebeca/internal/filter"
	"rebeca/internal/message"
	"rebeca/internal/proto"
)

// Version is the binary protocol version negotiated by the link handshake.
// Peers agree on min(theirs, ours). Version 2 added the traced flags bit
// carrying a notification's hop trail.
const Version byte = 2

// Magic opens a binary hello frame; it lets an accepting side distinguish
// a binary peer from a legacy gob peer on the first bytes of the stream.
var Magic = [4]byte{'R', 'B', 'C', 'W'}

// MaxFrame bounds a frame payload. A decoder rejects larger length
// prefixes outright instead of allocating attacker-controlled buffers;
// an encoder refuses to emit one (the transport escalates that to a link
// failure — see wire.Conn.Send — rather than dropping it silently). The
// bound leaves generous headroom over the largest legitimate frame, a
// KSyncInstall replaying a whole routing table.
const MaxFrame = 64 << 20

// value kind tags on the wire.
const (
	tagInvalid byte = iota
	tagString
	tagInt
	tagFloat
	tagTrue
	tagFalse
)

// message flag bits.
const (
	flagNote byte = 1 << iota
	flagSub
	flagStale
	flagFresh
	// flagTraced marks a Note carrying a telemetry hop trail (version 2).
	// Version 1 peers reject unknown bits, so encoders only set it on
	// links negotiated at version ≥ 2.
	flagTraced
)

// framePool recycles encode scratch across connections: a broker encodes
// on many links concurrently, and steady-state publishing should not
// allocate per frame.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 1024)
		return &b
	},
}

// Encoder writes length-prefixed binary frames to w. Not safe for
// concurrent use; callers serialize (the wire transport holds a per-conn
// send lock).
type Encoder struct {
	w       io.Writer
	ver     byte
	onFrame func(bytes int)
}

// NewEncoder returns an encoder writing frames to w at the current
// protocol version. Pair it with a buffered writer: the encoder issues
// exactly one Write per message.
func NewEncoder(w io.Writer) *Encoder { return NewEncoderVersion(w, Version) }

// NewEncoderVersion returns an encoder emitting frames a peer negotiated
// at ver can decode: fields and flag bits introduced in later versions are
// stripped (a version-1 link never sees the traced bit). ver is clamped to
// [1, Version].
func NewEncoderVersion(w io.Writer, ver byte) *Encoder {
	if ver < 1 {
		ver = 1
	}
	if ver > Version {
		ver = Version
	}
	return &Encoder{w: w, ver: ver}
}

// OnFrame registers an observer of encoded frame sizes (payload + length
// prefix, in bytes), called after every successful Encode — the telemetry
// feed for frame-size histograms. Set before the encoder is shared; not
// synchronized with Encode.
func (e *Encoder) OnFrame(fn func(bytes int)) { e.onFrame = fn }

// Encode writes one message as a single frame.
func (e *Encoder) Encode(m proto.Message) error {
	if e.ver < 2 && m.Note != nil && len(m.Note.Path) > 0 {
		// The peer's decoder predates the traced bit: forward the
		// notification without its hop trail rather than poisoning the
		// link with a flag the peer rejects.
		n := *m.Note
		n.Path = nil
		m.Note = &n
	}
	bp := framePool.Get().(*[]byte)
	buf := append((*bp)[:0], 0, 0, 0, 0)
	buf = AppendMessage(buf, &m)
	n := len(buf) - 4
	if n > MaxFrame {
		*bp = buf
		framePool.Put(bp)
		return fmt.Errorf("codec: frame of %d bytes exceeds limit", n)
	}
	binary.LittleEndian.PutUint32(buf, uint32(n))
	_, err := e.w.Write(buf)
	total := len(buf)
	*bp = buf
	framePool.Put(bp)
	if err == nil && e.onFrame != nil {
		e.onFrame(total)
	}
	return err
}

// Decoder reads length-prefixed binary frames from r. The payload buffer
// is reused across Decode calls; decoded messages never alias it.
type Decoder struct {
	r   io.Reader
	hdr [4]byte
	buf []byte
	// small counts consecutive frames fitting shrinkCap; once a long run
	// shows the conn is back to steady-state traffic, an oversized buffer
	// (grown by one big routing replay, up to MaxFrame) is released
	// instead of staying pinned for the conn's lifetime.
	small int
}

// Decoder buffer shrink policy: drop an over-grown payload buffer after
// shrinkAfter consecutive frames at or below shrinkCap.
const (
	shrinkCap   = 64 << 10
	shrinkAfter = 256
)

// NewDecoder returns a decoder reading frames from r.
func NewDecoder(r io.Reader) *Decoder { return &Decoder{r: r} }

// Decode reads the next frame into m. io.EOF is returned only at a clean
// frame boundary; a frame torn mid-payload yields io.ErrUnexpectedEOF.
func (d *Decoder) Decode(m *proto.Message) error {
	if _, err := io.ReadFull(d.r, d.hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return io.ErrUnexpectedEOF
		}
		return err
	}
	// Bounds-check in uint32 space before converting: on 32-bit platforms
	// a length >= 2^31 would wrap negative as int and slip past the guard
	// into a panicking slice expression.
	n32 := binary.LittleEndian.Uint32(d.hdr[:])
	if n32 > MaxFrame {
		return fmt.Errorf("codec: frame of %d bytes exceeds limit", n32)
	}
	n := int(n32)
	if n > shrinkCap {
		d.small = 0
	} else if cap(d.buf) > shrinkCap {
		if d.small++; d.small >= shrinkAfter {
			d.buf = nil
			d.small = 0
		}
	}
	if cap(d.buf) < n {
		c := n
		if c < 1024 {
			c = 1024
		}
		d.buf = make([]byte, c)
	}
	buf := d.buf[:n]
	if _, err := io.ReadFull(d.r, buf); err != nil {
		if errors.Is(err, io.EOF) {
			return io.ErrUnexpectedEOF
		}
		return err
	}
	msg, err := DecodeMessage(buf)
	if err != nil {
		return err
	}
	*m = msg
	return nil
}

// --- encoding ----------------------------------------------------------

// AppendMessage appends the payload encoding of m (no length prefix).
func AppendMessage(b []byte, m *proto.Message) []byte {
	b = binary.AppendUvarint(b, uint64(m.Kind))
	var flags byte
	if m.Note != nil {
		flags |= flagNote
		if len(m.Note.Path) > 0 {
			flags |= flagTraced
		}
	}
	if m.Sub != nil {
		flags |= flagSub
	}
	if m.Stale {
		flags |= flagStale
	}
	if m.Fresh {
		flags |= flagFresh
	}
	b = append(b, flags)
	b = appendString(b, string(m.From))
	b = appendString(b, string(m.Origin))
	b = appendString(b, string(m.Dest))
	b = appendString(b, string(m.Client))
	if m.Note != nil {
		b = appendNotification(b, m.Note)
	}
	b = binary.AppendUvarint(b, uint64(len(m.Notes)))
	for i := range m.Notes {
		b = appendNotification(b, &m.Notes[i])
	}
	b = binary.AppendUvarint(b, uint64(len(m.SubIDs)))
	for _, id := range m.SubIDs {
		b = appendString(b, string(id))
	}
	b = binary.AppendVarint(b, int64(m.Credits))
	if m.Sub != nil {
		b = appendSubscription(b, *m.Sub)
	}
	b = binary.AppendUvarint(b, uint64(len(m.Subs)))
	for _, s := range m.Subs {
		b = appendSubscription(b, s)
	}
	b = binary.AppendUvarint(b, uint64(len(m.Advs)))
	for _, s := range m.Advs {
		b = appendSubscription(b, s)
	}
	b = binary.AppendUvarint(b, uint64(len(m.Watermarks)))
	for node, seq := range m.Watermarks {
		b = appendString(b, string(node))
		b = binary.AppendUvarint(b, seq)
	}
	b = binary.AppendUvarint(b, m.FlushID)
	b = binary.AppendUvarint(b, m.Epoch)
	b = binary.AppendVarint(b, int64(m.Hops))
	if flags&flagTraced != 0 {
		b = binary.AppendUvarint(b, uint64(len(m.Note.Path)))
		for _, h := range m.Note.Path {
			b = appendString(b, string(h.Broker))
			b = binary.LittleEndian.AppendUint64(b, uint64(h.At.UnixNano()))
		}
	}
	return b
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendValue(b []byte, v message.Value) []byte {
	switch v.Kind() {
	case message.KindString:
		b = append(b, tagString)
		b = appendString(b, v.Str())
	case message.KindInt:
		b = append(b, tagInt)
		b = binary.AppendVarint(b, v.IntVal())
	case message.KindFloat:
		b = append(b, tagFloat)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.FloatVal()))
	case message.KindBool:
		if v.BoolVal() {
			b = append(b, tagTrue)
		} else {
			b = append(b, tagFalse)
		}
	default:
		b = append(b, tagInvalid)
	}
	return b
}

func appendNotification(b []byte, n *message.Notification) []byte {
	b = appendString(b, string(n.ID.Publisher))
	b = binary.AppendUvarint(b, n.ID.Seq)
	if n.Published.IsZero() {
		b = append(b, 0)
	} else {
		b = append(b, 1)
		b = binary.LittleEndian.AppendUint64(b, uint64(n.Published.UnixNano()))
	}
	b = binary.AppendUvarint(b, uint64(len(n.Attrs)))
	for name, v := range n.Attrs {
		b = appendString(b, name)
		b = appendValue(b, v)
	}
	return b
}

func appendConstraint(b []byte, c filter.Constraint) []byte {
	b = appendString(b, c.Attr)
	b = binary.AppendUvarint(b, uint64(c.Op))
	b = appendValue(b, c.Val)
	b = binary.AppendUvarint(b, uint64(len(c.Set)))
	for _, v := range c.Set {
		b = appendValue(b, v)
	}
	return b
}

func appendFilter(b []byte, f filter.Filter) []byte {
	cs := f.Constraints()
	b = binary.AppendUvarint(b, uint64(len(cs)))
	for _, c := range cs {
		b = appendConstraint(b, c)
	}
	return b
}

func appendSubscription(b []byte, s proto.Subscription) []byte {
	b = appendString(b, string(s.ID))
	return appendFilter(b, s.Filter)
}

// --- decoding ----------------------------------------------------------

var errTruncated = errors.New("codec: truncated frame")

// reader tracks a decode position with sticky error state so every field
// accessor stays a one-liner at the call site and no read can run past
// the payload.
type reader struct {
	data []byte
	off  int
	err  error
}

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) remaining() int { return len(r.data) - r.off }

func (r *reader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.data) {
		r.fail(errTruncated)
		return 0
	}
	b := r.data[r.off]
	r.off++
	return b
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail(errTruncated)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		r.fail(errTruncated)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) uint64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 8 {
		r.fail(errTruncated)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v
}

func (r *reader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(r.remaining()) {
		r.fail(errTruncated)
		return ""
	}
	s := string(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// count reads a list length and validates it against the remaining bytes
// (each element needs at least minBytes), so a corrupt count cannot drive
// a huge allocation.
func (r *reader) count(minBytes int) int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if n > uint64(r.remaining()/minBytes) {
		r.fail(fmt.Errorf("codec: list of %d elements exceeds frame", n))
		return 0
	}
	return int(n)
}

func (r *reader) value() message.Value {
	switch tag := r.byte(); tag {
	case tagString:
		return message.String(r.str())
	case tagInt:
		return message.Int(r.varint())
	case tagFloat:
		return message.Float(math.Float64frombits(r.uint64()))
	case tagTrue:
		return message.Bool(true)
	case tagFalse:
		return message.Bool(false)
	case tagInvalid:
		return message.Value{}
	default:
		r.fail(fmt.Errorf("codec: unknown value tag %d", tag))
		return message.Value{}
	}
}

func (r *reader) notification() message.Notification {
	var n message.Notification
	n.ID.Publisher = message.NodeID(r.str())
	n.ID.Seq = r.uvarint()
	if r.byte() == 1 {
		n.Published = time.Unix(0, int64(r.uint64()))
	}
	cnt := r.count(2)
	if cnt > 0 {
		n.Attrs = make(map[string]message.Value, cnt)
		for i := 0; i < cnt && r.err == nil; i++ {
			name := r.str()
			n.Attrs[name] = r.value()
		}
	}
	return n
}

func (r *reader) constraint() filter.Constraint {
	var c filter.Constraint
	c.Attr = r.str()
	c.Op = filter.Op(r.uvarint())
	c.Val = r.value()
	cnt := r.count(1)
	if cnt > 0 {
		c.Set = make([]message.Value, 0, cnt)
		for i := 0; i < cnt && r.err == nil; i++ {
			c.Set = append(c.Set, r.value())
		}
	}
	return c
}

func (r *reader) filter() filter.Filter {
	cnt := r.count(2)
	if cnt == 0 {
		return filter.All()
	}
	cs := make([]filter.Constraint, 0, cnt)
	for i := 0; i < cnt && r.err == nil; i++ {
		cs = append(cs, r.constraint())
	}
	if r.err != nil {
		return filter.Filter{}
	}
	return filter.New(cs...)
}

func (r *reader) subscription() proto.Subscription {
	var s proto.Subscription
	s.ID = message.SubID(r.str())
	s.Filter = r.filter()
	return s
}

// DecodeMessage decodes one frame payload (no length prefix). Malformed
// input — truncated fields, inflated list counts, unknown tags, trailing
// garbage — returns an error; DecodeMessage never panics.
func DecodeMessage(data []byte) (proto.Message, error) {
	r := reader{data: data}
	var m proto.Message
	kind := r.uvarint()
	if r.err == nil && (kind == uint64(proto.KInvalid) || kind >= uint64(proto.NumKinds)) {
		return proto.Message{}, fmt.Errorf("codec: unknown message kind %d", kind)
	}
	m.Kind = proto.Kind(kind)
	flags := r.byte()
	if r.err == nil && flags&^(flagNote|flagSub|flagStale|flagFresh|flagTraced) != 0 {
		return proto.Message{}, fmt.Errorf("codec: unknown flag bits %#x", flags)
	}
	if r.err == nil && flags&flagTraced != 0 && flags&flagNote == 0 {
		return proto.Message{}, errors.New("codec: traced flag without a note")
	}
	m.From = message.NodeID(r.str())
	m.Origin = message.NodeID(r.str())
	m.Dest = message.NodeID(r.str())
	m.Client = message.NodeID(r.str())
	if flags&flagNote != 0 {
		n := r.notification()
		m.Note = &n
	}
	if cnt := r.count(3); cnt > 0 {
		m.Notes = make([]message.Notification, 0, cnt)
		for i := 0; i < cnt && r.err == nil; i++ {
			m.Notes = append(m.Notes, r.notification())
		}
	}
	if cnt := r.count(1); cnt > 0 {
		m.SubIDs = make([]message.SubID, 0, cnt)
		for i := 0; i < cnt && r.err == nil; i++ {
			m.SubIDs = append(m.SubIDs, message.SubID(r.str()))
		}
	}
	m.Credits = int(r.varint())
	if flags&flagSub != 0 {
		s := r.subscription()
		m.Sub = &s
	}
	if cnt := r.count(2); cnt > 0 {
		m.Subs = make([]proto.Subscription, 0, cnt)
		for i := 0; i < cnt && r.err == nil; i++ {
			m.Subs = append(m.Subs, r.subscription())
		}
	}
	if cnt := r.count(2); cnt > 0 {
		m.Advs = make([]proto.Subscription, 0, cnt)
		for i := 0; i < cnt && r.err == nil; i++ {
			m.Advs = append(m.Advs, r.subscription())
		}
	}
	if cnt := r.count(2); cnt > 0 {
		m.Watermarks = make(map[message.NodeID]uint64, cnt)
		for i := 0; i < cnt && r.err == nil; i++ {
			node := message.NodeID(r.str())
			m.Watermarks[node] = r.uvarint()
		}
	}
	m.FlushID = r.uvarint()
	m.Epoch = r.uvarint()
	m.Hops = int(r.varint())
	if flags&flagTraced != 0 {
		// Each hop is at least a length byte plus its 8-byte timestamp.
		cnt := r.count(9)
		if cnt > 0 {
			path := make([]message.HopStamp, 0, cnt)
			for i := 0; i < cnt && r.err == nil; i++ {
				broker := message.NodeID(r.str())
				path = append(path, message.HopStamp{Broker: broker, At: time.Unix(0, int64(r.uint64()))})
			}
			if r.err == nil {
				m.Note.Path = path
			}
		}
	}
	m.Stale = flags&flagStale != 0
	m.Fresh = flags&flagFresh != 0
	if r.err != nil {
		return proto.Message{}, r.err
	}
	if r.off != len(r.data) {
		return proto.Message{}, fmt.Errorf("codec: %d trailing bytes after message", len(r.data)-r.off)
	}
	return m, nil
}
