package codec_test

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
	"time"

	"rebeca/internal/codec"
	"rebeca/internal/filter"
	"rebeca/internal/message"
	"rebeca/internal/proto"
)

// sampleNote exercises every value kind in one notification.
func sampleNote(seq uint64) message.Notification {
	n := message.NewNotification(map[string]message.Value{
		"service": message.String("temperature"),
		"value":   message.Float(21.5),
		"floor":   message.Int(3),
		"indoor":  message.Bool(true),
		"off":     message.Bool(false),
	})
	n.ID = message.NotificationID{Publisher: "pub", Seq: seq}
	n.Published = time.Unix(0, 1055764800123456789)
	return n
}

func sampleFilter() filter.Filter {
	return filter.New(
		filter.Eq("service", message.String("temperature")),
		filter.Le("value", message.Float(25)),
		filter.In("floor", message.Int(1), message.Int(2)),
		filter.Prefix("room", "r-"),
		filter.Exists("indoor"),
		filter.Constraint{Attr: "location", Op: filter.OpMyloc},
	)
}

// sampleMessages covers every proto kind with its typical payload shape.
func sampleMessages() []proto.Message {
	note := sampleNote(1)
	sub := proto.Subscription{ID: "alice/s1", Filter: sampleFilter()}
	all := proto.Subscription{ID: "alice/s2", Filter: filter.All()}
	var out []proto.Message
	for k := proto.KInvalid + 1; int(k) < proto.NumKinds; k++ {
		m := proto.Message{Kind: k, From: "B1", Origin: "B0", Client: "alice"}
		switch k {
		case proto.KPublish, proto.KDeliver:
			m.Note = &note
			m.SubIDs = []message.SubID{"alice/s1", "alice/s2"}
		case proto.KPublishBatch, proto.KRelocTail, proto.KBufferFetchReply:
			m.Notes = []message.Notification{sampleNote(1), sampleNote(2)}
		case proto.KSubscribe, proto.KUnsubscribe, proto.KReplicaSub, proto.KReplicaUnsub,
			proto.KAdvertise, proto.KUnadvertise:
			m.Sub = &sub
		case proto.KConnect:
			m.Subs = []proto.Subscription{sub, all}
			m.Epoch = 7
			m.Credits = 64
		case proto.KCredit:
			m.Credits = 32
		case proto.KRelocProfile:
			m.Subs = []proto.Subscription{sub}
			m.Notes = []message.Notification{sampleNote(3)}
			m.Watermarks = map[message.NodeID]uint64{"pub": 9, "pub2": 4}
			m.Stale = true
		case proto.KRelocReq, proto.KRelocActivate:
			m.Dest = "B9"
			m.Epoch = 3
			m.Fresh = true
		case proto.KFlush, proto.KFlushAck:
			m.FlushID = 42
			m.Dest = "B2"
		case proto.KReplicaCreate:
			m.Subs = []proto.Subscription{sub}
		case proto.KHello, proto.KSyncInstall:
			m.Epoch = 12
			m.Subs = []proto.Subscription{sub}
			m.Advs = []proto.Subscription{all}
		}
		m.Hops = int(k)
		out = append(out, m)
	}
	return out
}

// normalize strips the encoding-invisible differences (monotonic clock
// readings) so reflect.DeepEqual compares wire content.
func normalize(m proto.Message) proto.Message {
	round := func(n *message.Notification) {
		if !n.Published.IsZero() {
			n.Published = time.Unix(0, n.Published.UnixNano())
		}
	}
	if m.Note != nil {
		note := *m.Note
		round(&note)
		m.Note = &note
	}
	for i := range m.Notes {
		round(&m.Notes[i])
	}
	return m
}

func TestCodecRoundTripAllKinds(t *testing.T) {
	for _, m := range sampleMessages() {
		data := codec.AppendMessage(nil, &m)
		back, err := codec.DecodeMessage(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", m.Kind, err)
		}
		if want := normalize(m); !reflect.DeepEqual(back, want) {
			t.Errorf("%s: round trip mismatch\n got %+v\nwant %+v", m.Kind, back, want)
		}
	}
}

func TestCodecFilterSemanticsSurvive(t *testing.T) {
	sub := proto.Subscription{ID: "s", Filter: sampleFilter()}
	m := proto.Message{Kind: proto.KSubscribe, Sub: &sub}
	back, err := codec.DecodeMessage(codec.AppendMessage(nil, &m))
	if err != nil {
		t.Fatal(err)
	}
	f := back.Sub.Filter
	if !f.LocationDependent() {
		t.Error("filter lost its myloc marker")
	}
	if f.Key() != sub.Filter.Key() {
		t.Errorf("canonical key changed: %q vs %q", f.Key(), sub.Filter.Key())
	}
	n := message.NewNotification(map[string]message.Value{
		"service": message.String("temperature"),
		"value":   message.Float(20),
		"floor":   message.Int(2),
		"room":    message.String("r-7"),
		"indoor":  message.Bool(true),
	})
	if !f.MatchesIgnoringMarkers(n) {
		t.Error("decoded filter no longer matches")
	}
}

// TestCodecTruncatedFrames slices every valid payload at every byte
// boundary: the decoder must return an error (or decode a strict prefix
// that happens to be well-formed — impossible here because of the
// trailing-bytes check), and must never panic.
func TestCodecTruncatedFrames(t *testing.T) {
	for _, m := range sampleMessages() {
		data := codec.AppendMessage(nil, &m)
		for cut := 0; cut < len(data); cut++ {
			if _, err := codec.DecodeMessage(data[:cut]); err == nil {
				t.Fatalf("%s: truncation at %d/%d decoded cleanly", m.Kind, cut, len(data))
			}
		}
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		{},
		{0},             // kind 0 (invalid)
		{200, 200, 200}, // kind far out of range
		{1, 0xFF},       // unknown flag bits
		append(codec.AppendMessage(nil, &proto.Message{Kind: proto.KPing}), 0xAB), // trailing byte
	}
	for i, data := range cases {
		if _, err := codec.DecodeMessage(data); err == nil {
			t.Errorf("case %d: garbage decoded cleanly", i)
		}
	}
}

// TestDecoderStream verifies framing over a byte stream, clean EOF at a
// frame boundary, and ErrUnexpectedEOF on a torn tail.
func TestDecoderStream(t *testing.T) {
	var buf bytes.Buffer
	enc := codec.NewEncoder(&buf)
	msgs := sampleMessages()
	for _, m := range msgs {
		if err := enc.Encode(m); err != nil {
			t.Fatal(err)
		}
	}
	stream := buf.Bytes()
	dec := codec.NewDecoder(bytes.NewReader(stream))
	for i := range msgs {
		var got proto.Message
		if err := dec.Decode(&got); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if want := normalize(msgs[i]); !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
	var tail proto.Message
	if err := dec.Decode(&tail); err != io.EOF {
		t.Fatalf("clean stream end: got %v, want io.EOF", err)
	}
	// Torn tail: every strict prefix of the stream must end in a framing
	// error, never a panic.
	for cut := 1; cut < len(stream); cut += 7 {
		dec := codec.NewDecoder(bytes.NewReader(stream[:cut]))
		var err error
		for err == nil {
			var m proto.Message
			err = dec.Decode(&m)
		}
		if err == io.EOF && cut%int(uint32(len(stream))) != 0 {
			// io.EOF is only legitimate exactly between frames.
			off := 0
			boundary := false
			for off < cut {
				n := int(uint32(stream[off]) | uint32(stream[off+1])<<8 |
					uint32(stream[off+2])<<16 | uint32(stream[off+3])<<24)
				off += 4 + n
				if off == cut {
					boundary = true
				}
			}
			if !boundary {
				t.Fatalf("cut at %d: clean EOF mid-frame", cut)
			}
		}
	}
}

func TestDecoderRejectsOversizedFrame(t *testing.T) {
	var hdr [4]byte
	hdr[3] = 0xFF // ~4GB length prefix
	dec := codec.NewDecoder(bytes.NewReader(hdr[:]))
	var m proto.Message
	if err := dec.Decode(&m); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// TestDecoderRejectsOverflowingFrameLength pins the 32-bit safety of the
// length guard: a 0xFFFFFFFF header must be rejected as oversized on
// every platform, not wrap negative past the check into a panicking
// slice expression (reproduced on GOARCH=386 before the fix).
func TestDecoderRejectsOverflowingFrameLength(t *testing.T) {
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	dec := codec.NewDecoder(bytes.NewReader(hdr))
	var m proto.Message
	err := dec.Decode(&m)
	if err == nil {
		t.Fatal("overflowing frame length accepted")
	}
	if !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("want the oversized-frame error, got: %v", err)
	}
}
