package discovery

import (
	"log/slog"
	"sync"

	"rebeca/internal/message"
)

// Host is the deployment-side surface a Membership drives: the wire node
// (live) or cluster (sim) that owns the actual overlay links. Calls
// arrive serialized on the membership's watch path.
type Host interface {
	// AddLink establishes an overlay link to peer. dial says this side
	// initiates (addr is the peer's overlay address); otherwise the peer
	// dials us and addr is informational.
	AddLink(peer message.NodeID, addr string, dial bool)
	// RemoveLink tears the overlay link to a departed peer down.
	RemoveLink(peer message.NodeID)
	// MembersChanged delivers the full membership snapshot after every
	// applied change — the mesh layer's feed for member/edge sets and
	// spanning-tree re-election.
	MembersChanged(entries []Entry)
}

// MembershipConfig configures one node's membership supervisor.
type MembershipConfig struct {
	// Self is this broker's ID; Addr its overlay listen address, as
	// registered for others to dial.
	Self message.NodeID
	Addr string
	// Peers optionally restricts this broker's adjacency (see
	// Entry.Peers). Empty links to every discovered broker.
	Peers []message.NodeID
	// Registry is the membership store to register with and watch.
	Registry Registry
	// Host receives link add/remove commands and membership snapshots.
	Host Host
	// OnEvent observes membership events ("join", "leave", "update") for
	// metrics; may be nil.
	OnEvent func(typ string)
	// Logger, when non-nil, receives structured membership events (one
	// info line per join/leave/update command applied).
	Logger *slog.Logger
}

// Membership supervises one broker's overlay links from a registry:
// Start registers the broker and watches the registry; every snapshot is
// diffed against the current link set, new peers get links dialed under
// the deterministic dial-direction rule (the lexicographically smaller ID
// dials, so both sides of an edge agree on exactly one connection),
// departed peers get links closed, and changed addresses get the link
// re-dialed.
type Membership struct {
	cfg  MembershipConfig
	mu   sync.Mutex
	got  bool // at least one snapshot observed
	self bool // self present in the last snapshot
	// links holds the currently desired peer links (peer → overlay addr).
	links  map[message.NodeID]string
	events map[string]uint64
	stop   func()
}

// NewMembership returns an idle supervisor; Start begins supervision.
func NewMembership(cfg MembershipConfig) *Membership {
	return &Membership{
		cfg:    cfg,
		links:  make(map[message.NodeID]string),
		events: make(map[string]uint64),
	}
}

// Start registers the broker and begins watching the registry. Link
// commands flow to the host from here on. A registry with its own
// failure detector additionally feeds suspect/refute/tombstone verdicts
// into the membership event counters — link closure itself still rides
// the snapshot diff (a tombstone drops the member from the next
// snapshot, and apply closes the link), so verdicts are observability,
// not a second removal path.
func (m *Membership) Start() error {
	err := m.cfg.Registry.Register(Entry{ID: m.cfg.Self, Addr: m.cfg.Addr, Peers: m.cfg.Peers})
	if err != nil {
		return err
	}
	if fd, ok := m.cfg.Registry.(FailureDetector); ok {
		fd.OnVerdict(m.verdict)
	}
	m.stop = m.cfg.Registry.Watch(m.apply)
	return nil
}

// verdict records one failure-detection transition about a peer.
func (m *Membership) verdict(id message.NodeID, verdict string) {
	if id == m.cfg.Self {
		return
	}
	m.mu.Lock()
	m.events[verdict]++
	onEvent := m.cfg.OnEvent
	m.mu.Unlock()
	if l := m.cfg.Logger; l != nil {
		l.Info("membership "+verdict, "self", m.cfg.Self, "peer", id)
	}
	if onEvent != nil {
		onEvent(verdict)
	}
}

// Stop ends supervision; with deregister, the broker's entry is removed
// first so the fleet converges without waiting for failure detection.
func (m *Membership) Stop(deregister bool) {
	if m.stop != nil {
		m.stop()
		m.stop = nil
	}
	if deregister {
		_ = m.cfg.Registry.Deregister(m.cfg.Self)
	}
}

// apply diffs a membership snapshot against the current link set and
// drives the host.
func (m *Membership) apply(entries []Entry) {
	self := Entry{ID: m.cfg.Self, Peers: m.cfg.Peers}
	selfSeen := false
	for _, e := range entries {
		if e.ID == m.cfg.Self {
			self = e
			selfSeen = true
			break
		}
	}
	desired := make(map[message.NodeID]string)
	for _, e := range entries {
		if Linked(self, e) {
			desired[e.ID] = e.Addr
		}
	}

	type cmd struct {
		peer    message.NodeID
		addr    string
		add, rm bool
	}
	var cmds []cmd
	m.mu.Lock()
	m.got, m.self = true, selfSeen
	for peer, addr := range m.links {
		if want, ok := desired[peer]; !ok {
			cmds = append(cmds, cmd{peer: peer, rm: true})
			m.events["leave"]++
		} else if want != addr {
			cmds = append(cmds, cmd{peer: peer, addr: want, add: true, rm: true})
			m.events["update"]++
		}
	}
	for peer, addr := range desired {
		if _, ok := m.links[peer]; !ok {
			cmds = append(cmds, cmd{peer: peer, addr: addr, add: true})
			m.events["join"]++
		}
	}
	m.links = desired
	onEvent := m.cfg.OnEvent
	m.mu.Unlock()

	for _, c := range cmds {
		if c.rm {
			m.cfg.Host.RemoveLink(c.peer)
		}
		if c.add {
			// Deterministic dial direction: the smaller ID dials.
			m.cfg.Host.AddLink(c.peer, c.addr, m.cfg.Self < c.peer)
		}
		typ := "leave"
		switch {
		case c.add && c.rm:
			typ = "update"
		case c.add:
			typ = "join"
		}
		if l := m.cfg.Logger; l != nil {
			l.Info("membership "+typ, "self", m.cfg.Self, "peer", c.peer, "addr", c.addr)
		}
		if onEvent != nil {
			onEvent(typ)
		}
	}
	// Every snapshot reaches the mesh layer, even when our own link set
	// is unchanged: an edge between two *other* brokers may have appeared
	// or vanished, and the spanning-tree election needs the full graph.
	m.cfg.Host.MembersChanged(entries)
}

// Peers returns the number of currently linked peers — the
// rebeca_discovery_peers gauge.
func (m *Membership) Peers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.links)
}

// Events returns cumulative membership event counts by type — the
// rebeca_discovery_events_total feed.
func (m *Membership) Events() map[string]uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]uint64, len(m.events))
	for k, v := range m.events {
		out[k] = v
	}
	return out
}

// Ready is the /readyz membership check: the broker must have observed a
// registry snapshot that includes itself.
func (m *Membership) Ready() (bool, string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch {
	case !m.got:
		return false, "no registry snapshot yet"
	case !m.self:
		return false, "self not in registry"
	}
	return true, "registered"
}
