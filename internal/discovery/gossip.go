package discovery

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"rebeca/internal/message"
)

// GossipRegistry is the self-election seed backend: every broker runs a
// tiny anti-entropy agent, and the cluster converges on a shared
// membership view with no external store — the fleet "elects itself" from
// nothing but a seed address list. Each agent holds versioned records
// (entry + incarnation version + tombstone) and periodically push-pulls
// its full record set with a random known peer; higher versions win, a
// node refutes stale records about itself by out-versioning them, and
// Deregister spreads a tombstone. Convergence is O(log n) rounds,
// SWIM/memberlist style but deliberately simple — membership here is
// tens of brokers, not thousands.
type GossipRegistry struct {
	ln net.Listener

	mu       sync.Mutex
	records  map[message.NodeID]gossipRecord
	self     message.NodeID // set by Register
	seeds    []string
	interval time.Duration
	watchers map[int]func([]Entry)
	nextID   int
	last     string
	closed   bool
	stop     chan struct{}
	done     chan struct{}

	// Failure detection: a member whose gossip agent misses suspectAfter
	// consecutive attempted exchanges is suspected; a suspicion standing
	// for tombstoneAfter is converted to a tombstone (Dead + version
	// bump), which gossips out like a Deregister. A live peer refutes
	// either state the moment it exchanges again or out-versions the
	// record (the incarnation rule) — so only the genuinely silent die.
	suspectAfter   int
	tombstoneAfter time.Duration
	misses         map[message.NodeID]int
	suspected      map[message.NodeID]time.Time
	verdictFns     []func(id message.NodeID, verdict string)
}

// gossipRecord is one node's versioned registration as exchanged on the
// gossip wire.
type gossipRecord struct {
	Entry   Entry  `json:"entry"`
	Gossip  string `json:"gossip"` // the owner's gossip listen address
	Version uint64 `json:"version"`
	Dead    bool   `json:"dead,omitempty"`
}

// gossipInterval is the default anti-entropy round cadence.
const gossipInterval = 300 * time.Millisecond

// Failure-detection defaults: ~1s of silence raises a suspicion, ~2s
// more turns it into a tombstone — a SIGKILLed broker leaves every
// survivor's view in a few seconds with no operator action.
const (
	defaultSuspectAfter   = 3
	defaultTombstoneAfter = 2 * time.Second
)

// NewGossipRegistry starts a gossip agent listening on listen (host:port;
// port 0 picks one) and bootstrapping from the seed addresses — other
// agents' gossip addresses, any alive subset suffices.
func NewGossipRegistry(listen string, seeds []string) (*GossipRegistry, error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("discovery: gossip listen %s: %w", listen, err)
	}
	kept := make([]string, 0, len(seeds))
	for _, s := range seeds {
		if s != "" && s != ln.Addr().String() {
			kept = append(kept, s)
		}
	}
	g := &GossipRegistry{
		ln:             ln,
		records:        make(map[message.NodeID]gossipRecord),
		seeds:          kept,
		interval:       gossipInterval,
		watchers:       make(map[int]func([]Entry)),
		stop:           make(chan struct{}),
		done:           make(chan struct{}),
		suspectAfter:   defaultSuspectAfter,
		tombstoneAfter: defaultTombstoneAfter,
		misses:         make(map[message.NodeID]int),
		suspected:      make(map[message.NodeID]time.Time),
	}
	go g.serve()
	go g.loop()
	return g, nil
}

// Addr returns the agent's bound gossip address — what other nodes list
// as a seed.
func (g *GossipRegistry) Addr() string { return g.ln.Addr().String() }

// SetInterval overrides the anti-entropy cadence (tests).
func (g *GossipRegistry) SetInterval(d time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if d > 0 {
		g.interval = d
	}
}

// SetFailureDetection tunes the suspect→tombstone machine: a member is
// suspected after misses consecutive failed exchanges with its agent and
// tombstoned once the suspicion stands for timeout. Non-positive values
// keep the current settings.
func (g *GossipRegistry) SetFailureDetection(misses int, timeout time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if misses > 0 {
		g.suspectAfter = misses
	}
	if timeout > 0 {
		g.tombstoneAfter = timeout
	}
}

// OnVerdict subscribes fn to failure-detection verdicts: "suspect" when
// a member's agent goes silent, "refute" when a suspected member proves
// alive, "tombstone" when a suspicion expires into removal. fn runs off
// the gossip round goroutine; keep it brief.
func (g *GossipRegistry) OnVerdict(fn func(id message.NodeID, verdict string)) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.verdictFns = append(g.verdictFns, fn)
}

// emitVerdicts fans verdicts out to subscribers. Callers must NOT hold
// g.mu.
func (g *GossipRegistry) emitVerdicts(verdicts [][2]string) {
	if len(verdicts) == 0 {
		return
	}
	g.mu.Lock()
	fns := make([]func(message.NodeID, string), len(g.verdictFns))
	copy(fns, g.verdictFns)
	g.mu.Unlock()
	for _, v := range verdicts {
		for _, fn := range fns {
			fn(message.NodeID(v[0]), v[1])
		}
	}
}

// Register asserts our own record at a fresh incarnation (out-versioning
// any tombstone a previous incarnation left behind).
func (g *GossipRegistry) Register(e Entry) error {
	g.mu.Lock()
	cur := g.records[e.ID]
	g.records[e.ID] = gossipRecord{Entry: e, Gossip: g.Addr(), Version: cur.Version + 1}
	g.self = e.ID
	g.mu.Unlock()
	g.broadcast()
	g.round() // push immediately so joins converge in one dial, not one tick
	return nil
}

// Deregister spreads a tombstone for id and pushes it out synchronously
// (best effort) so a graceful shutdown converges before the process
// exits.
func (g *GossipRegistry) Deregister(id message.NodeID) error {
	g.mu.Lock()
	cur, ok := g.records[id]
	if !ok || cur.Dead {
		g.mu.Unlock()
		return nil
	}
	cur.Dead = true
	cur.Version++
	g.records[id] = cur
	g.mu.Unlock()
	g.broadcast()
	g.round()
	return nil
}

// Discover returns the live entries of the current gossip view.
func (g *GossipRegistry) Discover() ([]Entry, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.snapshotLocked(), nil
}

func (g *GossipRegistry) snapshotLocked() []Entry {
	es := make([]Entry, 0, len(g.records))
	for _, rec := range g.records {
		if !rec.Dead && rec.Entry.ID != "" {
			es = append(es, rec.Entry)
		}
	}
	sortEntries(es)
	return es
}

// Watch broadcasts the gossip view on every convergence step.
func (g *GossipRegistry) Watch(fn func([]Entry)) (stop func()) {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return func() {}
	}
	id := g.nextID
	g.nextID++
	g.watchers[id] = fn
	es := g.snapshotLocked()
	g.last = fingerprint(es)
	g.mu.Unlock()
	fn(es)
	return func() {
		g.mu.Lock()
		delete(g.watchers, id)
		g.mu.Unlock()
	}
}

// broadcast notifies watchers when the view changed since the last
// broadcast.
func (g *GossipRegistry) broadcast() {
	g.mu.Lock()
	es := g.snapshotLocked()
	fp := fingerprint(es)
	if fp == g.last {
		g.mu.Unlock()
		return
	}
	g.last = fp
	fns := make([]func([]Entry), 0, len(g.watchers))
	for _, fn := range g.watchers {
		fns = append(fns, fn)
	}
	g.mu.Unlock()
	for _, fn := range fns {
		fn(es)
	}
}

// merge folds remote records into ours; higher versions win. A stale or
// tombstoned record about ourselves is refuted by out-versioning it —
// the standard incarnation rule, so a restarted broker reclaims its
// identity.
func (g *GossipRegistry) merge(remote []gossipRecord) (changed bool) {
	var refuted [][2]string
	g.mu.Lock()
	for _, rec := range remote {
		id := rec.Entry.ID
		if id == "" {
			continue
		}
		cur, ok := g.records[id]
		if id == g.self && g.self != "" {
			if rec.Version >= cur.Version && (rec.Dead || rec.Entry.Addr != cur.Entry.Addr) {
				cur.Version = rec.Version + 1
				cur.Dead = false
				g.records[id] = cur
				changed = true
			}
			continue
		}
		if !ok || rec.Version > cur.Version {
			g.records[id] = rec
			changed = true
			if !rec.Dead {
				// A fresher live record refutes any local suspicion — the
				// incarnation rule applied to failure detection: only the
				// member itself (or an agent that heard from it) can
				// out-version, so the evidence of life is authoritative.
				if _, sus := g.suspected[id]; sus {
					refuted = append(refuted, [2]string{string(id), "refute"})
				}
				delete(g.suspected, id)
				delete(g.misses, id)
			}
		}
	}
	g.mu.Unlock()
	g.emitVerdicts(refuted)
	return changed
}

// exchange performs one push-pull with addr: send our records, merge the
// reply. Returns whether the full exchange completed — the failure
// detector's evidence of the remote agent's liveness.
func (g *GossipRegistry) exchange(addr string) bool {
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return false
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	g.mu.Lock()
	ours := make([]gossipRecord, 0, len(g.records))
	for _, rec := range g.records {
		ours = append(ours, rec)
	}
	g.mu.Unlock()
	enc := json.NewEncoder(conn)
	if err := enc.Encode(ours); err != nil {
		return false
	}
	var theirs []gossipRecord
	if err := json.NewDecoder(conn).Decode(&theirs); err != nil {
		return false
	}
	if g.merge(theirs) {
		g.broadcast()
	}
	return true
}

// round gossips with up to two targets chosen from seeds and known live
// agents, then feeds the outcomes to the failure detector.
func (g *GossipRegistry) round() {
	g.mu.Lock()
	targets := make(map[string]bool, len(g.seeds)+len(g.records))
	for _, s := range g.seeds {
		targets[s] = true
	}
	for _, rec := range g.records {
		// Tombstoned members are not gossip targets: their agents are
		// gone, and redialing them forever would starve live exchanges.
		if !rec.Dead && rec.Gossip != "" && rec.Gossip != g.Addr() {
			targets[rec.Gossip] = true
		}
	}
	g.mu.Unlock()
	addrs := make([]string, 0, len(targets))
	for a := range targets {
		addrs = append(addrs, a)
	}
	rand.Shuffle(len(addrs), func(i, j int) { addrs[i], addrs[j] = addrs[j], addrs[i] })
	if len(addrs) > 2 {
		addrs = addrs[:2]
	}
	results := make(map[string]bool, len(addrs))
	for _, a := range addrs {
		results[a] = g.exchange(a)
	}
	g.assess(results)
}

// assess folds one round's exchange outcomes into the suspect→tombstone
// machine: consecutive misses raise suspicion, a completed exchange
// clears it, and a suspicion older than tombstoneAfter becomes a
// tombstone that gossips out like a Deregister (refutable by the
// member's next incarnation).
func (g *GossipRegistry) assess(results map[string]bool) {
	var verdicts [][2]string
	now := time.Now()
	changed := false
	g.mu.Lock()
	for id, rec := range g.records {
		if id == g.self || rec.Dead || rec.Gossip == "" {
			continue
		}
		ok, attempted := results[rec.Gossip]
		if !attempted {
			continue
		}
		if ok {
			if _, sus := g.suspected[id]; sus {
				verdicts = append(verdicts, [2]string{string(id), "refute"})
			}
			delete(g.suspected, id)
			delete(g.misses, id)
			continue
		}
		g.misses[id]++
		if g.misses[id] < g.suspectAfter {
			continue
		}
		since, sus := g.suspected[id]
		if !sus {
			g.suspected[id] = now
			verdicts = append(verdicts, [2]string{string(id), "suspect"})
			continue
		}
		if now.Sub(since) >= g.tombstoneAfter {
			rec.Dead = true
			rec.Version++
			g.records[id] = rec
			delete(g.suspected, id)
			delete(g.misses, id)
			verdicts = append(verdicts, [2]string{string(id), "tombstone"})
			changed = true
		}
	}
	g.mu.Unlock()
	g.emitVerdicts(verdicts)
	if changed {
		g.broadcast()
	}
}

func (g *GossipRegistry) loop() {
	defer close(g.done)
	g.mu.Lock()
	interval := g.interval
	g.mu.Unlock()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-t.C:
			g.round()
		}
	}
}

func (g *GossipRegistry) serve() {
	for {
		conn, err := g.ln.Accept()
		if err != nil {
			return
		}
		go func(conn net.Conn) {
			defer conn.Close()
			_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
			var theirs []gossipRecord
			if err := json.NewDecoder(conn).Decode(&theirs); err != nil {
				return
			}
			changed := g.merge(theirs)
			g.mu.Lock()
			ours := make([]gossipRecord, 0, len(g.records))
			for _, rec := range g.records {
				ours = append(ours, rec)
			}
			g.mu.Unlock()
			_ = json.NewEncoder(conn).Encode(ours)
			if changed {
				g.broadcast()
			}
		}(conn)
	}
}

// Close stops the agent and its listener.
func (g *GossipRegistry) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	g.watchers = make(map[int]func([]Entry))
	g.mu.Unlock()
	close(g.stop)
	err := g.ln.Close()
	<-g.done
	return err
}
