package discovery

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"rebeca/internal/message"
)

// GossipRegistry is the self-election seed backend: every broker runs a
// tiny anti-entropy agent, and the cluster converges on a shared
// membership view with no external store — the fleet "elects itself" from
// nothing but a seed address list. Each agent holds versioned records
// (entry + incarnation version + tombstone) and periodically push-pulls
// its full record set with a random known peer; higher versions win, a
// node refutes stale records about itself by out-versioning them, and
// Deregister spreads a tombstone. Convergence is O(log n) rounds,
// SWIM/memberlist style but deliberately simple — membership here is
// tens of brokers, not thousands.
type GossipRegistry struct {
	ln net.Listener

	mu       sync.Mutex
	records  map[message.NodeID]gossipRecord
	self     message.NodeID // set by Register
	seeds    []string
	interval time.Duration
	watchers map[int]func([]Entry)
	nextID   int
	last     string
	closed   bool
	stop     chan struct{}
	done     chan struct{}
}

// gossipRecord is one node's versioned registration as exchanged on the
// gossip wire.
type gossipRecord struct {
	Entry   Entry  `json:"entry"`
	Gossip  string `json:"gossip"` // the owner's gossip listen address
	Version uint64 `json:"version"`
	Dead    bool   `json:"dead,omitempty"`
}

// gossipInterval is the default anti-entropy round cadence.
const gossipInterval = 300 * time.Millisecond

// NewGossipRegistry starts a gossip agent listening on listen (host:port;
// port 0 picks one) and bootstrapping from the seed addresses — other
// agents' gossip addresses, any alive subset suffices.
func NewGossipRegistry(listen string, seeds []string) (*GossipRegistry, error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("discovery: gossip listen %s: %w", listen, err)
	}
	kept := make([]string, 0, len(seeds))
	for _, s := range seeds {
		if s != "" && s != ln.Addr().String() {
			kept = append(kept, s)
		}
	}
	g := &GossipRegistry{
		ln:       ln,
		records:  make(map[message.NodeID]gossipRecord),
		seeds:    kept,
		interval: gossipInterval,
		watchers: make(map[int]func([]Entry)),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go g.serve()
	go g.loop()
	return g, nil
}

// Addr returns the agent's bound gossip address — what other nodes list
// as a seed.
func (g *GossipRegistry) Addr() string { return g.ln.Addr().String() }

// SetInterval overrides the anti-entropy cadence (tests).
func (g *GossipRegistry) SetInterval(d time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if d > 0 {
		g.interval = d
	}
}

// Register asserts our own record at a fresh incarnation (out-versioning
// any tombstone a previous incarnation left behind).
func (g *GossipRegistry) Register(e Entry) error {
	g.mu.Lock()
	cur := g.records[e.ID]
	g.records[e.ID] = gossipRecord{Entry: e, Gossip: g.Addr(), Version: cur.Version + 1}
	g.self = e.ID
	g.mu.Unlock()
	g.broadcast()
	g.round() // push immediately so joins converge in one dial, not one tick
	return nil
}

// Deregister spreads a tombstone for id and pushes it out synchronously
// (best effort) so a graceful shutdown converges before the process
// exits.
func (g *GossipRegistry) Deregister(id message.NodeID) error {
	g.mu.Lock()
	cur, ok := g.records[id]
	if !ok || cur.Dead {
		g.mu.Unlock()
		return nil
	}
	cur.Dead = true
	cur.Version++
	g.records[id] = cur
	g.mu.Unlock()
	g.broadcast()
	g.round()
	return nil
}

// Discover returns the live entries of the current gossip view.
func (g *GossipRegistry) Discover() ([]Entry, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.snapshotLocked(), nil
}

func (g *GossipRegistry) snapshotLocked() []Entry {
	es := make([]Entry, 0, len(g.records))
	for _, rec := range g.records {
		if !rec.Dead && rec.Entry.ID != "" {
			es = append(es, rec.Entry)
		}
	}
	sortEntries(es)
	return es
}

// Watch broadcasts the gossip view on every convergence step.
func (g *GossipRegistry) Watch(fn func([]Entry)) (stop func()) {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return func() {}
	}
	id := g.nextID
	g.nextID++
	g.watchers[id] = fn
	es := g.snapshotLocked()
	g.last = fingerprint(es)
	g.mu.Unlock()
	fn(es)
	return func() {
		g.mu.Lock()
		delete(g.watchers, id)
		g.mu.Unlock()
	}
}

// broadcast notifies watchers when the view changed since the last
// broadcast.
func (g *GossipRegistry) broadcast() {
	g.mu.Lock()
	es := g.snapshotLocked()
	fp := fingerprint(es)
	if fp == g.last {
		g.mu.Unlock()
		return
	}
	g.last = fp
	fns := make([]func([]Entry), 0, len(g.watchers))
	for _, fn := range g.watchers {
		fns = append(fns, fn)
	}
	g.mu.Unlock()
	for _, fn := range fns {
		fn(es)
	}
}

// merge folds remote records into ours; higher versions win. A stale or
// tombstoned record about ourselves is refuted by out-versioning it —
// the standard incarnation rule, so a restarted broker reclaims its
// identity.
func (g *GossipRegistry) merge(remote []gossipRecord) (changed bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, rec := range remote {
		id := rec.Entry.ID
		if id == "" {
			continue
		}
		cur, ok := g.records[id]
		if id == g.self && g.self != "" {
			if rec.Version >= cur.Version && (rec.Dead || rec.Entry.Addr != cur.Entry.Addr) {
				cur.Version = rec.Version + 1
				cur.Dead = false
				g.records[id] = cur
				changed = true
			}
			continue
		}
		if !ok || rec.Version > cur.Version {
			g.records[id] = rec
			changed = true
		}
	}
	return changed
}

// exchange performs one push-pull with addr: send our records, merge the
// reply.
func (g *GossipRegistry) exchange(addr string) {
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	g.mu.Lock()
	ours := make([]gossipRecord, 0, len(g.records))
	for _, rec := range g.records {
		ours = append(ours, rec)
	}
	g.mu.Unlock()
	enc := json.NewEncoder(conn)
	if err := enc.Encode(ours); err != nil {
		return
	}
	var theirs []gossipRecord
	if err := json.NewDecoder(conn).Decode(&theirs); err != nil {
		return
	}
	if g.merge(theirs) {
		g.broadcast()
	}
}

// round gossips with up to two targets chosen from seeds and known
// agents.
func (g *GossipRegistry) round() {
	g.mu.Lock()
	targets := make(map[string]bool, len(g.seeds)+len(g.records))
	for _, s := range g.seeds {
		targets[s] = true
	}
	for _, rec := range g.records {
		if rec.Gossip != "" && rec.Gossip != g.Addr() {
			targets[rec.Gossip] = true
		}
	}
	g.mu.Unlock()
	addrs := make([]string, 0, len(targets))
	for a := range targets {
		addrs = append(addrs, a)
	}
	rand.Shuffle(len(addrs), func(i, j int) { addrs[i], addrs[j] = addrs[j], addrs[i] })
	if len(addrs) > 2 {
		addrs = addrs[:2]
	}
	for _, a := range addrs {
		g.exchange(a)
	}
}

func (g *GossipRegistry) loop() {
	defer close(g.done)
	g.mu.Lock()
	interval := g.interval
	g.mu.Unlock()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-t.C:
			g.round()
		}
	}
}

func (g *GossipRegistry) serve() {
	for {
		conn, err := g.ln.Accept()
		if err != nil {
			return
		}
		go func(conn net.Conn) {
			defer conn.Close()
			_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
			var theirs []gossipRecord
			if err := json.NewDecoder(conn).Decode(&theirs); err != nil {
				return
			}
			changed := g.merge(theirs)
			g.mu.Lock()
			ours := make([]gossipRecord, 0, len(g.records))
			for _, rec := range g.records {
				ours = append(ours, rec)
			}
			g.mu.Unlock()
			_ = json.NewEncoder(conn).Encode(ours)
			if changed {
				g.broadcast()
			}
		}(conn)
	}
}

// Close stops the agent and its listener.
func (g *GossipRegistry) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	g.watchers = make(map[int]func([]Entry))
	g.mu.Unlock()
	close(g.stop)
	err := g.ln.Close()
	<-g.done
	return err
}
