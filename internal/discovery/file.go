package discovery

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"rebeca/internal/message"
)

// FileRegistry is the static-file backend: a JSON array of entries,
// hot-reloaded. Register/Deregister rewrite the file atomically
// (temp + rename) under a sidecar lock file, so several broker processes
// can share one registry file; Watch polls for content changes. A missing
// file reads as an empty membership — brokers may start before the first
// registration lands.
type FileRegistry struct {
	path string

	mu       sync.Mutex
	interval time.Duration
	watchers map[int]func([]Entry)
	nextID   int
	last     string // fingerprint of the last snapshot broadcast
	stopPoll chan struct{}
	done     chan struct{}
	closed   bool

	// TTL lease state: with a TTL set, Register stamps the entry's Expires
	// and a refresh goroutine re-stamps it every ttl/3; load prunes
	// expired entries on every read, so a SIGKILLed broker's registration
	// ages out of everyone's snapshot without operator action.
	ttl         time.Duration
	stopRefresh chan struct{}
	refreshDone chan struct{}
}

// filePollInterval is the default watch poll cadence. Fast enough that a
// membership edit converges in human-imperceptible time, slow enough that
// an idle fleet costs nothing measurable.
const filePollInterval = 200 * time.Millisecond

// NewFileRegistry returns a registry backed by a JSON file at path.
func NewFileRegistry(path string) *FileRegistry {
	return &FileRegistry{
		path:     path,
		interval: filePollInterval,
		watchers: make(map[int]func([]Entry)),
	}
}

// SetPollInterval overrides the watch poll cadence (tests). Call before
// the first Watch.
func (r *FileRegistry) SetPollInterval(d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if d > 0 {
		r.interval = d
	}
}

// SetTTL turns registrations into leases: every entry this registry
// Registers from now on carries Expires = now + d and is re-stamped by a
// background refresher every d/3, and expired entries (anyone's) are
// pruned from every snapshot this registry reads. Call before Register.
// d <= 0 disables the lease (the default — hand-written registry files
// never expire).
func (r *FileRegistry) SetTTL(d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ttl = d
}

func (r *FileRegistry) load() ([]Entry, error) {
	data, err := os.ReadFile(r.path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("discovery: read %s: %w", r.path, err)
	}
	var es []Entry
	if len(data) > 0 {
		if err := json.Unmarshal(data, &es); err != nil {
			return nil, fmt.Errorf("discovery: parse %s: %w", r.path, err)
		}
	}
	now := time.Now().UnixMilli()
	kept := es[:0]
	for _, e := range es {
		if e.ID == "" {
			continue
		}
		if e.Expires != 0 && e.Expires <= now {
			continue // lease lapsed: the owner stopped refreshing
		}
		kept = append(kept, e)
	}
	sortEntries(kept)
	return kept, nil
}

func (r *FileRegistry) store(es []Entry) error {
	sortEntries(es)
	data, err := json.MarshalIndent(es, "", "  ")
	if err != nil {
		return err
	}
	dir := filepath.Dir(r.path)
	tmp, err := os.CreateTemp(dir, ".peers-*.json")
	if err != nil {
		return fmt.Errorf("discovery: write %s: %w", r.path, err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("discovery: write %s: %w", r.path, errors.Join(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), r.path); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("discovery: write %s: %w", r.path, err)
	}
	return nil
}

// lock takes the registry's cross-process mutation lock (a sidecar
// O_EXCL file). A lock older than lockStale is assumed abandoned by a
// crashed writer and broken.
const lockStale = 2 * time.Second

func (r *FileRegistry) lock() (unlock func(), err error) {
	lockPath := r.path + ".lock"
	deadline := time.Now().Add(lockStale + time.Second)
	for {
		f, err := os.OpenFile(lockPath, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			_ = f.Close()
			return func() { _ = os.Remove(lockPath) }, nil
		}
		if !errors.Is(err, os.ErrExist) {
			return nil, fmt.Errorf("discovery: lock %s: %w", lockPath, err)
		}
		if fi, serr := os.Stat(lockPath); serr == nil && time.Since(fi.ModTime()) > lockStale {
			_ = os.Remove(lockPath)
			continue
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("discovery: lock %s: timed out", lockPath)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Register upserts e. Writing is skipped when an identical entry is
// already present (a fleet booted from a pre-seeded file never rewrites
// it). With a TTL set the entry is stamped with its expiry and a
// background refresher keeps re-stamping it until Close.
func (r *FileRegistry) Register(e Entry) error {
	if e.ID == "" {
		return errors.New("discovery: register: empty ID")
	}
	r.mu.Lock()
	ttl := r.ttl
	if ttl > 0 {
		e.Expires = time.Now().Add(ttl).UnixMilli()
		if r.stopRefresh == nil && !r.closed {
			r.stopRefresh = make(chan struct{})
			r.refreshDone = make(chan struct{})
			go r.refresh(e, ttl, r.stopRefresh, r.refreshDone)
		}
	}
	r.mu.Unlock()
	unlock, err := r.lock()
	if err != nil {
		return err
	}
	defer unlock()
	es, err := r.load()
	if err != nil {
		return err
	}
	for i, cur := range es {
		if cur.ID != e.ID {
			continue
		}
		if cur.Addr == e.Addr && cur.Expires == e.Expires &&
			fingerprint([]Entry{cur}) == fingerprint([]Entry{e}) {
			return nil
		}
		es[i] = e
		return r.store(es)
	}
	return r.store(append(es, e))
}

// refresh re-stamps the registered entry's lease every ttl/3 until the
// registry closes. A re-Register with changed fields supersedes the
// snapshot this goroutine carries only in Expires — the file's content
// for the entry is whatever the last Register wrote, re-stamped.
func (r *FileRegistry) refresh(e Entry, ttl time.Duration, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	period := ttl / 3
	if period <= 0 {
		period = time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		unlock, err := r.lock()
		if err != nil {
			continue
		}
		es, err := r.load()
		if err == nil {
			for i := range es {
				if es[i].ID == e.ID {
					es[i].Expires = time.Now().Add(ttl).UnixMilli()
					_ = r.store(es)
					break
				}
			}
		}
		unlock()
	}
}

// Deregister removes id's entry (a no-op when absent).
func (r *FileRegistry) Deregister(id message.NodeID) error {
	unlock, err := r.lock()
	if err != nil {
		return err
	}
	defer unlock()
	es, err := r.load()
	if err != nil {
		return err
	}
	kept := es[:0]
	for _, e := range es {
		if e.ID != id {
			kept = append(kept, e)
		}
	}
	if len(kept) == len(es) {
		return nil
	}
	return r.store(kept)
}

// Discover returns the file's current entries.
func (r *FileRegistry) Discover() ([]Entry, error) { return r.load() }

// Watch registers fn; the shared poll goroutine starts on first use.
func (r *FileRegistry) Watch(fn func([]Entry)) (stop func()) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return func() {}
	}
	id := r.nextID
	r.nextID++
	r.watchers[id] = fn
	if r.stopPoll == nil {
		r.stopPoll = make(chan struct{})
		r.done = make(chan struct{})
		go r.poll(r.stopPoll, r.done)
	}
	r.mu.Unlock()

	// Immediate initial snapshot: a watcher never waits a poll tick to
	// learn the current membership.
	if es, err := r.load(); err == nil {
		fn(es)
		r.mu.Lock()
		r.last = fingerprint(es)
		r.mu.Unlock()
	}
	return func() {
		r.mu.Lock()
		delete(r.watchers, id)
		r.mu.Unlock()
	}
}

func (r *FileRegistry) poll(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	r.mu.Lock()
	interval := r.interval
	r.mu.Unlock()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		es, err := r.load()
		if err != nil {
			continue // transient parse mid-rewrite; next tick retries
		}
		fp := fingerprint(es)
		r.mu.Lock()
		if fp == r.last {
			r.mu.Unlock()
			continue
		}
		r.last = fp
		fns := make([]func([]Entry), 0, len(r.watchers))
		for _, fn := range r.watchers {
			fns = append(fns, fn)
		}
		r.mu.Unlock()
		for _, fn := range fns {
			fn(es)
		}
	}
}

// Close stops the watch and lease-refresh goroutines.
func (r *FileRegistry) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	stop, done := r.stopPoll, r.done
	rstop, rdone := r.stopRefresh, r.refreshDone
	r.watchers = make(map[int]func([]Entry))
	r.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	if rstop != nil {
		close(rstop)
		<-rdone
	}
	return nil
}
