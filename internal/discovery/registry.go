// Package discovery is the broker membership subsystem: a pluggable
// Registry interface (modeled on the go-micro registry family —
// Register/Deregister/Discover/Watch behind one contract, with file, DNS
// and gossip backends) plus a Membership supervisor that watches the
// registry and drives a deployment's overlay links. Brokers join a mesh
// by name (`rebeca-broker -registry file:peers.json -name b2`) instead of
// static -dial flags: discovered peers get links dialed under a
// deterministic dial-direction rule, departed peers get links closed, and
// membership changes feed the mesh layer's spanning-tree election.
package discovery

import (
	"fmt"
	"sort"
	"strings"

	"rebeca/internal/message"
)

// Entry is one broker's registration: its identity, the address its
// overlay transport listens on, and an optional adjacency restriction.
type Entry struct {
	ID   message.NodeID `json:"id"`
	Addr string         `json:"addr"`
	// Peers restricts which other brokers this one links to. Empty means
	// "link to everyone" (full mesh). An edge (a, b) exists iff both sides
	// accept it: each side either names the other or restricts nothing —
	// so a registry file can describe sparse meshes (rings, diamonds,
	// chords) as well as full ones.
	Peers []message.NodeID `json:"peers,omitempty"`
	// Expires, when non-zero, is the unix-millisecond instant past which
	// this entry no longer counts as a member — the file backend's lease:
	// a broker with a TTL re-stamps its entry periodically, and a
	// SIGKILLed one stops, so its entry ages out with no operator pruning.
	// 0 means the entry never expires (the hand-written registry file).
	Expires int64 `json:"expires,omitempty"`
}

// Accepts reports whether this entry's adjacency restriction allows a
// link to peer.
func (e Entry) Accepts(peer message.NodeID) bool {
	if len(e.Peers) == 0 {
		return true
	}
	for _, p := range e.Peers {
		if p == peer {
			return true
		}
	}
	return false
}

// Linked reports whether an overlay edge exists between two entries: both
// sides must accept the other.
func Linked(a, b Entry) bool {
	return a.ID != b.ID && a.Accepts(b.ID) && b.Accepts(a.ID)
}

// Registry is the pluggable membership store. Implementations are safe
// for concurrent use.
type Registry interface {
	// Register upserts an entry (the caller's own, usually). Read-only
	// backends (DNS) treat it as a no-op.
	Register(e Entry) error
	// Deregister removes an entry. A broker deregisters on graceful
	// shutdown so the fleet converges without waiting for failure
	// detection.
	Deregister(id message.NodeID) error
	// Discover returns the current membership snapshot, sorted by ID.
	Discover() ([]Entry, error)
	// Watch invokes fn with a full membership snapshot — once immediately,
	// then on every observed change — until the returned stop func is
	// called. fn runs on the registry's watch goroutine; keep it brief.
	Watch(fn func([]Entry)) (stop func())
	// Close releases the registry's resources (watch goroutines,
	// listeners). Registered entries are not deregistered implicitly.
	Close() error
}

// FailureDetector is the optional registry capability of noticing dead
// members on its own: backends that implement it (the gossip registry)
// emit verdicts — "suspect" when a member's agent goes silent, "refute"
// when a suspected member proves alive, "tombstone" when the suspicion
// expires into removal. Membership subscribes when its registry offers
// the capability, so the verdicts reach the discovery event counters.
type FailureDetector interface {
	OnVerdict(fn func(id message.NodeID, verdict string))
}

// Open builds a registry from a URI:
//
//	file:<path>                    hot-reloaded JSON file (array of entries)
//	dns:<srv-name>                 DNS SRV lookup, read-only
//	seed:<listen>[,<seed-addr>…]   gossip mesh; listen is this node's
//	                               gossip address, seeds bootstrap it
func Open(uri string) (Registry, error) {
	scheme, rest, ok := strings.Cut(uri, ":")
	if !ok || rest == "" {
		return nil, fmt.Errorf("discovery: registry %q: want scheme:value (file:, dns:, seed:)", uri)
	}
	switch scheme {
	case "file":
		return NewFileRegistry(rest), nil
	case "dns":
		return NewDNSRegistry(rest), nil
	case "seed":
		parts := strings.Split(rest, ",")
		return NewGossipRegistry(parts[0], parts[1:])
	}
	return nil, fmt.Errorf("discovery: unknown registry scheme %q (want file, dns or seed)", scheme)
}

// Graph derives the overlay graph a membership snapshot describes: all
// member IDs and every edge both endpoints accept — the mesh layer's
// input for spanning-tree election.
func Graph(entries []Entry) (members []message.NodeID, edges [][2]message.NodeID) {
	for _, e := range entries {
		if e.ID != "" {
			members = append(members, e.ID)
		}
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	for i := range entries {
		for j := i + 1; j < len(entries); j++ {
			if Linked(entries[i], entries[j]) {
				edges = append(edges, [2]message.NodeID{entries[i].ID, entries[j].ID})
			}
		}
	}
	return members, edges
}

// sortEntries orders a snapshot by ID so snapshots compare stably.
func sortEntries(es []Entry) {
	sort.Slice(es, func(i, j int) bool { return es[i].ID < es[j].ID })
}

// fingerprint renders a snapshot to a comparable string (entries sorted
// by the caller).
func fingerprint(es []Entry) string {
	var b strings.Builder
	for _, e := range es {
		b.WriteString(string(e.ID))
		b.WriteByte('=')
		b.WriteString(e.Addr)
		b.WriteByte('[')
		for i, p := range e.Peers {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(string(p))
		}
		b.WriteString("];")
	}
	return b.String()
}
