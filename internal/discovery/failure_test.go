package discovery

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"rebeca/internal/message"
)

// verdictLog collects OnVerdict emissions for assertion.
type verdictLog struct {
	mu sync.Mutex
	vs []string // "<id>:<verdict>"
}

func (l *verdictLog) record(id message.NodeID, verdict string) {
	l.mu.Lock()
	l.vs = append(l.vs, string(id)+":"+verdict)
	l.mu.Unlock()
}

func (l *verdictLog) has(want string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, v := range l.vs {
		if v == want {
			return true
		}
	}
	return false
}

// A SIGKILLed peer — its gossip agent gone without a Deregister — is
// suspected after the configured misses and tombstoned after the
// timeout, leaving the survivor's snapshot with no operator action.
func TestGossipFailureDetectionTombstonesSilentPeer(t *testing.T) {
	a, err := NewGossipRegistry("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	a.SetInterval(10 * time.Millisecond)
	a.SetFailureDetection(2, 50*time.Millisecond)
	var log verdictLog
	a.OnVerdict(log.record)

	b, err := NewGossipRegistry("127.0.0.1:0", []string{a.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	b.SetInterval(10 * time.Millisecond)
	if err := a.Register(Entry{ID: "a", Addr: "127.0.0.1:1"}); err != nil {
		t.Fatal(err)
	}
	if err := b.Register(Entry{ID: "b", Addr: "127.0.0.1:2"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		es, err := a.Discover()
		return err == nil && len(es) == 2
	}, "initial convergence")

	// The "SIGKILL": b's agent vanishes without a tombstone of its own.
	_ = b.Close()

	waitFor(t, func() bool { return log.has("b:suspect") }, "the silent peer to be suspected")
	waitFor(t, func() bool {
		es, err := a.Discover()
		return err == nil && len(es) == 1 && es[0].ID == "a"
	}, "the suspicion to expire into a tombstone")
	if !log.has("b:tombstone") {
		t.Fatalf("no tombstone verdict; verdicts: %v", log.vs)
	}
}

// A suspected member that proves alive — by exchanging again or by a
// fresher record arriving — is refuted, not tombstoned. Driven through
// assess/merge directly for determinism.
func TestGossipSuspicionRefuted(t *testing.T) {
	g, err := NewGossipRegistry("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = g.Close() }()
	var log verdictLog
	g.OnVerdict(log.record)
	g.SetFailureDetection(2, time.Hour) // suspicion never expires here

	const deadAddr = "127.0.0.1:9" // nothing listens; exchanges fail
	g.mu.Lock()
	g.records["b"] = gossipRecord{Entry: Entry{ID: "b", Addr: "x"}, Gossip: deadAddr, Version: 1}
	g.mu.Unlock()

	miss := map[string]bool{deadAddr: false}
	g.assess(miss)
	if log.has("b:suspect") {
		t.Fatal("suspected after a single miss, want two")
	}
	g.assess(miss)
	if !log.has("b:suspect") {
		t.Fatalf("no suspicion after two misses; verdicts: %v", log.vs)
	}

	// Path 1: a fresher live record out-versions the suspicion.
	g.merge([]gossipRecord{{Entry: Entry{ID: "b", Addr: "x"}, Gossip: deadAddr, Version: 2}})
	if !log.has("b:refute") {
		t.Fatalf("out-versioned suspicion not refuted; verdicts: %v", log.vs)
	}

	// Path 2: a completed exchange clears a fresh suspicion too.
	g.assess(miss)
	g.assess(miss)
	g.assess(map[string]bool{deadAddr: true})
	g.mu.Lock()
	_, stillSuspected := g.suspected["b"]
	misses := g.misses["b"]
	g.mu.Unlock()
	if stillSuspected || misses != 0 {
		t.Fatalf("exchange did not clear suspicion (suspected=%v misses=%d)", stillSuspected, misses)
	}
}

// With a TTL set, a file-registry entry is a lease: the refresher keeps
// it alive while the process runs, and it ages out of every reader's
// snapshot once the owner dies.
func TestFileRegistryTTLExpiry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "peers.json")
	owner := NewFileRegistry(path)
	owner.SetTTL(150 * time.Millisecond)
	if err := owner.Register(Entry{ID: "b1", Addr: "127.0.0.1:1"}); err != nil {
		t.Fatal(err)
	}
	reader := NewFileRegistry(path)
	defer func() { _ = reader.Close() }()

	es, err := reader.Discover()
	if err != nil || len(es) != 1 || es[0].Expires == 0 {
		t.Fatalf("leased entry not visible/stamped: %v (err=%v)", es, err)
	}

	// The refresher outlives the original TTL.
	time.Sleep(300 * time.Millisecond)
	if es, _ := reader.Discover(); len(es) != 1 {
		t.Fatalf("entry lapsed while its owner was alive: %v", es)
	}

	// Owner dies (Close stops the refresher — the SIGKILL analog for the
	// lease); the entry ages out with no Deregister.
	_ = owner.Close()
	waitFor(t, func() bool {
		es, err := reader.Discover()
		return err == nil && len(es) == 0
	}, "the dead owner's lease to lapse")

	// The stale bytes are still in the file — pruning is read-side.
	if data, err := os.ReadFile(path); err != nil || len(data) == 0 {
		t.Fatalf("registry file unexpectedly empty (err=%v)", err)
	}
}

// Membership counts failure-detector verdicts in its event feed (the
// rebeca_discovery_events_total surface).
func TestMembershipCountsVerdicts(t *testing.T) {
	g, err := NewGossipRegistry("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = g.Close() }()
	var events []string
	var mu sync.Mutex
	m := NewMembership(MembershipConfig{
		Self:     "a",
		Addr:     "127.0.0.1:1",
		Registry: g,
		Host:     &recordingHost{},
		OnEvent: func(typ string) {
			mu.Lock()
			events = append(events, typ)
			mu.Unlock()
		},
	})
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	defer m.Stop(false)

	g.SetFailureDetection(1, time.Millisecond)
	const deadAddr = "127.0.0.1:9"
	g.mu.Lock()
	g.records["b"] = gossipRecord{Entry: Entry{ID: "b", Addr: "x"}, Gossip: deadAddr, Version: 1}
	g.mu.Unlock()
	miss := map[string]bool{deadAddr: false}
	g.assess(miss) // suspect
	time.Sleep(5 * time.Millisecond)
	g.assess(miss) // tombstone

	ev := m.Events()
	if ev["suspect"] != 1 || ev["tombstone"] != 1 {
		t.Fatalf("events = %v, want suspect=1 tombstone=1", ev)
	}
	mu.Lock()
	defer mu.Unlock()
	seen := map[string]bool{}
	for _, e := range events {
		seen[e] = true
	}
	if !seen["suspect"] || !seen["tombstone"] {
		t.Fatalf("OnEvent saw %v, want suspect and tombstone", events)
	}
}
