package discovery

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"rebeca/internal/message"
)

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestEntryLinking(t *testing.T) {
	open := Entry{ID: "a", Addr: "x"}
	restricted := Entry{ID: "b", Addr: "y", Peers: []message.NodeID{"a"}}
	other := Entry{ID: "c", Addr: "z", Peers: []message.NodeID{"d"}}
	if !Linked(open, restricted) {
		t.Error("open+accepting pair not linked")
	}
	if Linked(open, other) {
		t.Error("one-sided acceptance linked: c restricts to d only")
	}
	if Linked(open, open) {
		t.Error("self-edge linked")
	}
}

func TestGraphDerivation(t *testing.T) {
	// A diamond with a chord, declared through adjacency restrictions.
	entries := []Entry{
		{ID: "b1", Peers: []message.NodeID{"b2", "b3"}},
		{ID: "b2", Peers: []message.NodeID{"b1", "b3", "b4"}},
		{ID: "b3", Peers: []message.NodeID{"b1", "b2", "b4"}},
		{ID: "b4", Peers: []message.NodeID{"b2", "b3"}},
	}
	members, edges := Graph(entries)
	wantMembers := []message.NodeID{"b1", "b2", "b3", "b4"}
	if !reflect.DeepEqual(members, wantMembers) {
		t.Errorf("members = %v, want %v", members, wantMembers)
	}
	wantEdges := [][2]message.NodeID{
		{"b1", "b2"}, {"b1", "b3"}, {"b2", "b3"}, {"b2", "b4"}, {"b3", "b4"},
	}
	if !reflect.DeepEqual(edges, wantEdges) {
		t.Errorf("edges = %v, want %v", edges, wantEdges)
	}
}

func TestOpenURIs(t *testing.T) {
	if _, err := Open("bogus"); err == nil {
		t.Error("schemeless URI accepted")
	}
	if _, err := Open("carrier:pigeon"); err == nil {
		t.Error("unknown scheme accepted")
	}
	r, err := Open("file:" + filepath.Join(t.TempDir(), "peers.json"))
	if err != nil {
		t.Fatalf("file URI: %v", err)
	}
	_ = r.Close()
	if _, ok := r.(*FileRegistry); !ok {
		t.Errorf("file: opened %T", r)
	}
	d, err := Open("dns:_rebeca._tcp.example.com")
	if err != nil {
		t.Fatalf("dns URI: %v", err)
	}
	_ = d.Close()
}

func TestFileRegistryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "peers.json")
	r := NewFileRegistry(path)
	defer func() { _ = r.Close() }()

	// Missing file reads as empty membership.
	es, err := r.Discover()
	if err != nil || len(es) != 0 {
		t.Fatalf("empty discover = %v, %v", es, err)
	}
	if err := r.Register(Entry{ID: "b2", Addr: "127.0.0.1:2"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(Entry{ID: "b1", Addr: "127.0.0.1:1", Peers: []message.NodeID{"b2"}}); err != nil {
		t.Fatal(err)
	}
	es, err = r.Discover()
	if err != nil || len(es) != 2 || es[0].ID != "b1" || es[1].ID != "b2" {
		t.Fatalf("discover = %v, %v", es, err)
	}
	if got := es[0].Peers; len(got) != 1 || got[0] != "b2" {
		t.Errorf("adjacency restriction lost: %v", got)
	}
	// Upsert replaces in place.
	if err := r.Register(Entry{ID: "b1", Addr: "127.0.0.1:9"}); err != nil {
		t.Fatal(err)
	}
	es, _ = r.Discover()
	if len(es) != 2 || es[0].Addr != "127.0.0.1:9" {
		t.Fatalf("upsert: %v", es)
	}
	if err := r.Deregister("b1"); err != nil {
		t.Fatal(err)
	}
	es, _ = r.Discover()
	if len(es) != 1 || es[0].ID != "b2" {
		t.Fatalf("deregister: %v", es)
	}
}

func TestFileRegistryHotReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "peers.json")
	r := NewFileRegistry(path)
	r.SetPollInterval(10 * time.Millisecond)
	defer func() { _ = r.Close() }()

	var mu sync.Mutex
	var last []Entry
	snapshots := 0
	stop := r.Watch(func(es []Entry) {
		mu.Lock()
		last = es
		snapshots++
		mu.Unlock()
	})
	defer stop()
	mu.Lock()
	if snapshots != 1 || len(last) != 0 {
		t.Fatalf("want one immediate empty snapshot, got %d/%v", snapshots, last)
	}
	mu.Unlock()

	// An external edit — another process's Register — is picked up by the
	// poll without any local call.
	if err := os.WriteFile(path, []byte(`[{"id":"b7","addr":"127.0.0.1:7"}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(last) == 1 && last[0].ID == "b7"
	}, "hot reload of an external registry edit")
}

func TestFileRegistryLockContention(t *testing.T) {
	// Many registries (processes) hammering one file must not lose
	// registrations: the sidecar lock serializes read-modify-write.
	path := filepath.Join(t.TempDir(), "peers.json")
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := NewFileRegistry(path)
			defer func() { _ = r.Close() }()
			errs[i] = r.Register(Entry{
				ID:   message.NodeID(fmt.Sprintf("b%d", i)),
				Addr: fmt.Sprintf("127.0.0.1:%d", 9000+i),
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("register %d: %v", i, err)
		}
	}
	es, err := NewFileRegistry(path).Discover()
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != n {
		t.Fatalf("lost registrations under contention: %d of %d survived (%v)", len(es), n, es)
	}
}

func TestFileRegistryStaleLockBroken(t *testing.T) {
	path := filepath.Join(t.TempDir(), "peers.json")
	// A crashed writer left its lock behind, older than the staleness
	// bound; the next writer must break it instead of timing out.
	lockPath := path + ".lock"
	if err := os.WriteFile(lockPath, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * lockStale)
	if err := os.Chtimes(lockPath, old, old); err != nil {
		t.Fatal(err)
	}
	r := NewFileRegistry(path)
	defer func() { _ = r.Close() }()
	if err := r.Register(Entry{ID: "b1", Addr: "x"}); err != nil {
		t.Fatalf("register under stale lock: %v", err)
	}
}

func TestDNSRegistry(t *testing.T) {
	r := NewDNSRegistry("_rebeca._tcp.example.com")
	r.SetPollInterval(10 * time.Millisecond)
	defer func() { _ = r.Close() }()

	var mu sync.Mutex
	records := []*net.SRV{
		{Target: "b1.brokers.example.com.", Port: 7001},
		{Target: "b2.brokers.example.com.", Port: 7002},
	}
	r.SetLookup(func(string) ([]*net.SRV, error) {
		mu.Lock()
		defer mu.Unlock()
		return append([]*net.SRV(nil), records...), nil
	})

	es, err := r.Discover()
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 2 || es[0].ID != "b1" || es[0].Addr != "b1.brokers.example.com:7001" {
		t.Fatalf("discover = %v", es)
	}
	// Registration is out of band for DNS: no-ops, no error.
	if err := r.Register(Entry{ID: "bX"}); err != nil {
		t.Fatal(err)
	}

	var got []Entry
	var gmu sync.Mutex
	stop := r.Watch(func(es []Entry) {
		gmu.Lock()
		got = es
		gmu.Unlock()
	})
	defer stop()
	mu.Lock()
	records = records[:1] // b2's SRV record withdrawn
	mu.Unlock()
	waitFor(t, func() bool {
		gmu.Lock()
		defer gmu.Unlock()
		return len(got) == 1 && got[0].ID == "b1"
	}, "watch to observe the SRV change")
}

func TestGossipConvergenceAndTombstone(t *testing.T) {
	a, err := NewGossipRegistry("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	a.SetInterval(10 * time.Millisecond)
	b, err := NewGossipRegistry("127.0.0.1:0", []string{a.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()
	b.SetInterval(10 * time.Millisecond)

	if err := a.Register(Entry{ID: "a", Addr: "127.0.0.1:1"}); err != nil {
		t.Fatal(err)
	}
	if err := b.Register(Entry{ID: "b", Addr: "127.0.0.1:2"}); err != nil {
		t.Fatal(err)
	}
	both := func(r *GossipRegistry) bool {
		es, err := r.Discover()
		return err == nil && len(es) == 2
	}
	waitFor(t, func() bool { return both(a) && both(b) }, "gossip convergence on both views")

	// Deregistration travels as a tombstone, not by absence.
	if err := b.Deregister("b"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		es, err := a.Discover()
		return err == nil && len(es) == 1 && es[0].ID == "a"
	}, "tombstone to reach the peer")
}

func TestGossipSelfRefutation(t *testing.T) {
	a, err := NewGossipRegistry("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	a.SetInterval(10 * time.Millisecond)
	if err := a.Register(Entry{ID: "a", Addr: "127.0.0.1:1"}); err != nil {
		t.Fatal(err)
	}
	b, err := NewGossipRegistry("127.0.0.1:0", []string{a.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()
	b.SetInterval(10 * time.Millisecond)
	if err := b.Register(Entry{ID: "b", Addr: "127.0.0.1:2"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		es, err := b.Discover()
		return err == nil && len(es) == 2
	}, "initial convergence")
	// b spreads the rumor that a died (a failure detector's verdict, or a
	// stale tombstone from a's previous incarnation). When the tombstone
	// reaches a, the still-alive node must refute it by out-versioning —
	// and the refutation must win back the rumor's source.
	if err := b.Deregister("a"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		es, err := a.Discover()
		if err != nil {
			return false
		}
		for _, e := range es {
			if e.ID == "a" {
				return true
			}
		}
		return false
	}, "the node to refute its own death rumor")
	// The refutation must also win at the rumor's source.
	waitFor(t, func() bool {
		es, err := b.Discover()
		if err != nil {
			return false
		}
		for _, e := range es {
			if e.ID == "a" {
				return true
			}
		}
		return false
	}, "the refutation to propagate back")
}

// scriptedRegistry drives Membership.apply directly: snapshots are pushed
// by the test, Register/Deregister record calls.
type scriptedRegistry struct {
	mu         sync.Mutex
	registered []Entry
	deregs     []message.NodeID
	fn         func([]Entry)
}

func (s *scriptedRegistry) Register(e Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.registered = append(s.registered, e)
	return nil
}
func (s *scriptedRegistry) Deregister(id message.NodeID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.deregs = append(s.deregs, id)
	return nil
}
func (s *scriptedRegistry) Discover() ([]Entry, error) { return nil, nil }
func (s *scriptedRegistry) Watch(fn func([]Entry)) (stop func()) {
	s.mu.Lock()
	s.fn = fn
	s.mu.Unlock()
	return func() {}
}
func (s *scriptedRegistry) Close() error { return nil }

func (s *scriptedRegistry) push(es []Entry) {
	s.mu.Lock()
	fn := s.fn
	s.mu.Unlock()
	if fn != nil {
		fn(es)
	}
}

// recordingHost records link commands and snapshots.
type recordingHost struct {
	mu    sync.Mutex
	log   []string
	snaps int
}

func (h *recordingHost) AddLink(peer message.NodeID, addr string, dial bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.log = append(h.log, fmt.Sprintf("add %s %s dial=%v", peer, addr, dial))
}
func (h *recordingHost) RemoveLink(peer message.NodeID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.log = append(h.log, fmt.Sprintf("rm %s", peer))
}
func (h *recordingHost) MembersChanged([]Entry) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.snaps++
}
func (h *recordingHost) snapshot() ([]string, int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.log...), h.snaps
}

func TestMembershipLifecycle(t *testing.T) {
	reg := &scriptedRegistry{}
	host := &recordingHost{}
	m := NewMembership(MembershipConfig{
		Self:     "b2",
		Addr:     "127.0.0.1:2",
		Registry: reg,
		Host:     host,
	})
	if ok, why := m.Ready(); ok {
		t.Fatalf("ready before any snapshot (%s)", why)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	defer m.Stop(true)
	reg.mu.Lock()
	if len(reg.registered) != 1 || reg.registered[0].ID != "b2" || reg.registered[0].Addr != "127.0.0.1:2" {
		t.Fatalf("registered = %v", reg.registered)
	}
	reg.mu.Unlock()

	// First snapshot: b1 and b3 join. Dial direction is deterministic:
	// b2 dials only the lexicographically larger b3; b1 dials us.
	reg.push([]Entry{
		{ID: "b1", Addr: "127.0.0.1:1"},
		{ID: "b2", Addr: "127.0.0.1:2"},
		{ID: "b3", Addr: "127.0.0.1:3"},
	})
	log, snaps := host.snapshot()
	want := map[string]bool{
		"add b1 127.0.0.1:1 dial=false": false,
		"add b3 127.0.0.1:3 dial=true":  false,
	}
	for _, l := range log {
		if _, ok := want[l]; !ok {
			t.Errorf("unexpected host command %q", l)
		} else {
			want[l] = true
		}
	}
	for l, seen := range want {
		if !seen {
			t.Errorf("missing host command %q", l)
		}
	}
	if snaps != 1 {
		t.Errorf("MembersChanged calls = %d, want 1", snaps)
	}
	if m.Peers() != 2 {
		t.Errorf("Peers = %d, want 2", m.Peers())
	}
	if ok, why := m.Ready(); !ok {
		t.Errorf("not ready after self-including snapshot: %s", why)
	}

	// b3 departs; b1 moves. The changed address re-dials (rm then add).
	reg.push([]Entry{
		{ID: "b1", Addr: "127.0.0.1:99"},
		{ID: "b2", Addr: "127.0.0.1:2"},
	})
	log, snaps = host.snapshot()
	rest := log[2:]
	hasRm3, hasRm1, hasAdd1 := false, false, false
	for _, l := range rest {
		switch l {
		case "rm b3":
			hasRm3 = true
		case "rm b1":
			hasRm1 = true
		case "add b1 127.0.0.1:99 dial=false":
			hasAdd1 = true
		}
	}
	if !hasRm3 || !hasRm1 || !hasAdd1 {
		t.Errorf("departure/update commands missing: %v", rest)
	}
	if snaps != 2 {
		t.Errorf("MembersChanged calls = %d, want 2", snaps)
	}
	ev := m.Events()
	if ev["join"] != 2 || ev["leave"] != 1 || ev["update"] != 1 {
		t.Errorf("events = %v", ev)
	}

	// A snapshot that drops us flips readiness without dropping links.
	reg.push([]Entry{{ID: "b1", Addr: "127.0.0.1:99"}})
	if ok, why := m.Ready(); ok {
		t.Errorf("ready while absent from the registry (%s)", why)
	}

	m.Stop(true)
	reg.mu.Lock()
	if len(reg.deregs) != 1 || reg.deregs[0] != "b2" {
		t.Errorf("deregs = %v", reg.deregs)
	}
	reg.mu.Unlock()
}

func TestMembershipAdjacencyRestriction(t *testing.T) {
	reg := &scriptedRegistry{}
	host := &recordingHost{}
	m := NewMembership(MembershipConfig{
		Self:     "b1",
		Addr:     "127.0.0.1:1",
		Peers:    []message.NodeID{"b2"}, // link only to b2
		Registry: reg,
		Host:     host,
	})
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	defer m.Stop(false)
	reg.push([]Entry{
		{ID: "b1", Addr: "127.0.0.1:1", Peers: []message.NodeID{"b2"}},
		{ID: "b2", Addr: "127.0.0.1:2"},
		{ID: "b3", Addr: "127.0.0.1:3"},
	})
	log, _ := host.snapshot()
	if len(log) != 1 || log[0] != "add b2 127.0.0.1:2 dial=true" {
		t.Errorf("adjacency restriction not honored: %v", log)
	}
	if m.Peers() != 1 {
		t.Errorf("Peers = %d, want 1", m.Peers())
	}
}
