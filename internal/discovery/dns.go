package discovery

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"rebeca/internal/message"
)

// SRVLookup resolves a DNS SRV name to its records. Injectable so tests
// run without a resolver.
type SRVLookup func(name string) ([]*net.SRV, error)

// DNSRegistry is the read-only DNS SRV backend: membership is whatever
// the SRV name resolves to, each record one broker. The broker ID is the
// target host's first DNS label (b2.brokers.example.com → "b2"), the
// overlay address its target:port. Register and Deregister are no-ops —
// DNS is authoritative elsewhere (an operator, an orchestrator's headless
// service) — and Watch polls the name.
type DNSRegistry struct {
	name   string
	lookup SRVLookup

	mu       sync.Mutex
	interval time.Duration
	watchers map[int]func([]Entry)
	nextID   int
	last     string
	stopPoll chan struct{}
	done     chan struct{}
	closed   bool
}

// dnsPollInterval is the default SRV re-resolution cadence; DNS caches
// make faster polling pointless.
const dnsPollInterval = 2 * time.Second

// NewDNSRegistry returns a registry resolving the given SRV name with the
// system resolver.
func NewDNSRegistry(name string) *DNSRegistry {
	return &DNSRegistry{
		name: name,
		lookup: func(name string) ([]*net.SRV, error) {
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			_, srvs, err := net.DefaultResolver.LookupSRV(ctx, "", "", name)
			return srvs, err
		},
		interval: dnsPollInterval,
		watchers: make(map[int]func([]Entry)),
	}
}

// SetLookup replaces the resolver (tests).
func (r *DNSRegistry) SetLookup(fn SRVLookup) { r.lookup = fn }

// SetPollInterval overrides the re-resolution cadence. Call before the
// first Watch.
func (r *DNSRegistry) SetPollInterval(d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if d > 0 {
		r.interval = d
	}
}

// Register is a no-op: DNS membership is managed out of band.
func (r *DNSRegistry) Register(Entry) error { return nil }

// Deregister is a no-op: DNS membership is managed out of band.
func (r *DNSRegistry) Deregister(message.NodeID) error { return nil }

// Discover resolves the SRV name into entries.
func (r *DNSRegistry) Discover() ([]Entry, error) {
	srvs, err := r.lookup(r.name)
	if err != nil {
		return nil, fmt.Errorf("discovery: resolve %s: %w", r.name, err)
	}
	es := make([]Entry, 0, len(srvs))
	for _, srv := range srvs {
		host := strings.TrimSuffix(srv.Target, ".")
		id, _, _ := strings.Cut(host, ".")
		if id == "" {
			continue
		}
		es = append(es, Entry{
			ID:   message.NodeID(id),
			Addr: net.JoinHostPort(host, fmt.Sprint(srv.Port)),
		})
	}
	sortEntries(es)
	return es, nil
}

// Watch polls the SRV name and broadcasts snapshots on change.
func (r *DNSRegistry) Watch(fn func([]Entry)) (stop func()) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return func() {}
	}
	id := r.nextID
	r.nextID++
	r.watchers[id] = fn
	if r.stopPoll == nil {
		r.stopPoll = make(chan struct{})
		r.done = make(chan struct{})
		go r.poll(r.stopPoll, r.done)
	}
	r.mu.Unlock()
	if es, err := r.Discover(); err == nil {
		fn(es)
		r.mu.Lock()
		r.last = fingerprint(es)
		r.mu.Unlock()
	}
	return func() {
		r.mu.Lock()
		delete(r.watchers, id)
		r.mu.Unlock()
	}
}

func (r *DNSRegistry) poll(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	r.mu.Lock()
	interval := r.interval
	r.mu.Unlock()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		es, err := r.Discover()
		if err != nil {
			continue // transient resolver failure; keep the last view
		}
		fp := fingerprint(es)
		r.mu.Lock()
		if fp == r.last {
			r.mu.Unlock()
			continue
		}
		r.last = fp
		fns := make([]func([]Entry), 0, len(r.watchers))
		for _, fn := range r.watchers {
			fns = append(fns, fn)
		}
		r.mu.Unlock()
		for _, fn := range fns {
			fn(es)
		}
	}
}

// Close stops the watch goroutine.
func (r *DNSRegistry) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	stop, done := r.stopPoll, r.done
	r.watchers = make(map[int]func([]Entry))
	r.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	return nil
}
