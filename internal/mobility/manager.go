// Package mobility implements physical mobility (§1, [8]): transparent
// relocation of roaming clients between border brokers so that "a relocated
// client receives a transparent, uninterrupted flow of notifications
// matching his subscriptions".
//
// The Manager is a border-broker plugin owning client sessions. The
// transparent protocol relocates a client c from old border b1 to new
// border b2 in these steps:
//
//  1. c connects at b2 (KConnect names b1). b2 opens a relocating-in
//     session that buffers every delivery, and unicasts KRelocReq to b1.
//  2. b1 — which has been buffering for the disconnected ghost — replies
//     KRelocProfile with c's subscription profile and buffer, and from now
//     on tap-forwards new matches to b2 (KDeliver unicast) instead of
//     buffering.
//  3. b2 installs the profile's subscriptions and starts flush wave F1.
//     When F1 completes, every broker processed b2's subscriptions (FIFO
//     links), so unsubscribing b1 can no longer lose traffic; b2 sends
//     KRelocActivate.
//  4. b1 unsubscribes c's filters, starts flush wave F2 and keeps the tap
//     open: any straggler routed by a stale entry arrives at b1 before F2
//     completes (convergecast acks chase the stragglers on FIFO links) and
//     is tap-forwarded.
//  5. F2 completes; b1 sends KRelocTail and forgets c. b2 merges profile
//     buffer, tap copies and its own direct deliveries — deduplicated by
//     notification ID, ordered by (publisher, seq) — replays them to c and
//     goes live.
//
// The result is no loss, no duplicates and per-publisher FIFO across the
// handover. ModeJEDI (explicit moveOut/moveIn without barriers or tap,
// related work [2]) and ModeNaive (reconnect-and-resubscribe) are the
// baselines experiment E1 compares against.
//
// # Staleness layer
//
// Chaotic movement (instant reconnects, ping-pong and chained moves, moves
// colliding with in-flight relocations) creates races the basic protocol
// cannot order. A monotonic connect epoch, stamped by the client library on
// every KConnect and echoed on every relocation message, resolves them:
//
//   - a KRelocReq older than the latest connect seen locally is declined
//     (Stale reply); the requester restarts against the decliner if its
//     client has since reconnected, or tears down and forwards its buffer
//     to the client's current border otherwise;
//   - at most one relocation request queues behind a busy session; a
//     superseded request is declined, never silently dropped;
//   - requests reaching a relocating-out session are redirected along the
//     shipment chain to whatever session ends up holding the state;
//   - a border with no session replies Fresh, letting the requester go
//     live from the client's announced profile without a handover barrier;
//   - unsubscription waves only remove routing entries still pointing at
//     the unsubscriber (relocation flips make them stale otherwise).
//
// A state shipment arriving at a session that no longer expects it (the
// run was superseded) is absorbed — subscriptions merged, buffer delivered
// or re-buffered — and the sender acknowledged, so no fragment is lost and
// no sender strands in relocating-out.
//
// internal/sim's stress suite drives hundreds of seeded chaos schedules
// through these paths and asserts the no-loss/no-dup/FIFO invariant plus
// session-leak freedom at quiescence, with and without link-latency
// jitter. Guarantee boundary: the lossless invariant assumes dwell times
// at least on the order of the relocation round trip. Clients that outrun
// the protocol for sustained periods (sub-RTT bouncing) can orphan
// buffered fragments and reorder replays — "degraded service", as the
// paper predicts; real deployments additionally bound relocation runs with
// wall-clock timeouts, which the virtual-time core deliberately omits. The
// pathological regime's surviving guarantees (quiescence, no duplicate
// deliveries, fresh registrations get full service) are exercised by
// TestStressPathologicalLiveness.
package mobility

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"rebeca/internal/broker"
	"rebeca/internal/buffer"
	"rebeca/internal/message"
	"rebeca/internal/proto"
	"rebeca/internal/store"
)

// Mode selects the handover protocol. Enums start at one.
type Mode int

// Supported modes.
const (
	ModeInvalid Mode = iota
	// ModeTransparent runs the full relocation protocol described above.
	ModeTransparent
	// ModeJEDI ships profile and buffer once, without flush barriers or a
	// tap: in-flight traffic can be lost during routing reconfiguration.
	ModeJEDI
	// ModeNaive drops all state on disconnect; the client re-subscribes
	// from scratch on reconnect and misses everything in between.
	ModeNaive
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeTransparent:
		return "transparent"
	case ModeJEDI:
		return "jedi"
	case ModeNaive:
		return "naive"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

type sessionState int

const (
	stateConnected sessionState = iota + 1
	// stateGhost: client disconnected; deliveries are buffered here.
	stateGhost
	// stateRelocatingIn: this broker is the new border; deliveries are
	// buffered until the tail arrives.
	stateRelocatingIn
	// stateRelocatingOut: this broker is the old border; deliveries are
	// tap-forwarded to the new border.
	stateRelocatingOut
)

func (s sessionState) String() string {
	switch s {
	case stateConnected:
		return "connected"
	case stateGhost:
		return "ghost"
	case stateRelocatingIn:
		return "relocating-in"
	case stateRelocatingOut:
		return "relocating-out"
	default:
		return "invalid"
	}
}

type session struct {
	client message.NodeID
	state  sessionState
	// subs is the client's static subscription profile (location-dependent
	// subscriptions belong to the replicator layer, not here).
	subs map[message.SubID]proto.Subscription
	// subOrder preserves issue order for deterministic re-installation.
	subOrder []message.SubID
	// buf holds undelivered notifications (ghost and relocating-in).
	buf buffer.Policy
	// seen dedups the relocation merge by notification ID.
	seen map[message.NotificationID]bool
	// tapTo is the new border while relocating out.
	tapTo message.NodeID
	// pendingReloc queues a KRelocReq that arrived mid-relocation.
	pendingReloc message.NodeID
	// ghostOnComplete marks that the client disconnected while relocating
	// in; the session becomes a ghost once the relocation completes.
	ghostOnComplete bool
	// reconnectPending marks that the client reconnected here while the
	// outbound relocation was still running (ping-pong move). Once the
	// outbound protocol completes, this border starts a fresh inbound
	// relocation to pull the state back.
	reconnectPending bool
	// epoch is the client's connect epoch of its latest KConnect at THIS
	// border. Relocation messages echo epochs so stale protocol runs
	// (superseded by a newer move) are detected.
	epoch uint64
	// outEpoch is the epoch the current outbound relocation serves.
	outEpoch uint64
	// pendingEpoch is the epoch of the queued pendingReloc request.
	pendingEpoch uint64
	// reqEpoch identifies the inbound relocation run this session is
	// waiting on (the epoch sent in our KRelocReq). It stays fixed even if
	// the client reconnects here while the relocation is still in flight.
	reqEpoch uint64
	// announced is the subscription profile the client declared in its
	// KConnect; used to heal sessions when the previous border had no
	// state to ship (e.g. after a stale-session teardown).
	announced []proto.Subscription
	// pullTarget is the border the current relocating-in run requests
	// from (diagnostics).
	pullTarget message.NodeID
}

func (s *session) profile() []proto.Subscription {
	out := make([]proto.Subscription, 0, len(s.subOrder))
	for _, id := range s.subOrder {
		if sub, ok := s.subs[id]; ok {
			out = append(out, sub)
		}
	}
	return out
}

func (s *session) addSub(sub proto.Subscription) {
	if _, ok := s.subs[sub.ID]; !ok {
		s.subOrder = append(s.subOrder, sub.ID)
	}
	s.subs[sub.ID] = sub
}

func (s *session) removeSub(id message.SubID) {
	if _, ok := s.subs[id]; !ok {
		return
	}
	delete(s.subs, id)
	for i, o := range s.subOrder {
		if o == id {
			s.subOrder = append(s.subOrder[:i], s.subOrder[i+1:]...)
			break
		}
	}
}

// Stats counts manager activity for experiments.
type Stats struct {
	// Relocations counts completed inbound relocations.
	Relocations int
	// Buffered counts notifications buffered for ghosts or relocations.
	Buffered int
	// Replayed counts notifications replayed to clients after handover.
	Replayed int
	// TapForwarded counts straggler notifications forwarded to the new
	// border during relocating-out.
	TapForwarded int
	// DroppedDuplicates counts merge-time duplicate suppressions.
	DroppedDuplicates int
	// RecoveredSessions counts ghost sessions rebuilt by Recover.
	RecoveredSessions int
	// RecoveryErrors counts persisted sessions Recover could not decode —
	// their queues stay pending in the store but no subscriptions were
	// re-installed; nonzero values deserve operator attention.
	RecoveryErrors int
}

// Manager is the physical-mobility plugin of one border broker.
type Manager struct {
	b        *broker.Broker
	mode     Mode
	factory  buffer.Factory
	store    store.Store
	sessions map[message.NodeID]*session
	// flushCont maps a flush wave ID to its continuation.
	flushCont map[uint64]func()
	stats     Stats
}

// Option configures a Manager.
type Option func(*Manager)

// WithBufferFactory sets the ghost/relocation buffer policy (default
// unbounded).
func WithBufferFactory(f buffer.Factory) Option {
	return func(m *Manager) { m.factory = f }
}

// WithStore backs every session buffer with a persistence queue and every
// session profile with a store snapshot: notifications are appended before
// a ghost buffers them and acked only when their delivery (replay to the
// reconnected client) or handover (KRelocActivate from the new border) is
// confirmed, and a restarted broker rebuilds its disconnected-client
// sessions with Recover.
func WithStore(s store.Store) Option {
	return func(m *Manager) { m.store = s }
}

// New attaches a mobility manager to a border broker and returns it.
func New(b *broker.Broker, mode Mode, opts ...Option) *Manager {
	m := &Manager{
		b:         b,
		mode:      mode,
		factory:   func() buffer.Policy { return buffer.NewUnbounded() },
		sessions:  make(map[message.NodeID]*session),
		flushCont: make(map[uint64]func()),
	}
	for _, o := range opts {
		o(m)
	}
	b.Use(m)
	return m
}

// Stats returns a copy of the manager's counters.
func (m *Manager) Stats() Stats { return m.stats }

// --- persistence -------------------------------------------------------

// sessionSnap is the durable image of one session: its subscription
// profile in issue order. Everything else (state, taps, epochs) is
// protocol-transient — after a crash every client is disconnected, so
// recovered sessions restart as ghosts.
type sessionSnap struct {
	Subs []proto.Subscription
}

// sessionKey names a session's snapshot and buffer queue in the store.
// The broker ID is part of the key: in-process deployments share one
// store across all brokers.
func (m *Manager) sessionKey(c message.NodeID) string {
	return "mob/" + string(m.b.ID()) + "/" + string(c)
}

// newBuffer builds a session buffer, store-backed when durability is on.
// Building on a non-empty queue recovers its pending notifications.
func (m *Manager) newBuffer(c message.NodeID) buffer.Policy {
	if m.store == nil {
		return m.factory()
	}
	return buffer.NewDurable(m.store, m.sessionKey(c), m.factory())
}

// persist snapshots a session's profile (no-op without a store).
func (m *Manager) persist(s *session) {
	if m.store == nil {
		return
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(sessionSnap{Subs: s.profile()}); err != nil {
		return
	}
	_ = m.store.Snapshot(m.sessionKey(s.client), buf.Bytes())
}

// forget deletes a session's snapshot (no-op without a store). The
// buffer queue is acked separately by the delivery/handover paths.
func (m *Manager) forget(c message.NodeID) {
	if m.store == nil {
		return
	}
	_ = m.store.Snapshot(m.sessionKey(c), nil)
}

// release acks and compacts a session's durable queue — the path behind
// Subscription.Cancel on a durable subscription, so cancelled queues stop
// pinning WAL segments. Compact rewrites the store's live state, which is
// acceptable on the event loop because the rewrite is bounded by what is
// still pending (acked records are skipped) and last-subscription
// cancellations are rare control-plane events; deployments where that
// ever measures should amortize on a garbage-ratio threshold instead.
func (m *Manager) release(s *session) {
	if d, ok := s.buf.(*buffer.Durable); ok {
		d.Release()
	} else {
		s.buf.Clear()
	}
}

// Recover rebuilds the sessions persisted by a previous process on the
// same store: each snapshot becomes a ghost session whose subscriptions
// are re-installed into the routing table (and propagated to peers) and
// whose buffer reloads the queue's pending notifications. Call it once,
// after the broker is wired into its overlay and before client traffic.
// Returns the number of sessions recovered.
func (m *Manager) Recover() int {
	if m.store == nil {
		return 0
	}
	prefix := "mob/" + string(m.b.ID()) + "/"
	recovered := 0
	for key, blob := range m.store.Snapshots(prefix) {
		c := message.NodeID(key[len(prefix):])
		if _, ok := m.sessions[c]; ok || c == "" {
			continue
		}
		var snap sessionSnap
		if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&snap); err != nil {
			m.stats.RecoveryErrors++
			continue
		}
		s := m.newSession(c, stateGhost)
		m.sessions[c] = s
		m.b.AttachPort(c)
		for _, sub := range snap.Subs {
			s.addSub(sub)
			m.b.InstallSub(sub, c)
		}
		recovered++
	}
	m.stats.RecoveredSessions += recovered
	return recovered
}

// SessionState reports a session's state name for tests ("" if absent).
func (m *Manager) SessionState(c message.NodeID) string {
	s, ok := m.sessions[c]
	if !ok {
		return ""
	}
	return s.state.String()
}

// Handle implements broker.Plugin.
func (m *Manager) Handle(from message.NodeID, msg proto.Message) bool {
	switch msg.Kind {
	case proto.KConnect:
		return m.onConnect(msg)
	case proto.KDisconnect:
		return m.onDisconnect(msg)
	case proto.KSubscribe:
		return m.onSubscribe(from, msg)
	case proto.KUnsubscribe:
		return m.onUnsubscribe(from, msg)
	case proto.KRelocReq:
		return m.onRelocReq(msg)
	case proto.KRelocProfile:
		return m.onRelocProfile(msg)
	case proto.KRelocActivate:
		return m.onRelocActivate(msg)
	case proto.KRelocTail:
		return m.onRelocTail(msg)
	case proto.KDeliver:
		return m.onTapDeliver(msg)
	default:
		return false
	}
}

// OnDeliver implements broker.Plugin: buffering and tap interception.
func (m *Manager) OnDeliver(port message.NodeID, n message.Notification) bool {
	s, ok := m.sessions[port]
	if !ok {
		return false
	}
	switch s.state {
	case stateGhost:
		s.buf.Add(n, m.b.Now())
		m.stats.Buffered++
		return true
	case stateRelocatingIn:
		m.bufferDedup(s, n)
		return true
	case stateRelocatingOut:
		m.stats.TapForwarded++
		m.b.Unicast(s.tapTo, proto.Message{
			Kind:   proto.KDeliver,
			Client: port,
			Origin: m.b.ID(),
			Note:   &n,
		})
		return true
	default:
		return false
	}
}

// OnFlushDone implements broker.Plugin.
func (m *Manager) OnFlushDone(id uint64) {
	if cont, ok := m.flushCont[id]; ok {
		delete(m.flushCont, id)
		cont()
	}
}

func (m *Manager) bufferDedup(s *session, n message.Notification) {
	if !n.ID.IsZero() && s.seen[n.ID] {
		m.stats.DroppedDuplicates++
		return
	}
	if !n.ID.IsZero() {
		s.seen[n.ID] = true
	}
	s.buf.Add(n, m.b.Now())
	m.stats.Buffered++
}

// --- session events ----------------------------------------------------

func (m *Manager) onConnect(msg proto.Message) bool {
	c := msg.Client
	prev := msg.Origin
	if s, ok := m.sessions[c]; ok {
		s.epoch = msg.Epoch
		s.announced = staticSubs(msg.Subs)
		switch s.state {
		case stateGhost:
			// Reconnect at the same border: heal any subscriptions the
			// client gained elsewhere, then replay the ghost buffer.
			m.b.AttachPort(c)
			s.state = stateConnected
			m.reconcile(s)
			m.replay(s)
			return true
		case stateRelocatingOut:
			// Ping-pong: the client came back before the outbound
			// relocation finished. Let the outbound protocol run to
			// completion, then pull the state back with a fresh inbound
			// relocation (see onRelocActivate's continuation) — from the
			// border the client actually arrived from, which holds (or is
			// receiving) the newest state.
			s.reconnectPending = true
			s.ghostOnComplete = false
			m.b.AttachPort(c)
			return true
		case stateRelocatingIn:
			// Reconnect at the same border mid-relocation: cancel a
			// pending ghost transition and carry on. The in-flight run
			// still collects the freshest reachable state; anything the
			// client picked up on a brief detour reaches it through the
			// announced-profile reconciliation and stale-run restarts.
			s.ghostOnComplete = false
			m.b.AttachPort(c)
			return true
		default:
			// Duplicate connect: ignore.
			return true
		}
	}
	switch {
	case m.mode == ModeNaive, prev == "", prev == m.b.ID():
		// Fresh session: install the client's own profile.
		s := m.newSession(c, stateConnected)
		s.epoch = msg.Epoch
		m.sessions[c] = s
		m.b.AttachPort(c)
		for _, sub := range staticSubs(msg.Subs) {
			s.addSub(sub)
			m.b.InstallSub(sub, c)
		}
		m.persist(s)
		return true
	default:
		// Relocation from prev.
		s := m.newSession(c, stateRelocatingIn)
		s.epoch = msg.Epoch
		s.reqEpoch = msg.Epoch
		s.announced = staticSubs(msg.Subs)
		s.pullTarget = prev
		m.sessions[c] = s
		m.b.AttachPort(c)
		m.b.Unicast(prev, proto.Message{
			Kind: proto.KRelocReq, Client: c, Origin: m.b.ID(), Epoch: msg.Epoch,
		})
		return true
	}
}

// staticSubs filters out location- and context-dependent subscriptions:
// those belong to the replicator layer, not the session profile (§3.1's
// separation of concerns).
func staticSubs(subs []proto.Subscription) []proto.Subscription {
	var out []proto.Subscription
	for _, s := range subs {
		if !s.Filter.Dynamic() {
			out = append(out, s)
		}
	}
	return out
}

// reconcile installs announced-profile subscriptions the session does not
// know about — subscriptions the client issued at borders whose state never
// made it back here.
func (m *Manager) reconcile(s *session) {
	changed := false
	for _, sub := range s.announced {
		if _, ok := s.subs[sub.ID]; ok {
			continue
		}
		s.addSub(sub)
		m.b.InstallSub(sub, s.client)
		changed = true
	}
	if changed {
		m.persist(s)
	}
}

func (m *Manager) newSession(c message.NodeID, st sessionState) *session {
	return &session{
		client: c,
		state:  st,
		subs:   make(map[message.SubID]proto.Subscription),
		buf:    m.newBuffer(c),
		seen:   make(map[message.NotificationID]bool),
	}
}

func (m *Manager) onDisconnect(msg proto.Message) bool {
	s, ok := m.sessions[msg.Client]
	if !ok {
		return false
	}
	switch s.state {
	case stateConnected:
		if m.mode == ModeNaive {
			for _, id := range append([]message.SubID(nil), s.subOrder...) {
				m.b.RemoveSub(id)
			}
			m.forget(msg.Client)
			delete(m.sessions, msg.Client)
			return false // default detaches the port
		}
		s.state = stateGhost
		return true // keep the port attached; we intercept deliveries
	case stateRelocatingIn:
		s.ghostOnComplete = true
		return true
	case stateRelocatingOut:
		if s.reconnectPending {
			// The client reconnected here mid-relocation and left again:
			// the pulled-back session must start as a ghost.
			s.ghostOnComplete = true
		}
		return true
	default:
		return true
	}
}

func (m *Manager) onSubscribe(from message.NodeID, msg proto.Message) bool {
	s, ok := m.sessions[from]
	if !ok || msg.Sub == nil {
		return false
	}
	s.addSub(*msg.Sub)
	m.persist(s)
	return false // default handling installs and forwards
}

func (m *Manager) onUnsubscribe(from message.NodeID, msg proto.Message) bool {
	s, ok := m.sessions[from]
	if !ok || msg.Sub == nil {
		return false
	}
	s.removeSub(msg.Sub.ID)
	m.persist(s)
	if len(s.subs) == 0 && m.store != nil {
		// The last (durable) subscription was cancelled: nothing can ever
		// be delivered from this queue again. Ack everything and compact
		// so the cancelled queue stops pinning WAL segments.
		m.release(s)
	}
	return false
}

// --- relocation protocol -------------------------------------------------

func (m *Manager) onRelocReq(msg proto.Message) bool {
	c, newBorder := msg.Client, msg.Origin
	s, ok := m.sessions[c]
	if !ok {
		// Nothing known about the client (fresh start after teardown, or
		// naive mode): tell the new border to proceed from the client's
		// announced profile, with no handover to wait for.
		m.b.Unicast(newBorder, proto.Message{
			Kind: proto.KRelocProfile, Client: c, Origin: m.b.ID(),
			Epoch: msg.Epoch, Fresh: true,
		})
		return true
	}
	if msg.Epoch < s.epoch {
		// Stale request: the client has reconnected here (or a newer
		// relocation superseded this one). Decline; the requester tears
		// its outdated session down.
		m.b.Unicast(newBorder, proto.Message{
			Kind: proto.KRelocProfile, Client: c, Origin: m.b.ID(),
			Epoch: msg.Epoch, Stale: true,
		})
		return true
	}
	switch s.state {
	case stateRelocatingIn:
		// Mid-relocation request: queue it; the chain serves it once the
		// state settles here. Only one slot exists — the loser of an
		// overwrite is declined so it can restart or tear down instead of
		// waiting forever. (A mutual-pull cycle — both borders awaiting
		// each other — can in principle wedge here; it requires the
		// client to outrun the relocation round trip, a regime real
		// deployments bound with wall-clock run timeouts.)
		m.queuePending(s, newBorder, msg.Epoch)
		return true
	case stateRelocatingOut:
		if s.tapTo == newBorder {
			// The requester is the very border this state is being
			// shipped to: the in-flight profile will reach it and be
			// absorbed. Tell it to go live from its announced profile.
			m.b.Unicast(newBorder, proto.Message{
				Kind: proto.KRelocProfile, Client: c, Origin: m.b.ID(),
				Epoch: msg.Epoch, Fresh: true,
			})
			return true
		}
		// The state is mid-shipment: redirect the request to the border
		// it is being shipped to. The redirect chases the shipment chain
		// and terminates at whatever session ends up holding the state.
		fw := msg
		m.b.Unicast(s.tapTo, fw)
		return true
	default:
		m.beginRelocOut(s, newBorder, msg.Epoch)
		return true
	}
}

// queuePending stores the newest relocation request on a busy session and
// declines whichever request loses the slot.
func (m *Manager) queuePending(s *session, newBorder message.NodeID, epoch uint64) {
	if epoch <= s.pendingEpoch {
		if epoch != s.pendingEpoch || newBorder != s.pendingReloc {
			m.decline(s.client, newBorder, epoch)
		}
		return
	}
	prevBorder, prevEpoch := s.pendingReloc, s.pendingEpoch
	s.pendingReloc = newBorder
	s.pendingEpoch = epoch
	if prevBorder != "" {
		m.decline(s.client, prevBorder, prevEpoch)
	}
}

// decline tells a requester its relocation run is superseded.
func (m *Manager) decline(c, border message.NodeID, epoch uint64) {
	m.b.Unicast(border, proto.Message{
		Kind: proto.KRelocProfile, Client: c, Origin: m.b.ID(),
		Epoch: epoch, Stale: true,
	})
}

func (m *Manager) beginRelocOut(s *session, newBorder message.NodeID, epoch uint64) {
	notes := s.buf.Snapshot(m.b.Now())
	if m.store == nil || m.mode == ModeJEDI {
		s.buf.Clear()
	}
	// With a store, the transparent protocol keeps the shipped buffer
	// pending until KRelocActivate confirms the new border holds it: a
	// crash mid-handover redelivers from the queue instead of losing the
	// shipment (the client's dedup set absorbs the overlap).
	profile := s.profile()
	if m.mode == ModeJEDI {
		// Ship everything at once, unsubscribe immediately, forget. No
		// barrier, no tap: in-flight traffic may be lost.
		for _, id := range append([]message.SubID(nil), s.subOrder...) {
			m.b.RemoveSub(id)
		}
		m.forget(s.client)
		m.b.DetachPort(s.client)
		delete(m.sessions, s.client)
		m.b.Unicast(newBorder, proto.Message{
			Kind: proto.KRelocProfile, Client: s.client, Origin: m.b.ID(),
			Subs: profile, Notes: notes, Epoch: epoch,
		})
		return
	}
	s.state = stateRelocatingOut
	s.tapTo = newBorder
	s.outEpoch = epoch
	m.b.Unicast(newBorder, proto.Message{
		Kind: proto.KRelocProfile, Client: s.client, Origin: m.b.ID(),
		Subs: profile, Notes: notes, Epoch: epoch,
	})
}

func (m *Manager) onRelocProfile(msg proto.Message) bool {
	c, oldBorder := msg.Client, msg.Origin
	s, ok := m.sessions[c]
	if !ok || s.state != stateRelocatingIn || msg.Epoch != s.reqEpoch {
		// A profile this session did not ask for (or asked for under a
		// different epoch). When a superseded run's holder ships its
		// state here, losing it would lose its buffer and strand the
		// sender in relocating-out: absorb it and acknowledge.
		if ok && !msg.Stale && !msg.Fresh {
			switch s.state {
			case stateConnected, stateGhost:
				m.absorb(s, msg)
			}
		}
		return true
	}
	if msg.Stale {
		if s.epoch > msg.Epoch {
			// The client reconnected HERE after the declined request: the
			// session is live, only the relocation run is outdated. The
			// decliner has seen the newer epoch — restart the pull
			// against it with our current epoch.
			s.reqEpoch = s.epoch
			s.pullTarget = msg.Origin
			m.b.Unicast(msg.Origin, proto.Message{
				Kind: proto.KRelocReq, Client: c, Origin: m.b.ID(), Epoch: s.reqEpoch,
			})
			return true
		}
		// The client moved on: ship anything we intercepted to wherever
		// it now is, tear down, and forget.
		m.teardown(s, msg.Origin)
		return true
	}
	if msg.Fresh {
		// No old state exists: go live from the announced profile.
		m.reconcile(s)
		s.state = stateConnected
		m.finishRelocation(s)
		return true
	}
	for _, sub := range msg.Subs {
		s.addSub(sub)
		m.b.InstallSub(sub, c)
	}
	if len(msg.Subs) > 0 {
		m.persist(s)
	}
	// Heal subscriptions the shipped profile does not cover (the client
	// may have started from an empty previous border after a teardown).
	m.reconcile(s)
	for _, n := range msg.Notes {
		m.bufferDedup(s, n)
	}
	if m.mode == ModeJEDI {
		s.state = stateConnected
		m.finishRelocation(s)
		return true
	}
	// Barrier F1: ensure our subscriptions have propagated everywhere
	// before the old border tears its entries down.
	// The activate echoes the relocation-run epoch, not the (possibly
	// newer) connect epoch from a same-border reconnect.
	id := m.b.StartFlush()
	epoch := s.reqEpoch
	m.flushCont[id] = func() {
		m.b.Unicast(oldBorder, proto.Message{
			Kind: proto.KRelocActivate, Client: c, Origin: m.b.ID(), Epoch: epoch,
		})
	}
	return true
}

// absorb merges an unexpected (forked) state shipment into a settled
// session: subscriptions are (re)installed — flipping routing entries
// toward this border, which hosts the client's newest connect — buffered
// notifications are delivered or buffered, and the sender is activated so
// its outbound run completes and cleans up.
func (m *Manager) absorb(s *session, msg proto.Message) {
	for _, sub := range msg.Subs {
		s.addSub(sub)
		m.b.InstallSub(sub, s.client)
	}
	if len(msg.Subs) > 0 {
		m.persist(s)
	}
	message.ByID(msg.Notes)
	for _, n := range msg.Notes {
		note := n
		switch s.state {
		case stateConnected:
			m.b.Send(s.client, proto.Message{Kind: proto.KDeliver, Client: s.client, Note: &note})
		case stateRelocatingIn:
			m.bufferDedup(s, note)
		default:
			s.buf.Add(note, m.b.Now())
			m.stats.Buffered++
		}
	}
	m.b.Unicast(msg.Origin, proto.Message{
		Kind: proto.KRelocActivate, Client: s.client, Origin: m.b.ID(), Epoch: msg.Epoch,
	})
}

// teardown dismantles a superseded session: intercepted notifications are
// forwarded to the client's current border, locally owned routing entries
// are withdrawn (entries already flipped away are left alone — they belong
// to the new border now), and the session is forgotten.
func (m *Manager) teardown(s *session, currentBorder message.NodeID) {
	if s.pendingReloc != "" {
		// A requester queued behind this dying session must not wait
		// forever. Clear before declining: a (self-addressed) decline
		// dispatches synchronously and must not re-enter this branch.
		target, epoch := s.pendingReloc, s.pendingEpoch
		s.pendingReloc = ""
		s.pendingEpoch = 0
		m.decline(s.client, target, epoch)
	}
	notes := s.buf.Snapshot(m.b.Now())
	message.ByID(notes)
	for _, n := range notes {
		note := n
		m.b.Unicast(currentBorder, proto.Message{
			Kind: proto.KDeliver, Client: s.client, Origin: m.b.ID(), Note: &note,
		})
	}
	// Ack (durable Clear) only after the forwards are handed to the
	// transport — same append-before-deliver/ack-after contract as replay.
	s.buf.Clear()
	for _, id := range append([]message.SubID(nil), s.subOrder...) {
		m.b.RemoveSub(id)
	}
	m.forget(s.client)
	m.b.DetachPort(s.client)
	delete(m.sessions, s.client)
}

func (m *Manager) onRelocActivate(msg proto.Message) bool {
	c, newBorder := msg.Client, msg.Origin
	s, ok := m.sessions[c]
	if !ok || s.state != stateRelocatingOut || s.tapTo != newBorder ||
		msg.Epoch != s.outEpoch {
		return true
	}
	// Handover confirmed: the new border holds the shipped buffer, so the
	// durable queue behind it can be acked (no-op without a store — the
	// buffer was already cleared at ship time).
	s.buf.Clear()
	// No unsubscription here: the new border's re-subscription has already
	// flipped every table entry toward itself (F1 barriered that wave).
	// Barrier F2: stragglers routed by pre-flip entries arrive before the
	// convergecast completes; the tap forwards each of them.
	fid := m.b.StartFlush()
	m.flushCont[fid] = func() {
		m.b.Unicast(newBorder, proto.Message{
			Kind: proto.KRelocTail, Client: c, Origin: m.b.ID(), Epoch: s.outEpoch,
		})
		if s.reconnectPending {
			// Ping-pong: the client is physically back here. Pull the
			// session state back with a fresh inbound relocation. The
			// RelocReq follows the tail on the same FIFO unicast path, so
			// the peer processes the tail (going ghost) first.
			ns := m.newSession(c, stateRelocatingIn)
			ns.epoch = s.epoch
			ns.reqEpoch = s.epoch
			ns.announced = s.announced
			ns.ghostOnComplete = s.ghostOnComplete
			m.sessions[c] = ns
			m.b.Unicast(newBorder, proto.Message{
				Kind: proto.KRelocReq, Client: c, Origin: m.b.ID(), Epoch: ns.reqEpoch,
			})
			return
		}
		m.forget(c)
		m.b.DetachPort(c)
		delete(m.sessions, c)
	}
	return true
}

func (m *Manager) onRelocTail(msg proto.Message) bool {
	s, ok := m.sessions[msg.Client]
	if !ok || s.state != stateRelocatingIn || msg.Epoch != s.reqEpoch {
		return true
	}
	s.state = stateConnected
	m.stats.Relocations++
	m.finishRelocation(s)
	return true
}

// finishRelocation replays the merged buffer and processes queued events.
// Follow-up pulls (resumeFrom) run first — the state collected so far is
// incomplete until the newest fork is merged; queued outbound requests and
// ghost transitions follow.
func (m *Manager) finishRelocation(s *session) {
	if s.pendingReloc != "" && s.pendingEpoch <= s.epoch {
		// The queued request was superseded by a newer connect here:
		// decline it so the stale requester cleans up.
		m.b.Unicast(s.pendingReloc, proto.Message{
			Kind: proto.KRelocProfile, Client: s.client, Origin: m.b.ID(),
			Epoch: s.pendingEpoch, Stale: true,
		})
		s.pendingReloc = ""
		s.pendingEpoch = 0
	}
	switch {
	case s.pendingReloc != "":
		// The client has already moved on: hand everything over instead
		// of replaying locally.
		next := s.pendingReloc
		nextEpoch := s.pendingEpoch
		s.pendingReloc = ""
		s.pendingEpoch = 0
		s.seen = make(map[message.NotificationID]bool)
		m.beginRelocOut(s, next, nextEpoch)
	case s.ghostOnComplete:
		// The client disconnected while relocating in: keep the merged
		// buffer for its return.
		s.ghostOnComplete = false
		s.state = stateGhost
		s.seen = make(map[message.NotificationID]bool)
	default:
		m.replay(s)
		s.seen = make(map[message.NotificationID]bool)
	}
}

// replay delivers the session buffer in (publisher, seq) order, then
// clears it — for a durable buffer the Clear is the delivery ack, so it
// runs only after every KDeliver has been handed to the transport. A crash
// in between redelivers on the next reconnect; the client's dedup set
// keeps the stream exactly-once.
func (m *Manager) replay(s *session) {
	notes := s.buf.Snapshot(m.b.Now())
	message.ByID(notes)
	for _, n := range notes {
		note := n
		m.stats.Replayed++
		m.b.Send(s.client, proto.Message{Kind: proto.KDeliver, Client: s.client, Note: &note})
	}
	s.buf.Clear()
}

// onTapDeliver handles tap-forwarded stragglers arriving from the old
// border (KDeliver unicast addressed to this broker).
func (m *Manager) onTapDeliver(msg proto.Message) bool {
	if msg.Note == nil || msg.Dest != m.b.ID() {
		return false
	}
	s, ok := m.sessions[msg.Client]
	if !ok {
		return false
	}
	switch s.state {
	case stateRelocatingIn:
		m.bufferDedup(s, *msg.Note)
	case stateConnected:
		if !msg.Note.ID.IsZero() && s.seen[msg.Note.ID] {
			m.stats.DroppedDuplicates++
			return true
		}
		m.b.Send(s.client, proto.Message{Kind: proto.KDeliver, Client: s.client, Note: msg.Note})
	case stateGhost:
		m.bufferDedup(s, *msg.Note)
	case stateRelocatingOut:
		// The client has moved on again: chain the forward.
		m.b.Unicast(s.tapTo, proto.Message{
			Kind: proto.KDeliver, Client: msg.Client, Origin: m.b.ID(), Note: msg.Note,
		})
	}
	return true
}

var _ broker.Plugin = (*Manager)(nil)
