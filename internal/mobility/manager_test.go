// Integration tests for the physical-mobility relocation protocol, driven
// through the discrete-event simulator: publishers keep publishing during
// handovers and the tests assert the paper's "transparent, uninterrupted
// flow" guarantee — no loss, no duplicates, per-publisher FIFO — plus the
// deliberately weaker behaviour of the JEDI and naive baselines.
package mobility_test

import (
	"testing"
	"time"

	"rebeca/internal/broker"
	"rebeca/internal/client"
	"rebeca/internal/filter"
	"rebeca/internal/message"
	"rebeca/internal/sim"
)

// world is a 3-broker line A-B-C with a publisher attached at A publishing
// every tick and a mobile subscriber starting at C.
type world struct {
	t       *testing.T
	cluster *sim.Cluster
	pub     *client.Client
	mob     *client.Client
	ticks   int
}

const tick = time.Millisecond

func newWorld(t *testing.T, mode sim.MobilityMode) *world {
	t.Helper()
	topo := broker.LineTopology([]message.NodeID{"A", "B", "C"})
	cl, err := sim.NewCluster(sim.ClusterConfig{
		Topology:    topo,
		Mobility:    mode,
		LinkLatency: tick,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := &world{t: t, cluster: cl}
	w.pub = cl.AddClient("pub")
	w.mob = cl.AddClient("mob")
	return w
}

// start connects the publisher and the mobile subscriber and lets the
// subscription propagate.
func (w *world) start() {
	w.pub.ConnectTo("A")
	w.mob.ConnectTo("C")
	w.mob.Subscribe(filter.New(filter.Exists("k")))
	w.cluster.Net.Run()
}

// publishEvery schedules n publishes, one per tick, starting one tick from
// now.
func (w *world) publishEvery(n int) {
	for i := 1; i <= n; i++ {
		i := i
		w.cluster.Net.After(time.Duration(i)*tick, func() {
			w.pub.Publish(map[string]message.Value{"k": message.Int(int64(i))})
		})
	}
	w.ticks = n
}

// moveAt schedules a disconnect at d and a reconnect at broker `to` at r.
func (w *world) moveAt(d, r time.Duration, to message.NodeID) {
	w.cluster.Net.After(d, func() { w.mob.Disconnect() })
	w.cluster.Net.After(r, func() { w.mob.ConnectTo(to) })
}

// missing returns the publisher sequence numbers the mobile never received.
func (w *world) missing() []uint64 {
	got := make(map[uint64]bool)
	for _, n := range w.mob.ReceivedNotes() {
		got[n.ID.Seq] = true
	}
	var out []uint64
	for s := uint64(1); s <= uint64(w.ticks); s++ {
		if !got[s] {
			out = append(out, s)
		}
	}
	return out
}

func TestTransparentRelocationLosesNothing(t *testing.T) {
	w := newWorld(t, sim.MobilityTransparent)
	w.start()
	w.publishEvery(100)
	w.moveAt(20*tick, 30*tick, "B")
	w.cluster.Net.Run()

	if miss := w.missing(); len(miss) != 0 {
		t.Errorf("lost %d notifications: %v", len(miss), miss)
	}
	if d := w.mob.Duplicates(); d != 0 {
		t.Errorf("client saw %d duplicates", d)
	}
	if v := w.mob.FIFOViolations(); v != 0 {
		t.Errorf("FIFO violations: %d", v)
	}
	if st := w.cluster.Managers["B"].Stats(); st.Relocations != 1 {
		t.Errorf("B should have completed 1 relocation, got %d", st.Relocations)
	}
}

func TestTransparentRelocationLongDistance(t *testing.T) {
	// Move across the whole line (C -> A): both relocation unicasts and
	// flush waves traverse multiple hops.
	w := newWorld(t, sim.MobilityTransparent)
	w.start()
	w.publishEvery(150)
	w.moveAt(40*tick, 55*tick, "A")
	w.cluster.Net.Run()
	if miss := w.missing(); len(miss) != 0 {
		t.Errorf("lost: %v", miss)
	}
	if w.mob.Duplicates() != 0 || w.mob.FIFOViolations() != 0 {
		t.Errorf("dups=%d fifo=%d", w.mob.Duplicates(), w.mob.FIFOViolations())
	}
}

func TestGhostReconnectSameBroker(t *testing.T) {
	w := newWorld(t, sim.MobilityTransparent)
	w.start()
	w.publishEvery(60)
	// Disconnect and come back to the same broker: ghost buffer replays.
	w.moveAt(20*tick, 40*tick, "C")
	w.cluster.Net.Run()
	if miss := w.missing(); len(miss) != 0 {
		t.Errorf("ghost buffer should cover the gap, lost %v", miss)
	}
	if w.mob.FIFOViolations() != 0 {
		t.Error("replay must preserve publisher order")
	}
}

func TestNaiveLosesGapTraffic(t *testing.T) {
	w := newWorld(t, sim.MobilityNaive)
	w.start()
	w.publishEvery(100)
	w.moveAt(20*tick, 50*tick, "B")
	w.cluster.Net.Run()
	miss := w.missing()
	if len(miss) == 0 {
		t.Fatal("naive mode should lose disconnection-gap traffic")
	}
	// Everything before the disconnect and well after the reconnect must
	// still arrive.
	for _, s := range miss {
		if s < 18 || s > 60 {
			t.Errorf("naive lost seq %d outside the expected window", s)
		}
	}
}

func TestJEDILosesOnlyInFlight(t *testing.T) {
	jedi := newWorld(t, sim.MobilityJEDI)
	jedi.start()
	jedi.publishEvery(100)
	jedi.moveAt(20*tick, 50*tick, "B")
	jedi.cluster.Net.Run()
	jediMiss := len(jedi.missing())

	naive := newWorld(t, sim.MobilityNaive)
	naive.start()
	naive.publishEvery(100)
	naive.moveAt(20*tick, 50*tick, "B")
	naive.cluster.Net.Run()
	naiveMiss := len(naive.missing())

	if jediMiss == 0 {
		t.Error("JEDI without barriers should lose some in-flight traffic")
	}
	if jediMiss >= naiveMiss {
		t.Errorf("JEDI (%d lost) should beat naive (%d lost): it buffers the gap",
			jediMiss, naiveMiss)
	}
	if jedi.mob.FIFOViolations() != 0 {
		t.Error("JEDI replay should still be ordered")
	}
}

func TestPingPongMove(t *testing.T) {
	// C -> B -> C with the return happening before the first relocation
	// can possibly complete (reconnect 3 ticks after the away-connect).
	w := newWorld(t, sim.MobilityTransparent)
	w.start()
	w.publishEvery(120)
	w.cluster.Net.After(20*tick, func() { w.mob.Disconnect() })
	w.cluster.Net.After(25*tick, func() { w.mob.ConnectTo("B") })
	w.cluster.Net.After(28*tick, func() { w.mob.Disconnect() })
	w.cluster.Net.After(31*tick, func() { w.mob.ConnectTo("C") })
	w.cluster.Net.Run()

	if miss := w.missing(); len(miss) != 0 {
		t.Errorf("ping-pong lost %v", miss)
	}
	if w.mob.FIFOViolations() != 0 {
		t.Errorf("ping-pong FIFO violations: %d", w.mob.FIFOViolations())
	}
	// No sessions may leak on the intermediate broker.
	if st := w.cluster.Managers["B"].SessionState("mob"); st != "" {
		t.Errorf("B still holds session in state %q", st)
	}
}

func TestChainedMove(t *testing.T) {
	// C -> B -> A with the second hop before the first handover finishes.
	w := newWorld(t, sim.MobilityTransparent)
	w.start()
	w.publishEvery(150)
	w.cluster.Net.After(20*tick, func() { w.mob.Disconnect() })
	w.cluster.Net.After(24*tick, func() { w.mob.ConnectTo("B") })
	w.cluster.Net.After(27*tick, func() { w.mob.Disconnect() })
	w.cluster.Net.After(30*tick, func() { w.mob.ConnectTo("A") })
	w.cluster.Net.Run()

	if miss := w.missing(); len(miss) != 0 {
		t.Errorf("chained move lost %v", miss)
	}
	if w.mob.FIFOViolations() != 0 {
		t.Errorf("chained move FIFO violations: %d", w.mob.FIFOViolations())
	}
	for _, b := range []message.NodeID{"B", "C"} {
		if st := w.cluster.Managers[b].SessionState("mob"); st != "" {
			t.Errorf("%s still holds session %q", b, st)
		}
	}
	if st := w.cluster.Managers["A"].SessionState("mob"); st != "connected" {
		t.Errorf("A session = %q, want connected", st)
	}
}

func TestSubscribeDuringRelocation(t *testing.T) {
	w := newWorld(t, sim.MobilityTransparent)
	w.start()
	w.publishEvery(100)
	w.cluster.Net.After(20*tick, func() { w.mob.Disconnect() })
	w.cluster.Net.After(25*tick, func() { w.mob.ConnectTo("B") })
	// Add a second subscription while the handover is in flight.
	var extra message.SubID
	w.cluster.Net.After(26*tick, func() {
		extra = w.mob.Subscribe(filter.New(filter.Exists("other")))
	})
	w.cluster.Net.After(60*tick, func() {
		w.pub.Publish(map[string]message.Value{"other": message.Int(1)})
	})
	w.cluster.Net.Run()

	if miss := w.missing(); len(miss) != 0 {
		t.Errorf("lost %v", miss)
	}
	found := false
	for _, n := range w.mob.ReceivedNotes() {
		if n.Has("other") {
			found = true
		}
	}
	if !found {
		t.Error("subscription issued mid-relocation never delivered")
	}
	_ = extra
}

func TestUnsubscribeStopsFlowAcrossMove(t *testing.T) {
	topo := broker.LineTopology([]message.NodeID{"A", "B", "C"})
	cl, err := sim.NewCluster(sim.ClusterConfig{
		Topology: topo, Mobility: sim.MobilityTransparent, LinkLatency: tick,
	})
	if err != nil {
		t.Fatal(err)
	}
	pub := cl.AddClient("pub")
	mob := cl.AddClient("mob")
	pub.ConnectTo("A")
	mob.ConnectTo("C")
	sid := mob.Subscribe(filter.New(filter.Exists("k")))
	cl.Net.Run()

	// Move, then unsubscribe at the new broker; later traffic must stop.
	cl.Net.After(5*tick, func() { mob.Disconnect() })
	cl.Net.After(10*tick, func() { mob.ConnectTo("B") })
	cl.Net.After(60*tick, func() { mob.Unsubscribe(sid) })
	cl.Net.Run()
	cl.Net.After(tick, func() {
		pub.Publish(map[string]message.Value{"k": message.Int(99)})
	})
	cl.Net.Run()

	for _, n := range mob.ReceivedNotes() {
		if v, _ := n.Get("k"); v.IntVal() == 99 {
			t.Error("post-unsubscribe notification delivered")
		}
	}
	// All tables must be clean.
	if got := cl.TotalTableEntries(); got != 0 {
		t.Errorf("dangling table entries: %d", got)
	}
}

func TestDisconnectDuringRelocationBecomesGhost(t *testing.T) {
	w := newWorld(t, sim.MobilityTransparent)
	w.start()
	w.publishEvery(120)
	w.cluster.Net.After(20*tick, func() { w.mob.Disconnect() })
	w.cluster.Net.After(24*tick, func() { w.mob.ConnectTo("B") })
	// Drop the link again immediately — before the relocation completes.
	w.cluster.Net.After(26*tick, func() { w.mob.Disconnect() })
	// Come back much later, same broker.
	w.cluster.Net.After(80*tick, func() { w.mob.ConnectTo("B") })
	w.cluster.Net.Run()

	if miss := w.missing(); len(miss) != 0 {
		t.Errorf("ghost-after-relocation lost %v", miss)
	}
	if st := w.cluster.Managers["B"].SessionState("mob"); st != "connected" {
		t.Errorf("B session = %q", st)
	}
}

func TestRelocationStatsProgress(t *testing.T) {
	w := newWorld(t, sim.MobilityTransparent)
	w.start()
	w.publishEvery(100)
	w.moveAt(20*tick, 30*tick, "B")
	w.cluster.Net.Run()
	st := w.cluster.Managers["B"].Stats()
	if st.Replayed == 0 {
		t.Error("handover should replay buffered notifications")
	}
	cst := w.cluster.Managers["C"].Stats()
	if cst.Buffered == 0 {
		t.Error("old border should have buffered during the gap")
	}
}
