// Package overlay is the broker-overlay link subsystem: every
// broker↔broker link is owned by a per-broker Manager as a supervised
// state machine instead of a fire-and-forget dial. The manager is
// transport-agnostic — the live TCP runner (internal/wire) and the
// discrete-event simulator (internal/sim) both host the same state
// machine through injected callbacks, so link-failure scenarios written
// once run under real sockets and under the virtual clock alike.
//
// A link walks connecting → handshaking → established → degraded →
// closed:
//
//   - connecting: the physical link is being brought up. The dialer side
//     attempts the Dial callback and, on failure, retries with jittered
//     exponential backoff; the passive side waits for an inbound link.
//   - handshaking: the physical link is up; the two ends run the
//     versioned sync handshake. Each side sends a KHello stamped with
//     its handshake generation; each side answers a KHello with a
//     KSyncInstall replaying its local routing installs (subscriptions
//     and advertisements) and echoing the hello's generation. A side is
//     established once it receives a KSyncInstall matching its current
//     generation; stale replies from superseded link generations are
//     discarded. A handshake that does not complete within the
//     heartbeat timeout tears the link down and starts over.
//   - established: the link carries traffic. Messages queued while the
//     link was down flush first (before the peer's replay is applied, so
//     per-link FIFO order vs. the sender's earlier sync reply holds),
//     then the peer's installs are applied. KPing probes flow every
//     HeartbeatInterval; a link silent for longer than HeartbeatTimeout
//     is declared failed.
//   - degraded: an established link was lost (read error, send error, or
//     missed heartbeats). Outbound messages queue in a bounded pending
//     buffer (oldest dropped beyond PendingCap) and the dialer side
//     reconnects with backoff. Re-establishment replays the pending
//     buffer after a fresh sync handshake, so routing state reconverges
//     before the backlog lands.
//   - closed: the manager was shut down.
//
// Because every (re-)establishment replays installs before traffic, the
// broker start order stops mattering: a broker may dial a neighbor that
// is not up yet (backoff retries), and a restarted broker re-learns the
// overlay's routing state from its neighbors while they re-learn its —
// the self-healing topology behind rolling restarts and link flaps.
package overlay

import (
	"fmt"
	"hash/fnv"
	"log/slog"
	"math/rand"
	"sort"
	"sync"
	"time"

	"rebeca/internal/message"
	"rebeca/internal/proto"
	"rebeca/internal/store"
)

// State is a link's lifecycle position.
type State int

// Link states, in lifecycle order.
const (
	// StateClosed is the terminal (and zero) state: no link is being
	// maintained.
	StateClosed State = iota
	// StateConnecting: bringing the physical link up; never established
	// in this manager's lifetime.
	StateConnecting
	// StateHandshaking: physical link up, sync handshake in flight.
	StateHandshaking
	// StateEstablished: handshake complete, link carries traffic,
	// heartbeats flow.
	StateEstablished
	// StateDegraded: a previously established link was lost; outbound
	// traffic queues while the dialer side reconnects.
	StateDegraded
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateConnecting:
		return "connecting"
	case StateHandshaking:
		return "handshaking"
	case StateEstablished:
		return "established"
	case StateDegraded:
		return "degraded"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Event is one link state transition, as seen by observers.
type Event struct {
	// Peer is the remote broker of the link.
	Peer message.NodeID
	// From and To are the states around the transition.
	From, To State
	// Reason is a short human-readable cause ("heartbeat timeout",
	// "link up", …).
	Reason string
	// At is the manager's (virtual or wall) time of the transition.
	At time.Time
}

// Observer consumes link transitions. It is called synchronously from
// whatever goroutine drove the transition (event loop, timer, read
// pump) and must not block; it may call the manager's read-only
// accessors but not its mutating methods.
type Observer func(Event)

// Settings tunes the link supervision. The zero value selects the
// defaults noted per field.
type Settings struct {
	// HeartbeatInterval is the KPing period on established links
	// (default 1s). It also bounds how long a handshake may stall: a
	// link still handshaking after HeartbeatTimeout is torn down.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout declares a link failed after this much silence
	// (default 3×HeartbeatInterval). Any inbound message counts as
	// liveness, not just pongs.
	HeartbeatTimeout time.Duration
	// BackoffBase is the first redial delay (default 50ms); each failed
	// attempt doubles it up to BackoffMax (default 3s). Actual delays
	// are jittered uniformly in [base/2, base].
	BackoffBase time.Duration
	// BackoffMax caps the redial delay (default 3s).
	BackoffMax time.Duration
	// BackoffSeed seeds the jitter source (0 = a fixed default; the
	// jitter is deterministic given the seed, which the simulator
	// relies on).
	BackoffSeed int64
	// PendingCap bounds the per-link queue of messages accepted while
	// the link is down (default 4096); beyond it the oldest messages
	// are dropped and counted.
	PendingCap int
}

func (s Settings) withDefaults() Settings {
	if s.HeartbeatInterval <= 0 {
		s.HeartbeatInterval = time.Second
	}
	if s.HeartbeatTimeout <= 0 {
		s.HeartbeatTimeout = 3 * s.HeartbeatInterval
	}
	if s.BackoffBase <= 0 {
		s.BackoffBase = 50 * time.Millisecond
	}
	if s.BackoffMax <= 0 {
		s.BackoffMax = 3 * time.Second
	}
	if s.BackoffMax < s.BackoffBase {
		s.BackoffMax = s.BackoffBase
	}
	if s.PendingCap <= 0 {
		s.PendingCap = 4096
	}
	return s
}

// Config wires a Manager to its host. All callbacks are invoked without
// the manager's lock held; SyncState and ApplySync are only ever called
// from within HandleControl, so a host that calls HandleControl on its
// broker's event loop gets routing-state access serialized for free.
type Config struct {
	// Self names the hosting broker.
	Self message.NodeID
	// Settings tunes supervision; zero fields take defaults.
	Settings Settings
	// Now supplies (virtual) time. Defaults to time.Now.
	Now func() time.Time
	// Transmit sends one message on the peer's current physical link.
	// An error marks the link down and requeues the message.
	Transmit func(peer message.NodeID, m proto.Message) error
	// Dial asynchronously attempts the peer's physical link. The host
	// reports the outcome via LinkUp or DialFailed — exactly one per
	// attempt. Nil for hosts whose links are all passive.
	Dial func(peer message.NodeID)
	// CloseLink tears the peer's physical link down (heartbeat timeout,
	// stalled handshake). May be nil when there is nothing to close.
	CloseLink func(peer message.NodeID)
	// Schedule runs fn once after d on the host's clock and returns a
	// cancel func. All manager timers (heartbeats, redials, handshake
	// deadlines) go through it, so the simulator can drive them on the
	// virtual clock.
	Schedule func(d time.Duration, fn func()) (cancel func())
	// SyncState returns the local installs to replay to the peer on
	// link establishment (the broker's SyncInstalls).
	SyncState func(peer message.NodeID) (subs, advs []proto.Subscription)
	// ApplySync reconciles the peer's replayed installs into local
	// routing state (the broker's ApplySyncInstalls).
	ApplySync func(peer message.NodeID, subs, advs []proto.Subscription)
	// Spill, when non-nil, extends every link's pending queue onto
	// persistent storage: messages evicted by PendingCap move to a
	// per-link store queue ("ovl/<self>/<peer>") instead of being
	// dropped, bounded by SpillBudget bytes (drop-oldest past it), and
	// replay in order on re-establishment — after the sync handshake,
	// before fresh traffic. Spill IO runs only on degraded-link paths;
	// established links never touch it.
	Spill store.Store
	// SpillBudget bounds each link's spilled bytes (default
	// DefaultSpillBudget). Only meaningful with Spill.
	SpillBudget int64
	// Observer, when non-nil, sees every link transition.
	Observer Observer
	// Logger, when non-nil, receives structured link-transition events
	// (established = info, loss of an established link = warn, the
	// intermediate supervision states = debug).
	Logger *slog.Logger
}

// LinkInfo is a link's introspection snapshot.
type LinkInfo struct {
	// Peer is the remote broker.
	Peer message.NodeID
	// State is the current lifecycle state.
	State State
	// Dialer reports whether this side actively dials the link.
	Dialer bool
	// Established counts completed handshakes over the manager's
	// lifetime (≥1 ⇒ the link has carried traffic at some point).
	Established int
	// Pending is the number of messages queued for the down link.
	Pending int
	// Dropped counts messages discarded by the pending-queue bound (and,
	// with spill configured, by the spill's byte budget — every loss is
	// counted exactly once, here).
	Dropped int
	// SpillDepth is the number of messages currently spilled to the
	// store for this link (0 without spill).
	SpillDepth int
	// SpillBytes is the encoded size of the spilled backlog.
	SpillBytes int64
	// SpillDropped counts messages the spill itself discarded (byte
	// budget, append failures). Included in Dropped.
	SpillDropped int
	// LastSeen is the time of the last inbound message on the link.
	LastSeen time.Time
}

type link struct {
	peer        message.NodeID
	dialer      bool
	state       State
	gen         uint64 // handshake generation; bumped per LinkUp
	lastSeen    time.Time
	pending     []proto.Message
	dropped     int
	established int
	backoff     time.Duration
	spill       *spillState // store-backed overflow queue (nil without spill)
	cancelHB    func()      // heartbeat tick or handshake deadline
	cancelRetry func()      // pending redial
}

func (l *link) cancelTimers() {
	if l.cancelHB != nil {
		l.cancelHB()
		l.cancelHB = nil
	}
	if l.cancelRetry != nil {
		l.cancelRetry()
		l.cancelRetry = nil
	}
}

// Manager supervises one broker's overlay links. Safe for concurrent
// use: the live runner drives it from read pumps, timers and the event
// loop at once; the simulator from its single loop.
type Manager struct {
	cfg Config
	set Settings

	mu     sync.Mutex
	rng    *rand.Rand
	links  map[message.NodeID]*link
	closed bool
}

// New builds a manager from the config.
func New(cfg Config) *Manager {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Transmit == nil {
		panic("overlay: Config.Transmit is required")
	}
	set := cfg.Settings.withDefaults()
	if cfg.Spill != nil && cfg.SpillBudget <= 0 {
		cfg.SpillBudget = DefaultSpillBudget
	}
	seed := set.BackoffSeed
	if seed == 0 {
		// Derive the default from the broker's identity: deterministic
		// (the simulator's runs stay reproducible) yet different per
		// broker, so a partitioned clique's redial jitter is actually
		// decorrelated. An explicit BackoffSeed overrides.
		h := fnv.New64a()
		_, _ = h.Write([]byte(cfg.Self))
		seed = int64(h.Sum64())
		if seed == 0 {
			seed = 1
		}
	}
	return &Manager{
		cfg:   cfg,
		set:   set,
		rng:   rand.New(rand.NewSource(seed)),
		links: make(map[message.NodeID]*link),
	}
}

// Self returns the hosting broker's ID.
func (m *Manager) Self() message.NodeID { return m.cfg.Self }

// AddPeer registers an overlay link to supervise. The dialer side
// starts its first dial attempt immediately; the passive side waits for
// the host to report an inbound link via LinkUp.
func (m *Manager) AddPeer(peer message.NodeID, dialer bool) {
	// Discover any persisted backlog before taking the lock (store IO):
	// a broker restarted with a non-empty spill on disk resumes it.
	sp := m.loadSpill(peer)
	m.mu.Lock()
	if m.closed || m.links[peer] != nil {
		m.mu.Unlock()
		return
	}
	m.links[peer] = &link{
		peer:    peer,
		dialer:  dialer,
		state:   StateConnecting,
		backoff: m.set.BackoffBase,
		spill:   sp,
	}
	m.mu.Unlock()
	m.observe(peer, StateClosed, StateConnecting, "peer added")
	if dialer && m.cfg.Dial != nil {
		m.cfg.Dial(peer)
	}
}

// RemovePeer stops supervising a departed peer: timers are cancelled,
// the pending queue is discarded, the physical link is closed and the
// link forgotten (a later AddPeer starts fresh). Safe to call for
// unknown peers. Driven by the discovery subsystem when a broker leaves
// the registry.
func (m *Manager) RemovePeer(peer message.NodeID) {
	m.mu.Lock()
	l := m.links[peer]
	if l == nil {
		m.mu.Unlock()
		return
	}
	from := l.state
	l.cancelTimers()
	l.state = StateClosed
	// With spill configured the undelivered backlog outlives the peer's
	// membership: it moves to the store and replays if the peer ever
	// returns (a later AddPeer rediscovers the queue).
	m.spillPendingLocked(l)
	delete(m.links, peer)
	m.mu.Unlock()
	if m.cfg.CloseLink != nil {
		m.cfg.CloseLink(peer)
	}
	m.observe(peer, from, StateClosed, "peer removed")
}

// Resync re-runs the sync handshake's routing replay on an established
// link without touching its lifecycle: a KHello at the current
// generation solicits the peer's KSyncInstall (accepted while
// established), reconciling routing state when a mesh tree change
// reactivates a standby link. No-op unless the link is established.
func (m *Manager) Resync(peer message.NodeID) {
	m.mu.Lock()
	l := m.links[peer]
	if l == nil || m.closed || l.state != StateEstablished {
		m.mu.Unlock()
		return
	}
	gen := l.gen
	m.mu.Unlock()
	m.transmit(peer, gen, proto.Message{Kind: proto.KHello, Origin: m.cfg.Self, Epoch: gen})
}

// TakePending removes and returns the peer's queued backlog. The mesh
// layer re-routes it along the new spanning tree when the peer's link
// leaves the tree, so traffic queued toward a cut link is not stranded
// until (if ever) the link heals.
func (m *Manager) TakePending(peer message.NodeID) []proto.Message {
	m.mu.Lock()
	defer m.mu.Unlock()
	l := m.links[peer]
	if l == nil || len(l.pending) == 0 {
		return nil
	}
	out := l.pending
	l.pending = nil
	return out
}

// LinkUp reports a freshly established physical link (successful dial
// or inbound accept). It starts the sync handshake and returns the
// link's new handshake generation; the host tags the link's read pump
// with it so events from superseded links are ignored. ok is false for
// unknown peers or a closed manager — the host should drop the link.
func (m *Manager) LinkUp(peer message.NodeID) (gen uint64, ok bool) {
	m.mu.Lock()
	l := m.links[peer]
	if l == nil || m.closed {
		m.mu.Unlock()
		return 0, false
	}
	from := l.state
	l.gen++
	gen = l.gen
	l.state = StateHandshaking
	l.lastSeen = m.cfg.Now()
	l.cancelTimers()
	// A handshake that stalls (peer died mid-dial, sync reply lost) may
	// not produce any read error; bound it by the heartbeat timeout.
	l.cancelHB = m.schedule(m.set.HeartbeatTimeout, func() { m.handshakeDeadline(peer, gen) })
	m.mu.Unlock()
	m.observe(peer, from, StateHandshaking, "link up")
	m.transmit(peer, gen, proto.Message{Kind: proto.KHello, Origin: m.cfg.Self, Epoch: gen})
	return gen, true
}

// DialFailed reports a failed dial attempt; the manager schedules the
// next one with jittered exponential backoff.
func (m *Manager) DialFailed(peer message.NodeID) {
	m.mu.Lock()
	l := m.links[peer]
	if l == nil || m.closed || !l.dialer ||
		l.state == StateHandshaking || l.state == StateEstablished {
		m.mu.Unlock()
		return
	}
	m.scheduleRedialLocked(l)
	m.mu.Unlock()
}

// LinkDown reports a lost physical link (read error, closed conn). gen
// must be the generation LinkUp returned for that link; 0 matches any
// (hosts without per-link generations, e.g. the simulator).
func (m *Manager) LinkDown(peer message.NodeID, gen uint64, reason string) {
	m.mu.Lock()
	l := m.links[peer]
	if l == nil || m.closed || (gen != 0 && gen != l.gen) {
		m.mu.Unlock()
		return
	}
	if l.state != StateHandshaking && l.state != StateEstablished {
		m.mu.Unlock()
		return
	}
	from := l.state
	to := StateConnecting
	if l.established > 0 {
		to = StateDegraded
	}
	l.state = to
	l.cancelTimers()
	if l.dialer {
		m.scheduleRedialLocked(l)
	}
	m.mu.Unlock()
	m.observe(peer, from, to, reason)
}

// Touch records inbound liveness on the link (any message counts).
func (m *Manager) Touch(peer message.NodeID, gen uint64) {
	m.mu.Lock()
	if l := m.links[peer]; l != nil && (gen == 0 || gen == l.gen) {
		l.lastSeen = m.cfg.Now()
	}
	m.mu.Unlock()
}

// HandleControl offers the manager an inbound message from the peer.
// It consumes the overlay's link-local kinds (KHello, KSyncInstall,
// KPing, KPong) and returns whether the message was consumed; all other
// kinds are left to the broker (the manager records their liveness).
func (m *Manager) HandleControl(peer message.NodeID, gen uint64, msg proto.Message) bool {
	switch msg.Kind {
	case proto.KHello, proto.KSyncInstall, proto.KPing, proto.KPong:
	default:
		m.Touch(peer, gen)
		return false
	}
	m.mu.Lock()
	l := m.links[peer]
	if l == nil || m.closed || (gen != 0 && gen != l.gen) {
		m.mu.Unlock()
		return true
	}
	l.lastSeen = m.cfg.Now()
	curGen := l.gen
	switch msg.Kind {
	case proto.KPong:
		m.mu.Unlock()
	case proto.KPing:
		if l.state != StateEstablished && l.state != StateHandshaking {
			// We consider this link down (our end is closed): answering
			// would keep a half-open link looking healthy to a peer that
			// never saw the failure. Starved of pongs, the peer times out
			// and re-establishes — both ends reconverge.
			m.mu.Unlock()
			return true
		}
		m.mu.Unlock()
		m.transmit(peer, curGen, proto.Message{Kind: proto.KPong, Origin: m.cfg.Self})
	case proto.KHello:
		if l.state != StateHandshaking && l.state != StateEstablished {
			// The physical link exists (a message arrived) but the host
			// never reported it up: stale pump — drop.
			m.mu.Unlock()
			return true
		}
		m.mu.Unlock()
		var subs, advs []proto.Subscription
		if m.cfg.SyncState != nil {
			subs, advs = m.cfg.SyncState(peer)
		}
		m.transmit(peer, curGen, proto.Message{
			Kind: proto.KSyncInstall, Origin: m.cfg.Self,
			Epoch: msg.Epoch, Subs: subs, Advs: advs,
		})
	case proto.KSyncInstall:
		if l.state == StateEstablished && msg.Epoch == curGen {
			// A resync replay on a live link (Resync: a mesh tree change
			// reactivated a standby link): reconcile routing state without
			// touching the link lifecycle — no pending flush, no timer
			// resets.
			m.mu.Unlock()
			if m.cfg.ApplySync != nil {
				m.cfg.ApplySync(peer, msg.Subs, msg.Advs)
			}
			return true
		}
		if l.state != StateHandshaking || msg.Epoch != curGen {
			// A duplicate, or the reply to a hello from a superseded
			// link generation: the versioning exists to discard exactly
			// this.
			m.mu.Unlock()
			return true
		}
		from := l.state
		l.state = StateEstablished
		l.established++
		l.backoff = m.set.BackoffBase
		pending := l.pending
		l.pending = nil
		l.cancelTimers()
		l.cancelHB = m.schedule(m.set.HeartbeatInterval, func() { m.heartbeatTick(peer, curGen) })
		m.mu.Unlock()
		m.observe(peer, from, StateEstablished,
			fmt.Sprintf("synced (%d installs replayed by peer)", len(msg.Subs)+len(msg.Advs)))
		// The spilled backlog is strictly older than the in-memory pending
		// queue (eviction moves the pending head to the spill tail), so it
		// replays first. A mid-drain transmit failure marks the link down;
		// the pending batch goes back through requeueFront so nothing is
		// silently lost.
		if m.cfg.Spill != nil {
			if !m.drainSpill(peer, curGen) {
				m.requeueFront(peer, curGen, pending)
				return true
			}
		}
		// Flush the backlog before applying the peer's replay: our sync
		// reply already precedes the backlog on the wire (FIFO link), so
		// the peer routes it against re-synced tables — and anything our
		// ApplySync emits below stays behind the backlog likewise.
		for i, pm := range pending {
			if err := m.cfg.Transmit(peer, pm); err != nil {
				m.requeueFront(peer, curGen, pending[i:])
				m.LinkDown(peer, curGen, fmt.Sprintf("flush: %v", err))
				return true
			}
		}
		if m.cfg.ApplySync != nil {
			m.cfg.ApplySync(peer, msg.Subs, msg.Advs)
		}
	}
	return true
}

// Send transmits m to the peer if its link is established, and queues
// it in the bounded pending buffer otherwise. A transmit error requeues
// the message and marks the link down.
func (m *Manager) Send(peer message.NodeID, msg proto.Message) {
	m.mu.Lock()
	l := m.links[peer]
	if l == nil || m.closed {
		m.mu.Unlock()
		return
	}
	if l.state != StateEstablished {
		m.enqueueLocked(l, msg)
		m.mu.Unlock()
		return
	}
	gen := l.gen
	m.mu.Unlock()
	if err := m.cfg.Transmit(peer, msg); err != nil {
		m.mu.Lock()
		if l := m.links[peer]; l != nil && l.gen == gen {
			m.enqueueLocked(l, msg)
		} else if l != nil {
			// Re-established under a new generation while this transmit was
			// failing: the message cannot be ordered into the new queue.
			l.dropped++
		}
		m.mu.Unlock()
		m.LinkDown(peer, gen, fmt.Sprintf("send: %v", err))
	}
}

// SetHeartbeat retunes the link supervision at runtime (the ops /config
// knob): the next scheduled tick of every established link picks the new
// interval up, and silence checks use the new timeout immediately. A
// non-positive timeout resolves to 3× the (new) interval; a non-positive
// interval keeps the current one.
func (m *Manager) SetHeartbeat(interval, timeout time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if interval > 0 {
		m.set.HeartbeatInterval = interval
	}
	if timeout > 0 {
		m.set.HeartbeatTimeout = timeout
	} else {
		m.set.HeartbeatTimeout = 3 * m.set.HeartbeatInterval
	}
}

// Heartbeat returns the current heartbeat interval and timeout.
func (m *Manager) Heartbeat() (interval, timeout time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.set.HeartbeatInterval, m.set.HeartbeatTimeout
}

// State returns the peer's link state (StateClosed for unknown peers).
func (m *Manager) State(peer message.NodeID) State {
	m.mu.Lock()
	defer m.mu.Unlock()
	if l := m.links[peer]; l != nil {
		return l.state
	}
	return StateClosed
}

// States snapshots every link's state.
func (m *Manager) States() map[message.NodeID]State {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[message.NodeID]State, len(m.links))
	for p, l := range m.links {
		out[p] = l.state
	}
	return out
}

// Info snapshots every link, sorted by peer ID.
func (m *Manager) Info() []LinkInfo {
	m.mu.Lock()
	out := make([]LinkInfo, 0, len(m.links))
	for _, l := range m.links {
		li := LinkInfo{
			Peer: l.peer, State: l.state, Dialer: l.dialer,
			Established: l.established, Pending: len(l.pending),
			Dropped: l.dropped, LastSeen: l.lastSeen,
		}
		if l.spill != nil {
			li.SpillDepth = l.spill.depth()
			li.SpillBytes = l.spill.bytes
			li.SpillDropped = l.spill.drops
		}
		out = append(out, li)
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// Close stops all supervision: timers are cancelled and every link goes
// to StateClosed. The physical links are the host's to close.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	for _, l := range m.links {
		l.cancelTimers()
		l.state = StateClosed
	}
	m.mu.Unlock()
}

// --- internals ----------------------------------------------------------

// enqueueLocked appends to the bounded pending buffer. Beyond the cap
// the oldest message is spilled to the store when spill is configured
// (append-before-evict: the eviction happens only once the record is
// persisted — a failed append degrades to a counted drop), and dropped
// otherwise. Callers hold m.mu.
func (m *Manager) enqueueLocked(l *link, msg proto.Message) {
	if len(l.pending) >= m.set.PendingCap {
		if l.spill != nil {
			m.evictToSpillLocked(l, l.pending[0])
		} else {
			l.dropped++
		}
		l.pending = l.pending[1:]
	}
	l.pending = append(l.pending, msg)
}

// requeueFront puts an unflushed backlog suffix back at the head of the
// pending buffer (gen-guarded against a racing re-establishment). Front
// overflow spills when configured; every discarded message is counted
// — including a whole batch that loses the generation race, which was
// silently lost before.
func (m *Manager) requeueFront(peer message.NodeID, gen uint64, msgs []proto.Message) {
	m.mu.Lock()
	l := m.links[peer]
	switch {
	case l == nil:
		// Peer removed mid-flush: the batch is gone with the link.
	case l.gen != gen:
		// A re-establishment superseded this flush; its batch cannot be
		// ordered against the new generation's queue — count the loss so
		// rebeca_link_dropped_total stays truthful.
		l.dropped += len(msgs)
	default:
		l.pending = append(append([]proto.Message(nil), msgs...), l.pending...)
		for len(l.pending) > m.set.PendingCap {
			if l.spill != nil {
				m.evictToSpillLocked(l, l.pending[0])
			} else {
				l.dropped++
			}
			l.pending = l.pending[1:]
		}
	}
	m.mu.Unlock()
}

// schedule wraps cfg.Schedule (nil-tolerant for hosts without timers).
func (m *Manager) schedule(d time.Duration, fn func()) func() {
	if m.cfg.Schedule == nil {
		return nil
	}
	return m.cfg.Schedule(d, fn)
}

// scheduleRedialLocked arms the next dial attempt with jittered
// exponential backoff. Callers hold m.mu.
func (m *Manager) scheduleRedialLocked(l *link) {
	if m.cfg.Dial == nil || m.cfg.Schedule == nil {
		return
	}
	if l.cancelRetry != nil {
		l.cancelRetry()
	}
	// Jitter uniformly in [backoff/2, backoff] so a partitioned clique
	// does not reconnect in lockstep.
	d := l.backoff/2 + time.Duration(m.rng.Int63n(int64(l.backoff/2)+1))
	l.backoff *= 2
	if l.backoff > m.set.BackoffMax {
		l.backoff = m.set.BackoffMax
	}
	peer, gen := l.peer, l.gen
	l.cancelRetry = m.cfg.Schedule(d, func() {
		m.mu.Lock()
		cur := m.links[peer]
		ok := cur != nil && !m.closed && cur.gen == gen &&
			cur.state != StateHandshaking && cur.state != StateEstablished
		m.mu.Unlock()
		if ok {
			m.cfg.Dial(peer)
		}
	})
}

// handshakeDeadline fires when a handshake stalls past the heartbeat
// timeout: tear the physical link down and let the dialer retry.
func (m *Manager) handshakeDeadline(peer message.NodeID, gen uint64) {
	m.mu.Lock()
	l := m.links[peer]
	stalled := l != nil && !m.closed && l.gen == gen && l.state == StateHandshaking
	m.mu.Unlock()
	if !stalled {
		return
	}
	if m.cfg.CloseLink != nil {
		m.cfg.CloseLink(peer)
	}
	m.LinkDown(peer, gen, "handshake timeout")
}

// heartbeatTick probes the link and checks for silence.
func (m *Manager) heartbeatTick(peer message.NodeID, gen uint64) {
	m.mu.Lock()
	l := m.links[peer]
	if l == nil || m.closed || l.gen != gen || l.state != StateEstablished {
		m.mu.Unlock()
		return
	}
	if m.cfg.Now().Sub(l.lastSeen) > m.set.HeartbeatTimeout {
		m.mu.Unlock()
		if m.cfg.CloseLink != nil {
			m.cfg.CloseLink(peer)
		}
		m.LinkDown(peer, gen, "heartbeat timeout")
		return
	}
	l.cancelHB = m.schedule(m.set.HeartbeatInterval, func() { m.heartbeatTick(peer, gen) })
	m.mu.Unlock()
	m.transmit(peer, gen, proto.Message{Kind: proto.KPing, Origin: m.cfg.Self})
}

// transmit sends on the current physical link, tearing the link down on
// error.
func (m *Manager) transmit(peer message.NodeID, gen uint64, msg proto.Message) {
	if err := m.cfg.Transmit(peer, msg); err != nil {
		m.LinkDown(peer, gen, fmt.Sprintf("send: %v", err))
	}
}

func (m *Manager) observe(peer message.NodeID, from, to State, reason string) {
	if from == to {
		return
	}
	if l := m.cfg.Logger; l != nil {
		switch {
		case to == StateEstablished:
			l.Info("link established", "self", m.cfg.Self, "peer", peer, "from", from.String())
		case from == StateEstablished:
			l.Warn("link lost", "self", m.cfg.Self, "peer", peer, "to", to.String(), "reason", reason)
		default:
			l.Debug("link transition", "self", m.cfg.Self, "peer", peer,
				"from", from.String(), "to", to.String(), "reason", reason)
		}
	}
	if m.cfg.Observer == nil {
		return
	}
	m.cfg.Observer(Event{Peer: peer, From: from, To: to, Reason: reason, At: m.cfg.Now()})
}
