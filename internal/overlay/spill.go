package overlay

import (
	"fmt"

	"rebeca/internal/codec"
	"rebeca/internal/message"
	"rebeca/internal/proto"
)

// Link spill: when a degraded link's in-memory pending queue reaches
// PendingCap, overflow spills to the configured store.Store as a
// per-link queue ("ovl/<broker>/<peer>") instead of being dropped —
// append-before-evict, so a partition is bounded by the spill's byte
// budget rather than by PendingCap's worth of traffic. The global order
// invariant is: every spilled record is older than every in-memory
// pending message (eviction moves the pending queue's head to the spill
// tail, and re-establishment drains the spill before the pending
// flush), so replay after an arbitrarily long outage is gap-free and in
// order. The spill cursor is the store's ack watermark: records are
// acked on confirmed flush, the queue is compacted on full drain, and a
// restarted broker rediscovers its backlog from the unacked suffix.
//
// Spill IO runs only on paths a healthy link never takes (eviction from
// an over-full pending queue, the re-establishment drain), so a
// deployment without WithLinkSpill — or one whose links stay up — pays
// nothing.

// DefaultSpillBudget bounds a link's spilled bytes when Config.Spill is
// set without an explicit SpillBudget.
const DefaultSpillBudget = 256 << 20 // 256 MiB

// spillAttr carries one encoded proto.Message frame inside the
// store-facing Notification wrapper. Value's gob round-trip is
// binary-safe, so the frame survives WAL persistence byte-exact.
const spillAttr = "ovl-frame"

// spillDrainBatch bounds how many drained records are acked at once: a
// transmit failure mid-drain redelivers at most one batch (the client
// dedup layers absorb the at-least-once overlap).
const spillDrainBatch = 256

// spillState is one link's on-store overflow queue. base is the ack
// watermark (the oldest live record is base+1); sizes holds the encoded
// size of each live record, oldest first, so the byte budget is
// enforceable without re-reading the store.
type spillState struct {
	queue string
	base  uint64
	sizes []int
	bytes int64
	drops int
}

func (sp *spillState) depth() int { return len(sp.sizes) }

// spillQueue names a link's spill queue in the shared store.
func spillQueue(self, peer message.NodeID) string {
	return "ovl/" + string(self) + "/" + string(peer)
}

// encodeSpilled wraps one overlay message as a store notification: the
// codec payload encoding (no length prefix) in a single string attr.
func encodeSpilled(pm *proto.Message) (message.Notification, int) {
	frame := codec.AppendMessage(nil, pm)
	n := message.Notification{Attrs: map[string]message.Value{
		spillAttr: message.String(string(frame)),
	}}
	return n, len(frame)
}

// decodeSpilled unwraps a spilled record back into the overlay message.
func decodeSpilled(n message.Notification) (proto.Message, error) {
	v, ok := n.Attrs[spillAttr]
	if !ok {
		return proto.Message{}, fmt.Errorf("spill record without %q attr", spillAttr)
	}
	return codec.DecodeMessage([]byte(v.Str()))
}

// loadSpill discovers a link's persisted backlog — the unacked suffix a
// previous process (or a removed-and-readded peer) left behind. Called
// from AddPeer; returns nil when the store holds nothing for the link.
func (m *Manager) loadSpill(peer message.NodeID) *spillState {
	if m.cfg.Spill == nil {
		return nil
	}
	sp := &spillState{queue: spillQueue(m.cfg.Self, peer)}
	recs, err := m.cfg.Spill.ReplayFrom(sp.queue, 0)
	if err != nil || len(recs) == 0 {
		return sp
	}
	sp.base = recs[0].Seq - 1
	for _, rec := range recs {
		var sz int
		if v, ok := rec.Note.Attrs[spillAttr]; ok {
			sz = len(v.Str())
		}
		sp.sizes = append(sp.sizes, sz)
		sp.bytes += int64(sz)
	}
	return sp
}

// evictToSpillLocked moves one message (the pending queue's head — the
// oldest in-memory message, newer than everything already spilled) onto
// the link's spill queue, enforcing the byte budget by acking the
// spill's own oldest records. An append failure degrades to a counted
// drop, so a full disk behaves like the spill was never configured.
// Callers hold m.mu.
func (m *Manager) evictToSpillLocked(l *link, pm proto.Message) {
	sp := l.spill
	note, sz := encodeSpilled(&pm)
	seq, err := m.cfg.Spill.Append(sp.queue, note, m.cfg.Now())
	if err != nil {
		sp.drops++
		l.dropped++
		if lg := m.cfg.Logger; lg != nil {
			lg.Warn("link spill append failed; dropping",
				"self", m.cfg.Self, "peer", l.peer, "err", err)
		}
		return
	}
	if len(sp.sizes) == 0 {
		// First live record: anchor the watermark to the store's actual
		// sequence (the queue may have history from compacted earlier
		// outages).
		sp.base = seq - 1
	}
	sp.sizes = append(sp.sizes, sz)
	sp.bytes += int64(sz)
	// Budget: drop-oldest, same policy as the in-memory queue, counted
	// in both the spill's and the link's drop counters.
	for sp.bytes > m.cfg.SpillBudget && len(sp.sizes) > 1 {
		sp.base++
		sp.bytes -= int64(sp.sizes[0])
		sp.sizes = sp.sizes[1:]
		sp.drops++
		l.dropped++
		_ = m.cfg.Spill.Ack(sp.queue, sp.base)
	}
}

// spillPendingLocked moves the link's whole in-memory pending queue onto
// the spill (RemovePeer: the backlog survives in the store for the
// peer's possible return instead of being discarded). Callers hold m.mu.
func (m *Manager) spillPendingLocked(l *link) {
	if l.spill == nil {
		return
	}
	for _, pm := range l.pending {
		m.evictToSpillLocked(l, pm)
	}
	l.pending = nil
}

// drainSpill replays the link's spilled backlog to the peer, in order,
// acking each confirmed batch and compacting the store on a full drain.
// Called from the KSyncInstall establishment branch — after the link is
// established, before the in-memory pending flush (the spill holds the
// older messages) — on the host's event loop, so no fresh Send
// interleaves mid-drain. Returns false when a transmit failed: the link
// is already marked down and the undrained suffix stays spilled
// (at-most-one-batch redelivery on the next establishment; subscriber
// dedup absorbs it).
func (m *Manager) drainSpill(peer message.NodeID, gen uint64) bool {
	drained := 0
	for {
		m.mu.Lock()
		l := m.links[peer]
		if l == nil || m.closed || l.gen != gen || l.state != StateEstablished || l.spill == nil {
			m.mu.Unlock()
			return false
		}
		sp := l.spill
		if len(sp.sizes) == 0 {
			m.mu.Unlock()
			if drained > 0 {
				// Fully drained: the acked records are garbage — compact
				// so an outage's disk footprint is reclaimed, not carried.
				_ = m.cfg.Spill.Compact()
			}
			return true
		}
		queue, base := sp.queue, sp.base
		m.mu.Unlock()

		recs, err := m.cfg.Spill.ReplayFrom(queue, base)
		if err != nil || len(recs) == 0 {
			if err != nil {
				if lg := m.cfg.Logger; lg != nil {
					lg.Warn("link spill replay failed; backlog retained",
						"self", m.cfg.Self, "peer", peer, "err", err)
				}
				return true // keep the backlog for the next establishment
			}
			// Store and bookkeeping disagree (records pruned externally):
			// resync the in-memory view to the store's truth.
			m.mu.Lock()
			if l := m.links[peer]; l != nil && l.spill == sp {
				sp.sizes = nil
				sp.bytes = 0
			}
			m.mu.Unlock()
			return true
		}
		if len(recs) > spillDrainBatch {
			recs = recs[:spillDrainBatch]
		}
		for i, rec := range recs {
			pm, derr := decodeSpilled(rec.Note)
			if derr != nil {
				// An undecodable record (torn write survived the WAL's own
				// checks) is a counted drop; ack past it below.
				m.mu.Lock()
				if l := m.links[peer]; l != nil && l.spill == sp {
					sp.drops++
					l.dropped++
				}
				m.mu.Unlock()
				continue
			}
			if terr := m.cfg.Transmit(peer, pm); terr != nil {
				// Ack the transmitted prefix so only this batch's suffix
				// replays next time, then mark the link down.
				m.ackSpillTo(peer, sp, rec.Seq-1)
				m.LinkDown(peer, gen, fmt.Sprintf("spill flush: %v", terr))
				return false
			}
			drained = i + 1
		}
		m.ackSpillTo(peer, sp, recs[len(recs)-1].Seq)
	}
}

// ackSpillTo advances the spill's ack watermark to upTo, both in the
// store and in the in-memory bookkeeping.
func (m *Manager) ackSpillTo(peer message.NodeID, sp *spillState, upTo uint64) {
	if upTo <= sp.base {
		return
	}
	_ = m.cfg.Spill.Ack(sp.queue, upTo)
	m.mu.Lock()
	if l := m.links[peer]; l != nil && l.spill == sp {
		for sp.base < upTo && len(sp.sizes) > 0 {
			sp.base++
			sp.bytes -= int64(sp.sizes[0])
			sp.sizes = sp.sizes[1:]
		}
		if sp.base < upTo {
			sp.base = upTo
		}
	}
	m.mu.Unlock()
}
