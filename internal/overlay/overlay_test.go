package overlay

import (
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"rebeca/internal/message"
	"rebeca/internal/proto"
)

// harness couples two managers over an in-memory "wire" with a manual
// clock: transmits append to per-direction queues, timers fire on
// advance, and cut() makes transmits fail — a deterministic, single-
// goroutine model of the hosts the manager runs under.
type harness struct {
	t        *testing.T
	now      time.Time
	timers   []*fakeTimer
	timerSeq int
	cutLink  bool
	mgrs     map[message.NodeID]*Manager
	queues   map[message.NodeID][]proto.Message // keyed by recipient
	applied  map[message.NodeID][][]proto.Subscription
	events   []Event
	installs map[message.NodeID][]proto.Subscription // what SyncState replays
}

type fakeTimer struct {
	at        time.Time
	seq       int
	fn        func()
	cancelled bool
}

// newHarness builds the two-manager L-R world. Optional mutators adjust
// each side's Config before construction (spill stores, transmit taps).
func newHarness(t *testing.T, mut ...func(self message.NodeID, c *Config)) *harness {
	h := &harness{
		t:        t,
		now:      time.Date(2003, 6, 16, 12, 0, 0, 0, time.UTC),
		mgrs:     make(map[message.NodeID]*Manager),
		queues:   make(map[message.NodeID][]proto.Message),
		applied:  make(map[message.NodeID][][]proto.Subscription),
		installs: make(map[message.NodeID][]proto.Subscription),
	}
	for _, pair := range [][2]message.NodeID{{"L", "R"}, {"R", "L"}} {
		s, p := pair[0], pair[1]
		cfg := Config{
			Self: s,
			Settings: Settings{
				HeartbeatInterval: 100 * time.Millisecond,
				HeartbeatTimeout:  300 * time.Millisecond,
				BackoffBase:       50 * time.Millisecond,
				BackoffMax:        400 * time.Millisecond,
				PendingCap:        4,
			},
			Now: func() time.Time { return h.now },
			Transmit: func(to message.NodeID, m proto.Message) error {
				if h.cutLink {
					return errors.New("cut")
				}
				h.queues[to] = append(h.queues[to], m)
				return nil
			},
			Dial: func(to message.NodeID) {
				if h.cutLink {
					h.mgrs[s].DialFailed(to)
					return
				}
				h.mgrs[s].LinkUp(to)
				h.mgrs[p].LinkUp(s)
			},
			Schedule: func(d time.Duration, fn func()) func() {
				h.timerSeq++
				ft := &fakeTimer{at: h.now.Add(d), seq: h.timerSeq, fn: fn}
				h.timers = append(h.timers, ft)
				return func() { ft.cancelled = true }
			},
			SyncState: func(message.NodeID) ([]proto.Subscription, []proto.Subscription) {
				return h.installs[s], nil
			},
			ApplySync: func(_ message.NodeID, subs, _ []proto.Subscription) {
				h.applied[s] = append(h.applied[s], subs)
			},
			Observer: func(ev Event) { h.events = append(h.events, ev) },
		}
		for _, fn := range mut {
			fn(s, &cfg)
		}
		h.mgrs[s] = New(cfg)
	}
	return h
}

// deliver drains the message queues into HandleControl until quiescent.
func (h *harness) deliver() {
	for {
		moved := false
		for to, q := range h.queues {
			if len(q) == 0 {
				continue
			}
			m := q[0]
			h.queues[to] = q[1:]
			moved = true
			if h.cutLink {
				continue // in flight when the link died
			}
			h.mgrs[to].HandleControl(m.Origin, 0, m)
		}
		if !moved {
			return
		}
	}
}

// advance moves the clock forward, firing due timers in order and
// delivering any traffic they generate.
func (h *harness) advance(d time.Duration) {
	deadline := h.now.Add(d)
	for {
		var next *fakeTimer
		for _, ft := range h.timers {
			if ft.cancelled || ft.at.After(deadline) {
				continue
			}
			if next == nil || ft.at.Before(next.at) || (ft.at.Equal(next.at) && ft.seq < next.seq) {
				next = ft
			}
		}
		if next == nil {
			break
		}
		next.cancelled = true
		if next.at.After(h.now) {
			h.now = next.at
		}
		next.fn()
		h.deliver()
	}
	h.now = deadline
}

// up brings the L-R link up the way a host would: the passive side
// registers first (its "accept" is a LinkUp from the dialer's Dial),
// then the dialer's AddPeer fires the dial.
func (h *harness) up() {
	h.mgrs["R"].AddPeer("L", false)
	h.mgrs["L"].AddPeer("R", true)
	h.deliver()
}

func (h *harness) wantState(mgr, peer message.NodeID, want State) {
	h.t.Helper()
	if got := h.mgrs[mgr].State(peer); got != want {
		h.t.Fatalf("%s->%s state = %s, want %s", mgr, peer, got, want)
	}
}

func TestHandshakeEstablishesBothEnds(t *testing.T) {
	h := newHarness(t)
	h.installs["L"] = []proto.Subscription{{ID: "l/s1"}}
	h.installs["R"] = []proto.Subscription{{ID: "r/s1"}, {ID: "r/s2"}}
	h.up()
	h.wantState("L", "R", StateEstablished)
	h.wantState("R", "L", StateEstablished)
	// Each side applied the peer's replay exactly once.
	if len(h.applied["L"]) != 1 || len(h.applied["L"][0]) != 2 {
		t.Errorf("L applied %v, want one replay of 2 subs", h.applied["L"])
	}
	if len(h.applied["R"]) != 1 || len(h.applied["R"][0]) != 1 {
		t.Errorf("R applied %v, want one replay of 1 sub", h.applied["R"])
	}
}

func TestSendQueuesUntilEstablishedAndFlushesInOrder(t *testing.T) {
	h := newHarness(t)
	h.mgrs["R"].AddPeer("L", false)
	h.mgrs["L"].AddPeer("R", true)
	// Queue before the handshake completes (messages still undelivered).
	for i := 1; i <= 3; i++ {
		h.mgrs["L"].Send("R", proto.Message{Kind: proto.KPublish, Hops: i})
	}
	h.deliver()
	h.wantState("L", "R", StateEstablished)
	// R's inbound queue was drained by deliver; the flushed publishes went
	// through HandleControl (unconsumed) — check the recorded order via a
	// fresh send plus pending introspection instead.
	info := h.mgrs["L"].Info()
	if len(info) != 1 || info[0].Pending != 0 {
		t.Fatalf("pending after flush = %+v, want 0", info)
	}
}

func TestPendingQueueBoundedDropOldest(t *testing.T) {
	h := newHarness(t)
	h.cutLink = true
	h.mgrs["L"].AddPeer("R", true) // dial fails; link stays connecting
	for i := 1; i <= 6; i++ {
		h.mgrs["L"].Send("R", proto.Message{Kind: proto.KPublish, Hops: i})
	}
	info := h.mgrs["L"].Info()
	if info[0].Pending != 4 || info[0].Dropped != 2 {
		t.Fatalf("pending=%d dropped=%d, want 4/2 (cap 4)", info[0].Pending, info[0].Dropped)
	}
}

func TestHeartbeatTimeoutDegradesAndBackoffReconnects(t *testing.T) {
	h := newHarness(t)
	h.up()
	h.wantState("L", "R", StateEstablished)

	// Sever the wire: pings fail on transmit, both ends degrade.
	h.cutLink = true
	h.advance(500 * time.Millisecond)
	h.wantState("L", "R", StateDegraded)
	h.wantState("R", "L", StateDegraded)

	// Heal: the dialer's backoff probe re-establishes within BackoffMax.
	h.cutLink = false
	h.advance(time.Second)
	h.wantState("L", "R", StateEstablished)
	h.wantState("R", "L", StateEstablished)

	// The second establishment replayed installs again (idempotent).
	if len(h.applied["L"]) != 2 {
		t.Errorf("L saw %d replays, want 2", len(h.applied["L"]))
	}
}

func TestStaleSyncInstallDiscarded(t *testing.T) {
	h := newHarness(t)
	h.up()
	gen, ok := h.mgrs["L"].LinkUp("R") // simulate a reconnect: gen bumps
	if !ok {
		t.Fatal("LinkUp refused")
	}
	h.wantState("L", "R", StateHandshaking)
	// A sync reply echoing the previous generation must not establish.
	h.mgrs["L"].HandleControl("R", 0, proto.Message{
		Kind: proto.KSyncInstall, Origin: "R", Epoch: gen - 1,
	})
	h.wantState("L", "R", StateHandshaking)
	// The current generation does.
	h.mgrs["L"].HandleControl("R", 0, proto.Message{
		Kind: proto.KSyncInstall, Origin: "R", Epoch: gen,
	})
	h.wantState("L", "R", StateEstablished)
}

func TestHandshakeTimeoutTearsDownAndRetries(t *testing.T) {
	h := newHarness(t)
	h.mgrs["L"].AddPeer("R", true)
	// R never AddPeer'd: L's hello goes unanswered (R's manager drops it
	// for an unknown peer), so L must hit the handshake deadline — and
	// then keep retrying (each retry re-enters handshaking and stalls
	// again; what matters is that the deadline fires every time).
	h.deliver()
	h.wantState("L", "R", StateHandshaking)
	h.advance(time.Second)
	timeouts := 0
	for _, ev := range h.events {
		if ev.Peer == "R" && ev.Reason == "handshake timeout" {
			timeouts++
		}
	}
	if timeouts == 0 {
		t.Fatalf("stalled handshake never hit its deadline; events: %v", h.events)
	}
	if st := h.mgrs["L"].State("R"); st == StateEstablished {
		t.Fatal("stalled handshake established")
	}
}

func TestDegradedLinkDoesNotAnswerPings(t *testing.T) {
	h := newHarness(t)
	h.up()
	// Degrade R's end only (half-open link).
	h.mgrs["R"].LinkDown("L", 0, "test")
	h.wantState("R", "L", StateDegraded)
	h.queues["L"] = nil
	h.mgrs["R"].HandleControl("L", 0, proto.Message{Kind: proto.KPing, Origin: "L"})
	if len(h.queues["L"]) != 0 {
		t.Fatalf("degraded link answered a ping: %v", h.queues["L"])
	}
}

func TestObserverSeesLifecycle(t *testing.T) {
	h := newHarness(t)
	h.up()
	h.cutLink = true
	h.advance(500 * time.Millisecond)
	h.cutLink = false
	h.advance(time.Second)

	var lTrans []string
	for _, ev := range h.events {
		if ev.Peer == "R" {
			lTrans = append(lTrans, fmt.Sprintf("%s->%s", ev.From, ev.To))
		}
	}
	want := []string{
		"closed->connecting",
		"connecting->handshaking",
		"handshaking->established",
		"established->degraded",
		"degraded->handshaking",
		"handshaking->established",
	}
	if fmt.Sprint(lTrans) != fmt.Sprint(want) {
		t.Errorf("L transitions = %v, want %v", lTrans, want)
	}
}

func TestInfoSorted(t *testing.T) {
	m := New(Config{
		Self:     "X",
		Transmit: func(message.NodeID, proto.Message) error { return nil },
	})
	m.AddPeer("c", false)
	m.AddPeer("a", false)
	m.AddPeer("b", false)
	info := m.Info()
	var peers []string
	for _, li := range info {
		peers = append(peers, string(li.Peer))
	}
	if !sort.StringsAreSorted(peers) {
		t.Errorf("Info not sorted: %v", peers)
	}
}

func TestCloseStopsSupervision(t *testing.T) {
	h := newHarness(t)
	h.up()
	h.mgrs["L"].Close()
	h.wantState("L", "R", StateClosed)
	if gen, ok := h.mgrs["L"].LinkUp("R"); ok || gen != 0 {
		t.Error("LinkUp accepted on a closed manager")
	}
}
