package overlay

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"rebeca/internal/message"
	"rebeca/internal/proto"
	"rebeca/internal/store"
)

// withSpill returns a harness mutator attaching the store to L's manager
// and recording every successfully transmitted publish's Hops (the test
// sequence number) in *got.
func withSpill(st store.Store, budget int64, got *[]int) func(message.NodeID, *Config) {
	return func(self message.NodeID, c *Config) {
		if self != "L" {
			return
		}
		c.Spill = st
		c.SpillBudget = budget
		inner := c.Transmit
		c.Transmit = func(to message.NodeID, m proto.Message) error {
			if err := inner(to, m); err != nil {
				return err
			}
			if m.Kind == proto.KPublish {
				*got = append(*got, m.Hops)
			}
			return nil
		}
	}
}

func wantSeq(t *testing.T, got []int, from, to int) {
	t.Helper()
	want := make([]int, 0, to-from+1)
	for i := from; i <= to; i++ {
		want = append(want, i)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
}

// A partition longer than PendingCap's worth of traffic spills beyond
// the cap, and the re-establishment replays spill-then-pending with no
// loss and no reordering.
func TestSpillEngagesAndDrainsInOrder(t *testing.T) {
	st := store.NewMemory()
	var got []int
	h := newHarness(t, withSpill(st, 1<<20, &got))

	h.cutLink = true
	h.mgrs["R"].AddPeer("L", false)
	h.mgrs["L"].AddPeer("R", true) // dial fails; link stays connecting
	for i := 1; i <= 10; i++ {
		h.mgrs["L"].Send("R", proto.Message{Kind: proto.KPublish, Hops: i})
	}
	info := h.mgrs["L"].Info()
	if info[0].Pending != 4 || info[0].SpillDepth != 6 || info[0].Dropped != 0 {
		t.Fatalf("pending=%d spill=%d dropped=%d, want 4/6/0",
			info[0].Pending, info[0].SpillDepth, info[0].Dropped)
	}
	if info[0].SpillBytes <= 0 {
		t.Fatalf("SpillBytes = %d, want > 0", info[0].SpillBytes)
	}

	h.cutLink = false
	h.advance(time.Second)
	h.wantState("L", "R", StateEstablished)
	wantSeq(t, got, 1, 10)

	info = h.mgrs["L"].Info()
	if info[0].SpillDepth != 0 || info[0].SpillBytes != 0 || info[0].Pending != 0 {
		t.Fatalf("after drain: %+v, want empty spill and pending", info[0])
	}
	// The drained queue was acked and compacted away.
	if recs, err := st.ReplayFrom(spillQueue("L", "R"), 0); err != nil || len(recs) != 0 {
		t.Fatalf("store retains %d records after drain (err=%v), want 0", len(recs), err)
	}
}

// Past the byte budget the spill drops its own oldest records — counted
// in both LinkInfo.Dropped and SpillDropped — and replay delivers the
// surviving suffix in order.
func TestSpillBudgetExhaustionDropsOldestCounted(t *testing.T) {
	st := store.NewMemory()
	var got []int
	// A 1-byte budget retains exactly one spilled record (the budget loop
	// never evicts the last survivor).
	h := newHarness(t, withSpill(st, 1, &got))

	h.cutLink = true
	h.mgrs["R"].AddPeer("L", false)
	h.mgrs["L"].AddPeer("R", true)
	for i := 1; i <= 10; i++ {
		h.mgrs["L"].Send("R", proto.Message{Kind: proto.KPublish, Hops: i})
	}
	info := h.mgrs["L"].Info()
	if info[0].SpillDepth != 1 || info[0].SpillDropped != 5 || info[0].Dropped != 5 {
		t.Fatalf("spill=%d spillDropped=%d dropped=%d, want 1/5/5",
			info[0].SpillDepth, info[0].SpillDropped, info[0].Dropped)
	}

	h.cutLink = false
	h.advance(time.Second)
	// Survivors: the newest spilled record (6) plus the pending window.
	wantSeq(t, got, 6, 10)
}

// A non-empty spill queue on disk survives a WAL reopen ("broker
// restart") and replays before anything the restarted process queues.
func TestSpillSurvivesWALRestart(t *testing.T) {
	dir := t.TempDir()
	w, err := store.OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	h := newHarness(t, withSpill(w, 1<<20, &got))
	h.cutLink = true
	h.mgrs["R"].AddPeer("L", false)
	h.mgrs["L"].AddPeer("R", true)
	for i := 1; i <= 10; i++ {
		h.mgrs["L"].Send("R", proto.Message{Kind: proto.KPublish, Hops: i})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": reopen the WAL into a fresh pair of managers. The four
	// in-memory pending messages died with the process; the six spilled
	// ones must not.
	w2, err := store.OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got = nil
	h2 := newHarness(t, withSpill(w2, 1<<20, &got))
	h2.mgrs["R"].AddPeer("L", false)
	h2.mgrs["L"].AddPeer("R", true)
	info := h2.mgrs["L"].Info()
	if info[0].SpillDepth != 6 {
		t.Fatalf("recovered spill depth = %d, want 6", info[0].SpillDepth)
	}
	h2.mgrs["L"].Send("R", proto.Message{Kind: proto.KPublish, Hops: 11})
	h2.deliver()
	h2.advance(time.Second)
	h2.wantState("L", "R", StateEstablished)
	// Recovered backlog (1..6) strictly before the post-restart send (11).
	if fmt.Sprint(got) != fmt.Sprint([]int{1, 2, 3, 4, 5, 6, 11}) {
		t.Fatalf("delivered %v, want [1 2 3 4 5 6 11]", got)
	}
}

// A transmit failure mid-drain acks exactly the flushed prefix, marks
// the link down, and the next establishment resumes from the suffix —
// exactly-once delivery across the interrupted drain.
func TestSpillDrainInterruptedResumesWithoutLossOrDup(t *testing.T) {
	st := store.NewMemory()
	var got []int
	failOnce := true
	h := newHarness(t, withSpill(st, 1<<20, &got), func(self message.NodeID, c *Config) {
		if self != "L" {
			return
		}
		inner := c.Transmit
		c.Transmit = func(to message.NodeID, m proto.Message) error {
			if m.Kind == proto.KPublish && failOnce && len(got) == 3 {
				failOnce = false
				return errors.New("mid-drain cut")
			}
			return inner(to, m)
		}
	})

	h.cutLink = true
	h.mgrs["R"].AddPeer("L", false)
	h.mgrs["L"].AddPeer("R", true)
	for i := 1; i <= 10; i++ {
		h.mgrs["L"].Send("R", proto.Message{Kind: proto.KPublish, Hops: i})
	}
	h.cutLink = false
	// First establishment drains 1..3, fails on 4, goes down; backoff
	// re-establishes and resumes from 4.
	h.advance(2 * time.Second)
	h.wantState("L", "R", StateEstablished)
	wantSeq(t, got, 1, 10)
	if info := h.mgrs["L"].Info(); info[0].Dropped != 0 {
		t.Fatalf("dropped = %d across interrupted drain, want 0", info[0].Dropped)
	}
}

// Without spill the same partition degrades gracefully: drop-oldest at
// the cap, every discard counted, newest window delivered on heal.
func TestSpillDisabledDegradesGracefully(t *testing.T) {
	var got []int
	h := newHarness(t, func(self message.NodeID, c *Config) {
		if self != "L" {
			return
		}
		inner := c.Transmit
		c.Transmit = func(to message.NodeID, m proto.Message) error {
			if err := inner(to, m); err != nil {
				return err
			}
			if m.Kind == proto.KPublish {
				got = append(got, m.Hops)
			}
			return nil
		}
	})
	h.cutLink = true
	h.mgrs["R"].AddPeer("L", false)
	h.mgrs["L"].AddPeer("R", true)
	for i := 1; i <= 10; i++ {
		h.mgrs["L"].Send("R", proto.Message{Kind: proto.KPublish, Hops: i})
	}
	info := h.mgrs["L"].Info()
	if info[0].Pending != 4 || info[0].Dropped != 6 {
		t.Fatalf("pending=%d dropped=%d, want 4/6", info[0].Pending, info[0].Dropped)
	}
	h.cutLink = false
	h.advance(time.Second)
	wantSeq(t, got, 7, 10)
}

// Regression for the silent requeueFront losses: a batch whose link
// generation was superseded (or whose link is gone) must be counted,
// and front overflow must spill when a store is configured.
func TestRequeueFrontAccountsForEveryDiscard(t *testing.T) {
	m := New(Config{
		Self:     "X",
		Settings: Settings{PendingCap: 4},
		Transmit: func(message.NodeID, proto.Message) error { return nil },
	})
	m.AddPeer("p", false)
	gen, ok := m.LinkUp("p")
	if !ok {
		t.Fatal("LinkUp refused")
	}
	// Supersede the generation, then requeue a batch tagged with the old
	// one: the batch cannot be ordered into the new queue — it must be
	// counted, not silently discarded.
	gen2, _ := m.LinkUp("p")
	if gen2 == gen {
		t.Fatal("generation did not advance")
	}
	batch := []proto.Message{{Kind: proto.KPublish}, {Kind: proto.KPublish}, {Kind: proto.KPublish}}
	m.requeueFront("p", gen, batch)
	if info := m.Info(); info[0].Dropped != 3 {
		t.Fatalf("stale-gen requeue counted %d drops, want 3", info[0].Dropped)
	}
	// A removed link's batch is gone with the link — no panic, no count
	// to attribute it to.
	m.requeueFront("q", 1, batch)

	// Front overflow with a matching generation spills instead of
	// dropping when a store is configured.
	st := store.NewMemory()
	ms := New(Config{
		Self:     "X",
		Settings: Settings{PendingCap: 2},
		Spill:    st, SpillBudget: 1 << 20,
		Now:      time.Now,
		Transmit: func(message.NodeID, proto.Message) error { return nil },
	})
	ms.AddPeer("p", false)
	g, _ := ms.LinkUp("p")
	ms.requeueFront("p", g, []proto.Message{
		{Kind: proto.KPublish, Hops: 1}, {Kind: proto.KPublish, Hops: 2},
		{Kind: proto.KPublish, Hops: 3}, {Kind: proto.KPublish, Hops: 4},
	})
	info := ms.Info()
	if info[0].Pending != 2 || info[0].SpillDepth != 2 || info[0].Dropped != 0 {
		t.Fatalf("overflow requeue: pending=%d spill=%d dropped=%d, want 2/2/0",
			info[0].Pending, info[0].SpillDepth, info[0].Dropped)
	}
}

// RemovePeer parks the link's in-memory backlog in the spill so the
// peer's possible return finds it, and a fresh AddPeer rediscovers it.
func TestRemovePeerParksBacklogInSpill(t *testing.T) {
	st := store.NewMemory()
	var got []int
	h := newHarness(t, withSpill(st, 1<<20, &got))
	h.cutLink = true
	h.mgrs["R"].AddPeer("L", false)
	h.mgrs["L"].AddPeer("R", true)
	for i := 1; i <= 3; i++ {
		h.mgrs["L"].Send("R", proto.Message{Kind: proto.KPublish, Hops: i})
	}
	h.mgrs["L"].RemovePeer("R")
	if recs, err := st.ReplayFrom(spillQueue("L", "R"), 0); err != nil || len(recs) != 3 {
		t.Fatalf("parked %d records (err=%v), want 3", len(recs), err)
	}
	h.mgrs["L"].AddPeer("R", true)
	if info := h.mgrs["L"].Info(); info[0].SpillDepth != 3 {
		t.Fatalf("rediscovered spill depth = %d, want 3", info[0].SpillDepth)
	}
	h.cutLink = false
	h.advance(time.Second)
	wantSeq(t, got, 1, 3)
}
