package routing

import (
	"sort"

	"rebeca/internal/message"
	"rebeca/internal/proto"
)

// Forward is a routing decision: send the subscription (or unsubscription)
// on the given link.
type Forward struct {
	Link message.NodeID
	Sub  proto.Subscription
	// Unsub marks the forward as an unsubscription (or unadvertisement).
	Unsub bool
	// Advertisement marks advertisement-table traffic.
	Advertisement bool
}

// Router augments a Table with the subscription-forwarding algorithm of the
// configured strategy. It tracks, per outgoing link, which subscriptions
// have been forwarded so that the covering optimization can suppress and
// later un-suppress propagation correctly.
//
// A Router belongs to one broker and is driven from its event loop; it is
// not safe for concurrent use.
type Router struct {
	table    *Table
	strategy Strategy
	// forwarded[link][subID] records subscriptions propagated on link.
	forwarded map[message.NodeID]map[message.SubID]bool
	// advBased gates subscription forwarding on advertisement overlap.
	advBased bool
	// advs is the advertisement table (lazily created).
	advs *Table
}

// NewRouter returns a router with an empty, linear-matching table.
func NewRouter(s Strategy) *Router {
	return &Router{
		table:     NewTable(),
		strategy:  s,
		forwarded: make(map[message.NodeID]map[message.SubID]bool),
	}
}

// NewIndexedRouter returns a router whose table uses the counting matching
// index — same semantics, faster matching on large tables.
func NewIndexedRouter(s Strategy) *Router {
	return &Router{
		table:     NewIndexedTable(),
		strategy:  s,
		forwarded: make(map[message.NodeID]map[message.SubID]bool),
	}
}

// Table exposes the underlying routing table (read-mostly access for the
// broker's matching hot path).
func (r *Router) Table() *Table { return r.table }

// Strategy returns the configured strategy.
func (r *Router) Strategy() Strategy { return r.strategy }

// Subscribe records a subscription arriving on fromLink and returns the
// forwards to emit on the broker's other links (brokerLinks excludes client
// ports; subscriptions only propagate into the overlay).
//
// A subscription re-arriving under the same ID from a *different* link is a
// relocation flip (the client moved; its new border re-issued the
// subscription): the entry migrates to the new link and the flip is
// forwarded unconditionally so the whole tree re-points toward the new
// border. No unsubscription is emitted — the flip wave is the cleanup.
//
// A subscription re-arriving unchanged (same ID, same link, same filter) is
// an idempotent re-install — the overlay's sync handshake replays installs
// on every link (re-)establishment — and is *not* re-forwarded on links it
// already went out on: downstream state is intact, and each downstream link
// runs its own replay when it flaps.
func (r *Router) Subscribe(sub proto.Subscription, fromLink message.NodeID, brokerLinks []message.NodeID) []Forward {
	if r.advBased {
		return r.subscribeAdvGated(sub, fromLink, brokerLinks)
	}
	prev, existed := r.table.Get(sub.ID)
	relocated := existed && prev.Link != fromLink
	unchanged := existed && !relocated && prev.Sub.Filter.Key() == sub.Filter.Key()
	r.table.Add(sub, fromLink)
	if r.strategy == StrategyFlooding {
		return nil
	}
	var out []Forward
	for _, link := range brokerLinks {
		if link == fromLink {
			continue
		}
		if unchanged && r.wasForwarded(link, sub.ID) {
			continue
		}
		if !relocated && r.strategy == StrategyCovering && r.coveredOnLink(sub, link) {
			continue
		}
		r.markForwarded(link, sub.ID)
		out = append(out, Forward{Link: link, Sub: sub})
	}
	return out
}

// Unsubscribe removes the subscription and returns the forwards to emit:
// the unsubscription itself on every link it was forwarded on and, under
// covering, any previously suppressed subscriptions that are now uncovered.
func (r *Router) Unsubscribe(id message.SubID, brokerLinks []message.NodeID) []Forward {
	e, ok := r.table.Remove(id)
	if !ok {
		return nil
	}
	var out []Forward
	for _, link := range brokerLinks {
		if !r.wasForwarded(link, id) {
			continue
		}
		delete(r.forwarded[link], id)
		out = append(out, Forward{Link: link, Sub: e.Sub, Unsub: true})
		if r.strategy == StrategyCovering {
			out = append(out, r.unsuppress(e, link)...)
		}
	}
	return out
}

// unsuppress re-forwards subscriptions on link that were covered by the
// removed entry and are not covered by any other forwarded entry.
func (r *Router) unsuppress(removed Entry, link message.NodeID) []Forward {
	var out []Forward
	for _, cand := range r.table.Entries() {
		if cand.Link == link || r.wasForwarded(link, cand.Sub.ID) {
			continue
		}
		if !removed.Sub.Filter.Covers(cand.Sub.Filter) {
			continue
		}
		if r.coveredOnLink(cand.Sub, link) {
			continue
		}
		r.markForwarded(link, cand.Sub.ID)
		out = append(out, Forward{Link: link, Sub: cand.Sub})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Sub.ID < out[j].Sub.ID })
	return out
}

// coveredOnLink reports whether some other subscription already forwarded
// on link covers sub.
func (r *Router) coveredOnLink(sub proto.Subscription, link message.NodeID) bool {
	for id := range r.forwarded[link] {
		e, ok := r.table.Get(id)
		if !ok || e.Sub.ID == sub.ID {
			continue
		}
		if e.Sub.Filter.Covers(sub.Filter) {
			return true
		}
	}
	return false
}

func (r *Router) markForwarded(link message.NodeID, id message.SubID) {
	m, ok := r.forwarded[link]
	if !ok {
		m = make(map[message.SubID]bool)
		r.forwarded[link] = m
	}
	m[id] = true
}

func (r *Router) wasForwarded(link message.NodeID, id message.SubID) bool {
	return r.forwarded[link][id]
}

// ForwardedOn returns how many subscriptions are currently forwarded on the
// link — the downstream table pressure this broker causes (E3 metric).
func (r *Router) ForwardedOn(link message.NodeID) int { return len(r.forwarded[link]) }
