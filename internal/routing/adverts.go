package routing

import (
	"rebeca/internal/filter"
	"rebeca/internal/message"
	"rebeca/internal/proto"
)

// Advertisement-based routing (REBECA [3], evaluated in [16]): publishers
// announce the kinds of notifications they will publish; subscriptions are
// then forwarded only toward brokers from whose direction an overlapping
// advertisement arrived, instead of flooding the whole overlay. On a large
// network with localized publishers this prunes most of the subscription
// state.
//
// The Router keeps a second (F,L) table for advertisements. Advertisements
// themselves flood (they are typically few and long-lived); the overlap
// relation — conservative in the "may overlap" direction — gates
// subscription forwarding. A late advertisement re-triggers forwarding of
// the subscriptions it unlocks; an unadvertisement withdraws subscriptions
// that no remaining advertisement on that link justifies.

// EnableAdvertisements switches the router to advertisement-based
// subscription forwarding. Call before any subscription is processed.
func (r *Router) EnableAdvertisements() {
	r.advBased = true
	if r.advs == nil {
		r.advs = NewTable()
	}
}

// AdvertisementBased reports whether advertisement gating is on.
func (r *Router) AdvertisementBased() bool { return r.advBased }

// AdvTable exposes the advertisement table (tests, experiments).
func (r *Router) AdvTable() *Table {
	if r.advs == nil {
		r.advs = NewTable()
	}
	return r.advs
}

// Advertise records an advertisement arriving on fromLink and returns the
// forwards to emit: the advertisement floods to every other link, and any
// local subscriptions newly justified toward fromLink are (re)forwarded.
func (r *Router) Advertise(adv proto.Subscription, fromLink message.NodeID, brokerLinks []message.NodeID) []Forward {
	r.AdvTable().Add(adv, fromLink)
	var out []Forward
	for _, link := range brokerLinks {
		if link == fromLink {
			continue
		}
		out = append(out, Forward{Link: link, Sub: adv, Advertisement: true})
	}
	if !r.advBased {
		return out
	}
	// Unlock subscriptions toward the advertiser's direction.
	for _, e := range r.table.Entries() {
		if e.Link == fromLink || r.wasForwarded(fromLink, e.Sub.ID) {
			continue
		}
		if !adv.Filter.Overlaps(e.Sub.Filter) {
			continue
		}
		r.markForwarded(fromLink, e.Sub.ID)
		out = append(out, Forward{Link: fromLink, Sub: e.Sub})
	}
	return out
}

// Unadvertise withdraws an advertisement and returns the forwards to emit:
// the unadvertisement floods along the links the advertisement went, and
// subscriptions that lose their last justification toward the
// advertisement's link are unsubscribed there.
func (r *Router) Unadvertise(id message.SubID, brokerLinks []message.NodeID) []Forward {
	e, ok := r.AdvTable().Remove(id)
	if !ok {
		return nil
	}
	var out []Forward
	for _, link := range brokerLinks {
		if link == e.Link {
			continue
		}
		out = append(out, Forward{Link: link, Sub: e.Sub, Unsub: true, Advertisement: true})
	}
	if !r.advBased {
		return out
	}
	for _, se := range r.table.Entries() {
		if !r.wasForwarded(e.Link, se.Sub.ID) {
			continue
		}
		if r.advOverlapsOnLink(e.Link, se.Sub.Filter) {
			continue // still justified by another advertisement
		}
		delete(r.forwarded[e.Link], se.Sub.ID)
		out = append(out, Forward{Link: e.Link, Sub: se.Sub, Unsub: true})
	}
	return out
}

// advOverlapsOnLink reports whether any advertisement from the link
// overlaps the filter.
func (r *Router) advOverlapsOnLink(link message.NodeID, f filter.Filter) bool {
	if r.advs == nil {
		return false
	}
	for _, e := range r.advs.ByLink(link) {
		if e.Sub.Filter.Overlaps(f) {
			return true
		}
	}
	return false
}

// subscribeAdvGated mirrors Subscribe under advertisement gating.
func (r *Router) subscribeAdvGated(sub proto.Subscription, fromLink message.NodeID, brokerLinks []message.NodeID) []Forward {
	prev, existed := r.table.Get(sub.ID)
	relocated := existed && prev.Link != fromLink
	r.table.Add(sub, fromLink)
	var out []Forward
	for _, link := range brokerLinks {
		if link == fromLink {
			continue
		}
		if !r.advOverlapsOnLink(link, sub.Filter) {
			continue
		}
		if !relocated && r.strategy == StrategyCovering && r.coveredOnLink(sub, link) {
			continue
		}
		if !relocated && r.wasForwarded(link, sub.ID) {
			continue
		}
		r.markForwarded(link, sub.ID)
		out = append(out, Forward{Link: link, Sub: sub})
	}
	return out
}
