package routing

import (
	"testing"

	"rebeca/internal/filter"
	"rebeca/internal/message"
)

func newAdvRouter() *Router {
	r := NewRouter(StrategySimple)
	r.EnableAdvertisements()
	return r
}

func TestAdvertiseFloods(t *testing.T) {
	r := newAdvRouter()
	links := []message.NodeID{"L1", "L2", "L3"}
	fw := r.Advertise(sub("a1", eqF("t", 1)), "L1", links)
	if len(fw) != 2 {
		t.Fatalf("adv forwards = %d, want 2", len(fw))
	}
	for _, f := range fw {
		if !f.Advertisement || f.Unsub {
			t.Errorf("bad forward %+v", f)
		}
	}
	if r.AdvTable().Len() != 1 {
		t.Error("advertisement not recorded")
	}
}

func TestSubscribeGatedByAdvertisements(t *testing.T) {
	r := newAdvRouter()
	links := []message.NodeID{"L1", "L2", "L3"}
	// Publisher direction: advertisement arrived from L1 only.
	r.Advertise(sub("a1", eqF("t", 1)), "L1", links)

	fw := r.Subscribe(sub("s1", eqF("t", 1)), "L2", links)
	if len(fw) != 1 || fw[0].Link != "L1" {
		t.Fatalf("gated forwards = %v, want just L1", fw)
	}
	// Non-overlapping subscription travels nowhere.
	fw = r.Subscribe(sub("s2", eqF("t", 99)), "L2", links)
	if len(fw) != 0 {
		t.Errorf("non-overlapping sub forwarded: %v", fw)
	}
}

func TestLateAdvertisementUnlocksSubscription(t *testing.T) {
	r := newAdvRouter()
	links := []message.NodeID{"L1", "L2", "L3"}
	if fw := r.Subscribe(sub("s1", eqF("t", 1)), "L2", links); len(fw) != 0 {
		t.Fatalf("sub without advs forwarded: %v", fw)
	}
	fw := r.Advertise(sub("a1", eqF("t", 1)), "L3", links)
	var unlocked bool
	for _, f := range fw {
		if !f.Advertisement && f.Sub.ID == "s1" && f.Link == "L3" {
			unlocked = true
		}
	}
	if !unlocked {
		t.Errorf("late advertisement must re-forward the subscription: %v", fw)
	}
}

func TestUnadvertiseWithdrawsSubscriptions(t *testing.T) {
	r := newAdvRouter()
	links := []message.NodeID{"L1", "L2"}
	r.Advertise(sub("a1", eqF("t", 1)), "L1", links)
	r.Subscribe(sub("s1", eqF("t", 1)), "L2", links)

	fw := r.Unadvertise("a1", links)
	var unsub, unadv bool
	for _, f := range fw {
		if f.Advertisement && f.Unsub {
			unadv = true
		}
		if !f.Advertisement && f.Unsub && f.Sub.ID == "s1" && f.Link == "L1" {
			unsub = true
		}
	}
	if !unadv || !unsub {
		t.Errorf("unadvertise forwards = %v, want unadv flood + sub withdrawal", fw)
	}
}

func TestUnadvertiseKeepsJustifiedSubscriptions(t *testing.T) {
	r := newAdvRouter()
	links := []message.NodeID{"L1", "L2"}
	r.Advertise(sub("a1", eqF("t", 1)), "L1", links)
	r.Advertise(sub("a2", filter.New(filter.Exists("t"))), "L1", links)
	r.Subscribe(sub("s1", eqF("t", 1)), "L2", links)

	fw := r.Unadvertise("a1", links)
	for _, f := range fw {
		if !f.Advertisement && f.Unsub {
			t.Errorf("subscription withdrawn despite remaining advertisement: %v", f)
		}
	}
}

func TestAdvGatedRelocationFlip(t *testing.T) {
	r := newAdvRouter()
	links := []message.NodeID{"L1", "L2", "L3"}
	r.Advertise(sub("a1", eqF("t", 1)), "L1", links)
	r.Subscribe(sub("s1", eqF("t", 1)), "L2", links)
	// Relocation: s1 re-arrives from L3; the flip must still go toward the
	// advertiser.
	fw := r.Subscribe(sub("s1", eqF("t", 1)), "L3", links)
	found := false
	for _, f := range fw {
		if f.Link == "L1" && !f.Unsub {
			found = true
		}
	}
	if !found {
		t.Errorf("flip under advertisements missing: %v", fw)
	}
	if e, _ := r.Table().Get("s1"); e.Link != "L3" {
		t.Errorf("entry link = %s, want L3", e.Link)
	}
}

func TestUnknownUnadvertiseNoop(t *testing.T) {
	r := newAdvRouter()
	if fw := r.Unadvertise("ghost", []message.NodeID{"L1"}); fw != nil {
		t.Errorf("unknown unadvertise produced forwards: %v", fw)
	}
}
