package routing_test

import (
	"fmt"
	"math/rand"
	"testing"

	"rebeca/internal/filter"
	"rebeca/internal/message"
	"rebeca/internal/proto"
	"rebeca/internal/routing"
)

// fillTable populates a table with n two-constraint subscriptions spread
// over 8 links and 50 rooms — the shape the E3 routing experiments use.
func fillTable(tb *routing.Table, n int, rng *rand.Rand) {
	for i := 0; i < n; i++ {
		f := filter.New(
			filter.Eq("service", message.String("temperature")),
			filter.Eq("location", message.String(fmt.Sprintf("room-%d", rng.Intn(50)))),
		)
		tb.Add(proto.Subscription{ID: message.SubID(fmt.Sprintf("s%d", i)), Filter: f},
			message.NodeID(fmt.Sprintf("L%d", i%8)))
	}
}

func benchNotes(rng *rand.Rand) []message.Notification {
	notes := make([]message.Notification, 256)
	for i := range notes {
		notes[i] = message.NewNotification(map[string]message.Value{
			"service":  message.String("temperature"),
			"location": message.String(fmt.Sprintf("room-%d", rng.Intn(50))),
			"value":    message.Float(rng.Float64() * 40),
		})
	}
	return notes
}

// benchMatch drives Table.Match over a subscription-count sweep. The
// warmup pass grows the table's scratch buffers to their steady-state
// size, so the timed loop measures the allocation-free hot path — the CI
// bench job gates on the indexed variant reporting 0 allocs/op.
func benchMatch(b *testing.B, newTable func() *routing.Table) {
	for _, subs := range []int{10, 100, 1000, 10000} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			rng := rand.New(rand.NewSource(7))
			tb := newTable()
			fillTable(tb, subs, rng)
			notes := benchNotes(rng)
			for i := range notes {
				_ = tb.Match(notes[i], "none")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = tb.Match(notes[i%len(notes)], "none")
			}
		})
	}
}

func BenchmarkMatchIndexed(b *testing.B) { benchMatch(b, routing.NewIndexedTable) }
func BenchmarkMatchLinear(b *testing.B)  { benchMatch(b, routing.NewTable) }

// BenchmarkMatchByLink measures the broker's actual publish hot path —
// grouped link matching with port-only ID collection — on the default
// (indexed) table.
func BenchmarkMatchByLink(b *testing.B) {
	for _, subs := range []int{100, 10000} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			rng := rand.New(rand.NewSource(7))
			tb := routing.NewIndexedTable()
			fillTable(tb, subs, rng)
			notes := benchNotes(rng)
			noPorts := func(message.NodeID) bool { return false }
			for i := range notes {
				_ = tb.MatchByLink(notes[i], "none", noPorts)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = tb.MatchByLink(notes[i%len(notes)], "none", noPorts)
			}
		})
	}
}

// BenchmarkTableChurn exercises the removal path the O(n²) fix targets:
// a table holding 10k subscriptions replaces its oldest entry every
// iteration (Remove + Add). Before tombstoned removal each Remove on an
// indexed table rebuilt the whole position map — O(n) per op, O(k·n) for
// a k-entry RemoveLink.
func BenchmarkTableChurn(b *testing.B) {
	for _, variant := range []struct {
		name string
		new  func() *routing.Table
	}{
		{"indexed", routing.NewIndexedTable},
		{"linear", routing.NewTable},
	} {
		b.Run(variant.name, func(b *testing.B) {
			const n = 10000
			rng := rand.New(rand.NewSource(7))
			tb := variant.new()
			fillTable(tb, n, rng)
			f := filter.New(filter.Eq("service", message.String("churn")))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				old := message.SubID(fmt.Sprintf("s%d", i%n))
				if i >= n {
					old = message.SubID(fmt.Sprintf("c%d", i-n))
				}
				if _, ok := tb.Remove(old); !ok {
					b.Fatalf("missing %s", old)
				}
				tb.Add(proto.Subscription{ID: message.SubID(fmt.Sprintf("c%d", i)), Filter: f},
					"L0")
			}
			if tb.Len() != n {
				b.Fatalf("table drifted to %d entries", tb.Len())
			}
		})
	}
}

// BenchmarkRemoveLink churns whole links: 10k subscriptions across 8
// links, dropping and re-adding one link's ~1250 entries per iteration.
func BenchmarkRemoveLink(b *testing.B) {
	const n = 10000
	rng := rand.New(rand.NewSource(7))
	tb := routing.NewIndexedTable()
	fillTable(tb, n, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		removed := tb.RemoveLink(message.NodeID(fmt.Sprintf("L%d", i%8)))
		for _, e := range removed {
			tb.Add(e.Sub, e.Link)
		}
	}
}
