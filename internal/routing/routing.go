// Package routing implements the broker routing tables of §2: entries are
// (filter, link) pairs; a matching notification is forwarded along every
// link with a matching entry. The basic strategy is simple routing (active
// filters flood to all other links); the covering optimization suppresses
// forwarding of subscriptions already covered on a link, and flooding is
// the strategy-free baseline.
package routing

import (
	"fmt"
	"slices"
	"strings"

	"rebeca/internal/filter"
	"rebeca/internal/message"
	"rebeca/internal/proto"
)

// Strategy selects the subscription-forwarding algorithm. Enums start at
// one; the zero Strategy is invalid.
type Strategy int

// Supported strategies.
const (
	StrategyInvalid Strategy = iota
	// StrategySimple forwards every subscription on every other link (§2
	// "active filters are simply added to the routing table").
	StrategySimple
	// StrategyCovering suppresses forwarding of subscriptions covered by a
	// subscription already forwarded on the same link, and un-suppresses
	// on unsubscription (the "covering" improvement of §2).
	StrategyCovering
	// StrategyFlooding forwards no subscriptions at all; notifications are
	// broadcast along the overlay instead (baseline).
	StrategyFlooding
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategySimple:
		return "simple"
	case StrategyCovering:
		return "covering"
	case StrategyFlooding:
		return "flooding"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Entry is one routing table row: a subscription and the link it arrived
// from (notifications matching Filter are forwarded *to* Link).
type Entry struct {
	Sub  proto.Subscription
	Link message.NodeID
}

// Table is a broker's routing table. It is not safe for concurrent use;
// each broker drives its table from its single event loop — which is also
// what lets the Match methods hand out reusable scratch buffers instead of
// allocating per notification.
type Table struct {
	entries map[message.SubID]Entry
	// order holds insertion order for deterministic iteration. Removal
	// tombstones in place (the id stays until compaction); an id is live
	// at position i iff it is present in entries and pos[id] == i, which
	// also skips the stale occurrence left behind when a removed id is
	// re-added.
	order []message.SubID
	// pos maps each live entry to its position in order.
	pos map[message.SubID]int
	// dead counts tombstones in order; compact() runs when they dominate.
	dead int
	// index, when non-nil, accelerates Match/MatchEntries with the
	// predicate-counting matching index (the default; linear scanning
	// remains as the E3 ablation).
	index *filter.Index

	// Reusable match scratch. seenLinks doubles as the per-call dedup set
	// and link->result-index map; the result slices are recycled across
	// calls (see the Match methods' aliasing contract). lm is
	// double-buffered so one level of re-entrant matching — a middleware
	// stage publishing from inside a delivery hook — cannot clobber a
	// result set its caller is still iterating.
	seenLinks map[message.NodeID]int
	linkBuf   []message.NodeID
	entryBuf  []Entry
	lmBuf     [2][]LinkMatch
	lmFlip    int
}

// NewTable returns an empty table using linear matching.
func NewTable() *Table {
	return &Table{
		entries:   make(map[message.SubID]Entry),
		pos:       make(map[message.SubID]int),
		seenLinks: make(map[message.NodeID]int),
	}
}

// NewIndexedTable returns an empty table backed by the counting index —
// same semantics as NewTable, faster matching on large tables.
func NewIndexedTable() *Table {
	t := NewTable()
	t.index = filter.NewIndex()
	return t
}

// Indexed reports whether the table uses the matching index.
func (t *Table) Indexed() bool { return t.index != nil }

// live reports whether the id at order position i is a current entry (not
// a tombstone, not a stale duplicate of a re-added id). With no tombstones
// outstanding every slot is live, so the position check — a second map
// lookup — is skipped on clean tables.
func (t *Table) live(id message.SubID, i int) (Entry, bool) {
	e, ok := t.entries[id]
	if !ok || (t.dead > 0 && t.pos[id] != i) {
		return Entry{}, false
	}
	return e, true
}

// Add inserts or replaces the entry for the subscription ID. It returns
// true when an entry with this ID already existed (re-subscription after
// relocation replaces the link).
func (t *Table) Add(sub proto.Subscription, link message.NodeID) (replaced bool) {
	if _, ok := t.entries[sub.ID]; ok {
		replaced = true
	} else {
		t.order = append(t.order, sub.ID)
		t.pos[sub.ID] = len(t.order) - 1
	}
	t.entries[sub.ID] = Entry{Sub: sub, Link: link}
	if t.index != nil {
		t.index.Add(string(sub.ID), sub.Filter)
	}
	return replaced
}

// Remove deletes the entry for the ID, returning it. Removal is O(1)
// amortized: the order slot is tombstoned and reclaimed by a periodic
// compaction instead of shifting (and re-numbering) every later entry.
func (t *Table) Remove(id message.SubID) (Entry, bool) {
	e, ok := t.entries[id]
	if !ok {
		return Entry{}, false
	}
	delete(t.entries, id)
	delete(t.pos, id)
	t.dead++
	if t.index != nil {
		t.index.Remove(string(id))
	}
	if t.dead > 64 && t.dead > len(t.order)/2 {
		t.compact()
	}
	return e, true
}

// compact rewrites order without tombstones and renumbers pos. Amortized
// against the removals that created the tombstones, this keeps every
// iteration O(live entries) while Remove stays O(1).
func (t *Table) compact() {
	w := 0
	for i, id := range t.order {
		if _, ok := t.live(id, i); !ok {
			continue
		}
		t.order[w] = id
		t.pos[id] = w
		w++
	}
	t.order = t.order[:w]
	t.dead = 0
}

// Get returns the entry for the ID.
func (t *Table) Get(id message.SubID) (Entry, bool) {
	e, ok := t.entries[id]
	return e, ok
}

// Len returns the number of entries.
func (t *Table) Len() int { return len(t.entries) }

// Entries returns all entries in insertion order.
func (t *Table) Entries() []Entry {
	out := make([]Entry, 0, len(t.entries))
	for i, id := range t.order {
		if e, ok := t.live(id, i); ok {
			out = append(out, e)
		}
	}
	return out
}

// Match returns the deduplicated, sorted set of links whose entries match
// the notification, excluding the link the notification arrived from (a
// notification is never reflected back).
//
// The returned slice is a reusable scratch buffer owned by the table: it
// is valid until the next Match call and must not be retained or sent
// across goroutines. On the indexed path the whole call is allocation
// free.
func (t *Table) Match(n message.Notification, from message.NodeID) []message.NodeID {
	seen := t.seenLinks
	clear(seen)
	out := t.linkBuf[:0]
	add := func(e Entry) {
		if e.Link == from {
			return
		}
		if _, dup := seen[e.Link]; dup {
			return
		}
		seen[e.Link] = 0
		out = append(out, e.Link)
	}
	if t.index != nil {
		t.index.Match(n, func(key string) {
			add(t.entries[message.SubID(key)])
		})
	} else {
		for i, id := range t.order {
			e, ok := t.live(id, i)
			if !ok || e.Link == from {
				continue
			}
			// Dedup before evaluating: once a link matched, the remaining
			// entries behind it need no filter work at all.
			if _, dup := seen[e.Link]; dup {
				continue
			}
			if e.Sub.Filter.Matches(n) {
				add(e)
			}
		}
	}
	slices.Sort(out)
	t.linkBuf = out
	return out
}

// LinkMatch groups the matching subscription IDs behind one link: the
// notification is transmitted once per link, and the IDs travel with the
// delivery so clients can route it to the right per-subscription streams.
type LinkMatch struct {
	Link message.NodeID
	Subs []message.SubID
}

// MatchByLink returns one LinkMatch per matching link, excluding the link
// the notification arrived from, with the matching subscription IDs
// collected per link. needSubs, when non-nil, limits the ID collection to
// the links it selects (brokers pass their local-port predicate: peer
// forwards carry no subscription identity, so collecting their IDs on the
// hot publish path would be wasted allocation). Links are sorted; IDs
// keep table insertion order.
//
// The returned slice is table-owned scratch: callers must finish with it
// before running any code that could match on this table again — the
// broker copies port deliveries out and releases the buffer before its
// delivery hooks (which may synchronously publish) run. Double-buffering
// additionally tolerates a single overlapping use as defense in depth.
// The Subs slices are freshly allocated (they travel on KDeliver
// messages and outlive the call); only the grouping structure is
// recycled.
func (t *Table) MatchByLink(n message.Notification, from message.NodeID, needSubs func(message.NodeID) bool) []LinkMatch {
	ents := t.matchEntriesScratch(n)
	byLink := t.seenLinks
	clear(byLink)
	buf := &t.lmBuf[t.lmFlip]
	t.lmFlip = 1 - t.lmFlip
	out := (*buf)[:0]
	for _, e := range ents {
		if e.Link == from {
			continue
		}
		i, ok := byLink[e.Link]
		if !ok {
			i = len(out)
			byLink[e.Link] = i
			// Subs must not alias a previous call's result: those slices
			// escape into queued deliveries. Reset to nil, never to [:0].
			out = append(out, LinkMatch{Link: e.Link})
		}
		if needSubs == nil || needSubs(e.Link) {
			out[i].Subs = append(out[i].Subs, e.Sub.ID)
		}
	}
	slices.SortFunc(out, func(a, b LinkMatch) int {
		return strings.Compare(string(a.Link), string(b.Link))
	})
	*buf = out
	return out
}

// MatchEntries returns every entry whose filter matches, in insertion
// order, regardless of link — used by border brokers to fan out to local
// clients per subscription. The result is freshly allocated (callers may
// retain it); the broker hot path goes through MatchByLink instead.
func (t *Table) MatchEntries(n message.Notification) []Entry {
	return slices.Clone(t.matchEntriesScratch(n))
}

// matchEntriesScratch is MatchEntries into the table's reusable entry
// buffer: valid until the next Match/MatchByLink/MatchEntries call.
func (t *Table) matchEntriesScratch(n message.Notification) []Entry {
	out := t.entryBuf[:0]
	if t.index != nil {
		t.index.Match(n, func(key string) {
			out = append(out, t.entries[message.SubID(key)])
		})
		// The index visits counted matches in attribute-map order; restore
		// the table's insertion order (documented contract, and what the
		// per-subscription stream tests pin down).
		slices.SortFunc(out, func(a, b Entry) int {
			return t.pos[a.Sub.ID] - t.pos[b.Sub.ID]
		})
		t.entryBuf = out
		return out
	}
	for i, id := range t.order {
		e, ok := t.live(id, i)
		if !ok {
			continue
		}
		if e.Sub.Filter.Matches(n) {
			out = append(out, e)
		}
	}
	t.entryBuf = out
	return out
}

// ByLink returns all entries received from the given link.
func (t *Table) ByLink(link message.NodeID) []Entry {
	var out []Entry
	for i, id := range t.order {
		if e, ok := t.live(id, i); ok && e.Link == link {
			out = append(out, e)
		}
	}
	return out
}

// RemoveLink drops every entry from the given link (link/broker failure or
// client detach), returning the removed entries. With tombstoned removal
// this is O(order + removed), not O(removed × table).
func (t *Table) RemoveLink(link message.NodeID) []Entry {
	var ids []message.SubID
	for i, id := range t.order {
		if e, ok := t.live(id, i); ok && e.Link == link {
			ids = append(ids, id)
		}
	}
	var removed []Entry
	for _, id := range ids {
		if e, ok := t.Remove(id); ok {
			removed = append(removed, e)
		}
	}
	return removed
}

// CoveredBy returns the IDs of entries on `link` whose filters cover f,
// excluding the entry with id `self`.
func (t *Table) CoveredBy(f filter.Filter, link message.NodeID, self message.SubID) []message.SubID {
	var out []message.SubID
	for i, id := range t.order {
		e, ok := t.live(id, i)
		if !ok || id == self || e.Link != link {
			continue
		}
		if e.Sub.Filter.Covers(f) {
			out = append(out, id)
		}
	}
	return out
}
