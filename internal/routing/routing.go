// Package routing implements the broker routing tables of §2: entries are
// (filter, link) pairs; a matching notification is forwarded along every
// link with a matching entry. The basic strategy is simple routing (active
// filters flood to all other links); the covering optimization suppresses
// forwarding of subscriptions already covered on a link, and flooding is
// the strategy-free baseline.
package routing

import (
	"fmt"
	"sort"

	"rebeca/internal/filter"
	"rebeca/internal/message"
	"rebeca/internal/proto"
)

// Strategy selects the subscription-forwarding algorithm. Enums start at
// one; the zero Strategy is invalid.
type Strategy int

// Supported strategies.
const (
	StrategyInvalid Strategy = iota
	// StrategySimple forwards every subscription on every other link (§2
	// "active filters are simply added to the routing table").
	StrategySimple
	// StrategyCovering suppresses forwarding of subscriptions covered by a
	// subscription already forwarded on the same link, and un-suppresses
	// on unsubscription (the "covering" improvement of §2).
	StrategyCovering
	// StrategyFlooding forwards no subscriptions at all; notifications are
	// broadcast along the overlay instead (baseline).
	StrategyFlooding
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategySimple:
		return "simple"
	case StrategyCovering:
		return "covering"
	case StrategyFlooding:
		return "flooding"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Entry is one routing table row: a subscription and the link it arrived
// from (notifications matching Filter are forwarded *to* Link).
type Entry struct {
	Sub  proto.Subscription
	Link message.NodeID
}

// Table is a broker's routing table. It is not safe for concurrent use;
// each broker drives its table from its single event loop.
type Table struct {
	entries map[message.SubID]Entry
	order   []message.SubID // insertion order for deterministic iteration
	// index, when non-nil, accelerates Match/MatchEntries with the
	// predicate-counting matching index (E3 ablation).
	index *filter.Index
	// pos caches each entry's insertion position for ordered index hits.
	pos map[message.SubID]int
}

// NewTable returns an empty table using linear matching.
func NewTable() *Table {
	return &Table{entries: make(map[message.SubID]Entry)}
}

// NewIndexedTable returns an empty table backed by the counting index —
// same semantics as NewTable, faster matching on large tables.
func NewIndexedTable() *Table {
	return &Table{
		entries: make(map[message.SubID]Entry),
		index:   filter.NewIndex(),
		pos:     make(map[message.SubID]int),
	}
}

// Indexed reports whether the table uses the matching index.
func (t *Table) Indexed() bool { return t.index != nil }

// Add inserts or replaces the entry for the subscription ID. It returns
// true when an entry with this ID already existed (re-subscription after
// relocation replaces the link).
func (t *Table) Add(sub proto.Subscription, link message.NodeID) (replaced bool) {
	if _, ok := t.entries[sub.ID]; ok {
		replaced = true
	} else {
		t.order = append(t.order, sub.ID)
	}
	t.entries[sub.ID] = Entry{Sub: sub, Link: link}
	if t.index != nil {
		t.index.Add(string(sub.ID), sub.Filter)
		if !replaced {
			t.pos[sub.ID] = len(t.order) - 1
		}
	}
	return replaced
}

// Remove deletes the entry for the ID, returning it.
func (t *Table) Remove(id message.SubID) (Entry, bool) {
	e, ok := t.entries[id]
	if !ok {
		return Entry{}, false
	}
	delete(t.entries, id)
	for i, oid := range t.order {
		if oid == id {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
	if t.index != nil {
		t.index.Remove(string(id))
		delete(t.pos, id)
		for i, oid := range t.order {
			t.pos[oid] = i
		}
	}
	return e, true
}

// Get returns the entry for the ID.
func (t *Table) Get(id message.SubID) (Entry, bool) {
	e, ok := t.entries[id]
	return e, ok
}

// Len returns the number of entries.
func (t *Table) Len() int { return len(t.entries) }

// Entries returns all entries in insertion order.
func (t *Table) Entries() []Entry {
	out := make([]Entry, 0, len(t.order))
	for _, id := range t.order {
		out = append(out, t.entries[id])
	}
	return out
}

// Match returns the deduplicated set of links whose entries match the
// notification, excluding the link the notification arrived from (a
// notification is never reflected back).
func (t *Table) Match(n message.Notification, from message.NodeID) []message.NodeID {
	seen := make(map[message.NodeID]bool)
	var out []message.NodeID
	if t.index != nil {
		t.index.Match(n, func(key string) {
			e := t.entries[message.SubID(key)]
			if e.Link == from || seen[e.Link] {
				return
			}
			seen[e.Link] = true
			out = append(out, e.Link)
		})
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	for _, id := range t.order {
		e := t.entries[id]
		if e.Link == from || seen[e.Link] {
			continue
		}
		if e.Sub.Filter.Matches(n) {
			seen[e.Link] = true
			out = append(out, e.Link)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LinkMatch groups the matching subscription IDs behind one link: the
// notification is transmitted once per link, and the IDs travel with the
// delivery so clients can route it to the right per-subscription streams.
type LinkMatch struct {
	Link message.NodeID
	Subs []message.SubID
}

// MatchByLink returns one LinkMatch per matching link, excluding the link
// the notification arrived from, with the matching subscription IDs
// collected per link. needSubs, when non-nil, limits the ID collection to
// the links it selects (brokers pass their local-port predicate: peer
// forwards carry no subscription identity, so collecting their IDs on the
// hot publish path would be wasted allocation). Links are sorted; IDs
// keep table insertion order.
func (t *Table) MatchByLink(n message.Notification, from message.NodeID, needSubs func(message.NodeID) bool) []LinkMatch {
	byLink := make(map[message.NodeID]int)
	var out []LinkMatch
	add := func(e Entry) {
		if e.Link == from {
			return
		}
		i, ok := byLink[e.Link]
		if !ok {
			i = len(out)
			byLink[e.Link] = i
			out = append(out, LinkMatch{Link: e.Link})
		}
		if needSubs == nil || needSubs(e.Link) {
			out[i].Subs = append(out[i].Subs, e.Sub.ID)
		}
	}
	for _, e := range t.MatchEntries(n) {
		add(e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Link < out[j].Link })
	return out
}

// MatchEntries returns every entry whose filter matches, regardless of
// link — used by border brokers to fan out to local clients per
// subscription.
func (t *Table) MatchEntries(n message.Notification) []Entry {
	var out []Entry
	if t.index != nil {
		t.index.Match(n, func(key string) {
			out = append(out, t.entries[message.SubID(key)])
		})
		sort.Slice(out, func(i, j int) bool {
			return t.pos[out[i].Sub.ID] < t.pos[out[j].Sub.ID]
		})
		return out
	}
	for _, id := range t.order {
		e := t.entries[id]
		if e.Sub.Filter.Matches(n) {
			out = append(out, e)
		}
	}
	return out
}

// ByLink returns all entries received from the given link.
func (t *Table) ByLink(link message.NodeID) []Entry {
	var out []Entry
	for _, id := range t.order {
		if e := t.entries[id]; e.Link == link {
			out = append(out, e)
		}
	}
	return out
}

// RemoveLink drops every entry from the given link (link/broker failure or
// client detach), returning the removed entries.
func (t *Table) RemoveLink(link message.NodeID) []Entry {
	var removed []Entry
	for _, id := range append([]message.SubID(nil), t.order...) {
		if e := t.entries[id]; e.Link == link {
			t.Remove(id)
			removed = append(removed, e)
		}
	}
	return removed
}

// CoveredBy returns the IDs of entries on `link` whose filters cover f,
// excluding the entry with id `self`.
func (t *Table) CoveredBy(f filter.Filter, link message.NodeID, self message.SubID) []message.SubID {
	var out []message.SubID
	for _, id := range t.order {
		e := t.entries[id]
		if id == self || e.Link != link {
			continue
		}
		if e.Sub.Filter.Covers(f) {
			out = append(out, id)
		}
	}
	return out
}
