package routing

import (
	"fmt"
	"math/rand"
	"testing"

	"rebeca/internal/filter"
	"rebeca/internal/message"
	"rebeca/internal/proto"
)

func churnSub(i int) proto.Subscription {
	return proto.Subscription{
		ID:     message.SubID(fmt.Sprintf("s%d", i)),
		Filter: filter.New(filter.Eq("k", message.Int(int64(i%5)))),
	}
}

// TestTableChurnKeepsOrderAndMatches drives enough remove/re-add cycles to
// cross the compaction threshold repeatedly and checks the tombstoned
// order against a straightforwardly maintained model: insertion order of
// the live entries, Match results and Len must never drift.
func TestTableChurnKeepsOrderAndMatches(t *testing.T) {
	for _, indexed := range []bool{false, true} {
		t.Run(fmt.Sprintf("indexed=%v", indexed), func(t *testing.T) {
			tb := NewTable()
			if indexed {
				tb = NewIndexedTable()
			}
			rng := rand.New(rand.NewSource(42))
			var model []proto.Subscription // live entries in insertion order
			next := 0
			add := func() {
				s := churnSub(next)
				next++
				tb.Add(s, message.NodeID(fmt.Sprintf("L%d", next%3)))
				model = append(model, s)
			}
			removeAt := func(i int) {
				id := model[i].ID
				if _, ok := tb.Remove(id); !ok {
					t.Fatalf("remove %s failed", id)
				}
				model = append(model[:i], model[i+1:]...)
			}
			for i := 0; i < 200; i++ {
				add()
			}
			for round := 0; round < 2000; round++ {
				switch {
				case len(model) == 0 || rng.Intn(3) == 0:
					add()
				case rng.Intn(4) == 0:
					// Re-add a removed id: exercises the stale-duplicate slot.
					i := rng.Intn(len(model))
					s := model[i]
					removeAt(i)
					tb.Add(s, "L9")
					model = append(model, s)
				default:
					removeAt(rng.Intn(len(model)))
				}
			}
			if tb.Len() != len(model) {
				t.Fatalf("Len = %d, want %d", tb.Len(), len(model))
			}
			got := tb.Entries()
			if len(got) != len(model) {
				t.Fatalf("Entries len = %d, want %d", len(got), len(model))
			}
			for i := range model {
				if got[i].Sub.ID != model[i].ID {
					t.Fatalf("insertion order drifted at %d: %s vs %s", i, got[i].Sub.ID, model[i].ID)
				}
			}
			// Match agreement with a naive scan over the model.
			for k := int64(0); k < 5; k++ {
				n := message.NewNotification(map[string]message.Value{"k": message.Int(k)})
				want := map[message.NodeID]bool{}
				for _, s := range model {
					if s.Filter.Matches(n) {
						e, _ := tb.Get(s.ID)
						want[e.Link] = true
					}
				}
				links := tb.Match(n, "none")
				if len(links) != len(want) {
					t.Fatalf("k=%d: Match = %v, want %d links", k, links, len(want))
				}
				for _, l := range links {
					if !want[l] {
						t.Fatalf("k=%d: unexpected link %s", k, l)
					}
				}
			}
		})
	}
}

// TestTableRemoveLinkChurn pins the RemoveLink complexity fix's
// semantics: dropping a link removes exactly its entries and preserves
// the others' order, even mid-tombstone.
func TestTableRemoveLinkChurn(t *testing.T) {
	tb := NewIndexedTable()
	for i := 0; i < 300; i++ {
		tb.Add(churnSub(i), message.NodeID(fmt.Sprintf("L%d", i%3)))
	}
	// Punch holes so tombstones are outstanding during RemoveLink.
	for i := 0; i < 300; i += 7 {
		tb.Remove(message.SubID(fmt.Sprintf("s%d", i)))
	}
	removed := tb.RemoveLink("L1")
	for _, e := range removed {
		if e.Link != "L1" {
			t.Fatalf("removed foreign entry %+v", e)
		}
		if _, ok := tb.Get(e.Sub.ID); ok {
			t.Fatalf("%s still present", e.Sub.ID)
		}
	}
	if got := tb.ByLink("L1"); len(got) != 0 {
		t.Fatalf("L1 still has %d entries", len(got))
	}
	prev := -1
	for _, e := range tb.Entries() {
		var i int
		fmt.Sscanf(string(e.Sub.ID), "s%d", &i)
		if i <= prev {
			t.Fatalf("order drifted: s%d after s%d", i, prev)
		}
		prev = i
	}
}

// TestMatchScratchReuseSafety documents the aliasing contract: the result
// of MatchByLink stays intact through one nested MatchByLink call (the
// double buffer), and the Subs slices never alias between calls.
func TestMatchScratchReuseSafety(t *testing.T) {
	tb := NewIndexedTable()
	tb.Add(churnSub(0), "port0")
	tb.Add(churnSub(5), "port1") // k=0 as well
	n := message.NewNotification(map[string]message.Value{"k": message.Int(0)})
	ports := func(message.NodeID) bool { return true }

	first := tb.MatchByLink(n, "none", ports)
	if len(first) != 2 {
		t.Fatalf("want 2 links, got %v", first)
	}
	firstSubs := first[0].Subs
	// A nested (re-entrant) match must not clobber `first`.
	second := tb.MatchByLink(n, "none", ports)
	if len(first) != 2 || first[0].Link != "port0" || len(first[0].Subs) != 1 {
		t.Fatalf("nested MatchByLink clobbered the outer result: %v", first)
	}
	if &firstSubs[0] == &second[0].Subs[0] {
		t.Fatal("Subs slices alias across calls; they escape into queued deliveries")
	}
}
