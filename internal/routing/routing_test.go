package routing

import (
	"fmt"
	"testing"

	"rebeca/internal/filter"
	"rebeca/internal/message"
	"rebeca/internal/proto"
)

func sub(id string, f filter.Filter) proto.Subscription {
	return proto.Subscription{ID: message.SubID(id), Filter: f}
}

func eqF(attr string, v int64) filter.Filter {
	return filter.New(filter.Eq(attr, message.Int(v)))
}

func note(attr string, v int64) message.Notification {
	return message.NewNotification(map[string]message.Value{attr: message.Int(v)})
}

func TestTableAddRemoveGet(t *testing.T) {
	tb := NewTable()
	s := sub("s1", eqF("a", 1))
	if replaced := tb.Add(s, "L1"); replaced {
		t.Error("first add should not report replaced")
	}
	if replaced := tb.Add(s, "L2"); !replaced {
		t.Error("second add with same ID should report replaced")
	}
	e, ok := tb.Get("s1")
	if !ok || e.Link != "L2" {
		t.Errorf("Get = %+v,%v; want link L2", e, ok)
	}
	if _, ok := tb.Remove("s1"); !ok {
		t.Error("Remove should find the entry")
	}
	if _, ok := tb.Remove("s1"); ok {
		t.Error("second Remove should miss")
	}
	if tb.Len() != 0 {
		t.Errorf("Len = %d, want 0", tb.Len())
	}
}

func TestTableMatchExcludesSourceAndDedupes(t *testing.T) {
	tb := NewTable()
	tb.Add(sub("s1", eqF("a", 1)), "L1")
	tb.Add(sub("s2", eqF("a", 1)), "L1") // same link, also matches
	tb.Add(sub("s3", eqF("a", 1)), "L2")
	tb.Add(sub("s4", eqF("a", 2)), "L3")

	links := tb.Match(note("a", 1), "L2")
	if len(links) != 1 || links[0] != "L1" {
		t.Errorf("Match = %v, want [L1]", links)
	}
	links = tb.Match(note("a", 1), "none")
	if len(links) != 2 || links[0] != "L1" || links[1] != "L2" {
		t.Errorf("Match = %v, want [L1 L2]", links)
	}
	if got := tb.Match(note("a", 9), "none"); len(got) != 0 {
		t.Errorf("non-matching notification matched %v", got)
	}
}

func TestTableMatchEntries(t *testing.T) {
	tb := NewTable()
	tb.Add(sub("s1", eqF("a", 1)), "c1")
	tb.Add(sub("s2", eqF("a", 1)), "c2")
	es := tb.MatchEntries(note("a", 1))
	if len(es) != 2 {
		t.Fatalf("MatchEntries len = %d", len(es))
	}
	if es[0].Sub.ID != "s1" || es[1].Sub.ID != "s2" {
		t.Error("MatchEntries should preserve insertion order")
	}
}

func TestTableByLinkAndRemoveLink(t *testing.T) {
	tb := NewTable()
	tb.Add(sub("s1", eqF("a", 1)), "L1")
	tb.Add(sub("s2", eqF("a", 2)), "L1")
	tb.Add(sub("s3", eqF("a", 3)), "L2")
	if got := tb.ByLink("L1"); len(got) != 2 {
		t.Errorf("ByLink(L1) = %d entries", len(got))
	}
	removed := tb.RemoveLink("L1")
	if len(removed) != 2 || tb.Len() != 1 {
		t.Errorf("RemoveLink removed %d, table %d", len(removed), tb.Len())
	}
}

func TestRouterSimpleForwardsEverywhereElse(t *testing.T) {
	r := NewRouter(StrategySimple)
	links := []message.NodeID{"L1", "L2", "L3"}
	fw := r.Subscribe(sub("s1", eqF("a", 1)), "L1", links)
	if len(fw) != 2 {
		t.Fatalf("forwards = %d, want 2", len(fw))
	}
	for _, f := range fw {
		if f.Link == "L1" {
			t.Error("must not forward back to source link")
		}
		if f.Unsub {
			t.Error("subscription forward marked unsub")
		}
	}
}

func TestRouterSimpleUnsubscribe(t *testing.T) {
	r := NewRouter(StrategySimple)
	links := []message.NodeID{"L1", "L2", "L3"}
	r.Subscribe(sub("s1", eqF("a", 1)), "L1", links)
	fw := r.Unsubscribe("s1", links)
	if len(fw) != 2 {
		t.Fatalf("unsub forwards = %d, want 2", len(fw))
	}
	for _, f := range fw {
		if !f.Unsub {
			t.Error("forward should be an unsubscription")
		}
	}
	if fw2 := r.Unsubscribe("s1", links); fw2 != nil {
		t.Error("unknown unsubscribe should produce no forwards")
	}
}

func TestRouterFloodingForwardsNothing(t *testing.T) {
	r := NewRouter(StrategyFlooding)
	fw := r.Subscribe(sub("s1", eqF("a", 1)), "L1", []message.NodeID{"L1", "L2"})
	if len(fw) != 0 {
		t.Error("flooding must not forward subscriptions")
	}
	if r.Table().Len() != 1 {
		t.Error("flooding still records local entries")
	}
}

func TestRouterCoveringSuppression(t *testing.T) {
	r := NewRouter(StrategyCovering)
	links := []message.NodeID{"L1", "L2", "L3"}
	wide := sub("wide", filter.New(filter.Lt("a", message.Int(100))))
	narrow := sub("narrow", filter.New(filter.Lt("a", message.Int(10))))

	fw := r.Subscribe(wide, "L1", links)
	if len(fw) != 2 {
		t.Fatalf("wide forwards = %d, want 2", len(fw))
	}
	// narrow arrives from L2: on L3 it is covered by wide (already
	// forwarded there), so only... wide was forwarded on L2 and L3.
	// narrow needs forwarding on L1 and L3; L3 is covered -> suppressed.
	fw = r.Subscribe(narrow, "L2", links)
	if len(fw) != 1 || fw[0].Link != "L1" {
		t.Fatalf("narrow forwards = %v, want [L1]", fw)
	}
}

func TestRouterCoveringUnsuppressOnUnsubscribe(t *testing.T) {
	r := NewRouter(StrategyCovering)
	links := []message.NodeID{"L1", "L2", "L3"}
	wide := sub("wide", filter.New(filter.Lt("a", message.Int(100))))
	narrow := sub("narrow", filter.New(filter.Lt("a", message.Int(10))))
	r.Subscribe(wide, "L1", links)
	r.Subscribe(narrow, "L2", links)

	fw := r.Unsubscribe("wide", links)
	// Expect: unsub of wide on L2 and L3, plus re-forward (un-suppress) of
	// narrow on L3 (narrow's suppressed link).
	unsubs, resubs := 0, 0
	for _, f := range fw {
		if f.Unsub {
			unsubs++
			if f.Sub.ID != "wide" {
				t.Errorf("unexpected unsub %v", f)
			}
		} else {
			resubs++
			if f.Sub.ID != "narrow" || f.Link != "L3" {
				t.Errorf("unexpected re-forward %v", f)
			}
		}
	}
	if unsubs != 2 || resubs != 1 {
		t.Errorf("unsubs=%d resubs=%d, want 2 and 1", unsubs, resubs)
	}
}

func TestRouterCoveringEquivalentFilters(t *testing.T) {
	// Two identical filters from different links: second is suppressed;
	// removing the first must re-forward the second.
	r := NewRouter(StrategyCovering)
	links := []message.NodeID{"L1", "L2", "L3"}
	a := sub("a", eqF("x", 5))
	b := sub("b", eqF("x", 5))
	r.Subscribe(a, "L1", links)
	fw := r.Subscribe(b, "L2", links)
	// b forwards on L1 (a not forwarded there) but is covered on L3.
	if len(fw) != 1 || fw[0].Link != "L1" {
		t.Fatalf("b forwards = %v", fw)
	}
	fw = r.Unsubscribe("a", links)
	found := false
	for _, f := range fw {
		if !f.Unsub && f.Sub.ID == "b" && f.Link == "L3" {
			found = true
		}
	}
	if !found {
		t.Errorf("b should be re-forwarded on L3 after a leaves, got %v", fw)
	}
}

func TestRouterResubscribeFromNewLinkFlips(t *testing.T) {
	// Relocation: same SubID arrives from a different link; the entry
	// migrates and the flip is forwarded everywhere else — with no
	// unsubscription (the flip wave is the cleanup).
	r := NewRouter(StrategySimple)
	links := []message.NodeID{"L1", "L2", "L3"}
	s := sub("s", eqF("a", 1))
	r.Subscribe(s, "L1", links)
	fw := r.Subscribe(s, "L2", links)
	e, _ := r.Table().Get("s")
	if e.Link != "L2" {
		t.Errorf("entry link = %s, want L2", e.Link)
	}
	var subL1, subL3 bool
	for _, f := range fw {
		if f.Unsub {
			t.Errorf("flip must not emit unsubscriptions: %v", f)
		}
		if f.Link == "L1" {
			subL1 = true
		}
		if f.Link == "L3" {
			subL3 = true
		}
		if f.Link == "L2" {
			t.Error("must not forward back to new source")
		}
	}
	if !subL1 || !subL3 {
		t.Errorf("missing flip forwards: %v", fw)
	}
}

func TestRouterFlipBypassesCoveringSuppression(t *testing.T) {
	// A relocation flip must propagate even when another forwarded
	// subscription covers it, or downstream tables keep stale directions.
	r := NewRouter(StrategyCovering)
	links := []message.NodeID{"L1", "L2", "L3"}
	wide := sub("wide", filter.New(filter.Lt("a", message.Int(100))))
	narrow := sub("narrow", filter.New(filter.Lt("a", message.Int(10))))
	r.Subscribe(wide, "L1", links)
	r.Subscribe(narrow, "L2", links) // suppressed on L3
	fw := r.Subscribe(narrow, "L3", links)
	var flipped []message.NodeID
	for _, f := range fw {
		if f.Sub.ID == "narrow" && !f.Unsub {
			flipped = append(flipped, f.Link)
		}
	}
	if len(flipped) != 2 {
		t.Errorf("flip should forward on both other links, got %v", flipped)
	}
}

func TestRouterForwardedOn(t *testing.T) {
	r := NewRouter(StrategySimple)
	links := []message.NodeID{"L1", "L2"}
	for i := 0; i < 5; i++ {
		r.Subscribe(sub(fmt.Sprintf("s%d", i), eqF("a", int64(i))), "L1", links)
	}
	if got := r.ForwardedOn("L2"); got != 5 {
		t.Errorf("ForwardedOn(L2) = %d, want 5", got)
	}
	if got := r.ForwardedOn("L1"); got != 0 {
		t.Errorf("ForwardedOn(L1) = %d, want 0", got)
	}
}

func TestCoveringNeverLosesDeliveries(t *testing.T) {
	// Soundness of covering vs simple: any notification deliverable under
	// simple routing must reach the same links under covering, given the
	// suppressed subscription's traffic is a subset of the coverer's.
	rs := NewRouter(StrategySimple)
	rc := NewRouter(StrategyCovering)
	links := []message.NodeID{"L1", "L2", "L3"}
	subs := []struct {
		s    proto.Subscription
		from message.NodeID
	}{
		{sub("w", filter.New(filter.Le("a", message.Int(50)))), "L1"},
		{sub("n1", filter.New(filter.Le("a", message.Int(10)))), "L2"},
		{sub("n2", filter.New(filter.Eq("a", message.Int(5)))), "L3"},
	}
	for _, x := range subs {
		rs.Subscribe(x.s, x.from, links)
		rc.Subscribe(x.s, x.from, links)
	}
	for v := int64(0); v <= 60; v += 5 {
		n := note("a", v)
		for _, from := range links {
			ls := rs.Table().Match(n, from)
			lc := rc.Table().Match(n, from)
			if len(ls) != len(lc) {
				t.Fatalf("tables diverge for a=%d from %s: %v vs %v", v, from, ls, lc)
			}
		}
	}
}

func TestTableCoveredBy(t *testing.T) {
	tb := NewTable()
	tb.Add(sub("w", filter.New(filter.Lt("a", message.Int(100)))), "L1")
	tb.Add(sub("n", filter.New(filter.Lt("a", message.Int(10)))), "L1")
	ids := tb.CoveredBy(filter.New(filter.Lt("a", message.Int(5))), "L1", "n")
	if len(ids) != 1 || ids[0] != "w" {
		t.Errorf("CoveredBy = %v, want [w]", ids)
	}
}

func TestStrategyString(t *testing.T) {
	if StrategySimple.String() != "simple" || StrategyCovering.String() != "covering" ||
		StrategyFlooding.String() != "flooding" {
		t.Error("strategy names wrong")
	}
	if Strategy(99).String() == "" {
		t.Error("unknown strategy should still render")
	}
}

// TestIndexedTableEquivalence randomizes operations against both table
// variants and asserts identical Match/MatchEntries results.
func TestIndexedTableEquivalence(t *testing.T) {
	linear, indexed := NewTable(), NewIndexedTable()
	if linear.Indexed() || !indexed.Indexed() {
		t.Fatal("Indexed() misreports")
	}
	type variant struct{ t *Table }
	both := []variant{{linear}, {indexed}}

	subs := []proto.Subscription{
		sub("s1", eqF("a", 1)),
		sub("s2", eqF("a", 2)),
		sub("s3", filter.New(filter.Lt("a", message.Int(5)))),
		sub("s4", filter.New(filter.Exists("b"))),
		sub("s5", filter.New(filter.Eq("a", message.Int(1)), filter.Eq("b", message.Int(2)))),
		sub("s6", filter.All()),
	}
	links := []message.NodeID{"L1", "L2", "L3"}
	for i, s := range subs {
		for _, v := range both {
			v.t.Add(s, links[i%len(links)])
		}
	}
	// Remove one and relocate another.
	for _, v := range both {
		v.t.Remove("s2")
		v.t.Add(subs[0], "L3")
	}
	notes := []message.Notification{
		note("a", 1), note("a", 2), note("a", 4),
		message.NewNotification(map[string]message.Value{"b": message.Int(2)}),
		message.NewNotification(map[string]message.Value{"a": message.Int(1), "b": message.Int(2)}),
		message.NewNotification(map[string]message.Value{"c": message.Int(9)}),
	}
	for _, n := range notes {
		for _, from := range append(links, "none") {
			lm := linear.Match(n, from)
			im := indexed.Match(n, from)
			if len(lm) != len(im) {
				t.Fatalf("Match diverges for %s from %s: %v vs %v", n, from, lm, im)
			}
			for i := range lm {
				if lm[i] != im[i] {
					t.Fatalf("Match order diverges for %s: %v vs %v", n, lm, im)
				}
			}
		}
		le := linear.MatchEntries(n)
		ie := indexed.MatchEntries(n)
		if len(le) != len(ie) {
			t.Fatalf("MatchEntries diverges for %s: %d vs %d", n, len(le), len(ie))
		}
		for i := range le {
			if le[i].Sub.ID != ie[i].Sub.ID {
				t.Fatalf("MatchEntries order diverges for %s: %v vs %v", n, le, ie)
			}
		}
	}
}

func TestTableMatchByLink(t *testing.T) {
	for _, indexed := range []bool{false, true} {
		tb := NewTable()
		if indexed {
			tb = NewIndexedTable()
		}
		tb.Add(sub("s1", filter.New(filter.Eq("a", message.Int(1)))), "L1")
		tb.Add(sub("s2", filter.New(filter.Exists("a"))), "L1")
		tb.Add(sub("s3", filter.New(filter.Exists("a"))), "L2")
		tb.Add(sub("s4", filter.New(filter.Eq("a", message.Int(9)))), "L2")
		tb.Add(sub("s5", filter.New(filter.Exists("a"))), "origin")

		lms := tb.MatchByLink(note("a", 1), "origin", nil)
		if len(lms) != 2 {
			t.Fatalf("indexed=%v: %d links, want 2 (origin excluded): %v", indexed, len(lms), lms)
		}
		if lms[0].Link != "L1" || len(lms[0].Subs) != 2 {
			t.Errorf("indexed=%v: L1 match = %v, want s1+s2", indexed, lms[0])
		}
		if lms[1].Link != "L2" || len(lms[1].Subs) != 1 || lms[1].Subs[0] != "s3" {
			t.Errorf("indexed=%v: L2 match = %v, want [s3]", indexed, lms[1])
		}
	}
}
