package client

import (
	"bytes"
	"encoding/gob"

	"rebeca/internal/message"
	"rebeca/internal/store"
)

// PubSeqQuantum is how many sequence numbers a PubSequencer reserves per
// store write: the snapshot is updated once per quantum instead of once
// per publish, and a restart skips at most one quantum of unused numbers.
const PubSeqQuantum = 256

// pubIdentity is the persisted publisher identity under "pub/<client>".
type pubIdentity struct {
	// Epoch counts the publisher's incarnations (diagnostics: how often
	// this identity was resumed).
	Epoch uint64
	// Reserved is the highest sequence number this incarnation may have
	// assigned; the next incarnation resumes strictly above it.
	Reserved uint64
}

// PubSequencer allocates a publisher's notification sequence numbers
// against a persisted identity, so a restarted publisher continues its
// (publisher, seq) ID space monotonically instead of restarting at 1 —
// which would make every subscriber's DedupSet silently swallow the new
// notifications as replays of the old ones.
//
// Sequence reservation amortizes durability: the snapshot stores a
// reserved ceiling, bumped a quantum at a time; a crash wastes at most
// the unused remainder (subscriber FIFO accounting tolerates gaps —
// sequences must only grow).
//
// Not safe for concurrent use; callers serialize (the TCP port holds its
// own lock, the simulator is single-threaded).
type PubSequencer struct {
	st       store.Store
	key      string
	epoch    uint64
	seq      uint64
	reserved uint64
}

// NewPubSequencer loads (or creates) the client's publisher identity
// from the store's snapshot namespace and starts a new epoch above
// everything the previous incarnation may have used.
func NewPubSequencer(st store.Store, client message.NodeID) *PubSequencer {
	s := &PubSequencer{st: st, key: "pub/" + string(client)}
	if blob, ok := st.LoadSnapshot(s.key); ok {
		var id pubIdentity
		if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&id); err == nil {
			s.epoch = id.Epoch
			s.seq = id.Reserved
			s.reserved = id.Reserved
		}
	}
	s.epoch++
	s.persist()
	return s
}

// Epoch returns the identity's incarnation count (1 for a fresh one).
func (s *PubSequencer) Epoch() uint64 { return s.epoch }

// Last returns the last assigned sequence number.
func (s *PubSequencer) Last() uint64 { return s.seq }

// Next assigns the next sequence number, extending the persisted
// reservation when the current one runs out.
func (s *PubSequencer) Next() uint64 {
	s.seq++
	if s.seq > s.reserved {
		s.reserved = s.seq + PubSeqQuantum - 1
		s.persist()
	}
	return s.seq
}

func (s *PubSequencer) persist() {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(pubIdentity{Epoch: s.epoch, Reserved: s.reserved}); err != nil {
		return
	}
	_ = s.st.Snapshot(s.key, buf.Bytes())
}
