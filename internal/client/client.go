// Package client implements the client-side library of Fig. 3: the local
// broker embedded in the application process. It offers the pub/sub
// interface (pub, sub, unsub, notify — §2), keeps the subscription profile
// across roaming, tracks connection state ("connection awareness"), and
// deduplicates deliveries by notification ID so the mobility layers may err
// toward duplication, never loss.
package client

import (
	"fmt"
	"time"

	"rebeca/internal/filter"
	"rebeca/internal/message"
	"rebeca/internal/proto"
	"rebeca/internal/store"
)

// Delivery records one received notification with its arrival time and
// the subscription identities it matched at the border broker (empty for
// session-layer replays, which are resolved client-side by filter).
type Delivery struct {
	Note message.Notification
	At   time.Time
	Subs []message.SubID
}

// DeliveryLog is a bounded ring of deliveries — the capped backing store
// behind Received. Capacity 0 means unbounded (plain append); capacity
// < 0 disables recording entirely. The zero value is an unbounded log.
// Not safe for concurrent use; callers serialize (the TCP port wraps it
// in its own lock).
type DeliveryLog struct {
	cap   int
	buf   []Delivery
	start int // ring head when len(buf) == cap
	total uint64
}

// SetCap bounds the log (n > 0: ring of n, 0: unbounded, < 0: disabled).
// Resizing an already-populated log resets it.
func (l *DeliveryLog) SetCap(n int) {
	if n != l.cap {
		l.buf, l.start = nil, 0
	}
	l.cap = n
}

// Add records one delivery. Total counts it even when retention is
// disabled (Live's settle heuristic watches the count).
func (l *DeliveryLog) Add(d Delivery) {
	l.total++
	switch {
	case l.cap < 0:
	case l.cap == 0:
		l.buf = append(l.buf, d)
	case len(l.buf) < l.cap:
		l.buf = append(l.buf, d)
	default:
		l.buf[l.start] = d
		l.start = (l.start + 1) % l.cap
	}
}

// Snapshot returns the retained deliveries in arrival order.
func (l *DeliveryLog) Snapshot() []Delivery {
	if len(l.buf) == 0 {
		return nil
	}
	out := make([]Delivery, 0, len(l.buf))
	out = append(out, l.buf[l.start:]...)
	out = append(out, l.buf[:l.start]...)
	return out
}

// Total counts every recorded delivery, independent of retention.
func (l *DeliveryLog) Total() uint64 { return l.total }

// DefaultDedupWindow is the per-publisher sliding window of sequence
// numbers a DedupSet retains once a publisher outgrows exact tracking.
const DefaultDedupWindow = 65536

// DedupSet tracks seen notification IDs in bounded memory. Per publisher
// it is exact — identical to an unbounded seen-map — until that publisher
// has delivered more than `window` distinct notifications; only then are
// the oldest entries pruned, and anything at or below the pruned floor is
// conservatively reported as already seen. The suppression error is thus
// confined to redeliveries lagging more than `window` behind a publisher
// that already overflowed the window — with the default of 64k per-pub
// entries, far beyond what the mobility layers' replay buffers hold in
// any configured deployment. Not safe for concurrent use.
type DedupSet struct {
	window uint64
	byPub  map[message.NodeID]*pubSeen
}

type pubSeen struct {
	max   uint64
	floor uint64 // highest pruned seq; 0 = nothing pruned yet (exact)
	seqs  map[uint64]bool
}

// NewDedupSet builds a set retaining `window` recent sequence numbers per
// publisher (0 = DefaultDedupWindow).
func NewDedupSet(window uint64) *DedupSet {
	if window == 0 {
		window = DefaultDedupWindow
	}
	return &DedupSet{window: window, byPub: make(map[message.NodeID]*pubSeen)}
}

// Seen records the ID and reports whether it was already seen (or has
// been pruned, which counts as seen).
func (s *DedupSet) Seen(id message.NotificationID) bool {
	w := s.byPub[id.Publisher]
	if w == nil {
		w = &pubSeen{seqs: make(map[uint64]bool)}
		s.byPub[id.Publisher] = w
	}
	if id.Seq <= w.floor {
		return true // at or below the pruned floor: treat as duplicate
	}
	if w.seqs[id.Seq] {
		return true
	}
	w.seqs[id.Seq] = true
	if id.Seq > w.max {
		w.max = id.Seq
	}
	// Prune only on overflow, so tracking stays exact for any publisher
	// within the window. The scan is amortized: it runs at most once per
	// window's worth of fresh records.
	if uint64(len(w.seqs)) > s.window {
		floor := uint64(0)
		if w.max > s.window {
			floor = w.max - s.window
		}
		if floor > w.floor {
			w.floor = floor
		}
		for seq := range w.seqs {
			if seq <= w.floor {
				delete(w.seqs, seq)
			}
		}
	}
	return false
}

// Tally is the per-port delivery accounting shared by the in-process
// client and the TCP port: dedup by notification ID, incremental
// per-publisher FIFO-violation counting, and the bounded delivery log.
// Not safe for concurrent use; callers serialize.
type Tally struct {
	Log      DeliveryLog
	seen     *DedupSet
	dups     int
	lastSeq  map[message.NodeID]uint64
	fifoViol int
}

// NewTally builds an empty accounting state.
func NewTally() *Tally {
	return &Tally{
		seen:    NewDedupSet(0),
		lastSeq: make(map[message.NodeID]uint64),
	}
}

// Record accounts one incoming delivery and reports whether it is fresh
// (false = suppressed duplicate). Fresh deliveries are appended to the
// log.
func (t *Tally) Record(d Delivery) bool {
	id := d.Note.ID
	if !id.IsZero() {
		if t.seen.Seen(id) {
			t.dups++
			return false
		}
		if id.Seq < t.lastSeq[id.Publisher] {
			t.fifoViol++
		} else {
			t.lastSeq[id.Publisher] = id.Seq
		}
	}
	t.Log.Add(d)
	return true
}

// Duplicates returns the number of suppressed duplicate deliveries.
func (t *Tally) Duplicates() int { return t.dups }

// FIFOViolations returns the per-publisher sequence inversions observed.
func (t *Tally) FIFOViolations() int { return t.fifoViol }

// Client is a (possibly mobile) pub/sub client. Not safe for concurrent
// use; drive it from the simulator loop or a single goroutine.
type Client struct {
	id   message.NodeID
	send func(to message.NodeID, m proto.Message)
	now  func() time.Time

	border    message.NodeID
	prev      message.NodeID
	connected bool

	subs      []proto.Subscription
	nextSubID int
	pubSeq    uint64
	pubseq    *PubSequencer
	epoch     uint64

	tally *Tally

	// OnNotify, when set, observes every fresh delivery.
	OnNotify func(n message.Notification)
	// OnDeliver, when set, observes every fresh delivery together with the
	// matched subscription identities — the hook the deployment facade's
	// per-subscription streams are fed from. Runs before OnNotify.
	OnDeliver func(d Delivery)
}

// New builds a client. send transmits to the named node (the border broker
// while connected); now supplies (virtual) time.
func New(id message.NodeID, send func(to message.NodeID, m proto.Message), now func() time.Time) *Client {
	if now == nil {
		now = time.Now
	}
	return &Client{
		id:    id,
		send:  send,
		now:   now,
		tally: NewTally(),
	}
}

// SetDeliveryLog bounds the client's delivery log: n > 0 retains the last
// n deliveries in a ring, n == 0 retains everything (the default), n < 0
// disables recording (Received returns nil; dedup and FIFO accounting are
// unaffected).
func (c *Client) SetDeliveryLog(n int) { c.tally.Log.SetCap(n) }

// UseDurablePublisher backs the client's publish sequence numbers with a
// persisted identity in the store's "pub/<client>" snapshot namespace: a
// client recreated after a process restart resumes its sequence space
// monotonically, so subscribers' dedup state keeps recognizing it as the
// same publisher instead of suppressing the fresh notifications.
func (c *Client) UseDurablePublisher(st store.Store) {
	c.pubseq = NewPubSequencer(st, c.id)
}

// nextPubSeq assigns the next publish sequence number, durable when
// UseDurablePublisher configured one.
func (c *Client) nextPubSeq() uint64 {
	if c.pubseq != nil {
		return c.pubseq.Next()
	}
	c.pubSeq++
	return c.pubSeq
}

// ID returns the client's node ID.
func (c *Client) ID() message.NodeID { return c.id }

// Connected reports connection state.
func (c *Client) Connected() bool { return c.connected }

// Border returns the current border broker ("" while disconnected).
func (c *Client) Border() message.NodeID {
	if !c.connected {
		return ""
	}
	return c.border
}

// ConnectTo attaches the client to a border broker, announcing the previous
// border and the full subscription profile (used by relocation and by the
// replicator's exception mode).
func (c *Client) ConnectTo(b message.NodeID) {
	if c.connected {
		c.Disconnect()
	}
	c.border = b
	c.connected = true
	c.epoch++
	c.send(b, proto.Message{
		Kind:   proto.KConnect,
		Client: c.id,
		Origin: c.prev,
		Subs:   append([]proto.Subscription(nil), c.subs...),
		Epoch:  c.epoch,
	})
	c.prev = b
}

// Disconnect drops the wireless link (power saving, leaving a cell).
func (c *Client) Disconnect() {
	if !c.connected {
		return
	}
	c.send(c.border, proto.Message{Kind: proto.KDisconnect, Client: c.id})
	c.connected = false
}

// Subscribe registers interest and returns the subscription's ID. The
// subscription joins the roaming profile; while disconnected it is merely
// recorded and issued on the next connect.
func (c *Client) Subscribe(f filter.Filter) message.SubID {
	c.nextSubID++
	id := message.SubID(fmt.Sprintf("%s/s%d", c.id, c.nextSubID))
	sub := proto.Subscription{ID: id, Filter: f}
	c.subs = append(c.subs, sub)
	if c.connected {
		c.send(c.border, proto.Message{Kind: proto.KSubscribe, Client: c.id, Sub: &sub})
	}
	return id
}

// SubscribeAs registers a subscription under a caller-chosen stable ID —
// the durable-subscription path, where the ID must survive process
// restarts so a recreated client reattaches to its broker-side queue.
// Re-registering an ID already in the profile updates its filter and,
// while connected, re-announces it so the border's routing entry follows.
func (c *Client) SubscribeAs(id message.SubID, f filter.Filter) message.SubID {
	sub := proto.Subscription{ID: id, Filter: f}
	replaced := false
	for i, s := range c.subs {
		if s.ID == id {
			c.subs[i] = sub
			replaced = true
			break
		}
	}
	if !replaced {
		c.subs = append(c.subs, sub)
	}
	if c.connected {
		c.send(c.border, proto.Message{Kind: proto.KSubscribe, Client: c.id, Sub: &sub})
	}
	return id
}

// SubscribeAt is a convenience for location-dependent subscriptions: it
// appends the myloc marker (§1).
func (c *Client) SubscribeAt(cs ...filter.Constraint) message.SubID {
	return c.Subscribe(filter.AtLocation(cs...))
}

// Unsubscribe withdraws a subscription.
func (c *Client) Unsubscribe(id message.SubID) {
	for i, s := range c.subs {
		if s.ID != id {
			continue
		}
		sub := s
		c.subs = append(c.subs[:i], c.subs[i+1:]...)
		if c.connected {
			c.send(c.border, proto.Message{Kind: proto.KUnsubscribe, Client: c.id, Sub: &sub})
		}
		return
	}
}

// Subscriptions returns a copy of the profile.
func (c *Client) Subscriptions() []proto.Subscription {
	return append([]proto.Subscription(nil), c.subs...)
}

// Advertise announces the notification space this client will publish
// into (advertisement-based routing). Returns the advertisement's ID.
func (c *Client) Advertise(f filter.Filter) message.SubID {
	c.nextSubID++
	id := message.SubID(fmt.Sprintf("%s/a%d", c.id, c.nextSubID))
	adv := proto.Subscription{ID: id, Filter: f}
	if c.connected {
		c.send(c.border, proto.Message{Kind: proto.KAdvertise, Client: c.id, Sub: &adv})
	}
	return id
}

// Unadvertise withdraws an advertisement.
func (c *Client) Unadvertise(id message.SubID) {
	if c.connected {
		adv := proto.Subscription{ID: id}
		c.send(c.border, proto.Message{Kind: proto.KUnadvertise, Client: c.id, Sub: &adv})
	}
}

// Publish emits a notification and returns its assigned ID. Publishing
// requires a connection (the wire is the border broker).
func (c *Client) Publish(attrs map[string]message.Value) (message.NotificationID, bool) {
	if !c.connected {
		return message.NotificationID{}, false
	}
	n := message.NewNotification(attrs)
	n.ID = message.NotificationID{Publisher: c.id, Seq: c.nextPubSeq()}
	n.Published = c.now()
	c.send(c.border, proto.Message{Kind: proto.KPublish, Client: c.id, Note: &n})
	return n.ID, true
}

// PublishBatch emits several notifications in one wire message
// (KPublishBatch): the border broker unpacks and routes each exactly like
// an individual publish, so only the client->border framing is amortized.
// Returns the assigned IDs, in order. Requires a connection.
func (c *Client) PublishBatch(batch []map[string]message.Value) ([]message.NotificationID, bool) {
	if !c.connected {
		return nil, false
	}
	if len(batch) == 0 {
		return nil, true
	}
	notes := make([]message.Notification, len(batch))
	ids := make([]message.NotificationID, len(batch))
	now := c.now()
	for i, attrs := range batch {
		n := message.NewNotification(attrs)
		n.ID = message.NotificationID{Publisher: c.id, Seq: c.nextPubSeq()}
		n.Published = now
		notes[i] = n
		ids[i] = n.ID
	}
	c.send(c.border, proto.Message{Kind: proto.KPublishBatch, Client: c.id, Notes: notes})
	return ids, true
}

// Receive is the client's network endpoint: it accepts KDeliver messages,
// deduplicates them by notification ID and records fresh ones.
func (c *Client) Receive(_ message.NodeID, m proto.Message) {
	if m.Kind != proto.KDeliver || m.Note == nil {
		return
	}
	n := *m.Note
	d := Delivery{Note: n, At: c.now(), Subs: m.SubIDs}
	if !c.tally.Record(d) {
		return
	}
	if c.OnDeliver != nil {
		c.OnDeliver(d)
	}
	if c.OnNotify != nil {
		c.OnNotify(n)
	}
}

// Received returns the retained deliveries in arrival order: everything
// when the log is unbounded (the default), the last n under
// SetDeliveryLog(n), nil when disabled.
func (c *Client) Received() []Delivery {
	return c.tally.Log.Snapshot()
}

// ReceivedNotes returns just the retained notifications, in arrival order.
func (c *Client) ReceivedNotes() []message.Notification {
	ds := c.tally.Log.Snapshot()
	out := make([]message.Notification, len(ds))
	for i, d := range ds {
		out[i] = d.Note
	}
	return out
}

// Delivered returns the total number of fresh deliveries, independent of
// how many the bounded log retains.
func (c *Client) Delivered() uint64 { return c.tally.Log.Total() }

// Duplicates returns the number of duplicate deliveries suppressed.
func (c *Client) Duplicates() int { return c.tally.Duplicates() }

// FIFOViolations counts per-publisher sequence inversions in the delivery
// order — zero under the transparent relocation protocol.
func (c *Client) FIFOViolations() int { return c.tally.FIFOViolations() }
