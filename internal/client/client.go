// Package client implements the client-side library of Fig. 3: the local
// broker embedded in the application process. It offers the pub/sub
// interface (pub, sub, unsub, notify — §2), keeps the subscription profile
// across roaming, tracks connection state ("connection awareness"), and
// deduplicates deliveries by notification ID so the mobility layers may err
// toward duplication, never loss.
package client

import (
	"fmt"
	"time"

	"rebeca/internal/filter"
	"rebeca/internal/message"
	"rebeca/internal/proto"
)

// Delivery records one received notification with its arrival time.
type Delivery struct {
	Note message.Notification
	At   time.Time
}

// Client is a (possibly mobile) pub/sub client. Not safe for concurrent
// use; drive it from the simulator loop or a single goroutine.
type Client struct {
	id   message.NodeID
	send func(to message.NodeID, m proto.Message)
	now  func() time.Time

	border    message.NodeID
	prev      message.NodeID
	connected bool

	subs      []proto.Subscription
	nextSubID int
	pubSeq    uint64
	epoch     uint64

	received []Delivery
	seen     map[message.NotificationID]bool
	dups     int

	// OnNotify, when set, observes every fresh delivery.
	OnNotify func(n message.Notification)
}

// New builds a client. send transmits to the named node (the border broker
// while connected); now supplies (virtual) time.
func New(id message.NodeID, send func(to message.NodeID, m proto.Message), now func() time.Time) *Client {
	if now == nil {
		now = time.Now
	}
	return &Client{
		id:   id,
		send: send,
		now:  now,
		seen: make(map[message.NotificationID]bool),
	}
}

// ID returns the client's node ID.
func (c *Client) ID() message.NodeID { return c.id }

// Connected reports connection state.
func (c *Client) Connected() bool { return c.connected }

// Border returns the current border broker ("" while disconnected).
func (c *Client) Border() message.NodeID {
	if !c.connected {
		return ""
	}
	return c.border
}

// ConnectTo attaches the client to a border broker, announcing the previous
// border and the full subscription profile (used by relocation and by the
// replicator's exception mode).
func (c *Client) ConnectTo(b message.NodeID) {
	if c.connected {
		c.Disconnect()
	}
	c.border = b
	c.connected = true
	c.epoch++
	c.send(b, proto.Message{
		Kind:   proto.KConnect,
		Client: c.id,
		Origin: c.prev,
		Subs:   append([]proto.Subscription(nil), c.subs...),
		Epoch:  c.epoch,
	})
	c.prev = b
}

// Disconnect drops the wireless link (power saving, leaving a cell).
func (c *Client) Disconnect() {
	if !c.connected {
		return
	}
	c.send(c.border, proto.Message{Kind: proto.KDisconnect, Client: c.id})
	c.connected = false
}

// Subscribe registers interest and returns the subscription's ID. The
// subscription joins the roaming profile; while disconnected it is merely
// recorded and issued on the next connect.
func (c *Client) Subscribe(f filter.Filter) message.SubID {
	c.nextSubID++
	id := message.SubID(fmt.Sprintf("%s/s%d", c.id, c.nextSubID))
	sub := proto.Subscription{ID: id, Filter: f}
	c.subs = append(c.subs, sub)
	if c.connected {
		c.send(c.border, proto.Message{Kind: proto.KSubscribe, Client: c.id, Sub: &sub})
	}
	return id
}

// SubscribeAt is a convenience for location-dependent subscriptions: it
// appends the myloc marker (§1).
func (c *Client) SubscribeAt(cs ...filter.Constraint) message.SubID {
	return c.Subscribe(filter.AtLocation(cs...))
}

// Unsubscribe withdraws a subscription.
func (c *Client) Unsubscribe(id message.SubID) {
	for i, s := range c.subs {
		if s.ID != id {
			continue
		}
		sub := s
		c.subs = append(c.subs[:i], c.subs[i+1:]...)
		if c.connected {
			c.send(c.border, proto.Message{Kind: proto.KUnsubscribe, Client: c.id, Sub: &sub})
		}
		return
	}
}

// Subscriptions returns a copy of the profile.
func (c *Client) Subscriptions() []proto.Subscription {
	return append([]proto.Subscription(nil), c.subs...)
}

// Advertise announces the notification space this client will publish
// into (advertisement-based routing). Returns the advertisement's ID.
func (c *Client) Advertise(f filter.Filter) message.SubID {
	c.nextSubID++
	id := message.SubID(fmt.Sprintf("%s/a%d", c.id, c.nextSubID))
	adv := proto.Subscription{ID: id, Filter: f}
	if c.connected {
		c.send(c.border, proto.Message{Kind: proto.KAdvertise, Client: c.id, Sub: &adv})
	}
	return id
}

// Unadvertise withdraws an advertisement.
func (c *Client) Unadvertise(id message.SubID) {
	if c.connected {
		adv := proto.Subscription{ID: id}
		c.send(c.border, proto.Message{Kind: proto.KUnadvertise, Client: c.id, Sub: &adv})
	}
}

// Publish emits a notification and returns its assigned ID. Publishing
// requires a connection (the wire is the border broker).
func (c *Client) Publish(attrs map[string]message.Value) (message.NotificationID, bool) {
	if !c.connected {
		return message.NotificationID{}, false
	}
	c.pubSeq++
	n := message.NewNotification(attrs)
	n.ID = message.NotificationID{Publisher: c.id, Seq: c.pubSeq}
	n.Published = c.now()
	c.send(c.border, proto.Message{Kind: proto.KPublish, Client: c.id, Note: &n})
	return n.ID, true
}

// Receive is the client's network endpoint: it accepts KDeliver messages,
// deduplicates them by notification ID and records fresh ones.
func (c *Client) Receive(_ message.NodeID, m proto.Message) {
	if m.Kind != proto.KDeliver || m.Note == nil {
		return
	}
	n := *m.Note
	if !n.ID.IsZero() {
		if c.seen[n.ID] {
			c.dups++
			return
		}
		c.seen[n.ID] = true
	}
	c.received = append(c.received, Delivery{Note: n, At: c.now()})
	if c.OnNotify != nil {
		c.OnNotify(n)
	}
}

// Received returns all recorded deliveries in arrival order.
func (c *Client) Received() []Delivery {
	return append([]Delivery(nil), c.received...)
}

// ReceivedNotes returns just the notifications, in arrival order.
func (c *Client) ReceivedNotes() []message.Notification {
	out := make([]message.Notification, len(c.received))
	for i, d := range c.received {
		out[i] = d.Note
	}
	return out
}

// Duplicates returns the number of duplicate deliveries suppressed.
func (c *Client) Duplicates() int { return c.dups }

// FIFOViolations counts per-publisher sequence inversions in the delivery
// order — zero under the transparent relocation protocol.
func (c *Client) FIFOViolations() int {
	last := make(map[message.NodeID]uint64)
	v := 0
	for _, d := range c.received {
		id := d.Note.ID
		if id.IsZero() {
			continue
		}
		if id.Seq < last[id.Publisher] {
			v++
		} else {
			last[id.Publisher] = id.Seq
		}
	}
	return v
}
