package client

import (
	"testing"
	"time"

	"rebeca/internal/filter"
	"rebeca/internal/message"
	"rebeca/internal/proto"
)

type sent struct {
	to message.NodeID
	m  proto.Message
}

func newTestClient(id message.NodeID) (*Client, *[]sent) {
	var log []sent
	c := New(id, func(to message.NodeID, m proto.Message) {
		log = append(log, sent{to: to, m: m})
	}, func() time.Time { return time.Date(2003, 6, 16, 12, 0, 0, 0, time.UTC) })
	// note: closure captures log by reference via pointer return
	return c, &log
}

func TestClientConnectCarriesProfileAndPrev(t *testing.T) {
	c, log := newTestClient("alice")
	c.Subscribe(filter.New(filter.Eq("s", message.String("stock"))))
	c.ConnectTo("B1")
	c.Disconnect()
	c.ConnectTo("B2")

	var connects []proto.Message
	for _, s := range *log {
		if s.m.Kind == proto.KConnect {
			connects = append(connects, s.m)
		}
	}
	if len(connects) != 2 {
		t.Fatalf("connects = %d", len(connects))
	}
	if connects[0].Origin != "" {
		t.Errorf("first connect prev = %q, want empty", connects[0].Origin)
	}
	if connects[1].Origin != "B1" {
		t.Errorf("second connect prev = %q, want B1", connects[1].Origin)
	}
	if len(connects[1].Subs) != 1 {
		t.Errorf("profile not announced: %v", connects[1].Subs)
	}
}

func TestClientConnectImpliesDisconnect(t *testing.T) {
	c, log := newTestClient("alice")
	c.ConnectTo("B1")
	c.ConnectTo("B2") // no explicit disconnect
	kinds := []proto.Kind{}
	for _, s := range *log {
		kinds = append(kinds, s.m.Kind)
	}
	want := []proto.Kind{proto.KConnect, proto.KDisconnect, proto.KConnect}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
	if (*log)[1].to != "B1" {
		t.Error("implicit disconnect should target the old border")
	}
}

func TestClientSubscribeWhileDisconnectedDefers(t *testing.T) {
	c, log := newTestClient("alice")
	c.Subscribe(filter.All())
	if len(*log) != 0 {
		t.Error("offline subscribe must not send")
	}
	c.ConnectTo("B1")
	// Profile travels with the connect.
	if (*log)[0].m.Kind != proto.KConnect || len((*log)[0].m.Subs) != 1 {
		t.Error("profile should be announced on connect")
	}
}

func TestClientSubscribeOnlineSends(t *testing.T) {
	c, log := newTestClient("alice")
	c.ConnectTo("B1")
	id := c.Subscribe(filter.All())
	last := (*log)[len(*log)-1]
	if last.m.Kind != proto.KSubscribe || last.m.Sub.ID != id {
		t.Errorf("subscribe message wrong: %+v", last.m)
	}
	if last.to != "B1" {
		t.Error("subscribe should target border")
	}
}

func TestClientUnsubscribe(t *testing.T) {
	c, log := newTestClient("alice")
	c.ConnectTo("B1")
	id := c.Subscribe(filter.All())
	c.Unsubscribe(id)
	last := (*log)[len(*log)-1]
	if last.m.Kind != proto.KUnsubscribe || last.m.Sub.ID != id {
		t.Errorf("unsubscribe message wrong: %+v", last.m)
	}
	if len(c.Subscriptions()) != 0 {
		t.Error("profile should shrink")
	}
	c.Unsubscribe("nope") // unknown: no panic, no send
}

func TestClientSubscribeAtAddsMyloc(t *testing.T) {
	c, _ := newTestClient("alice")
	c.SubscribeAt(filter.Eq("service", message.String("temperature")))
	subs := c.Subscriptions()
	if len(subs) != 1 || !subs[0].Filter.LocationDependent() {
		t.Error("SubscribeAt should create a location-dependent filter")
	}
}

func TestClientPublishStampsIDs(t *testing.T) {
	c, log := newTestClient("alice")
	if _, ok := c.Publish(map[string]message.Value{"k": message.Int(1)}); ok {
		t.Error("offline publish should fail")
	}
	c.ConnectTo("B1")
	id1, ok1 := c.Publish(map[string]message.Value{"k": message.Int(1)})
	id2, ok2 := c.Publish(map[string]message.Value{"k": message.Int(2)})
	if !ok1 || !ok2 {
		t.Fatal("online publish failed")
	}
	if id1.Publisher != "alice" || id1.Seq != 1 || id2.Seq != 2 {
		t.Errorf("ids = %v, %v", id1, id2)
	}
	last := (*log)[len(*log)-1]
	if last.m.Kind != proto.KPublish || last.m.Note.ID != id2 {
		t.Errorf("publish message wrong: %+v", last.m)
	}
	if last.m.Note.Published.IsZero() {
		t.Error("publish should stamp time")
	}
}

func deliver(c *Client, pub message.NodeID, seq uint64) {
	n := message.NewNotification(map[string]message.Value{"k": message.Int(int64(seq))})
	n.ID = message.NotificationID{Publisher: pub, Seq: seq}
	c.Receive("B1", proto.Message{Kind: proto.KDeliver, Note: &n})
}

func TestClientDeduplicates(t *testing.T) {
	c, _ := newTestClient("alice")
	deliver(c, "p", 1)
	deliver(c, "p", 1)
	deliver(c, "p", 2)
	if got := len(c.Received()); got != 2 {
		t.Errorf("received = %d, want 2", got)
	}
	if c.Duplicates() != 1 {
		t.Errorf("duplicates = %d, want 1", c.Duplicates())
	}
}

func TestClientFIFOViolations(t *testing.T) {
	c, _ := newTestClient("alice")
	deliver(c, "p", 1)
	deliver(c, "p", 3)
	deliver(c, "p", 2) // inversion
	deliver(c, "q", 1) // different publisher: fine
	if got := c.FIFOViolations(); got != 1 {
		t.Errorf("violations = %d, want 1", got)
	}
}

func TestClientOnNotifyCallback(t *testing.T) {
	c, _ := newTestClient("alice")
	var seen []uint64
	c.OnNotify = func(n message.Notification) { seen = append(seen, n.ID.Seq) }
	deliver(c, "p", 1)
	deliver(c, "p", 1) // dup: no callback
	if len(seen) != 1 || seen[0] != 1 {
		t.Errorf("OnNotify saw %v", seen)
	}
}

func TestClientIgnoresNonDeliver(t *testing.T) {
	c, _ := newTestClient("alice")
	c.Receive("B1", proto.Message{Kind: proto.KPublish})
	c.Receive("B1", proto.Message{Kind: proto.KDeliver}) // nil note
	if len(c.Received()) != 0 {
		t.Error("non-deliveries recorded")
	}
}

func TestClientBorderReporting(t *testing.T) {
	c, _ := newTestClient("alice")
	if c.Border() != "" || c.Connected() {
		t.Error("fresh client should be disconnected")
	}
	c.ConnectTo("B1")
	if c.Border() != "B1" || !c.Connected() {
		t.Error("border not tracked")
	}
	c.Disconnect()
	if c.Border() != "" || c.Connected() {
		t.Error("disconnect not tracked")
	}
	c.Disconnect() // idempotent
}

func TestClientBoundedDeliveryLog(t *testing.T) {
	c, _ := newTestClient("alice")
	c.SetDeliveryLog(3)
	for seq := uint64(1); seq <= 7; seq++ {
		deliver(c, "p", seq)
	}
	got := c.Received()
	if len(got) != 3 {
		t.Fatalf("retained %d, want 3", len(got))
	}
	for i, want := range []uint64{5, 6, 7} {
		if got[i].Note.ID.Seq != want {
			t.Errorf("retained[%d].Seq = %d, want %d", i, got[i].Note.ID.Seq, want)
		}
	}
	if c.Delivered() != 7 {
		t.Errorf("delivered total = %d, want 7", c.Delivered())
	}
	// FIFO accounting is incremental: an inversion involving deliveries
	// the ring no longer retains is still counted.
	deliver(c, "p", 9)
	deliver(c, "p", 8)
	if c.FIFOViolations() != 1 {
		t.Errorf("violations = %d, want 1", c.FIFOViolations())
	}

	c2, _ := newTestClient("bob")
	c2.SetDeliveryLog(-1)
	deliver(c2, "p", 1)
	if c2.Received() != nil {
		t.Error("disabled log should retain nothing")
	}
	if c2.Delivered() != 1 {
		t.Error("disabled log should still count deliveries")
	}
}

func TestClientPublishBatch(t *testing.T) {
	c, log := newTestClient("alice")
	if _, ok := c.PublishBatch([]map[string]message.Value{{"k": message.Int(1)}}); ok {
		t.Fatal("batch while disconnected should fail")
	}
	c.ConnectTo("B1")
	*log = nil
	ids, ok := c.PublishBatch([]map[string]message.Value{
		{"k": message.Int(1)},
		{"k": message.Int(2)},
		{"k": message.Int(3)},
	})
	if !ok || len(ids) != 3 {
		t.Fatalf("batch publish: ok=%v ids=%v", ok, ids)
	}
	if len(*log) != 1 {
		t.Fatalf("batch framed %d wire messages, want 1", len(*log))
	}
	m := (*log)[0].m
	if m.Kind != proto.KPublishBatch || len(m.Notes) != 3 {
		t.Fatalf("frame = %v with %d notes, want publish-batch with 3", m.Kind, len(m.Notes))
	}
	for i, n := range m.Notes {
		if n.ID != ids[i] || n.ID.Seq != uint64(i+1) {
			t.Errorf("note %d has ID %v, want %v", i, n.ID, ids[i])
		}
	}
}

func TestClientOnDeliverHookSeesSubIDs(t *testing.T) {
	c, _ := newTestClient("alice")
	var got [][]message.SubID
	c.OnDeliver = func(d Delivery) { got = append(got, d.Subs) }
	n := message.Notification{ID: message.NotificationID{Publisher: "p", Seq: 1}}
	c.Receive("B1", proto.Message{
		Kind: proto.KDeliver, Note: &n, SubIDs: []message.SubID{"alice/s1"},
	})
	if len(got) != 1 || len(got[0]) != 1 || got[0][0] != "alice/s1" {
		t.Errorf("hook saw %v, want [[alice/s1]]", got)
	}
}

func TestDedupSetWindow(t *testing.T) {
	s := NewDedupSet(4)
	id := func(seq uint64) message.NotificationID {
		return message.NotificationID{Publisher: "p", Seq: seq}
	}
	if s.Seen(id(10)) {
		t.Error("fresh seq reported seen")
	}
	if !s.Seen(id(10)) {
		t.Error("repeat not reported seen")
	}
	// Exact until overflow: an old seq far below the newest is still
	// fresh while the publisher has fewer than `window` entries.
	if s.Seen(id(1)) {
		t.Error("below-window seq reported seen before any pruning")
	}
	if s.Seen(id(8)) || s.Seen(id(9)) || s.Seen(id(20)) {
		t.Error("fresh seqs reported seen")
	}
	// Six entries recorded with window 4: pruning has run, floor = 20-4.
	if !s.Seen(id(16)) {
		t.Error("seq at pruned floor should count as seen")
	}
	if !s.Seen(id(10)) {
		t.Error("pruned seq should count as seen")
	}
	if s.Seen(id(17)) {
		t.Error("fresh in-window seq reported seen after pruning")
	}
	// Other publishers are independent.
	if s.Seen(message.NotificationID{Publisher: "q", Seq: 1}) {
		t.Error("publisher windows must be independent")
	}
}
