// Integration tests for the replicator layer (§3.2), driven through the
// discrete-event simulator on a corridor of brokers: pre-subscriptions must
// deliver the "listen for a while" semantics on arrival, replicas must
// follow the client around the movement graph, and the exception mode must
// recover from movement-graph violations.
package core_test

import (
	"testing"
	"time"

	"rebeca/internal/client"
	"rebeca/internal/filter"
	"rebeca/internal/location"
	"rebeca/internal/message"
	"rebeca/internal/movement"
	"rebeca/internal/sim"
)

const tick = time.Millisecond

// corridor is a line of brokers with one region per broker and one menu
// publisher per broker.
type corridor struct {
	t       *testing.T
	cluster *sim.Cluster
	pubs    map[message.NodeID]*client.Client
	mob     *client.Client
}

func newCorridor(t *testing.T, n int, mode sim.ReplicationMode, shared bool) *corridor {
	t.Helper()
	g := movement.Line(n)
	locs := location.Regions(g.Nodes())
	cl, err := sim.NewCluster(sim.ClusterConfig{
		Movement:      g,
		Locations:     locs,
		Replication:   mode,
		Mobility:      sim.MobilityTransparent,
		SharedBuffers: shared,
		LinkLatency:   tick,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := &corridor{t: t, cluster: cl, pubs: make(map[message.NodeID]*client.Client)}
	for _, b := range g.Nodes() {
		p := cl.AddClient("pub@" + b)
		p.ConnectTo(b)
		c.pubs[b] = p
	}
	c.mob = cl.AddClient("mob")
	return c
}

// publishMenu publishes a restaurant-menu notification bound to broker b's
// region.
func (c *corridor) publishMenu(b message.NodeID, dish string) {
	attrs := map[string]message.Value{
		"service": message.String("menu"),
		"dish":    message.String(dish),
	}
	n := message.NewNotification(attrs)
	n = location.Stamp(n, location.Location("region-"+b))
	c.pubs[b].Publish(n.Attrs)
}

func (c *corridor) dishes() []string {
	var out []string
	for _, n := range c.mob.ReceivedNotes() {
		if v, ok := n.Get("dish"); ok {
			out = append(out, v.Str())
		}
	}
	return out
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func menuFilter() []filter.Constraint {
	return []filter.Constraint{filter.Eq("service", message.String("menu"))}
}

func TestSetupCreatesNeighborReplicas(t *testing.T) {
	c := newCorridor(t, 4, sim.ReplicationPreSubscribe, false)
	c.mob.ConnectTo("B1")
	c.mob.SubscribeAt(menuFilter()...)
	c.cluster.Net.Run()

	for b, want := range map[message.NodeID]bool{
		"B0": true, "B1": true, "B2": true, "B3": false,
	} {
		if got := c.cluster.Replicators[b].HasReplica("mob"); got != want {
			t.Errorf("replica at %s = %v, want %v", b, got, want)
		}
	}
	if !c.cluster.Replicators["B1"].ReplicaActive("mob") {
		t.Error("the local virtual client must be active")
	}
	if c.cluster.Replicators["B0"].ReplicaActive("mob") {
		t.Error("neighbor virtual clients must be buffering, not active")
	}
}

func TestPreSubscriptionListenForAWhile(t *testing.T) {
	c := newCorridor(t, 3, sim.ReplicationPreSubscribe, false)
	c.mob.ConnectTo("B0")
	c.mob.SubscribeAt(menuFilter()...)
	c.cluster.Net.Run()

	// Menus published at B1 *before* the client gets there.
	c.publishMenu("B1", "pasta")
	c.publishMenu("B0", "soup")
	c.publishMenu("B2", "sushi") // outside nlb(B0)∪{B0}? B2 ∉ nlb(B0) on a line of 3 -> no replica
	c.cluster.Net.Run()

	// The client hears its current region live.
	if got := c.dishes(); !contains(got, "soup") {
		t.Errorf("current-region menu missing: %v", got)
	}
	if got := c.dishes(); contains(got, "pasta") {
		t.Errorf("remote menu delivered before arrival: %v", got)
	}

	// Move to B1: the buffered pasta menu replays on arrival.
	c.mob.Disconnect()
	c.cluster.Net.RunFor(5 * tick)
	c.mob.ConnectTo("B1")
	c.cluster.Net.Run()

	if got := c.dishes(); !contains(got, "pasta") {
		t.Errorf("pre-subscription replay missing: %v", got)
	}
	if got := c.dishes(); contains(got, "sushi") {
		t.Errorf("menu outside replica coverage should not replay: %v", got)
	}
}

func TestReplicaBuffersOnlyOwnLocation(t *testing.T) {
	c := newCorridor(t, 3, sim.ReplicationPreSubscribe, false)
	c.mob.ConnectTo("B0")
	c.mob.SubscribeAt(menuFilter()...)
	c.cluster.Net.Run()

	c.publishMenu("B1", "pasta")
	c.publishMenu("B0", "soup") // matches B1's replica? no: location=region-B0
	c.cluster.Net.Run()

	st := c.cluster.Replicators["B1"].Stats()
	if st.Buffered != 1 {
		t.Errorf("B1 replica buffered %d, want exactly its own region's 1", st.Buffered)
	}
}

func TestHandoverRebalancesReplicaSet(t *testing.T) {
	c := newCorridor(t, 5, sim.ReplicationPreSubscribe, false)
	c.mob.ConnectTo("B0")
	c.mob.SubscribeAt(menuFilter()...)
	c.cluster.Net.Run()

	c.mob.Disconnect()
	c.cluster.Net.RunFor(2 * tick)
	c.mob.ConnectTo("B1")
	c.cluster.Net.Run()

	// newset = nlb(B1) = {B0, B2}; plus the active one at B1.
	for b, want := range map[message.NodeID]bool{
		"B0": true, "B1": true, "B2": true, "B3": false, "B4": false,
	} {
		if got := c.cluster.Replicators[b].HasReplica("mob"); got != want {
			t.Errorf("after move, replica at %s = %v, want %v", b, got, want)
		}
	}

	c.mob.Disconnect()
	c.cluster.Net.RunFor(2 * tick)
	c.mob.ConnectTo("B2")
	c.cluster.Net.Run()
	// oldset\newset = nlb(B0)... now: newset = {B1,B3}; B0's replica must
	// be garbage collected.
	if c.cluster.Replicators["B0"].HasReplica("mob") {
		t.Error("B0 replica should be garbage collected after moving to B2")
	}
	if !c.cluster.Replicators["B3"].HasReplica("mob") {
		t.Error("B3 replica should be pre-created after moving to B2")
	}
}

func TestReactiveMissesPreArrivalTraffic(t *testing.T) {
	c := newCorridor(t, 3, sim.ReplicationReactive, false)
	c.mob.ConnectTo("B0")
	c.mob.SubscribeAt(menuFilter()...)
	c.cluster.Net.Run()

	c.publishMenu("B1", "pasta")
	c.cluster.Net.Run()
	c.mob.Disconnect()
	c.cluster.Net.RunFor(2 * tick)
	c.mob.ConnectTo("B1")
	c.cluster.Net.Run()
	if got := c.dishes(); contains(got, "pasta") {
		t.Errorf("reactive baseline must miss pre-arrival menus, got %v", got)
	}
	// But it does hear menus published after arrival + propagation.
	c.publishMenu("B1", "pizza")
	c.cluster.Net.Run()
	if got := c.dishes(); !contains(got, "pizza") {
		t.Errorf("reactive should hear post-arrival menus: %v", got)
	}
	// And no shadow lingers at B0.
	if c.cluster.Replicators["B0"].HasReplica("mob") {
		t.Error("reactive must not leave replicas behind")
	}
}

func TestExceptionModePopUp(t *testing.T) {
	// Line of 5; client teleports B0 -> B4 (not an edge): exception mode
	// creates the virtual client on the fly and fetches the old buffer.
	c := newCorridor(t, 5, sim.ReplicationPreSubscribe, false)
	c.mob.ConnectTo("B0")
	c.mob.SubscribeAt(menuFilter()...)
	c.cluster.Net.Run()

	c.mob.Disconnect()
	c.cluster.Net.RunFor(2 * tick)
	// While powered off, a menu appears at the old location (buffered by
	// B0's now-inactive virtual client).
	c.publishMenu("B0", "leftover")
	c.cluster.Net.Run()

	c.mob.ConnectTo("B4")
	c.cluster.Net.Run()

	st := c.cluster.Replicators["B4"].Stats()
	if st.ExceptionActivations != 1 {
		t.Errorf("exception activations = %d, want 1", st.ExceptionActivations)
	}
	// Degraded service: the old buffer is fetched across the network.
	if got := c.dishes(); !contains(got, "leftover") {
		t.Errorf("exception fetch should recover the old buffer: %v", got)
	}
	// Fresh local traffic flows after the pop-up.
	c.publishMenu("B4", "fresh")
	c.cluster.Net.Run()
	if got := c.dishes(); !contains(got, "fresh") {
		t.Errorf("post-pop-up traffic missing: %v", got)
	}
	// The stale B0 replica was garbage collected (extended GC rule).
	if c.cluster.Replicators["B0"].HasReplica("mob") {
		t.Error("stale replica at teleport origin should be GCed")
	}
}

func TestRemoveGarbageCollectsEverywhere(t *testing.T) {
	c := newCorridor(t, 4, sim.ReplicationPreSubscribe, false)
	c.mob.ConnectTo("B1")
	c.mob.SubscribeAt(menuFilter()...)
	c.cluster.Net.Run()

	c.cluster.Replicators["B1"].Remove("mob")
	c.cluster.Net.Run()
	for _, b := range []message.NodeID{"B0", "B1", "B2", "B3"} {
		if c.cluster.Replicators[b].HasReplica("mob") {
			t.Errorf("replica at %s survived removal", b)
		}
	}
	if got := c.cluster.TotalTableEntries(); got != 0 {
		t.Errorf("dangling routing entries after removal: %d", got)
	}
}

func TestSubscriptionChangesPropagateToReplicas(t *testing.T) {
	c := newCorridor(t, 3, sim.ReplicationPreSubscribe, false)
	c.mob.ConnectTo("B1")
	sid := c.mob.SubscribeAt(menuFilter()...)
	c.cluster.Net.Run()

	// Second location-dependent subscription mid-session.
	c.mob.SubscribeAt(filter.Eq("service", message.String("weather")))
	c.cluster.Net.Run()

	// Weather at a neighbor is buffered by its replica.
	n := message.NewNotification(map[string]message.Value{
		"service": message.String("weather"),
		"temp":    message.Int(19),
	})
	n = location.Stamp(n, "region-B0")
	c.pubs["B0"].Publish(n.Attrs)
	c.cluster.Net.Run()

	c.mob.Disconnect()
	c.cluster.Net.RunFor(2 * tick)
	c.mob.ConnectTo("B0")
	c.cluster.Net.Run()
	found := false
	for _, note := range c.mob.ReceivedNotes() {
		if v, ok := note.Get("service"); ok && v.Str() == "weather" {
			found = true
		}
	}
	if !found {
		t.Error("new subscription did not reach the neighbor replica")
	}

	// Unsubscribing the menu sub stops menu buffering at replicas.
	c.mob.Unsubscribe(sid)
	c.cluster.Net.Run()
	before := c.cluster.Replicators["B1"].Stats().Buffered
	c.publishMenu("B1", "late-menu")
	c.cluster.Net.Run()
	if after := c.cluster.Replicators["B1"].Stats().Buffered; after != before {
		t.Errorf("replica still buffers after unsubscribe: %d -> %d", before, after)
	}
}

func TestSharedBufferModeEndToEnd(t *testing.T) {
	c := newCorridor(t, 3, sim.ReplicationPreSubscribe, true)
	// Two mobile clients with identical interests share buffered content.
	mob2 := c.cluster.AddClient("mob2")
	c.mob.ConnectTo("B0")
	c.mob.SubscribeAt(menuFilter()...)
	mob2.ConnectTo("B2")
	mob2.SubscribeAt(menuFilter()...)
	c.cluster.Net.Run()

	c.publishMenu("B1", "pasta") // buffered by both clients' B1 replicas
	c.cluster.Net.Run()

	if got := c.cluster.Shared["B1"].Len(); got != 1 {
		t.Errorf("shared store at B1 holds %d distinct notes, want 1", got)
	}

	c.mob.Disconnect()
	c.cluster.Net.RunFor(2 * tick)
	c.mob.ConnectTo("B1")
	c.cluster.Net.Run()
	if got := c.dishes(); !contains(got, "pasta") {
		t.Errorf("shared-buffer replay missing: %v", got)
	}
}

func TestStaticAndLocationSubsCoexist(t *testing.T) {
	c := newCorridor(t, 3, sim.ReplicationPreSubscribe, false)
	c.mob.ConnectTo("B0")
	c.mob.SubscribeAt(menuFilter()...)
	c.mob.Subscribe(filter.New(filter.Eq("service", message.String("stock"))))
	c.cluster.Net.Run()

	// Stock quotes from anywhere arrive regardless of location.
	c.pubs["B2"].Publish(map[string]message.Value{
		"service": message.String("stock"),
		"symbol":  message.String("TUD"),
	})
	c.cluster.Net.Run()
	got := false
	for _, n := range c.mob.ReceivedNotes() {
		if v, ok := n.Get("symbol"); ok && v.Str() == "TUD" {
			got = true
		}
	}
	if !got {
		t.Fatal("static subscription broken with replicator attached")
	}

	// And the static stream survives a physical move losslessly while the
	// location stream adapts.
	c.mob.Disconnect()
	c.cluster.Net.RunFor(2 * tick)
	c.mob.ConnectTo("B1")
	c.cluster.Net.Run()
	c.pubs["B2"].Publish(map[string]message.Value{
		"service": message.String("stock"),
		"symbol":  message.String("EPFL"),
	})
	c.publishMenu("B1", "fondue")
	c.cluster.Net.Run()
	var sawStock, sawMenu bool
	for _, n := range c.mob.ReceivedNotes() {
		if v, ok := n.Get("symbol"); ok && v.Str() == "EPFL" {
			sawStock = true
		}
		if v, ok := n.Get("dish"); ok && v.Str() == "fondue" {
			sawMenu = true
		}
	}
	if !sawStock || !sawMenu {
		t.Errorf("after move: stock=%v menu=%v, want both", sawStock, sawMenu)
	}
}

func TestWastedBufferAccounting(t *testing.T) {
	c := newCorridor(t, 4, sim.ReplicationPreSubscribe, false)
	c.mob.ConnectTo("B1")
	c.mob.SubscribeAt(menuFilter()...)
	c.cluster.Net.Run()

	// B0 and B2 replicas buffer; the client then moves B1->B2->B3 and the
	// B0 replica is GCed with its buffer unread -> wasted.
	c.publishMenu("B0", "never-eaten")
	c.cluster.Net.Run()
	c.mob.Disconnect()
	c.cluster.Net.RunFor(2 * tick)
	c.mob.ConnectTo("B2")
	c.cluster.Net.Run()
	c.mob.Disconnect()
	c.cluster.Net.RunFor(2 * tick)
	c.mob.ConnectTo("B3")
	c.cluster.Net.Run()

	agg := c.cluster.ReplicatorStats()
	if agg.Wasted == 0 {
		t.Error("unvisited replica buffers should be accounted as wasted")
	}
}

func TestActiveReplicaSurvivesStaleDelete(t *testing.T) {
	// Fast there-and-back: B1 -> B0 -> B1. The rebalance from arriving at
	// B0 may race a delete for B1; the active VC must never be GCed.
	c := newCorridor(t, 3, sim.ReplicationPreSubscribe, false)
	c.mob.ConnectTo("B1")
	c.mob.SubscribeAt(menuFilter()...)
	c.cluster.Net.Run()
	c.mob.Disconnect()
	c.mob.ConnectTo("B0")
	c.mob.Disconnect()
	c.mob.ConnectTo("B1")
	c.cluster.Net.Run()
	if !c.cluster.Replicators["B1"].HasReplica("mob") {
		t.Fatal("active replica lost after rapid there-and-back")
	}
	c.publishMenu("B1", "still-works")
	c.cluster.Net.Run()
	if got := c.dishes(); !contains(got, "still-works") {
		t.Errorf("location stream broken after rapid moves: %v", got)
	}
}
