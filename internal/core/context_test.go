// Tests for context-dependent ("state-dependent") subscriptions, the §4
// research-agenda generalization of myloc: a context resolver per broker
// turns ctx markers into concrete membership sets, and the replicator
// pre-subscribes them at nlb just like location-dependent filters.
package core_test

import (
	"testing"
	"time"

	"rebeca/internal/filter"
	"rebeca/internal/location"
	"rebeca/internal/message"
	"rebeca/internal/movement"
	"rebeca/internal/sim"
)

// newContextCorridor deploys a 3-broker line where each broker's "network"
// context is its own cell name plus "roaming".
func newContextCorridor(t *testing.T) *sim.Cluster {
	t.Helper()
	g := movement.Line(3)
	cl, err := sim.NewCluster(sim.ClusterConfig{
		Movement:    g,
		Locations:   location.Regions(g.Nodes()),
		Replication: sim.ReplicationPreSubscribe,
		Mobility:    sim.MobilityTransparent,
		Context: func(b message.NodeID) filter.ContextResolver {
			return func(attr, name string) []message.Value {
				if attr == "network" && name == "mynet" {
					return []message.Value{
						message.String("cell-" + string(b)),
						message.String("roaming"),
					}
				}
				return nil
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestContextDependentSubscription(t *testing.T) {
	cl := newContextCorridor(t)
	mob := cl.AddClient("mob")
	mob.ConnectTo("B0")
	mob.Subscribe(filter.New(
		filter.Eq("service", message.String("tariff")),
		filter.Context("network", "mynet"),
	))
	cl.Net.Run()

	pub := cl.AddClient("pub")
	pub.ConnectTo("B1")
	publish := func(network string) {
		pub.Publish(map[string]message.Value{
			"service": message.String("tariff"),
			"network": message.String(network),
		})
		cl.Net.Run()
	}

	// The client's current context (cell-B0) matches; a foreign cell not.
	publish("cell-B0")
	publish("cell-B2")
	if got := len(mob.Received()); got != 1 {
		t.Fatalf("received %d, want 1 (own cell only)", got)
	}
	// The shared "roaming" context value matches everywhere.
	publish("roaming")
	if got := len(mob.Received()); got != 2 {
		t.Fatalf("received %d, want 2", got)
	}

	// Pre-subscription: a tariff for cell-B1 published before arrival is
	// buffered by B1's replica and replayed on arrival — context adapts
	// exactly like myloc.
	publish("cell-B1")
	if got := len(mob.Received()); got != 2 {
		t.Fatalf("cell-B1 tariff delivered too early (%d)", got)
	}
	mob.Disconnect()
	cl.Net.RunFor(2 * time.Millisecond)
	mob.ConnectTo("B1")
	cl.Net.Run()
	if got := len(mob.Received()); got != 3 {
		t.Fatalf("after arrival received %d, want 3 (replayed cell-B1 tariff)", got)
	}
}

func TestContextMarkerNeverMatchesUnresolved(t *testing.T) {
	f := filter.New(filter.Context("network", "mynet"))
	if !f.ContextDependent() || !f.Dynamic() {
		t.Fatal("context marker not detected")
	}
	n := message.NewNotification(map[string]message.Value{
		"network": message.String("anything"),
	})
	if f.Matches(n) {
		t.Error("unresolved context marker must not match")
	}
	r := f.ResolveContext(func(attr, name string) []message.Value {
		return []message.Value{message.String("anything")}
	})
	if r.Dynamic() {
		t.Error("resolved filter should not be dynamic")
	}
	if !r.Matches(n) {
		t.Error("resolved context should match")
	}
}

func TestContextAndLocationCompose(t *testing.T) {
	f := filter.AtLocation(
		filter.Eq("service", message.String("x")),
		filter.Context("network", "mynet"),
	)
	if !f.LocationDependent() || !f.ContextDependent() {
		t.Fatal("composed markers not detected")
	}
	resolved := f.ResolveMyloc([]string{"here"}).ResolveContext(
		func(attr, name string) []message.Value {
			return []message.Value{message.String("net1")}
		})
	if resolved.Dynamic() {
		t.Error("both markers should be resolved")
	}
	n := message.NewNotification(map[string]message.Value{
		"service":  message.String("x"),
		"location": message.String("here"),
		"network":  message.String("net1"),
	})
	if !resolved.Matches(n) {
		t.Error("composed resolution broken")
	}
}
