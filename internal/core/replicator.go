// Package core implements the paper's contribution (§3): extended logical
// mobility via a replicator layer that copes with movement uncertainty by
// maintaining pre-subscriptions — buffering virtual clients ("information
// shadows") — at every broker in the client's movement-graph neighborhood
// nlb(b).
//
// The Replicator is a border-broker plugin, layered transparently between
// virtual clients and the broker (Fig. 4) without changes to the routing
// framework:
//
//   - Client setup (§3.2.1): when a client with location-dependent
//     subscriptions appears at broker b, identical buffering virtual
//     clients are created at every broker in nlb(b). Each resolves the
//     myloc marker against its *own* location scope, so it buffers exactly
//     the information a client arriving there would want.
//   - Client operation (§3.2.2): location-dependent (un)subscriptions are
//     applied locally and propagated to all nlb(b) replicas over direct
//     (out-of-band) replicator links.
//   - Client handover (§3.2.3): on arrival at b2 the local virtual client
//     is activated and its buffer replayed — the "subscription in the
//     past". The replicator then creates replicas on newset\oldset and
//     garbage-collects oldset\newset, where oldset = nlb(b1),
//     newset = nlb(b2).
//   - Client removal (§3.2.4): the local virtual client and all nlb
//     replicas are deleted.
//   - Exception mode (§4): a client popping up at a broker without a
//     replica (movement-graph violation, e.g. power-off travel) gets a
//     virtual client created on the fly; buffered notifications are
//     fetched from the previous broker's replica — degraded, but not
//     empty-handed.
package core

import (
	"fmt"
	"sort"
	"time"

	"rebeca/internal/broker"
	"rebeca/internal/buffer"
	"rebeca/internal/filter"
	"rebeca/internal/location"
	"rebeca/internal/message"
	"rebeca/internal/proto"
	"rebeca/internal/store"
)

// Stats counts replicator activity for the experiments.
type Stats struct {
	// ReplicasCreated counts virtual clients created at this broker.
	ReplicasCreated int
	// ReplicasDeleted counts garbage-collected virtual clients.
	ReplicasDeleted int
	// Buffered counts notifications buffered by inactive virtual clients.
	Buffered int
	// Replayed counts buffered notifications replayed on activation.
	Replayed int
	// Wasted counts notifications still buffered when their virtual
	// client was garbage-collected — pre-subscription traffic the client
	// never consumed (the bandwidth cost §4 warns about).
	Wasted int
	// Activations counts handovers that found a warm replica here.
	Activations int
	// ExceptionActivations counts handovers that needed on-the-fly
	// creation (no replica present).
	ExceptionActivations int
	// FetchesServed counts remote buffer fetches answered.
	FetchesServed int
}

// virtualClient mirrors one mobile client at this broker. Exactly one
// virtual client per (client, broker); at most one of a client's virtual
// clients is active system-wide.
type virtualClient struct {
	client message.NodeID
	active bool
	// subs holds the client's location-dependent subscriptions in their
	// original (unresolved myloc) form, keyed by the client-issued SubID.
	subs     map[message.SubID]filter.Filter
	subOrder []message.SubID
	// buf records location-relevant notifications while inactive.
	buf buffer.Policy
}

func (v *virtualClient) addSub(id message.SubID, f filter.Filter) bool {
	if _, ok := v.subs[id]; ok {
		v.subs[id] = f
		return false
	}
	v.subs[id] = f
	v.subOrder = append(v.subOrder, id)
	return true
}

func (v *virtualClient) removeSub(id message.SubID) bool {
	if _, ok := v.subs[id]; !ok {
		return false
	}
	delete(v.subs, id)
	for i, o := range v.subOrder {
		if o == id {
			v.subOrder = append(v.subOrder[:i], v.subOrder[i+1:]...)
			break
		}
	}
	return true
}

func (v *virtualClient) profile() []proto.Subscription {
	out := make([]proto.Subscription, 0, len(v.subOrder))
	for _, id := range v.subOrder {
		out = append(out, proto.Subscription{ID: id, Filter: v.subs[id]})
	}
	return out
}

// Config assembles a Replicator.
type Config struct {
	// Broker is the border broker this replicator serves.
	Broker *broker.Broker
	// NLB is the movement graph's next-local-broker function.
	NLB func(message.NodeID) []message.NodeID
	// Locations resolves myloc markers per broker.
	Locations *location.Model
	// Context resolves generalized context markers (§4 "state-dependent
	// subscriptions") per broker. Optional; unresolved markers match
	// nothing.
	Context func(b message.NodeID) filter.ContextResolver
	// BufferFactory builds per-virtual-client buffers (default unbounded).
	// Ignored when Shared is set.
	BufferFactory buffer.Factory
	// Shared, when non-nil, switches virtual clients to digest views over
	// this per-broker shared store (§4's memory optimization, E8).
	Shared *buffer.Shared
	// SharedTTL / SharedCap bound digest retention in shared mode (0 = unbounded).
	SharedTTL time.Duration
	SharedCap int
	// Store, when non-nil, backs every virtual-client buffer with a
	// persistence queue (repl/<broker>/<client>): appends happen when a
	// notification is buffered, acks when its replay or fetch is served —
	// the same append-before-deliver/ack-on-confirm path the mobility
	// manager uses. A virtual client recreated on the same store (a
	// restarted broker re-running the replica protocol) reloads its
	// pending buffer. Ignored when Shared is set (digests hold no
	// notification payloads to persist).
	Store store.Store
	// PreSubscribe enables the pre-subscription mechanism. When false the
	// replicator degrades to the Reactive baseline: location-dependent
	// subscriptions exist only at the client's current broker and are
	// re-resolved on every arrival.
	PreSubscribe bool
}

// Replicator is the per-border-broker replicator process of Fig. 4.
type Replicator struct {
	b     *broker.Broker
	cfg   Config
	vcs   map[message.NodeID]*virtualClient
	stats Stats
}

// New attaches a replicator to its border broker and returns it. Attach the
// replicator before the physical-mobility manager so it claims
// location-dependent subscriptions first.
func New(cfg Config) *Replicator {
	if cfg.Broker == nil {
		panic("core: Config.Broker is required")
	}
	if cfg.NLB == nil {
		cfg.NLB = func(message.NodeID) []message.NodeID { return nil }
	}
	if cfg.Locations == nil {
		cfg.Locations = location.NewModel()
	}
	if cfg.BufferFactory == nil {
		cfg.BufferFactory = func() buffer.Policy { return buffer.NewUnbounded() }
	}
	r := &Replicator{
		b:   cfg.Broker,
		cfg: cfg,
		vcs: make(map[message.NodeID]*virtualClient),
	}
	cfg.Broker.Use(r)
	return r
}

// Stats returns a copy of the replicator's counters.
func (r *Replicator) Stats() Stats { return r.stats }

// ResidentVirtualClients returns the number of virtual clients currently
// hosted here (the memory/uplink footprint metric of E6).
func (r *Replicator) ResidentVirtualClients() int { return len(r.vcs) }

// BufferedBytes sums the resident buffer memory across virtual clients.
func (r *Replicator) BufferedBytes() int {
	total := 0
	for _, vc := range r.vcs {
		total += vc.buf.Bytes()
	}
	if r.cfg.Shared != nil {
		total += r.cfg.Shared.Bytes()
	}
	return total
}

// HasReplica reports whether a virtual client for c lives here (tests).
func (r *Replicator) HasReplica(c message.NodeID) bool {
	_, ok := r.vcs[c]
	return ok
}

// ReplicaActive reports whether c's virtual client here is active.
func (r *Replicator) ReplicaActive(c message.NodeID) bool {
	vc, ok := r.vcs[c]
	return ok && vc.active
}

// vcPort names the local broker port owned by c's virtual client.
func (r *Replicator) vcPort(c message.NodeID) message.NodeID {
	return message.NodeID(fmt.Sprintf("vc:%s@%s", c, r.b.ID()))
}

// vcSubID derives the broker-unique routing SubID for a client sub.
func (r *Replicator) vcSubID(id message.SubID) message.SubID {
	return message.SubID(fmt.Sprintf("%s@%s", id, r.b.ID()))
}

// resolve resolves myloc and context markers against this broker.
func (r *Replicator) resolve(f filter.Filter) filter.Filter {
	f = r.cfg.Locations.Resolve(f, r.b.ID())
	if f.ContextDependent() && r.cfg.Context != nil {
		f = f.ResolveContext(r.cfg.Context(r.b.ID()))
	}
	return f
}

func (r *Replicator) newBuffer(c message.NodeID) buffer.Policy {
	if r.cfg.Shared != nil {
		return r.cfg.Shared.NewDigest(r.cfg.SharedTTL, r.cfg.SharedCap)
	}
	if r.cfg.Store != nil {
		queue := fmt.Sprintf("repl/%s/%s", r.b.ID(), c)
		return buffer.NewDurable(r.cfg.Store, queue, r.cfg.BufferFactory())
	}
	return r.cfg.BufferFactory()
}

// Handle implements broker.Plugin.
func (r *Replicator) Handle(from message.NodeID, m proto.Message) bool {
	switch m.Kind {
	case proto.KSubscribe:
		return r.onSubscribe(from, m)
	case proto.KUnsubscribe:
		return r.onUnsubscribe(from, m)
	case proto.KConnect:
		r.onConnect(m)
		return false // the physical-mobility manager also processes it
	case proto.KDisconnect:
		r.onDisconnect(m)
		return false
	case proto.KReplicaCreate:
		return r.onReplicaCreate(m)
	case proto.KReplicaDelete:
		return r.onReplicaDelete(m)
	case proto.KReplicaSub:
		return r.onReplicaSub(m)
	case proto.KReplicaUnsub:
		return r.onReplicaUnsub(m)
	case proto.KBufferFetch:
		return r.onBufferFetch(m)
	case proto.KBufferFetchReply:
		return r.onBufferFetchReply(m)
	default:
		return false
	}
}

// OnDeliver implements broker.Plugin: deliveries to virtual-client ports
// are forwarded to the live client or buffered.
func (r *Replicator) OnDeliver(port message.NodeID, n message.Notification) bool {
	for c, vc := range r.vcs {
		if r.vcPort(c) != port {
			continue
		}
		if vc.active {
			note := n
			r.b.Send(c, proto.Message{Kind: proto.KDeliver, Client: c, Note: &note})
		} else {
			vc.buf.Add(n, r.b.Now())
			r.stats.Buffered++
		}
		return true
	}
	return false
}

// OnFlushDone implements broker.Plugin (unused).
func (r *Replicator) OnFlushDone(uint64) {}

// --- client-facing operations -------------------------------------------

// onSubscribe claims location-dependent subscriptions from local clients
// (§3.2.2). Static subscriptions pass through to the default path.
func (r *Replicator) onSubscribe(from message.NodeID, m proto.Message) bool {
	if m.Sub == nil || !m.Sub.Filter.Dynamic() || !r.b.HasPort(from) {
		return false
	}
	c := from
	vc := r.ensureVC(c, true)
	r.installVCSub(vc, m.Sub.ID, m.Sub.Filter)
	if r.cfg.PreSubscribe {
		for _, nb := range r.cfg.NLB(r.b.ID()) {
			r.b.Direct(nb, proto.Message{
				Kind: proto.KReplicaSub, Client: c, Origin: r.b.ID(), Sub: m.Sub,
			})
		}
	}
	return true
}

func (r *Replicator) onUnsubscribe(from message.NodeID, m proto.Message) bool {
	if m.Sub == nil || !m.Sub.Filter.Dynamic() {
		return false
	}
	vc, ok := r.vcs[from]
	if !ok {
		return false
	}
	r.removeVCSub(vc, m.Sub.ID)
	if r.cfg.PreSubscribe {
		for _, nb := range r.cfg.NLB(r.b.ID()) {
			r.b.Direct(nb, proto.Message{
				Kind: proto.KReplicaUnsub, Client: from, Origin: r.b.ID(), Sub: m.Sub,
			})
		}
	}
	return true
}

// installVCSub adds a subscription to a virtual client and enters its
// resolved form into the routing layer.
func (r *Replicator) installVCSub(vc *virtualClient, id message.SubID, f filter.Filter) {
	vc.addSub(id, f)
	r.b.AttachPort(r.vcPort(vc.client))
	r.b.InstallSub(proto.Subscription{
		ID:     r.vcSubID(id),
		Filter: r.resolve(f),
	}, r.vcPort(vc.client))
}

func (r *Replicator) removeVCSub(vc *virtualClient, id message.SubID) {
	if !vc.removeSub(id) {
		return
	}
	r.b.RemoveSub(r.vcSubID(id))
}

// ensureVC returns the client's virtual client here, creating it if needed.
func (r *Replicator) ensureVC(c message.NodeID, active bool) *virtualClient {
	vc, ok := r.vcs[c]
	if !ok {
		vc = &virtualClient{
			client: c,
			subs:   make(map[message.SubID]filter.Filter),
			buf:    r.newBuffer(c),
		}
		r.vcs[c] = vc
		r.stats.ReplicasCreated++
	}
	vc.active = vc.active || active
	return vc
}

// --- handover (§3.2.3) ----------------------------------------------------

func (r *Replicator) onConnect(m proto.Message) {
	c, prev := m.Client, m.Origin
	vc, warm := r.vcs[c]
	if warm {
		r.stats.Activations++
		vc.active = true
		r.replay(vc)
	} else {
		// Exception mode (§4): create on the fly from the client's
		// announced profile and fetch buffered history from the previous
		// broker's replica.
		locSubs := locationDependent(m.Subs)
		if len(locSubs) == 0 {
			return // nothing location-dependent: not our concern
		}
		r.stats.ExceptionActivations++
		vc = r.ensureVC(c, true)
		for _, s := range locSubs {
			r.installVCSub(vc, s.ID, s.Filter)
		}
		if r.cfg.PreSubscribe && prev != "" && prev != r.b.ID() {
			r.b.Direct(prev, proto.Message{
				Kind: proto.KBufferFetch, Client: c, Origin: r.b.ID(),
			})
		}
	}
	if r.cfg.PreSubscribe {
		r.rebalance(c, vc, prev)
	}
}

// rebalance creates replicas on newset\oldset and deletes them on
// oldset\newset (§3.2.3), extended to garbage-collect the previous broker
// itself after a movement-graph violation.
func (r *Replicator) rebalance(c message.NodeID, vc *virtualClient, prev message.NodeID) {
	here := r.b.ID()
	newset := toSet(r.cfg.NLB(here))
	oldset := make(map[message.NodeID]bool)
	if prev != "" && prev != here {
		oldset = toSet(r.cfg.NLB(prev))
		// The previous broker hosted the formerly active virtual client;
		// include it in the old coverage so it is GCed when the movement
		// graph was violated (it survives normal moves: prev ∈ nlb(here)).
		oldset[prev] = true
	}
	profile := vc.profile()
	for _, nb := range sortedKeys(newset) {
		if nb == here || oldset[nb] {
			continue
		}
		r.b.Direct(nb, proto.Message{
			Kind: proto.KReplicaCreate, Client: c, Origin: here, Subs: profile,
		})
	}
	for _, ob := range sortedKeys(oldset) {
		if ob == here || newset[ob] {
			continue
		}
		r.b.Direct(ob, proto.Message{
			Kind: proto.KReplicaDelete, Client: c, Origin: here,
		})
	}
}

func (r *Replicator) onDisconnect(m proto.Message) {
	vc, ok := r.vcs[m.Client]
	if !ok {
		return
	}
	if !r.cfg.PreSubscribe {
		// Reactive baseline: no shadow stays behind; the subscriptions
		// are torn down and re-issued wherever the client reappears.
		r.dropVC(m.Client)
		return
	}
	vc.active = false
}

// replay delivers a virtual client's buffer to the (now local) client in
// (publisher, seq) order: the "listen for a while" semantics of §1.
func (r *Replicator) replay(vc *virtualClient) {
	notes := vc.buf.Snapshot(r.b.Now())
	message.ByID(notes)
	for _, n := range notes {
		note := n
		r.stats.Replayed++
		r.b.Send(vc.client, proto.Message{Kind: proto.KDeliver, Client: vc.client, Note: &note})
	}
	// For a store-backed buffer the Clear acks the queue — only after the
	// replay has been handed to the transport.
	vc.buf.Clear()
}

// Remove implements client removal (§3.2.4): delete the local virtual
// client and garbage-collect all replicas in nlb(here).
func (r *Replicator) Remove(c message.NodeID) {
	r.dropVC(c)
	if r.cfg.PreSubscribe {
		for _, nb := range r.cfg.NLB(r.b.ID()) {
			r.b.Direct(nb, proto.Message{
				Kind: proto.KReplicaDelete, Client: c, Origin: r.b.ID(),
			})
		}
	}
}

func (r *Replicator) dropVC(c message.NodeID) {
	vc, ok := r.vcs[c]
	if !ok {
		return
	}
	r.stats.Wasted += vc.buf.Len()
	vc.buf.Clear()
	for _, id := range append([]message.SubID(nil), vc.subOrder...) {
		r.b.RemoveSub(r.vcSubID(id))
	}
	r.b.DetachPort(r.vcPort(c))
	delete(r.vcs, c)
	r.stats.ReplicasDeleted++
}

// --- replicator-to-replicator protocol ------------------------------------

func (r *Replicator) onReplicaCreate(m proto.Message) bool {
	vc := r.ensureVC(m.Client, false)
	for _, s := range m.Subs {
		if _, ok := vc.subs[s.ID]; !ok {
			r.installVCSub(vc, s.ID, s.Filter)
		}
	}
	return true
}

func (r *Replicator) onReplicaDelete(m proto.Message) bool {
	if vc, ok := r.vcs[m.Client]; ok && vc.active {
		// Never GC the active virtual client (stale delete after a fast
		// return move).
		return true
	}
	r.dropVC(m.Client)
	return true
}

func (r *Replicator) onReplicaSub(m proto.Message) bool {
	if m.Sub == nil {
		return true
	}
	vc := r.ensureVC(m.Client, false)
	if _, ok := vc.subs[m.Sub.ID]; !ok {
		r.installVCSub(vc, m.Sub.ID, m.Sub.Filter)
	}
	return true
}

func (r *Replicator) onReplicaUnsub(m proto.Message) bool {
	if m.Sub == nil {
		return true
	}
	if vc, ok := r.vcs[m.Client]; ok {
		r.removeVCSub(vc, m.Sub.ID)
	}
	return true
}

func (r *Replicator) onBufferFetch(m proto.Message) bool {
	vc, ok := r.vcs[m.Client]
	if !ok {
		return true
	}
	notes := vc.buf.Snapshot(r.b.Now())
	r.stats.FetchesServed++
	r.b.Direct(m.Origin, proto.Message{
		Kind: proto.KBufferFetchReply, Client: m.Client, Origin: r.b.ID(),
		Notes: notes,
	})
	vc.buf.Clear()
	return true
}

func (r *Replicator) onBufferFetchReply(m proto.Message) bool {
	vc, ok := r.vcs[m.Client]
	if !ok {
		return true
	}
	if vc.active {
		message.ByID(m.Notes)
		for _, n := range m.Notes {
			note := n
			r.stats.Replayed++
			r.b.Send(m.Client, proto.Message{Kind: proto.KDeliver, Client: m.Client, Note: &note})
		}
		return true
	}
	now := r.b.Now()
	for _, n := range m.Notes {
		vc.buf.Add(n, now)
		r.stats.Buffered++
	}
	return true
}

// --- helpers ---------------------------------------------------------

func locationDependent(subs []proto.Subscription) []proto.Subscription {
	var out []proto.Subscription
	for _, s := range subs {
		if s.Filter.Dynamic() {
			out = append(out, s)
		}
	}
	return out
}

func toSet(ids []message.NodeID) map[message.NodeID]bool {
	out := make(map[message.NodeID]bool, len(ids))
	for _, id := range ids {
		out[id] = true
	}
	return out
}

func sortedKeys(m map[message.NodeID]bool) []message.NodeID {
	out := make([]message.NodeID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Compile-time interface check.
var _ broker.Plugin = (*Replicator)(nil)
