package filter

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sort"
	"testing"

	"rebeca/internal/message"
)

func indexMatchKeys(ix *Index, n message.Notification) []string {
	var out []string
	ix.Match(n, func(key string) { out = append(out, key) })
	sort.Strings(out)
	return out
}

func TestIndexBasicMatch(t *testing.T) {
	ix := NewIndex()
	ix.Add("temp", New(Eq("service", message.String("temperature"))))
	ix.Add("cold", New(
		Eq("service", message.String("temperature")),
		Lt("value", message.Float(5)),
	))
	ix.Add("any", All())

	n := tempNote("room-1", 3)
	got := indexMatchKeys(ix, n)
	want := []string{"any", "cold", "temp"}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("Match = %v, want %v", got, want)
	}

	warm := tempNote("room-1", 30)
	got = indexMatchKeys(ix, warm)
	if len(got) != 2 {
		t.Errorf("warm Match = %v", got)
	}
}

func TestIndexRemove(t *testing.T) {
	ix := NewIndex()
	f := New(Eq("a", message.Int(1)), Gt("b", message.Int(0)))
	ix.Add("x", f)
	ix.Remove("x")
	if ix.Len() != 0 {
		t.Fatalf("Len = %d after remove", ix.Len())
	}
	n := note(map[string]message.Value{"a": message.Int(1), "b": message.Int(5)})
	if got := indexMatchKeys(ix, n); len(got) != 0 {
		t.Errorf("removed filter still matches: %v", got)
	}
	ix.Remove("x") // idempotent
}

func TestIndexReplaceSameKey(t *testing.T) {
	ix := NewIndex()
	ix.Add("k", New(Eq("a", message.Int(1))))
	ix.Add("k", New(Eq("a", message.Int(2))))
	if got := indexMatchKeys(ix, note(map[string]message.Value{"a": message.Int(1)})); len(got) != 0 {
		t.Errorf("stale filter matched: %v", got)
	}
	if got := indexMatchKeys(ix, note(map[string]message.Value{"a": message.Int(2)})); len(got) != 1 {
		t.Errorf("replacement missing: %v", got)
	}
}

func TestIndexInSetWithDuplicates(t *testing.T) {
	ix := NewIndex()
	ix.Add("k", New(In("a", message.Int(1), message.Int(1), message.Float(1))))
	n := note(map[string]message.Value{"a": message.Int(1)})
	if got := indexMatchKeys(ix, n); len(got) != 1 {
		t.Errorf("duplicate set members broke counting: %v", got)
	}
}

func TestIndexCrossNumericEquality(t *testing.T) {
	ix := NewIndex()
	ix.Add("k", New(Eq("a", message.Float(3))))
	n := note(map[string]message.Value{"a": message.Int(3)})
	if got := indexMatchKeys(ix, n); len(got) != 1 {
		t.Errorf("Int(3) should satisfy Eq(Float(3)): %v", got)
	}
}

func TestIndexEqPlusInSameAttr(t *testing.T) {
	ix := NewIndex()
	ix.Add("k", New(
		Eq("a", message.Int(1)),
		In("a", message.Int(1), message.Int(2)),
	))
	if got := indexMatchKeys(ix, note(map[string]message.Value{"a": message.Int(1)})); len(got) != 1 {
		t.Errorf("conjunction on same attr broken: %v", got)
	}
	if got := indexMatchKeys(ix, note(map[string]message.Value{"a": message.Int(2)})); len(got) != 0 {
		t.Errorf("Eq constraint ignored: %v", got)
	}
}

// Property: the index agrees with linear evaluation on random filters and
// notifications.
func TestIndexAgreesWithLinearScan(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		ix := NewIndex()
		filters := make(map[string]Filter)
		for i := 0; i < 40; i++ {
			key := fmt.Sprintf("f%d", i)
			f := randomSimpleFilter(r)
			filters[key] = f
			ix.Add(key, f)
		}
		// Random removals keep the bookkeeping honest.
		for i := 0; i < 10; i++ {
			key := fmt.Sprintf("f%d", r.Intn(40))
			delete(filters, key)
			ix.Remove(key)
		}
		for j := 0; j < 50; j++ {
			n := randomSmallNote(r)
			want := map[string]bool{}
			for key, f := range filters {
				if f.Matches(n) {
					want[key] = true
				}
			}
			got := map[string]bool{}
			ix.Match(n, func(key string) {
				if got[key] {
					t.Fatalf("key %s visited twice", key)
				}
				got[key] = true
			})
			if len(got) != len(want) {
				t.Fatalf("trial %d: index %v, linear %v, note %s", trial, got, want, n)
			}
			for k := range want {
				if !got[k] {
					t.Fatalf("trial %d: missing %s for %s (filter %s)", trial, k, n, filters[k])
				}
			}
		}
	}
}

func BenchmarkIndexMatch1000(b *testing.B) {
	ix := NewIndex()
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		f := New(
			Eq("service", message.String("temperature")),
			Eq("location", message.String(fmt.Sprintf("room-%d", r.Intn(200)))),
		)
		ix.Add(fmt.Sprintf("f%d", i), f)
	}
	n := note(map[string]message.Value{
		"service":  message.String("temperature"),
		"location": message.String("room-7"),
		"value":    message.Float(20),
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Match(n, func(string) {})
	}
}

func BenchmarkLinearMatch1000(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	filters := make([]Filter, 1000)
	for i := range filters {
		filters[i] = New(
			Eq("service", message.String("temperature")),
			Eq("location", message.String(fmt.Sprintf("room-%d", r.Intn(200)))),
		)
	}
	n := note(map[string]message.Value{
		"service":  message.String("temperature"),
		"location": message.String("room-7"),
		"value":    message.Float(20),
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range filters {
			_ = f.Matches(n)
		}
	}
}

// TestIndexMatchAllOrderDeterministic pins the visit-order contract of
// Match: zero-constraint (match-all) filters are visited first, in
// ascending slot order, identically on every call — the all-set is a
// sorted slice, not a map. (Counted matches follow in unspecified order;
// routing tables re-sort those by insertion position.)
func TestIndexMatchAllOrderDeterministic(t *testing.T) {
	ix := NewIndex()
	// Interleave adds and removes so the slot free list is exercised and
	// slot numbers are not simply insertion order.
	for i := 0; i < 8; i++ {
		ix.Add(fmt.Sprintf("all-%d", i), All())
	}
	ix.Remove("all-2")
	ix.Remove("all-5")
	ix.Add("all-9", All())  // reuses slot of all-5 (LIFO free list)
	ix.Add("all-10", All()) // reuses slot of all-2
	n := message.NewNotification(map[string]message.Value{"x": message.Int(1)})

	var first []string
	ix.Match(n, func(key string) { first = append(first, key) })
	if len(first) != 8 {
		t.Fatalf("visited %d, want 8", len(first))
	}
	for run := 0; run < 10; run++ {
		var again []string
		ix.Match(n, func(key string) { again = append(again, key) })
		if !slices.Equal(first, again) {
			t.Fatalf("visit order changed between calls: %v vs %v", first, again)
		}
	}
	// Ascending slot order: all-9 landed in all-5's slot (5), all-10 in
	// all-2's slot (2), so the expected sequence is fixed.
	want := []string{"all-0", "all-1", "all-10", "all-3", "all-4", "all-9", "all-6", "all-7"}
	if !slices.Equal(first, want) {
		t.Fatalf("visit order = %v, want %v", first, want)
	}
}

// TestIndexNaNConstraintsDoNotLeak is the regression test for the NaN
// bucket leak: Eq(NaN)/In(...NaN...) constraints arrive over the wire
// (the codec decodes arbitrary float bits), and a raw NaN map key would
// be unreachable — inserted by Add, never found by Remove, one permanent
// eq bucket per subscribe/unsubscribe cycle.
func TestIndexNaNConstraintsDoNotLeak(t *testing.T) {
	nan := message.Float(math.NaN())
	ix := NewIndex()
	for i := 0; i < 100; i++ {
		ix.Add("eq", New(Eq("x", nan)))
		ix.Add("in", New(In("y", nan, message.Int(1))))
		ix.Remove("eq")
		ix.Remove("in")
	}
	if ix.Len() != 0 {
		t.Fatalf("index retains %d filters", ix.Len())
	}
	for attr, m := range ix.eq {
		if len(m) != 0 {
			t.Fatalf("leaked %d eq buckets on %q: %v", len(m), attr, m)
		}
	}
	if len(ix.scan) != 0 {
		t.Fatalf("leaked %d scan lists: %v", len(ix.scan), ix.scan)
	}

	// Semantics: Eq(NaN) matches nothing — not even a NaN attribute —
	// and a NaN In-member never satisfies; the index must agree with the
	// linear evaluation on both.
	ix.Add("eq", New(Eq("x", nan)))
	ix.Add("in", New(In("y", nan, message.Int(1))))
	for _, n := range []message.Notification{
		message.NewNotification(map[string]message.Value{"x": nan, "y": nan}),
		message.NewNotification(map[string]message.Value{"x": message.Float(1), "y": message.Int(1)}),
	} {
		got := indexMatchKeys(ix, n)
		var want []string
		for _, key := range []string{"eq", "in"} {
			f := map[string]Filter{
				"eq": New(Eq("x", nan)),
				"in": New(In("y", nan, message.Int(1))),
			}[key]
			if f.Matches(n) {
				want = append(want, key)
			}
		}
		sort.Strings(want)
		if !slices.Equal(got, want) {
			t.Fatalf("n=%s: index matched %v, linear %v", n, got, want)
		}
	}
}
