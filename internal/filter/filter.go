package filter

import (
	"sort"
	"strings"

	"rebeca/internal/message"
)

// AttrLocation is the conventional attribute name carrying a notification's
// logical location, and the attribute the myloc marker constrains (§1:
// `(service = "temperature"), (location ∈ myloc)`).
const AttrLocation = "location"

// Filter is a conjunction of constraints: a notification matches iff it
// satisfies every constraint. The empty filter matches everything (it is the
// "true" filter used by the flooding baseline). Filters are immutable after
// construction; all combinators return new filters.
type Filter struct {
	cs []Constraint
}

// New builds a filter from the given constraints. Constraints are kept in a
// canonical order (by attribute, then operator, then operand) so that
// equivalent filters render to identical keys.
func New(cs ...Constraint) Filter {
	cp := make([]Constraint, len(cs))
	copy(cp, cs)
	sort.SliceStable(cp, func(i, j int) bool {
		if cp[i].Attr != cp[j].Attr {
			return cp[i].Attr < cp[j].Attr
		}
		if cp[i].Op != cp[j].Op {
			return cp[i].Op < cp[j].Op
		}
		return cp[i].Val.String() < cp[j].Val.String()
	})
	return Filter{cs: cp}
}

// All returns the filter that matches every notification.
func All() Filter { return Filter{} }

// Constraints returns a copy of the filter's constraints.
func (f Filter) Constraints() []Constraint {
	cp := make([]Constraint, len(f.cs))
	copy(cp, f.cs)
	return cp
}

// Len returns the number of constraints.
func (f Filter) Len() int { return len(f.cs) }

// IsAll reports whether the filter matches everything.
func (f Filter) IsAll() bool { return len(f.cs) == 0 }

// Matches evaluates the filter against a notification.
func (f Filter) Matches(n message.Notification) bool {
	for _, c := range f.cs {
		if !c.Matches(n) {
			return false
		}
	}
	return true
}

// Covers reports whether f covers g: every notification matching g also
// matches f. The check is conservative (may return false for a true
// covering, never true for a false one): f covers g iff each constraint of
// f is implied by some constraint of g on the same attribute.
func (f Filter) Covers(g Filter) bool {
	for _, c := range f.cs {
		implied := false
		for _, d := range g.cs {
			if c.Covers(d) {
				implied = true
				break
			}
		}
		if !implied {
			return false
		}
	}
	return true
}

// Equivalent reports mutual covering.
func (f Filter) Equivalent(g Filter) bool { return f.Covers(g) && g.Covers(f) }

// Overlaps reports whether f and g may both match some notification.
// Conservative in the other direction than Covers: it returns false only
// when the filters are provably disjoint on some shared attribute.
func (f Filter) Overlaps(g Filter) bool {
	for _, c := range f.cs {
		for _, d := range g.cs {
			if c.DisjointWith(d) {
				return false
			}
		}
	}
	return true
}

// And returns the conjunction of two filters.
func (f Filter) And(g Filter) Filter {
	return New(append(f.Constraints(), g.Constraints()...)...)
}

// Key returns a canonical string for the filter, usable as a map key and
// stable across equivalent constructions. The empty filter's key is "*".
func (f Filter) Key() string {
	if len(f.cs) == 0 {
		return "*"
	}
	parts := make([]string, len(f.cs))
	for i, c := range f.cs {
		parts[i] = c.String()
	}
	return strings.Join(parts, " & ")
}

// String renders the filter like its Key.
func (f Filter) String() string { return f.Key() }

// LocationDependent reports whether the filter contains an unresolved myloc
// marker (§1). Such filters are handled by the logical-mobility machinery
// and must be resolved before entering a routing table.
func (f Filter) LocationDependent() bool {
	for _, c := range f.cs {
		if c.Op == OpMyloc {
			return true
		}
	}
	return false
}

// MatchesIgnoringMarkers evaluates the filter with unresolved myloc and
// context markers treated as satisfied. Clients use it to route a
// delivery lacking subscription identity (a session-layer replay) to the
// local streams it plausibly belongs to: the border broker already
// resolved and matched the markers before delivering.
func (f Filter) MatchesIgnoringMarkers(n message.Notification) bool {
	for _, c := range f.cs {
		if c.Op == OpMyloc || c.Op == OpContext {
			continue
		}
		if !c.Matches(n) {
			return false
		}
	}
	return true
}

// ResolveMyloc substitutes every myloc marker with a concrete membership
// constraint over the given location scope. A replica at broker b resolves
// against b's own scope — which is exactly why buffering virtual clients
// receive only information relevant to their own location (§3.1).
func (f Filter) ResolveMyloc(scope []string) Filter {
	cs := make([]Constraint, 0, len(f.cs))
	for _, c := range f.cs {
		if c.Op != OpMyloc {
			cs = append(cs, c)
			continue
		}
		set := make([]message.Value, len(scope))
		for i, loc := range scope {
			set[i] = message.String(loc)
		}
		cs = append(cs, Constraint{Attr: c.Attr, Op: OpIn, Set: set})
	}
	return New(cs...)
}

// AtLocation is a convenience constructor for location-dependent filters:
// it appends the myloc marker on the conventional location attribute.
func AtLocation(cs ...Constraint) Filter {
	return New(append(cs, Constraint{Attr: AttrLocation, Op: OpMyloc})...)
}

// Merge attempts a perfect merger of two filters (routing optimization,
// §2 "covering and merging"): if the filters are identical except on one
// attribute whose constraints can be unioned exactly, the merged filter is
// returned with ok=true. Mergers are exact: the result matches precisely
// the union of the operands' matches.
func Merge(f, g Filter) (Filter, bool) {
	if f.Covers(g) {
		return f, true
	}
	if g.Covers(f) {
		return g, true
	}
	if len(f.cs) != len(g.cs) {
		return Filter{}, false
	}
	diff := -1
	for i := range f.cs {
		if f.cs[i].Attr != g.cs[i].Attr {
			return Filter{}, false
		}
		if constraintEqual(f.cs[i], g.cs[i]) {
			continue
		}
		if diff >= 0 {
			return Filter{}, false // differs on more than one constraint
		}
		diff = i
	}
	if diff < 0 {
		return f, true // identical
	}
	merged, ok := unionConstraints(f.cs[diff], g.cs[diff])
	if !ok {
		return Filter{}, false
	}
	cs := f.Constraints()
	cs[diff] = merged
	return New(cs...), true
}

// unionConstraints unions two same-attribute constraints exactly when the
// union is expressible as a single constraint.
func unionConstraints(c, d Constraint) (Constraint, bool) {
	if c.Covers(d) {
		return c, true
	}
	if d.Covers(c) {
		return d, true
	}
	// Eq ∪ Eq, Eq ∪ In, In ∪ In  ->  In.
	toSet := func(x Constraint) ([]message.Value, bool) {
		switch x.Op {
		case OpEq:
			return []message.Value{x.Val}, true
		case OpIn:
			return x.Set, true
		default:
			return nil, false
		}
	}
	if cs, ok := toSet(c); ok {
		if ds, ok := toSet(d); ok {
			out := make([]message.Value, 0, len(cs)+len(ds))
			out = append(out, cs...)
			for _, v := range ds {
				dup := false
				for _, w := range out {
					if w.Equal(v) {
						dup = true
						break
					}
				}
				if !dup {
					out = append(out, v)
				}
			}
			sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
			return Constraint{Attr: c.Attr, Op: OpIn, Set: out}, true
		}
	}
	// Overlapping or touching ranges of the same direction are handled by
	// the Covers fast path above; opposed ranges (x<a ∪ x>b with b<=a)
	// union to "exists".
	lowish := func(o Op) bool { return o == OpLt || o == OpLe }
	highish := func(o Op) bool { return o == OpGt || o == OpGe }
	lo, hi := c, d
	if highish(c.Op) && lowish(d.Op) {
		lo, hi = d, c
	}
	if lowish(lo.Op) && highish(hi.Op) {
		if cmp, ok := hi.Val.Compare(lo.Val); ok {
			if cmp < 0 || (cmp == 0 && (lo.Op == OpLe || hi.Op == OpGe)) {
				return Constraint{Attr: c.Attr, Op: OpExists}, true
			}
		}
	}
	return Constraint{}, false
}

func constraintEqual(c, d Constraint) bool {
	if c.Attr != d.Attr || c.Op != d.Op {
		return false
	}
	if len(c.Set) != len(d.Set) {
		return false
	}
	for i := range c.Set {
		if !c.Set[i].Equal(d.Set[i]) {
			return false
		}
	}
	if c.Val.IsValid() != d.Val.IsValid() {
		return false
	}
	return !c.Val.IsValid() || c.Val.Equal(d.Val)
}
