package filter

import (
	"math/rand"
	"testing"

	"rebeca/internal/message"
)

func note(attrs map[string]message.Value) message.Notification {
	return message.NewNotification(attrs)
}

func tempNote(loc string, v float64) message.Notification {
	return note(map[string]message.Value{
		"service":      message.String("temperature"),
		AttrLocation:   message.String(loc),
		"value":        message.Float(v),
		"building":     message.String("D3"),
		"floor-number": message.Int(2),
	})
}

func TestConstraintMatches(t *testing.T) {
	n := tempNote("room-1", 21.5)
	tests := []struct {
		c    Constraint
		want bool
	}{
		{Exists("service"), true},
		{Exists("nope"), false},
		{Eq("service", message.String("temperature")), true},
		{Eq("service", message.String("humidity")), false},
		{Ne("service", message.String("humidity")), true},
		{Ne("service", message.String("temperature")), false},
		{Lt("value", message.Float(22)), true},
		{Lt("value", message.Float(21.5)), false},
		{Le("value", message.Float(21.5)), true},
		{Gt("value", message.Int(21)), true},
		{Ge("value", message.Float(21.5)), true},
		{Gt("value", message.Float(30)), false},
		{Prefix("location", "room"), true},
		{Prefix("location", "office"), false},
		{Suffix("location", "-1"), true},
		{Contains("location", "oom"), true},
		{Contains("location", "xyz"), false},
		{In("location", message.String("room-1"), message.String("room-2")), true},
		{In("location", message.String("room-3")), false},
		// Ordering against a non-comparable kind fails closed.
		{Lt("service", message.Int(5)), false},
		// String ops on non-strings fail closed.
		{Prefix("value", "2"), false},
		// Unresolved myloc never matches.
		{Constraint{Attr: AttrLocation, Op: OpMyloc}, false},
	}
	for _, tt := range tests {
		if got := tt.c.Matches(n); got != tt.want {
			t.Errorf("%s .Matches = %v, want %v", tt.c, got, tt.want)
		}
	}
}

func TestConstraintMissingAttribute(t *testing.T) {
	n := note(map[string]message.Value{"a": message.Int(1)})
	for _, c := range []Constraint{
		Eq("b", message.Int(1)), Ne("b", message.Int(1)), Exists("b"),
		Lt("b", message.Int(1)), In("b", message.Int(1)),
	} {
		if c.Matches(n) {
			t.Errorf("%s should not match when attribute missing", c)
		}
	}
}

func TestFilterMatchesConjunction(t *testing.T) {
	f := New(
		Eq("service", message.String("temperature")),
		Le("value", message.Float(25)),
	)
	if !f.Matches(tempNote("room-1", 21)) {
		t.Error("conjunction should match")
	}
	if f.Matches(tempNote("room-1", 26)) {
		t.Error("violated constraint should fail the filter")
	}
	if !All().Matches(tempNote("x", 0)) {
		t.Error("All() must match everything")
	}
}

func TestFilterKeyCanonical(t *testing.T) {
	a := New(Eq("x", message.Int(1)), Eq("a", message.Int(2)))
	b := New(Eq("a", message.Int(2)), Eq("x", message.Int(1)))
	if a.Key() != b.Key() {
		t.Errorf("keys differ for reordered constraints: %q vs %q", a.Key(), b.Key())
	}
	if All().Key() != "*" {
		t.Errorf("All().Key() = %q, want *", All().Key())
	}
}

func TestCoversBasics(t *testing.T) {
	tests := []struct {
		name string
		f, g Filter
		want bool
	}{
		{"identical", New(Eq("a", message.Int(1))), New(Eq("a", message.Int(1))), true},
		{"all covers anything", All(), New(Eq("a", message.Int(1))), true},
		{"specific does not cover all", New(Eq("a", message.Int(1))), All(), false},
		{"wider range covers narrower", New(Lt("a", message.Int(10))), New(Lt("a", message.Int(5))), true},
		{"narrower does not cover wider", New(Lt("a", message.Int(5))), New(Lt("a", message.Int(10))), false},
		{"le covers lt same bound", New(Le("a", message.Int(5))), New(Lt("a", message.Int(5))), true},
		{"lt does not cover le same bound", New(Lt("a", message.Int(5))), New(Le("a", message.Int(5))), false},
		{"range covers eq inside", New(Ge("a", message.Int(0)), Le("a", message.Int(10))), New(Eq("a", message.Int(5))), true},
		{"range not covers eq outside", New(Ge("a", message.Int(0)), Le("a", message.Int(10))), New(Eq("a", message.Int(50))), false},
		{"in covers subset in", New(In("a", message.Int(1), message.Int(2), message.Int(3))), New(In("a", message.Int(1), message.Int(3))), true},
		{"in not covers superset", New(In("a", message.Int(1))), New(In("a", message.Int(1), message.Int(2))), false},
		{"prefix covers longer prefix", New(Prefix("s", "ro")), New(Prefix("s", "room")), true},
		{"prefix covers eq", New(Prefix("s", "ro")), New(Eq("s", message.String("room-1"))), true},
		{"suffix covers eq", New(Suffix("s", "-1")), New(Eq("s", message.String("room-1"))), true},
		{"contains covers prefix", New(Contains("s", "oo")), New(Prefix("s", "roo")), true},
		{"exists covers everything on attr", New(Exists("a")), New(Gt("a", message.Int(3))), true},
		{"ne covers eq other value", New(Ne("a", message.Int(1))), New(Eq("a", message.Int(2))), true},
		{"ne not covers eq same value", New(Ne("a", message.Int(1))), New(Eq("a", message.Int(1))), false},
		{"ne covered by disjoint range", New(Ne("a", message.Int(5))), New(Lt("a", message.Int(3))), true},
		{"fewer constraints cover more", New(Eq("a", message.Int(1))), New(Eq("a", message.Int(1)), Eq("b", message.Int(2))), true},
		{"more constraints do not cover fewer", New(Eq("a", message.Int(1)), Eq("b", message.Int(2))), New(Eq("a", message.Int(1))), false},
		{"disjoint attrs no covering", New(Eq("a", message.Int(1))), New(Eq("b", message.Int(1))), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.f.Covers(tt.g); got != tt.want {
				t.Errorf("(%s).Covers(%s) = %v, want %v", tt.f, tt.g, got, tt.want)
			}
		})
	}
}

// randomSimpleFilter builds small filters over a tiny attribute/value domain
// so that random notifications have a decent chance of matching.
func randomSimpleFilter(r *rand.Rand) Filter {
	attrs := []string{"a", "b", "c"}
	var cs []Constraint
	for i, n := 0, 1+r.Intn(2); i < n; i++ {
		attr := attrs[r.Intn(len(attrs))]
		v := message.Int(int64(r.Intn(6)))
		switch r.Intn(6) {
		case 0:
			cs = append(cs, Eq(attr, v))
		case 1:
			cs = append(cs, Ne(attr, v))
		case 2:
			cs = append(cs, Lt(attr, v))
		case 3:
			cs = append(cs, Ge(attr, v))
		case 4:
			cs = append(cs, In(attr, v, message.Int(int64(r.Intn(6)))))
		default:
			cs = append(cs, Exists(attr))
		}
	}
	return New(cs...)
}

func randomSmallNote(r *rand.Rand) message.Notification {
	attrs := map[string]message.Value{}
	for _, a := range []string{"a", "b", "c"} {
		if r.Intn(4) > 0 {
			attrs[a] = message.Int(int64(r.Intn(6)))
		}
	}
	return note(attrs)
}

// Property: covering is sound — if f.Covers(g), every notification matching
// g matches f.
func TestCoversSoundProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	checked := 0
	for i := 0; i < 30000 && checked < 2000; i++ {
		f := randomSimpleFilter(r)
		g := randomSimpleFilter(r)
		if !f.Covers(g) {
			continue
		}
		checked++
		for j := 0; j < 50; j++ {
			n := randomSmallNote(r)
			if g.Matches(n) && !f.Matches(n) {
				t.Fatalf("covering unsound: f=%s g=%s n=%s", f, g, n)
			}
		}
	}
	if checked < 100 {
		t.Fatalf("too few covering pairs exercised: %d", checked)
	}
}

// Property: overlap is complete — if some notification matches both filters,
// Overlaps must be true (it may only err towards true).
func TestOverlapsCompleteProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 3000; i++ {
		f := randomSimpleFilter(r)
		g := randomSimpleFilter(r)
		if f.Overlaps(g) {
			continue
		}
		for j := 0; j < 100; j++ {
			n := randomSmallNote(r)
			if f.Matches(n) && g.Matches(n) {
				t.Fatalf("overlap incomplete: f=%s g=%s n=%s", f, g, n)
			}
		}
	}
}

func TestOverlapsDisjointRanges(t *testing.T) {
	f := New(Lt("a", message.Int(3)))
	g := New(Gt("a", message.Int(5)))
	if f.Overlaps(g) {
		t.Error("x<3 and x>5 should be disjoint")
	}
	h := New(Ge("a", message.Int(3)))
	if !f.Overlaps(New(Lt("a", message.Int(10)))) {
		t.Error("overlapping ranges misreported")
	}
	// Touching bounds: x<3 and x>=3 disjoint; x<=3 and x>=3 overlap.
	if f.Overlaps(h) {
		t.Error("x<3 and x>=3 should be disjoint")
	}
	if !New(Le("a", message.Int(3))).Overlaps(h) {
		t.Error("x<=3 and x>=3 overlap at 3")
	}
}

func TestMerge(t *testing.T) {
	f := New(Eq("svc", message.String("t")), Eq("loc", message.String("r1")))
	g := New(Eq("svc", message.String("t")), Eq("loc", message.String("r2")))
	m, ok := Merge(f, g)
	if !ok {
		t.Fatal("merge of eq/eq on one attr should succeed")
	}
	n1 := note(map[string]message.Value{"svc": message.String("t"), "loc": message.String("r1")})
	n2 := note(map[string]message.Value{"svc": message.String("t"), "loc": message.String("r2")})
	n3 := note(map[string]message.Value{"svc": message.String("t"), "loc": message.String("r3")})
	if !m.Matches(n1) || !m.Matches(n2) {
		t.Error("merged filter must match both operands' notifications")
	}
	if m.Matches(n3) {
		t.Error("merger must be perfect, not a widening")
	}
}

func TestMergeCoveringFastPath(t *testing.T) {
	f := New(Lt("a", message.Int(10)))
	g := New(Lt("a", message.Int(5)))
	m, ok := Merge(f, g)
	if !ok || !m.Equivalent(f) {
		t.Error("merge should return the covering filter")
	}
}

func TestMergeRejectsTwoDifferences(t *testing.T) {
	f := New(Eq("a", message.Int(1)), Eq("b", message.Int(1)))
	g := New(Eq("a", message.Int(2)), Eq("b", message.Int(2)))
	if _, ok := Merge(f, g); ok {
		t.Error("filters differing in two constraints must not merge")
	}
}

func TestMergeOpposedRangesToExists(t *testing.T) {
	f := New(Le("a", message.Int(5)))
	g := New(Ge("a", message.Int(5)))
	m, ok := Merge(f, g)
	if !ok {
		t.Fatal("x<=5 ∪ x>=5 should merge to exists(x)")
	}
	if !m.Matches(note(map[string]message.Value{"a": message.Int(100)})) {
		t.Error("merged filter should behave as exists")
	}
	// Gap between ranges must not merge.
	if _, ok := Merge(New(Lt("a", message.Int(3))), New(Gt("a", message.Int(5)))); ok {
		t.Error("ranges with a gap must not merge")
	}
}

// Property: merging is perfect — merged matches exactly f∪g.
func TestMergePerfectProperty(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	merged := 0
	for i := 0; i < 20000 && merged < 1000; i++ {
		f := randomSimpleFilter(r)
		g := randomSimpleFilter(r)
		m, ok := Merge(f, g)
		if !ok {
			continue
		}
		merged++
		for j := 0; j < 40; j++ {
			n := randomSmallNote(r)
			want := f.Matches(n) || g.Matches(n)
			if got := m.Matches(n); got != want {
				t.Fatalf("imperfect merge: f=%s g=%s m=%s n=%s got=%v want=%v",
					f, g, m, n, got, want)
			}
		}
	}
	if merged < 50 {
		t.Fatalf("too few merges exercised: %d", merged)
	}
}

func TestLocationDependentAndResolve(t *testing.T) {
	f := AtLocation(Eq("service", message.String("temperature")))
	if !f.LocationDependent() {
		t.Fatal("AtLocation filter should be location dependent")
	}
	if f.Matches(tempNote("room-1", 20)) {
		t.Error("unresolved myloc must not match")
	}
	r := f.ResolveMyloc([]string{"room-1", "room-2"})
	if r.LocationDependent() {
		t.Error("resolved filter should not be location dependent")
	}
	if !r.Matches(tempNote("room-1", 20)) || !r.Matches(tempNote("room-2", 20)) {
		t.Error("resolved filter should match in-scope locations")
	}
	if r.Matches(tempNote("room-3", 20)) {
		t.Error("resolved filter must not match out-of-scope locations")
	}
	// Re-resolving at a different broker yields that broker's scope.
	r2 := f.ResolveMyloc([]string{"hall"})
	if !r2.Matches(tempNote("hall", 20)) || r2.Matches(tempNote("room-1", 20)) {
		t.Error("per-broker resolution wrong")
	}
}

func TestAndConjunction(t *testing.T) {
	f := New(Eq("a", message.Int(1)))
	g := New(Lt("b", message.Int(5)))
	fg := f.And(g)
	n := note(map[string]message.Value{"a": message.Int(1), "b": message.Int(3)})
	if !fg.Matches(n) {
		t.Error("And should require both")
	}
	if fg.Matches(note(map[string]message.Value{"a": message.Int(1), "b": message.Int(9)})) {
		t.Error("And must enforce second operand")
	}
	if fg.Len() != 2 {
		t.Errorf("And Len = %d, want 2", fg.Len())
	}
}

func TestConstraintsReturnsCopy(t *testing.T) {
	f := New(Eq("a", message.Int(1)))
	cs := f.Constraints()
	cs[0] = Eq("a", message.Int(99))
	if !f.Matches(note(map[string]message.Value{"a": message.Int(1)})) {
		t.Error("mutating Constraints() result affected the filter")
	}
}

func TestEquivalent(t *testing.T) {
	a := New(Eq("x", message.Int(1)), Eq("y", message.Int(2)))
	b := New(Eq("y", message.Int(2)), Eq("x", message.Int(1)))
	if !a.Equivalent(b) {
		t.Error("reordered filters should be equivalent")
	}
	if a.Equivalent(New(Eq("x", message.Int(1)))) {
		t.Error("different filters misreported equivalent")
	}
}
