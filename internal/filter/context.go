package filter

import (
	"fmt"

	"rebeca/internal/message"
)

// Context-dependent subscriptions generalize the myloc marker to arbitrary
// client state, the final research-agenda item of §4 ("from location-
// awareness to context-awareness"): a constraint `attr ∈ ctx:<name>`
// matches when the attribute falls in the set a context resolver derives
// from the client's current situation. Location is the special case
// `location ∈ ctx:myloc`.
//
// Like myloc, context markers never match unresolved; the replicator layer
// resolves them per broker, so buffering virtual clients subscribe to the
// context a client arriving *there* would have.

// Context returns a context-marker constraint: attr ∈ ctx:<name>.
func Context(attr, name string) Constraint {
	return Constraint{Attr: attr, Op: OpContext, Val: message.String(name)}
}

// ContextResolver derives the concrete value set of a named context for
// one attribute. Returning an empty set makes the constraint unsatisfiable
// (the context does not apply there).
type ContextResolver func(attr, name string) []message.Value

// ContextDependent reports whether the filter contains an unresolved
// context marker (myloc markers excluded — see LocationDependent).
func (f Filter) ContextDependent() bool {
	for _, c := range f.cs {
		if c.Op == OpContext {
			return true
		}
	}
	return false
}

// Dynamic reports whether the filter needs any resolution before entering
// a routing table (location- or context-dependent).
func (f Filter) Dynamic() bool { return f.LocationDependent() || f.ContextDependent() }

// ResolveContext substitutes every context marker using the resolver.
// Non-context constraints (including myloc markers) pass through.
func (f Filter) ResolveContext(resolve ContextResolver) Filter {
	cs := make([]Constraint, 0, len(f.cs))
	for _, c := range f.cs {
		if c.Op != OpContext {
			cs = append(cs, c)
			continue
		}
		set := resolve(c.Attr, c.Val.Str())
		cs = append(cs, Constraint{Attr: c.Attr, Op: OpIn, Set: set})
	}
	return New(cs...)
}

// contextString renders a context marker (used by Constraint.String).
func contextString(c Constraint) string {
	return fmt.Sprintf("%s in ctx:%s", c.Attr, c.Val.Str())
}
