package filter

import (
	"rebeca/internal/message"
)

// Index is a predicate-counting matching index over many filters, the
// standard acceleration for content-based brokers (cf. the matching
// algorithms evaluated in [16]): equality and membership constraints are
// hash-indexed per attribute, remaining predicates are grouped per
// attribute, and a filter matches when its per-notification satisfied-
// constraint count reaches its constraint total.
//
// Filters occupy integer slots so the hot counting path touches only flat
// slices; the counter buffer is reused across Match calls via a dirty list.
// Zero-constraint filters (All) are tracked separately and match every
// notification. The index is not safe for concurrent use.
type Index struct {
	// slotOf maps a filter key to its slot.
	slotOf map[string]int
	// keys, filters and sizes are slot-indexed; sizes[i] == 0 marks a free
	// or match-all slot.
	keys    []string
	filters []Filter
	sizes   []int
	free    []int
	// all lists slots of match-everything filters.
	all map[int]bool
	// eq[attr][valueKey] lists slots with an Eq/In constraint satisfied by
	// exactly that value.
	eq map[string]map[string][]int
	// scan[attr] lists non-hashable constraints on attr with their slot.
	scan map[string][]scanEntry

	// counts and dirty form the reusable counting buffer.
	counts []int
	dirty  []int
}

type scanEntry struct {
	slot int
	c    Constraint
}

// NewIndex returns an empty matching index.
func NewIndex() *Index {
	return &Index{
		slotOf: make(map[string]int),
		all:    make(map[int]bool),
		eq:     make(map[string]map[string][]int),
		scan:   make(map[string][]scanEntry),
	}
}

// Len returns the number of indexed filters.
func (ix *Index) Len() int { return len(ix.slotOf) }

// Add indexes the filter under the key, replacing any previous filter with
// the same key.
func (ix *Index) Add(key string, f Filter) {
	if _, ok := ix.slotOf[key]; ok {
		ix.Remove(key)
	}
	slot := ix.alloc(key, f)
	cs := f.Constraints()
	if len(cs) == 0 {
		ix.all[slot] = true
		return
	}
	ix.sizes[slot] = len(cs)
	for _, c := range cs {
		switch c.Op {
		case OpEq:
			ix.addEq(c.Attr, valueKey(c.Val), slot)
		case OpIn:
			// A notification carries one value per attribute, so at most
			// one bucket fires per constraint — provided set members map
			// to distinct buckets (duplicates are skipped here).
			seen := make(map[string]bool, len(c.Set))
			for _, v := range c.Set {
				vk := valueKey(v)
				if seen[vk] {
					continue
				}
				seen[vk] = true
				ix.addEq(c.Attr, vk, slot)
			}
		default:
			ix.scan[c.Attr] = append(ix.scan[c.Attr], scanEntry{slot: slot, c: c})
		}
	}
}

func (ix *Index) alloc(key string, f Filter) int {
	var slot int
	if n := len(ix.free); n > 0 {
		slot = ix.free[n-1]
		ix.free = ix.free[:n-1]
		ix.keys[slot] = key
		ix.filters[slot] = f
		ix.sizes[slot] = 0
	} else {
		slot = len(ix.keys)
		ix.keys = append(ix.keys, key)
		ix.filters = append(ix.filters, f)
		ix.sizes = append(ix.sizes, 0)
		ix.counts = append(ix.counts, 0)
	}
	ix.slotOf[key] = slot
	return slot
}

func (ix *Index) addEq(attr, vk string, slot int) {
	m, ok := ix.eq[attr]
	if !ok {
		m = make(map[string][]int)
		ix.eq[attr] = m
	}
	m[vk] = append(m[vk], slot)
}

func (ix *Index) removeEq(attr, vk string, slot int) {
	m, ok := ix.eq[attr]
	if !ok {
		return
	}
	ks := m[vk]
	for i := 0; i < len(ks); {
		if ks[i] == slot {
			ks = append(ks[:i], ks[i+1:]...)
		} else {
			i++
		}
	}
	if len(ks) == 0 {
		delete(m, vk)
		if len(m) == 0 {
			delete(ix.eq, attr)
		}
	} else {
		m[vk] = ks
	}
}

// Remove drops the filter registered under key.
func (ix *Index) Remove(key string) {
	slot, ok := ix.slotOf[key]
	if !ok {
		return
	}
	f := ix.filters[slot]
	delete(ix.slotOf, key)
	delete(ix.all, slot)
	for _, c := range f.Constraints() {
		switch c.Op {
		case OpEq:
			ix.removeEq(c.Attr, valueKey(c.Val), slot)
		case OpIn:
			seen := make(map[string]bool, len(c.Set))
			for _, v := range c.Set {
				vk := valueKey(v)
				if seen[vk] {
					continue
				}
				seen[vk] = true
				ix.removeEq(c.Attr, vk, slot)
			}
		default:
			es := ix.scan[c.Attr]
			for i := 0; i < len(es); {
				if es[i].slot == slot {
					es = append(es[:i], es[i+1:]...)
				} else {
					i++
				}
			}
			if len(es) == 0 {
				delete(ix.scan, c.Attr)
			} else {
				ix.scan[c.Attr] = es
			}
		}
	}
	ix.keys[slot] = ""
	ix.filters[slot] = Filter{}
	ix.sizes[slot] = 0
	ix.free = append(ix.free, slot)
}

// Match calls visit for every indexed filter matching the notification.
// Visit order is unspecified.
func (ix *Index) Match(n message.Notification, visit func(key string)) {
	for slot := range ix.all {
		visit(ix.keys[slot])
	}
	bump := func(slot int) {
		if ix.counts[slot] == 0 {
			ix.dirty = append(ix.dirty, slot)
		}
		ix.counts[slot]++
	}
	for attr, v := range n.Attrs {
		if buckets, ok := ix.eq[attr]; ok {
			for _, slot := range buckets[valueKey(v)] {
				bump(slot)
			}
		}
		for _, e := range ix.scan[attr] {
			if e.c.Matches(n) {
				bump(e.slot)
			}
		}
	}
	for _, slot := range ix.dirty {
		if ix.counts[slot] == ix.sizes[slot] {
			visit(ix.keys[slot])
		}
		ix.counts[slot] = 0
	}
	ix.dirty = ix.dirty[:0]
}

// valueKey canonicalizes a value for hash lookup. Numeric values share a
// key space so Int(3) and Float(3) collide, matching Value.Equal semantics.
func valueKey(v message.Value) string {
	switch v.Kind() {
	case message.KindInt:
		return "n" + message.Float(float64(v.IntVal())).String()
	case message.KindFloat:
		return "n" + v.String()
	case message.KindString:
		return "s" + v.Str()
	case message.KindBool:
		if v.BoolVal() {
			return "bt"
		}
		return "bf"
	default:
		return "?"
	}
}
