package filter

import (
	"slices"

	"rebeca/internal/message"
)

// Index is a predicate-counting matching index over many filters, the
// standard acceleration for content-based brokers (cf. the matching
// algorithms evaluated in [16]): equality and membership constraints are
// hash-indexed per attribute, remaining predicates are grouped per
// attribute, and a filter matches when its per-notification satisfied-
// constraint count reaches its constraint total.
//
// Filters occupy integer slots so the hot counting path touches only flat
// slices; the counter buffer is reused across Match calls via a dirty
// list. Hash lookups key on a comparable value struct — no per-attribute
// string building — and each filter's constraint list is cached at Add
// time, so the steady-state Match path performs zero allocations.
// Zero-constraint filters (All) are tracked separately and match every
// notification. The index is not safe for concurrent use.
type Index struct {
	// slotOf maps a filter key to its slot.
	slotOf map[string]int
	// keys, filters, cons and sizes are slot-indexed; sizes[i] == 0 marks
	// a free or match-all slot. cons caches Filter.Constraints() from Add
	// so Remove (and re-indexing) never re-copies the constraint list.
	keys    []string
	filters []Filter
	cons    [][]Constraint
	sizes   []int
	free    []int
	// all lists slots of match-everything filters, kept sorted ascending
	// so Match visits them deterministically.
	all []int
	// eq[attr][valueKey] lists slots with an Eq/In constraint satisfied by
	// exactly that value.
	eq map[string]map[valueKey][]int
	// scan[attr] lists non-hashable constraints on attr with their slot.
	scan map[string][]scanEntry

	// counts and dirty form the reusable counting buffer.
	counts []int
	dirty  []int
}

type scanEntry struct {
	slot int
	c    Constraint
}

// NewIndex returns an empty matching index.
func NewIndex() *Index {
	return &Index{
		slotOf: make(map[string]int),
		eq:     make(map[string]map[valueKey][]int),
		scan:   make(map[string][]scanEntry),
	}
}

// Len returns the number of indexed filters.
func (ix *Index) Len() int { return len(ix.slotOf) }

// Add indexes the filter under the key, replacing any previous filter with
// the same key.
func (ix *Index) Add(key string, f Filter) {
	if _, ok := ix.slotOf[key]; ok {
		ix.Remove(key)
	}
	cs := f.Constraints()
	slot := ix.alloc(key, f, cs)
	if len(cs) == 0 {
		ix.insertAll(slot)
		return
	}
	ix.sizes[slot] = len(cs)
	for _, c := range cs {
		switch {
		case c.Op == OpEq && !isNaN(c.Val):
			ix.addEq(c.Attr, keyOf(c.Val), slot)
		case c.Op == OpEq:
			// Eq(NaN) can never be satisfied (NaN equals nothing, itself
			// included). It must not enter the hash buckets: a NaN map key
			// is unreachable — un-removable, a leak — and would wrongly
			// count as satisfied for a NaN notification value. The scan
			// path evaluates Matches, which is correctly always false.
			ix.scan[c.Attr] = append(ix.scan[c.Attr], scanEntry{slot: slot, c: c})
		case c.Op == OpIn:
			eachHashableSetKey(c, func(vk valueKey) { ix.addEq(c.Attr, vk, slot) })
		default:
			ix.scan[c.Attr] = append(ix.scan[c.Attr], scanEntry{slot: slot, c: c})
		}
	}
}

// eachHashableSetKey visits the distinct bucket keys of an In constraint:
// duplicates are skipped (a notification carries one value per attribute,
// so at most one bucket may fire per constraint) and NaN members entirely
// (they can never equal an attribute value, and a NaN map key would be
// unreachable). Add and Remove share this walk so the buckets they touch
// are always symmetric.
func eachHashableSetKey(c Constraint, fn func(valueKey)) {
	seen := make(map[valueKey]bool, len(c.Set))
	for _, v := range c.Set {
		if isNaN(v) {
			continue
		}
		vk := keyOf(v)
		if seen[vk] {
			continue
		}
		seen[vk] = true
		fn(vk)
	}
}

func (ix *Index) alloc(key string, f Filter, cs []Constraint) int {
	var slot int
	if n := len(ix.free); n > 0 {
		slot = ix.free[n-1]
		ix.free = ix.free[:n-1]
		ix.keys[slot] = key
		ix.filters[slot] = f
		ix.cons[slot] = cs
		ix.sizes[slot] = 0
	} else {
		slot = len(ix.keys)
		ix.keys = append(ix.keys, key)
		ix.filters = append(ix.filters, f)
		ix.cons = append(ix.cons, cs)
		ix.sizes = append(ix.sizes, 0)
		ix.counts = append(ix.counts, 0)
	}
	ix.slotOf[key] = slot
	return slot
}

// insertAll adds a slot to the sorted match-all list.
func (ix *Index) insertAll(slot int) {
	i, _ := slices.BinarySearch(ix.all, slot)
	ix.all = slices.Insert(ix.all, i, slot)
}

// removeAll drops a slot from the sorted match-all list.
func (ix *Index) removeAll(slot int) {
	if i, ok := slices.BinarySearch(ix.all, slot); ok {
		ix.all = slices.Delete(ix.all, i, i+1)
	}
}

func (ix *Index) addEq(attr string, vk valueKey, slot int) {
	m, ok := ix.eq[attr]
	if !ok {
		m = make(map[valueKey][]int)
		ix.eq[attr] = m
	}
	m[vk] = append(m[vk], slot)
}

func (ix *Index) removeEq(attr string, vk valueKey, slot int) {
	m, ok := ix.eq[attr]
	if !ok {
		return
	}
	ks := m[vk]
	for i := 0; i < len(ks); {
		if ks[i] == slot {
			ks = append(ks[:i], ks[i+1:]...)
		} else {
			i++
		}
	}
	if len(ks) == 0 {
		delete(m, vk)
		if len(m) == 0 {
			delete(ix.eq, attr)
		}
	} else {
		m[vk] = ks
	}
}

// Remove drops the filter registered under key.
func (ix *Index) Remove(key string) {
	slot, ok := ix.slotOf[key]
	if !ok {
		return
	}
	cs := ix.cons[slot]
	delete(ix.slotOf, key)
	if len(cs) == 0 {
		ix.removeAll(slot)
	}
	for _, c := range cs {
		switch {
		case c.Op == OpEq && !isNaN(c.Val):
			ix.removeEq(c.Attr, keyOf(c.Val), slot)
		case c.Op == OpIn:
			eachHashableSetKey(c, func(vk valueKey) { ix.removeEq(c.Attr, vk, slot) })
		default:
			es := ix.scan[c.Attr]
			for i := 0; i < len(es); {
				if es[i].slot == slot {
					es = append(es[:i], es[i+1:]...)
				} else {
					i++
				}
			}
			if len(es) == 0 {
				delete(ix.scan, c.Attr)
			} else {
				ix.scan[c.Attr] = es
			}
		}
	}
	ix.keys[slot] = ""
	ix.filters[slot] = Filter{}
	ix.cons[slot] = nil
	ix.sizes[slot] = 0
	ix.free = append(ix.free, slot)
}

// Match calls visit for every indexed filter matching the notification.
//
// Visit-order contract: the zero-constraint (match-all) filters are
// visited first, in ascending slot order — deterministic across calls for
// an unchanged index. The constrained matches follow in an unspecified
// order (the counting pass walks the notification's attribute map), so
// callers needing a total order re-sort the visited keys themselves, as
// routing.Table does with its insertion positions.
//
// The steady-state path allocates nothing: the counter buffer, dirty list
// and hash keys are all reused or stack-allocated.
func (ix *Index) Match(n message.Notification, visit func(key string)) {
	for _, slot := range ix.all {
		visit(ix.keys[slot])
	}
	bump := func(slot int) {
		if ix.counts[slot] == 0 {
			ix.dirty = append(ix.dirty, slot)
		}
		ix.counts[slot]++
	}
	for attr, v := range n.Attrs {
		if buckets, ok := ix.eq[attr]; ok {
			for _, slot := range buckets[keyOf(v)] {
				bump(slot)
			}
		}
		for _, e := range ix.scan[attr] {
			if e.c.Matches(n) {
				bump(e.slot)
			}
		}
	}
	for _, slot := range ix.dirty {
		if ix.counts[slot] == ix.sizes[slot] {
			visit(ix.keys[slot])
		}
		ix.counts[slot] = 0
	}
	ix.dirty = ix.dirty[:0]
}

// valueKey canonicalizes a value for hash lookup as a comparable struct —
// no string building on the Match hot path. Numeric values share the
// float key space so Int(3) and Float(3) collide, matching Value.Equal
// semantics; NaN never equals itself, which likewise matches (an Eq(NaN)
// constraint can never be satisfied).
type valueKey struct {
	kind byte // 'n' numeric, 's' string, 'b' bool, '?' invalid
	num  float64
	str  string
}

// isNaN reports whether v is a float NaN — the one value Eq/In hashing
// must special-case: it equals nothing, and as a raw map key it would be
// unreachable (and therefore un-removable).
func isNaN(v message.Value) bool {
	return v.Kind() == message.KindFloat && v.FloatVal() != v.FloatVal()
}

func keyOf(v message.Value) valueKey {
	switch v.Kind() {
	case message.KindInt:
		return valueKey{kind: 'n', num: float64(v.IntVal())}
	case message.KindFloat:
		if f := v.FloatVal(); f != f {
			// Canonicalize NaN: never used as a bucket key (Add/Remove
			// filter NaN out), and as a lookup key it must not panic or
			// behave platform-dependently.
			return valueKey{kind: 'N'}
		}
		return valueKey{kind: 'n', num: v.FloatVal()}
	case message.KindString:
		return valueKey{kind: 's', str: v.Str()}
	case message.KindBool:
		if v.BoolVal() {
			return valueKey{kind: 'b', num: 1}
		}
		return valueKey{kind: 'b'}
	default:
		return valueKey{kind: '?'}
	}
}
