// Package filter implements the content-based filter language of REBECA
// (§2): boolean-valued predicates over entire notification contents,
// composed into conjunctive filters, together with the covering, overlap and
// merging relations used by the routing optimizations, and the location
// marker ("myloc") that makes subscriptions location dependent (§1).
package filter

import (
	"fmt"
	"strings"

	"rebeca/internal/message"
)

// Op enumerates the predicate operators available on a single attribute.
// Enums start at one so the zero Op is invalid.
type Op int

// Supported operators.
const (
	OpInvalid Op = iota
	// OpExists matches any notification that carries the attribute.
	OpExists
	// OpEq / OpNe compare for (in)equality of values.
	OpEq
	OpNe
	// Ordering operators require comparable values (numeric or string).
	OpLt
	OpLe
	OpGt
	OpGe
	// String operators require string values.
	OpPrefix
	OpSuffix
	OpContains
	// OpIn matches when the attribute equals any member of Set.
	OpIn
	// OpMyloc is the location-dependent marker (§1): "location ∈ myloc".
	// It never matches by itself; the location layer resolves it into a
	// concrete OpIn set before the filter enters the routing tables.
	OpMyloc
	// OpContext is the generalized state-dependent marker (§4): the Val
	// names the context whose resolved value set replaces the marker.
	OpContext
)

var opNames = map[Op]string{
	OpExists:   "exists",
	OpEq:       "=",
	OpNe:       "!=",
	OpLt:       "<",
	OpLe:       "<=",
	OpGt:       ">",
	OpGe:       ">=",
	OpPrefix:   "prefix",
	OpSuffix:   "suffix",
	OpContains: "contains",
	OpIn:       "in",
	OpMyloc:    "in-myloc",
	OpContext:  "in-context",
}

// String returns the operator's symbol.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Constraint is a predicate on one attribute. A filter is a conjunction of
// constraints. The zero Constraint is invalid.
type Constraint struct {
	Attr string
	Op   Op
	// Val is the operand for unary comparison operators.
	Val message.Value
	// Set is the operand for OpIn.
	Set []message.Value
}

// Exists matches notifications carrying the attribute.
func Exists(attr string) Constraint { return Constraint{Attr: attr, Op: OpExists} }

// Eq matches attribute == v.
func Eq(attr string, v message.Value) Constraint {
	return Constraint{Attr: attr, Op: OpEq, Val: v}
}

// Ne matches attribute != v (attribute must be present).
func Ne(attr string, v message.Value) Constraint {
	return Constraint{Attr: attr, Op: OpNe, Val: v}
}

// Lt matches attribute < v.
func Lt(attr string, v message.Value) Constraint {
	return Constraint{Attr: attr, Op: OpLt, Val: v}
}

// Le matches attribute <= v.
func Le(attr string, v message.Value) Constraint {
	return Constraint{Attr: attr, Op: OpLe, Val: v}
}

// Gt matches attribute > v.
func Gt(attr string, v message.Value) Constraint {
	return Constraint{Attr: attr, Op: OpGt, Val: v}
}

// Ge matches attribute >= v.
func Ge(attr string, v message.Value) Constraint {
	return Constraint{Attr: attr, Op: OpGe, Val: v}
}

// Prefix matches string attributes with the given prefix.
func Prefix(attr, p string) Constraint {
	return Constraint{Attr: attr, Op: OpPrefix, Val: message.String(p)}
}

// Suffix matches string attributes with the given suffix.
func Suffix(attr, s string) Constraint {
	return Constraint{Attr: attr, Op: OpSuffix, Val: message.String(s)}
}

// Contains matches string attributes containing the given substring.
func Contains(attr, s string) Constraint {
	return Constraint{Attr: attr, Op: OpContains, Val: message.String(s)}
}

// In matches when the attribute equals any of the given values.
func In(attr string, vs ...message.Value) Constraint {
	return Constraint{Attr: attr, Op: OpIn, Set: vs}
}

// Matches evaluates the constraint against a notification.
func (c Constraint) Matches(n message.Notification) bool {
	v, ok := n.Get(c.Attr)
	if !ok {
		return false
	}
	switch c.Op {
	case OpExists:
		return true
	case OpEq:
		return v.Equal(c.Val)
	case OpNe:
		return !v.Equal(c.Val)
	case OpLt, OpLe, OpGt, OpGe:
		cmp, ok := v.Compare(c.Val)
		if !ok {
			return false
		}
		switch c.Op {
		case OpLt:
			return cmp < 0
		case OpLe:
			return cmp <= 0
		case OpGt:
			return cmp > 0
		default:
			return cmp >= 0
		}
	case OpPrefix:
		return v.Kind() == message.KindString && strings.HasPrefix(v.Str(), c.Val.Str())
	case OpSuffix:
		return v.Kind() == message.KindString && strings.HasSuffix(v.Str(), c.Val.Str())
	case OpContains:
		return v.Kind() == message.KindString && strings.Contains(v.Str(), c.Val.Str())
	case OpIn:
		for _, s := range c.Set {
			if v.Equal(s) {
				return true
			}
		}
		return false
	case OpMyloc, OpContext:
		// Unresolved markers match nothing; they must be resolved by the
		// location/context layer before reaching a routing table.
		return false
	default:
		return false
	}
}

// Covers reports whether c is implied by d — that is, every notification
// matching d also matches c — for constraints on the same attribute. The
// relation is conservative: false negatives are allowed (the routing layer
// then merely forgoes an optimization), false positives are not.
func (c Constraint) Covers(d Constraint) bool {
	if c.Attr != d.Attr {
		return false
	}
	if c.Op == OpExists {
		// Any constraint requires attribute presence.
		return true
	}
	switch c.Op {
	case OpEq:
		switch d.Op {
		case OpEq:
			return c.Val.Equal(d.Val)
		case OpIn:
			return len(d.Set) > 0 && allEqual(d.Set, c.Val)
		}
	case OpNe:
		switch d.Op {
		case OpEq:
			return !c.Val.Equal(d.Val)
		case OpNe:
			return c.Val.Equal(d.Val)
		case OpIn:
			for _, v := range d.Set {
				if c.Val.Equal(v) {
					return false
				}
			}
			return len(d.Set) > 0
		case OpLt, OpLe, OpGt, OpGe:
			// e.g. c: x != 5 covered by d: x < 3.
			return !Constraint{Attr: c.Attr, Op: d.Op, Val: d.Val}.
				matchesValue(c.Val)
		}
	case OpLt, OpLe, OpGt, OpGe:
		switch d.Op {
		case OpEq:
			return c.matchesValue(d.Val)
		case OpIn:
			if len(d.Set) == 0 {
				return false
			}
			for _, v := range d.Set {
				if !c.matchesValue(v) {
					return false
				}
			}
			return true
		case OpLt, OpLe, OpGt, OpGe:
			return rangeCovers(c, d)
		}
	case OpPrefix:
		switch d.Op {
		case OpEq:
			return c.matchesValue(d.Val)
		case OpPrefix:
			return strings.HasPrefix(d.Val.Str(), c.Val.Str())
		}
	case OpSuffix:
		switch d.Op {
		case OpEq:
			return c.matchesValue(d.Val)
		case OpSuffix:
			return strings.HasSuffix(d.Val.Str(), c.Val.Str())
		}
	case OpContains:
		switch d.Op {
		case OpEq:
			return c.matchesValue(d.Val)
		case OpContains, OpPrefix, OpSuffix:
			return strings.Contains(d.Val.Str(), c.Val.Str())
		}
	case OpIn:
		switch d.Op {
		case OpEq:
			return c.matchesValue(d.Val)
		case OpIn:
			if len(d.Set) == 0 {
				return false
			}
			for _, v := range d.Set {
				if !c.matchesValue(v) {
					return false
				}
			}
			return true
		}
	}
	return false
}

// matchesValue evaluates the constraint against a single value, as if a
// notification carried exactly that value for the attribute.
func (c Constraint) matchesValue(v message.Value) bool {
	n := message.Notification{Attrs: map[string]message.Value{c.Attr: v}}
	return c.Matches(n)
}

// rangeCovers decides implication between two ordering constraints on the
// same attribute, e.g. "x < 10" covers "x <= 5".
func rangeCovers(c, d Constraint) bool {
	cmp, ok := d.Val.Compare(c.Val)
	if !ok {
		return false
	}
	switch c.Op {
	case OpLt:
		switch d.Op {
		case OpLt:
			return cmp <= 0
		case OpLe:
			return cmp < 0
		}
	case OpLe:
		switch d.Op {
		case OpLt, OpLe:
			return cmp <= 0
		}
	case OpGt:
		switch d.Op {
		case OpGt:
			return cmp >= 0
		case OpGe:
			return cmp > 0
		}
	case OpGe:
		switch d.Op {
		case OpGt, OpGe:
			return cmp >= 0
		}
	}
	return false
}

// DisjointWith reports whether the two constraints on the same attribute
// provably cannot both match one notification. Used by the overlap check.
// Conservative: false means "may overlap".
func (c Constraint) DisjointWith(d Constraint) bool {
	if c.Attr != d.Attr {
		return false
	}
	// Equality against ranges or other equalities.
	if c.Op == OpEq && d.Op != OpMyloc {
		return !d.matchesValue(c.Val)
	}
	if d.Op == OpEq && c.Op != OpMyloc {
		return !c.matchesValue(d.Val)
	}
	if c.Op == OpIn && d.Op != OpMyloc {
		for _, v := range c.Set {
			if d.matchesValue(v) {
				return false
			}
		}
		return true
	}
	if d.Op == OpIn && c.Op != OpMyloc {
		for _, v := range d.Set {
			if c.matchesValue(v) {
				return false
			}
		}
		return true
	}
	// Opposed open ranges: x < a vs x > b with a <= b, etc.
	lowish := func(o Op) bool { return o == OpLt || o == OpLe }
	highish := func(o Op) bool { return o == OpGt || o == OpGe }
	if lowish(c.Op) && highish(d.Op) {
		return rangesDisjoint(c, d)
	}
	if highish(c.Op) && lowish(d.Op) {
		return rangesDisjoint(d, c)
	}
	return false
}

// rangesDisjoint reports whether upper bound lo ("x < a"/"x <= a") and lower
// bound hi ("x > b"/"x >= b") exclude each other.
func rangesDisjoint(lo, hi Constraint) bool {
	cmp, ok := lo.Val.Compare(hi.Val)
	if !ok {
		return false
	}
	if cmp < 0 {
		return true // a < b: x<a and x>b disjoint regardless of strictness
	}
	if cmp > 0 {
		return false
	}
	// a == b: disjoint unless both bounds are inclusive.
	return !(lo.Op == OpLe && hi.Op == OpGe)
}

// String renders the constraint, e.g. `temp <= 21`.
func (c Constraint) String() string {
	switch c.Op {
	case OpExists:
		return fmt.Sprintf("exists(%s)", c.Attr)
	case OpMyloc:
		return fmt.Sprintf("%s in myloc", c.Attr)
	case OpContext:
		return contextString(c)
	case OpIn:
		parts := make([]string, len(c.Set))
		for i, v := range c.Set {
			parts[i] = v.String()
		}
		return fmt.Sprintf("%s in {%s}", c.Attr, strings.Join(parts, ","))
	default:
		return fmt.Sprintf("%s %s %s", c.Attr, c.Op, c.Val)
	}
}

func allEqual(vs []message.Value, v message.Value) bool {
	for _, x := range vs {
		if !x.Equal(v) {
			return false
		}
	}
	return true
}
