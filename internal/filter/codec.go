package filter

import (
	"bytes"
	"encoding/gob"
)

// GobEncode implements gob.GobEncoder: a filter travels as its constraint
// list. Constraint has exported fields, and message.Value implements the
// gob codec interfaces itself.
func (f Filter) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(f.cs); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (f *Filter) GobDecode(data []byte) error {
	var cs []Constraint
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&cs); err != nil {
		return err
	}
	*f = New(cs...)
	return nil
}
