package buffer

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"rebeca/internal/message"
)

// op is a random buffer operation for property tests.
type op struct {
	Kind  uint8 // 0..5: add, add, add, snapshot, clear, len
	Body  uint16
	Delta uint16 // virtual-time advance in ms
}

// Generate implements quick.Generator.
func (op) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(op{
		Kind:  uint8(r.Intn(6)),
		Body:  uint16(r.Intn(1 << 12)),
		Delta: uint16(r.Intn(20)),
	})
}

// model is the reference implementation: a plain slice with the policy's
// bounds applied eagerly.
type model struct {
	ttl     time.Duration
	cap     int
	entries []entry
}

func (m *model) add(n message.Notification, now time.Time) {
	m.gc(now)
	m.entries = append(m.entries, entry{n: n, at: now})
	if m.cap > 0 && len(m.entries) > m.cap {
		m.entries = m.entries[len(m.entries)-m.cap:]
	}
}

func (m *model) snapshot(now time.Time) []message.Notification {
	m.gc(now)
	out := make([]message.Notification, len(m.entries))
	for i, e := range m.entries {
		out[i] = e.n
	}
	return out
}

func (m *model) gc(now time.Time) {
	if m.ttl == 0 {
		return
	}
	cut := now.Add(-m.ttl)
	i := 0
	for i < len(m.entries) && m.entries[i].at.Before(cut) {
		i++
	}
	m.entries = m.entries[i:]
}

// checkAgainstModel runs a random op sequence against both a policy and the
// model and compares snapshots.
func checkAgainstModel(t *testing.T, mk func() Policy, ttl time.Duration, cap int) {
	t.Helper()
	f := func(ops []op) bool {
		p := mk()
		m := &model{ttl: ttl, cap: cap}
		now := t0
		seq := uint64(0)
		for _, o := range ops {
			now = now.Add(time.Duration(o.Delta) * time.Millisecond)
			switch o.Kind {
			case 0, 1, 2:
				seq++
				n := mkNote("p", seq, "x")
				p.Add(n, now)
				m.add(n, now)
			case 3:
				got := p.Snapshot(now)
				want := m.snapshot(now)
				if len(got) != len(want) {
					return false
				}
				for i := range got {
					if got[i].ID != want[i].ID {
						return false
					}
				}
			case 4:
				p.Clear()
				m.entries = nil
			case 5:
				if p.Len() < 0 {
					return false
				}
			}
		}
		// Final deep comparison.
		got := p.Snapshot(now)
		want := m.snapshot(now)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].ID != want[i].ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickUnboundedMatchesModel(t *testing.T) {
	checkAgainstModel(t, func() Policy { return NewUnbounded() }, 0, 0)
}

func TestQuickTimeBasedMatchesModel(t *testing.T) {
	checkAgainstModel(t, func() Policy { return NewTimeBased(50 * time.Millisecond) },
		50*time.Millisecond, 0)
}

func TestQuickLastNMatchesModel(t *testing.T) {
	checkAgainstModel(t, func() Policy { return NewLastN(7) }, 0, 7)
}

func TestQuickCombinedMatchesModel(t *testing.T) {
	checkAgainstModel(t, func() Policy { return NewCombined(50*time.Millisecond, 7) },
		50*time.Millisecond, 7)
}

func TestQuickDigestMatchesModel(t *testing.T) {
	checkAgainstModel(t, func() Policy {
		return NewShared().NewDigest(50*time.Millisecond, 7)
	}, 50*time.Millisecond, 7)
}

// Property: the shared store's refcounts never leak — after clearing every
// digest, the store is empty.
func TestQuickSharedStoreNoLeak(t *testing.T) {
	f := func(ops []op, nDigests uint8) bool {
		k := int(nDigests%4) + 1
		s := NewShared()
		digests := make([]*Digest, k)
		for i := range digests {
			digests[i] = s.NewDigest(0, 5)
		}
		now := t0
		seq := uint64(0)
		for _, o := range ops {
			now = now.Add(time.Duration(o.Delta) * time.Millisecond)
			seq++
			n := mkNote("p", seq, "x")
			digests[int(o.Body)%k].Add(n, now)
		}
		for _, d := range digests {
			d.Clear()
		}
		return s.Len() == 0 && s.Bytes() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Len always equals len(Snapshot) for count-bounded policies at
// the same instant.
func TestQuickLenConsistent(t *testing.T) {
	f := func(ops []op) bool {
		p := NewLastN(5)
		now := t0
		seq := uint64(0)
		for _, o := range ops {
			now = now.Add(time.Duration(o.Delta) * time.Millisecond)
			seq++
			p.Add(mkNote("p", seq, "x"), now)
			if p.Len() != len(p.Snapshot(now)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
