package buffer

import (
	"strconv"
	"testing"
	"time"

	"rebeca/internal/message"
)

var t0 = time.Date(2003, 6, 16, 12, 0, 0, 0, time.UTC) // Middleware 2003

func mkNote(pub message.NodeID, seq uint64, body string) message.Notification {
	n := message.NewNotification(map[string]message.Value{
		"body": message.String(body),
	})
	n.ID = message.NotificationID{Publisher: pub, Seq: seq}
	return n
}

func bodies(ns []message.Notification) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		v, _ := n.Get("body")
		out[i] = v.Str()
	}
	return out
}

func eqStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestUnboundedKeepsEverything(t *testing.T) {
	u := NewUnbounded()
	for i := 0; i < 100; i++ {
		u.Add(mkNote("p", uint64(i), strconv.Itoa(i)), t0.Add(time.Duration(i)*time.Second))
	}
	if u.Len() != 100 {
		t.Fatalf("Len = %d, want 100", u.Len())
	}
	snap := u.Snapshot(t0.Add(time.Hour))
	if len(snap) != 100 || bodies(snap)[0] != "0" || bodies(snap)[99] != "99" {
		t.Error("unbounded snapshot wrong")
	}
	u.Clear()
	if u.Len() != 0 {
		t.Error("Clear did not empty buffer")
	}
}

func TestTimeBasedExpiry(t *testing.T) {
	b := NewTimeBased(10 * time.Second)
	b.Add(mkNote("p", 1, "old"), t0)
	b.Add(mkNote("p", 2, "mid"), t0.Add(5*time.Second))
	b.Add(mkNote("p", 3, "new"), t0.Add(12*time.Second))
	got := bodies(b.Snapshot(t0.Add(13 * time.Second)))
	if !eqStrings(got, []string{"mid", "new"}) {
		t.Errorf("snapshot = %v, want [mid new]", got)
	}
	// Everything expires eventually.
	if n := len(b.Snapshot(t0.Add(time.Hour))); n != 0 {
		t.Errorf("after TTL all should expire, got %d", n)
	}
}

func TestTimeBasedBoundaryExactTTL(t *testing.T) {
	b := NewTimeBased(10 * time.Second)
	b.Add(mkNote("p", 1, "edge"), t0)
	// Exactly at TTL the entry is still live (strictly-older-than deletion,
	// matching §4 "published more than t seconds ago").
	if got := bodies(b.Snapshot(t0.Add(10 * time.Second))); !eqStrings(got, []string{"edge"}) {
		t.Errorf("entry at exact TTL should survive, got %v", got)
	}
	if got := b.Snapshot(t0.Add(10*time.Second + time.Nanosecond)); len(got) != 0 {
		t.Errorf("entry beyond TTL should be gone, got %v", bodies(got))
	}
}

func TestLastNEviction(t *testing.T) {
	b := NewLastN(3)
	for i := 0; i < 5; i++ {
		b.Add(mkNote("p", uint64(i), strconv.Itoa(i)), t0)
	}
	got := bodies(b.Snapshot(t0))
	if !eqStrings(got, []string{"2", "3", "4"}) {
		t.Errorf("LastN = %v, want [2 3 4]", got)
	}
	if b.Len() != 3 {
		t.Errorf("Len = %d, want 3", b.Len())
	}
}

func TestCombinedBounds(t *testing.T) {
	b := NewCombined(10*time.Second, 2)
	b.Add(mkNote("p", 1, "a"), t0)
	b.Add(mkNote("p", 2, "b"), t0.Add(time.Second))
	b.Add(mkNote("p", 3, "c"), t0.Add(2*time.Second))
	// Count bound kicks in first.
	if got := bodies(b.Snapshot(t0.Add(3 * time.Second))); !eqStrings(got, []string{"b", "c"}) {
		t.Errorf("count bound: %v, want [b c]", got)
	}
	// TTL kicks in later.
	if got := bodies(b.Snapshot(t0.Add(11*time.Second + 500*time.Millisecond))); !eqStrings(got, []string{"c"}) {
		t.Errorf("ttl bound: %v, want [c]", got)
	}
}

func TestSemanticNullification(t *testing.T) {
	menu := func(rest, dish string, seq uint64) message.Notification {
		n := message.NewNotification(map[string]message.Value{
			"restaurant": message.String(rest),
			"body":       message.String(dish),
		})
		n.ID = message.NotificationID{Publisher: "pub", Seq: seq}
		return n
	}
	b := NewSemantic(NullifyByKey("restaurant"), 0)
	b.Add(menu("roma", "pasta", 1), t0)
	b.Add(menu("sushi-ya", "maki", 2), t0)
	b.Add(menu("roma", "pizza", 3), t0) // supersedes pasta
	got := bodies(b.Snapshot(t0))
	if !eqStrings(got, []string{"maki", "pizza"}) {
		t.Errorf("semantic buffer = %v, want [maki pizza]", got)
	}
}

func TestSemanticCap(t *testing.T) {
	b := NewSemantic(func(_, _ message.Notification) bool { return false }, 2)
	for i := 0; i < 4; i++ {
		b.Add(mkNote("p", uint64(i), strconv.Itoa(i)), t0)
	}
	if got := bodies(b.Snapshot(t0)); !eqStrings(got, []string{"2", "3"}) {
		t.Errorf("capped semantic = %v, want [2 3]", got)
	}
}

func TestSemanticNullifyByKeyMissingAttr(t *testing.T) {
	f := NullifyByKey("k")
	with := message.NewNotification(map[string]message.Value{"k": message.Int(1)})
	without := message.NewNotification(map[string]message.Value{"x": message.Int(1)})
	if f(with, without) || f(without, with) {
		t.Error("missing key attribute must not nullify")
	}
}

func TestPoliciesPreserveArrivalOrder(t *testing.T) {
	factories := map[string]Factory{
		"unbounded": func() Policy { return NewUnbounded() },
		"time":      func() Policy { return NewTimeBased(time.Hour) },
		"lastn":     func() Policy { return NewLastN(100) },
		"combined":  func() Policy { return NewCombined(time.Hour, 100) },
	}
	for name, f := range factories {
		t.Run(name, func(t *testing.T) {
			p := f()
			for i := 0; i < 10; i++ {
				p.Add(mkNote("p", uint64(i), strconv.Itoa(i)), t0.Add(time.Duration(i)))
			}
			got := bodies(p.Snapshot(t0.Add(time.Second)))
			for i := 0; i < 10; i++ {
				if got[i] != strconv.Itoa(i) {
					t.Fatalf("order broken: %v", got)
				}
			}
		})
	}
}

func TestBytesAccounting(t *testing.T) {
	p := NewUnbounded()
	if p.Bytes() != 0 {
		t.Error("empty buffer should have 0 bytes")
	}
	p.Add(mkNote("p", 1, "hello"), t0)
	one := p.Bytes()
	if one <= 0 {
		t.Error("Bytes should be positive after Add")
	}
	p.Add(mkNote("p", 2, "hello"), t0)
	if p.Bytes() != 2*one {
		t.Errorf("Bytes = %d, want %d", p.Bytes(), 2*one)
	}
}

// --- Shared buffer -----------------------------------------------------

func TestSharedRefcounting(t *testing.T) {
	s := NewShared()
	d1 := s.NewDigest(0, 0)
	d2 := s.NewDigest(0, 0)
	n := mkNote("p", 1, "shared")
	d1.Add(n, t0)
	d2.Add(n, t0)
	if s.Len() != 1 {
		t.Fatalf("store should hold one distinct notification, got %d", s.Len())
	}
	d1.Clear()
	if s.Len() != 1 {
		t.Error("store must keep entry while d2 references it")
	}
	d2.Clear()
	if s.Len() != 0 {
		t.Error("store must free entry once last reference dropped")
	}
}

func TestSharedSnapshotContent(t *testing.T) {
	s := NewShared()
	d := s.NewDigest(0, 0)
	for i := 0; i < 5; i++ {
		d.Add(mkNote("p", uint64(i), strconv.Itoa(i)), t0)
	}
	got := bodies(d.Snapshot(t0))
	if !eqStrings(got, []string{"0", "1", "2", "3", "4"}) {
		t.Errorf("digest snapshot = %v", got)
	}
}

func TestSharedDigestTTL(t *testing.T) {
	s := NewShared()
	d := s.NewDigest(10*time.Second, 0)
	d.Add(mkNote("p", 1, "old"), t0)
	d.Add(mkNote("p", 2, "new"), t0.Add(9*time.Second))
	got := bodies(d.Snapshot(t0.Add(15 * time.Second)))
	if !eqStrings(got, []string{"new"}) {
		t.Errorf("digest TTL snapshot = %v, want [new]", got)
	}
	if s.Len() != 1 {
		t.Errorf("expired digest entries must release store refs, store len=%d", s.Len())
	}
}

func TestSharedDigestCap(t *testing.T) {
	s := NewShared()
	d := s.NewDigest(0, 2)
	for i := 0; i < 4; i++ {
		d.Add(mkNote("p", uint64(i), strconv.Itoa(i)), t0)
	}
	if got := bodies(d.Snapshot(t0)); !eqStrings(got, []string{"2", "3"}) {
		t.Errorf("capped digest = %v, want [2 3]", got)
	}
	if s.Len() != 2 {
		t.Errorf("store should only hold capped entries, got %d", s.Len())
	}
}

func TestSharedMemorySavings(t *testing.T) {
	// E8's claim in miniature: k digests over identical traffic should cost
	// ~1 content copy + k id lists, far less than k private copies.
	const k = 10
	s := NewShared()
	digests := make([]*Digest, k)
	for i := range digests {
		digests[i] = s.NewDigest(0, 0)
	}
	privates := make([]Policy, k)
	for i := range privates {
		privates[i] = NewUnbounded()
	}
	for seq := uint64(0); seq < 50; seq++ {
		n := mkNote("p", seq, "some notification body with realistic length")
		for i := 0; i < k; i++ {
			digests[i].Add(n, t0)
			privates[i].Add(n, t0)
		}
	}
	sharedCost := s.Bytes()
	for _, d := range digests {
		sharedCost += d.Bytes()
	}
	privateCost := 0
	for _, p := range privates {
		privateCost += p.Bytes()
	}
	if sharedCost >= privateCost {
		t.Errorf("shared cost %d should beat private cost %d", sharedCost, privateCost)
	}
}

func TestSharedUnrefUnknownIDHarmless(t *testing.T) {
	s := NewShared()
	s.unref(message.NotificationID{Publisher: "x", Seq: 1}) // must not panic
	if s.Len() != 0 {
		t.Error("unref of unknown id changed store")
	}
}

func TestDigestDoubleAddSameNotification(t *testing.T) {
	s := NewShared()
	d := s.NewDigest(0, 0)
	n := mkNote("p", 1, "dup")
	d.Add(n, t0)
	d.Add(n, t0)
	if s.Len() != 1 {
		t.Errorf("store should dedupe identical IDs, got %d", s.Len())
	}
	if d.Len() != 2 {
		t.Errorf("digest keeps both observations, got %d", d.Len())
	}
	d.Clear()
	if s.Len() != 0 {
		t.Error("both refs must be released")
	}
}
