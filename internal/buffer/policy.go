// Package buffer implements the notification buffering schemes of §4
// ("Embedding event histories"): time-based, history-based (last-n), their
// combination, and semantic-based nullification, plus the shared per-broker
// buffer with digest-holding virtual clients that the research agenda
// proposes to reduce redundant memory.
//
// Buffering virtual clients use a Policy to record location-relevant
// notifications while no real client is attached; on handover the buffer is
// replayed, giving the arriving client the "subscription in the past"
// semantics (§3.1).
package buffer

import (
	"time"

	"rebeca/internal/message"
)

// Policy is a garbage-collected notification buffer. Implementations are
// not safe for concurrent use; each virtual client owns its policy and is
// driven from a single broker event loop.
type Policy interface {
	// Add records a notification observed at the given (virtual) time.
	Add(n message.Notification, now time.Time)
	// Snapshot returns the live buffer contents in arrival order after
	// garbage-collecting entries expired at `now`. The returned slice is
	// owned by the caller.
	Snapshot(now time.Time) []message.Notification
	// Len returns the current number of buffered notifications (without
	// forcing a GC pass).
	Len() int
	// Bytes approximates resident buffer memory, for experiment E7/E8.
	Bytes() int
	// Clear drops all contents.
	Clear()
}

// Factory creates one Policy per virtual client.
type Factory func() Policy

// entry pairs a notification with its arrival time.
type entry struct {
	n  message.Notification
	at time.Time
}

// --- Unbounded ---------------------------------------------------------

// Unbounded buffers everything forever. It is the reference policy for
// correctness tests and the degenerate upper bound in E7.
type Unbounded struct {
	entries []entry
}

// NewUnbounded returns an empty unbounded buffer.
func NewUnbounded() *Unbounded { return &Unbounded{} }

// Add implements Policy.
func (u *Unbounded) Add(n message.Notification, now time.Time) {
	u.entries = append(u.entries, entry{n: n, at: now})
}

// Snapshot implements Policy.
func (u *Unbounded) Snapshot(time.Time) []message.Notification { return collect(u.entries) }

// Len implements Policy.
func (u *Unbounded) Len() int { return len(u.entries) }

// Bytes implements Policy.
func (u *Unbounded) Bytes() int { return bytesOf(u.entries) }

// Clear implements Policy.
func (u *Unbounded) Clear() { u.entries = nil }

// --- Time-based --------------------------------------------------------

// TimeBased keeps notifications published within the last TTL: "all
// notifications published more than t seconds ago are deleted" (§4).
type TimeBased struct {
	ttl     time.Duration
	entries []entry
}

// NewTimeBased returns a time-based buffer with the given TTL.
func NewTimeBased(ttl time.Duration) *TimeBased { return &TimeBased{ttl: ttl} }

// Add implements Policy. Adding also garbage-collects, keeping resident
// memory proportional to the live window.
func (t *TimeBased) Add(n message.Notification, now time.Time) {
	t.gc(now)
	t.entries = append(t.entries, entry{n: n, at: now})
}

// Snapshot implements Policy.
func (t *TimeBased) Snapshot(now time.Time) []message.Notification {
	t.gc(now)
	return collect(t.entries)
}

// Len implements Policy.
func (t *TimeBased) Len() int { return len(t.entries) }

// Bytes implements Policy.
func (t *TimeBased) Bytes() int { return bytesOf(t.entries) }

// Clear implements Policy.
func (t *TimeBased) Clear() { t.entries = nil }

func (t *TimeBased) gc(now time.Time) {
	cut := now.Add(-t.ttl)
	i := 0
	for i < len(t.entries) && t.entries[i].at.Before(cut) {
		i++
	}
	if i > 0 {
		t.entries = append(t.entries[:0], t.entries[i:]...)
	}
}

// --- History-based (last n) ---------------------------------------------

// LastN keeps the most recent n notifications (§4 "history-based").
type LastN struct {
	n       int
	entries []entry
}

// NewLastN returns a history-based buffer of capacity n.
func NewLastN(n int) *LastN { return &LastN{n: n} }

// Add implements Policy.
func (l *LastN) Add(n message.Notification, now time.Time) {
	l.entries = append(l.entries, entry{n: n, at: now})
	if len(l.entries) > l.n {
		drop := len(l.entries) - l.n
		l.entries = append(l.entries[:0], l.entries[drop:]...)
	}
}

// Snapshot implements Policy.
func (l *LastN) Snapshot(time.Time) []message.Notification { return collect(l.entries) }

// Len implements Policy.
func (l *LastN) Len() int { return len(l.entries) }

// Bytes implements Policy.
func (l *LastN) Bytes() int { return bytesOf(l.entries) }

// Clear implements Policy.
func (l *LastN) Clear() { l.entries = nil }

// --- Combined ------------------------------------------------------------

// Combined applies both a TTL and a count bound ("Both schemes can be
// combined", §4).
type Combined struct {
	ttl     time.Duration
	n       int
	entries []entry
}

// NewCombined returns a buffer bounded by both ttl and n.
func NewCombined(ttl time.Duration, n int) *Combined {
	return &Combined{ttl: ttl, n: n}
}

// Add implements Policy.
func (c *Combined) Add(n message.Notification, now time.Time) {
	c.gc(now)
	c.entries = append(c.entries, entry{n: n, at: now})
	if len(c.entries) > c.n {
		drop := len(c.entries) - c.n
		c.entries = append(c.entries[:0], c.entries[drop:]...)
	}
}

// Snapshot implements Policy.
func (c *Combined) Snapshot(now time.Time) []message.Notification {
	c.gc(now)
	return collect(c.entries)
}

// Len implements Policy.
func (c *Combined) Len() int { return len(c.entries) }

// Bytes implements Policy.
func (c *Combined) Bytes() int { return bytesOf(c.entries) }

// Clear implements Policy.
func (c *Combined) Clear() { c.entries = nil }

func (c *Combined) gc(now time.Time) {
	cut := now.Add(-c.ttl)
	i := 0
	for i < len(c.entries) && c.entries[i].at.Before(cut) {
		i++
	}
	if i > 0 {
		c.entries = append(c.entries[:0], c.entries[i:]...)
	}
}

// --- Semantic ------------------------------------------------------------

// NullifyFunc reports whether a new notification supersedes an old one
// (e.g. a fresh menu for the same restaurant), in the spirit of
// semantically reliable multicast [17].
type NullifyFunc func(newer, older message.Notification) bool

// Semantic drops buffered notifications nullified by newer ones (§4
// "semantic-based"). An optional count cap bounds the residual buffer.
type Semantic struct {
	nullifies NullifyFunc
	cap       int // 0 = unbounded
	entries   []entry
}

// NewSemantic returns a semantic buffer. cap of 0 means unbounded.
func NewSemantic(f NullifyFunc, cap int) *Semantic {
	return &Semantic{nullifies: f, cap: cap}
}

// NullifyByKey nullifies older notifications that share the given
// attributes' values with the newer one — the common "latest state per key"
// scheme (latest temperature per room, latest menu per restaurant).
func NullifyByKey(attrs ...string) NullifyFunc {
	return func(newer, older message.Notification) bool {
		for _, a := range attrs {
			nv, nok := newer.Get(a)
			ov, ook := older.Get(a)
			if !nok || !ook || !nv.Equal(ov) {
				return false
			}
		}
		return true
	}
}

// Add implements Policy.
func (s *Semantic) Add(n message.Notification, now time.Time) {
	kept := s.entries[:0]
	for _, e := range s.entries {
		if !s.nullifies(n, e.n) {
			kept = append(kept, e)
		}
	}
	s.entries = append(kept, entry{n: n, at: now})
	if s.cap > 0 && len(s.entries) > s.cap {
		drop := len(s.entries) - s.cap
		s.entries = append(s.entries[:0], s.entries[drop:]...)
	}
}

// Snapshot implements Policy.
func (s *Semantic) Snapshot(time.Time) []message.Notification { return collect(s.entries) }

// Len implements Policy.
func (s *Semantic) Len() int { return len(s.entries) }

// Bytes implements Policy.
func (s *Semantic) Bytes() int { return bytesOf(s.entries) }

// Clear implements Policy.
func (s *Semantic) Clear() { s.entries = nil }

// --- helpers ---------------------------------------------------------

func collect(es []entry) []message.Notification {
	out := make([]message.Notification, len(es))
	for i, e := range es {
		out[i] = e.n
	}
	return out
}

func bytesOf(es []entry) int {
	total := 0
	for _, e := range es {
		total += e.n.WireSize()
	}
	return total
}

// Compile-time interface checks.
var (
	_ Policy = (*Unbounded)(nil)
	_ Policy = (*TimeBased)(nil)
	_ Policy = (*LastN)(nil)
	_ Policy = (*Combined)(nil)
	_ Policy = (*Semantic)(nil)
)
