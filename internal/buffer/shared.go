package buffer

import (
	"time"

	"rebeca/internal/message"
)

// Shared is the per-border-broker shared notification store of §4: "A
// shared buffer at the border broker can be used and virtual clients can
// keep only the digest (e.g., IDs or hash) of the events. … the events can
// be garbage collected … when none of the virtual clients need them."
//
// Virtual clients hold Digest views; each Add refs the stored notification
// once, and Clear/Drop unref it. A notification's storage is freed when its
// refcount reaches zero.
type Shared struct {
	store map[message.NotificationID]*sharedEntry
}

type sharedEntry struct {
	n    message.Notification
	at   time.Time
	refs int
}

// NewShared returns an empty shared store.
func NewShared() *Shared {
	return &Shared{store: make(map[message.NotificationID]*sharedEntry)}
}

// put inserts or refs a notification.
func (s *Shared) put(n message.Notification, now time.Time) {
	if e, ok := s.store[n.ID]; ok {
		e.refs++
		return
	}
	s.store[n.ID] = &sharedEntry{n: n, at: now, refs: 1}
}

// unref decrements a notification's refcount, freeing it at zero.
func (s *Shared) unref(id message.NotificationID) {
	e, ok := s.store[id]
	if !ok {
		return
	}
	e.refs--
	if e.refs <= 0 {
		delete(s.store, id)
	}
}

// get fetches a stored notification by digest.
func (s *Shared) get(id message.NotificationID) (message.Notification, bool) {
	e, ok := s.store[id]
	if !ok {
		return message.Notification{}, false
	}
	return e.n, true
}

// Len returns the number of distinct stored notifications.
func (s *Shared) Len() int { return len(s.store) }

// Bytes approximates resident memory of the store: one copy per distinct
// notification regardless of how many virtual clients reference it.
func (s *Shared) Bytes() int {
	total := 0
	for _, e := range s.store {
		total += e.n.WireSize()
	}
	return total
}

// NewDigest returns a digest view over the shared store whose retention
// follows the given TTL and count bounds (0 disables either bound).
func (s *Shared) NewDigest(ttl time.Duration, n int) *Digest {
	return &Digest{shared: s, ttl: ttl, cap: n}
}

// Digest is a virtual client's view onto a Shared store: it holds only
// notification IDs plus timestamps; content lives once in the store.
// Digest implements Policy, so virtual clients can use shared and private
// buffering interchangeably (experiment E8 compares them).
type Digest struct {
	shared *Shared
	ttl    time.Duration // 0 = no TTL
	cap    int           // 0 = no count bound
	ids    []digestEntry
}

type digestEntry struct {
	id message.NotificationID
	at time.Time
}

// Add implements Policy.
func (d *Digest) Add(n message.Notification, now time.Time) {
	d.gc(now)
	d.shared.put(n, now)
	d.ids = append(d.ids, digestEntry{id: n.ID, at: now})
	if d.cap > 0 && len(d.ids) > d.cap {
		drop := len(d.ids) - d.cap
		for _, e := range d.ids[:drop] {
			d.shared.unref(e.id)
		}
		d.ids = append(d.ids[:0], d.ids[drop:]...)
	}
}

// Snapshot implements Policy, fetching contents back from the store.
func (d *Digest) Snapshot(now time.Time) []message.Notification {
	d.gc(now)
	out := make([]message.Notification, 0, len(d.ids))
	for _, e := range d.ids {
		if n, ok := d.shared.get(e.id); ok {
			out = append(out, n)
		}
	}
	return out
}

// Len implements Policy.
func (d *Digest) Len() int { return len(d.ids) }

// Bytes implements Policy: a digest's own footprint is just IDs. The shared
// content is accounted once via Shared.Bytes.
func (d *Digest) Bytes() int {
	const idSize = 24 // publisher ref + seq + timestamp
	return len(d.ids) * idSize
}

// Clear implements Policy, releasing all references.
func (d *Digest) Clear() {
	for _, e := range d.ids {
		d.shared.unref(e.id)
	}
	d.ids = nil
}

func (d *Digest) gc(now time.Time) {
	if d.ttl == 0 {
		return
	}
	cut := now.Add(-d.ttl)
	i := 0
	for i < len(d.ids) && d.ids[i].at.Before(cut) {
		d.shared.unref(d.ids[i].id)
		i++
	}
	if i > 0 {
		d.ids = append(d.ids[:0], d.ids[i:]...)
	}
}

var _ Policy = (*Digest)(nil)
