package buffer

import (
	"time"

	"rebeca/internal/message"
	"rebeca/internal/store"
)

// Durable is the store-backed Policy: it mirrors every Add into a named
// store queue *before* the notification is considered buffered, applies the
// wrapped in-memory policy for GC/snapshot semantics (TTL, last-n,
// semantic, …), and acks the queue when the buffer is cleared — which the
// session layers do only after a delivery or handover is confirmed. A
// process that dies between Add and Clear therefore redelivers on
// recovery; it never loses.
//
// Construction replays the queue's pending records through the inner
// policy (arrival times are persisted, so TTL bounds keep working across a
// restart): a Durable built on a non-empty queue *is* the recovered
// buffer.
//
// Like every Policy, a Durable is driven from one broker event loop; the
// store it wraps is safe for concurrent use across loops.
type Durable struct {
	s     store.Store
	queue string
	inner Policy
	// last is the highest sequence appended to (or recovered from) the
	// queue; Clear acks up to it.
	last uint64
	// err records the first persistence failure (surfaced via Err; the
	// buffer keeps working from memory — degraded, not wedged).
	err error
}

// NewDurable wraps inner with persistence in the store queue named q,
// recovering any pending records into inner. A nil inner defaults to
// Unbounded.
func NewDurable(s store.Store, q string, inner Policy) *Durable {
	if inner == nil {
		inner = NewUnbounded()
	}
	d := &Durable{s: s, queue: q, inner: inner}
	recs, err := s.ReplayFrom(q, 0)
	if err != nil {
		d.err = err
		return d
	}
	for _, r := range recs {
		d.inner.Add(r.Note, r.At)
		if r.Seq > d.last {
			d.last = r.Seq
		}
	}
	return d
}

// Queue returns the backing store queue name.
func (d *Durable) Queue() string { return d.queue }

// Err returns the first persistence error encountered (nil when healthy).
func (d *Durable) Err() error { return d.err }

// Add implements Policy: append to the WAL first, then buffer in memory.
func (d *Durable) Add(n message.Notification, now time.Time) {
	seq, err := d.s.Append(d.queue, n, now)
	switch {
	case err != nil:
		if d.err == nil {
			d.err = err
		}
	case seq > d.last:
		d.last = seq
	}
	d.inner.Add(n, now)
}

// Snapshot implements Policy. GC (TTL/cap eviction) happens in the inner
// policy; evicted records stay in the store until the next Clear acks
// them — eviction is a memory bound, acking is a delivery confirmation.
func (d *Durable) Snapshot(now time.Time) []message.Notification {
	return d.inner.Snapshot(now)
}

// Len implements Policy.
func (d *Durable) Len() int { return d.inner.Len() }

// Bytes implements Policy.
func (d *Durable) Bytes() int { return d.inner.Bytes() }

// Clear implements Policy: the buffered content has been delivered (or
// handed over), so the queue is acked through the last appended record.
func (d *Durable) Clear() {
	d.inner.Clear()
	if d.last > 0 {
		if err := d.s.Ack(d.queue, d.last); err != nil && d.err == nil {
			d.err = err
		}
	}
}

// Release acks everything and compacts the store — called when a durable
// subscription is cancelled so its queue stops pinning WAL segments.
func (d *Durable) Release() {
	d.Clear()
	if err := d.s.Compact(); err != nil && d.err == nil {
		d.err = err
	}
}

var _ Policy = (*Durable)(nil)
