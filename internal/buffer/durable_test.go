package buffer

import (
	"testing"
	"time"

	"rebeca/internal/store"
)

func TestDurableMirrorsInner(t *testing.T) {
	st := store.NewMemory()
	d := NewDurable(st, "q", NewUnbounded())
	d.Add(mkNote("p", 1, "a"), t0)
	d.Add(mkNote("p", 2, "b"), t0.Add(time.Second))
	if got := bodies(d.Snapshot(t0.Add(time.Minute))); !eqStrings(got, []string{"a", "b"}) {
		t.Fatalf("snapshot = %v", got)
	}
	if rs, _ := st.ReplayFrom("q", 0); len(rs) != 2 {
		t.Fatalf("store holds %d records, want 2", len(rs))
	}
	d.Clear()
	if rs, _ := st.ReplayFrom("q", 0); len(rs) != 0 {
		t.Fatalf("Clear did not ack: %d pending", len(rs))
	}
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
}

func TestDurableRecoversPendingIntoInner(t *testing.T) {
	st := store.NewMemory()
	d := NewDurable(st, "q", NewUnbounded())
	d.Add(mkNote("p", 1, "a"), t0)
	d.Add(mkNote("p", 2, "b"), t0)
	// A new Durable on the same queue (the restarted broker's session
	// buffer) sees the unacked records.
	d2 := NewDurable(st, "q", NewUnbounded())
	if got := bodies(d2.Snapshot(t0)); !eqStrings(got, []string{"a", "b"}) {
		t.Fatalf("recovered snapshot = %v", got)
	}
	// Clear on the recovered buffer acks the recovered records too.
	d2.Clear()
	d3 := NewDurable(st, "q", NewUnbounded())
	if d3.Len() != 0 {
		t.Fatalf("acked records recovered: %d", d3.Len())
	}
}

func TestDurableTTLAcrossRecovery(t *testing.T) {
	st := store.NewMemory()
	d := NewDurable(st, "q", NewTimeBased(10*time.Second))
	d.Add(mkNote("p", 1, "old"), t0)
	d.Add(mkNote("p", 2, "new"), t0.Add(8*time.Second))
	// Recover 5 virtual seconds later: arrival times persisted with the
	// records keep the TTL bound exact — "old" (13s) expired, "new" (5s)
	// live.
	d2 := NewDurable(st, "q", NewTimeBased(10*time.Second))
	if got := bodies(d2.Snapshot(t0.Add(13 * time.Second))); !eqStrings(got, []string{"new"}) {
		t.Fatalf("TTL across recovery = %v", got)
	}
}

func TestDurableEvictionDoesNotAck(t *testing.T) {
	st := store.NewMemory()
	d := NewDurable(st, "q", NewLastN(2))
	for i := uint64(1); i <= 5; i++ {
		d.Add(mkNote("p", i, "x"), t0)
	}
	if d.Len() != 2 {
		t.Fatalf("inner eviction broken: %d", d.Len())
	}
	// Evicted records remain pending in the store (the memory bound is not
	// a delivery confirmation)…
	if rs, _ := st.ReplayFrom("q", 0); len(rs) != 5 {
		t.Fatalf("store pending = %d, want 5", len(rs))
	}
	// …until Clear acks the whole appended range.
	d.Clear()
	if rs, _ := st.ReplayFrom("q", 0); len(rs) != 0 {
		t.Fatalf("Clear left %d pending", len(rs))
	}
}

func TestDurableRelease(t *testing.T) {
	st := store.NewMemory()
	d := NewDurable(st, "q", NewUnbounded())
	d.Add(mkNote("p", 1, "a"), t0)
	d.Release()
	if rs, _ := st.ReplayFrom("q", 0); len(rs) != 0 {
		t.Fatal("Release left pending records")
	}
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
}
