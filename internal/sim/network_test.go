package sim

import (
	"testing"
	"time"

	"rebeca/internal/message"
	"rebeca/internal/proto"
)

func mkPub(pub message.NodeID, seq uint64) proto.Message {
	n := message.NewNotification(map[string]message.Value{"k": message.Int(int64(seq))})
	n.ID = message.NotificationID{Publisher: pub, Seq: seq}
	return proto.Message{Kind: proto.KPublish, Note: &n}
}

func TestNetworkDeliversWithLatency(t *testing.T) {
	net := NewNetwork()
	start := net.Now()
	var got []time.Time
	net.AddNode("b", EndpointFunc(func(message.NodeID, proto.Message) {
		got = append(got, net.Now())
	}))
	net.Send("a", "b", mkPub("a", 1))
	net.Run()
	if len(got) != 1 {
		t.Fatalf("deliveries = %d", len(got))
	}
	if got[0].Sub(start) != DefaultLatency {
		t.Errorf("delivered after %s, want %s", got[0].Sub(start), DefaultLatency)
	}
}

func TestNetworkFIFOPerLinkUnderJitter(t *testing.T) {
	net := NewNetwork()
	// Decreasing latencies would reorder without the FIFO clamp.
	lat := []time.Duration{5 * time.Millisecond, time.Millisecond}
	i := 0
	net.Latency = func(message.NodeID, message.NodeID) time.Duration {
		d := lat[i%len(lat)]
		i++
		return d
	}
	var seqs []uint64
	net.AddNode("b", EndpointFunc(func(_ message.NodeID, m proto.Message) {
		seqs = append(seqs, m.Note.ID.Seq)
	}))
	net.Send("a", "b", mkPub("a", 1))
	net.Send("a", "b", mkPub("a", 2))
	net.Run()
	if len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 2 {
		t.Errorf("FIFO violated: %v", seqs)
	}
}

func TestNetworkStampsFrom(t *testing.T) {
	net := NewNetwork()
	var from message.NodeID
	net.AddNode("b", EndpointFunc(func(f message.NodeID, m proto.Message) {
		from = m.From
	}))
	net.Send("a", "b", mkPub("a", 1))
	net.Run()
	if from != "a" {
		t.Errorf("From = %s, want a", from)
	}
}

func TestNetworkDropInjection(t *testing.T) {
	net := NewNetwork()
	net.Drop = func(_, _ message.NodeID, m proto.Message) bool {
		return m.Note != nil && m.Note.ID.Seq == 2
	}
	var seqs []uint64
	net.AddNode("b", EndpointFunc(func(_ message.NodeID, m proto.Message) {
		seqs = append(seqs, m.Note.ID.Seq)
	}))
	for s := uint64(1); s <= 3; s++ {
		net.Send("a", "b", mkPub("a", s))
	}
	net.Run()
	if len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 3 {
		t.Errorf("drop injection wrong: %v", seqs)
	}
	if net.Stats().Dropped != 1 {
		t.Errorf("Dropped = %d", net.Stats().Dropped)
	}
}

func TestNetworkUnknownDestinationIgnored(t *testing.T) {
	net := NewNetwork()
	net.Send("a", "ghost", mkPub("a", 1))
	net.Run() // must not panic
}

func TestNetworkSchedulingOrder(t *testing.T) {
	net := NewNetwork()
	var order []string
	net.After(2*time.Millisecond, func() { order = append(order, "late") })
	net.After(time.Millisecond, func() { order = append(order, "early") })
	net.After(time.Millisecond, func() { order = append(order, "early2") })
	net.Run()
	if len(order) != 3 || order[0] != "early" || order[1] != "early2" || order[2] != "late" {
		t.Errorf("order = %v", order)
	}
}

func TestNetworkRunUntil(t *testing.T) {
	net := NewNetwork()
	fired := 0
	net.After(time.Millisecond, func() { fired++ })
	net.After(time.Hour, func() { fired++ })
	net.RunUntil(net.Now().Add(time.Second))
	if fired != 1 {
		t.Errorf("fired = %d, want 1 (second event beyond horizon)", fired)
	}
	if net.Pending() != 1 {
		t.Errorf("pending = %d, want 1", net.Pending())
	}
	net.Run()
	if fired != 2 {
		t.Errorf("fired = %d after full run", fired)
	}
}

func TestNetworkAtClampsPast(t *testing.T) {
	net := NewNetwork()
	net.RunFor(time.Second)
	ran := false
	net.At(net.Now().Add(-time.Minute), func() { ran = true })
	net.Run()
	if !ran {
		t.Error("past-scheduled event should run immediately")
	}
}

func TestTrafficStatsAccounting(t *testing.T) {
	net := NewNetwork()
	net.AddNode("b", EndpointFunc(func(message.NodeID, proto.Message) {}))
	net.Send("a", "b", mkPub("a", 1))
	net.Send("a", "b", proto.Message{Kind: proto.KRelocReq, Client: "c"})
	net.SendDirect("a", "b", proto.Message{Kind: proto.KReplicaCreate, Client: "c"})
	net.Run()
	s := net.Stats()
	if s.DataMsgs != 1 || s.ControlMsgs != 2 || s.DirectMsgs != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.ByKind[proto.KPublish] != 1 || s.ByKind[proto.KRelocReq] != 1 {
		t.Errorf("ByKind = %v", s.ByKind)
	}
	if s.Bytes <= 0 {
		t.Error("bytes not accounted")
	}
	if s.Total() != 3 {
		t.Errorf("Total = %d", s.Total())
	}
}

func TestNetworkDeterminism(t *testing.T) {
	run := func() []uint64 {
		net := NewNetwork()
		var seqs []uint64
		net.AddNode("b", EndpointFunc(func(_ message.NodeID, m proto.Message) {
			seqs = append(seqs, m.Note.ID.Seq)
		}))
		net.AddNode("c", EndpointFunc(func(_ message.NodeID, m proto.Message) {
			// relay c -> b
			net.Send("c", "b", m)
		}))
		for s := uint64(1); s <= 20; s++ {
			if s%2 == 0 {
				net.Send("a", "c", mkPub("a", s))
			} else {
				net.Send("a", "b", mkPub("a", s))
			}
		}
		net.Run()
		return seqs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic order at %d: %v vs %v", i, a, b)
		}
	}
}
