package sim

import (
	"testing"
	"time"

	"rebeca/internal/broker"
	"rebeca/internal/filter"
	"rebeca/internal/message"
	"rebeca/internal/movement"
	"rebeca/internal/overlay"
	"rebeca/internal/proto"
)

// overlayLine builds a 3-broker line A-B-C with overlay managers on a
// fast virtual-clock heartbeat.
func overlayLine(t *testing.T) *Cluster {
	t.Helper()
	g := movement.NewGraph().AddEdge("A", "B").AddEdge("B", "C")
	c, err := NewCluster(ClusterConfig{
		Movement: g,
		Overlay: &overlay.Settings{
			HeartbeatInterval: 100 * time.Millisecond,
			HeartbeatTimeout:  300 * time.Millisecond,
			BackoffBase:       50 * time.Millisecond,
			BackoffMax:        200 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func allEstablished(c *Cluster) bool {
	for _, mgr := range c.Overlays {
		for _, st := range mgr.States() {
			if st != overlay.StateEstablished {
				return false
			}
		}
	}
	return true
}

func TestOverlayHandshakeEstablishesAllLinks(t *testing.T) {
	c := overlayLine(t)
	c.Net.Run()
	if !allEstablished(c) {
		t.Fatalf("links not established after settle: A=%v B=%v C=%v",
			c.Overlays["A"].States(), c.Overlays["B"].States(), c.Overlays["C"].States())
	}
	// The handshake ran on every link, in both directions.
	if got := c.Net.Stats().ByKind[proto.KHello]; got < 4 {
		t.Errorf("expected >= 4 hellos on a 2-edge line, got %d", got)
	}
	if got := c.Net.Stats().ByKind[proto.KSyncInstall]; got < 4 {
		t.Errorf("expected >= 4 sync-installs, got %d", got)
	}
}

func TestOverlayCutQueuesAndHealFlushes(t *testing.T) {
	c := overlayLine(t)
	sub := c.AddClient("sub")
	sub.ConnectTo("A")
	sub.Subscribe(filter.New(filter.Eq("k", message.Int(1))))
	pub := c.AddClient("pub")
	pub.ConnectTo("C")
	c.Net.Run()

	pub.Publish(map[string]message.Value{"k": message.Int(1)})
	c.Net.Run()
	if got := len(sub.Received()); got != 1 {
		t.Fatalf("pre-cut delivery: got %d, want 1", got)
	}

	// Cut the middle link and publish through it: B's overlay manager
	// sees the refused send immediately, queues, and goes degraded.
	c.CutLink("A", "B")
	for i := 2; i <= 6; i++ {
		pub.Publish(map[string]message.Value{"k": message.Int(1)})
	}
	c.Net.Run()
	if got := len(sub.Received()); got != 1 {
		t.Fatalf("cut link leaked deliveries: got %d, want 1", got)
	}
	if st := c.Overlays["B"].State("A"); st != overlay.StateDegraded {
		t.Fatalf("B->A state = %s, want degraded", st)
	}

	// Heal: the dialer's backoff probe re-establishes the link, the sync
	// handshake replays installs, and the queued publishes flush.
	c.HealLink("A", "B")
	c.Net.RunFor(2 * time.Second)
	c.Net.Run()
	if got := len(sub.Received()); got != 6 {
		t.Fatalf("post-heal deliveries: got %d, want 6", got)
	}
	if got := sub.Duplicates(); got != 0 {
		t.Errorf("duplicates after heal: %d", got)
	}
	if !allEstablished(c) {
		t.Error("links did not re-establish after heal")
	}
}

func TestOverlayHeartbeatDetectsSilentCut(t *testing.T) {
	c := overlayLine(t)
	c.Net.Run()
	if !allEstablished(c) {
		t.Fatal("links not established")
	}
	// Cut without any traffic: only the heartbeat can notice. The first
	// tick's ping hits the refused link.
	c.CutLink("B", "C")
	c.Net.RunFor(500 * time.Millisecond)
	if st := c.Overlays["B"].State("C"); st != overlay.StateDegraded {
		t.Fatalf("B->C state after silent cut = %s, want degraded", st)
	}
	if st := c.Overlays["C"].State("B"); st != overlay.StateDegraded {
		t.Fatalf("C->B state after silent cut = %s, want degraded", st)
	}
	c.HealLink("B", "C")
	c.Net.RunFor(2 * time.Second)
	if !allEstablished(c) {
		t.Fatalf("links did not self-heal: B=%v C=%v",
			c.Overlays["B"].States(), c.Overlays["C"].States())
	}
}

func TestOverlaySyncReconcilesStaleEntries(t *testing.T) {
	// A subscription installed before a partition and withdrawn during it:
	// the unsubscription queues on the cut link, and on heal both the
	// pending flush and the sync reconciliation remove the stale entry —
	// whichever arrives first, the tables converge to empty.
	c := overlayLine(t)
	sub := c.AddClient("sub")
	sub.ConnectTo("A")
	id := sub.Subscribe(filter.New(filter.Eq("k", message.Int(1))))
	c.Net.Run()
	if got := c.Brokers["C"].Router().Table().Len(); got != 1 {
		t.Fatalf("C table before cut: %d entries, want 1", got)
	}

	c.CutLink("A", "B")
	sub.Unsubscribe(id)
	c.Net.Run()
	if got := c.Brokers["C"].Router().Table().Len(); got != 1 {
		t.Fatalf("C table during cut: %d entries, want 1 (stale)", got)
	}

	c.HealLink("A", "B")
	c.Net.RunFor(2 * time.Second)
	c.Net.Run()
	for _, id := range []message.NodeID{"A", "B", "C"} {
		if got := c.Brokers[id].Router().Table().Len(); got != 0 {
			t.Errorf("%s table after heal: %d entries, want 0", id, got)
		}
	}
}

func TestOverlayLinkObserverReachesBrokerChain(t *testing.T) {
	g := movement.NewGraph().AddEdge("A", "B")
	var events []overlay.Event
	rec := &linkRecorder{seen: make(map[message.NodeID]int)}
	c, err := NewCluster(ClusterConfig{
		Movement: g,
		Overlay: &overlay.Settings{
			HeartbeatInterval: 100 * time.Millisecond,
			HeartbeatTimeout:  300 * time.Millisecond,
		},
		LinkObserver: func(ev overlay.Event) { events = append(events, ev) },
		Middleware:   []broker.Middleware{rec},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Net.Run()
	if len(events) == 0 {
		t.Fatal("config LinkObserver saw no events")
	}
	established := false
	for _, ev := range events {
		if ev.To == overlay.StateEstablished {
			established = true
		}
	}
	if !established {
		t.Error("no established transition observed")
	}
	// The chain's LinkObserver stage runs per broker; both must have
	// observed their own transitions.
	for _, id := range []message.NodeID{"A", "B"} {
		if rec.seen[id] == 0 {
			t.Errorf("broker %s chain stage saw no link events", id)
		}
	}
}

// linkRecorder is a chain stage implementing broker.LinkObserver.
type linkRecorder struct {
	broker.PassMiddleware
	seen map[message.NodeID]int
}

func (r *linkRecorder) OnLinkChange(b *broker.Broker, _ overlay.Event) {
	r.seen[b.ID()]++
}
